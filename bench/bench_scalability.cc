// Section 5.2 — "the atomicity coordination of AC2Ts is embarrassingly
// parallel; different witness networks can be used to coordinate different
// AC2Ts."
//
// The harness runs a fixed batch of concurrent two-party AC2Ts over shared
// asset chains while varying the number of witness networks the swaps are
// spread across. The witness chains are deliberately capacity-starved
// (2 transactions per block) so a single witness network visibly queues
// SCw deployments and state changes.
//
// Expected shape: completion time falls (and per-swap latency tightens) as
// witness networks are added, while the asset chains — the real
// bottleneck per Section 5.2 — stay the same.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace ac3 {
namespace {

constexpr int kSwaps = 12;
constexpr TimePoint kDeadline = Minutes(60);

struct BatchResult {
  double makespan_ms = 0;   ///< Start of batch to last swap completion.
  double mean_latency_ms = 0;
  int committed = 0;
};

BatchResult RunBatch(int witness_networks, uint64_t seed) {
  core::ScenarioOptions options;
  options.participants = 2 * kSwaps;
  options.asset_chains = 2;
  options.witness_chain = false;
  options.funding = 5000;
  options.seed = seed;
  core::ScenarioWorld world(options);

  // Capacity-starved witness chains (one transaction per slow block): the
  // coordination bottleneck when all swaps share one.
  std::vector<chain::ChainId> witnesses;
  for (int w = 0; w < witness_networks; ++w) {
    chain::ChainParams params = chain::TestWitnessParams();
    params.name = "Witness" + std::to_string(w);
    params.max_block_txs = 1;
    params.block_interval = Milliseconds(300);
    std::vector<chain::TxOutput> funding;
    for (auto* p : world.all_participants()) {
      funding.push_back(chain::TxOutput{5000, p->pk()});
    }
    chain::MiningConfig mining;
    mining.miner_count = 3;
    mining.max_propagation_delay = Milliseconds(5);
    witnesses.push_back(world.env()->AddChain(params, funding, mining));
  }
  world.StartMining();

  protocols::Ac3wnConfig config = benchutil::FastAc3wnConfig();
  config.publish_patience = Seconds(120);

  std::vector<std::unique_ptr<protocols::Ac3wnSwapEngine>> engines;
  for (int s = 0; s < kSwaps; ++s) {
    protocols::Participant* a = world.participant(2 * s);
    protocols::Participant* b = world.participant(2 * s + 1);
    graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
        a->pk(), b->pk(), world.asset_chain(0), 100, world.asset_chain(1), 80,
        /*timestamp=*/s);
    engines.push_back(std::make_unique<protocols::Ac3wnSwapEngine>(
        world.env(), graph, std::vector<protocols::Participant*>{a, b},
        witnesses[s % witness_networks], config));
  }
  for (auto& engine : engines) {
    if (!engine->Start().ok()) return BatchResult{};
  }
  (void)world.env()->sim()->RunUntilCondition(
      [&]() {
        return std::all_of(engines.begin(), engines.end(),
                           [](const auto& e) { return e->Done(); });
      },
      kDeadline);

  BatchResult result;
  double total_latency = 0;
  for (auto& engine : engines) {
    auto report = engine->Run(kDeadline);  // Finalizes; already done.
    if (!report.ok()) continue;
    if (report->committed) ++result.committed;
    total_latency += static_cast<double>(report->Latency());
    result.makespan_ms = std::max(
        result.makespan_ms, static_cast<double>(report->end_time));
  }
  result.mean_latency_ms = total_latency / kSwaps;
  return result;
}

}  // namespace
}  // namespace ac3

int main() {
  using namespace ac3;

  benchutil::PrintHeader(
      "Section 5.2 — coordination scalability: a batch of concurrent AC2Ts\n"
      "spread across W capacity-starved witness networks (1 tx/block)");

  std::printf("batch: %d two-party swaps over 2 shared asset chains\n\n",
              kSwaps);
  std::printf("%10s | %10s | %14s | %16s\n", "witnesses", "committed",
              "makespan (ms)", "mean latency (ms)");
  benchutil::PrintRule(60);
  for (int w : {1, 2, 4, 8}) {
    BatchResult result = RunBatch(w, 9100 + static_cast<uint64_t>(w));
    std::printf("%10d | %7d/%-2d | %14.0f | %16.0f\n", w, result.committed,
                kSwaps, result.makespan_ms, result.mean_latency_ms);
  }
  benchutil::PrintRule(60);
  std::printf(
      "\nshape check: with one starved witness network the batch queues on\n"
      "SCw transactions; adding witness networks shrinks makespan and mean\n"
      "latency toward the asset-chain floor — coordination itself is\n"
      "embarrassingly parallel, exactly Section 5.2's argument.\n");
  return 0;
}
