// Section 5.2 — "the atomicity coordination of AC2Ts is embarrassingly
// parallel; different witness networks can be used to coordinate different
// AC2Ts."
//
// The harness runs a fixed batch of concurrent two-party AC2Ts over shared
// asset chains while varying the number of witness networks the swaps are
// spread across. The witness chains are deliberately capacity-starved
// (1 transaction per slow block) so a single witness network visibly
// queues SCw deployments and state changes.
//
// Ported onto the SweepRunner substrate: each (witness-count) batch world
// is one independent deterministic task on the worker pool, each swap's
// SwapReport is reduced to a RunOutcome, and per-batch aggregates
// (mean/p50/p99 latency in Δs, commit counts, throughput) are published as
// BENCH_scalability.json; the printed table is a thin view.
//
// Expected shape: completion time falls (and per-swap latency tightens) as
// witness networks are added, while the asset chains — the real
// bottleneck per Section 5.2 — stay the same.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

namespace ac3 {
namespace {

constexpr TimePoint kDeadline = Minutes(60);

struct BatchResult {
  int witness_networks = 0;
  int swaps = 0;
  double makespan_ms = 0;  ///< Start of batch to last swap completion.
  std::vector<runner::RunOutcome> outcomes;
};

BatchResult RunBatch(int witness_networks, int swaps, uint64_t seed) {
  core::ScenarioOptions options;
  options.participants = 2 * swaps;
  options.asset_chains = 2;
  options.witness_chain = false;
  options.funding = 5000;
  options.seed = seed;
  core::ScenarioWorld world(options);

  // Capacity-starved witness chains (one transaction per slow block): the
  // coordination bottleneck when all swaps share one.
  std::vector<chain::ChainId> witnesses;
  for (int w = 0; w < witness_networks; ++w) {
    chain::ChainParams params = chain::TestWitnessParams();
    params.name = "Witness" + std::to_string(w);
    params.max_block_txs = 1;
    params.block_interval = Milliseconds(300);
    std::vector<chain::TxOutput> funding;
    for (auto* p : world.all_participants()) {
      funding.push_back(chain::TxOutput{5000, p->pk()});
    }
    chain::MiningConfig mining;
    mining.miner_count = 3;
    mining.max_propagation_delay = Milliseconds(5);
    witnesses.push_back(world.env()->AddChain(params, funding, mining));
  }
  world.StartMining();

  protocols::Ac3wnConfig config = benchutil::FastAc3wnConfig();
  config.publish_patience = Seconds(120);

  BatchResult result;
  result.witness_networks = witness_networks;
  result.swaps = swaps;

  std::vector<std::unique_ptr<protocols::Ac3wnSwapEngine>> engines;
  for (int s = 0; s < swaps; ++s) {
    protocols::Participant* a = world.participant(2 * s);
    protocols::Participant* b = world.participant(2 * s + 1);
    graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
        a->pk(), b->pk(), world.asset_chain(0), 100, world.asset_chain(1), 80,
        /*timestamp=*/s);
    engines.push_back(std::make_unique<protocols::Ac3wnSwapEngine>(
        world.env(), graph, std::vector<protocols::Participant*>{a, b},
        witnesses[static_cast<size_t>(s % witness_networks)], config));
  }
  for (auto& engine : engines) {
    if (!engine->Start().ok()) return result;
  }
  (void)world.env()->sim()->RunUntilCondition(
      [&]() {
        return std::all_of(engines.begin(), engines.end(),
                           [](const auto& e) { return e->Done(); });
      },
      kDeadline);

  for (auto& engine : engines) {
    auto report = engine->Run(kDeadline);  // Finalizes; already done.
    runner::SweepPoint point;
    point.protocol = runner::Protocol::kAc3wn;
    point.topology = runner::Topology::kRing;
    point.size = 2;
    point.seed = seed;
    if (!report.ok()) {
      runner::RunOutcome outcome;
      outcome.point = point;
      outcome.error = report.status().ToString();
      result.outcomes.push_back(std::move(outcome));
      continue;
    }
    result.outcomes.push_back(runner::ReduceReport(point, *report));
    result.makespan_ms = std::max(
        result.makespan_ms, static_cast<double>(report->end_time));
  }
  return result;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  const int swaps = context.smoke ? 6 : 12;
  const std::vector<int> witness_counts = {1, 2, 4, 8};

  benchutil::PrintHeader(
      "Section 5.2 — coordination scalability: a batch of concurrent AC2Ts\n"
      "spread across W capacity-starved witness networks (1 tx/block)");

  core::ScenarioOptions delta_world;
  delta_world.seed = 999;
  const double delta_ms = runner::MeasureDeltaMs(delta_world, 1);

  // Each batch world is independent and deterministic: fan the witness-
  // count axis across the worker pool.
  runner::SweepRunner pool(context.threads);
  const auto batches_start = std::chrono::steady_clock::now();
  std::vector<BatchResult> batches = pool.Map<BatchResult>(
      static_cast<int>(witness_counts.size()), [&](int i) {
        const int w = witness_counts[static_cast<size_t>(i)];
        return RunBatch(w, swaps, 9100 + static_cast<uint64_t>(w));
      });
  const double batches_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - batches_start)
          .count();

  std::printf("batch: %d two-party swaps over 2 shared asset chains\n\n",
              swaps);
  std::printf("%10s | %10s | %14s | %17s | %10s\n", "witnesses", "committed",
              "makespan (ms)", "mean latency (ms)", "p99 (d^)");
  benchutil::PrintRule(75);

  runner::Json rows = runner::Json::Array();
  for (const BatchResult& batch : batches) {
    runner::SweepAggregate agg = runner::Aggregate(batch.outcomes, delta_ms);
    std::printf("%10d | %7d/%-2d | %14.0f | %17.0f | %10.1f\n",
                batch.witness_networks, agg.committed, batch.swaps,
                batch.makespan_ms, agg.commit_latency.mean_ms,
                agg.p99_latency_deltas);
    runner::Json row = runner::Json::Object();
    row.Set("witness_networks", batch.witness_networks);
    row.Set("swaps", batch.swaps);
    row.Set("makespan_ms", batch.makespan_ms);
    // Batch-level throughput: the whole batch's commits over its makespan.
    row.Set("batch_swaps_per_sec",
            batch.makespan_ms > 0
                ? 1000.0 * agg.committed / batch.makespan_ms
                : 0.0);
    row.Set("aggregate", runner::AggregateToJson(agg));
    rows.Push(std::move(row));
  }
  benchutil::PrintRule(75);

  runner::Json results = runner::Json::Object();
  results.Set("protocol", "ac3wn");
  results.Set("delta_ms", delta_ms);
  results.Set("rows", std::move(rows));

  runner::Json wall = runner::Json::Object();
  wall.Set("wall_ms_batches", batches_wall_ms);
  wall.Set("worlds_per_sec",
           batches_wall_ms > 0
               ? static_cast<double>(batches.size()) /
                     (batches_wall_ms / 1000.0)
               : 0.0);
  auto written = runner::WriteBenchJson(context, "scalability",
                                        std::move(results), std::move(wall));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshape check: with one starved witness network the batch queues on\n"
      "SCw transactions; adding witness networks shrinks makespan and mean\n"
      "latency toward the asset-chain floor — coordination itself is\n"
      "embarrassingly parallel, exactly Section 5.2's argument.\n");
  return 0;
}
