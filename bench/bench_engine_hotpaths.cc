// Engine hot-path benchmark: wall-clock cost of the blockchain substrate
// itself, independent of any swap protocol. This is the trajectory anchor
// for perf PRs — it measures the per-block hot paths (block
// assembly/validation with a growing ledger, visible-head selection under
// Poisson mining, mempool drain, batch fork validation, and PoW nonce
// search) and reports blocks/sec and nonce-evals/sec across chain lengths,
// so a regression to O(chain-length) per-block cost is visible as a
// falling segment rate.
//
// Determinism contract: everything under "results" (head hashes, heights,
// per-segment tx counts, nonce evaluation counts) is a pure function of the
// seeds and must be bit-for-bit stable across runs, thread counts and
// refactors. Wall-clock rates are machine-dependent and live in the
// envelope's "wall" section.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"
#include "src/chain/pow.h"
#include "src/chain/tx_conflict.h"
#include "src/chain/wallet.h"
#include "src/common/worker_pool.h"
#include "src/core/environment.h"
#include "src/crypto/sha256.h"
#include "src/runner/bench_output.h"

namespace ac3 {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

// ---- section 1: chain growth (assembly + validation + state) --------------
//
// Manually mines a chain of `total_blocks` blocks, `txs_per_block` funded
// transfers each, and times every `segment` blocks separately. With
// O(chain-length) per-block state copies the segment rate decays linearly;
// with the COW engine it stays flat.

struct GrowthSegment {
  uint64_t end_height = 0;
  int txs = 0;           ///< Transfers included in this segment.
  double wall_ms = 0;
  double blocks_per_sec = 0;
};

struct GrowthRun {
  std::vector<GrowthSegment> segments;
  std::string head_hash;
  uint64_t height = 0;
};

GrowthRun RunChainGrowth(uint64_t total_blocks, uint64_t segment,
                         int txs_per_block) {
  constexpr int kUsers = 8;
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;  // ~16 nonce evals/block: assembly dominates.
  params.max_block_txs = 64;

  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  for (int i = 0; i < kUsers; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(5000 + static_cast<uint64_t>(i)));
    allocations.push_back(chain::TxOutput{1'000'000, keys.back().public_key()});
  }
  chain::Blockchain chain(params, allocations);
  std::vector<chain::Wallet> wallets;
  for (int i = 0; i < kUsers; ++i) wallets.emplace_back(keys[i], chain.id());
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(4999);

  Rng rng(4242);
  GrowthRun run;
  TimePoint now = 0;
  uint64_t nonce = 1;
  for (uint64_t start = 0; start < total_blocks; start += segment) {
    const uint64_t end = std::min(start + segment, total_blocks);
    GrowthSegment seg;
    const Clock::time_point t0 = Clock::now();
    for (uint64_t b = start; b < end; ++b) {
      now += 100;
      std::vector<chain::Transaction> txs;
      for (int j = 0; j < txs_per_block; ++j) {
        const int from = static_cast<int>((b + static_cast<uint64_t>(j)) %
                                          kUsers);
        auto tx = wallets[static_cast<size_t>(from)].BuildTransfer(
            chain.StateAtHead(), keys[static_cast<size_t>((from + 1) % kUsers)]
                                     .public_key(),
            /*amount=*/10, /*fee=*/1, nonce++);
        if (tx.ok()) txs.push_back(*tx);
      }
      seg.txs += static_cast<int>(txs.size());
      auto block = chain.AssembleBlock(chain.head()->hash, txs,
                                       miner.public_key(), now, &rng);
      if (!block.ok() || !chain.SubmitBlock(*block, now).ok()) {
        std::fprintf(stderr, "chain growth: mining failed at height %llu\n",
                     static_cast<unsigned long long>(b));
        break;
      }
    }
    seg.wall_ms = ElapsedMs(t0);
    seg.end_height = chain.height();
    seg.blocks_per_sec = seg.wall_ms > 0
                             ? static_cast<double>(end - start) /
                                   (seg.wall_ms / 1000.0)
                             : 0;
    run.segments.push_back(seg);
  }
  run.head_hash = chain.head()->hash.ToHex();
  run.height = chain.height();
  return run;
}

// ---- section 2: Poisson mining simulation (visible-head selection) --------
//
// A full MiningNetwork on a discrete-event kernel: every produced block
// picks the heaviest block its miner can see, which is the VisibleHead hot
// path. Cost per block must not grow with the number of stored blocks.

struct MiningSimRun {
  uint64_t height = 0;
  size_t blocks_stored = 0;
  std::string head_hash;
  double wall_ms = 0;
  double blocks_per_sec = 0;
};

MiningSimRun RunMiningSim(uint64_t target_height) {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.block_interval = Milliseconds(200);

  const Clock::time_point t0 = Clock::now();
  core::Environment env(/*seed=*/7);
  chain::MiningConfig mining;
  mining.miner_count = 5;
  mining.max_propagation_delay = Milliseconds(40);
  const chain::ChainId id = env.AddChain(params, {}, mining);
  env.StartMining();
  const chain::Blockchain* chain = env.blockchain(id);
  (void)env.sim()->RunUntilCondition(
      [&]() { return chain->height() >= target_height; }, Hours(24));
  env.StopMining();

  MiningSimRun run;
  run.wall_ms = ElapsedMs(t0);
  run.height = chain->height();
  run.blocks_stored = chain->block_count();
  run.head_hash = chain->head()->hash.ToHex();
  run.blocks_per_sec = run.wall_ms > 0 ? static_cast<double>(run.height) /
                                             (run.wall_ms / 1000.0)
                                       : 0;
  return run;
}

// ---- section 2b: saturated mempool drain ----------------------------------
//
// `users` one-shot transfers flood the mempool at t=0 and the Poisson
// miners drain it. Candidate selection copies every pending-and-visible
// entry per assembled block, so with no mempool hygiene the per-block cost
// stays O(users) for the whole run; with prune-on-head-move batching
// (Environment wires Mempool::Prune to canonical head movement) the pool
// shrinks as transactions land and the drain accelerates.

struct MempoolDrainRun {
  size_t submitted = 0;
  uint64_t included = 0;
  uint64_t height = 0;
  size_t pool_left = 0;  ///< Deterministic: pending entries at the end.
  std::string head_hash;
  double wall_ms = 0;
  double txs_per_sec = 0;
};

MempoolDrainRun RunMempoolDrain(int users) {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.block_interval = Milliseconds(100);
  params.max_block_txs = 32;

  const Clock::time_point t0 = Clock::now();
  core::Environment env(/*seed=*/21);
  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  keys.reserve(static_cast<size_t>(users));
  for (int i = 0; i < users; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(70'000 + static_cast<uint64_t>(i)));
    allocations.push_back(chain::TxOutput{100, keys.back().public_key()});
  }
  chain::MiningConfig mining;
  mining.miner_count = 3;
  mining.max_propagation_delay = Milliseconds(2);
  const chain::ChainId id = env.AddChain(params, allocations, mining);
  chain::Mempool* mempool = env.mempool(id);
  const chain::LedgerState& genesis_state = env.blockchain(id)->genesis()->state;
  for (int i = 0; i < users; ++i) {
    chain::Wallet wallet(keys[static_cast<size_t>(i)], id);
    auto tx = wallet.BuildTransfer(
        genesis_state, keys[static_cast<size_t>((i + 1) % users)].public_key(),
        /*amount=*/50, /*fee=*/1, /*nonce=*/1);
    if (tx.ok()) (void)mempool->Submit(*tx, 0);
  }

  MempoolDrainRun run;
  run.submitted = mempool->size();
  env.StartMining();
  const chain::Blockchain* chain = env.blockchain(id);
  auto included_users = [&]() -> uint64_t {
    return chain->head()->included_tx_count - chain->height() - 1;
  };
  (void)env.sim()->RunUntilCondition(
      [&]() { return included_users() >= run.submitted; }, Hours(1));
  env.StopMining();

  run.wall_ms = ElapsedMs(t0);
  run.included = included_users();
  run.height = chain->height();
  run.pool_left = mempool->size();
  run.head_hash = chain->head()->hash.ToHex();
  run.txs_per_sec = run.wall_ms > 0 ? static_cast<double>(run.included) /
                                          (run.wall_ms / 1000.0)
                                    : 0;
  return run;
}

// ---- section 2b': prune-overload delta ------------------------------------
//
// The canonical-head subscription prunes included ids one block at a
// time. The std::set overload forces every call site to build an ordered
// set first; the span overload takes the flat id list as-is. Both runs
// prune the same pool in the same block-sized chunks and must reach the
// same post-state; the wall-clock delta is the cost of the set builds
// plus the ordered lookups inside Prune.

struct PruneDeltaRun {
  size_t pool_txs = 0;
  int chunk = 0;
  int repeats = 0;
  bool identical = false;  ///< Both overloads emptied the pool every repeat.
  double set_wall_ms = 0;
  double span_wall_ms = 0;
  double speedup = 0;  ///< set / span.
};

PruneDeltaRun RunPruneDelta(size_t pool_txs, int chunk, int repeats) {
  // The mempool indexes by id only, so synthetic distinct transactions
  // suffice — no chain state or signatures are involved in what is
  // measured here.
  const crypto::KeyPair payee = crypto::KeyPair::FromSeed(88'888);
  std::vector<chain::Transaction> batch;
  batch.reserve(pool_txs);
  std::vector<crypto::Hash256> ids;
  ids.reserve(pool_txs);
  for (size_t i = 0; i < pool_txs; ++i) {
    chain::Transaction tx;
    tx.chain_id = 1;
    tx.nonce = i + 1;
    tx.outputs.push_back(chain::TxOutput{i + 1, payee.public_key()});
    ids.push_back(tx.Id());
    batch.push_back(std::move(tx));
  }

  PruneDeltaRun run;
  run.pool_txs = pool_txs;
  run.chunk = chunk;
  run.repeats = repeats;
  run.identical = true;
  for (int r = 0; r < repeats; ++r) {
    chain::Mempool set_pool;
    chain::Mempool span_pool;
    (void)set_pool.SubmitBatch(std::span<const chain::Transaction>(batch), 0);
    (void)span_pool.SubmitBatch(std::span<const chain::Transaction>(batch), 0);
    for (size_t at = 0; at < ids.size(); at += static_cast<size_t>(chunk)) {
      const size_t end = std::min(at + static_cast<size_t>(chunk), ids.size());
      const Clock::time_point t_set = Clock::now();
      set_pool.Prune(
          std::set<crypto::Hash256>(ids.begin() + static_cast<ptrdiff_t>(at),
                                    ids.begin() + static_cast<ptrdiff_t>(end)));
      run.set_wall_ms += ElapsedMs(t_set);
      const Clock::time_point t_span = Clock::now();
      span_pool.Prune(std::span<const crypto::Hash256>(ids.data() + at,
                                                       end - at));
      run.span_wall_ms += ElapsedMs(t_span);
    }
    run.identical = run.identical && set_pool.size() == 0 &&
                    span_pool.size() == 0;
  }
  run.speedup =
      run.span_wall_ms > 0 ? run.set_wall_ms / run.span_wall_ms : 0;
  return run;
}

// ---- section 2c: parallel fork validation ---------------------------------
//
// F forks of depth D (funded transfers in every block) are mined off one
// chain, then replayed into fresh chains through Blockchain::SubmitBlocks
// in level order — every round presents F independent sibling blocks, the
// workload the parallel validator spreads across threads. The replay runs
// once with 1 thread and once with the full thread count; both must accept
// every block and land on the same head (the batch API's serial-equivalence
// contract), so the parallel numbers are self-checking.

struct ForkValidationRun {
  int forks = 0;
  int depth = 0;
  int threads = 0;
  size_t blocks = 0;        ///< Batch size (deterministic).
  size_t accepted = 0;      ///< Blocks accepted by the replay (deterministic).
  std::string head_hash;    ///< Deterministic, identical serial/parallel.
  bool thread_invariant = false;
  double serial_wall_ms = 0;
  double serial_blocks_per_sec = 0;
  double parallel_wall_ms = 0;
  double parallel_blocks_per_sec = 0;
};

ForkValidationRun RunForkValidation(int forks, int depth, int txs_per_block,
                                    int threads) {
  constexpr int kUsersPerFork = 4;
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.max_block_txs = 64;

  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  for (int i = 0; i < forks * kUsersPerFork; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(9000 + static_cast<uint64_t>(i)));
    allocations.push_back(chain::TxOutput{1'000'000, keys.back().public_key()});
  }
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(8999);

  // Mine the fork flood off a source chain: every fork branches at genesis
  // and carries its own users' transfers, so sibling levels are mutually
  // independent.
  chain::Blockchain source(params, allocations);
  Rng rng(777);
  uint64_t nonce = 1;
  TimePoint now = 0;
  std::vector<std::vector<chain::Block>> fork_blocks(
      static_cast<size_t>(forks));
  for (int f = 0; f < forks; ++f) {
    std::vector<chain::Wallet> wallets;
    for (int u = 0; u < kUsersPerFork; ++u) {
      wallets.emplace_back(keys[static_cast<size_t>(f * kUsersPerFork + u)],
                           source.id());
    }
    crypto::Hash256 tip = source.genesis()->hash;
    for (int d = 0; d < depth; ++d) {
      now += 100;
      const chain::LedgerState& tip_state = source.Get(tip)->state;
      std::vector<chain::Transaction> txs;
      for (int j = 0; j < txs_per_block; ++j) {
        const size_t from = static_cast<size_t>((d + j) % kUsersPerFork);
        auto tx = wallets[from].BuildTransfer(
            tip_state,
            keys[static_cast<size_t>(f * kUsersPerFork) +
                 (from + 1) % kUsersPerFork]
                .public_key(),
            /*amount=*/10, /*fee=*/1, nonce++);
        if (tx.ok()) txs.push_back(*tx);
      }
      auto block =
          source.AssembleBlock(tip, txs, miner.public_key(), now, &rng);
      if (!block.ok() || !source.SubmitBlock(*block, now).ok()) {
        std::fprintf(stderr, "fork validation: mining failed (fork %d)\n", f);
        break;
      }
      tip = block->header.Hash();
      fork_blocks[static_cast<size_t>(f)].push_back(*block);
    }
  }

  // Level order: round d presents one independent block per fork.
  std::vector<chain::Block> batch;
  for (int d = 0; d < depth; ++d) {
    for (int f = 0; f < forks; ++f) {
      const auto& fork = fork_blocks[static_cast<size_t>(f)];
      if (d < static_cast<int>(fork.size())) {
        batch.push_back(fork[static_cast<size_t>(d)]);
      }
    }
  }

  ForkValidationRun run;
  run.forks = forks;
  run.depth = depth;
  run.threads = threads;
  run.blocks = batch.size();

  auto replay = [&](int replay_threads, double* wall_ms,
                    size_t* accepted) -> std::string {
    chain::Blockchain replica(params, allocations);
    const Clock::time_point t0 = Clock::now();
    auto result = replica.SubmitBlocks(batch, now, replay_threads);
    *wall_ms = ElapsedMs(t0);
    *accepted = result.accepted;
    return replica.head()->hash.ToHex();
  };
  size_t accepted_parallel = 0;
  const std::string serial_head =
      replay(1, &run.serial_wall_ms, &run.accepted);
  const std::string parallel_head =
      replay(threads, &run.parallel_wall_ms, &accepted_parallel);
  run.head_hash = serial_head;
  run.thread_invariant =
      serial_head == parallel_head && accepted_parallel == run.accepted &&
      run.accepted == run.blocks;
  run.serial_blocks_per_sec =
      run.serial_wall_ms > 0 ? static_cast<double>(run.blocks) /
                                   (run.serial_wall_ms / 1000.0)
                             : 0;
  run.parallel_blocks_per_sec =
      run.parallel_wall_ms > 0 ? static_cast<double>(run.blocks) /
                                     (run.parallel_wall_ms / 1000.0)
                               : 0;
  return run;
}

// ---- section 2d: intra-block parallel execution ---------------------------
//
// One wide block of pairwise-independent funded transfers (a single
// conflict-free wave — the best case for ApplyBlockBodyParallel) is
// applied repeatedly to the same base state: once through the serial
// oracle, then through the parallel executor at each thread count. The
// receipts digest and post-state liquid value are deterministic witnesses;
// any divergence across paths or thread counts fails the run. Wall-clock
// speedup over the serial loop is the PR 7 headline number.

struct BlockExecThreadRun {
  int threads = 0;
  double wall_ms = 0;
  double txs_per_sec = 0;
  double speedup = 0;  ///< serial_wall_ms / wall_ms.
};

struct BlockExecRun {
  int body_txs = 0;
  int repeats = 0;
  size_t waves = 0;            ///< Deterministic: conflict-graph depth.
  std::string receipts_digest; ///< Deterministic witness over all receipts.
  chain::Amount post_liquid = 0;  ///< Deterministic post-state witness.
  bool thread_invariant = true;
  double serial_wall_ms = 0;
  double serial_txs_per_sec = 0;
  std::vector<BlockExecThreadRun> per_thread;
};

BlockExecRun RunBlockExecution(int body_txs, int repeats,
                               const std::vector<int>& thread_counts) {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.max_block_txs = static_cast<size_t>(body_txs);

  // One funded key per transaction: every transfer consumes its own
  // allocation, so the body is one wide conflict-free wave.
  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  for (int i = 0; i < body_txs; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(12'000 + static_cast<uint64_t>(i)));
    allocations.push_back(chain::TxOutput{10'000, keys.back().public_key()});
  }
  chain::Blockchain source(params, allocations);
  Rng rng(31337);
  std::vector<chain::Transaction> txs;
  for (int i = 0; i < body_txs; ++i) {
    chain::Wallet wallet(keys[static_cast<size_t>(i)], source.id());
    auto tx = wallet.BuildTransfer(
        source.StateAtHead(),
        keys[static_cast<size_t>((i + 1) % body_txs)].public_key(),
        /*amount=*/100, /*fee=*/1, static_cast<uint64_t>(i));
    if (tx.ok()) txs.push_back(*tx);
  }
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(11'999);
  auto block = source.AssembleBlock(source.head()->hash, txs,
                                    miner.public_key(), /*now=*/100, &rng);
  BlockExecRun run;
  run.repeats = repeats;
  if (!block.ok()) {
    std::fprintf(stderr, "block execution: assembly failed\n");
    run.thread_invariant = false;
    return run;
  }
  run.body_txs = static_cast<int>(block->txs.size()) - 1;
  run.waves = chain::BuildExecutionWaves(block->txs).size();
  const chain::LedgerState& base = source.head()->state;

  const auto digest_of = [](const std::vector<chain::Receipt>& receipts) {
    Bytes all;
    for (const chain::Receipt& receipt : receipts) {
      const Bytes encoded = receipt.Encode();
      all.insert(all.end(), encoded.begin(), encoded.end());
    }
    return crypto::Hash256::Of(all).ToHex();
  };

  {  // Serial oracle baseline.
    const Clock::time_point t0 = Clock::now();
    for (int rep = 0; rep < repeats; ++rep) {
      chain::LedgerState state = base;
      auto receipts = chain::ApplyBlockBody(&state, *block, params);
      if (!receipts.ok()) {
        run.thread_invariant = false;
        return run;
      }
      if (rep == 0) {
        run.receipts_digest = digest_of(*receipts);
        run.post_liquid = state.LiquidValue();
      }
    }
    run.serial_wall_ms = ElapsedMs(t0);
  }
  const double total_txs =
      static_cast<double>(run.body_txs) * static_cast<double>(repeats);
  run.serial_txs_per_sec =
      run.serial_wall_ms > 0 ? total_txs / (run.serial_wall_ms / 1000.0) : 0;

  for (int threads : thread_counts) {
    common::WorkerPool pool(threads);
    BlockExecThreadRun per;
    per.threads = pool.threads();
    const Clock::time_point t0 = Clock::now();
    for (int rep = 0; rep < repeats; ++rep) {
      chain::LedgerState state = base;
      auto receipts = chain::ApplyBlockBodyParallel(&state, *block, params,
                                                    &pool);
      if (!receipts.ok() || digest_of(*receipts) != run.receipts_digest ||
          state.LiquidValue() != run.post_liquid) {
        run.thread_invariant = false;
      }
    }
    per.wall_ms = ElapsedMs(t0);
    per.txs_per_sec = per.wall_ms > 0 ? total_txs / (per.wall_ms / 1000.0) : 0;
    per.speedup = per.wall_ms > 0 ? run.serial_wall_ms / per.wall_ms : 0;
    run.per_thread.push_back(per);
  }
  return run;
}

// ---- section 2e: deep-chain catch-up --------------------------------------
//
// A purely linear chain (the worst case for SubmitBlocks' cross-fork
// parallelism: every round is one block wide) with wide transfer bodies.
// Width-1 rounds hand the batch pool down into intra-block execution, so
// catch-up replay now scales with threads even without forks. Head hash
// and acceptance are the deterministic self-check.

struct CatchupThreadRun {
  int threads = 0;
  double wall_ms = 0;
  double blocks_per_sec = 0;
  double speedup = 0;  ///< threads=1 wall / this wall.
};

struct CatchupRun {
  int depth = 0;
  int txs_per_block = 0;
  size_t blocks = 0;
  std::string head_hash;
  bool thread_invariant = true;
  std::vector<CatchupThreadRun> per_thread;  ///< First entry is threads=1.
};

CatchupRun RunDeepCatchup(int depth, int txs_per_block,
                          const std::vector<int>& thread_counts) {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.max_block_txs = static_cast<size_t>(txs_per_block);

  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  for (int i = 0; i < txs_per_block; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(15'000 + static_cast<uint64_t>(i)));
    allocations.push_back(chain::TxOutput{1'000'000, keys.back().public_key()});
  }
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(14'999);

  chain::Blockchain source(params, allocations);
  Rng rng(2718);
  TimePoint now = 0;
  uint64_t nonce = 1;
  std::vector<chain::Block> batch;
  for (int d = 0; d < depth; ++d) {
    now += 100;
    std::vector<chain::Transaction> txs;
    for (int j = 0; j < txs_per_block; ++j) {
      chain::Wallet wallet(keys[static_cast<size_t>(j)], source.id());
      auto tx = wallet.BuildTransfer(
          source.StateAtHead(),
          keys[static_cast<size_t>((j + 1) % txs_per_block)].public_key(),
          /*amount=*/10, /*fee=*/1, nonce++);
      if (tx.ok()) txs.push_back(*tx);
    }
    auto block = source.AssembleBlock(source.head()->hash, txs,
                                      miner.public_key(), now, &rng);
    if (!block.ok() || !source.SubmitBlock(*block, now).ok()) {
      std::fprintf(stderr, "deep catchup: mining failed at depth %d\n", d);
      break;
    }
    batch.push_back(*block);
  }

  CatchupRun run;
  run.depth = depth;
  run.txs_per_block = txs_per_block;
  run.blocks = batch.size();
  run.head_hash = source.head()->hash.ToHex();

  for (int threads : thread_counts) {
    chain::Blockchain replica(params, allocations);
    CatchupThreadRun per;
    per.threads = threads;
    const Clock::time_point t0 = Clock::now();
    auto result = replica.SubmitBlocks(batch, now, threads);
    per.wall_ms = ElapsedMs(t0);
    if (result.accepted != batch.size() ||
        replica.head()->hash.ToHex() != run.head_hash) {
      run.thread_invariant = false;
    }
    per.blocks_per_sec = per.wall_ms > 0 ? static_cast<double>(run.blocks) /
                                               (per.wall_ms / 1000.0)
                                         : 0;
    const double base_wall =
        run.per_thread.empty() ? per.wall_ms : run.per_thread.front().wall_ms;
    per.speedup = per.wall_ms > 0 ? base_wall / per.wall_ms : 0;
    run.per_thread.push_back(per);
  }
  return run;
}

// ---- section 3: PoW nonce search ------------------------------------------

struct PowRun {
  uint64_t headers = 0;
  uint64_t evaluations = 0;  ///< Deterministic given the seed.
  double wall_ms = 0;
  double evals_per_sec = 0;
};

PowRun RunPow(uint32_t difficulty_bits, uint64_t headers) {
  Rng rng(99);
  PowRun run;
  run.headers = headers;
  const Clock::time_point t0 = Clock::now();
  for (uint64_t i = 0; i < headers; ++i) {
    chain::BlockHeader header;
    header.chain_id = 1;
    header.height = i + 1;
    header.time = static_cast<TimePoint>(i * 100);
    header.difficulty_bits = difficulty_bits;
    run.evaluations += chain::MineHeader(&header, &rng);
  }
  run.wall_ms = ElapsedMs(t0);
  run.evals_per_sec = run.wall_ms > 0 ? static_cast<double>(run.evaluations) /
                                            (run.wall_ms / 1000.0)
                                      : 0;
  return run;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  const uint64_t growth_blocks = context.smoke ? 400 : 2500;
  const uint64_t growth_segment = context.smoke ? 100 : 250;
  const int txs_per_block = 4;
  const uint64_t sim_height = context.smoke ? 150 : 1200;
  const int drain_users = context.smoke ? 500 : 3000;
  const size_t prune_pool_txs = context.smoke ? 1'000 : 10'000;
  const int prune_chunk = 32;
  const int prune_repeats = context.smoke ? 3 : 10;
  const int fork_count = context.smoke ? 4 : 8;
  const int fork_depth = context.smoke ? 12 : 60;
  const int fork_threads = common::WorkerPool::ResolveThreads(context.threads);
  const uint32_t pow_bits = context.smoke ? 12 : 16;
  const uint64_t pow_headers = context.smoke ? 4 : 16;
  const int exec_body_txs = context.smoke ? 48 : 192;
  const int exec_repeats = context.smoke ? 30 : 150;
  const int catchup_depth = context.smoke ? 15 : 100;
  const int catchup_txs = 24;
  const std::vector<int> exec_threads = {1, 2, 4, 8};

  benchutil::PrintHeader(
      "Engine hot paths — blocks/sec vs chain length, mining-sim rate,\n"
      "and PoW nonce-evals/sec (wall-clock; deterministic witnesses in "
      "results)");

  GrowthRun growth =
      RunChainGrowth(growth_blocks, growth_segment, txs_per_block);
  std::printf("%12s | %8s | %12s | %10s\n", "height", "txs", "wall ms",
              "blocks/s");
  benchutil::PrintRule(52);
  runner::Json growth_cells = runner::Json::Array();
  runner::Json growth_wall = runner::Json::Array();
  for (const GrowthSegment& seg : growth.segments) {
    std::printf("%12llu | %8d | %12.1f | %10.0f\n",
                static_cast<unsigned long long>(seg.end_height), seg.txs,
                seg.wall_ms, seg.blocks_per_sec);
    runner::Json cell = runner::Json::Object();
    cell.Set("end_height", seg.end_height);
    cell.Set("txs", seg.txs);
    growth_cells.Push(std::move(cell));
    runner::Json wall = runner::Json::Object();
    wall.Set("end_height", seg.end_height);
    wall.Set("wall_ms", seg.wall_ms);
    wall.Set("blocks_per_sec", seg.blocks_per_sec);
    growth_wall.Push(std::move(wall));
  }

  MiningSimRun sim = RunMiningSim(sim_height);
  std::printf("\nmining sim: height %llu (%zu blocks stored) in %.1f ms — "
              "%.0f blocks/s\n",
              static_cast<unsigned long long>(sim.height), sim.blocks_stored,
              sim.wall_ms, sim.blocks_per_sec);

  MempoolDrainRun drain = RunMempoolDrain(drain_users);
  std::printf("mempool drain: %zu txs over %llu blocks (%zu left pending) in "
              "%.1f ms — %.0f txs/s\n",
              drain.submitted, static_cast<unsigned long long>(drain.height),
              drain.pool_left, drain.wall_ms, drain.txs_per_sec);

  PruneDeltaRun prune = RunPruneDelta(prune_pool_txs, prune_chunk,
                                      prune_repeats);
  std::printf("prune delta: %zu txs in %d-id chunks x%d — set %.1f ms, "
              "span %.1f ms (%.2fx), post-states %s\n",
              prune.pool_txs, prune.chunk, prune.repeats, prune.set_wall_ms,
              prune.span_wall_ms, prune.speedup,
              prune.identical ? "identical" : "DIVERGED");
  if (!prune.identical) {
    std::fprintf(stderr, "prune delta: overloads left different pools\n");
    return 1;
  }

  ForkValidationRun fork = RunForkValidation(fork_count, fork_depth,
                                             txs_per_block, fork_threads);
  std::printf("fork validation: %zu blocks (%d forks x %d deep) — serial "
              "%.1f ms (%.0f blocks/s), %d threads %.1f ms (%.0f blocks/s), "
              "heads %s\n",
              fork.blocks, fork.forks, fork.depth, fork.serial_wall_ms,
              fork.serial_blocks_per_sec, fork.threads, fork.parallel_wall_ms,
              fork.parallel_blocks_per_sec,
              fork.thread_invariant ? "identical" : "DIVERGED");
  if (!fork.thread_invariant) {
    std::fprintf(stderr,
                 "fork validation: parallel replay diverged from serial\n");
    return 1;
  }

  BlockExecRun exec = RunBlockExecution(exec_body_txs, exec_repeats,
                                        exec_threads);
  std::printf("\nblock execution: %d-tx block x%d (%zu wave%s) — serial "
              "%.1f ms (%.0f txs/s)\n",
              exec.body_txs, exec.repeats, exec.waves,
              exec.waves == 1 ? "" : "s", exec.serial_wall_ms,
              exec.serial_txs_per_sec);
  for (const BlockExecThreadRun& per : exec.per_thread) {
    std::printf("block execution[%d threads]: %.1f ms — %.0f txs/s "
                "(%.2fx)\n",
                per.threads, per.wall_ms, per.txs_per_sec, per.speedup);
  }
  if (!exec.thread_invariant) {
    std::fprintf(stderr,
                 "block execution: parallel path diverged from serial\n");
    return 1;
  }

  CatchupRun catchup = RunDeepCatchup(catchup_depth, catchup_txs,
                                      exec_threads);
  for (const CatchupThreadRun& per : catchup.per_thread) {
    std::printf("deep catchup[%d threads]: %zu blocks x %d txs — %.1f ms "
                "(%.0f blocks/s, %.2fx)\n",
                per.threads, catchup.blocks, catchup.txs_per_block,
                per.wall_ms, per.blocks_per_sec, per.speedup);
  }
  if (!catchup.thread_invariant) {
    std::fprintf(stderr,
                 "deep catchup: replay diverged across thread counts\n");
    return 1;
  }

  PowRun pow = RunPow(pow_bits, pow_headers);
  std::printf("pow: %llu headers at %u bits, %llu evals in %.1f ms — "
              "%.2fM evals/s (dispatch: %s)\n",
              static_cast<unsigned long long>(pow.headers), pow_bits,
              static_cast<unsigned long long>(pow.evaluations), pow.wall_ms,
              pow.evals_per_sec / 1e6,
              crypto::Sha256::DispatchName(crypto::Sha256::ActiveDispatch()));

  // PoW dispatch ladder: the identical workload on every available
  // SHA-256 dispatch level. Self-checking — the eval count is part of the
  // determinism contract and must not depend on the hardware path.
  const crypto::Sha256::Dispatch entry_level = crypto::Sha256::ActiveDispatch();
  runner::Json pow_dispatch_wall = runner::Json::Array();
  bool dispatch_invariant = true;
  for (crypto::Sha256::Dispatch level :
       {crypto::Sha256::Dispatch::kScalar, crypto::Sha256::Dispatch::kShaNi,
        crypto::Sha256::Dispatch::kAvx2}) {
    if (!crypto::Sha256::DispatchAvailable(level)) continue;
    crypto::Sha256::SetDispatch(level);
    const PowRun ladder = RunPow(pow_bits, pow_headers);
    if (ladder.evaluations != pow.evaluations) dispatch_invariant = false;
    std::printf("pow[%s]: %llu evals in %.1f ms — %.2fM evals/s%s\n",
                crypto::Sha256::DispatchName(level),
                static_cast<unsigned long long>(ladder.evaluations),
                ladder.wall_ms, ladder.evals_per_sec / 1e6,
                ladder.evaluations == pow.evaluations ? "" : " (DIVERGED)");
    runner::Json cell = runner::Json::Object();
    cell.Set("dispatch", crypto::Sha256::DispatchName(level));
    cell.Set("wall_ms", ladder.wall_ms);
    cell.Set("evals_per_sec", ladder.evals_per_sec);
    pow_dispatch_wall.Push(std::move(cell));
  }
  crypto::Sha256::SetDispatch(entry_level);
  if (!dispatch_invariant) {
    std::fprintf(stderr,
                 "pow dispatch: eval counts diverged across SHA-256 paths\n");
    return 1;
  }

  // Deterministic witnesses: pure functions of the seeds. The golden
  // determinism test pins the same engine outputs; here they make every
  // published BENCH json self-checking across machines.
  runner::Json results = runner::Json::Object();
  runner::Json growth_json = runner::Json::Object();
  growth_json.Set("blocks", growth_blocks);
  growth_json.Set("txs_per_block", txs_per_block);
  growth_json.Set("height", growth.height);
  growth_json.Set("head_hash", growth.head_hash);
  growth_json.Set("segments", std::move(growth_cells));
  results.Set("chain_growth", std::move(growth_json));
  runner::Json sim_json = runner::Json::Object();
  sim_json.Set("target_height", sim_height);
  sim_json.Set("height", sim.height);
  sim_json.Set("blocks_stored", sim.blocks_stored);
  sim_json.Set("head_hash", sim.head_hash);
  results.Set("mining_sim", std::move(sim_json));
  runner::Json drain_json = runner::Json::Object();
  drain_json.Set("submitted", drain.submitted);
  drain_json.Set("included", drain.included);
  drain_json.Set("height", drain.height);
  drain_json.Set("pool_left", drain.pool_left);
  drain_json.Set("head_hash", drain.head_hash);
  // Prune-overload equivalence is deterministic; the timing delta is
  // machine-dependent and lives under wall.prune_delta.
  drain_json.Set("prune_pool_txs", prune.pool_txs);
  drain_json.Set("prune_chunk", prune.chunk);
  drain_json.Set("prune_identical", prune.identical);
  results.Set("mempool_drain", std::move(drain_json));
  runner::Json fork_json = runner::Json::Object();
  fork_json.Set("forks", fork.forks);
  fork_json.Set("depth", fork.depth);
  fork_json.Set("blocks", fork.blocks);
  fork_json.Set("accepted", fork.accepted);
  fork_json.Set("head_hash", fork.head_hash);
  fork_json.Set("thread_invariant", fork.thread_invariant);
  results.Set("fork_validation", std::move(fork_json));
  runner::Json exec_json = runner::Json::Object();
  exec_json.Set("body_txs", exec.body_txs);
  exec_json.Set("repeats", exec.repeats);
  exec_json.Set("waves", exec.waves);
  exec_json.Set("receipts_digest", exec.receipts_digest);
  exec_json.Set("post_liquid", exec.post_liquid);
  exec_json.Set("thread_invariant", exec.thread_invariant);
  results.Set("block_execution", std::move(exec_json));
  runner::Json catchup_json = runner::Json::Object();
  catchup_json.Set("depth", catchup.depth);
  catchup_json.Set("txs_per_block", catchup.txs_per_block);
  catchup_json.Set("blocks", catchup.blocks);
  catchup_json.Set("head_hash", catchup.head_hash);
  catchup_json.Set("thread_invariant", catchup.thread_invariant);
  results.Set("deep_catchup", std::move(catchup_json));
  runner::Json pow_json = runner::Json::Object();
  pow_json.Set("difficulty_bits", pow_bits);
  pow_json.Set("headers", pow.headers);
  pow_json.Set("evaluations", pow.evaluations);
  // Deterministic by construction (self-checked above): every available
  // dispatch level visited the same nonces. Machine-dependent rates live
  // under wall.pow_dispatch.
  pow_json.Set("dispatch_invariant", dispatch_invariant);
  results.Set("pow", std::move(pow_json));

  // Wall-clock rates: machine-dependent, deliberately outside "results".
  runner::Json wall = runner::Json::Object();
  wall.Set("chain_growth_segments", std::move(growth_wall));
  runner::Json sim_wall = runner::Json::Object();
  sim_wall.Set("wall_ms", sim.wall_ms);
  sim_wall.Set("blocks_per_sec", sim.blocks_per_sec);
  wall.Set("mining_sim", std::move(sim_wall));
  runner::Json drain_wall = runner::Json::Object();
  drain_wall.Set("wall_ms", drain.wall_ms);
  drain_wall.Set("txs_per_sec", drain.txs_per_sec);
  wall.Set("mempool_drain", std::move(drain_wall));
  runner::Json prune_wall = runner::Json::Object();
  prune_wall.Set("repeats", prune.repeats);
  prune_wall.Set("set_wall_ms", prune.set_wall_ms);
  prune_wall.Set("span_wall_ms", prune.span_wall_ms);
  prune_wall.Set("speedup", prune.speedup);
  wall.Set("prune_delta", std::move(prune_wall));
  runner::Json fork_wall = runner::Json::Object();
  fork_wall.Set("threads", fork.threads);
  fork_wall.Set("serial_wall_ms", fork.serial_wall_ms);
  fork_wall.Set("serial_blocks_per_sec", fork.serial_blocks_per_sec);
  fork_wall.Set("parallel_wall_ms", fork.parallel_wall_ms);
  fork_wall.Set("parallel_blocks_per_sec", fork.parallel_blocks_per_sec);
  wall.Set("fork_validation", std::move(fork_wall));
  runner::Json exec_wall = runner::Json::Object();
  exec_wall.Set("serial_wall_ms", exec.serial_wall_ms);
  exec_wall.Set("serial_txs_per_sec", exec.serial_txs_per_sec);
  runner::Json exec_threads_wall = runner::Json::Array();
  for (const BlockExecThreadRun& per : exec.per_thread) {
    runner::Json cell = runner::Json::Object();
    cell.Set("threads", per.threads);
    cell.Set("wall_ms", per.wall_ms);
    cell.Set("txs_per_sec", per.txs_per_sec);
    cell.Set("speedup", per.speedup);
    exec_threads_wall.Push(std::move(cell));
  }
  exec_wall.Set("per_thread", std::move(exec_threads_wall));
  wall.Set("block_execution", std::move(exec_wall));
  runner::Json catchup_wall = runner::Json::Array();
  for (const CatchupThreadRun& per : catchup.per_thread) {
    runner::Json cell = runner::Json::Object();
    cell.Set("threads", per.threads);
    cell.Set("wall_ms", per.wall_ms);
    cell.Set("blocks_per_sec", per.blocks_per_sec);
    cell.Set("speedup", per.speedup);
    catchup_wall.Push(std::move(cell));
  }
  wall.Set("deep_catchup", std::move(catchup_wall));
  runner::Json pow_wall = runner::Json::Object();
  pow_wall.Set("wall_ms", pow.wall_ms);
  pow_wall.Set("evals_per_sec", pow.evals_per_sec);
  pow_wall.Set("active_dispatch",
               crypto::Sha256::DispatchName(entry_level));
  wall.Set("pow", std::move(pow_wall));
  wall.Set("pow_dispatch", std::move(pow_dispatch_wall));

  auto written = runner::WriteBenchJson(context, "engine_hotpaths",
                                        std::move(results), std::move(wall));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
