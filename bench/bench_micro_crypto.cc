// Engineering micro-benchmarks (google-benchmark): the cryptographic
// substrate every protocol operation rests on — SHA-256, Schnorr
// signatures, ms(D) multisignatures, Merkle trees, and the commitment
// schemes.

#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"

#include "src/common/random.h"
#include "src/crypto/commitment.h"
#include "src/crypto/merkle.h"
#include "src/crypto/multisig.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"

namespace ac3::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash256::Of(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
  KeyPair key = KeyPair::FromSeed(7);
  Rng rng(2);
  Bytes message = rng.NextBytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Sign(message));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  KeyPair key = KeyPair::FromSeed(7);
  Rng rng(2);
  Bytes message = rng.NextBytes(64);
  Signature sig = key.Sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Verify(key.public_key(), message, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_MultisigVerifyAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Bytes message = rng.NextBytes(128);
  Multisignature ms(message);
  std::vector<PublicKey> signers;
  for (int i = 0; i < n; ++i) {
    KeyPair key = KeyPair::FromSeed(100 + static_cast<uint64_t>(i));
    (void)ms.AddSignature(key);
    signers.push_back(key.public_key());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms.VerifyAll(signers));
  }
}
BENCHMARK(BM_MultisigVerifyAll)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_MerkleBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) leaves.push_back(Hash256::Of(rng.NextBytes(32)));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_MerkleProveVerify(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) leaves.push_back(Hash256::Of(rng.NextBytes(32)));
  MerkleTree tree(leaves);
  auto proof = tree.Prove(n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyMerkleProof(leaves[n / 2], *proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProveVerify)->Arg(64)->Arg(1024);

void BM_HashlockVerify(benchmark::State& state) {
  Rng rng(6);
  Bytes secret = rng.NextBytes(32);
  HashlockCommitment lock = HashlockCommitment::FromSecret(secret);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.VerifySecret(secret));
  }
}
BENCHMARK(BM_HashlockVerify);

void BM_SignatureCommitmentVerify(benchmark::State& state) {
  KeyPair trent = KeyPair::FromSeed(9);
  Hash256 ms_id = Hash256::Of(Bytes{1, 2, 3});
  SignatureCommitment commitment(ms_id, trent.public_key(),
                                 CommitmentTag::kRedeem);
  Signature secret =
      trent.Sign(SignatureCommitmentMessage(ms_id, CommitmentTag::kRedeem));
  for (auto _ : state) {
    benchmark::DoNotOptimize(commitment.VerifySecret(secret));
  }
}
BENCHMARK(BM_SignatureCommitmentVerify);

}  // namespace
}  // namespace ac3::crypto

int main(int argc, char** argv) {
  return ac3::benchutil::GBenchMain(argc, argv, "micro_crypto");
}
