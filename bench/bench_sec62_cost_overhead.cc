// Section 6.2 — monetary cost overhead of AC3WN over Herlihy's protocol.
//
// Paper result: Herlihy pays N·(fd + ffc); AC3WN pays (N+1)·(fd + ffc);
// the overhead is exactly 1/N. The harness prints the analytic table and
// cross-checks it against fees *measured* from full simulated runs of both
// engines on N-edge rings, then reprints the paper's dollar estimate for
// SCw (≈$4 at $300/ETH, ≈$2 at $140/ETH).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/analysis/cost_model.h"

namespace ac3 {
namespace {

constexpr TimePoint kDeadline = Minutes(60);

chain::Amount MeasuredHerlihyFee(int n, uint64_t seed) {
  core::ScenarioOptions options;
  options.participants = n;
  options.asset_chains = std::min(n, 4);
  options.witness_chain = false;
  options.seed = seed;
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, n);
  protocols::HerlihySwapEngine engine(world.env(), ring,
                                      world.all_participants(),
                                      benchutil::FastHtlcConfig());
  auto report = engine.Run(kDeadline);
  return report.ok() && report->committed ? report->total_fees : 0;
}

chain::Amount MeasuredAc3wnFee(int n, uint64_t seed) {
  core::ScenarioOptions options;
  options.participants = n;
  options.asset_chains = std::min(n, 4);
  options.seed = seed;
  // Make the witness chain's fees equal the asset chains' fees so the
  // measured total is comparable to the equal-fee analytic model.
  options.witness_params.deploy_fee = options.asset_params.deploy_fee;
  options.witness_params.call_fee = options.asset_params.call_fee;
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, n);
  protocols::Ac3wnSwapEngine engine(world.env(), ring,
                                    world.all_participants(),
                                    world.witness_chain(),
                                    benchutil::FastAc3wnConfig());
  auto report = engine.Run(kDeadline);
  return report.ok() && report->committed ? report->total_fees : 0;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  const chain::Amount fd = chain::TestChainParams().deploy_fee;
  const chain::Amount ffc = chain::TestChainParams().call_fee;

  benchutil::PrintHeader(
      "Section 6.2 — AC2T fee: Herlihy N*(fd+ffc) vs AC3WN (N+1)*(fd+ffc)");
  std::printf("fee constants: fd=%llu  ffc=%llu (per contract)\n\n",
              static_cast<unsigned long long>(fd),
              static_cast<unsigned long long>(ffc));
  std::printf("%4s | %12s %12s | %12s %12s | %10s\n", "N",
              "Herlihy(an.)", "AC3WN(an.)", "Herlihy(sim)", "AC3WN(sim)",
              "overhead");
  benchutil::PrintRule(78);
  const int max_n = context.smoke ? 4 : 8;
  runner::Json rows = runner::Json::Array();
  for (int n = 2; n <= max_n; ++n) {
    const chain::Amount herlihy_analytic =
        analysis::HerlihyFee(static_cast<uint32_t>(n), fd, ffc);
    const chain::Amount ac3wn_analytic =
        analysis::Ac3wnFee(static_cast<uint32_t>(n), fd, ffc);
    const chain::Amount herlihy_sim =
        MeasuredHerlihyFee(n, 6200 + static_cast<uint64_t>(n));
    const chain::Amount ac3wn_sim =
        MeasuredAc3wnFee(n, 6300 + static_cast<uint64_t>(n));
    std::printf("%4d | %12llu %12llu | %12llu %12llu | %9.1f%%\n", n,
                static_cast<unsigned long long>(herlihy_analytic),
                static_cast<unsigned long long>(ac3wn_analytic),
                static_cast<unsigned long long>(herlihy_sim),
                static_cast<unsigned long long>(ac3wn_sim),
                100.0 * analysis::Ac3wnOverheadRatio(static_cast<uint32_t>(n)));
    runner::Json row = runner::Json::Object();
    row.Set("n", n);
    row.Set("herlihy_fee_analytic", herlihy_analytic);
    row.Set("ac3wn_fee_analytic", ac3wn_analytic);
    row.Set("herlihy_fee_simulated", herlihy_sim);
    row.Set("ac3wn_fee_simulated", ac3wn_sim);
    row.Set("overhead_ratio",
            analysis::Ac3wnOverheadRatio(static_cast<uint32_t>(n)));
    rows.Push(std::move(row));
  }
  // Larger N: analytic only (the asymptotic 1/N vanishing overhead).
  for (int n : {12, 16, 20}) {
    std::printf("%4d | %12llu %12llu | %12s %12s | %9.1f%%\n", n,
                static_cast<unsigned long long>(
                    analysis::HerlihyFee(static_cast<uint32_t>(n), fd, ffc)),
                static_cast<unsigned long long>(
                    analysis::Ac3wnFee(static_cast<uint32_t>(n), fd, ffc)),
                "-", "-",
                100.0 * analysis::Ac3wnOverheadRatio(static_cast<uint32_t>(n)));
  }
  benchutil::PrintRule(78);
  std::printf(
      "SCw dollar cost (Ryan [27]-style estimate): $%.2f at $300/ETH, "
      "$%.2f at $140/ETH\n",
      analysis::ScwDollarCost(4.0, 300.0), analysis::ScwDollarCost(4.0, 140.0));
  std::printf(
      "shape check: simulated fees match the analytic columns exactly and\n"
      "the AC3WN overhead is one extra contract: 1/N of Herlihy's fee.\n");
  runner::Json results = runner::Json::Object();
  results.Set("fd", fd);
  results.Set("ffc", ffc);
  results.Set("rows", std::move(rows));
  results.Set("scw_usd_at_300", analysis::ScwDollarCost(4.0, 300.0));
  results.Set("scw_usd_at_140", analysis::ScwDollarCost(4.0, 140.0));
  auto written = runner::WriteBenchJson(context, "sec62_cost_overhead",
                                        std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
