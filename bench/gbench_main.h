// Shared main() for the google-benchmark micro-harnesses, so every bench
// binary in the repo understands --smoke: CI runs each one briefly to
// prove it still links and executes, without paying full measuring time.

#ifndef AC3_BENCH_GBENCH_MAIN_H_
#define AC3_BENCH_GBENCH_MAIN_H_

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

namespace ac3::benchutil {

/// Strips the shared bench flags from the argument list — --smoke clamps
/// per-benchmark measuring time to ~one iteration; --out/--threads are
/// accepted-and-ignored so CI can pass one flag set to every bench binary
/// — and hands the rest to google-benchmark.
inline int GBenchMain(int argc, char** argv) {
  static std::string min_time = "--benchmark_min_time=0.01";
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    if ((std::strcmp(argv[i], "--out") == 0 ||
         std::strcmp(argv[i], "--threads") == 0) &&
        i + 1 < argc) {
      ++i;  // Micro-benchmarks have no sweep output; skip flag + value.
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke) args.push_back(min_time.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ac3::benchutil

#endif  // AC3_BENCH_GBENCH_MAIN_H_
