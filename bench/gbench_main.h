// Shared main() for the google-benchmark micro-harnesses, so every bench
// binary in the repo understands --smoke: CI runs each one briefly to
// prove it still links and executes, without paying full measuring time.
//
// Like every other harness, a micro-benchmark run publishes the standard
// BENCH_<name>.json envelope (results carry the harness kind; the
// wall-clock section carries wall_ms_total), so the "every bench emits
// wall-clock fields" contract holds across the whole bench/ directory.

#ifndef AC3_BENCH_GBENCH_MAIN_H_
#define AC3_BENCH_GBENCH_MAIN_H_

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"

namespace ac3::benchutil {

/// Consumes the shared bench flags through bench::Options::ParseKnown —
/// --smoke clamps per-benchmark measuring time to ~one iteration; --out
/// selects the BENCH_<name>.json directory; the other shared flags are
/// accepted-and-ignored so CI can pass one flag set to every bench binary
/// — and hands everything unrecognized (--benchmark_*) to
/// google-benchmark.
inline int GBenchMain(int argc, char** argv, const std::string& name) {
  static std::string min_time = "--benchmark_min_time=0.01";
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  bench::Options context = bench::Options::ParseKnown(argc, argv, &args);
  if (context.exit_early) return context.exit_code;
  if (context.smoke) args.push_back(min_time.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  runner::Json results = runner::Json::Object();
  results.Set("harness", "google-benchmark");
  auto written = runner::WriteBenchJson(context, name, std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace ac3::benchutil

#endif  // AC3_BENCH_GBENCH_MAIN_H_
