// Section 6.3 — choosing the witness network: the depth d must satisfy
// d > Va*dh/Ch so a 51% rental attack costs more than the assets at stake.
//
// The harness prints (a) the paper's worked example ($1M on Bitcoin ⇒
// d > 20), (b) the required depth for an asset-value sweep across the
// top-4 chains, (c) the witness ranking by time-to-finality, and (d) the
// fork-survival model ε(q, d) = (q/(1-q))^d behind Lemma 5.3, cross-checked
// against fork frequencies measured from the mining simulator under
// aggressive gossip delays.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/analysis/witness_selection.h"

namespace ac3 {
namespace {

/// Measures how often a block that was once canonical at depth k gets
/// reorged, by running a single chain with gossip delays comparable to the
/// block interval (fork-heavy regime) and tracking canonical flips.
std::map<uint32_t, double> MeasureReorgFrequency(uint64_t seed,
                                                 TimePoint duration) {
  core::ScenarioOptions options;
  options.asset_chains = 1;
  options.witness_chain = false;
  options.participants = 2;
  options.seed = seed;
  options.miner_count = 4;
  // Propagation delay beyond the block interval: natural forks abound.
  options.max_propagation_delay = Milliseconds(150);
  core::ScenarioWorld world(options);
  world.StartMining();

  const chain::Blockchain* chain = world.env()->blockchain(0);
  // hash -> deepest confirmation count observed while canonical.
  std::map<crypto::Hash256, uint32_t> deepest;
  std::map<uint32_t, uint64_t> reached;   // blocks that reached depth k
  std::map<uint32_t, uint64_t> reverted;  // ... and were later reorged

  TimePoint t = 0;
  while (t < duration) {
    t += Milliseconds(20);
    world.env()->sim()->RunUntil(t);
    chain->ForEachEntry(
        [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
          (void)entry;
          auto confirmations = chain->ConfirmationsOf(hash);
          if (confirmations.has_value()) {
            uint32_t depth = static_cast<uint32_t>(
                std::min<uint64_t>(*confirmations, 8));
            auto it = deepest.find(hash);
            if (it == deepest.end() || it->second < depth) {
              deepest[hash] = depth;
            }
          }
        });
  }
  // A block whose deepest observed depth was k but is non-canonical at the
  // end was reorged after reaching depth k.
  for (const auto& [hash, depth] : deepest) {
    const bool canonical = chain->IsCanonical(hash);
    for (uint32_t k = 0; k <= depth; ++k) {
      reached[k] += 1;
      if (!canonical) reverted[k] += 1;
    }
  }
  std::map<uint32_t, double> out;
  for (const auto& [k, n] : reached) {
    out[k] = n == 0 ? 0.0 : static_cast<double>(reverted[k]) /
                                static_cast<double>(n);
  }
  return out;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  benchutil::PrintHeader(
      "Section 6.3 — witness-network choice: d > Va*dh/Ch");

  // (a) The paper's worked example.
  std::printf(
      "paper example: Va=$1M, Bitcoin witness (Ch=$300K/h, dh=6/h)\n"
      "  bound Va*dh/Ch = %.1f blocks  =>  minimum safe d = %u\n"
      "  attack cost at d=21: $%.0f (> $1M: attack disincentivized)\n\n",
      analysis::RequiredDepthBound(1e6, 6.0, 300e3),
      analysis::MinimumSafeDepth(1e6, 6.0, 300e3),
      analysis::AttackCostForDepth(21, 6.0, 300e3));

  // (b) Depth sweep across asset values and witness chains.
  const std::vector<chain::ChainParams> chains = {
      chain::BitcoinParams(), chain::EthereumParams(), chain::LitecoinParams(),
      chain::BitcoinCashParams()};
  std::printf("minimum safe depth d by asset value Va:\n");
  std::printf("%12s |", "Va (USD)");
  for (const auto& params : chains) std::printf(" %12s", params.name.c_str());
  std::printf("\n");
  benchutil::PrintRule(70);
  runner::Json depth_rows = runner::Json::Array();
  for (double va : {1e4, 1e5, 5e5, 1e6, 5e6, 1e7}) {
    std::printf("%12.0f |", va);
    runner::Json row = runner::Json::Object();
    row.Set("va_usd", va);
    for (const auto& params : chains) {
      const uint32_t depth =
          analysis::MinimumSafeDepth(va, params.real_blocks_per_hour,
                                     params.attack_cost_per_hour_usd);
      std::printf(" %12u", depth);
      row.Set(params.name, depth);
    }
    depth_rows.Push(std::move(row));
    std::printf("\n");
  }

  // (c) Ranking by finality time for the paper's $1M example.
  std::printf("\nwitness ranking for Va=$1M (by time-to-finality):\n");
  std::printf("%12s | %10s | %14s | %16s\n", "chain", "depth d",
              "finality (h)", "attack cost ($)");
  benchutil::PrintRule(62);
  runner::Json ranking = runner::Json::Array();
  for (const auto& choice : analysis::RankWitnessNetworks(chains, 1e6)) {
    std::printf("%12s | %10u | %14.2f | %16.0f\n", choice.chain_name.c_str(),
                choice.required_depth, choice.finality_hours,
                choice.attack_cost_usd);
    runner::Json row = runner::Json::Object();
    row.Set("chain", choice.chain_name);
    row.Set("required_depth", choice.required_depth);
    row.Set("finality_hours", choice.finality_hours);
    row.Set("attack_cost_usd", choice.attack_cost_usd);
    ranking.Push(std::move(row));
  }

  // (d) Fork-survival: the analytic epsilon of Lemma 5.3 ...
  std::printf("\nfork catch-up probability (q/(1-q))^d (Lemma 5.3's epsilon):\n");
  std::printf("%6s |", "d");
  for (double q : {0.10, 0.25, 0.33, 0.45}) std::printf("   q=%.2f  ", q);
  std::printf("\n");
  benchutil::PrintRule(56);
  for (uint32_t d : {1u, 2u, 4u, 6u, 8u, 12u}) {
    std::printf("%6u |", d);
    for (double q : {0.10, 0.25, 0.33, 0.45}) {
      std::printf("  %9.2e", analysis::ForkCatchUpProbability(q, d));
    }
    std::printf("\n");
  }

  // ... cross-checked against natural-fork reorg rates in the simulator.
  const Duration reorg_window = context.smoke ? Seconds(20) : Minutes(2);
  std::printf(
      "\nmeasured reorg frequency vs confirmation depth (fork-heavy gossip,\n"
      "propagation delay ~ block interval / 2, 4 miners, %.0f sim-seconds):\n",
      ToSeconds(reorg_window));
  auto measured = MeasureReorgFrequency(/*seed=*/777, reorg_window);
  std::printf("%6s | %16s\n", "depth", "P(reorg after)");
  benchutil::PrintRule(28);
  runner::Json reorg_rows = runner::Json::Array();
  for (const auto& [depth, p] : measured) {
    if (depth > 6) continue;
    std::printf("%6u | %15.4f\n", depth, p);
    runner::Json row = runner::Json::Object();
    row.Set("depth", depth);
    row.Set("p_reorg", p);
    reorg_rows.Push(std::move(row));
  }
  std::printf(
      "\nshape check: required d grows linearly in Va and inversely in Ch;\n"
      "both the analytic epsilon and the measured reorg rate fall\n"
      "geometrically with depth — waiting d blocks makes conflicting\n"
      "RDauth/RFauth states vanishingly unlikely to both survive.\n");
  runner::Json results = runner::Json::Object();
  runner::Json example = runner::Json::Object();
  example.Set("bound_blocks", analysis::RequiredDepthBound(1e6, 6.0, 300e3));
  example.Set("min_safe_depth", analysis::MinimumSafeDepth(1e6, 6.0, 300e3));
  example.Set("attack_cost_at_21", analysis::AttackCostForDepth(21, 6.0, 300e3));
  results.Set("paper_example", std::move(example));
  results.Set("depth_by_value", std::move(depth_rows));
  results.Set("ranking_va_1m", std::move(ranking));
  results.Set("measured_reorg", std::move(reorg_rows));
  auto written = runner::WriteBenchJson(context, "sec63_witness_choice",
                                        std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
