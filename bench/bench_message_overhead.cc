// The message-overhead study — per-protocol wire-message cost and loss
// recovery over the typed proto::Message layer.
//
// Grid: every protocol × {fault-free, 10% message loss, 25% message
// duplication} × seeds, on the 4-party ring. Two properties are pinned:
//
//  * Cost (fault-free): each engine's per-swap protocol message count
//    must EQUAL its hand-derived closed form. Herlihy and AC3WN exchange
//    no off-chain protocol messages (their commitment is purely
//    on-chain): 0. AC3TW performs exactly two request/reply exchanges
//    with Trent (register/ack, secret-request/decision): 4. QuorumCommit
//    runs one pre-commit round — (n-1) pre-commits + (n-1) acks = 2(n-1).
//    No decision messages flow fault-free: the decision broadcast shares
//    the coordinator's broadcast pacer with the pre-commit round, and by
//    the time the pacer reopens (one resubmit interval later) the
//    coordinator — the only party that needs the signed decision to
//    settle — has already driven every edge on-chain. Counts are
//    deterministic because every exchange's round trip (<= 120 ms at the
//    world's latency model) is far below the resubmit interval, so no
//    fault-free retries fire.
//
//  * Recovery (lossy/duplicated): with 10% of all typed messages dropped
//    (protocol exchanges AND transaction gossip) or 25% duplicated,
//    every cell must still reach an atomic verdict with nothing stranded
//    — resend pacing recovers lost exchanges, seq fencing and mempool
//    tx-id dedup neutralize duplicates.
//
// The bench is self-checking: it exits nonzero unless both properties
// hold AND a single-threaded re-run of the grid is bit-for-bit identical
// to the pooled run. Published as BENCH_message_overhead.json; CI holds
// smoke runs to the floor via scripts/check_bench_floor.py
// --message-overhead.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  runner::SweepGridConfig grid;
  grid.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3tw,
                    runner::Protocol::kAc3wn, runner::Protocol::kQuorum};
  grid.topologies = {runner::Topology::kRing};
  grid.sizes = {4};
  grid.failures = {runner::FailureMode::kNone,
                   runner::FailureMode::kDropMessages,
                   runner::FailureMode::kDuplicateMessages};
  grid.seeds = {501, 502, 503};
  grid.message_drop_prob = 0.10;
  grid.message_duplicate_prob = 0.25;
  // Lossy cells recover on 800 ms resend heartbeats; 90 s dwarfs every
  // retry chain while keeping the study cheap.
  grid.deadline = Seconds(90);
  if (context.smoke) {
    grid.seeds = {501};
  }
  context.ApplyAxisOverrides(&grid);

  benchutil::PrintHeader(
      "Message-overhead study — per-protocol wire messages (closed-form\n"
      "fault-free counts) and verdict recovery under loss/duplication");

  core::ScenarioOptions delta_world;
  delta_world.seed = 999;
  const double delta_ms =
      runner::MeasureDeltaMs(delta_world, grid.confirm_depth);
  std::printf("measured delta (publish + public recognition): %.0f ms\n\n",
              delta_ms);

  // Hand-derived fault-free protocol message counts (see the file
  // comment); n is the ring size.
  const int n = grid.sizes.front();
  auto closed_form = [n](runner::Protocol protocol) -> int64_t {
    switch (protocol) {
      case runner::Protocol::kHerlihy:
        return 0;
      case runner::Protocol::kAc3tw:
        return 4;
      case runner::Protocol::kAc3wn:
        return 0;
      case runner::Protocol::kQuorum:
        return 2 * static_cast<int64_t>(n - 1);
    }
    return -1;
  };

  runner::SweepRunner pool(context.threads);
  runner::GridWallStats wall_stats;
  const std::vector<runner::RunOutcome> outcomes =
      pool.RunGridTimed(grid, &wall_stats);

  std::printf("%9s | %-20s | %8s | %8s | %8s | %10s | %10s\n", "protocol",
              "failure", "finished", "commit", "abort", "msgs/swap",
              "bytes/swap");
  benchutil::PrintRule(90);

  bool counts_match = true;
  bool loss_recovered = true;
  bool dup_recovered = true;
  int violations = 0;
  runner::Json rows = runner::Json::Array();
  for (runner::Protocol protocol : grid.protocols) {
    for (runner::FailureMode failure : grid.failures) {
      std::vector<runner::RunOutcome> mine;
      int64_t msgs = 0;
      int64_t bytes = 0;
      bool cell_counts_ok = true;
      for (const runner::RunOutcome& outcome : outcomes) {
        if (outcome.point.protocol != protocol ||
            outcome.point.failure != failure) {
          continue;
        }
        mine.push_back(outcome);
        msgs += outcome.messages_sent;
        bytes += outcome.message_bytes_sent;
        if (outcome.atomicity_violated) ++violations;

        if (failure == runner::FailureMode::kNone &&
            outcome.messages_sent != closed_form(protocol)) {
          cell_counts_ok = false;
          counts_match = false;
        }
        if (failure != runner::FailureMode::kNone) {
          const bool recovered = outcome.finished &&
                                 (outcome.committed || outcome.aborted) &&
                                 !outcome.atomicity_violated &&
                                 outcome.edges_stranded == 0;
          if (!recovered) {
            if (failure == runner::FailureMode::kDropMessages) {
              loss_recovered = false;
            } else {
              dup_recovered = false;
            }
          }
        }
      }
      if (mine.empty()) continue;
      runner::SweepAggregate agg = runner::Aggregate(mine, delta_ms);
      const double per_swap =
          static_cast<double>(msgs) / static_cast<double>(mine.size());
      const double bytes_per_swap =
          static_cast<double>(bytes) / static_cast<double>(mine.size());
      std::printf("%9s | %-20s | %8d | %8d | %8d | %10.1f | %10.1f\n",
                  runner::ProtocolName(protocol),
                  runner::FailureModeName(failure), agg.finished,
                  agg.committed, agg.aborted, per_swap, bytes_per_swap);
      runner::Json row = runner::Json::Object();
      row.Set("protocol", runner::ProtocolName(protocol));
      row.Set("failure", runner::FailureModeName(failure));
      row.Set("messages_per_swap", per_swap);
      row.Set("bytes_per_swap", bytes_per_swap);
      if (failure == runner::FailureMode::kNone) {
        row.Set("closed_form", closed_form(protocol));
        row.Set("counts_match", cell_counts_ok);
      }
      row.Set("aggregate", runner::AggregateToJson(agg));
      rows.Push(std::move(row));
    }
    benchutil::PrintRule(90);
  }

  // Determinism contract: the same grid on one thread must be bit-for-bit
  // identical to the pooled run (per-cell JSON excludes wall clock and
  // message counters; the fault draws ride each world's own forked RNG
  // stream, so the check also certifies thread-invariant fault injection).
  auto fingerprint = [](const std::vector<runner::RunOutcome>& all) {
    runner::Json arr = runner::Json::Array();
    for (const runner::RunOutcome& outcome : all) {
      arr.Push(runner::OutcomeToJson(outcome));
    }
    return arr.Serialize();
  };
  runner::SweepRunner single(1);
  const std::vector<runner::RunOutcome> rerun = single.RunGrid(grid);
  bool thread_invariant = fingerprint(outcomes) == fingerprint(rerun);
  // Message counters are excluded from the JSON; compare them explicitly.
  for (size_t i = 0; i < outcomes.size() && thread_invariant; ++i) {
    if (outcomes[i].messages_sent != rerun[i].messages_sent ||
        outcomes[i].message_bytes_sent != rerun[i].message_bytes_sent) {
      thread_invariant = false;
    }
  }

  const bool overhead_reproduced = counts_match && loss_recovered &&
                                   dup_recovered && violations == 0;

  runner::Json outcome_list = runner::Json::Array();
  for (const runner::RunOutcome& outcome : outcomes) {
    runner::Json j = runner::OutcomeToJson(outcome);
    if (outcome.ok) {
      // The study's own payload may carry the counters; only the shared
      // OutcomeToJson (the fingerprint surface) must exclude them.
      j.Set("messages_sent", outcome.messages_sent);
      j.Set("message_bytes_sent", outcome.message_bytes_sent);
    }
    outcome_list.Push(std::move(j));
  }

  runner::Json results = runner::Json::Object();
  results.Set("delta_ms", delta_ms);
  results.Set("size", static_cast<int64_t>(grid.sizes.front()));
  results.Set("seeds_per_cell", static_cast<int64_t>(grid.seeds.size()));
  results.Set("message_drop_prob", grid.message_drop_prob);
  results.Set("message_duplicate_prob", grid.message_duplicate_prob);
  results.Set("atomicity_violations", violations);
  results.Set("counts_match", counts_match);
  results.Set("loss_recovered", loss_recovered);
  results.Set("dup_recovered", dup_recovered);
  results.Set("overhead_reproduced", overhead_reproduced);
  results.Set("thread_invariant", thread_invariant);
  results.Set("rows", std::move(rows));
  results.Set("outcomes", std::move(outcome_list));

  auto written =
      runner::WriteBenchJson(context, "message_overhead", std::move(results),
                             runner::GridWallJson(wall_stats, outcomes));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshape check: fault-free message counts equal the closed forms\n"
      "(herlihy=0, ac3tw=4, ac3wn=0, quorum=2(n-1)); every lossy cell\n"
      "reaches an atomic verdict via resends.\n"
      "counts_match=%s, loss_recovered=%s, dup_recovered=%s,\n"
      "violations=%d, thread_invariant=%s.\n",
      counts_match ? "true" : "false", loss_recovered ? "true" : "false",
      dup_recovered ? "true" : "false", violations,
      thread_invariant ? "true" : "false");
  return overhead_reproduced && thread_invariant ? 0 : 1;
}
