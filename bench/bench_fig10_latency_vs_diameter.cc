// Figure 10: "The overall AC2T latency in Δs as the graph diameter,
// Diam(D), increases."
//
// Paper result: Herlihy's single-leader protocol costs 2·Δ·Diam(D) while
// AC3WN stays constant at 4·Δ. Ported onto the SweepRunner substrate: the
// protocol × diameter × seed grid runs as independent deterministic worlds
// on the worker pool, per-(protocol, diameter) SwapReport aggregates are
// normalized by a measured Δ, and the structured results are published as
// BENCH_fig10_latency_vs_diameter.json; the printed table is a thin view.
//
// Expected shape: the Herlihy column grows linearly with the diameter; the
// AC3WN column is flat (within confirmation noise); the curves touch at
// Diam = 2 and diverge beyond.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/latency_model.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  const int max_diameter = context.smoke ? 4 : 12;
  const int seeds_per_point = context.smoke ? 1 : 5;

  // A ring of n participants has Diam(D) = n, so the diameter axis is the
  // size axis of the ring family.
  runner::SweepGridConfig grid;
  grid.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3wn};
  grid.topologies = {runner::Topology::kRing};
  grid.sizes.clear();
  for (int diam = 2; diam <= max_diameter; ++diam) {
    grid.sizes.push_back(diam);
  }
  grid.seeds.clear();
  for (int s = 0; s < seeds_per_point; ++s) {
    grid.seeds.push_back(1000 + static_cast<uint64_t>(s));
  }
  context.ApplyAxisOverrides(&grid);

  benchutil::PrintHeader(
      "Figure 10 — AC2T latency vs. graph diameter Diam(D)\n"
      "analytic: Herlihy 2*Diam deltas, AC3WN 4 deltas (constant)");

  // Ground "latency in Δs" with the same Δ measurement the paper's
  // Section 6.1 normalization implies.
  core::ScenarioOptions delta_world;
  delta_world.seed = 999;
  const double delta_ms =
      runner::MeasureDeltaMs(delta_world, grid.confirm_depth);
  std::printf("measured delta (publish + public recognition): %.0f ms\n\n",
              delta_ms);

  runner::SweepRunner pool(context.threads);
  runner::GridWallStats wall_stats;
  const std::vector<runner::RunOutcome> outcomes =
      pool.RunGridTimed(grid, &wall_stats);

  auto bucket = [&](runner::Protocol protocol, int diameter) {
    std::vector<runner::RunOutcome> mine;
    for (const runner::RunOutcome& outcome : outcomes) {
      if (outcome.point.protocol == protocol &&
          outcome.point.size == diameter) {
        mine.push_back(outcome);
      }
    }
    return runner::Aggregate(mine, delta_ms);
  };

  std::printf("%6s | %14s %14s | %12s %12s | %12s %12s\n", "Diam",
              "Herlihy(deltas)", "AC3WN(deltas)", "Herlihy(ms)", "AC3WN(ms)",
              "Herlihy(d^)", "AC3WN(d^)");
  benchutil::PrintRule(100);

  runner::Json rows = runner::Json::Array();
  for (int diam : grid.sizes) {
    const uint32_t herlihy_analytic =
        analysis::HerlihyLatencyDeltas(static_cast<uint32_t>(diam));
    const uint32_t ac3wn_analytic = analysis::Ac3wnLatencyDeltas();
    runner::SweepAggregate herlihy =
        bucket(runner::Protocol::kHerlihy, diam);
    runner::SweepAggregate ac3wn = bucket(runner::Protocol::kAc3wn, diam);
    // -1 preserves the pre-port failure sentinel: a bucket where nothing
    // committed must not read as zero latency.
    auto ms_or = [](const runner::SweepAggregate& agg) {
      return agg.commit_latency.samples > 0 ? agg.commit_latency.mean_ms : -1.0;
    };
    auto deltas_or = [](const runner::SweepAggregate& agg) {
      return agg.commit_latency.samples > 0 ? agg.mean_latency_deltas : -1.0;
    };
    std::printf("%6d | %14u %14u | %12.0f %12.0f | %12.1f %12.1f\n", diam,
                herlihy_analytic, ac3wn_analytic, ms_or(herlihy), ms_or(ac3wn),
                deltas_or(herlihy), deltas_or(ac3wn));
    runner::Json row = runner::Json::Object();
    row.Set("diameter", diam);
    row.Set("herlihy_analytic_deltas", herlihy_analytic);
    row.Set("ac3wn_analytic_deltas", ac3wn_analytic);
    row.Set("herlihy", runner::AggregateToJson(herlihy));
    row.Set("ac3wn", runner::AggregateToJson(ac3wn));
    rows.Push(std::move(row));
  }
  benchutil::PrintRule(100);

  // Per-protocol aggregates over the whole sweep: the headline
  // latency-in-Δ and swap-throughput numbers.
  runner::Json protocols = runner::Json::Object();
  for (runner::Protocol protocol : grid.protocols) {
    std::vector<runner::RunOutcome> mine;
    for (const runner::RunOutcome& outcome : outcomes) {
      if (outcome.point.protocol == protocol) mine.push_back(outcome);
    }
    protocols.Set(runner::ProtocolName(protocol),
                  runner::AggregateToJson(runner::Aggregate(mine, delta_ms)));
  }

  runner::Json results = runner::Json::Object();
  results.Set("delta_ms", delta_ms);
  results.Set("rows", std::move(rows));
  results.Set("protocols", std::move(protocols));

  auto written =
      runner::WriteBenchJson(context, "fig10_latency_vs_diameter",
                             std::move(results),
                             runner::GridWallJson(wall_stats, outcomes));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "shape check: Herlihy grows ~linearly in Diam while AC3WN stays flat;\n"
      "the paper's crossover at Diam = 2 (both 4 deltas) holds analytically\n"
      "and the simulated AC3WN column is diameter-independent.\n");
  return 0;
}
