// Figure 10: "The overall AC2T latency in Δs as the graph diameter,
// Diam(D), increases."
//
// Paper result: Herlihy's single-leader protocol costs 2·Δ·Diam(D) while
// AC3WN stays constant at 4·Δ. This harness prints the analytic curves and
// the *simulated* end-to-end latencies of both engines on directed rings of
// growing diameter, normalized by a measured Δ (the time for one contract
// to be published and publicly recognized in the same world).
//
// Expected shape: the Herlihy column grows linearly with the diameter; the
// AC3WN column is flat (within confirmation noise); the curves touch at
// Diam = 2 and diverge beyond.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/latency_model.h"

namespace ac3 {
namespace {

constexpr int kMaxDiameter = 12;
constexpr TimePoint kDeadline = Minutes(60);

core::ScenarioOptions WorldOptions(int participants, uint64_t seed) {
  core::ScenarioOptions options;
  options.participants = participants;
  options.asset_chains = std::min(participants, 4);
  options.funding = 5000;
  options.seed = seed;
  return options;
}

double RunHerlihyMs(int diameter, uint64_t seed) {
  core::ScenarioOptions options = WorldOptions(diameter, seed);
  options.witness_chain = false;
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, diameter);
  protocols::HerlihySwapEngine engine(world.env(), ring,
                                      world.all_participants(),
                                      benchutil::FastHtlcConfig());
  auto report = engine.Run(kDeadline);
  if (!report.ok() || !report->committed) return -1.0;
  return static_cast<double>(report->Latency());
}

double RunAc3wnMs(int diameter, uint64_t seed) {
  core::ScenarioOptions options = WorldOptions(diameter, seed);
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, diameter);
  protocols::Ac3wnSwapEngine engine(world.env(), ring,
                                    world.all_participants(),
                                    world.witness_chain(),
                                    benchutil::FastAc3wnConfig());
  auto report = engine.Run(kDeadline);
  if (!report.ok() || !report->committed) return -1.0;
  return static_cast<double>(report->Latency());
}

}  // namespace
}  // namespace ac3

int main() {
  using namespace ac3;

  benchutil::PrintHeader(
      "Figure 10 — AC2T latency vs. graph diameter Diam(D)\n"
      "analytic: Herlihy 2*Diam deltas, AC3WN 4 deltas (constant)");

  const double delta_ms =
      benchutil::MeasureDeltaMs(WorldOptions(2, 999), /*confirm_depth=*/1);
  std::printf("measured delta (publish + public recognition): %.0f ms\n\n",
              delta_ms);

  std::printf("%6s | %14s %14s | %12s %12s | %12s %12s\n", "Diam",
              "Herlihy(deltas)", "AC3WN(deltas)", "Herlihy(ms)", "AC3WN(ms)",
              "Herlihy(d^)", "AC3WN(d^)");
  benchutil::PrintRule(100);

  constexpr int kSeedsPerPoint = 5;
  for (int diam = 2; diam <= kMaxDiameter; ++diam) {
    const uint32_t herlihy_analytic = analysis::HerlihyLatencyDeltas(
        static_cast<uint32_t>(diam));
    const uint32_t ac3wn_analytic = analysis::Ac3wnLatencyDeltas();
    // Poisson block arrivals make single runs noisy; average over seeds.
    double herlihy_ms = 0, ac3wn_ms = 0;
    int herlihy_n = 0, ac3wn_n = 0;
    for (int s = 0; s < kSeedsPerPoint; ++s) {
      const double h = RunHerlihyMs(diam, 1000 + diam * 100 + s);
      if (h >= 0) { herlihy_ms += h; ++herlihy_n; }
      const double a = RunAc3wnMs(diam, 2000 + diam * 100 + s);
      if (a >= 0) { ac3wn_ms += a; ++ac3wn_n; }
    }
    herlihy_ms = herlihy_n > 0 ? herlihy_ms / herlihy_n : -1;
    ac3wn_ms = ac3wn_n > 0 ? ac3wn_ms / ac3wn_n : -1;
    std::printf("%6d | %14u %14u | %12.0f %12.0f | %12.1f %12.1f\n", diam,
                herlihy_analytic, ac3wn_analytic, herlihy_ms, ac3wn_ms,
                herlihy_ms / delta_ms, ac3wn_ms / delta_ms);
  }

  benchutil::PrintRule(100);
  std::printf(
      "shape check: Herlihy grows ~linearly in Diam while AC3WN stays flat;\n"
      "the paper's crossover at Diam = 2 (both 4 deltas) holds analytically\n"
      "and the simulated AC3WN column is diameter-independent.\n");
  return 0;
}
