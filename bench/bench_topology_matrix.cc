// Sections 5.3 / 6 — the topology × failure matrix: every swap-graph
// family the repo can generate, run under every failure mode, for both the
// single-leader baseline and AC3WN.
//
// This is the functional-gap experiment of Figure 7: Herlihy's protocol
// *rejects* graphs with no valid single leader (complete digraphs, the
// bidirectional ring of Figure 7(a), the disconnected pair-swaps of Figure
// 7(b)) at Start(), while AC3WN runs them to an atomic verdict. The
// feasible families (ring, path, star, random-feasible) measure how graph
// shape bends latency: Herlihy pays 2·Δ·Diam(D) sequential rounds, AC3WN
// stays flat at ~4·Δ regardless of shape.
//
// Published as BENCH_topology_matrix.json: one row per (protocol, topology,
// failure) bucket with its aggregate (commit/abort/infeasible counts,
// latency in Δs, sim_events), plus a verdict that the Section 5.3 claim
// reproduced — every infeasible-family cell rejected by Herlihy and
// committed (or cleanly aborted under failures) by AC3WN.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  runner::SweepGridConfig grid;
  grid.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3wn};
  grid.topologies = {
      runner::Topology::kRing,           runner::Topology::kPath,
      runner::Topology::kStar,           runner::Topology::kComplete,
      runner::Topology::kRandomFeasible, runner::Topology::kFig7aCyclic,
      runner::Topology::kFig7bDisconnected};
  grid.sizes = {4};
  grid.failures = {runner::FailureMode::kNone,
                   runner::FailureMode::kCrashParticipant,
                   runner::FailureMode::kPartitionParticipant};
  grid.seeds = {301, 302, 303};
  if (context.smoke) {
    grid.topologies = {runner::Topology::kRing, runner::Topology::kStar,
                       runner::Topology::kComplete};
    grid.failures = {runner::FailureMode::kNone,
                     runner::FailureMode::kCrashParticipant};
    grid.seeds = {301};
  }
  context.ApplyAxisOverrides(&grid);

  benchutil::PrintHeader(
      "Topology × failure matrix — the Section 5.3 functional gap:\n"
      "Herlihy rejects single-leader-infeasible families, AC3WN commits");

  core::ScenarioOptions delta_world;
  delta_world.seed = 999;
  const double delta_ms =
      runner::MeasureDeltaMs(delta_world, grid.confirm_depth);
  std::printf("measured delta (publish + public recognition): %.0f ms\n\n",
              delta_ms);

  runner::SweepRunner pool(context.threads);
  runner::GridWallStats wall_stats;
  const std::vector<runner::RunOutcome> outcomes =
      pool.RunGridTimed(grid, &wall_stats);

  std::printf("%9s | %-19s | %-22s | %9s | %9s | %9s | %10s\n", "protocol",
              "topology", "failure", "commit", "abort", "reject",
              "mean (d^)");
  benchutil::PrintRule(104);

  // The acceptance check: on every infeasible family, Herlihy rejected all
  // cells and AC3WN reached an atomic verdict on all cells.
  bool gap_reproduced = true;
  int violations = 0;
  runner::Json rows = runner::Json::Array();
  for (runner::Protocol protocol : grid.protocols) {
    for (runner::Topology topology : grid.topologies) {
      for (runner::FailureMode failure : grid.failures) {
        std::vector<runner::RunOutcome> mine;
        for (const runner::RunOutcome& outcome : outcomes) {
          if (outcome.point.protocol == protocol &&
              outcome.point.topology == topology &&
              outcome.point.failure == failure) {
            mine.push_back(outcome);
            if (outcome.atomicity_violated) ++violations;
          }
        }
        if (mine.empty()) continue;
        runner::SweepAggregate agg = runner::Aggregate(mine, delta_ms);
        std::printf("%9s | %-19s | %-22s | %9d | %9d | %9d | %10.1f\n",
                    runner::ProtocolName(protocol),
                    runner::TopologyName(topology),
                    runner::FailureModeName(failure), agg.committed,
                    agg.aborted, agg.infeasible,
                    agg.commit_latency.samples > 0 ? agg.mean_latency_deltas
                                                   : -1.0);
        const bool feasible = runner::TopologySingleLeaderFeasible(
            topology, grid.sizes.front());
        if (!feasible) {
          if (protocol == runner::Protocol::kHerlihy &&
              agg.infeasible != agg.runs) {
            gap_reproduced = false;
          }
          if (protocol == runner::Protocol::kAc3wn &&
              agg.committed + agg.aborted != agg.runs) {
            gap_reproduced = false;
          }
        }
        runner::Json row = runner::Json::Object();
        row.Set("protocol", runner::ProtocolName(protocol));
        row.Set("topology", runner::TopologyName(topology));
        row.Set("failure", runner::FailureModeName(failure));
        row.Set("single_leader_feasible", feasible);
        row.Set("aggregate", runner::AggregateToJson(agg));
        rows.Push(std::move(row));
      }
    }
    benchutil::PrintRule(104);
  }

  runner::Json outcome_list = runner::Json::Array();
  for (const runner::RunOutcome& outcome : outcomes) {
    outcome_list.Push(runner::OutcomeToJson(outcome));
  }

  runner::Json results = runner::Json::Object();
  results.Set("delta_ms", delta_ms);
  results.Set("sizes", static_cast<int64_t>(grid.sizes.front()));
  results.Set("seeds_per_cell", static_cast<int64_t>(grid.seeds.size()));
  results.Set("atomicity_violations", violations);
  results.Set("section53_gap_reproduced", gap_reproduced);
  results.Set("rows", std::move(rows));
  results.Set("outcomes", std::move(outcome_list));

  auto written =
      runner::WriteBenchJson(context, "topology_matrix", std::move(results),
                             runner::GridWallJson(wall_stats, outcomes));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshape check: every single-leader-infeasible cell (complete, fig7a,\n"
      "fig7b) is rejected by Herlihy at Start() and driven to an atomic\n"
      "verdict by AC3WN — the paper's Figure 7 claim. gap_reproduced=%s,\n"
      "atomicity violations=%d.\n",
      gap_reproduced ? "true" : "false", violations);
  return gap_reproduced && violations == 0 ? 0 : 1;
}
