// Sections 1 and 5.1 — the motivating claim, as a failure matrix.
//
// For each protocol (Nolan/Herlihy HTLC, AC3TW, AC3WN) and each failure
// schedule, the harness runs the full simulated swap and reports the
// outcome and whether the all-or-nothing property survived.
//
// Expected shape: the HTLC baseline violates atomicity when the recipient
// crashes across his timelock (the crashed participant loses his asset);
// AC3TW and AC3WN stay atomic under every schedule (Lemmas 5.1/5.3) — the
// witnessed protocols convert the violation into either commit-late or
// abort.

#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"

namespace ac3 {
namespace {

constexpr TimePoint kDeadline = Minutes(30);

enum class Proto { kHtlc, kAc3tw, kAc3wn };

const char* ProtoName(Proto proto) {
  switch (proto) {
    case Proto::kHtlc: return "HTLC";
    case Proto::kAc3tw: return "AC3TW";
    case Proto::kAc3wn: return "AC3WN";
  }
  return "?";
}

struct FailureCase {
  std::string name;
  /// Applies the failure; `decision_point_crash` targets the window where
  /// the HTLC secret is in flight.
  std::function<void(core::ScenarioWorld*, protocols::TrustedWitness*)> inject;
};

struct Outcome {
  bool finished = false;
  bool committed = false;
  bool aborted = false;
  bool atomic = true;
  int redeemed = 0;
  int refunded = 0;
  int unpublished = 0;
};

Outcome Summarize(const protocols::SwapReport& report) {
  Outcome out;
  out.finished = report.finished;
  out.committed = report.committed;
  out.aborted = report.aborted;
  out.atomic = !report.AtomicityViolated();
  out.redeemed = report.CountOutcome(protocols::EdgeOutcome::kRedeemed);
  out.refunded = report.CountOutcome(protocols::EdgeOutcome::kRefunded);
  out.unpublished = report.CountOutcome(protocols::EdgeOutcome::kUnpublished);
  return out;
}

Outcome RunCase(Proto proto, const FailureCase& failure, uint64_t seed) {
  core::ScenarioOptions options;
  options.seed = seed;
  options.witness_chain = proto == Proto::kAc3wn;
  core::ScenarioWorld world(options);
  protocols::TrustedWitness trent("Trent", 0x7ae47 ^ seed, world.env());

  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);

  world.StartMining();

  if (proto == Proto::kHtlc) {
    protocols::HerlihySwapEngine engine(world.env(), graph,
                                        world.all_participants(),
                                        benchutil::FastHtlcConfig());
    Status started = engine.Start();
    if (!started.ok()) return Outcome{};
    // HTLC's vulnerable window: both contracts published, secret not yet
    // observed by the non-leader. Injection waits for that point.
    failure.inject(&world, &trent);
    auto report = engine.Run(kDeadline);
    return report.ok() ? Summarize(*report) : Outcome{};
  }
  if (proto == Proto::kAc3tw) {
    protocols::Ac3twSwapEngine engine(world.env(), graph,
                                      world.all_participants(), &trent,
                                      benchutil::FastAc3twConfig());
    Status started = engine.Start();
    if (!started.ok()) return Outcome{};
    failure.inject(&world, &trent);
    auto report = engine.Run(kDeadline);
    return report.ok() ? Summarize(*report) : Outcome{};
  }
  protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                    world.all_participants(),
                                    world.witness_chain(),
                                    benchutil::FastAc3wnConfig());
  Status started = engine.Start();
  if (!started.ok()) return Outcome{};
  failure.inject(&world, &trent);
  auto report = engine.Run(kDeadline);
  return report.ok() ? Summarize(*report) : Outcome{};
}

/// Crashes the recipient from the moment both asset contracts are on their
/// chains (the HTLC decision point) for `down` ms.
void CrashRecipientAtDecisionPoint(core::ScenarioWorld* world, Duration down) {
  Status published = world->env()->sim()->RunUntilCondition(
      [world]() {
        return !world->env()
                    ->blockchain(world->asset_chain(0))
                    ->StateAtHead()
                    .contracts.empty() &&
               !world->env()
                    ->blockchain(world->asset_chain(1))
                    ->StateAtHead()
                    .contracts.empty();
      },
      Minutes(5));
  if (!published.ok()) return;
  world->env()->failures()->CrashFor(world->participant(1)->node(),
                                     world->env()->sim()->Now(), down);
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  benchutil::PrintHeader(
      "Sections 1 / 5.1 — atomicity under failures, protocol x schedule\n"
      "(HTLC = Nolan/Herlihy hashlock+timelock baseline)");

  std::vector<FailureCase> cases = {
      {"none", [](core::ScenarioWorld*, protocols::TrustedWitness*) {}},
      {"recipient crash @decision, 60s",
       [](core::ScenarioWorld* world, protocols::TrustedWitness*) {
         CrashRecipientAtDecisionPoint(world, Seconds(60));
       }},
      {"recipient crash @start, 25s",
       [](core::ScenarioWorld* world, protocols::TrustedWitness*) {
         world->env()->failures()->CrashFor(world->participant(1)->node(), 0,
                                            Seconds(25));
       }},
      {"sender crash @2s, 25s",
       [](core::ScenarioWorld* world, protocols::TrustedWitness*) {
         world->env()->failures()->CrashFor(world->participant(0)->node(),
                                            Seconds(2), Seconds(25));
       }},
      {"counterparty declines",
       [](core::ScenarioWorld* world, protocols::TrustedWitness*) {
         world->participant(1)->behavior().decline_publish = true;
       }},
      {"witness DoS 20s (Trent only)",
       [](core::ScenarioWorld* world, protocols::TrustedWitness* trent) {
         world->env()->failures()->CrashFor(trent->node(), Seconds(1),
                                            Seconds(20));
       }},
  };
  if (context.smoke) {
    // Keep the headline rows: no-failure plus the paper's motivating
    // recipient-crash schedule.
    cases.resize(2);
  }

  std::printf("%-32s | %-6s | %9s | %8s | %-18s\n", "failure schedule",
              "proto", "outcome", "atomic?", "edges (RD/RF/unpub)");
  benchutil::PrintRule(92);
  int htlc_violations = 0, witnessed_violations = 0;
  runner::Json matrix = runner::Json::Array();
  for (const FailureCase& failure : cases) {
    for (Proto proto : {Proto::kHtlc, Proto::kAc3tw, Proto::kAc3wn}) {
      Outcome outcome = RunCase(proto, failure, /*seed=*/51);
      const char* verdict = outcome.committed   ? "commit"
                            : outcome.aborted   ? "abort"
                            : outcome.finished  ? "mixed"
                                                : "stalled";
      std::printf("%-32s | %-6s | %9s | %8s | %d/%d/%d\n",
                  failure.name.c_str(), ProtoName(proto), verdict,
                  outcome.atomic ? "yes" : "NO", outcome.redeemed,
                  outcome.refunded, outcome.unpublished);
      runner::Json cell = runner::Json::Object();
      cell.Set("failure", failure.name);
      cell.Set("protocol", ProtoName(proto));
      cell.Set("verdict", verdict);
      cell.Set("atomic", outcome.atomic);
      cell.Set("redeemed", outcome.redeemed);
      cell.Set("refunded", outcome.refunded);
      cell.Set("unpublished", outcome.unpublished);
      matrix.Push(std::move(cell));
      if (!outcome.atomic) {
        if (proto == Proto::kHtlc) {
          ++htlc_violations;
        } else {
          ++witnessed_violations;
        }
      }
    }
    benchutil::PrintRule(92);
  }
  std::printf(
      "\nshape check: HTLC violated atomicity in %d schedule(s) (the paper's\n"
      "motivating crash scenario); the witnessed protocols violated it in %d\n"
      "— AC3WN additionally never stalls on a witness crash (its witness is\n"
      "a replicated network, not a process).\n",
      htlc_violations, witnessed_violations);
  runner::Json results = runner::Json::Object();
  results.Set("matrix", std::move(matrix));
  results.Set("htlc_violations", htlc_violations);
  results.Set("witnessed_violations", witnessed_violations);
  auto written = runner::WriteBenchJson(context, "atomicity_failures",
                                        std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return witnessed_violations == 0 ? 0 : 1;
}
