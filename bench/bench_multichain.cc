// Many-chain world-state benchmark: the sharded ChainIndex under a grid of
// chains × accounts × transactions. Each cell builds an independent fleet
// of blockchains (transfers + an HTLC deploy/redeem per chain so the
// contract-call index carries real traffic), then measures sustained
// random lookups — FindTx, FindCall, entry Get/Contains — round-robin
// across the fleet. The headline claims this harness guards:
//
//   * per-op lookup cost stays flat as the chain count grows (hash-sharded
//     indexes, not a scan over chains or entries);
//   * peak RSS stays under the declared ceiling (slab-backed nodes, no
//     per-node heap overhead explosion);
//   * the sharded index answers every query exactly like the single-map
//     oracle mode — checked in-process here, and the process exits
//     non-zero on any divergence.
//
// Determinism contract: everything under "results" (per-cell fingerprints
// over head hashes, block/tx counts, the equivalence verdict, the declared
// RSS ceiling) is a pure function of the seeds. Ops/sec, wall times and
// the measured peak RSS are machine-dependent and live under "wall".

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chain/blockchain.h"
#include "src/chain/wallet.h"
#include "src/contracts/htlc_contract.h"
#include "src/crypto/hash256.h"
#include "src/runner/bench_output.h"

namespace ac3 {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// VmHWM from /proc/self/status, in bytes (0 if unavailable — non-Linux).
size_t ReadPeakRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

struct CellConfig {
  int chains = 0;
  int accounts = 0;
  int txs_per_block = 0;
  int blocks = 0;
};

/// One populated blockchain plus the handles the lookup loop samples.
struct ChainFixture {
  std::unique_ptr<chain::Blockchain> chain;
  std::vector<crypto::Hash256> tx_ids;
  crypto::Hash256 contract_id;
};

constexpr char kSecret[] = {4, 8, 15, 16, 23, 42};

Bytes SecretBytes() {
  return Bytes(kSecret, kSecret + sizeof(kSecret));
}

/// Builds one chain of the fleet: HTLC deploy (block 1) + redeem (block 2),
/// then round-robin transfers. When `twin` is non-null the exact same
/// blocks are submitted to it as well (the sharded-vs-oracle probe).
ChainFixture BuildChain(const CellConfig& cell, int chain_seq,
                        chain::Blockchain* twin) {
  chain::ChainParams params = chain::TestChainParams();
  params.id = static_cast<chain::ChainId>(chain_seq + 1);
  params.difficulty_bits = 2;  // ~4 nonce evals/block: indexing dominates.
  params.max_block_txs = 64;

  const uint64_t seed_base =
      100'000 + static_cast<uint64_t>(chain_seq) * 1'000;
  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  for (int a = 0; a < cell.accounts; ++a) {
    keys.push_back(crypto::KeyPair::FromSeed(seed_base +
                                             static_cast<uint64_t>(a)));
    allocations.push_back(chain::TxOutput{1'000'000, keys.back().public_key()});
  }
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(seed_base + 999);

  ChainFixture fixture;
  fixture.chain = std::make_unique<chain::Blockchain>(params, allocations);
  chain::Blockchain& bc = *fixture.chain;
  std::vector<chain::Wallet> wallets;
  std::vector<uint64_t> nonces(static_cast<size_t>(cell.accounts), 1);
  for (int a = 0; a < cell.accounts; ++a) wallets.emplace_back(keys[a], bc.id());

  Rng rng(seed_base);
  TimePoint now = 0;
  auto mine = [&](const std::vector<chain::Transaction>& txs) -> bool {
    now += 100;
    auto block =
        bc.AssembleBlock(bc.head()->hash, txs, miner.public_key(), now, &rng);
    if (!block.ok() || !bc.SubmitBlock(*block, now).ok()) return false;
    if (twin != nullptr && !twin->SubmitBlock(*block, now).ok()) return false;
    for (const chain::Transaction& tx : block->txs) {
      fixture.tx_ids.push_back(tx.Id());
    }
    return true;
  };

  // Block 1: HTLC deploy (account 0 locks for account 1).
  auto deploy = wallets[0].BuildDeploy(
      bc.StateAtHead(), contracts::kHtlcKind,
      contracts::HtlcContract::MakeInitPayload(
          keys[1].public_key(), crypto::Hash256::Of(SecretBytes()),
          Minutes(60)),
      /*locked_value=*/500, bc.params().deploy_fee, nonces[0]++);
  if (!deploy.ok() || !mine({*deploy})) {
    std::fprintf(stderr, "multichain: deploy failed on chain %d\n", chain_seq);
    std::exit(1);
  }
  fixture.contract_id = deploy->Id();
  // Block 2: redeem reveals the secret.
  auto redeem = wallets[1].BuildCall(bc.StateAtHead(), fixture.contract_id,
                                     contracts::kRedeemFunction, SecretBytes(),
                                     /*fee=*/1, nonces[1]++);
  if (!redeem.ok() || !mine({*redeem})) {
    std::fprintf(stderr, "multichain: redeem failed on chain %d\n", chain_seq);
    std::exit(1);
  }
  // Remaining blocks: round-robin transfers.
  for (int b = 2; b < cell.blocks; ++b) {
    std::vector<chain::Transaction> txs;
    for (int j = 0; j < cell.txs_per_block; ++j) {
      const size_t from =
          static_cast<size_t>((b + j) % cell.accounts);
      const size_t to = (from + 1) % static_cast<size_t>(cell.accounts);
      auto tx = wallets[from].BuildTransfer(bc.StateAtHead(),
                                            keys[to].public_key(),
                                            /*amount=*/10, /*fee=*/1,
                                            nonces[from]++);
      if (tx.ok()) txs.push_back(*tx);
    }
    if (!mine(txs)) {
      std::fprintf(stderr, "multichain: mining failed on chain %d\n",
                   chain_seq);
      std::exit(1);
    }
  }
  return fixture;
}

/// The sharded chain and the oracle twin must answer every ledger query
/// identically. Returns false (and reports) on any divergence.
bool CheckEquivalence(const ChainFixture& fixture,
                      const chain::Blockchain& oracle) {
  const chain::Blockchain& sharded = *fixture.chain;
  auto fail = [](const char* what) {
    std::fprintf(stderr, "multichain equivalence: %s diverged\n", what);
    return false;
  };
  if (sharded.head()->hash != oracle.head()->hash) return fail("head hash");
  if (sharded.block_count() != oracle.block_count()) {
    return fail("block count");
  }
  if (sharded.index().EntryCount() != oracle.index().EntryCount()) {
    return fail("entry count");
  }
  for (const crypto::Hash256& tx_id : fixture.tx_ids) {
    const auto a = sharded.FindTx(tx_id);
    const auto b = oracle.FindTx(tx_id);
    if (a.has_value() != b.has_value()) return fail("FindTx presence");
    if (a.has_value() &&
        (a->entry->hash != b->entry->hash || a->index != b->index)) {
      return fail("FindTx location");
    }
    if (sharded.index().OccurrencesOf(tx_id).size() !=
        oracle.index().OccurrencesOf(tx_id).size()) {
      return fail("occurrence list");
    }
  }
  for (bool require_success : {false, true}) {
    const auto a = sharded.FindCall(fixture.contract_id,
                                    contracts::kRedeemFunction,
                                    require_success);
    const auto b = oracle.FindCall(fixture.contract_id,
                                   contracts::kRedeemFunction,
                                   require_success);
    if (a.has_value() != b.has_value()) return fail("FindCall presence");
    if (a.has_value() && a->entry->hash != b->entry->hash) {
      return fail("FindCall entry");
    }
  }
  return true;
}

struct CellRun {
  CellConfig config;
  // Deterministic.
  uint64_t total_blocks = 0;
  uint64_t total_txs = 0;
  std::string fingerprint;  ///< Hash over every chain's head hash.
  // Machine-dependent.
  double build_ms = 0;
  double lookup_ms = 0;
  uint64_t lookups = 0;
  uint64_t lookup_hits = 0;  ///< Deterministic (seeded sampling).
  double lookup_ops_per_sec = 0;
  double ns_per_lookup = 0;
};

CellRun RunCell(const CellConfig& cell, uint64_t lookup_ops,
                bool check_equivalence, bool* equivalence_ok) {
  CellRun run;
  run.config = cell;

  const Clock::time_point build_t0 = Clock::now();
  // The oracle twin shadows chain 0 of the cell when requested: a
  // single-map ChainIndex fed the identical block stream.
  std::unique_ptr<chain::Blockchain> oracle;
  std::vector<ChainFixture> fleet;
  fleet.reserve(static_cast<size_t>(cell.chains));
  for (int c = 0; c < cell.chains; ++c) {
    chain::Blockchain* twin = nullptr;
    if (check_equivalence && c == 0) {
      chain::ChainParams params = chain::TestChainParams();
      params.id = 1;
      params.difficulty_bits = 2;
      params.max_block_txs = 64;
      std::vector<chain::TxOutput> allocations;
      for (int a = 0; a < cell.accounts; ++a) {
        allocations.push_back(chain::TxOutput{
            1'000'000,
            crypto::KeyPair::FromSeed(100'000 + static_cast<uint64_t>(a))
                .public_key()});
      }
      chain::ChainIndex::Options oracle_options;
      oracle_options.oracle = true;
      oracle = std::make_unique<chain::Blockchain>(params, allocations,
                                                   oracle_options);
      twin = oracle.get();
    }
    fleet.push_back(BuildChain(cell, c, twin));
  }
  run.build_ms = ElapsedMs(build_t0);

  if (oracle != nullptr) {
    *equivalence_ok = CheckEquivalence(fleet[0], *oracle) && *equivalence_ok;
  }

  // Deterministic cell witnesses.
  Bytes head_bytes;
  for (const ChainFixture& fixture : fleet) {
    run.total_blocks += fixture.chain->block_count();
    run.total_txs += fixture.tx_ids.size();
    const auto& digest = fixture.chain->head()->hash.data();
    head_bytes.insert(head_bytes.end(), digest.begin(), digest.end());
  }
  run.fingerprint = crypto::Hash256::Of(head_bytes).ToHex();

  // Sustained lookups, round-robin across the fleet. The sampling is
  // seeded, so the hit count is deterministic; only the rate is wall.
  Rng rng(31337);
  run.lookups = lookup_ops;
  const Clock::time_point lookup_t0 = Clock::now();
  for (uint64_t op = 0; op < lookup_ops; ++op) {
    const ChainFixture& fixture =
        fleet[static_cast<size_t>(op) % fleet.size()];
    const chain::Blockchain& bc = *fixture.chain;
    switch (rng.NextU64() % 4) {
      case 0: {  // Canonical tx lookup (hit).
        const crypto::Hash256& tx_id =
            fixture.tx_ids[rng.NextU64() % fixture.tx_ids.size()];
        if (bc.FindTx(tx_id).has_value()) ++run.lookup_hits;
        break;
      }
      case 1: {  // Miss: a hash that indexes nothing.
        crypto::Hash256 absent;
        if (!bc.index().Contains(absent)) ++run.lookup_hits;
        break;
      }
      case 2:  // Newest canonical contract call.
        if (bc.FindCall(fixture.contract_id, contracts::kRedeemFunction,
                        /*require_success=*/true)
                .has_value()) {
          ++run.lookup_hits;
        }
        break;
      default:  // Block-entry fetch by hash.
        if (bc.Get(bc.head()->hash) != nullptr) ++run.lookup_hits;
        break;
    }
  }
  run.lookup_ms = ElapsedMs(lookup_t0);
  run.lookup_ops_per_sec =
      run.lookup_ms > 0
          ? static_cast<double>(run.lookups) / (run.lookup_ms / 1000.0)
          : 0;
  run.ns_per_lookup = run.lookups > 0
                          ? run.lookup_ms * 1e6 /
                                static_cast<double>(run.lookups)
                          : 0;
  return run;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  // chains × accounts grid (txs/block and depth fixed per axis point so
  // the chains axis is the only thing varying along a row — that is what
  // makes "flat per-op cost vs chain count" legible in the output).
  std::vector<CellConfig> grid;
  if (context.smoke) {
    for (int chains : {2, 8}) {
      grid.push_back(CellConfig{chains, /*accounts=*/4, /*txs_per_block=*/2,
                                /*blocks=*/4});
    }
  } else {
    for (int chains : {4, 32, 128, 256}) {
      for (int accounts : {4, 16}) {
        grid.push_back(CellConfig{chains, accounts, /*txs_per_block=*/4,
                                  /*blocks=*/10});
      }
    }
  }
  const uint64_t lookup_ops = context.smoke ? 20'000 : 200'000;

  // The committed envelope declares this ceiling; check_bench_floor.py
  // asserts a fresh run's measured wall.peak_rss_bytes stays under the
  // *committed* results.rss_ceiling_bytes.
  constexpr uint64_t kRssCeilingBytes = 1536ull * 1024 * 1024;

  benchutil::PrintHeader(
      "Many-chain world state — sustained ledger-query ops/sec and peak RSS\n"
      "across a chains x accounts grid (sharded ChainIndex vs oracle "
      "self-check)");

  std::printf("%7s | %8s | %9s | %9s | %12s | %10s\n", "chains", "accounts",
              "blocks", "build ms", "lookup ops/s", "ns/lookup");
  benchutil::PrintRule(72);

  bool equivalence_ok = true;
  std::vector<CellRun> runs;
  for (size_t i = 0; i < grid.size(); ++i) {
    // The oracle probe rides on the first (smallest) cell only: the index
    // semantics don't vary with fleet size, the fleet does.
    CellRun run = RunCell(grid[i], lookup_ops, /*check_equivalence=*/i == 0,
                          &equivalence_ok);
    std::printf("%7d | %8d | %9llu | %9.1f | %12.0f | %10.1f\n",
                run.config.chains, run.config.accounts,
                static_cast<unsigned long long>(run.total_blocks),
                run.build_ms, run.lookup_ops_per_sec, run.ns_per_lookup);
    runs.push_back(std::move(run));
  }
  const size_t peak_rss = ReadPeakRssBytes();
  std::printf("\npeak RSS %.1f MiB (declared ceiling %.0f MiB) — "
              "sharded vs oracle: %s\n",
              static_cast<double>(peak_rss) / (1024.0 * 1024.0),
              static_cast<double>(kRssCeilingBytes) / (1024.0 * 1024.0),
              equivalence_ok ? "identical" : "DIVERGED");

  if (!equivalence_ok) {
    std::fprintf(stderr,
                 "multichain: sharded index diverged from the single-map "
                 "oracle\n");
    return 1;
  }
  if (peak_rss > kRssCeilingBytes) {
    std::fprintf(stderr,
                 "multichain: peak RSS %zu exceeds the declared ceiling "
                 "%llu\n",
                 peak_rss, static_cast<unsigned long long>(kRssCeilingBytes));
    return 1;
  }

  runner::Json cells = runner::Json::Array();
  runner::Json wall_cells = runner::Json::Array();
  for (const CellRun& run : runs) {
    runner::Json cell = runner::Json::Object();
    cell.Set("chains", run.config.chains);
    cell.Set("accounts", run.config.accounts);
    cell.Set("txs_per_block", run.config.txs_per_block);
    cell.Set("blocks_per_chain", run.config.blocks);
    cell.Set("total_blocks", run.total_blocks);
    cell.Set("total_txs", run.total_txs);
    cell.Set("lookups", run.lookups);
    cell.Set("lookup_hits", run.lookup_hits);
    cell.Set("fingerprint", run.fingerprint);
    cells.Push(std::move(cell));

    runner::Json wall_cell = runner::Json::Object();
    wall_cell.Set("chains", run.config.chains);
    wall_cell.Set("accounts", run.config.accounts);
    wall_cell.Set("build_ms", run.build_ms);
    wall_cell.Set("lookup_ms", run.lookup_ms);
    wall_cell.Set("lookup_ops_per_sec", run.lookup_ops_per_sec);
    wall_cell.Set("ns_per_lookup", run.ns_per_lookup);
    wall_cells.Push(std::move(wall_cell));
  }

  runner::Json results = runner::Json::Object();
  results.Set("cells", std::move(cells));
  results.Set("equivalence_checked", true);
  results.Set("equivalence_ok", equivalence_ok);
  results.Set("rss_ceiling_bytes", kRssCeilingBytes);

  runner::Json wall = runner::Json::Object();
  wall.Set("cells", std::move(wall_cells));
  wall.Set("peak_rss_bytes", peak_rss);

  auto written = runner::WriteBenchJson(context, "multichain",
                                        std::move(results), std::move(wall));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
