// Section 4.3 ablation — the three cross-chain validation techniques the
// paper weighs before adopting the relay-contract design:
//
//   1. full replication: every validator keeps a complete copy of the
//      validated blockchain ("impractical ... massive processing power,
//      significant storage and network capabilities"),
//   2. light nodes: validators keep all block headers and verify served
//      Merkle proofs ("does not scale as the number of blockchains
//      increases"),
//   3. relay contracts: validators store ONE stable checkpoint header and
//      verify self-contained header-chain evidence per query (the paper's
//      proposal — and what AC3WN's contracts use).
//
// The harness grows the validated chain and reports, per technique, the
// validator-side storage footprint and the measured per-query verification
// cost for a transaction-inclusion check at depth 6.
//
// Expected shape: storage full >> light >> relay (relay is O(1)); query
// cost relay > light > full (the relay re-verifies the header chain per
// query — the price of keeping the validator stateless).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/chain/light_client.h"
#include "src/chain/wallet.h"
#include "src/contracts/evidence_builder.h"

namespace ac3 {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(41);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(42);

// Local stand-in for benchmark::DoNotOptimize (this harness prints a table
// rather than using the google-benchmark runner).
volatile bool g_sink = false;
void benchmarkish_use(bool v) { g_sink = g_sink ^ v; }

struct TechniqueCosts {
  size_t full_bytes = 0;
  size_t light_bytes = 0;
  size_t relay_bytes = 0;
  double full_query_us = 0;
  double light_query_us = 0;
  double relay_query_us = 0;
};

template <typename Fn>
double MeasureMicros(Fn&& fn, int iterations = 200) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         iterations;
}

TechniqueCosts RunAt(uint64_t chain_length, uint64_t seed) {
  chain::ChainParams params = chain::TestChainParams();
  chain::Blockchain validated(params,
                              {chain::TxOutput{5000, kAlice.public_key()}});
  chain::Wallet alice(kAlice, validated.id());
  Rng rng(seed);
  crypto::KeyPair miner = crypto::KeyPair::FromSeed(seed);
  TimePoint now = 0;
  auto mine = [&](const std::vector<chain::Transaction>& txs) {
    now += 100;
    auto block = validated.AssembleBlock(validated.head()->hash, txs,
                                         miner.public_key(), now, &rng);
    (void)validated.SubmitBlock(*block, now);
  };

  // The transaction of interest, mined early, buried under the rest.
  auto tx = alice.BuildTransfer(validated.StateAtHead(), kBob.public_key(),
                                10, 1, 1);
  mine({*tx});
  for (uint64_t i = 1; i < chain_length; ++i) mine({});
  const crypto::Hash256 tx_id = tx->Id();
  auto location = validated.FindTx(tx_id);

  TechniqueCosts costs;

  // ---- 1. full replication --------------------------------------------
  validated.ForEachEntry(
      [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
        (void)hash;
        costs.full_bytes += entry.block.header.Encode().size();
        for (const chain::Transaction& body_tx : entry.block.txs) {
          costs.full_bytes += body_tx.Encode().size();
        }
        for (const chain::Receipt& receipt : entry.block.receipts) {
          costs.full_bytes += receipt.Encode().size();
        }
      });
  costs.full_query_us = MeasureMicros([&]() {
    auto loc = validated.FindTx(tx_id);
    benchmarkish_use(loc.has_value());
  });

  // ---- 2. light node ----------------------------------------------------
  chain::LightClient light(validated.genesis()->block.header,
                           params.difficulty_bits);
  (void)light.SyncFrom(validated);
  costs.light_bytes =
      light.header_count() * validated.genesis()->block.header.Encode().size();
  crypto::MerkleTree tree(location->entry->block.TxLeaves());
  auto proof = *tree.Prove(location->index);
  costs.light_query_us = MeasureMicros([&]() {
    Status verified =
        light.VerifyInclusion(location->entry->hash, tx_id, proof, 6);
    benchmarkish_use(verified.ok());
  });

  // ---- 3. relay contract (checkpoint + per-query evidence) -------------
  const chain::BlockHeader checkpoint = validated.genesis()->block.header;
  costs.relay_bytes = checkpoint.Encode().size();
  auto evidence =
      *contracts::BuildTxEvidence(validated, validated.genesis()->hash, tx_id);
  costs.relay_query_us = MeasureMicros([&]() {
    Status verified = contracts::VerifyHeaderChainEvidence(
        checkpoint, params.difficulty_bits, evidence, 6);
    benchmarkish_use(verified.ok());
  });
  return costs;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  benchutil::PrintHeader(
      "Section 4.3 ablation — validator cost of the three cross-chain\n"
      "validation techniques (inclusion query at depth 6)");

  std::printf("%10s | %12s %12s %12s | %10s %10s %10s\n", "blocks",
              "full (B)", "light (B)", "relay (B)", "full us", "light us",
              "relay us");
  benchutil::PrintRule(92);
  const std::vector<uint64_t> lengths =
      context.smoke ? std::vector<uint64_t>{16, 64}
                    : std::vector<uint64_t>{16, 64, 256, 1024};
  runner::Json storage_rows = runner::Json::Array();
  runner::Json query_rows = runner::Json::Array();
  for (uint64_t length : lengths) {
    TechniqueCosts costs = RunAt(length, 5200 + length);
    std::printf("%10llu | %12zu %12zu %12zu | %10.2f %10.2f %10.2f\n",
                static_cast<unsigned long long>(length), costs.full_bytes,
                costs.light_bytes, costs.relay_bytes, costs.full_query_us,
                costs.light_query_us, costs.relay_query_us);
    // Storage footprints are pure functions of the seeded chain
    // (deterministic); query timings are machine-dependent wall numbers.
    runner::Json storage = runner::Json::Object();
    storage.Set("blocks", length);
    storage.Set("full_bytes", costs.full_bytes);
    storage.Set("light_bytes", costs.light_bytes);
    storage.Set("relay_bytes", costs.relay_bytes);
    storage_rows.Push(std::move(storage));
    runner::Json query = runner::Json::Object();
    query.Set("blocks", length);
    query.Set("full_query_us", costs.full_query_us);
    query.Set("light_query_us", costs.light_query_us);
    query.Set("relay_query_us", costs.relay_query_us);
    query_rows.Push(std::move(query));
  }
  benchutil::PrintRule(92);
  runner::Json results = runner::Json::Object();
  results.Set("storage", std::move(storage_rows));
  runner::Json wall = runner::Json::Object();
  wall.Set("queries", std::move(query_rows));
  auto written = runner::WriteBenchJson(context, "ablation_validation",
                                        std::move(results), std::move(wall));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshape check: full-replication storage grows with block bodies and\n"
      "light-node storage with headers, while the relay stores one header\n"
      "regardless of chain length; per query the relay pays the most (it\n"
      "re-verifies the whole header chain) — the paper accepts that trade\n"
      "to keep validators stateless and put the burden on the submitter.\n");
  return 0;
}
