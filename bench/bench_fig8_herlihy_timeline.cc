// Figure 8: "Overall transaction latency of 2·Δ·Diam(D) when the single
// leader atomic swap protocol is used."
//
// Reproduces the figure's timeline: on a directed ring (diameter = number
// of participants) the harness prints, per contract, when it was published
// and when it was redeemed. The publish column forms Diam sequential waves
// and the redeem column forms Diam more — the two-phase staircase of the
// figure.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"

namespace ac3 {
namespace {

constexpr TimePoint kDeadline = Minutes(60);

void RunTimeline(int diameter) {
  core::ScenarioOptions options;
  options.participants = diameter;
  options.asset_chains = std::min(diameter, 4);
  options.witness_chain = false;
  options.seed = 4100 + static_cast<uint64_t>(diameter);
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, diameter);
  protocols::HerlihySwapEngine engine(world.env(), ring,
                                      world.all_participants(),
                                      benchutil::FastHtlcConfig());
  auto report = engine.Run(kDeadline);
  if (!report.ok()) {
    std::printf("Diam=%d: engine error: %s\n", diameter,
                report.status().ToString().c_str());
    return;
  }

  std::printf("\nDiam(D) = %d  (leader = P%u, %s)\n", diameter,
              engine.leader(), report->Summary().c_str());
  std::printf("%10s | %12s | %12s | %10s\n", "contract", "published_ms",
              "redeemed_ms", "outcome");
  benchutil::PrintRule(56);
  std::vector<protocols::EdgeReport> edges = report->edges;
  std::sort(edges.begin(), edges.end(),
            [](const protocols::EdgeReport& a, const protocols::EdgeReport& b) {
              return a.published_at < b.published_at;
            });
  for (const protocols::EdgeReport& edge : edges) {
    std::printf("  SC(%u->%u) | %12lld | %12lld | %10s\n", edge.edge.from,
                edge.edge.to,
                static_cast<long long>(edge.published_at - report->start_time),
                static_cast<long long>(edge.settled_at - report->start_time),
                protocols::EdgeOutcomeName(edge.outcome));
  }
  // The staircase summary the figure conveys: width of each phase.
  TimePoint first_pub = INT64_MAX, last_pub = -1, last_settle = -1;
  for (const auto& edge : edges) {
    first_pub = std::min(first_pub, edge.published_at);
    last_pub = std::max(last_pub, edge.published_at);
    last_settle = std::max(last_settle, edge.settled_at);
  }
  std::printf("publish phase spans %lld ms, full swap %lld ms "
              "(sequential waves ~ Diam)\n",
              static_cast<long long>(last_pub - first_pub),
              static_cast<long long>(last_settle - report->start_time));
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  ac3::runner::BenchContext context = ac3::runner::ParseBenchArgs(argc, argv);
  if (context.exit_early) return context.exit_code;
  ac3::benchutil::PrintHeader(
      "Figure 8 — Herlihy single-leader timeline: sequential deployment\n"
      "then sequential redemption, 2*Diam(D) deltas end to end");
  const std::vector<int> diameters =
      context.smoke ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4, 6};
  for (int diam : diameters) {
    ac3::RunTimeline(diam);
  }
  return 0;
}
