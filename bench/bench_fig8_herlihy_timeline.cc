// Figure 8: "Overall transaction latency of 2·Δ·Diam(D) when the single
// leader atomic swap protocol is used."
//
// Reproduces the figure's timeline: on a directed ring (diameter = number
// of participants) the harness prints, per contract, when it was published
// and when it was redeemed. The publish column forms Diam sequential waves
// and the redeem column forms Diam more — the two-phase staircase of the
// figure.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"

namespace ac3 {
namespace {

constexpr TimePoint kDeadline = Minutes(60);

runner::Json RunTimeline(int diameter) {
  runner::Json row = runner::Json::Object();
  row.Set("diameter", diameter);
  core::ScenarioOptions options;
  options.participants = diameter;
  options.asset_chains = std::min(diameter, 4);
  options.witness_chain = false;
  options.seed = 4100 + static_cast<uint64_t>(diameter);
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, diameter);
  protocols::HerlihySwapEngine engine(world.env(), ring,
                                      world.all_participants(),
                                      benchutil::FastHtlcConfig());
  auto report = engine.Run(kDeadline);
  if (!report.ok()) {
    std::printf("Diam=%d: engine error: %s\n", diameter,
                report.status().ToString().c_str());
    row.Set("error", report.status().ToString());
    return row;
  }

  std::printf("\nDiam(D) = %d  (leader = P%u, %s)\n", diameter,
              engine.leader(), report->Summary().c_str());
  std::printf("%10s | %12s | %12s | %10s\n", "contract", "published_ms",
              "redeemed_ms", "outcome");
  benchutil::PrintRule(56);
  std::vector<protocols::EdgeReport> edges = report->edges;
  std::sort(edges.begin(), edges.end(),
            [](const protocols::EdgeReport& a, const protocols::EdgeReport& b) {
              return a.published_at < b.published_at;
            });
  runner::Json contracts = runner::Json::Array();
  for (const protocols::EdgeReport& edge : edges) {
    std::printf("  SC(%u->%u) | %12lld | %12lld | %10s\n", edge.edge.from,
                edge.edge.to,
                static_cast<long long>(edge.published_at - report->start_time),
                static_cast<long long>(edge.settled_at - report->start_time),
                protocols::EdgeOutcomeName(edge.outcome));
    runner::Json contract = runner::Json::Object();
    contract.Set("from", edge.edge.from);
    contract.Set("to", edge.edge.to);
    contract.Set("published_ms", edge.published_at - report->start_time);
    contract.Set("settled_ms", edge.settled_at - report->start_time);
    contract.Set("outcome", protocols::EdgeOutcomeName(edge.outcome));
    contracts.Push(std::move(contract));
  }
  // The staircase summary the figure conveys: width of each phase.
  TimePoint first_pub = INT64_MAX, last_pub = -1, last_settle = -1;
  for (const auto& edge : edges) {
    first_pub = std::min(first_pub, edge.published_at);
    last_pub = std::max(last_pub, edge.published_at);
    last_settle = std::max(last_settle, edge.settled_at);
  }
  std::printf("publish phase spans %lld ms, full swap %lld ms "
              "(sequential waves ~ Diam)\n",
              static_cast<long long>(last_pub - first_pub),
              static_cast<long long>(last_settle - report->start_time));
  row.Set("committed", report->committed);
  row.Set("publish_span_ms", last_pub - first_pub);
  row.Set("swap_ms", last_settle - report->start_time);
  row.Set("contracts", std::move(contracts));
  return row;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  ac3::bench::Options context = ac3::bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  ac3::benchutil::PrintHeader(
      "Figure 8 — Herlihy single-leader timeline: sequential deployment\n"
      "then sequential redemption, 2*Diam(D) deltas end to end");
  const std::vector<int> diameters =
      context.smoke ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4, 6};
  ac3::runner::Json rows = ac3::runner::Json::Array();
  for (int diam : diameters) {
    rows.Push(ac3::RunTimeline(diam));
  }
  ac3::runner::Json results = ac3::runner::Json::Object();
  results.Set("rows", std::move(rows));
  auto written = ac3::runner::WriteBenchJson(context, "fig8_herlihy_timeline",
                                             std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
