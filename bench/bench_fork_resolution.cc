// Section 4.2 / Lemma 5.3 ablation — fork attacks on the witness network
// vs the depth-d discipline.
//
// Grid over (d, attack length L): after the SCw commit decision (RDauth) is
// buried under d blocks, an attacker releases a private branch of L blocks
// forked from just before the decision, carrying the conflicting RFauth.
// The harness reports whether the canonical decision was reversed.
//
// Expected shape: reversal happens iff the attack branch outweighs the
// honest branch (L > honest suffix), i.e. everything strictly above the
// diagonal; participants who wait for d confirmations are only at risk
// from attacks longer than d — whose rental cost Section 6.3 prices.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/analysis/witness_selection.h"
#include "src/chain/wallet.h"
#include "src/contracts/evidence_builder.h"
#include "src/contracts/witness_contract.h"
#include "src/graph/multisig_graph.h"

namespace ac3 {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(61);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(62);

/// Hand-driven single-chain scenario. Returns true when the RDauth decision
/// buried under `d` honest blocks survives an attacker branch of `attack`
/// blocks carrying RFauth, forked from the decision's parent.
bool DecisionSurvives(uint32_t d, uint32_t attack, uint64_t seed) {
  chain::ChainParams witness_params = chain::TestWitnessParams();
  witness_params.id = 0;
  chain::Blockchain witness(
      witness_params,
      {chain::TxOutput{2000, kAlice.public_key()},
       chain::TxOutput{2000, kBob.public_key()}});
  Rng rng(seed);
  crypto::KeyPair miner = crypto::KeyPair::FromSeed(seed ^ 0xabc);
  TimePoint now = 0;
  auto mine_on = [&](const crypto::Hash256& parent,
                     const std::vector<chain::Transaction>& txs) {
    now += 100;
    auto block = witness.AssembleBlock(parent, txs, miner.public_key(), now,
                                       &rng);
    if (!block.ok()) return crypto::Hash256();
    if (!witness.SubmitBlock(*block, now).ok()) return crypto::Hash256();
    return block->header.Hash();
  };

  // SCw over a trivial one-edge graph (the asset chain is this same chain;
  // the fork dynamics only concern the witness side).
  graph::Ac2tGraph graph({kAlice.public_key(), kBob.public_key()},
                         {graph::Ac2tEdge{0, 1, 0, 100}}, 1);
  auto ms = graph::SignGraph(graph, {kAlice, kBob});
  contracts::WitnessInit init;
  init.participants = {kAlice.public_key(), kBob.public_key()};
  init.ms_encoded = ms->Encode();
  contracts::EdgeSpec spec;
  spec.chain_id = 0;
  spec.sender = kAlice.public_key();
  spec.recipient = kBob.public_key();
  spec.amount = 100;
  spec.min_evidence_depth = 0;
  spec.asset_checkpoint = witness.genesis()->block.header;
  spec.asset_difficulty_bits = witness_params.difficulty_bits;
  init.edges.push_back(spec);

  chain::Wallet alice(kAlice, 0);
  chain::Wallet bob(kBob, 0);
  auto scw_deploy = alice.BuildDeploy(witness.StateAtHead(),
                                      contracts::kWitnessKind, init.Encode(),
                                      0, 4, 1);
  if (!scw_deploy.ok()) return false;
  if (mine_on(witness.head()->hash, {*scw_deploy}).IsZero()) return false;
  const crypto::Hash256 scw_id = scw_deploy->Id();

  // Alice deploys the asset contract on the same chain so AuthorizeRedeem
  // has deployment evidence to verify.
  contracts::PermissionlessInit sc_init;
  sc_init.recipient = kBob.public_key();
  sc_init.witness_chain_id = 0;
  sc_init.scw_id = scw_id;
  sc_init.depth = d;
  sc_init.witness_checkpoint = witness.genesis()->block.header;
  sc_init.witness_difficulty_bits = witness_params.difficulty_bits;
  auto sc_deploy = alice.BuildDeploy(witness.StateAtHead(),
                                     contracts::kPermissionlessKind,
                                     sc_init.Encode(), 100, 4, 2);
  if (!sc_deploy.ok()) return false;
  if (mine_on(witness.head()->hash, {*sc_deploy}).IsZero()) return false;

  auto deploy_ev = contracts::BuildTxEvidence(witness, witness.genesis()->hash,
                                              sc_deploy->Id());
  if (!deploy_ev.ok()) return false;
  auto redeem_call = alice.BuildCall(witness.StateAtHead(), scw_id,
                                     contracts::kAuthorizeRedeemFunction,
                                     contracts::EncodeEdgeEvidence({*deploy_ev}),
                                     2, 3);
  if (!redeem_call.ok()) return false;
  auto refund_call = bob.BuildCall(witness.StateAtHead(), scw_id,
                                   contracts::kAuthorizeRefundFunction, {}, 2,
                                   4);
  if (!refund_call.ok()) return false;

  // Honest: decision block + d burial blocks.
  const crypto::Hash256 fork_parent = witness.head()->hash;
  if (mine_on(fork_parent, {*redeem_call}).IsZero()) return false;
  for (uint32_t i = 0; i < d; ++i) {
    if (mine_on(witness.head()->hash, {}).IsZero()) return false;
  }

  // Attack: a private branch of `attack` blocks from the same parent, the
  // first carrying the conflicting RFauth.
  crypto::Hash256 tip = mine_on(fork_parent, {*refund_call});
  if (tip.IsZero()) return false;
  for (uint32_t i = 1; i < attack; ++i) {
    tip = mine_on(tip, {});
    if (tip.IsZero()) return false;
  }

  auto contract = witness.ContractAtHead(scw_id);
  if (!contract.ok()) return false;
  const auto* scw =
      dynamic_cast<const contracts::WitnessContract*>(contract->get());
  return scw->state() == contracts::WitnessState::kRedeemAuthorized;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  benchutil::PrintHeader(
      "Lemma 5.3 ablation — buried commit decision vs private-fork attack\n"
      "cell = does the RDauth decision (buried under d blocks) survive an\n"
      "attacker branch of L blocks carrying the conflicting RFauth?");

  const uint32_t kMaxD = context.smoke ? 3 : 6;
  const uint32_t kMaxAttack = context.smoke ? 5 : 8;
  std::printf("%8s |", "");
  for (uint32_t attack = 1; attack <= kMaxAttack; ++attack) {
    std::printf("  L=%-4u", attack);
  }
  std::printf("\n");
  benchutil::PrintRule(10 + 8 * kMaxAttack);
  runner::Json matrix = runner::Json::Array();
  for (uint32_t d = 0; d <= kMaxD; ++d) {
    std::printf("   d=%3u |", d);
    for (uint32_t attack = 1; attack <= kMaxAttack; ++attack) {
      const bool survives = DecisionSurvives(d, attack, 7100 + d * 17 + attack);
      std::printf("  %-5s ", survives ? "ok" : "FLIP");
      runner::Json cell = runner::Json::Object();
      cell.Set("d", d);
      cell.Set("attack_length", attack);
      cell.Set("decision_survives", survives);
      matrix.Push(std::move(cell));
    }
    std::printf("\n");
  }
  benchutil::PrintRule(10 + 8 * kMaxAttack);
  std::printf(
      "\nexpected: FLIP exactly when L > d+1... i.e. when the attacker\n"
      "branch outweighs the honest suffix (decision block + d burials).\n"
      "Participants acting only on >= d confirmations are therefore exposed\n"
      "only to attacks of length > d, which Section 6.3 prices:\n");
  runner::Json pricing = runner::Json::Array();
  for (uint32_t d : {2u, 6u, 21u}) {
    const double cost = analysis::AttackCostForDepth(d + 1, 6.0, 300e3);
    std::printf("  d=%2u on Bitcoin-like witness: attack rental >= $%.0f\n", d,
                cost);
    runner::Json row = runner::Json::Object();
    row.Set("d", d);
    row.Set("attack_rental_usd", cost);
    pricing.Push(std::move(row));
  }
  runner::Json results = runner::Json::Object();
  results.Set("matrix", std::move(matrix));
  results.Set("attack_pricing", std::move(pricing));
  auto written = runner::WriteBenchJson(context, "fork_resolution",
                                        std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
