// Engineering micro-benchmarks (google-benchmark): the blockchain
// substrate — proof-of-work mining/verification, block assembly and full
// validation, and Section 4.3 evidence construction/verification.

#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"

#include "src/chain/blockchain.h"
#include "src/chain/pow.h"
#include "src/chain/wallet.h"
#include "src/contracts/evidence_builder.h"
#include "src/contracts/htlc_contract.h"

namespace ac3::chain {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(1);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(2);

ChainParams ParamsWithDifficulty(uint32_t bits) {
  ChainParams params = TestChainParams();
  params.difficulty_bits = bits;
  return params;
}

void BM_MineHeader(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  Rng rng(11);
  uint64_t salt = 0;
  for (auto _ : state) {
    BlockHeader header;
    header.chain_id = 0;
    header.height = ++salt;  // Vary the pre-image so each mine is fresh.
    header.difficulty_bits = bits;
    MineHeader(&header, &rng);
    benchmark::DoNotOptimize(header.nonce);
  }
}
BENCHMARK(BM_MineHeader)->Arg(4)->Arg(8)->Arg(12);

void BM_VerifyPow(benchmark::State& state) {
  Rng rng(12);
  BlockHeader header;
  header.difficulty_bits = 10;
  MineHeader(&header, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckProofOfWork(header));
  }
}
BENCHMARK(BM_VerifyPow);

void BM_AssembleAndSubmitBlock(benchmark::State& state) {
  const int txs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Blockchain chain(ParamsWithDifficulty(4),
                     {TxOutput{100000, kAlice.public_key()}});
    Wallet alice(kAlice, chain.id());
    std::vector<Transaction> batch;
    LedgerState scratch = chain.StateAtHead();
    for (int i = 0; i < txs; ++i) {
      auto tx = alice.BuildTransfer(scratch, kBob.public_key(), 10, 1,
                                    static_cast<uint64_t>(i));
      if (tx.ok()) {
        // Apply to scratch so subsequent transfers chain on change outputs.
        (void)ApplyTransaction(&scratch, *tx,
                               BlockEnv{chain.id(), 1, 100});
        batch.push_back(*tx);
      }
    }
    Rng rng(13);
    state.ResumeTiming();
    auto block = chain.AssembleBlock(chain.head()->hash, batch,
                                     kAlice.public_key(), 100, &rng);
    benchmark::DoNotOptimize(block.ok());
    if (block.ok()) {
      benchmark::DoNotOptimize(chain.SubmitBlock(*block, 100).ok());
    }
  }
}
BENCHMARK(BM_AssembleAndSubmitBlock)->Arg(1)->Arg(8)->Arg(32);

struct EvidenceFixture {
  Blockchain chain;
  crypto::Hash256 tx_id;

  EvidenceFixture(uint32_t depth)
      : chain(ParamsWithDifficulty(4), {TxOutput{100000, kAlice.public_key()}}) {
    Wallet alice(kAlice, chain.id());
    Rng rng(14);
    auto tx = alice.BuildTransfer(chain.StateAtHead(), kBob.public_key(), 10,
                                  1, 1);
    tx_id = tx->Id();
    TimePoint now = 0;
    auto mine = [&](const std::vector<Transaction>& txs) {
      now += 100;
      auto block = chain.AssembleBlock(chain.head()->hash, txs,
                                       kAlice.public_key(), now, &rng);
      (void)chain.SubmitBlock(*block, now);
    };
    mine({*tx});
    for (uint32_t i = 0; i < depth; ++i) mine({});
  }
};

void BM_BuildTxEvidence(benchmark::State& state) {
  EvidenceFixture fixture(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(contracts::BuildTxEvidence(
        fixture.chain, fixture.chain.genesis()->hash, fixture.tx_id));
  }
}
BENCHMARK(BM_BuildTxEvidence)->Arg(2)->Arg(8)->Arg(32);

void BM_VerifyTxEvidence(benchmark::State& state) {
  EvidenceFixture fixture(static_cast<uint32_t>(state.range(0)));
  auto evidence = contracts::BuildTxEvidence(
      fixture.chain, fixture.chain.genesis()->hash, fixture.tx_id);
  const BlockHeader checkpoint = fixture.chain.genesis()->block.header;
  for (auto _ : state) {
    benchmark::DoNotOptimize(contracts::VerifyHeaderChainEvidence(
        checkpoint, fixture.chain.params().difficulty_bits, *evidence,
        static_cast<uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_VerifyTxEvidence)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace ac3::chain

int main(int argc, char** argv) {
  return ac3::benchutil::GBenchMain(argc, argv, "micro_chain");
}
