// Shared presentation-layer scaffolding for the experiment harnesses:
// the uniform bench CLI (bench::Options), "fast profile" engine
// configurations, ring-graph construction over a ScenarioWorld, and
// fixed-width table printing. Measurement, parallel sweeping, and
// machine-readable output live in src/runner/.

#ifndef AC3_BENCH_BENCH_UTIL_H_
#define AC3_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3tw_swap.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

namespace ac3::bench {

namespace internal {

/// One row of the shared flag table — the single source for parsing AND
/// the generated --help text, so the two cannot drift.
struct FlagSpec {
  const char* name;        ///< e.g. "--seed".
  const char* value_name;  ///< Operand placeholder; nullptr = boolean flag.
  const char* help;        ///< One usage line.
};

inline constexpr FlagSpec kFlags[] = {
    {"--smoke", nullptr, "tiny grid (<10s), for CI bit-rot checks"},
    {"--out", "DIR", "directory for BENCH_*.json (default: .)"},
    {"--threads", "N", "sweep worker threads (default: all cores)"},
    {"--protocols", "LIST", "e.g. herlihy,ac3tw,ac3wn (sweep benches)"},
    {"--topologies", "LIST", "e.g. ring,path,star,complete,random_feasible"},
    {"--failures", "LIST", "e.g. none,crash_participant"},
    {"--seed", "N", "override the bench's default base RNG seed"},
    {"--help", nullptr, "print this usage text and exit"},
};

/// Usage text generated from the flag table.
inline void PrintUsage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [flags]\n", argv0);
  for (const FlagSpec& flag : kFlags) {
    char left[32];
    std::snprintf(left, sizeof(left), "%s%s%s", flag.name,
                  flag.value_name != nullptr ? " " : "",
                  flag.value_name != nullptr ? flag.value_name : "");
    std::fprintf(stderr, "  %-19s %s\n", left, flag.help);
  }
}

inline std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

}  // namespace internal

/// The uniform bench CLI, parsed once by every harness in bench/ — the
/// sweep benches, the timeline benches, and (through ParseKnown) the
/// google-benchmark micro-harnesses. Extends runner::BenchContext (which
/// the JSON envelope writer consumes) with the --seed override, and folds
/// the old free-standing runner::ApplyAxisOverrides into a member.
///
/// The axis flags parse through the same name tables the JSON output uses
/// (runner::Parse*), so the CLI, the printers, and the files cannot drift.
struct Options : runner::BenchContext {
  /// --seed value; meaningful only when seed_set (see SeedOr).
  uint64_t seed = 0;
  /// True when --seed was passed.
  bool seed_set = false;

  /// The --seed override when given, `fallback` otherwise — how a bench
  /// keeps its committed-golden default seed while staying re-runnable
  /// under fresh randomness.
  uint64_t SeedOr(uint64_t fallback) const { return seed_set ? seed : fallback; }

  /// Overwrites the grid's protocol/topology/failure axes with any
  /// non-empty override this CLI carried.
  void ApplyAxisOverrides(runner::SweepGridConfig* grid) const {
    if (!protocols.empty()) grid->protocols = protocols;
    if (!topologies.empty()) grid->topologies = topologies;
    if (!failures.empty()) grid->failures = failures;
  }

  /// Parses the shared CLI strictly: an unknown flag or a bad value prints
  /// usage to stderr and sets exit_early with a non-zero exit_code; --help
  /// sets exit_early with exit_code 0. main() starts with
  ///   bench::Options options = bench::Options::Parse(argc, argv);
  ///   if (options.exit_early) return options.exit_code;
  static Options Parse(int argc, char** argv) {
    return ParseImpl(argc, argv, nullptr);
  }

  /// Like Parse, but forwards unknown flags to `passthrough` (argv[0]
  /// first) instead of failing — for harnesses that wrap another flag
  /// consumer, e.g. google-benchmark's --benchmark_* family.
  static Options ParseKnown(int argc, char** argv,
                            std::vector<char*>* passthrough) {
    return ParseImpl(argc, argv, passthrough);
  }

 private:
  /// Parses a comma list through the shared axis-name table `parse`; on
  /// failure prints the status and flags a non-zero exit.
  template <typename E, typename ParseFn>
  static void ParseAxisList(const char* flag, const std::string& list,
                            ParseFn parse, std::vector<E>* out,
                            Options* options, const char* argv0) {
    for (const std::string& token : internal::SplitCommaList(list)) {
      auto parsed = parse(token);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", flag,
                     parsed.status().ToString().c_str());
        internal::PrintUsage(argv0);
        options->exit_early = true;
        options->exit_code = 1;
        return;
      }
      out->push_back(*parsed);
    }
  }

  static Options ParseImpl(int argc, char** argv,
                           std::vector<char*>* passthrough) {
    Options options;
    if (passthrough != nullptr && argc > 0) passthrough->push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const char* arg =
          std::strcmp(argv[i], "-h") == 0 ? "--help" : argv[i];
      const internal::FlagSpec* spec = nullptr;
      for (const internal::FlagSpec& flag : internal::kFlags) {
        if (std::strcmp(arg, flag.name) == 0) {
          spec = &flag;
          break;
        }
      }
      if (spec == nullptr) {
        if (passthrough != nullptr) {
          passthrough->push_back(argv[i]);
          continue;
        }
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        internal::PrintUsage(argv[0]);
        options.exit_early = true;
        options.exit_code = 1;
        return options;
      }
      if (std::strcmp(arg, "--help") == 0) {
        internal::PrintUsage(argv[0]);
        options.exit_early = true;
        return options;
      }
      if (std::strcmp(arg, "--smoke") == 0) {
        options.smoke = true;
        continue;
      }
      // Every remaining flag takes a value.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg);
        internal::PrintUsage(argv[0]);
        options.exit_early = true;
        options.exit_code = 1;
        return options;
      }
      const std::string value = argv[++i];
      if (std::strcmp(arg, "--out") == 0) {
        options.out_dir = value;
      } else if (std::strcmp(arg, "--threads") == 0) {
        options.threads = std::atoi(value.c_str());
      } else if (std::strcmp(arg, "--seed") == 0) {
        options.seed = std::strtoull(value.c_str(), nullptr, 10);
        options.seed_set = true;
      } else if (std::strcmp(arg, "--protocols") == 0) {
        ParseAxisList("--protocols", value, runner::ParseProtocol,
                      &options.protocols, &options, argv[0]);
      } else if (std::strcmp(arg, "--topologies") == 0) {
        ParseAxisList("--topologies", value, runner::ParseTopology,
                      &options.topologies, &options, argv[0]);
      } else {
        ParseAxisList("--failures", value, runner::ParseFailureMode,
                      &options.failures, &options, argv[0]);
      }
      if (options.exit_early) return options;
    }
    return options;
  }
};

}  // namespace ac3::bench

namespace ac3::benchutil {

inline protocols::Ac3wnConfig FastAc3wnConfig() {
  protocols::Ac3wnConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

inline protocols::Ac3twConfig FastAc3twConfig() {
  protocols::Ac3twConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

inline protocols::HtlcConfig FastHtlcConfig() {
  protocols::HtlcConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  return config;
}

/// A directed ring over the world's participants (diameter = size) — the
/// same topology the sweep runner builds, so timeline benches and sweeps
/// agree by construction.
inline graph::Ac2tGraph MakeRingOverWorld(core::ScenarioWorld* world, int n,
                                          chain::Amount amount = 100) {
  return runner::RingOverWorld(world, n, amount);
}

// NOTE: the empirical Δ measurement lives in src/runner/sweep_runner.h
// (runner::MeasureDeltaMs) — bench_util is presentation-layer only.

/// printf-style row helpers so every harness prints aligned tables.
inline void PrintRule(int width = 72) {
  std::string rule(static_cast<size_t>(width), '-');
  std::printf("%s\n", rule.c_str());
}

inline void PrintHeader(const std::string& title, int width = 72) {
  PrintRule(width);
  std::printf("%s\n", title.c_str());
  PrintRule(width);
}

}  // namespace ac3::benchutil

#endif  // AC3_BENCH_BENCH_UTIL_H_
