// Shared presentation-layer scaffolding for the experiment harnesses:
// "fast profile" engine configurations, ring-graph construction over a
// ScenarioWorld, and fixed-width table printing. Measurement, parallel
// sweeping, and machine-readable output live in src/runner/.

#ifndef AC3_BENCH_BENCH_UTIL_H_
#define AC3_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3tw_swap.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"
#include "src/runner/sweep_runner.h"

namespace ac3::benchutil {

inline protocols::Ac3wnConfig FastAc3wnConfig() {
  protocols::Ac3wnConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

inline protocols::Ac3twConfig FastAc3twConfig() {
  protocols::Ac3twConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

inline protocols::HtlcConfig FastHtlcConfig() {
  protocols::HtlcConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  return config;
}

/// A directed ring over the world's participants (diameter = size) — the
/// same topology the sweep runner builds, so timeline benches and sweeps
/// agree by construction.
inline graph::Ac2tGraph MakeRingOverWorld(core::ScenarioWorld* world, int n,
                                          chain::Amount amount = 100) {
  return runner::RingOverWorld(world, n, amount);
}

// NOTE: the empirical Δ measurement lives in src/runner/sweep_runner.h
// (runner::MeasureDeltaMs) — bench_util is presentation-layer only.

/// printf-style row helpers so every harness prints aligned tables.
inline void PrintRule(int width = 72) {
  std::string rule(static_cast<size_t>(width), '-');
  std::printf("%s\n", rule.c_str());
}

inline void PrintHeader(const std::string& title, int width = 72) {
  PrintRule(width);
  std::printf("%s\n", title.c_str());
  PrintRule(width);
}

}  // namespace ac3::benchutil

#endif  // AC3_BENCH_BENCH_UTIL_H_
