// Shared scaffolding for the experiment harnesses: engine configurations,
// ring-graph construction over a ScenarioWorld, a measured estimate of the
// paper's Δ, and fixed-width table printing.

#ifndef AC3_BENCH_BENCH_UTIL_H_
#define AC3_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3tw_swap.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"

namespace ac3::benchutil {

inline protocols::Ac3wnConfig FastAc3wnConfig() {
  protocols::Ac3wnConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.poll_interval = Milliseconds(20);
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

inline protocols::Ac3twConfig FastAc3twConfig() {
  protocols::Ac3twConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.poll_interval = Milliseconds(20);
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

inline protocols::HtlcConfig FastHtlcConfig() {
  protocols::HtlcConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.poll_interval = Milliseconds(20);
  config.resubmit_interval = Milliseconds(800);
  return config;
}

/// A directed ring over the world's participants (diameter = size), cycling
/// through the available asset chains.
inline graph::Ac2tGraph MakeRingOverWorld(core::ScenarioWorld* world, int n,
                                          chain::Amount amount = 100) {
  std::vector<crypto::PublicKey> pks;
  std::vector<chain::ChainId> chains;
  for (int i = 0; i < n; ++i) {
    pks.push_back(world->participant(i)->pk());
    chains.push_back(
        world->asset_chain(i % static_cast<int>(world->asset_chains().size())));
  }
  return graph::MakeRing(pks, chains, amount, world->env()->sim()->Now());
}

/// Measures Δ empirically: the time for one participant to publish a
/// contract-bearing transaction and have it publicly recognized
/// (confirm_depth blocks deep) on asset chain 0 of a fresh world identical
/// to `options`. This grounds "latency in Δs" for the simulated curves.
inline double MeasureDeltaMs(const core::ScenarioOptions& options,
                             uint32_t confirm_depth) {
  core::ScenarioWorld world(options);
  world.StartMining();
  protocols::Participant* alice = world.participant(0);
  const TimePoint start = world.env()->sim()->Now();
  auto tx_id = alice->SubmitTransfer(world.asset_chain(0),
                                     world.participant(1)->pk(), 1, 1);
  if (!tx_id.ok()) return 0.0;
  const chain::Blockchain* chain = world.env()->blockchain(world.asset_chain(0));
  Status confirmed = world.env()->sim()->RunUntilCondition(
      [&]() {
        auto location = chain->FindTx(*tx_id);
        if (!location.has_value()) return false;
        auto depth = chain->ConfirmationsOf(location->entry->hash);
        return depth.has_value() && *depth >= confirm_depth;
      },
      Minutes(5));
  if (!confirmed.ok()) return 0.0;
  return static_cast<double>(world.env()->sim()->Now() - start);
}

/// printf-style row helpers so every harness prints aligned tables.
inline void PrintRule(int width = 72) {
  std::string rule(static_cast<size_t>(width), '-');
  std::printf("%s\n", rule.c_str());
}

inline void PrintHeader(const std::string& title, int width = 72) {
  PrintRule(width);
  std::printf("%s\n", title.c_str());
  PrintRule(width);
}

}  // namespace ac3::benchutil

#endif  // AC3_BENCH_BENCH_UTIL_H_
