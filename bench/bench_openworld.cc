// Open-world traffic benchmark: sustained swaps/sec at
// millions-of-accounts scale through the full ingestion → assembly →
// contention-mining pipeline.
//
// Each cell drives a 2-chain fleet with the deterministic open-loop
// workload generator (sim::WorkloadGenerator): Poisson or bursty swap
// arrivals, Zipf-hot participants from an account universe of up to
// millions of lazily-materialized wallets, per-chain fee pressure. Per
// simulated tick, the harness drains the generator into the mempools via
// Mempool::SubmitBatch, lets several miners per chain assemble competing
// candidate blocks (Mempool::CandidatePointersAt + the span
// AssembleBlock, unmined), resolves the proof-of-work race with ONE
// MineHeaderBatch call spanning every miner on every chain (the
// full-lane batch occupying all SIMD lanes across distinct headers), and
// submits each chain's winner — the miner whose search finished in the
// fewest evaluations.
//
// Self-check: the first cell runs twice — the hot arm above, and an
// oracle arm using per-transaction Submit, the null-pool serial
// AssembleBlockOn and sequential per-miner MineHeader — and every
// deterministic output (head hashes, eval totals, per-swap inclusion
// latencies) must match exactly; the process exits non-zero otherwise.
//
// Determinism contract: everything under "results" (offered/completed
// swaps, inclusion-latency percentiles in *simulated* ms, total PoW
// evals, per-cell head-hash fingerprints, the equivalence verdict, the
// declared RSS ceiling) is a pure function of the seeds, at any thread
// count and on every SHA-256 dispatch rung. Wall times, wall swaps/sec
// and the measured peak RSS live under "wall".

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"
#include "src/chain/pow.h"
#include "src/crypto/hash256.h"
#include "src/runner/bench_output.h"
#include "src/sim/workload.h"

namespace ac3 {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// VmHWM from /proc/self/status, in bytes (0 if unavailable — non-Linux).
size_t ReadPeakRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

constexpr size_t kChains = 2;
constexpr size_t kMinersPerChain = 4;
constexpr Duration kTickMs = 200;

struct CellConfig {
  double arrivals_per_sec = 0;
  uint64_t accounts = 0;
  sim::ArrivalProcess process = sim::ArrivalProcess::kPoisson;
  Duration horizon_ms = 0;
  uint32_t difficulty_bits = 0;
};

const char* ProcessName(sim::ArrivalProcess process) {
  return process == sim::ArrivalProcess::kPoisson ? "poisson" : "bursty";
}

struct CellResult {
  CellConfig config;
  // Deterministic.
  uint64_t offered_swaps = 0;
  uint64_t completed_swaps = 0;
  uint64_t txs_submitted = 0;
  uint64_t blocks_submitted = 0;
  uint64_t total_evals = 0;
  TimePoint sim_end = 0;       ///< Tick at which the pools drained.
  double sim_swaps_per_sec = 0;
  TimePoint latency_p50 = 0;   ///< Swap inclusion latency, simulated ms.
  TimePoint latency_p99 = 0;
  TimePoint latency_p999 = 0;
  std::string fingerprint;     ///< Hash over the chains' head hashes.
  // Machine-dependent.
  double wall_ms = 0;
  double wall_swaps_per_sec = 0;
};

TimePoint Percentile(const std::vector<TimePoint>& sorted, int tenths_pct) {
  if (sorted.empty()) return 0;
  size_t index = sorted.size() * static_cast<size_t>(tenths_pct) / 1000;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// Runs one cell end to end. `oracle` swaps every batched hot path for
/// its serial one-at-a-time twin (the equivalence arm).
CellResult RunCell(const CellConfig& cell, uint64_t seed, bool oracle) {
  CellResult result;
  result.config = cell;
  const Clock::time_point wall_t0 = Clock::now();

  sim::WorkloadConfig workload;
  workload.chains = kChains;
  workload.accounts = cell.accounts;
  workload.arrivals_per_sec = cell.arrivals_per_sec;
  workload.process = cell.process;
  sim::WorkloadGenerator gen(workload, seed);

  std::vector<std::unique_ptr<chain::Blockchain>> chains;
  std::vector<chain::Mempool> pools(kChains);
  for (size_t c = 0; c < kChains; ++c) {
    chain::ChainParams params = chain::TestChainParams();
    params.id = static_cast<chain::ChainId>(c + 1);
    params.name = "open-" + std::to_string(c);
    params.difficulty_bits = cell.difficulty_bits;
    params.max_block_txs = 512;
    chains.push_back(std::make_unique<chain::Blockchain>(
        params, gen.GenesisAllocations(c)));
    gen.BindChain(c, chains[c]->id(), chains[c]->genesis_tx());
  }
  std::vector<crypto::KeyPair> miner_keys;
  for (size_t m = 0; m < kChains * kMinersPerChain; ++m) {
    miner_keys.push_back(crypto::KeyPair::FromSeed(9'000'000 + m));
  }

  Rng pow_rng(seed + 1);
  std::unordered_map<crypto::Hash256, TimePoint> included_at;
  struct PendingSwap {
    TimePoint arrival;
    crypto::Hash256 leg_a;
    crypto::Hash256 leg_b;
  };
  std::vector<PendingSwap> swaps;

  // Post-horizon drain bound: generously above any backlog a cell can
  // accumulate; hitting it means the pipeline stopped making progress.
  const TimePoint drain_deadline =
      cell.horizon_ms + 2'000 * kTickMs;
  TimePoint now = 0;
  bool drained = false;
  while (!drained) {
    now += kTickMs;
    if (now > drain_deadline) {
      std::fprintf(stderr, "openworld: pools failed to drain by tick %lld\n",
                   static_cast<long long>(now));
      std::exit(1);
    }

    // 1. Arrivals → mempools (batched in the hot arm, serial in oracle).
    if (now <= cell.horizon_ms) {
      sim::WorkloadBatch batch = gen.NextBatch(now);
      std::vector<std::vector<chain::Transaction>> per_chain(kChains);
      for (sim::GeneratedTx& gtx : batch.txs) {
        per_chain[gtx.chain].push_back(std::move(gtx.tx));
      }
      for (size_t c = 0; c < kChains; ++c) {
        result.txs_submitted += per_chain[c].size();
        if (oracle) {
          for (const chain::Transaction& tx : per_chain[c]) {
            if (!pools[c].Submit(tx, now).ok()) {
              std::fprintf(stderr, "openworld: duplicate generated tx\n");
              std::exit(1);
            }
          }
        } else {
          auto submitted = pools[c].SubmitBatch(
              std::span<const chain::Transaction>(per_chain[c]), now);
          if (submitted.accepted != per_chain[c].size()) {
            std::fprintf(stderr, "openworld: duplicate generated tx\n");
            std::exit(1);
          }
        }
      }
      for (const sim::SwapRecord& swap : batch.swaps) {
        swaps.push_back(PendingSwap{swap.arrival, swap.leg_a_id,
                                    swap.leg_b_id});
      }
      result.offered_swaps += batch.swaps.size();
    }

    // 2. Every miner on every chain assembles its competing candidate
    //    (unmined). Same head, same candidates, distinct coinbase keys —
    //    so distinct headers racing for the same extension.
    struct Candidate {
      size_t chain;
      size_t miner;
      chain::Block block;
    };
    std::vector<Candidate> candidates;
    for (size_t c = 0; c < kChains; ++c) {
      if (pools[c].size() == 0) continue;
      for (size_t m = 0; m < kMinersPerChain; ++m) {
        const crypto::PublicKey& miner =
            miner_keys[c * kMinersPerChain + m].public_key();
        Result<chain::Block> block = Status::Internal("unassembled");
        if (oracle) {
          auto pool_txs =
              pools[c].CandidatesAt(now, chain::Mempool::TxFilter());
          std::vector<const chain::Transaction*> pointers;
          pointers.reserve(pool_txs.size());
          for (const chain::Transaction& tx : pool_txs) {
            pointers.push_back(&tx);
          }
          block = chains[c]->AssembleBlockOn(
              nullptr, chains[c]->head()->hash,
              std::span<const chain::Transaction* const>(pointers), miner,
              now, &pow_rng, /*mine=*/false);
        } else {
          auto pointers =
              pools[c].CandidatePointersAt(now, chain::Mempool::TxFilter());
          block = chains[c]->AssembleBlock(
              chains[c]->head()->hash,
              std::span<const chain::Transaction* const>(pointers), miner,
              now, &pow_rng, /*mine=*/false);
        }
        if (!block.ok()) {
          std::fprintf(stderr, "openworld: assembly failed: %s\n",
                       block.status().ToString().c_str());
          std::exit(1);
        }
        if (block->txs.size() <= 1) continue;  // Nothing minable yet.
        candidates.push_back(Candidate{c, m, std::move(*block)});
      }
    }

    // 3. One batched nonce search across every competing header — all
    //    chains, all miners, every SIMD lane occupied (the oracle arm
    //    mines the same headers sequentially from the same rng).
    std::vector<uint64_t> evals;
    if (oracle) {
      for (Candidate& candidate : candidates) {
        evals.push_back(chain::MineHeader(&candidate.block.header, &pow_rng));
      }
    } else {
      std::vector<chain::BlockHeader*> headers;
      headers.reserve(candidates.size());
      for (Candidate& candidate : candidates) {
        headers.push_back(&candidate.block.header);
      }
      evals = chain::MineHeaderBatch(
          std::span<chain::BlockHeader* const>(headers), &pow_rng);
    }
    for (const uint64_t e : evals) result.total_evals += e;

    // 4. Per chain, the miner whose search finished first (fewest evals;
    //    ties to the lowest miner index) wins the extension.
    for (size_t c = 0; c < kChains; ++c) {
      const Candidate* winner = nullptr;
      uint64_t winner_evals = 0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].chain != c) continue;
        if (winner == nullptr || evals[i] < winner_evals) {
          winner = &candidates[i];
          winner_evals = evals[i];
        }
      }
      if (winner == nullptr) continue;
      Status submitted = chains[c]->SubmitBlock(winner->block, now);
      if (!submitted.ok()) {
        std::fprintf(stderr, "openworld: submit failed: %s\n",
                     submitted.ToString().c_str());
        std::exit(1);
      }
      ++result.blocks_submitted;
      std::vector<crypto::Hash256> included;
      included.reserve(winner->block.txs.size() - 1);
      for (size_t i = 1; i < winner->block.txs.size(); ++i) {
        const crypto::Hash256 id = winner->block.txs[i].Id();
        included.push_back(id);
        included_at.emplace(id, now);
      }
      pools[c].Prune(std::span<const crypto::Hash256>(included));
    }

    drained = now >= cell.horizon_ms;
    for (const chain::Mempool& pool : pools) {
      drained = drained && pool.size() == 0;
    }
  }
  result.sim_end = now;

  // Swap inclusion latency: the slower leg's inclusion minus arrival.
  std::vector<TimePoint> latencies;
  latencies.reserve(swaps.size());
  for (const PendingSwap& swap : swaps) {
    const auto leg_a = included_at.find(swap.leg_a);
    const auto leg_b = included_at.find(swap.leg_b);
    if (leg_a == included_at.end() || leg_b == included_at.end()) continue;
    latencies.push_back(std::max(leg_a->second, leg_b->second) -
                        swap.arrival);
  }
  result.completed_swaps = latencies.size();
  std::sort(latencies.begin(), latencies.end());
  result.latency_p50 = Percentile(latencies, 500);
  result.latency_p99 = Percentile(latencies, 990);
  result.latency_p999 = Percentile(latencies, 999);
  result.sim_swaps_per_sec =
      result.sim_end > 0
          ? static_cast<double>(result.completed_swaps) /
                (static_cast<double>(result.sim_end) / 1000.0)
          : 0;

  Bytes head_bytes;
  for (const auto& bc : chains) {
    const auto& digest = bc->head()->hash.data();
    head_bytes.insert(head_bytes.end(), digest.begin(), digest.end());
  }
  result.fingerprint = crypto::Hash256::Of(head_bytes).ToHex();

  result.wall_ms = ElapsedMs(wall_t0);
  result.wall_swaps_per_sec =
      result.wall_ms > 0 ? static_cast<double>(result.completed_swaps) /
                               (result.wall_ms / 1000.0)
                         : 0;
  return result;
}

/// The hot arm and the oracle arm must agree on every deterministic
/// output. Returns false (and reports) on any divergence.
bool CheckEquivalence(const CellResult& hot, const CellResult& oracle) {
  auto fail = [](const char* what) {
    std::fprintf(stderr, "openworld equivalence: %s diverged\n", what);
    return false;
  };
  if (hot.fingerprint != oracle.fingerprint) return fail("head fingerprint");
  if (hot.total_evals != oracle.total_evals) return fail("pow eval count");
  if (hot.offered_swaps != oracle.offered_swaps) return fail("offered swaps");
  if (hot.completed_swaps != oracle.completed_swaps) {
    return fail("completed swaps");
  }
  if (hot.blocks_submitted != oracle.blocks_submitted) {
    return fail("block count");
  }
  if (hot.sim_end != oracle.sim_end) return fail("drain tick");
  if (hot.latency_p50 != oracle.latency_p50 ||
      hot.latency_p99 != oracle.latency_p99 ||
      hot.latency_p999 != oracle.latency_p999) {
    return fail("latency percentiles");
  }
  return true;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  const uint64_t seed = context.SeedOr(424242);

  // arrival-rate × account-universe × process grid. The 2M-account cells
  // are the "millions of users" claim: the universe costs nothing until
  // Zipf traffic touches an account (lazy wallet materialization).
  std::vector<CellConfig> grid;
  if (context.smoke) {
    grid.push_back(CellConfig{100.0, 10'000, sim::ArrivalProcess::kPoisson,
                              /*horizon_ms=*/2'000, /*difficulty_bits=*/8});
    grid.push_back(CellConfig{100.0, 2'000'000, sim::ArrivalProcess::kBursty,
                              /*horizon_ms=*/2'000, /*difficulty_bits=*/8});
  } else {
    for (double rate : {250.0, 1'000.0}) {
      for (uint64_t accounts : {10'000ull, 2'000'000ull}) {
        for (sim::ArrivalProcess process :
             {sim::ArrivalProcess::kPoisson, sim::ArrivalProcess::kBursty}) {
          grid.push_back(CellConfig{rate, accounts, process,
                                    /*horizon_ms=*/20'000,
                                    /*difficulty_bits=*/12});
        }
      }
    }
  }

  // The committed envelope declares this ceiling; check_bench_floor.py
  // asserts a fresh run's wall.peak_rss_bytes stays under the *committed*
  // results.rss_ceiling_bytes.
  constexpr uint64_t kRssCeilingBytes = 1536ull * 1024 * 1024;

  benchutil::PrintHeader(
      "Open-world traffic — sustained swaps/sec through batched ingestion,\n"
      "widened assembly and full-lane multi-miner PoW (hot vs serial-oracle "
      "self-check)");

  std::printf("%8s | %9s | %8s | %8s | %9s | %7s | %7s | %8s\n", "rate/s",
              "accounts", "process", "offered", "completed", "p50 ms",
              "p999 ms", "sim sw/s");
  benchutil::PrintRule(84);

  bool equivalence_ok = true;
  std::vector<CellResult> cells;
  for (size_t i = 0; i < grid.size(); ++i) {
    CellResult hot = RunCell(grid[i], seed, /*oracle=*/false);
    if (i == 0) {
      // The serial-oracle probe rides on the first cell only: the batched
      // paths don't change shape with cell size, the traffic does.
      CellResult oracle = RunCell(grid[i], seed, /*oracle=*/true);
      equivalence_ok = CheckEquivalence(hot, oracle) && equivalence_ok;
    }
    std::printf("%8.0f | %9llu | %8s | %8llu | %9llu | %7lld | %7lld | %8.0f\n",
                hot.config.arrivals_per_sec,
                static_cast<unsigned long long>(hot.config.accounts),
                ProcessName(hot.config.process),
                static_cast<unsigned long long>(hot.offered_swaps),
                static_cast<unsigned long long>(hot.completed_swaps),
                static_cast<long long>(hot.latency_p50),
                static_cast<long long>(hot.latency_p999),
                hot.sim_swaps_per_sec);
    cells.push_back(std::move(hot));
  }

  const size_t peak_rss = ReadPeakRssBytes();
  std::printf("\npeak RSS %.1f MiB (declared ceiling %.0f MiB) — "
              "hot vs oracle: %s\n",
              static_cast<double>(peak_rss) / (1024.0 * 1024.0),
              static_cast<double>(kRssCeilingBytes) / (1024.0 * 1024.0),
              equivalence_ok ? "identical" : "DIVERGED");

  if (!equivalence_ok) {
    std::fprintf(stderr,
                 "openworld: batched pipeline diverged from the serial "
                 "oracle\n");
    return 1;
  }
  if (peak_rss > kRssCeilingBytes) {
    std::fprintf(stderr,
                 "openworld: peak RSS %zu exceeds the declared ceiling %llu\n",
                 peak_rss, static_cast<unsigned long long>(kRssCeilingBytes));
    return 1;
  }

  runner::Json result_cells = runner::Json::Array();
  runner::Json wall_cells = runner::Json::Array();
  for (const CellResult& cell : cells) {
    runner::Json entry = runner::Json::Object();
    entry.Set("arrivals_per_sec", cell.config.arrivals_per_sec);
    entry.Set("accounts", cell.config.accounts);
    entry.Set("process", ProcessName(cell.config.process));
    entry.Set("horizon_ms", cell.config.horizon_ms);
    entry.Set("difficulty_bits", cell.config.difficulty_bits);
    entry.Set("offered_swaps", cell.offered_swaps);
    entry.Set("completed_swaps", cell.completed_swaps);
    entry.Set("txs_submitted", cell.txs_submitted);
    entry.Set("blocks_submitted", cell.blocks_submitted);
    entry.Set("total_evals", cell.total_evals);
    entry.Set("sim_end_ms", cell.sim_end);
    entry.Set("sim_swaps_per_sec", cell.sim_swaps_per_sec);
    entry.Set("latency_p50_ms", cell.latency_p50);
    entry.Set("latency_p99_ms", cell.latency_p99);
    entry.Set("latency_p999_ms", cell.latency_p999);
    entry.Set("fingerprint", cell.fingerprint);
    result_cells.Push(std::move(entry));

    runner::Json wall_entry = runner::Json::Object();
    wall_entry.Set("arrivals_per_sec", cell.config.arrivals_per_sec);
    wall_entry.Set("accounts", cell.config.accounts);
    wall_entry.Set("process", ProcessName(cell.config.process));
    wall_entry.Set("wall_ms", cell.wall_ms);
    wall_entry.Set("wall_swaps_per_sec", cell.wall_swaps_per_sec);
    wall_cells.Push(std::move(wall_entry));
  }

  runner::Json results = runner::Json::Object();
  results.Set("cells", std::move(result_cells));
  results.Set("equivalence_checked", true);
  results.Set("equivalence_ok", equivalence_ok);
  results.Set("rss_ceiling_bytes", kRssCeilingBytes);

  runner::Json wall = runner::Json::Object();
  wall.Set("cells", std::move(wall_cells));
  wall.Set("peak_rss_bytes", peak_rss);

  auto written = runner::WriteBenchJson(context, "openworld",
                                        std::move(results), std::move(wall));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
