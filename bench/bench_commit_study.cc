// The commit study — blocking vs nonblocking atomic commitment under a
// phase-precise coordinator crash (the classic 2PC blocking window; see
// src/protocols/quorum_commit.h for the protocol).
//
// Grid: every protocol × {fault-free, coordinator crash at prepare,
// coordinator crash at commit} × seeds, on the 4-party ring, with the
// coordinator never recovering (coordinator_recovery_deltas < 0). The
// separation the study must reproduce:
//
//  * Herlihy and AC3TW — single-coordinator protocols — either never
//    reach a verdict or strand locked funds in every coordinator-crash
//    cell (blocking).
//  * QuorumCommit reaches an atomic verdict with nothing stranded in
//    EVERY cell: the surviving majority takes over the crashed
//    coordinator's round (nonblocking).
//
// AC3WN rows ride along for context (its witness chain makes the decision
// durable, so a verdict is always reached, but assets addressed to the
// dead node itself can only be claimed by it). The bench is self-checking:
// it exits nonzero unless the separation reproduced AND a single-threaded
// re-run of the grid is bit-for-bit identical to the pooled run.
//
// Published as BENCH_commit_study.json; CI holds smoke runs to the floor
// via scripts/check_bench_floor.py --commit-study.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  runner::SweepGridConfig grid;
  grid.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3tw,
                    runner::Protocol::kAc3wn, runner::Protocol::kQuorum};
  grid.topologies = {runner::Topology::kRing};
  grid.sizes = {4};
  grid.failures = {runner::FailureMode::kNone,
                   runner::FailureMode::kCrashCoordinatorAtPrepare,
                   runner::FailureMode::kCrashCoordinatorAtCommit};
  grid.seeds = {401, 402, 403};
  // Blocked cells run to the deadline by design; keep it tight enough that
  // the study stays cheap while dwarfing every commit path's latency.
  grid.deadline = Seconds(90);
  grid.coordinator_recovery_deltas = -1.0;  // The coordinator stays dead.
  if (context.smoke) {
    grid.seeds = {401};
  }
  context.ApplyAxisOverrides(&grid);

  benchutil::PrintHeader(
      "Commit study — coordinator crash between prepare and commit:\n"
      "2PC-style engines block, the quorum-commit engine takes over");

  core::ScenarioOptions delta_world;
  delta_world.seed = 999;
  const double delta_ms =
      runner::MeasureDeltaMs(delta_world, grid.confirm_depth);
  std::printf("measured delta (publish + public recognition): %.0f ms\n\n",
              delta_ms);

  runner::SweepRunner pool(context.threads);
  runner::GridWallStats wall_stats;
  const std::vector<runner::RunOutcome> outcomes =
      pool.RunGridTimed(grid, &wall_stats);

  std::printf("%9s | %-28s | %8s | %8s | %8s | %8s | %10s\n", "protocol",
              "failure", "finished", "commit", "abort", "stranded",
              "mean (d^)");
  benchutil::PrintRule(96);

  // Acceptance: every blocking-baseline coordinator-crash cell stalls or
  // strands; every quorum cell reaches an atomic verdict, nothing
  // stranded.
  bool blocking_reproduced = true;
  bool quorum_atomic = true;
  int violations = 0;
  runner::Json rows = runner::Json::Array();
  for (runner::Protocol protocol : grid.protocols) {
    for (runner::FailureMode failure : grid.failures) {
      std::vector<runner::RunOutcome> mine;
      int stranded = 0;
      for (const runner::RunOutcome& outcome : outcomes) {
        if (outcome.point.protocol != protocol ||
            outcome.point.failure != failure) {
          continue;
        }
        mine.push_back(outcome);
        stranded += outcome.edges_stranded;
        if (outcome.atomicity_violated) ++violations;

        const bool coordinator_crash =
            failure != runner::FailureMode::kNone;
        const bool blocked = !outcome.finished || outcome.edges_stranded > 0;
        if (coordinator_crash &&
            (protocol == runner::Protocol::kHerlihy ||
             protocol == runner::Protocol::kAc3tw) &&
            !blocked) {
          blocking_reproduced = false;
        }
        if (protocol == runner::Protocol::kQuorum) {
          const bool atomic_verdict =
              outcome.finished && (outcome.committed || outcome.aborted) &&
              !outcome.atomicity_violated && outcome.edges_stranded == 0;
          if (!atomic_verdict) quorum_atomic = false;
        }
      }
      if (mine.empty()) continue;
      runner::SweepAggregate agg = runner::Aggregate(mine, delta_ms);
      std::printf("%9s | %-28s | %8d | %8d | %8d | %8d | %10.1f\n",
                  runner::ProtocolName(protocol),
                  runner::FailureModeName(failure), agg.finished,
                  agg.committed, agg.aborted, stranded,
                  agg.commit_latency.samples > 0 ? agg.mean_latency_deltas
                                                 : -1.0);
      runner::Json row = runner::Json::Object();
      row.Set("protocol", runner::ProtocolName(protocol));
      row.Set("failure", runner::FailureModeName(failure));
      row.Set("edges_stranded", stranded);
      row.Set("aggregate", runner::AggregateToJson(agg));
      rows.Push(std::move(row));
    }
    benchutil::PrintRule(96);
  }

  // Determinism contract: the same grid on one thread must be bit-for-bit
  // identical to the pooled run (per-cell JSON excludes wall clock).
  auto fingerprint = [](const std::vector<runner::RunOutcome>& all) {
    runner::Json arr = runner::Json::Array();
    for (const runner::RunOutcome& outcome : all) {
      arr.Push(runner::OutcomeToJson(outcome));
    }
    return arr.Serialize();
  };
  runner::SweepRunner single(1);
  const bool thread_invariant =
      fingerprint(outcomes) == fingerprint(single.RunGrid(grid));

  const bool separation_reproduced =
      blocking_reproduced && quorum_atomic && violations == 0;

  runner::Json outcome_list = runner::Json::Array();
  for (const runner::RunOutcome& outcome : outcomes) {
    outcome_list.Push(runner::OutcomeToJson(outcome));
  }

  runner::Json results = runner::Json::Object();
  results.Set("delta_ms", delta_ms);
  results.Set("size", static_cast<int64_t>(grid.sizes.front()));
  results.Set("seeds_per_cell", static_cast<int64_t>(grid.seeds.size()));
  results.Set("coordinator_recovery_deltas",
              grid.coordinator_recovery_deltas);
  results.Set("atomicity_violations", violations);
  results.Set("blocking_reproduced", blocking_reproduced);
  results.Set("quorum_atomic", quorum_atomic);
  results.Set("separation_reproduced", separation_reproduced);
  results.Set("thread_invariant", thread_invariant);
  results.Set("rows", std::move(rows));
  results.Set("outcomes", std::move(outcome_list));

  auto written =
      runner::WriteBenchJson(context, "commit_study", std::move(results),
                             runner::GridWallJson(wall_stats, outcomes));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshape check: Herlihy/AC3TW stall or strand in every coordinator-\n"
      "crash cell while QuorumCommit reaches an atomic verdict everywhere.\n"
      "blocking_reproduced=%s, quorum_atomic=%s, violations=%d,\n"
      "thread_invariant=%s.\n",
      blocking_reproduced ? "true" : "false",
      quorum_atomic ? "true" : "false", violations,
      thread_invariant ? "true" : "false");
  return separation_reproduced && thread_invariant ? 0 : 1;
}
