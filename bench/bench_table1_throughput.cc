// Table 1 / Section 6.4 — throughput of the top-4 permissionless
// cryptocurrencies and the min-composition rule for AC2T throughput.
//
// Prints the paper's Table 1, the witness-choice composition matrix
// (including the paper's example: ETH+LTC witnessed by BTC ⇒ 7 tps), and a
// *measured* per-chain throughput obtained by saturating each simulated
// chain's mempool and counting included transactions (the simulator's
// block capacity is calibrated so measured/scale reproduces Table 1).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/throughput_model.h"

namespace ac3 {
namespace {

/// Measured tps = (user txs per saturated block) x (blocks per second).
///
/// The two factors are measured separately so Poisson noise in block
/// arrivals averages over hundreds of blocks: a short saturation phase
/// establishes the per-block capacity actually achieved by the miners, and
/// a long empty run establishes the block rate.
double MeasureChainTps(const chain::ChainParams& params, uint64_t seed) {
  // ---- factor 1: achieved txs per block under a saturated mempool -------
  const double capacity_per_sec =
      static_cast<double>(params.max_block_txs) /
      ToSeconds(params.block_interval);
  const int users =
      std::max(50, static_cast<int>(capacity_per_sec * 4.0));
  double txs_per_block = 0.0;
  {
    core::Environment env(seed);
    std::vector<crypto::KeyPair> keys;
    std::vector<chain::TxOutput> allocations;
    keys.reserve(users);
    for (int i = 0; i < users; ++i) {
      keys.push_back(crypto::KeyPair::FromSeed(90'000 + i));
      allocations.push_back(chain::TxOutput{100, keys.back().public_key()});
    }
    chain::MiningConfig mining;
    mining.miner_count = 3;
    mining.max_propagation_delay = Milliseconds(2);
    chain::ChainId id = env.AddChain(params, allocations, mining);
    chain::Mempool* mempool = env.mempool(id);
    const chain::LedgerState& genesis_state =
        env.blockchain(id)->genesis()->state;
    for (int i = 0; i < users; ++i) {
      chain::Wallet wallet(keys[i], id);
      auto tx = wallet.BuildTransfer(genesis_state,
                                     keys[(i + 1) % users].public_key(),
                                     /*amount=*/50, /*fee=*/1, /*nonce=*/1);
      if (tx.ok()) (void)mempool->Submit(*tx, 0);
    }
    const size_t submitted = mempool->size();
    env.StartMining();
    // User txs on the canonical branch = included - coinbases - genesis tx.
    const chain::Blockchain* chain = env.blockchain(id);
    auto included_users = [&]() {
      return chain->head()->included_txs->size() - chain->height() - 1;
    };
    (void)env.sim()->RunUntilCondition(
        [&]() { return included_users() >= submitted; }, Minutes(5));
    // Exclude the final (partially filled) block from the capacity average.
    const uint64_t full_blocks = chain->height() > 0 ? chain->height() - 1 : 0;
    if (full_blocks == 0) return 0.0;
    const double txs_in_full_blocks = static_cast<double>(
        included_users() -
        (included_users() - full_blocks * params.max_block_txs > 0
             ? included_users() - full_blocks * params.max_block_txs
             : 0));
    txs_per_block = txs_in_full_blocks / static_cast<double>(full_blocks);
  }

  // ---- factor 2: block rate over a long, cheap, empty run ---------------
  double blocks_per_sec = 0.0;
  {
    core::Environment env(seed ^ 0xb10c);
    chain::MiningConfig mining;
    mining.miner_count = 3;
    mining.max_propagation_delay = Milliseconds(2);
    chain::ChainId id = env.AddChain(params, {}, mining);
    env.StartMining();
    const TimePoint window = Minutes(3);
    env.sim()->RunUntil(window);
    blocks_per_sec = static_cast<double>(env.blockchain(id)->height()) /
                     ToSeconds(window);
  }
  return txs_per_block * blocks_per_sec;
}

}  // namespace
}  // namespace ac3

int main() {
  using namespace ac3;

  benchutil::PrintHeader(
      "Table 1 — throughput (tps) of the top-4 permissionless chains,\n"
      "and Section 6.4's min-composition of AC2T throughput");

  const std::vector<chain::ChainParams> chains = {
      chain::BitcoinParams(), chain::EthereumParams(), chain::LitecoinParams(),
      chain::BitcoinCashParams()};

  std::printf("%14s | %10s | %14s | %16s\n", "blockchain", "paper tps",
              "simulated tps", "sim/scale (tps)");
  benchutil::PrintRule(64);
  uint64_t seed = 8800;
  for (const auto& params : chains) {
    double measured = 0;
    constexpr int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      measured += MeasureChainTps(params, seed++);
    }
    measured /= kSeeds;
    std::printf("%14s | %10.0f | %14.1f | %16.1f\n", params.name.c_str(),
                params.real_tps, measured, measured / chain::kThroughputScale);
  }

  std::printf(
      "\nAC2T throughput = min over involved chains incl. the witness:\n");
  std::printf("%30s | %12s | %10s\n", "asset chains", "witness", "tps");
  benchutil::PrintRule(60);
  struct Row {
    std::vector<chain::ChainParams> assets;
    chain::ChainParams witness;
    const char* label;
  };
  const std::vector<Row> rows = {
      {{chain::EthereumParams(), chain::LitecoinParams()},
       chain::BitcoinParams(),
       "Ethereum + Litecoin"},
      {{chain::EthereumParams(), chain::LitecoinParams()},
       chain::LitecoinParams(),
       "Ethereum + Litecoin"},
      {{chain::BitcoinParams(), chain::EthereumParams()},
       chain::EthereumParams(),
       "Bitcoin + Ethereum"},
      {{chain::LitecoinParams(), chain::BitcoinCashParams()},
       chain::BitcoinCashParams(),
       "Litecoin + BitcoinCash"},
  };
  for (const Row& row : rows) {
    std::printf("%30s | %12s | %10.0f\n", row.label,
                row.witness.name.c_str(),
                analysis::Ac2tThroughput(row.assets, row.witness));
  }

  const auto& best = analysis::BestWitnessAmongInvolved(
      {chain::EthereumParams(), chain::LitecoinParams()});
  std::printf(
      "\npaper example: ETH+LTC witnessed by Bitcoin => %.0f tps; choosing\n"
      "the witness from the involved set (%s) lifts it to %.0f tps.\n",
      analysis::Ac2tThroughput(
          {chain::EthereumParams(), chain::LitecoinParams()},
          chain::BitcoinParams()),
      best.name.c_str(),
      analysis::Ac2tThroughput(
          {chain::EthereumParams(), chain::LitecoinParams()}, best));
  std::printf(
      "shape check: per-chain ordering BTC < ETH < LTC < BCH matches Table 1\n"
      "and composite throughput is always the slowest involved chain.\n");
  return 0;
}
