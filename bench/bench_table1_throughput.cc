// Table 1 / Section 6.4 — throughput of the top-4 permissionless
// cryptocurrencies and the min-composition rule for AC2T throughput.
//
// Ported onto the SweepRunner substrate: the per-chain saturation
// measurements (chains × seeds) run as independent deterministic worlds on
// the worker pool, a small protocol sweep grounds per-protocol AC2T
// latency (in Δs) and swap throughput, and everything is published as
// BENCH_table1_throughput.json; the printed table is a thin view over the
// same structured results.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/throughput_model.h"
#include "src/runner/bench_output.h"
#include "src/runner/sweep_runner.h"

namespace ac3 {
namespace {

struct TpsWindows {
  Duration block_rate_window = Minutes(3);
  int seeds = 3;
};

/// Measured tps = (user txs per saturated block) x (blocks per second).
///
/// The two factors are measured separately so Poisson noise in block
/// arrivals averages over hundreds of blocks: a short saturation phase
/// establishes the per-block capacity actually achieved by the miners, and
/// a long empty run establishes the block rate.
double MeasureChainTps(const chain::ChainParams& params, uint64_t seed,
                       const TpsWindows& windows) {
  // ---- factor 1: achieved txs per block under a saturated mempool -------
  const double capacity_per_sec =
      static_cast<double>(params.max_block_txs) /
      ToSeconds(params.block_interval);
  const int users =
      std::max(50, static_cast<int>(capacity_per_sec * 4.0));
  double txs_per_block = 0.0;
  {
    core::Environment env(seed);
    std::vector<crypto::KeyPair> keys;
    std::vector<chain::TxOutput> allocations;
    keys.reserve(users);
    for (int i = 0; i < users; ++i) {
      keys.push_back(crypto::KeyPair::FromSeed(90'000 + i));
      allocations.push_back(chain::TxOutput{100, keys.back().public_key()});
    }
    chain::MiningConfig mining;
    mining.miner_count = 3;
    mining.max_propagation_delay = Milliseconds(2);
    chain::ChainId id = env.AddChain(params, allocations, mining);
    chain::Mempool* mempool = env.mempool(id);
    const chain::LedgerState& genesis_state =
        env.blockchain(id)->genesis()->state;
    for (int i = 0; i < users; ++i) {
      chain::Wallet wallet(keys[i], id);
      auto tx = wallet.BuildTransfer(genesis_state,
                                     keys[(i + 1) % users].public_key(),
                                     /*amount=*/50, /*fee=*/1, /*nonce=*/1);
      if (tx.ok()) (void)mempool->Submit(*tx, 0);
    }
    const size_t submitted = mempool->size();
    env.StartMining();
    // User txs on the canonical branch = included - coinbases - genesis tx.
    const chain::Blockchain* chain = env.blockchain(id);
    auto included_users = [&]() -> uint64_t {
      return chain->head()->included_tx_count - chain->height() - 1;
    };
    (void)env.sim()->RunUntilCondition(
        [&]() { return included_users() >= submitted; }, Minutes(5));
    // Exclude the final (partially filled) block from the capacity average.
    const uint64_t full_blocks = chain->height() > 0 ? chain->height() - 1 : 0;
    if (full_blocks == 0) return 0.0;
    const uint64_t included = included_users();
    const uint64_t overflow =
        included > full_blocks * params.max_block_txs
            ? included - full_blocks * params.max_block_txs
            : 0;
    txs_per_block = static_cast<double>(included - overflow) /
                    static_cast<double>(full_blocks);
  }

  // ---- factor 2: block rate over a long, cheap, empty run ---------------
  double blocks_per_sec = 0.0;
  {
    core::Environment env(seed ^ 0xb10c);
    chain::MiningConfig mining;
    mining.miner_count = 3;
    mining.max_propagation_delay = Milliseconds(2);
    chain::ChainId id = env.AddChain(params, {}, mining);
    env.StartMining();
    const TimePoint window = windows.block_rate_window;
    env.sim()->RunUntil(window);
    blocks_per_sec = static_cast<double>(env.blockchain(id)->height()) /
                     ToSeconds(window);
  }
  return txs_per_block * blocks_per_sec;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  using namespace ac3;

  bench::Options context = bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;

  TpsWindows windows;
  if (context.smoke) {
    windows.block_rate_window = Minutes(1);
    windows.seeds = 1;
  }
  runner::SweepRunner pool(context.threads);

  benchutil::PrintHeader(
      "Table 1 — throughput (tps) of the top-4 permissionless chains,\n"
      "and Section 6.4's min-composition of AC2T throughput");

  const std::vector<chain::ChainParams> chains = {
      chain::BitcoinParams(), chain::EthereumParams(), chain::LitecoinParams(),
      chain::BitcoinCashParams()};

  // ---- per-chain saturation runs, fanned across the worker pool ---------
  const int tasks = static_cast<int>(chains.size()) * windows.seeds;
  std::vector<double> measured_tps = pool.Map<double>(tasks, [&](int i) {
    const auto chain_index = static_cast<size_t>(i / windows.seeds);
    const uint64_t seed = 8800 + static_cast<uint64_t>(i);
    return MeasureChainTps(chains[chain_index], seed, windows);
  });

  runner::Json chain_rows = runner::Json::Array();
  std::printf("%14s | %10s | %14s | %16s\n", "blockchain", "paper tps",
              "simulated tps", "sim/scale (tps)");
  benchutil::PrintRule(64);
  for (size_t c = 0; c < chains.size(); ++c) {
    double mean = 0;
    for (int s = 0; s < windows.seeds; ++s) {
      mean += measured_tps[c * static_cast<size_t>(windows.seeds) +
                           static_cast<size_t>(s)];
    }
    mean /= windows.seeds;
    std::printf("%14s | %10.0f | %14.1f | %16.1f\n", chains[c].name.c_str(),
                chains[c].real_tps, mean, mean / chain::kThroughputScale);
    runner::Json row = runner::Json::Object();
    row.Set("chain", chains[c].name);
    row.Set("paper_tps", chains[c].real_tps);
    row.Set("simulated_tps", mean);
    row.Set("simulated_tps_scaled", mean / chain::kThroughputScale);
    row.Set("seeds", windows.seeds);
    chain_rows.Push(std::move(row));
  }

  // ---- Section 6.4 composition matrix (analytic) ------------------------
  std::printf(
      "\nAC2T throughput = min over involved chains incl. the witness:\n");
  std::printf("%30s | %12s | %10s\n", "asset chains", "witness", "tps");
  benchutil::PrintRule(60);
  struct Row {
    std::vector<chain::ChainParams> assets;
    chain::ChainParams witness;
    const char* label;
  };
  const std::vector<Row> rows = {
      {{chain::EthereumParams(), chain::LitecoinParams()},
       chain::BitcoinParams(),
       "Ethereum + Litecoin"},
      {{chain::EthereumParams(), chain::LitecoinParams()},
       chain::LitecoinParams(),
       "Ethereum + Litecoin"},
      {{chain::BitcoinParams(), chain::EthereumParams()},
       chain::EthereumParams(),
       "Bitcoin + Ethereum"},
      {{chain::LitecoinParams(), chain::BitcoinCashParams()},
       chain::BitcoinCashParams(),
       "Litecoin + BitcoinCash"},
  };
  runner::Json compositions = runner::Json::Array();
  for (const Row& row : rows) {
    const double tps = analysis::Ac2tThroughput(row.assets, row.witness);
    std::printf("%30s | %12s | %10.0f\n", row.label,
                row.witness.name.c_str(), tps);
    runner::Json entry = runner::Json::Object();
    entry.Set("assets", row.label);
    entry.Set("witness", row.witness.name);
    entry.Set("ac2t_tps", tps);
    compositions.Push(std::move(entry));
  }

  // Copy, not bind: the involved-set argument is a temporary, and the
  // returned reference points into it (dangles past this expression).
  const chain::ChainParams best = analysis::BestWitnessAmongInvolved(
      {chain::EthereumParams(), chain::LitecoinParams()});
  const double paper_example_tps = analysis::Ac2tThroughput(
      {chain::EthereumParams(), chain::LitecoinParams()},
      chain::BitcoinParams());
  const double best_tps = analysis::Ac2tThroughput(
      {chain::EthereumParams(), chain::LitecoinParams()}, best);
  std::printf(
      "\npaper example: ETH+LTC witnessed by Bitcoin => %.0f tps; choosing\n"
      "the witness from the involved set (%s) lifts it to %.0f tps.\n",
      paper_example_tps, best.name.c_str(), best_tps);

  // ---- per-protocol swap sweep: measured latency in Δs and swap rate ----
  runner::SweepGridConfig grid;
  grid.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3wn};
  grid.topologies = {runner::Topology::kRing};
  grid.sizes = {2};
  context.ApplyAxisOverrides(&grid);
  grid.seeds.clear();
  const int sweep_seeds = context.smoke ? 1 : 3;
  for (int s = 0; s < sweep_seeds; ++s) {
    grid.seeds.push_back(7700 + static_cast<uint64_t>(s));
  }
  core::ScenarioOptions delta_world;
  delta_world.seed = 999;
  const double delta_ms =
      runner::MeasureDeltaMs(delta_world, grid.confirm_depth);
  runner::GridWallStats wall_stats;
  const std::vector<runner::RunOutcome> outcomes =
      pool.RunGridTimed(grid, &wall_stats);

  runner::Json protocols = runner::Json::Object();
  std::printf("\n%10s | %10s | %12s | %14s\n", "protocol", "committed",
              "mean (d^)", "swaps/sec");
  benchutil::PrintRule(56);
  for (runner::Protocol protocol : grid.protocols) {
    std::vector<runner::RunOutcome> mine;
    for (const runner::RunOutcome& outcome : outcomes) {
      if (outcome.point.protocol == protocol) mine.push_back(outcome);
    }
    runner::SweepAggregate agg = runner::Aggregate(mine, delta_ms);
    std::printf("%10s | %7d/%-2d | %12.1f | %14.3f\n",
                runner::ProtocolName(protocol), agg.committed, agg.runs,
                agg.mean_latency_deltas, agg.throughput_swaps_per_sec);
    protocols.Set(runner::ProtocolName(protocol),
                  runner::AggregateToJson(agg));
  }

  runner::Json results = runner::Json::Object();
  results.Set("chains", std::move(chain_rows));
  results.Set("compositions", std::move(compositions));
  runner::Json example = runner::Json::Object();
  example.Set("paper_example_tps", paper_example_tps);
  example.Set("best_witness", best.name);
  example.Set("best_witness_tps", best_tps);
  results.Set("paper_example", std::move(example));
  results.Set("protocols", std::move(protocols));

  auto written =
      runner::WriteBenchJson(context, "table1_throughput", std::move(results),
                             runner::GridWallJson(wall_stats, outcomes));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nshape check: per-chain ordering BTC < ETH < LTC < BCH matches Table 1\n"
      "and composite throughput is always the slowest involved chain.\n");
  return 0;
}
