// Figure 9: "Overall transaction latency of 4·Δ when the AC3WN protocol is
// used."
//
// Reproduces the figure's timeline: the four phases (SCw deployment,
// parallel contract deployment, SCw state change, parallel redemption) are
// printed with their completion times. Unlike Figure 8's staircase, every
// contract publishes in the SAME wave and redeems in the SAME wave, so the
// end-to-end time does not grow with the number of participants.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runner/bench_output.h"

namespace ac3 {
namespace {

constexpr TimePoint kDeadline = Minutes(60);

runner::Json RunTimeline(int diameter) {
  runner::Json row = runner::Json::Object();
  row.Set("diameter", diameter);
  core::ScenarioOptions options;
  options.participants = diameter;
  options.asset_chains = std::min(diameter, 4);
  options.seed = 4900 + static_cast<uint64_t>(diameter);
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph ring = benchutil::MakeRingOverWorld(&world, diameter);
  protocols::Ac3wnSwapEngine engine(world.env(), ring,
                                    world.all_participants(),
                                    world.witness_chain(),
                                    benchutil::FastAc3wnConfig());
  auto report = engine.Run(kDeadline);
  if (!report.ok()) {
    std::printf("Diam=%d: engine error: %s\n", diameter,
                report.status().ToString().c_str());
    row.Set("error", report.status().ToString());
    return row;
  }

  std::printf("\nDiam(D) = %d  (%s)\n", diameter, report->Summary().c_str());
  std::printf("%28s | %10s\n", "phase", "t_ms");
  benchutil::PrintRule(44);
  runner::Json phases = runner::Json::Object();
  for (const auto& [name, at] : report->phases) {
    std::printf("%28s | %10lld\n", name.c_str(),
                static_cast<long long>(at - report->start_time));
    phases.Set(name, at - report->start_time);
  }
  TimePoint first_pub = INT64_MAX, last_pub = -1;
  for (const auto& edge : report->edges) {
    first_pub = std::min(first_pub, edge.published_at);
    last_pub = std::max(last_pub, edge.published_at);
  }
  std::printf("%28s | %10lld   (all %zu contracts in one wave: spread %lld ms)\n",
              "last_contract_published",
              static_cast<long long>(last_pub - report->start_time),
              report->edges.size(),
              static_cast<long long>(last_pub - first_pub));
  std::printf("%28s | %10lld\n", "all_redeemed",
              static_cast<long long>(report->end_time - report->start_time));
  row.Set("committed", report->committed);
  row.Set("phases", std::move(phases));
  row.Set("last_contract_published_ms", last_pub - report->start_time);
  row.Set("publish_spread_ms", last_pub - first_pub);
  row.Set("all_redeemed_ms", report->end_time - report->start_time);
  return row;
}

}  // namespace
}  // namespace ac3

int main(int argc, char** argv) {
  ac3::bench::Options context = ac3::bench::Options::Parse(argc, argv);
  if (context.exit_early) return context.exit_code;
  ac3::benchutil::PrintHeader(
      "Figure 9 — AC3WN timeline: four constant phases (SCw deploy,\n"
      "parallel deploy, SCw state change, parallel redeem) = 4 deltas");
  const std::vector<int> diameters =
      context.smoke ? std::vector<int>{2, 3} : std::vector<int>{2, 3, 4, 6};
  ac3::runner::Json rows = ac3::runner::Json::Array();
  for (int diam : diameters) {
    rows.Push(ac3::RunTimeline(diam));
  }
  ac3::runner::Json results = ac3::runner::Json::Object();
  results.Set("rows", std::move(rows));
  auto written = ac3::runner::WriteBenchJson(context, "fig9_ac3wn_timeline",
                                             std::move(results));
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
    return 1;
  }
  return 0;
}
