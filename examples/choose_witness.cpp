// Witness-network advisor: Section 6.3's economics as a tool.
//
// Given the dollar value of an AC2T, rank candidate witness networks by the
// confirmation depth d they need (d > Va*dh/Ch), the wall-clock finality
// that implies, and the rental cost a 51% attacker would have to burn —
// then run the swap on a simulated witness using the recommended d.
//
//   $ ./build/examples/choose_witness [asset_value_usd]

#include <cstdio>
#include <cstdlib>

#include "src/analysis/witness_selection.h"
#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3wn_swap.h"

using namespace ac3;

int main(int argc, char** argv) {
  const double asset_value = argc > 1 ? std::atof(argv[1]) : 1e6;

  const std::vector<chain::ChainParams> candidates = {
      chain::BitcoinParams(), chain::EthereumParams(), chain::LitecoinParams(),
      chain::BitcoinCashParams()};

  std::printf("asset value at stake: $%.0f\n\n", asset_value);
  std::printf("%12s | %9s | %13s | %15s\n", "witness", "depth d",
              "finality (h)", "attack cost ($)");
  std::printf("%s\n", std::string(58, '-').c_str());
  auto ranked = analysis::RankWitnessNetworks(candidates, asset_value);
  for (const auto& choice : ranked) {
    std::printf("%12s | %9u | %13.2f | %15.0f\n", choice.chain_name.c_str(),
                choice.required_depth, choice.finality_hours,
                choice.attack_cost_usd);
  }
  const analysis::WitnessChoice& best = ranked.front();
  std::printf("\nrecommendation: witness on %s with d = %u (%.2f h to "
              "finality; rewriting the decision would cost an attacker "
              "$%.0f > $%.0f at stake)\n\n",
              best.chain_name.c_str(), best.required_depth,
              best.finality_hours, best.attack_cost_usd, asset_value);

  // Demonstrate the depth discipline on a simulated witness: the engine
  // refuses to act on the SCw decision until it is buried under d blocks.
  // (Scaled-down d so the demo completes quickly; the discipline is
  // identical at d = 21.)
  const uint32_t demo_d = 4;
  std::printf("running a demo swap with witness depth d = %u ...\n", demo_d);
  core::ScenarioOptions options;
  options.seed = 88;
  core::ScenarioWorld world(options);
  world.StartMining();
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = demo_d;
  protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                    world.all_participants(),
                                    world.witness_chain(), config);
  auto report = engine.Run(Minutes(10));
  if (!report.ok()) {
    std::printf("engine error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  for (const auto& [phase, at] : report->phases) {
    std::printf("  %-30s t=%lld ms\n", phase.c_str(),
                static_cast<long long>(at - report->start_time));
  }
  std::printf(
      "\nnote how the gap between the authorize submission and the buried\n"
      "decision is ~d witness blocks: that is the price of 51%%-attack\n"
      "safety, and exactly the quantity Section 6.3's inequality sizes.\n");
  return 0;
}
