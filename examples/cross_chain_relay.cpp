// Figure 6, standalone: miners of one blockchain verifying a transaction
// in another blockchain without running a full node or a light node of it
// (Section 4.3's proposal — the mechanism AC3WN's contracts are built on).
//
// A relay smart contract SC is deployed on blockchain2 (the validator)
// storing a stable header of blockchain1 (the validated). When TX1 lands
// on blockchain1 and becomes stable, anyone submits header-chain evidence
// (headers + PoW + Merkle inclusion proof) to SC; the validator's miners
// check the evidence as a pure function and flip SC from S1 to S2.
//
//   $ ./build/examples/cross_chain_relay

#include <cstdio>

#include "src/chain/blockchain.h"
#include "src/chain/wallet.h"
#include "src/contracts/evidence_builder.h"
#include "src/contracts/relay_contract.h"

using namespace ac3;

namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(1);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(2);

struct HandChain {
  chain::Blockchain chain;
  Rng rng;
  TimePoint now = 0;

  HandChain(chain::ChainParams params, uint64_t seed)
      : chain(params,
              {chain::TxOutput{5000, kAlice.public_key()},
               chain::TxOutput{5000, kBob.public_key()}}),
        rng(seed) {}

  bool Mine(const std::vector<chain::Transaction>& txs) {
    now += 100;
    auto block = chain.AssembleBlock(chain.head()->hash, txs,
                                     kAlice.public_key(), now, &rng);
    return block.ok() && chain.SubmitBlock(*block, now).ok();
  }
};

chain::ChainParams Params(const char* name, chain::ChainId id) {
  chain::ChainParams params = chain::TestChainParams();
  params.name = name;
  params.id = id;
  return params;
}

}  // namespace

int main() {
  HandChain validated(Params("blockchain1", 0), 11);  // where TX1 happens
  HandChain validator(Params("blockchain2", 1), 22);  // where SC lives

  chain::Wallet alice1(kAlice, 0);
  chain::Wallet alice2(kAlice, 1);

  // TX1: the transaction of interest on blockchain1 (not yet submitted).
  auto tx1 = alice1.BuildTransfer(validated.chain.StateAtHead(),
                                  kBob.public_key(), 42, 1, 1);
  if (!tx1.ok()) return 1;
  std::printf("TX1 id: %s (a transfer on blockchain1)\n",
              tx1->Id().ShortHex().c_str());

  // Label 1-2 (Figure 6): deploy SC on blockchain2 storing a stable header
  // of blockchain1 and demanding depth-2 stability of TX1's block.
  contracts::RelayInit init;
  init.checkpoint = validated.chain.genesis()->block.header;
  init.validated_difficulty_bits = validated.chain.params().difficulty_bits;
  init.interesting_tx = tx1->Id();
  init.required_depth = 2;
  auto deploy = alice2.BuildDeploy(validator.chain.StateAtHead(),
                                   contracts::kRelayKind, init.Encode(), 0, 4,
                                   1);
  if (!deploy.ok() || !validator.Mine({*deploy})) return 1;
  std::printf("SC deployed on blockchain2, state S1, checkpoint = "
              "blockchain1 genesis\n");

  // Label 3-4: TX1 takes place and its block becomes stable (depth 2).
  if (!validated.Mine({*tx1})) return 1;
  if (!validated.Mine({}) || !validated.Mine({})) return 1;
  std::printf("TX1 mined on blockchain1 and buried under 2 blocks\n");

  // Label 5-6: submit the evidence to SC via a function call.
  auto evidence = contracts::BuildTxEvidence(
      validated.chain, validated.chain.genesis()->hash, tx1->Id());
  if (!evidence.ok()) return 1;
  std::printf("evidence: %zu headers + Merkle proof, %u confirmations shown\n",
              evidence->headers.size(), evidence->ConfirmationsShown());
  auto call = alice2.BuildCall(validator.chain.StateAtHead(), deploy->Id(),
                               contracts::kSubmitEvidenceFunction,
                               evidence->Encode(), 2, 2);
  if (!call.ok() || !validator.Mine({*call})) return 1;

  auto contract = validator.chain.ContractAtHead(deploy->Id());
  if (!contract.ok()) return 1;
  const auto* relay =
      dynamic_cast<const contracts::RelayContract*>(contract->get());
  std::printf("SC state after evidence: %s\n",
              relay->state() == contracts::RelayState::kS2 ? "S2 (TX1 proven)"
                                                           : "S1");

  // A forged proof is rejected: tamper with the leaf and resubmit.
  contracts::HeaderChainEvidence forged = *evidence;
  forged.leaf[0] ^= 0x01;
  auto bad_call = alice2.BuildCall(validator.chain.StateAtHead(), deploy->Id(),
                                   contracts::kSubmitEvidenceFunction,
                                   forged.Encode(), 2, 3);
  if (bad_call.ok() && validator.Mine({*bad_call})) {
    auto location = validator.chain.FindTx(bad_call->Id());
    if (location.has_value()) {
      std::printf("forged evidence call landed with success=%s (rejected by "
                  "the contract's pure verification)\n",
                  location->entry->block.receipts[location->index].success
                      ? "true?!"
                      : "false");
    }
  }
  std::printf(
      "\nblockchain2's miners never read blockchain1: the relay verified\n"
      "linkage + PoW + Merkle inclusion from the submitted bytes alone.\n");
  return relay->state() == contracts::RelayState::kS2 ? 0 : 1;
}
