// Supply-chain settlement: the complex AC2T graphs of Figure 7 that no
// single-leader protocol can execute (Section 5.3).
//
// Scenario: three trading firms settle a circular obligation — each owes
// the one to its left AND the one to its right (Figure 7a's bidirectional
// ring); separately, two unrelated pairs want their deliveries to settle
// atomically as one deal (Figure 7b's disconnected graph).
//
// The example first shows Nolan/Herlihy *refusing* both graphs (no vertex
// removal makes them acyclic), then AC3WN executing both atomically.
//
//   $ ./build/examples/supply_chain

#include <cstdio>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"

using namespace ac3;

namespace {

void RunGraph(const char* title, int participants,
              graph::Ac2tGraph (*make)(const std::vector<crypto::PublicKey>&,
                                       const std::vector<chain::ChainId>&,
                                       chain::Amount, TimePoint)) {
  std::printf("==== %s ====\n", title);
  core::ScenarioOptions options;
  options.participants = participants;
  options.asset_chains = participants;
  options.seed = 3500 + static_cast<uint64_t>(participants);
  core::ScenarioWorld world(options);
  world.StartMining();

  graph::Ac2tGraph graph = make(world.participant_keys(),
                                world.asset_chains(), 150,
                                world.env()->sim()->Now());
  std::printf("graph: %s, Diam=%u, single leader: %s\n",
              graph.Describe().c_str(), graph.Diameter(),
              graph.FindSingleLeader().has_value() ? "yes" : "none");

  // The HTLC baseline must refuse: there is no leader whose removal leaves
  // the graph acyclic, so sequential publishing cannot be made safe.
  protocols::HerlihySwapEngine htlc(world.env(), graph,
                                    world.all_participants(),
                                    protocols::HtlcConfig{});
  Status htlc_start = htlc.Start();
  std::printf("Nolan/Herlihy: %s\n", htlc_start.ok()
                                         ? "accepted (unexpected!)"
                                         : htlc_start.ToString().c_str());

  // AC3WN executes it: the witness network decides, not the publish order.
  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                    world.all_participants(),
                                    world.witness_chain(), config);
  auto report = engine.Run(Minutes(10));
  if (!report.ok()) {
    std::printf("AC3WN error: %s\n\n", report.status().ToString().c_str());
    return;
  }
  std::printf("AC3WN:         %s\n\n", report->Summary().c_str());
}

}  // namespace

int main() {
  RunGraph("Figure 7a — cyclic settlement ring (3 firms, mutual obligations)",
           3, graph::MakeFigure7aCyclic);
  RunGraph("Figure 7b — two unrelated swaps settled as one atomic deal",
           4, graph::MakeFigure7bDisconnected);
  std::printf(
      "AC3WN coordinates any agreed graph: the commit/abort decision lives\n"
      "in SCw on the witness network, so the graph's shape is irrelevant\n"
      "(Section 5.3).\n");
  return 0;
}
