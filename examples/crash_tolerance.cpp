// The paper's motivating example (Section 1), side by side.
//
// Bob crashes at the worst possible moment: both contracts are locked and
// the secret is about to be revealed. Under Nolan's HTLC protocol Bob's
// timelock expires while he is down — Alice redeems his ether AND refunds
// her bitcoin, and crashed Bob ends up worse off (atomicity violated).
// Under AC3WN the same crash schedule is harmless: the witness network's
// decision outlives the crash, and Bob redeems after he recovers.
//
//   $ ./build/examples/crash_tolerance

#include <cstdio>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"

using namespace ac3;

namespace {

/// Crashes Bob the moment both asset contracts are on-chain, for `down`.
void CrashBobAtDecisionPoint(core::ScenarioWorld* world, Duration down) {
  Status published = world->env()->sim()->RunUntilCondition(
      [world]() {
        return !world->env()->blockchain(0)->StateAtHead().contracts.empty() &&
               !world->env()->blockchain(1)->StateAtHead().contracts.empty();
      },
      Minutes(5));
  if (!published.ok()) return;
  std::printf("  [t=%lld ms] both contracts locked; Bob crashes for %lld ms\n",
              static_cast<long long>(world->env()->sim()->Now()),
              static_cast<long long>(down));
  world->env()->failures()->CrashFor(world->participant(1)->node(),
                                     world->env()->sim()->Now(), down);
}

void Report(const char* proto, const protocols::SwapReport& report,
            protocols::Participant* bob) {
  std::printf("  %s: %s\n", proto, report.Summary().c_str());
  std::printf("  Bob's balances after: chain0=%llu chain1=%llu\n",
              (unsigned long long)bob->BalanceOn(0),
              (unsigned long long)bob->BalanceOn(1));
  std::printf("  all-or-nothing: %s\n\n",
              report.AtomicityViolated() ? "VIOLATED — Bob lost his asset"
                                         : "preserved");
}

}  // namespace

int main() {
  const chain::Amount x = 300, y = 200;

  std::printf("== Nolan HTLC under Bob's crash ==\n");
  {
    core::ScenarioOptions options;
    options.witness_chain = false;
    options.seed = 71;
    core::ScenarioWorld world(options);
    world.StartMining();
    graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
        world.participant(0)->pk(), world.participant(1)->pk(),
        world.asset_chain(0), x, world.asset_chain(1), y, 0);
    protocols::HerlihySwapEngine engine = protocols::MakeNolanTwoPartySwap(
        world.env(), graph, world.participant(0), world.participant(1),
        protocols::HtlcConfig{});
    if (!engine.Start().ok()) return 1;
    CrashBobAtDecisionPoint(&world, Seconds(60));
    auto report = engine.Run(Minutes(10));
    if (report.ok()) Report("HTLC ", *report, world.participant(1));
  }

  std::printf("== AC3WN under the same crash schedule ==\n");
  {
    core::ScenarioOptions options;
    options.seed = 71;
    core::ScenarioWorld world(options);
    world.StartMining();
    graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
        world.participant(0)->pk(), world.participant(1)->pk(),
        world.asset_chain(0), x, world.asset_chain(1), y, 0);
    protocols::Ac3wnConfig config;
    config.confirm_depth = 1;
    config.witness_depth_d = 2;
    protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                      world.all_participants(),
                                      world.witness_chain(), config);
    if (!engine.Start().ok()) return 1;
    CrashBobAtDecisionPoint(&world, Seconds(60));
    auto report = engine.Run(Minutes(10));
    if (report.ok()) Report("AC3WN", *report, world.participant(1));
  }

  std::printf(
      "The HTLC run reproduces the paper's criticism: a crash across the\n"
      "timelock window splits the swap (one redeem + one refund). AC3WN's\n"
      "commitment-scheme secret is the witness chain itself — no timelock,\n"
      "so the crashed participant settles after recovery.\n");
  return 0;
}
