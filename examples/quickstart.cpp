// Quickstart: the paper's Figure 4 scenario end to end.
//
// Alice owns X "bitcoins" and wants Y "ethers"; Bob owns ether and wants
// bitcoin. They run the AC3WN protocol: agree on the transaction graph D,
// register ms(D) in a witness smart contract SCw, deploy their asset
// contracts in parallel, flip SCw to RDauth with cross-chain evidence, and
// redeem — all inside the bundled deterministic multi-chain simulator.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3wn_swap.h"

using namespace ac3;

int main() {
  // 1. A world with two asset chains ("Bitcoin"/"Ethereum" stand-ins), a
  //    witness chain, and two funded participants.
  core::ScenarioOptions options;
  options.asset_chains = 2;
  options.participants = 2;
  options.funding = 5000;
  options.seed = 2024;
  core::ScenarioWorld world(options);
  protocols::Participant* alice = world.participant(0);
  protocols::Participant* bob = world.participant(1);
  world.StartMining();

  const chain::Amount x = 300;  // Alice's bitcoins.
  const chain::Amount y = 200;  // Bob's ethers.
  std::printf("before: Alice{chain0:%llu, chain1:%llu}  "
              "Bob{chain0:%llu, chain1:%llu}\n",
              (unsigned long long)alice->BalanceOn(0),
              (unsigned long long)alice->BalanceOn(1),
              (unsigned long long)bob->BalanceOn(0),
              (unsigned long long)bob->BalanceOn(1));

  // 2. The AC2T graph D (Figure 4): Alice pays X on chain 0, Bob pays Y
  //    back on chain 1.
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      alice->pk(), bob->pk(), world.asset_chain(0), x, world.asset_chain(1),
      y, world.env()->sim()->Now());
  std::printf("graph D: %zu participants, %zu edges, Diam=%u (%s)\n",
              graph.participant_count(), graph.edge_count(), graph.Diameter(),
              graph.Describe().c_str());

  // 3. Run the AC3WN protocol with the witness chain coordinating.
  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;    // public recognition depth on asset chains
  config.witness_depth_d = 2;  // d: burial required of the SCw decision
  protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                    {alice, bob}, world.witness_chain(),
                                    config);
  auto report = engine.Run(/*deadline=*/Minutes(10));
  if (!report.ok()) {
    std::printf("engine error: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the outcome.
  std::printf("\n%s\n\n", report->Summary().c_str());
  for (const auto& [phase, at] : report->phases) {
    std::printf("  %-30s t=%lld ms\n", phase.c_str(),
                static_cast<long long>(at - report->start_time));
  }
  std::printf("\nafter:  Alice{chain0:%llu, chain1:%llu}  "
              "Bob{chain0:%llu, chain1:%llu}\n",
              (unsigned long long)alice->BalanceOn(0),
              (unsigned long long)alice->BalanceOn(1),
              (unsigned long long)bob->BalanceOn(0),
              (unsigned long long)bob->BalanceOn(1));
  std::printf("atomicity violated: %s\n",
              report->AtomicityViolated() ? "YES (bug!)" : "no");
  return report->committed && !report->AtomicityViolated() ? 0 : 1;
}
