// AC3WN stress tests: fork-heavy witness networks, random transaction
// graphs, larger depth disciplines, and heavy network jitter — the
// protocol's terminal verdict must stay atomic in every run.

#include <gtest/gtest.h>

#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3wn_swap.h"
#include "tests/test_util.h"

namespace ac3::protocols {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

constexpr TimePoint kDeadline = Minutes(30);

Ac3wnConfig StressConfig(uint32_t d) {
  Ac3wnConfig config;
  config.confirm_depth = 2;  // Asset chains fork too: wait deeper.
  config.witness_depth_d = d;
  config.resubmit_interval = Seconds(1);
  config.publish_patience = Seconds(30);
  return config;
}

// Fork-heavy regime: gossip delays comparable to the block interval on
// every chain, so natural forks occur during the protocol itself.
class ForkHeavySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForkHeavySweepTest, AtomicDespiteNaturalForks) {
  SwapWorldOptions options;
  options.seed = GetParam();
  options.miner_count = 4;
  options.max_propagation_delay = Milliseconds(90);  // ~ block interval.
  SwapWorld world(options);
  world.StartMining();
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), StressConfig(/*d=*/3));
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->AtomicityViolated()) << report->Summary();
  EXPECT_TRUE(report->finished) << report->Summary();
  EXPECT_TRUE(report->committed) << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkHeavySweepTest,
                         ::testing::Range<uint64_t>(900, 912));

// Random connected graphs over up to 6 participants: whatever the shape,
// AC3WN commits and stays atomic.
class RandomGraphSwapTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphSwapTest, CommitsAnyConnectedGraph) {
  Rng shape_rng(GetParam());
  const int n = 3 + static_cast<int>(shape_rng.NextBelow(4));
  SwapWorldOptions options;
  options.participants = n;
  options.asset_chains = std::min(n, 4);
  options.seed = GetParam() ^ 0xfeed;
  SwapWorld world(options);
  world.StartMining();

  graph::Ac2tGraph graph = graph::MakeRandomGraph(
      world.participant_keys(), world.asset_chains(), 100,
      /*extra_edge_prob=*/0.35, &shape_rng,
      static_cast<TimePoint>(GetParam()));
  ASSERT_TRUE(graph.Validate().ok());

  Ac3wnConfig config = StressConfig(/*d=*/2);
  config.confirm_depth = 1;
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished) << graph.Describe();
  EXPECT_TRUE(report->committed) << graph.Describe();
  EXPECT_FALSE(report->AtomicityViolated()) << graph.Describe();
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed),
            static_cast<int>(graph.edge_count()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSwapTest,
                         ::testing::Range<uint64_t>(1200, 1212));

// Deeper depth disciplines just slow the decision down — never break it.
class DepthSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DepthSweepTest, AnyDepthDisciplineCommits) {
  SwapWorldOptions options;
  options.seed = 1300 + GetParam();
  SwapWorld world(options);
  world.StartMining();
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  Ac3wnConfig config = StressConfig(GetParam());
  config.confirm_depth = 1;
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_FALSE(report->AtomicityViolated());
  // The decision cannot precede d witness blocks past the authorize call.
  EXPECT_GT(report->decision_time, report->start_time);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweepTest,
                         ::testing::Values(0u, 1u, 2u, 4u, 6u, 8u));

// A sender with several outgoing edges on the SAME chain must fund them
// all without self-double-spending (wallet reservation discipline).
TEST(Ac3wnStressTest, MultipleOutgoingEdgesOnOneChain) {
  SwapWorldOptions options;
  options.participants = 3;
  options.asset_chains = 2;
  options.seed = 1400;
  SwapWorld world(options);
  world.StartMining();
  // P0 pays P1 and P2 on chain 0; they pay P0 back on chain 1.
  std::vector<graph::Ac2tEdge> edges = {
      {0, 1, world.asset_chain(0), 200},
      {0, 2, world.asset_chain(0), 300},
      {1, 0, world.asset_chain(1), 100},
      {2, 0, world.asset_chain(1), 150},
  };
  graph::Ac2tGraph graph(world.participant_keys(), edges, 0);
  ASSERT_TRUE(graph.Validate().ok());
  Ac3wnConfig config = StressConfig(2);
  config.confirm_depth = 1;
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed) << report->Summary();
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 4);
}

// A sender whose funds cannot cover the edge amount: the swap must abort
// cleanly (their contract never publishes; everyone else refunds).
TEST(Ac3wnStressTest, UnderfundedSenderAborts) {
  SwapWorldOptions options;
  options.funding = 250;  // Less than the 300 Alice owes.
  options.seed = 1500;
  SwapWorld world(options);
  world.StartMining();
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  Ac3wnConfig config = StressConfig(2);
  config.confirm_depth = 1;
  config.publish_patience = Seconds(8);
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aborted) << report->Summary();
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 0);
  EXPECT_FALSE(report->AtomicityViolated());
}

// Two engines over the SAME participants and graphs distinguished only by
// the timestamp t: both run to completion independently ("the timestamp t
// is important to distinguish between identical AC2Ts").
TEST(Ac3wnStressTest, IdenticalSwapsDistinguishedByTimestamp) {
  SwapWorldOptions options;
  options.funding = 10000;
  options.seed = 1600;
  SwapWorld world(options);
  world.StartMining();
  graph::Ac2tGraph g1 = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, /*timestamp=*/1);
  graph::Ac2tGraph g2 = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, /*timestamp=*/2);
  Ac3wnConfig config = StressConfig(2);
  config.confirm_depth = 1;
  Ac3wnSwapEngine e1(world.env(), g1, world.all_participants(),
                     world.witness_chain(), config);
  Ac3wnSwapEngine e2(world.env(), g2, world.all_participants(),
                     world.witness_chain(), config);
  ASSERT_TRUE(e1.Start().ok());
  ASSERT_TRUE(e2.Start().ok());
  Status done = world.env()->sim()->RunUntilCondition(
      [&]() { return e1.Done() && e2.Done(); }, kDeadline);
  ASSERT_TRUE(done.ok());
  auto r1 = e1.Run(kDeadline);
  auto r2 = e2.Run(kDeadline);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(e1.scw_id(), e2.scw_id()) << "distinct SCw per (D, t)";
  EXPECT_TRUE(r1->committed);
  EXPECT_TRUE(r2->committed);
  EXPECT_FALSE(r1->AtomicityViolated());
  EXPECT_FALSE(r2->AtomicityViolated());
}

}  // namespace
}  // namespace ac3::protocols
