// The paper's central claim, property-tested: AC3WN (and the AC3TW
// strawman) preserve the all-or-nothing property under EVERY injected
// failure schedule, while the HTLC baseline demonstrably does not
// (htlc_swap_test.cc shows the violation).
//
// A parameterized sweep drives protocol x failure-scenario x seed through
// the full simulated stack and asserts the atomicity invariant on the
// resulting report; consistency side-conditions (committed => all redeemed,
// aborted => nothing redeemed) ride along.

#include <gtest/gtest.h>

#include <ostream>
#include <string>

#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3tw_swap.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/runner/sweep_runner.h"
#include "tests/test_util.h"

namespace ac3::protocols {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

constexpr TimePoint kDeadline = Minutes(20);

enum class Protocol { kAc3wn, kAc3tw };
enum class Failure {
  kNone,
  kRecipientCrashEarly,   ///< Down before anything is published.
  kRecipientCrashMid,     ///< Down across the decision point.
  kSenderCrashMid,
  kBothCrashStaggered,
  kDeclinePublish,        ///< Malicious "no" vote.
  kRequestAbort,          ///< A participant changes her mind.
  kWitnessDos,            ///< Crash Trent / (no-op for AC3WN's chain).
};

struct Scenario {
  Protocol protocol;
  Failure failure;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const Scenario& s) {
    os << (s.protocol == Protocol::kAc3wn ? "AC3WN" : "AC3TW") << "/";
    switch (s.failure) {
      case Failure::kNone: os << "none"; break;
      case Failure::kRecipientCrashEarly: os << "recipient-early"; break;
      case Failure::kRecipientCrashMid: os << "recipient-mid"; break;
      case Failure::kSenderCrashMid: os << "sender-mid"; break;
      case Failure::kBothCrashStaggered: os << "both-staggered"; break;
      case Failure::kDeclinePublish: os << "decline"; break;
      case Failure::kRequestAbort: os << "abort"; break;
      case Failure::kWitnessDos: os << "witness-dos"; break;
    }
    return os << "/seed" << s.seed;
  }
};

class AtomicityPropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(AtomicityPropertyTest, AllOrNothingHolds) {
  const Scenario& scenario = GetParam();

  SwapWorldOptions options;
  options.seed = scenario.seed;
  options.witness_chain = scenario.protocol == Protocol::kAc3wn;
  SwapWorld world(options);
  TrustedWitness trent("Trent", 0x7ae47 ^ scenario.seed, world.env());
  world.StartMining();

  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200,
      world.env()->sim()->Now());

  bool request_abort = false;
  switch (scenario.failure) {
    case Failure::kNone:
      break;
    case Failure::kRecipientCrashEarly:
      world.env()->failures()->CrashFor(world.participant(1)->node(), 0,
                                        Seconds(25));
      break;
    case Failure::kRecipientCrashMid:
      world.env()->failures()->CrashFor(world.participant(1)->node(),
                                        Seconds(2), Seconds(25));
      break;
    case Failure::kSenderCrashMid:
      world.env()->failures()->CrashFor(world.participant(0)->node(),
                                        Seconds(2), Seconds(25));
      break;
    case Failure::kBothCrashStaggered:
      world.env()->failures()->CrashFor(world.participant(0)->node(),
                                        Seconds(1), Seconds(10));
      world.env()->failures()->CrashFor(world.participant(1)->node(),
                                        Seconds(6), Seconds(20));
      break;
    case Failure::kDeclinePublish:
      world.participant(1)->behavior().decline_publish = true;
      break;
    case Failure::kRequestAbort:
      request_abort = true;
      break;
    case Failure::kWitnessDos:
      world.env()->failures()->CrashFor(trent.node(), Seconds(1), Seconds(20));
      break;
  }

  SwapReport report;
  if (scenario.protocol == Protocol::kAc3wn) {
    Ac3wnConfig config;
    config.confirm_depth = 1;
    config.witness_depth_d = 2;
    config.resubmit_interval = Milliseconds(800);
    config.publish_patience = Seconds(12);
    config.request_abort = request_abort;
    Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                           world.witness_chain(), config);
    auto result = engine.Run(kDeadline);
    ASSERT_TRUE(result.ok()) << result.status();
    report = *result;
  } else {
    Ac3twConfig config;
    config.confirm_depth = 1;
    config.resubmit_interval = Milliseconds(800);
    config.publish_patience = Seconds(12);
    config.request_abort = request_abort;
    Ac3twSwapEngine engine(world.env(), graph, world.all_participants(),
                           &trent, config);
    auto result = engine.Run(kDeadline);
    ASSERT_TRUE(result.ok()) << result.status();
    report = *result;
  }

  // THE invariant (Lemmas 5.1/5.3): never some-redeemed-some-refunded.
  EXPECT_FALSE(report.AtomicityViolated()) << scenario << "\n"
                                           << report.Summary();

  // Consistency side conditions.
  if (report.committed) {
    EXPECT_TRUE(report.AllRedeemed()) << scenario;
    EXPECT_FALSE(report.aborted) << scenario;
  }
  if (report.aborted) {
    EXPECT_EQ(report.CountOutcome(EdgeOutcome::kRedeemed), 0) << scenario;
  }
  // Every failure schedule above eventually heals, so the protocol must
  // reach a terminal verdict well before the deadline (commitment).
  EXPECT_TRUE(report.finished) << scenario << "\n" << report.Summary();
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> out;
  for (Protocol protocol : {Protocol::kAc3wn, Protocol::kAc3tw}) {
    for (Failure failure :
         {Failure::kNone, Failure::kRecipientCrashEarly,
          Failure::kRecipientCrashMid, Failure::kSenderCrashMid,
          Failure::kBothCrashStaggered, Failure::kDeclinePublish,
          Failure::kRequestAbort, Failure::kWitnessDos}) {
      for (uint64_t seed : {11ull, 23ull, 37ull}) {
        out.push_back(Scenario{protocol, failure, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtomicityPropertyTest,
                         ::testing::ValuesIn(AllScenarios()));

// Crash-onset sweep: slide the recipient's crash window across the whole
// protocol timeline in 500 ms steps — atomicity must hold at every onset.
class CrashOnsetSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashOnsetSweepTest, Ac3wnAtomicUnderAnyCrashOnset) {
  const TimePoint onset = GetParam() * Milliseconds(500);
  SwapWorldOptions options;
  options.seed = 97;
  SwapWorld world(options);
  world.StartMining();
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  world.env()->failures()->CrashFor(world.participant(1)->node(), onset,
                                    Seconds(30));
  Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(12);
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->AtomicityViolated())
      << "crash onset " << onset << "ms\n"
      << report->Summary();
  EXPECT_TRUE(report->finished);
}

INSTANTIATE_TEST_SUITE_P(Onsets, CrashOnsetSweepTest,
                         ::testing::Range(0, 16));

// ---- randomized fault injection over the full protocol matrix -------------
//
// Seeded worlds × all four engines × every sweep failure mode, through the
// runner's own world builder. Two layers of assertion:
//
//  * Universal safety floor (every engine, even the blocking baselines):
//    no participant ends with an outgoing leg redeemed away and an
//    incoming leg lost while the protocol never reached a verdict. Losing
//    an asset without a decision would be theft-by-crash; blocking
//    protocols lock funds (recoverable in principle) but never do this.
//    One documented exception: Herlihy under message loss, whose
//    timelock-expiry commitment genuinely races dropped redeem gossip
//    (see the in-test comment).
//  * Separation pins: the quorum engine finishes atomically with nothing
//    stranded under EVERY mode, while the blocking baselines demonstrably
//    stall or strand under a phase-precise coordinator crash — the exact
//    gap bench_commit_study measures.

struct FaultCell {
  runner::Protocol protocol;
  runner::FailureMode failure;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const FaultCell& c) {
    return os << runner::ProtocolName(c.protocol) << "/"
              << runner::FailureModeName(c.failure) << "/seed" << c.seed;
  }
};

/// True when some participant's outgoing edge was redeemed (asset gone)
/// while one of its incoming edges was refunded or stranded, without any
/// verdict ever being reached.
bool SomeoneLostBothLegsWithoutVerdict(const SwapReport& report) {
  if (report.committed || report.aborted) return false;
  for (const EdgeReport& out : report.edges) {
    if (out.outcome != EdgeOutcome::kRedeemed) continue;
    for (const EdgeReport& in : report.edges) {
      if (in.edge.to != out.edge.from) continue;
      if (in.outcome == EdgeOutcome::kRefunded ||
          in.outcome == EdgeOutcome::kPublished) {
        return true;
      }
    }
  }
  return false;
}

class FaultInjectionPropertyTest : public ::testing::TestWithParam<FaultCell> {
};

TEST_P(FaultInjectionPropertyTest, NoVerdictFreeLossAndQuorumStaysAtomic) {
  const FaultCell cell = GetParam();
  runner::SweepGridConfig grid;
  grid.deadline = Seconds(90);  // Blocked cells run to this deadline.
  runner::SweepPoint point;
  point.protocol = cell.protocol;
  point.topology = runner::Topology::kRing;
  point.size = 4;
  point.failure = cell.failure;
  point.seed = cell.seed;
  auto report = runner::RunSwapReport(grid, point);
  ASSERT_TRUE(report.ok()) << cell << ": " << report.status();

  const bool coordinator_crash =
      cell.failure == runner::FailureMode::kCrashCoordinatorAtPrepare ||
      cell.failure == runner::FailureMode::kCrashCoordinatorAtCommit;
  const bool message_fault =
      cell.failure == runner::FailureMode::kDropMessages ||
      cell.failure == runner::FailureMode::kDuplicateMessages;
  const bool htlc_timelock_race =
      message_fault && cell.protocol == runner::Protocol::kHerlihy;
  if (!htlc_timelock_race) {
    EXPECT_FALSE(SomeoneLostBothLegsWithoutVerdict(*report))
        << cell << "\n" << report->Summary();
  }
  if (message_fault) {
    // Message-level faults are recoverable for every DECISION-BASED
    // engine: resend pacing re-offers lost exchanges and lost tx gossip,
    // while seq fencing and mempool tx-id dedup neutralize duplicates —
    // an atomic verdict with nothing locked. Herlihy is the documented
    // exception (the paper's §4 critique, reproduced rather than
    // asserted away): its commitment is timelock expiry, so a dropped
    // redeem gossip retried past a leg's timelock genuinely splits the
    // swap — the last leg's redeem reveals the secret while an upstream
    // leg refunds (seeds 301/303 hit exactly this race).
    if (cell.protocol != runner::Protocol::kHerlihy) {
      EXPECT_TRUE(report->finished) << cell << "\n" << report->Summary();
      EXPECT_FALSE(report->AtomicityViolated()) << cell;
      EXPECT_EQ(report->CountOutcome(EdgeOutcome::kPublished), 0) << cell;
    }
  }
  if (cell.protocol == runner::Protocol::kQuorum) {
    // Nonblocking: an atomic verdict with nothing stranded, whatever the
    // injected failure.
    EXPECT_TRUE(report->finished) << cell << "\n" << report->Summary();
    EXPECT_FALSE(report->AtomicityViolated()) << cell;
    EXPECT_EQ(report->CountOutcome(EdgeOutcome::kPublished), 0) << cell;
  } else if (coordinator_crash &&
             (cell.protocol == runner::Protocol::kHerlihy ||
              cell.protocol == runner::Protocol::kAc3tw)) {
    // Expected separation: the blocking baselines either never reach a
    // verdict or strand locked funds when their coordinator dies in the
    // commit window.
    EXPECT_TRUE(!report->finished ||
                report->CountOutcome(EdgeOutcome::kPublished) > 0)
        << cell << " unexpectedly survived a coordinator crash\n"
        << report->Summary();
  }
}

std::vector<FaultCell> AllFaultCells() {
  std::vector<FaultCell> out;
  for (runner::Protocol protocol :
       {runner::Protocol::kHerlihy, runner::Protocol::kAc3tw,
        runner::Protocol::kAc3wn, runner::Protocol::kQuorum}) {
    for (runner::FailureMode failure :
         {runner::FailureMode::kNone, runner::FailureMode::kCrashParticipant,
          runner::FailureMode::kPartitionParticipant,
          runner::FailureMode::kCrashCoordinatorAtPrepare,
          runner::FailureMode::kCrashCoordinatorAtCommit,
          runner::FailureMode::kDropMessages,
          runner::FailureMode::kDuplicateMessages}) {
      for (uint64_t seed : {301ull, 302ull, 303ull}) {
        out.push_back(FaultCell{protocol, failure, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, FaultInjectionPropertyTest,
                         ::testing::ValuesIn(AllFaultCells()));

}  // namespace
}  // namespace ac3::protocols
