// Light-client tests: Section 4.3's second validation technique — a
// header-only node of a foreign chain that verifies PoW/linkage and
// answers inclusion queries from served Merkle proofs.

#include "src/chain/light_client.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ac3::chain {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(31);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(32);

class LightClientTest : public ::testing::Test {
 protected:
  LightClientTest()
      : full_(TestChainParams(),
              testutil::Fund({kAlice.public_key(), kBob.public_key()}, 2000),
              /*seed=*/401),
        wallet_(kAlice, full_.chain().id()),
        client_(full_.chain().genesis()->block.header,
                full_.chain().params().difficulty_bits) {}

  /// Includes one transfer and buries it, returning (tx, its block hash).
  std::pair<Transaction, crypto::Hash256> IncludeTransfer(uint32_t depth) {
    auto tx = wallet_.BuildTransfer(full_.chain().StateAtHead(),
                                    kBob.public_key(), 10, 1, nonce_++);
    EXPECT_TRUE(tx.ok());
    EXPECT_TRUE(full_.MineTxToDepth(*tx, depth).ok());
    auto location = full_.chain().FindTx(tx->Id());
    EXPECT_TRUE(location.has_value());
    return {*tx, location->entry->hash};
  }

  /// A full node serving a Merkle proof for a tx in `block_hash`.
  crypto::MerkleProof ServeProof(const crypto::Hash256& block_hash,
                                 const crypto::Hash256& tx_id) {
    const BlockEntry* entry = full_.chain().Get(block_hash);
    EXPECT_NE(entry, nullptr);
    crypto::MerkleTree tree(entry->block.TxLeaves());
    uint32_t index = entry->tx_index.at(tx_id);
    auto proof = tree.Prove(index);
    EXPECT_TRUE(proof.ok());
    return *proof;
  }

  testutil::TestChain full_;
  Wallet wallet_;
  LightClient client_;
  uint64_t nonce_ = 1;
};

TEST_F(LightClientTest, SyncTracksCanonicalHead) {
  ASSERT_TRUE(full_.MineEmpty(5).ok());
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  EXPECT_EQ(client_.height(), full_.chain().height());
  EXPECT_EQ(client_.head().Hash(), full_.chain().head()->hash);
  EXPECT_EQ(client_.header_count(), 6u);  // genesis + 5
}

TEST_F(LightClientTest, RejectsOrphanHeader) {
  ASSERT_TRUE(full_.MineEmpty(3).ok());
  auto headers = full_.chain().HeadersAfter(full_.chain().genesis()->hash);
  ASSERT_TRUE(headers.ok());
  // Skip the first header: the second has no known parent.
  Status status = client_.AcceptHeader((*headers)[1]);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(LightClientTest, RejectsTamperedPow) {
  ASSERT_TRUE(full_.MineEmpty(1).ok());
  auto headers = full_.chain().HeadersAfter(full_.chain().genesis()->hash);
  ASSERT_TRUE(headers.ok());
  BlockHeader tampered = (*headers)[0];
  tampered.nonce ^= 1;
  Status status = client_.AcceptHeader(tampered);
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(LightClientTest, RejectsWrongDeclaredDifficulty) {
  ASSERT_TRUE(full_.MineEmpty(1).ok());
  auto headers = full_.chain().HeadersAfter(full_.chain().genesis()->hash);
  BlockHeader weak = (*headers)[0];
  weak.difficulty_bits = 0;  // Declares trivial PoW.
  Status status = client_.AcceptHeader(weak);
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(LightClientTest, AcceptHeaderIsIdempotent) {
  ASSERT_TRUE(full_.MineEmpty(2).ok());
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  const size_t count = client_.header_count();
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  EXPECT_EQ(client_.header_count(), count);
}

TEST_F(LightClientTest, VerifiesServedInclusionProof) {
  auto [tx, block_hash] = IncludeTransfer(/*depth=*/3);
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  crypto::MerkleProof proof = ServeProof(block_hash, tx.Id());
  EXPECT_TRUE(client_.VerifyInclusion(block_hash, tx.Id(), proof,
                                      /*min_confirmations=*/3)
                  .ok());
}

TEST_F(LightClientTest, InclusionDemandsBurialDepth) {
  auto [tx, block_hash] = IncludeTransfer(/*depth=*/1);
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  crypto::MerkleProof proof = ServeProof(block_hash, tx.Id());
  Status shallow = client_.VerifyInclusion(block_hash, tx.Id(), proof,
                                           /*min_confirmations=*/4);
  EXPECT_EQ(shallow.code(), StatusCode::kVerificationFailed);
}

TEST_F(LightClientTest, InclusionRejectsForeignLeaf) {
  auto [tx, block_hash] = IncludeTransfer(/*depth=*/2);
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  crypto::MerkleProof proof = ServeProof(block_hash, tx.Id());
  const crypto::Hash256 other = crypto::Hash256::Of(Bytes{0xDD});
  EXPECT_FALSE(client_.VerifyInclusion(block_hash, other, proof, 0).ok());
}

TEST_F(LightClientTest, ReceiptInclusionUsesReceiptRoot) {
  auto [tx, block_hash] = IncludeTransfer(/*depth=*/2);
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  const BlockEntry* entry = full_.chain().Get(block_hash);
  const uint32_t index = entry->tx_index.at(tx.Id());
  crypto::MerkleTree tree(entry->block.ReceiptLeaves());
  auto proof = tree.Prove(index);
  ASSERT_TRUE(proof.ok());
  const crypto::Hash256 leaf = entry->block.receipts[index].LeafHash();
  EXPECT_TRUE(
      client_.VerifyReceiptInclusion(block_hash, leaf, *proof, 1).ok());
  // The same proof against the tx root must fail.
  EXPECT_FALSE(client_.VerifyInclusion(block_hash, leaf, *proof, 1).ok());
}

TEST_F(LightClientTest, FollowsHeaviestForkLikeFullNode) {
  // Two branches from the same parent; the client must converge on the
  // heavier one exactly as the full node does.
  ASSERT_TRUE(full_.MineEmpty(1).ok());
  const crypto::Hash256 fork_parent = full_.chain().head()->hash;
  ASSERT_TRUE(full_.MineBlockOn(fork_parent, {}).ok());
  const crypto::Hash256 branch_a = full_.chain().head()->hash;
  ASSERT_TRUE(full_.MineBlockOn(fork_parent, {}).ok());
  // Feed EVERY known header (both branches) in true arrival order — ties
  // between equal-work tips break toward the first seen, as on the node.
  std::vector<std::pair<uint64_t, BlockHeader>> ordered;
  full_.chain().ForEachEntry(
      [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
        if (hash != full_.chain().genesis()->hash) {
          ordered.emplace_back(entry.arrival_seq, entry.block.header);
        }
      });
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<BlockHeader> all;
  for (auto& [seq, header] : ordered) all.push_back(header);
  ASSERT_TRUE(client_.AcceptHeaders(all).ok());
  EXPECT_TRUE(client_.IsCanonical(branch_a));

  // Extend the other branch: both full node and light client reorg.
  crypto::Hash256 branch_b;
  full_.chain().ForEachEntry(
      [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
        if (entry.block.header.prev_hash == fork_parent && hash != branch_a) {
          branch_b = hash;
        }
      });
  ASSERT_FALSE(branch_b.IsZero());
  ASSERT_TRUE(full_.MineBlockOn(branch_b, {}).ok());
  ASSERT_TRUE(client_.AcceptHeader(full_.chain().head()->block.header).ok());
  EXPECT_FALSE(client_.IsCanonical(branch_a));
  EXPECT_EQ(client_.head().Hash(), full_.chain().head()->hash);
  EXPECT_FALSE(full_.chain().IsCanonical(branch_a));
}

TEST_F(LightClientTest, StoresOnlyHeaders) {
  // The storage argument of Section 4.3: the light client keeps one header
  // per block while the full node keeps bodies + per-branch state.
  ASSERT_TRUE(full_.MineEmpty(10).ok());
  ASSERT_TRUE(client_.SyncFrom(full_.chain()).ok());
  EXPECT_EQ(client_.header_count(), full_.chain().block_count());
  // (The size comparison is quantified by bench_ablation_validation.)
}

}  // namespace
}  // namespace ac3::chain
