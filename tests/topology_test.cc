// Topology-generator coverage: structural invariants (vertex/edge counts,
// diameter, feasibility classification), determinism under seed, and the
// Section 5.3 functional-gap end-to-end check — HerlihySwapEngine::Start()
// rejects every infeasible family while AC3WN runs them to a commit.

#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"
#include "src/runner/sweep_runner.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

std::vector<crypto::PublicKey> Keys(int n) {
  std::vector<crypto::PublicKey> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(
        crypto::KeyPair::FromSeed(4000 + static_cast<uint64_t>(i))
            .public_key());
  }
  return keys;
}

std::vector<chain::ChainId> Chains(int n) {
  std::vector<chain::ChainId> chains;
  for (int i = 0; i < n; ++i) chains.push_back(static_cast<chain::ChainId>(i));
  return chains;
}

// ---- structural invariants -------------------------------------------------

TEST(TopologyTest, PathShape) {
  for (int n : {2, 3, 6}) {
    graph::Ac2tGraph path = graph::MakePath(Keys(n), Chains(2), 100, 0);
    ASSERT_TRUE(path.Validate().ok());
    EXPECT_EQ(path.participant_count(), static_cast<size_t>(n));
    EXPECT_EQ(path.edge_count(), static_cast<size_t>(n - 1));
    EXPECT_EQ(path.Diameter(), static_cast<uint32_t>(n - 1));
    EXPECT_FALSE(path.IsCyclic());
    EXPECT_TRUE(path.IsConnected());
    EXPECT_TRUE(path.FindSingleLeader().has_value());
  }
}

TEST(TopologyTest, StarShape) {
  for (int n : {2, 3, 5, 8}) {
    graph::Ac2tGraph star = graph::MakeStar(Keys(n), Chains(3), 100, 0);
    ASSERT_TRUE(star.Validate().ok());
    EXPECT_EQ(star.edge_count(), static_cast<size_t>(2 * (n - 1)));
    EXPECT_EQ(star.Diameter(), 2u);  // Leaf -> hub -> leaf (and 2-cycles).
    EXPECT_TRUE(star.IsCyclic());
    EXPECT_TRUE(star.IsConnected());
    // The hub is always a valid single leader: removing it strips every
    // edge.
    EXPECT_TRUE(star.AcyclicWithoutVertex(0));
    EXPECT_TRUE(star.FindSingleLeader().has_value());
  }
}

TEST(TopologyTest, CompleteDigraphShape) {
  for (int n : {2, 3, 5}) {
    graph::Ac2tGraph complete =
        graph::MakeCompleteDigraph(Keys(n), Chains(4), 100, 0);
    ASSERT_TRUE(complete.Validate().ok());
    EXPECT_EQ(complete.edge_count(), static_cast<size_t>(n * (n - 1)));
    // Every vertex reaches every other directly (distance 1), but the
    // paper's Diam includes the shortest directed cycle through a vertex —
    // u -> v -> u, length 2 — so the complete digraph has Diam = 2.
    EXPECT_EQ(complete.Diameter(), 2u);
    EXPECT_TRUE(complete.IsConnected());
    // n >= 3: removing any one vertex leaves a 2-cycle — no single leader.
    EXPECT_EQ(complete.FindSingleLeader().has_value(), n == 2);
  }
}

TEST(TopologyTest, RandomFeasibleIsFeasibleForEveryDraw) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    graph::Ac2tGraph g = graph::MakeRandomFeasibleGraph(
        Keys(7), Chains(3), 100, /*chord_prob=*/0.5, &rng, 0);
    ASSERT_TRUE(g.Validate().ok());
    EXPECT_GE(g.edge_count(), 7u);  // At least the ring.
    EXPECT_TRUE(g.IsConnected());
    EXPECT_TRUE(g.IsCyclic());  // The ring is always there.
    // The construction guarantee: vertex 0 is a valid leader.
    EXPECT_TRUE(g.AcyclicWithoutVertex(0)) << "seed " << seed;
  }
}

TEST(TopologyTest, RandomFeasibleIsDeterministicUnderSeed) {
  auto edges_for = [&](uint64_t seed) {
    Rng rng(seed);
    graph::Ac2tGraph g = graph::MakeRandomFeasibleGraph(
        Keys(6), Chains(3), 100, 0.5, &rng, 0);
    std::vector<std::tuple<uint32_t, uint32_t, chain::ChainId>> out;
    for (const graph::Ac2tEdge& e : g.edges()) {
      out.emplace_back(e.from, e.to, e.chain_id);
    }
    return out;
  };
  EXPECT_EQ(edges_for(11), edges_for(11));
  EXPECT_NE(edges_for(11), edges_for(12));  // 6 choose-able chords: very
                                            // likely to differ.
}

TEST(TopologyTest, TopologyOverWorldIsDeterministicUnderSeed) {
  SwapWorldOptions options;
  options.participants = 6;
  options.asset_chains = 3;
  SwapWorld world_a(options), world_b(options);
  graph::Ac2tGraph a = runner::TopologyOverWorld(
      &world_a, runner::Topology::kRandomFeasible, 6, 100, /*seed=*/77);
  graph::Ac2tGraph b = runner::TopologyOverWorld(
      &world_b, runner::Topology::kRandomFeasible, 6, 100, /*seed=*/77);
  EXPECT_EQ(a.Encode(), b.Encode());
  graph::Ac2tGraph c = runner::TopologyOverWorld(
      &world_b, runner::Topology::kRandomFeasible, 6, 100, /*seed=*/78);
  EXPECT_NE(a.Encode(), c.Encode());
}

TEST(TopologyTest, FeasibilityTableMatchesGraphAnalysis) {
  // TopologySingleLeaderFeasible must agree with FindSingleLeader on the
  // actual generated graphs (sizes where every family is well-formed).
  for (int n : {2, 3, 4, 5, 6}) {
    auto check = [&](runner::Topology topology,
                     const graph::Ac2tGraph& graph) {
      EXPECT_EQ(runner::TopologySingleLeaderFeasible(topology, n),
                graph.FindSingleLeader().has_value())
          << runner::TopologyName(topology) << " at n=" << n;
    };
    check(runner::Topology::kRing, graph::MakeRing(Keys(n), Chains(2), 1, 0));
    check(runner::Topology::kPath, graph::MakePath(Keys(n), Chains(2), 1, 0));
    check(runner::Topology::kStar, graph::MakeStar(Keys(n), Chains(2), 1, 0));
    check(runner::Topology::kComplete,
          graph::MakeCompleteDigraph(Keys(n), Chains(2), 1, 0));
    check(runner::Topology::kFig7aCyclic,
          graph::MakeFigure7aCyclic(Keys(n), Chains(2), 1, 0));
    if (n >= 4) {  // Below 4 the family degenerates to a single pair.
      check(runner::Topology::kFig7bDisconnected,
            graph::MakeFigure7bDisconnected(Keys(n), Chains(2), 1, 0));
    }
  }
}

// ---- the Section 5.3 functional gap, end to end ---------------------------

protocols::HtlcConfig FastHtlc() {
  protocols::HtlcConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  return config;
}

protocols::Ac3wnConfig FastAc3wn() {
  protocols::Ac3wnConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(20);
  return config;
}

graph::Ac2tGraph InfeasibleGraph(runner::Topology topology, SwapWorld* world,
                                 int n) {
  return runner::TopologyOverWorld(world, topology, n, 100, /*seed=*/5);
}

TEST(FunctionalGapTest, HerlihyRejectsEveryFigure7Family) {
  for (runner::Topology topology :
       {runner::Topology::kComplete, runner::Topology::kFig7aCyclic,
        runner::Topology::kFig7bDisconnected}) {
    SwapWorldOptions options;
    options.participants = 4;
    options.asset_chains = 4;
    options.witness_chain = false;
    SwapWorld world(options);
    world.StartMining();
    graph::Ac2tGraph graph = InfeasibleGraph(topology, &world, 4);
    ASSERT_FALSE(graph.FindSingleLeader().has_value())
        << runner::TopologyName(topology);
    protocols::HerlihySwapEngine engine(world.env(), graph,
                                        world.all_participants(), FastHtlc());
    Status started = engine.Start();
    EXPECT_EQ(started.code(), StatusCode::kFailedPrecondition)
        << runner::TopologyName(topology) << ": " << started.ToString();
  }
}

TEST(FunctionalGapTest, Ac3wnCommitsEveryFigure7Family) {
  for (runner::Topology topology :
       {runner::Topology::kComplete, runner::Topology::kFig7aCyclic,
        runner::Topology::kFig7bDisconnected}) {
    SwapWorldOptions options;
    options.participants = 4;
    options.asset_chains = 4;
    options.witness_chain = true;
    SwapWorld world(options);
    world.StartMining();
    graph::Ac2tGraph graph = InfeasibleGraph(topology, &world, 4);
    protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                      world.all_participants(),
                                      world.witness_chain(), FastAc3wn());
    auto report = engine.Run(Minutes(10));
    ASSERT_TRUE(report.ok()) << runner::TopologyName(topology);
    EXPECT_TRUE(report->finished) << runner::TopologyName(topology);
    EXPECT_TRUE(report->committed) << runner::TopologyName(topology);
    EXPECT_FALSE(report->AtomicityViolated());
  }
}

}  // namespace
}  // namespace ac3
