// Unit tests for src/crypto: SHA-256 (NIST vectors), primes/group
// generation, Schnorr signatures, multisignatures, Merkle proofs, and
// commitment schemes.

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/crypto/commitment.h"
#include "src/crypto/hash256.h"
#include "src/crypto/merkle.h"
#include "src/crypto/multisig.h"
#include "src/crypto/primes.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/sha256.h"
#include "tests/dispatch_test_util.h"

namespace ac3::crypto {
namespace {

Bytes StrBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyStringVector) {
  // NIST: SHA-256("") =
  // e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855
  EXPECT_EQ(Hash256::Of({}).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  // NIST: SHA-256("abc") =
  // ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad
  EXPECT_EQ(Hash256::OfString("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessageVector) {
  // NIST: SHA-256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
  EXPECT_EQ(
      Hash256::OfString(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAVector) {
  // NIST: SHA-256 of one million 'a' characters.
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(Hash256(h.Finish()).ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = StrBytes("the quick brown fox jumps over the lazy dog etc");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.Update(data.data(), split);
    h.Update(data.data() + split, data.size() - split);
    EXPECT_EQ(Hash256(h.Finish()), Hash256::Of(data)) << "split=" << split;
  }
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all work.
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    Bytes data(len, 0x5a);
    Sha256 a;
    a.Update(data);
    Sha256 b;
    for (uint8_t byte : data) b.Update(&byte, 1);
    EXPECT_EQ(Hash256(a.Finish()), Hash256(b.Finish())) << "len=" << len;
  }
}

// ------------------------------------------------- SHA-256 dispatch ladder

using ::ac3::testutil::AvailableDispatches;
using ::ac3::testutil::DispatchGuard;

TEST(Sha256DispatchTest, ActiveLevelIsAvailableAndNamed) {
  const Sha256::Dispatch active = Sha256::ActiveDispatch();
  EXPECT_TRUE(Sha256::DispatchAvailable(active));
  EXPECT_STRNE(Sha256::DispatchName(active), "?");
  EXPECT_STREQ(Sha256::DispatchName(Sha256::Dispatch::kScalar), "scalar");
  EXPECT_STREQ(Sha256::DispatchName(Sha256::Dispatch::kShaNi), "shani");
  EXPECT_STREQ(Sha256::DispatchName(Sha256::Dispatch::kAvx2), "avx2");
  // SetDispatch round-trips on the active level and mining lanes are a
  // sane loop width on every level.
  EXPECT_TRUE(Sha256::SetDispatch(active));
  EXPECT_GE(Sha256::PreferredMiningLanes(), 2u);
  EXPECT_LE(Sha256::PreferredMiningLanes(), Sha256::kMaxLanes);
}

// Every available hardware level must produce bit-identical digests to
// the scalar oracle, across message lengths covering multi-block inputs
// and every padding edge.
TEST(Sha256DispatchTest, EveryAvailableLevelMatchesScalarDigests) {
  DispatchGuard guard;
  if (!Sha256::DispatchAvailable(Sha256::Dispatch::kScalar)) {
    GTEST_SKIP() << "process pinned to a non-scalar level";
  }
  Rng rng(20260730);
  for (size_t len : {0u, 1u, 31u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 200u,
                     1000u}) {
    Bytes data(len);
    for (uint8_t& byte : data) byte = static_cast<uint8_t>(rng.NextU64());
    ASSERT_TRUE(Sha256::SetDispatch(Sha256::Dispatch::kScalar));
    const Hash256 oracle = Hash256::Of(data);
    const Hash256 double_oracle = Hash256::DoubleOf(data);
    for (Sha256::Dispatch level : AvailableDispatches()) {
      ASSERT_TRUE(Sha256::SetDispatch(level));
      EXPECT_EQ(Hash256::Of(data), oracle)
          << "len " << len << " level " << Sha256::DispatchName(level);
      EXPECT_EQ(Hash256::DoubleOf(data), double_oracle)
          << "len " << len << " level " << Sha256::DispatchName(level);
    }
  }
}

// CompressBatch must agree with per-lane Compress for every batch width
// 1..kMaxLanes on every available level (covers the AVX2 8-way kernel,
// the SHA-NI pair kernel, and the mixed remainder paths).
TEST(Sha256DispatchTest, CompressBatchMatchesPerLaneCompress) {
  DispatchGuard guard;
  if (!Sha256::DispatchAvailable(Sha256::Dispatch::kScalar)) {
    GTEST_SKIP() << "process pinned to a non-scalar level";
  }
  Rng rng(77007);
  for (size_t n = 1; n <= Sha256::kMaxLanes; ++n) {
    uint8_t blocks[Sha256::kMaxLanes][Sha256::kBlockSize];
    std::array<uint32_t, 8> seed_states[Sha256::kMaxLanes];
    for (size_t lane = 0; lane < n; ++lane) {
      for (uint8_t& byte : blocks[lane]) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      for (uint32_t& word : seed_states[lane]) {
        word = static_cast<uint32_t>(rng.NextU64());
      }
    }
    // Scalar per-lane oracle.
    ASSERT_TRUE(Sha256::SetDispatch(Sha256::Dispatch::kScalar));
    std::array<uint32_t, 8> expected[Sha256::kMaxLanes];
    for (size_t lane = 0; lane < n; ++lane) {
      expected[lane] = seed_states[lane];
      Sha256::Compress(expected[lane].data(), blocks[lane]);
    }
    for (Sha256::Dispatch level : AvailableDispatches()) {
      ASSERT_TRUE(Sha256::SetDispatch(level));
      std::array<uint32_t, 8> actual[Sha256::kMaxLanes];
      uint32_t* state_ptrs[Sha256::kMaxLanes] = {};
      const uint8_t* block_ptrs[Sha256::kMaxLanes] = {};
      for (size_t lane = 0; lane < n; ++lane) {
        actual[lane] = seed_states[lane];
        state_ptrs[lane] = actual[lane].data();
        block_ptrs[lane] = blocks[lane];
      }
      Sha256::CompressBatch(state_ptrs, block_ptrs, n);
      for (size_t lane = 0; lane < n; ++lane) {
        EXPECT_EQ(actual[lane], expected[lane])
            << "n " << n << " lane " << lane << " level "
            << Sha256::DispatchName(level);
      }
    }
  }
}

// ---------------------------------------------------------------- Hash256

TEST(Hash256Test, DefaultIsZero) {
  Hash256 h;
  EXPECT_TRUE(h.IsZero());
  EXPECT_EQ(h.ToHex(), std::string(64, '0'));
}

TEST(Hash256Test, HexRoundTrip) {
  Hash256 h = Hash256::OfString("roundtrip");
  auto parsed = Hash256::FromHex(h.ToHex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, h);
}

TEST(Hash256Test, FromHexRejectsWrongLength) {
  EXPECT_FALSE(Hash256::FromHex("abcd").ok());
}

TEST(Hash256Test, OrderingIsLexicographic) {
  Hash256 a = Hash256::OfString("a");
  Hash256 b = Hash256::OfString("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
}

TEST(Hash256Test, DoubleHashDiffersFromSingle) {
  Bytes data = StrBytes("pow-header");
  EXPECT_NE(Hash256::Of(data), Hash256::DoubleOf(data));
}

TEST(Hash256Test, Prefix64IsBigEndianOfFirstBytes) {
  std::array<uint8_t, 32> raw{};
  raw[0] = 0x01;
  raw[7] = 0xff;
  Hash256 h(raw);
  EXPECT_EQ(h.Prefix64(), 0x01000000000000ffULL);
}

// ---------------------------------------------------------------- primes

TEST(PrimesTest, SmallPrimes) {
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_TRUE(IsPrime(97));
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_FALSE(IsPrime(91));  // 7 * 13
  EXPECT_FALSE(IsPrime(561));  // Carmichael number.
}

TEST(PrimesTest, LargeKnownPrimes) {
  EXPECT_TRUE(IsPrime(2305843009213693951ULL));   // 2^61 - 1 (Mersenne).
  EXPECT_FALSE(IsPrime(2305843009213693953ULL));  // 2^61 + 1 composite.
  EXPECT_TRUE(IsPrime(18446744073709551557ULL));  // Largest 64-bit prime.
}

TEST(PrimesTest, NextPrime) {
  EXPECT_EQ(NextPrime(2), 2u);
  EXPECT_EQ(NextPrime(14), 17u);
  EXPECT_EQ(NextPrime(97), 97u);
}

TEST(PrimesTest, PowModMatchesNaive) {
  for (uint64_t b : {2ULL, 3ULL, 10ULL}) {
    uint64_t naive = 1;
    for (int e = 0; e < 20; ++e) {
      EXPECT_EQ(PowMod(b, e, 1000000007ULL), naive % 1000000007ULL);
      naive = naive * b % 1000000007ULL;
    }
  }
}

TEST(PrimesTest, MulModNoOverflow) {
  uint64_t m = 2305843009213693951ULL;  // 2^61 - 1.
  uint64_t a = m - 1, b = m - 2;
  // (m-1)(m-2) mod m = (-1)(-2) mod m = 2.
  EXPECT_EQ(MulMod(a, b, m), 2u);
}

TEST(PrimesTest, GroupParamsAreConsistent) {
  const GroupParams& grp = DefaultGroup();
  EXPECT_TRUE(IsPrime(grp.p));
  EXPECT_TRUE(IsPrime(grp.q));
  EXPECT_EQ((grp.p - 1) % grp.q, 0u);
  EXPECT_NE(grp.g, 1u);
  EXPECT_EQ(PowMod(grp.g, grp.q, grp.p), 1u);  // g has order dividing q.
  EXPECT_NE(PowMod(grp.g, 1, grp.p), 1u);      // ...and not order 1.
}

TEST(PrimesTest, GenerateGroupDeterministic) {
  GroupParams a = GenerateGroup(42);
  GroupParams b = GenerateGroup(42);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.g, b.g);
}

// ---------------------------------------------------------------- Schnorr

TEST(SchnorrTest, SignVerifyRoundTrip) {
  KeyPair key = KeyPair::FromSeed(1);
  Bytes msg = StrBytes("transfer X bitcoins from Alice to Bob");
  Signature sig = key.Sign(msg);
  EXPECT_TRUE(Verify(key.public_key(), msg, sig));
}

TEST(SchnorrTest, RejectsTamperedMessage) {
  KeyPair key = KeyPair::FromSeed(2);
  Signature sig = key.Sign(StrBytes("original"));
  EXPECT_FALSE(Verify(key.public_key(), StrBytes("tampered"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  KeyPair alice = KeyPair::FromSeed(3);
  KeyPair bob = KeyPair::FromSeed(4);
  Bytes msg = StrBytes("message");
  Signature sig = alice.Sign(msg);
  EXPECT_FALSE(Verify(bob.public_key(), msg, sig));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  KeyPair key = KeyPair::FromSeed(5);
  Bytes msg = StrBytes("message");
  Signature sig = key.Sign(msg);
  Signature bad_e = sig;
  bad_e.e ^= 1;
  EXPECT_FALSE(Verify(key.public_key(), msg, bad_e));
  Signature bad_s = sig;
  bad_s.s ^= 1;
  EXPECT_FALSE(Verify(key.public_key(), msg, bad_s));
}

TEST(SchnorrTest, DeterministicSignatures) {
  KeyPair key = KeyPair::FromSeed(6);
  Bytes msg = StrBytes("idempotent");
  EXPECT_EQ(key.Sign(msg), key.Sign(msg));
}

TEST(SchnorrTest, DistinctSeedsDistinctKeys) {
  EXPECT_NE(KeyPair::FromSeed(7).public_key(),
            KeyPair::FromSeed(8).public_key());
}

TEST(SchnorrTest, InvalidPublicKeyRejected) {
  Signature sig{1, 1};
  EXPECT_FALSE(Verify(PublicKey(), StrBytes("m"), sig));
}

TEST(SchnorrTest, EncodeDecodeRoundTrip) {
  KeyPair key = KeyPair::FromSeed(9);
  Bytes pk_bytes = key.public_key().Encode();
  ByteReader r(pk_bytes);
  auto pk = PublicKey::Decode(&r);
  ASSERT_TRUE(pk.ok());
  EXPECT_EQ(*pk, key.public_key());

  Signature sig = key.SignString("encode me");
  Bytes sig_bytes = sig.Encode();
  ByteReader r2(sig_bytes);
  auto sig2 = Signature::Decode(&r2);
  ASSERT_TRUE(sig2.ok());
  EXPECT_EQ(*sig2, sig);
}

TEST(SchnorrTest, ManyKeysAllVerify) {
  Rng rng(1234);
  for (int i = 0; i < 50; ++i) {
    KeyPair key = KeyPair::Generate(&rng);
    Bytes msg = rng.NextBytes(64);
    EXPECT_TRUE(Verify(key.public_key(), msg, key.Sign(msg)));
  }
}

// ---------------------------------------------------------------- multisig

TEST(MultisigTest, AllPartiesSignAndVerify) {
  Bytes msg = StrBytes("graph D at timestamp t");
  Multisignature ms(msg);
  KeyPair alice = KeyPair::FromSeed(10);
  KeyPair bob = KeyPair::FromSeed(11);
  ASSERT_TRUE(ms.AddSignature(alice).ok());
  ASSERT_TRUE(ms.AddSignature(bob).ok());
  EXPECT_TRUE(ms.VerifyAll({alice.public_key(), bob.public_key()}));
}

TEST(MultisigTest, MissingSignerFailsVerification) {
  Multisignature ms(StrBytes("m"));
  KeyPair alice = KeyPair::FromSeed(12);
  KeyPair bob = KeyPair::FromSeed(13);
  ASSERT_TRUE(ms.AddSignature(alice).ok());
  EXPECT_FALSE(ms.VerifyAll({alice.public_key(), bob.public_key()}));
}

TEST(MultisigTest, DuplicateSignerRejected) {
  Multisignature ms(StrBytes("m"));
  KeyPair alice = KeyPair::FromSeed(14);
  ASSERT_TRUE(ms.AddSignature(alice).ok());
  Status dup = ms.AddSignature(alice);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(MultisigTest, ForgedPartRejectedOnAdd) {
  Multisignature ms(StrBytes("m"));
  KeyPair alice = KeyPair::FromSeed(15);
  MultisigPart part;
  part.signer = alice.public_key();
  part.signature = alice.SignString("different message");
  EXPECT_EQ(ms.AddPart(part).code(), StatusCode::kVerificationFailed);
}

TEST(MultisigTest, IdStableUnderSignerOrder) {
  // Note: Id covers content, so different orders give different encodings —
  // but the *same* parts in the same order round-trip identically.
  Bytes msg = StrBytes("ordered");
  Multisignature ms(msg);
  KeyPair a = KeyPair::FromSeed(16), b = KeyPair::FromSeed(17);
  ASSERT_TRUE(ms.AddSignature(a).ok());
  ASSERT_TRUE(ms.AddSignature(b).ok());
  auto decoded = Multisignature::Decode(ms.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Id(), ms.Id());
  EXPECT_TRUE(decoded->VerifyAll({a.public_key(), b.public_key()}));
}

TEST(MultisigTest, SignatureOrderDoesNotAffectValidity) {
  // The paper: "The order of participant signatures in ms(D) is not
  // important."  Both orders must verify.
  Bytes msg = StrBytes("any order");
  KeyPair a = KeyPair::FromSeed(18), b = KeyPair::FromSeed(19);
  Multisignature ab(msg), ba(msg);
  ASSERT_TRUE(ab.AddSignature(a).ok());
  ASSERT_TRUE(ab.AddSignature(b).ok());
  ASSERT_TRUE(ba.AddSignature(b).ok());
  ASSERT_TRUE(ba.AddSignature(a).ok());
  std::vector<PublicKey> signers = {a.public_key(), b.public_key()};
  EXPECT_TRUE(ab.VerifyAll(signers));
  EXPECT_TRUE(ba.VerifyAll(signers));
}

// ---------------------------------------------------------------- merkle

std::vector<Hash256> MakeLeaves(int n) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(Hash256::OfString("leaf" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_TRUE(tree.root().IsZero());
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
}

TEST(MerkleTest, TwoLeafRoot) {
  auto leaves = MakeLeaves(2);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), Hash256::OfPair(leaves[0], leaves[1]));
}

TEST(MerkleTest, OddLeafCountDuplicatesLast) {
  auto leaves = MakeLeaves(3);
  MerkleTree tree(leaves);
  Hash256 left = Hash256::OfPair(leaves[0], leaves[1]);
  Hash256 right = Hash256::OfPair(leaves[2], leaves[2]);
  EXPECT_EQ(tree.root(), Hash256::OfPair(left, right));
}

TEST(MerkleTest, ProofVerifiesForEveryLeaf) {
  for (int n : {1, 2, 3, 4, 5, 8, 13, 32, 33}) {
    auto leaves = MakeLeaves(n);
    MerkleTree tree(leaves);
    for (int i = 0; i < n; ++i) {
      auto proof = tree.Prove(i);
      ASSERT_TRUE(proof.ok()) << "n=" << n << " i=" << i;
      EXPECT_TRUE(VerifyMerkleProof(leaves[i], *proof, tree.root()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, ProofFailsForWrongLeaf) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(3);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(VerifyMerkleProof(leaves[4], *proof, tree.root()));
}

TEST(MerkleTest, ProofFailsForWrongRoot) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(3);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(
      VerifyMerkleProof(leaves[3], *proof, Hash256::OfString("bogus")));
}

TEST(MerkleTest, ProofIndexOutOfRange) {
  MerkleTree tree(MakeLeaves(4));
  EXPECT_FALSE(tree.Prove(4).ok());
}

TEST(MerkleTest, ProofEncodeDecodeRoundTrip) {
  auto leaves = MakeLeaves(7);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(5);
  ASSERT_TRUE(proof.ok());
  auto decoded = MerkleProof::Decode(proof->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(VerifyMerkleProof(leaves[5], *decoded, tree.root()));
}

TEST(MerkleTest, TamperedProofStepFails) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(9);
  ASSERT_TRUE(proof.ok());
  MerkleProof bad = *proof;
  bad.path[1].sibling = Hash256::OfString("evil");
  EXPECT_FALSE(VerifyMerkleProof(leaves[9], bad, tree.root()));
}

// ---------------------------------------------------------------- commitments

TEST(CommitmentTest, HashlockAcceptsCorrectSecret) {
  Bytes secret = StrBytes("only Alice knows s");
  auto lock = HashlockCommitment::FromSecret(secret);
  EXPECT_TRUE(lock.VerifySecret(secret));
}

TEST(CommitmentTest, HashlockRejectsWrongSecret) {
  auto lock = HashlockCommitment::FromSecret(StrBytes("s"));
  EXPECT_FALSE(lock.VerifySecret(StrBytes("not s")));
}

TEST(CommitmentTest, SignatureCommitmentRedeemRefundMutuallyExclusive) {
  KeyPair trent = KeyPair::FromSeed(100);
  Hash256 ms_id = Hash256::OfString("ms(D)");
  SignatureCommitment rd(ms_id, trent.public_key(), CommitmentTag::kRedeem);
  SignatureCommitment rf(ms_id, trent.public_key(), CommitmentTag::kRefund);

  Signature redeem_secret =
      trent.Sign(SignatureCommitmentMessage(ms_id, CommitmentTag::kRedeem));
  EXPECT_TRUE(rd.VerifySecret(redeem_secret));
  // The redeem secret must NOT open the refund commitment.
  EXPECT_FALSE(rf.VerifySecret(redeem_secret));
}

TEST(CommitmentTest, SignatureCommitmentRejectsNonTrentSigner) {
  KeyPair trent = KeyPair::FromSeed(101);
  KeyPair mallory = KeyPair::FromSeed(102);
  Hash256 ms_id = Hash256::OfString("ms(D)");
  SignatureCommitment rd(ms_id, trent.public_key(), CommitmentTag::kRedeem);
  Signature forged =
      mallory.Sign(SignatureCommitmentMessage(ms_id, CommitmentTag::kRedeem));
  EXPECT_FALSE(rd.VerifySecret(forged));
}

TEST(CommitmentTest, SignatureCommitmentBoundToGraph) {
  KeyPair trent = KeyPair::FromSeed(103);
  Hash256 ms1 = Hash256::OfString("swap 1");
  Hash256 ms2 = Hash256::OfString("swap 2");
  SignatureCommitment rd1(ms1, trent.public_key(), CommitmentTag::kRedeem);
  Signature secret_for_2 =
      trent.Sign(SignatureCommitmentMessage(ms2, CommitmentTag::kRedeem));
  EXPECT_FALSE(rd1.VerifySecret(secret_for_2));
}

TEST(CommitmentTest, TagNames) {
  EXPECT_STREQ(CommitmentTagName(CommitmentTag::kRedeem), "RD");
  EXPECT_STREQ(CommitmentTagName(CommitmentTag::kRefund), "RF");
}

}  // namespace
}  // namespace ac3::crypto
