// Open-world workload generator tests: seed determinism (bit-for-bit
// replay, horizon-partition invariance), distribution sanity (Zipf rank
// skew, Poisson inter-arrival mean, bursty duty windows), and end-to-end
// validity — generated traffic must execute and fully include on real
// chains built from the generator's genesis allocations.

#include "src/sim/workload.h"

#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"

namespace ac3::sim {
namespace {

/// The synthetic coinbase a Blockchain builds from the same allocations —
/// lets pure generator tests bind chain slots without a chain instance.
chain::Transaction FakeGenesis(std::vector<chain::TxOutput> allocations,
                               chain::ChainId id) {
  chain::Transaction tx;
  tx.type = chain::TxType::kCoinbase;
  tx.chain_id = id;
  tx.outputs = std::move(allocations);
  tx.nonce = 0;
  return tx;
}

void BindAll(WorkloadGenerator* gen) {
  for (size_t c = 0; c < gen->config().chains; ++c) {
    gen->BindChain(c, static_cast<chain::ChainId>(c),
                   FakeGenesis(gen->GenesisAllocations(c),
                               static_cast<chain::ChainId>(c)));
  }
}

void ExpectBatchesIdentical(const WorkloadBatch& a, const WorkloadBatch& b) {
  ASSERT_EQ(a.txs.size(), b.txs.size());
  for (size_t i = 0; i < a.txs.size(); ++i) {
    EXPECT_EQ(a.txs[i].arrival, b.txs[i].arrival) << "tx " << i;
    EXPECT_EQ(a.txs[i].chain, b.txs[i].chain) << "tx " << i;
    EXPECT_EQ(a.txs[i].tx.Encode(), b.txs[i].tx.Encode()) << "tx " << i;
  }
  ASSERT_EQ(a.swaps.size(), b.swaps.size());
  for (size_t i = 0; i < a.swaps.size(); ++i) {
    EXPECT_EQ(a.swaps[i].arrival, b.swaps[i].arrival) << "swap " << i;
    EXPECT_EQ(a.swaps[i].leg_a_id, b.swaps[i].leg_a_id) << "swap " << i;
    EXPECT_EQ(a.swaps[i].leg_b_id, b.swaps[i].leg_b_id) << "swap " << i;
  }
}

TEST(WorkloadTest, SameSeedReplaysBitForBit) {
  WorkloadConfig config;
  config.accounts = 2'000'000;  // Lazy wallets: universe size is free.
  config.arrivals_per_sec = 300.0;
  WorkloadGenerator gen_a(config, 42);
  WorkloadGenerator gen_b(config, 42);
  BindAll(&gen_a);
  BindAll(&gen_b);
  WorkloadBatch batch_a = gen_a.NextBatch(4000);
  WorkloadBatch batch_b = gen_b.NextBatch(4000);
  EXPECT_GT(batch_a.swaps.size(), 100u);
  ExpectBatchesIdentical(batch_a, batch_b);

  WorkloadGenerator gen_c(config, 43);
  BindAll(&gen_c);
  WorkloadBatch batch_c = gen_c.NextBatch(4000);
  bool differs = batch_c.txs.size() != batch_a.txs.size();
  for (size_t i = 0; !differs && i < batch_a.txs.size(); ++i) {
    differs = batch_a.txs[i].tx.Id() != batch_c.txs[i].tx.Id();
  }
  EXPECT_TRUE(differs) << "different seeds produced identical streams";
}

TEST(WorkloadTest, HorizonPartitioningDoesNotChangeTheStream) {
  WorkloadConfig config;
  config.arrivals_per_sec = 250.0;
  config.process = ArrivalProcess::kBursty;  // Partition across phases too.
  WorkloadGenerator whole(config, 7);
  WorkloadGenerator chunked(config, 7);
  BindAll(&whole);
  BindAll(&chunked);
  WorkloadBatch expected = whole.NextBatch(12'000);
  WorkloadBatch stitched;
  for (TimePoint horizon : {1'000, 1'001, 5'500, 12'000}) {
    WorkloadBatch piece = chunked.NextBatch(horizon);
    for (auto& tx : piece.txs) stitched.txs.push_back(std::move(tx));
    for (auto& swap : piece.swaps) stitched.swaps.push_back(std::move(swap));
  }
  ExpectBatchesIdentical(expected, stitched);
  EXPECT_EQ(chunked.swaps_generated(), whole.swaps_generated());
}

TEST(WorkloadTest, ZipfRanksAreHeavyTailedAndInRange) {
  WorkloadConfig config;
  config.accounts = 1'000'000;
  config.zipf_s = 1.2;
  WorkloadGenerator gen(config, 5);
  Rng rng(1234);
  constexpr int kDraws = 20'000;
  int top10 = 0;
  int deep_tail = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t rank = gen.SampleZipf(&rng);
    ASSERT_LT(rank, config.accounts);
    if (rank < 10) ++top10;
    if (rank >= config.accounts / 2) ++deep_tail;
  }
  // s=1.2 over 1M accounts: the head dominates but the tail still shows.
  EXPECT_GT(top10, kDraws / 4);
  EXPECT_GT(deep_tail, 0);
  EXPECT_LT(deep_tail, kDraws / 10);

  // s=0 degenerates to uniform: the top-10 share collapses.
  WorkloadConfig uniform = config;
  uniform.zipf_s = 0.0;
  WorkloadGenerator flat(uniform, 5);
  Rng flat_rng(1234);
  int flat_top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (flat.SampleZipf(&flat_rng) < 10) ++flat_top10;
  }
  EXPECT_LT(flat_top10, 20);
}

TEST(WorkloadTest, PoissonInterArrivalMeanWithinTolerance) {
  WorkloadConfig config;
  config.arrivals_per_sec = 100.0;  // Mean gap 10ms.
  WorkloadGenerator gen(config, 11);
  BindAll(&gen);
  WorkloadBatch batch = gen.NextBatch(60'000);  // ~6000 arrivals.
  ASSERT_GT(batch.swaps.size(), 3000u);
  const double mean_gap =
      static_cast<double>(batch.swaps.back().arrival - batch.swaps[0].arrival) /
      static_cast<double>(batch.swaps.size() - 1);
  EXPECT_NEAR(mean_gap, 10.0, 1.0);  // 10% tolerance at ~6000 samples.
}

TEST(WorkloadTest, BurstyArrivalsStayInsideOnWindowsWithSaneDutyCycle) {
  WorkloadConfig config;
  config.process = ArrivalProcess::kBursty;
  config.arrivals_per_sec = 150.0;
  config.burst_on_mean_ms = 1'000.0;
  config.burst_off_mean_ms = 3'000.0;
  config.burst_multiplier = 4.0;
  WorkloadGenerator gen(config, 21);
  BindAll(&gen);
  const TimePoint horizon = 120'000;
  WorkloadBatch batch = gen.NextBatch(horizon);
  const auto& windows = gen.burst_windows();
  ASSERT_GT(windows.size(), 10u);

  // Windows are disjoint and ascending.
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].first, windows[i - 1].second);
  }
  // Every arrival lies inside a closed on-window or the still-open phase
  // (±1ms for TimePoint rounding).
  const TimePoint open_start =
      windows.empty() ? 0 : windows.back().second;
  for (const SwapRecord& swap : batch.swaps) {
    bool inside = swap.arrival + 1 >= open_start;
    for (const auto& [start, end] : windows) {
      if (swap.arrival + 1 >= start && swap.arrival <= end + 1) {
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << "arrival " << swap.arrival
                        << " outside every on-window";
  }
  // Duty cycle: on-time fraction near on / (on + off) = 0.25 (loose
  // bounds — ~30 phase pairs of exponential durations are noisy).
  Duration on_total = 0;
  for (const auto& [start, end] : windows) on_total += end - start;
  const double duty = static_cast<double>(on_total) /
                      static_cast<double>(windows.back().second);
  EXPECT_GT(duty, 0.10);
  EXPECT_LT(duty, 0.45);
  // The modulated process still delivers roughly rate * multiplier * duty
  // arrivals overall.
  EXPECT_GT(batch.swaps.size(), 1000u);
}

// End-to-end: traffic generated against real chains executes fully — every
// emitted transaction (grants and legs) is eventually included on the
// canonical branch of its chain, through the batched ingestion + widened
// assembly + batched-PoW production path the open-world bench drives.
TEST(WorkloadTest, GeneratedTrafficFullyIncludesOnRealChains) {
  WorkloadConfig config;
  config.chains = 2;
  config.accounts = 5'000;
  config.arrivals_per_sec = 150.0;
  WorkloadGenerator gen(config, 99);

  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;  // Keep PoW trivial; mining is not the subject.
  params.max_block_txs = 200;
  std::vector<std::unique_ptr<chain::Blockchain>> chains;
  std::vector<chain::Mempool> pools(config.chains);
  for (size_t c = 0; c < config.chains; ++c) {
    chain::ChainParams p = params;
    p.id = static_cast<chain::ChainId>(c);
    p.name = "wl-" + std::to_string(c);
    chains.push_back(std::make_unique<chain::Blockchain>(
        p, gen.GenesisAllocations(c)));
    gen.BindChain(c, chains[c]->id(), chains[c]->genesis_tx());
  }

  WorkloadBatch batch = gen.NextBatch(3'000);
  ASSERT_GT(batch.swaps.size(), 200u);
  std::vector<std::vector<chain::Transaction>> per_chain(config.chains);
  for (const GeneratedTx& gtx : batch.txs) {
    per_chain[gtx.chain].push_back(gtx.tx);
  }
  for (size_t c = 0; c < config.chains; ++c) {
    auto result = pools[c].SubmitBatch(
        std::span<const chain::Transaction>(per_chain[c]), 3'000);
    EXPECT_EQ(result.accepted, per_chain[c].size())
        << "chain " << c << ": generator emitted a duplicate id";
  }

  Rng mine_rng(5);
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(31337);
  for (size_t c = 0; c < config.chains; ++c) {
    TimePoint now = 3'000;
    int rounds = 0;
    while (pools[c].size() > 0) {
      ASSERT_LT(rounds++, 100) << "mempool failed to drain on chain " << c;
      now += 100;
      auto candidates =
          pools[c].CandidatePointersAt(now, chain::Mempool::TxFilter());
      ASSERT_FALSE(candidates.empty());
      auto block = chains[c]->AssembleBlock(
          chains[c]->head()->hash,
          std::span<const chain::Transaction* const>(candidates),
          miner.public_key(), now, &mine_rng);
      ASSERT_TRUE(block.ok()) << block.status().ToString();
      ASSERT_GT(block->txs.size(), 1u) << "assembly made no progress";
      ASSERT_TRUE(chains[c]->SubmitBlock(*block, now).ok());
      std::vector<crypto::Hash256> included;
      for (size_t i = 1; i < block->txs.size(); ++i) {
        included.push_back(block->txs[i].Id());
      }
      pools[c].Prune(std::span<const crypto::Hash256>(included));
    }
  }
  for (const GeneratedTx& gtx : batch.txs) {
    EXPECT_TRUE(chains[gtx.chain]->TxOnBranch(*chains[gtx.chain]->head(),
                                              gtx.tx.Id()))
        << "generated tx not included on chain " << gtx.chain;
  }
  // Each swap's two legs landed on the two distinct chains it named.
  for (const SwapRecord& swap : batch.swaps) {
    EXPECT_NE(swap.chain_a, swap.chain_b);
    EXPECT_TRUE(chains[swap.chain_a]->FindTx(swap.leg_a_id).has_value());
    EXPECT_TRUE(chains[swap.chain_b]->FindTx(swap.leg_b_id).has_value());
  }
}

}  // namespace
}  // namespace ac3::sim
