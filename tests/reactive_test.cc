// The reactive substrate: canonical-head subscriptions on the blockchain,
// connectivity subscriptions on the network, the Environment's batched
// prune-on-head-move mempool hygiene, and the engine-level payoff — a
// swap world executes O(blocks + messages) simulation events, not
// O(duration / poll_interval).

#include <vector>

#include <gtest/gtest.h>

#include "src/chain/blockchain.h"
#include "src/chain/wallet.h"
#include "src/core/environment.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/network.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

// Disambiguates the vector/span AssembleBlock overloads at empty-candidate
// call sites ({} binds to both).
const std::vector<chain::Transaction> kNoCandidates;

using testutil::Fund;
using testutil::TestChain;

std::vector<crypto::KeyPair> MakeKeys(int n) {
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(6000 + static_cast<uint64_t>(i)));
  }
  return keys;
}

std::vector<crypto::PublicKey> Pks(const std::vector<crypto::KeyPair>& keys) {
  std::vector<crypto::PublicKey> pks;
  for (const auto& k : keys) pks.push_back(k.public_key());
  return pks;
}

// ---- Blockchain::SubscribeHead --------------------------------------------

TEST(HeadSubscriptionTest, FiresOnExtensionWithOldHead) {
  TestChain tc(chain::TestChainParams(), {});
  int fired = 0;
  crypto::Hash256 last_old_head;
  tc.chain().SubscribeHead([&](const chain::BlockEntry& old_head) {
    ++fired;
    last_old_head = old_head.hash;
  });
  const crypto::Hash256 genesis = tc.chain().genesis()->hash;
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last_old_head, genesis);
  const crypto::Hash256 first = tc.chain().head()->hash;
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(last_old_head, first);
}

TEST(HeadSubscriptionTest, SideBranchDoesNotFireUntilItWins) {
  TestChain tc(chain::TestChainParams(), {});
  ASSERT_TRUE(tc.MineEmpty(2).ok());
  const chain::BlockEntry* fork_parent = tc.chain().head()->parent;

  int fired = 0;
  tc.chain().SubscribeHead([&](const chain::BlockEntry&) { ++fired; });

  // A sibling at the same height loses the first-seen tie: no head move.
  ASSERT_TRUE(tc.MineBlockOn(fork_parent->hash, {}).ok());
  EXPECT_EQ(fired, 0);
  // Extending the side branch makes it strictly heavier: one reorg event.
  const chain::BlockEntry* side = tc.chain().arrival_order().back();
  ASSERT_TRUE(tc.MineBlockOn(side->hash, {}).ok());
  EXPECT_EQ(fired, 1);
}

TEST(HeadSubscriptionTest, UnsubscribeStopsDelivery) {
  TestChain tc(chain::TestChainParams(), {});
  int fired = 0;
  auto id = tc.chain().SubscribeHead([&](const chain::BlockEntry&) {
    ++fired;
  });
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  tc.chain().UnsubscribeHead(id);
  tc.chain().UnsubscribeHead(id);  // Idempotent.
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  EXPECT_EQ(fired, 1);
}

// ---- Network::SubscribeConnectivity ---------------------------------------

TEST(ConnectivitySubscriptionTest, FiresOnCrashRecoverAndPartition) {
  sim::Simulation sim(1);
  sim::Network network(&sim, sim::LatencyModel{0, 0});
  const sim::NodeId a = network.AddNode("a");
  const sim::NodeId b = network.AddNode("b");

  std::vector<sim::NodeId> events;
  auto id = network.SubscribeConnectivity(
      [&](sim::NodeId node) { events.push_back(node); });

  network.Crash(a);
  network.Recover(a);
  network.SetPartition(b, 2);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], a);
  EXPECT_EQ(events[1], a);
  EXPECT_EQ(events[2], b);

  events.clear();
  network.HealPartitions();  // One notification per node.
  EXPECT_EQ(events.size(), network.node_count());

  events.clear();
  network.UnsubscribeConnectivity(id);
  network.Crash(b);
  EXPECT_TRUE(events.empty());
}

// ---- Environment: batched prune on head movement --------------------------

TEST(MempoolAutoPruneTest, IncludedTransactionsLeaveThePoolOnHeadMove) {
  auto keys = MakeKeys(3);
  core::Environment env(/*seed=*/3);
  // miner_count 1 keeps block production deterministic and fork-free.
  chain::MiningConfig mining;
  mining.miner_count = 1;
  mining.max_propagation_delay = 0;
  const chain::ChainId id =
      env.AddChain(chain::TestChainParams(), Fund(Pks(keys), 1000), mining);

  chain::Wallet wallet(keys[0], id);
  auto tx = wallet.BuildTransfer(env.blockchain(id)->StateAtHead(),
                                 keys[1].public_key(), 10, 1, /*nonce=*/1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(env.mempool(id)->Submit(*tx, 0).ok());
  EXPECT_EQ(env.mempool(id)->size(), 1u);

  env.StartMining();
  Status mined = env.sim()->RunUntilCondition(
      [&]() { return env.blockchain(id)->FindTx(tx->Id()).has_value(); },
      Minutes(5));
  ASSERT_TRUE(mined.ok());
  // The inclusion moved the head, and the head subscription pruned the
  // pool in the same event — no ad-hoc Prune call anywhere.
  EXPECT_EQ(env.mempool(id)->size(), 0u);
  EXPECT_FALSE(env.mempool(id)->Contains(tx->Id()));
}

TEST(MempoolAutoPruneTest, ReorgedOutTransactionsReturnToThePool) {
  auto keys = MakeKeys(3);
  core::Environment env(/*seed=*/4);
  chain::MiningConfig mining;
  mining.miner_count = 1;
  const chain::ChainId id =
      env.AddChain(chain::TestChainParams(), Fund(Pks(keys), 1000), mining);
  chain::Blockchain* chain = env.blockchain(id);
  Rng rng(99);
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(77);

  chain::Wallet wallet(keys[0], id);
  auto tx = wallet.BuildTransfer(chain->StateAtHead(), keys[1].public_key(),
                                 10, 1, /*nonce=*/1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(env.mempool(id)->Submit(*tx, 0).ok());

  // Block A (genesis + tx) becomes the head: the subscription prunes.
  const crypto::Hash256 genesis = chain->genesis()->hash;
  auto block_a = chain->AssembleBlock(genesis, {*tx}, miner.public_key(),
                                      /*now=*/100, &rng);
  ASSERT_TRUE(block_a.ok());
  ASSERT_TRUE(chain->SubmitBlock(*block_a, 100).ok());
  EXPECT_EQ(env.mempool(id)->size(), 0u);

  // An empty two-block side branch reorgs A out: the transaction is on
  // neither branch any more, so the disconnect path re-queues it.
  auto side_1 = chain->AssembleBlock(genesis, kNoCandidates, miner.public_key(), 101,
                                     &rng);
  ASSERT_TRUE(side_1.ok());
  ASSERT_TRUE(chain->SubmitBlock(*side_1, 101).ok());
  auto side_2 = chain->AssembleBlock(side_1->header.Hash(), kNoCandidates,
                                     miner.public_key(), 102, &rng);
  ASSERT_TRUE(side_2.ok());
  ASSERT_TRUE(chain->SubmitBlock(*side_2, 102).ok());

  ASSERT_EQ(chain->head()->hash, side_2->header.Hash());
  EXPECT_FALSE(chain->FindTx(tx->Id()).has_value());
  EXPECT_TRUE(env.mempool(id)->Contains(tx->Id()))
      << "a reorged-out transaction must return to the pool for re-mining";
}

// ---- the engine-level payoff: event counts --------------------------------

TEST(ReactiveEngineTest, WaitingWorldExecutesFewerEventsThanPollingAlone) {
  // A waiting-dominated world: the counterparty crashes at 100 ms (before
  // publishing) and stays down 20 s, so the engine spends most of the run
  // waiting on its patience window. The retired fixed-poll AC3TW engine
  // executed 1449 total events on this exact cell (985 for Herlihy, 1661
  // for AC3WN — measured at the PR 3 seed); the reactive engine's ENTIRE
  // world (mining, gossip, retries, wakes) must cost fewer events than the
  // ~latency/20ms poll events alone would have.
  runner::SweepGridConfig config;
  config.protocols = {runner::Protocol::kAc3tw};
  config.topologies = {runner::Topology::kRing};
  config.sizes = {2};
  config.failures = {runner::FailureMode::kCrashParticipant};
  config.seeds = {11};
  config.deadline = Minutes(20);
  config.failure_onset_deltas = 0.05;
  config.failure_length_deltas = 10.0;
  std::vector<runner::RunOutcome> outcomes =
      runner::SweepRunner(1).RunGrid(config);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[0].finished);
  ASSERT_GT(outcomes[0].latency_ms, Seconds(15));

  const double poll_floor = outcomes[0].latency_ms / 20.0;
  EXPECT_LT(static_cast<double>(outcomes[0].sim_events), poll_floor)
      << "sim_events=" << outcomes[0].sim_events
      << " latency_ms=" << outcomes[0].latency_ms;
}

}  // namespace
}  // namespace ac3
