// The reactive substrate: canonical-head subscriptions on the blockchain,
// connectivity subscriptions on the network, the Environment's batched
// prune-on-head-move mempool hygiene, and the engine-level payoff — a
// swap world executes O(blocks + messages) simulation events, not
// O(duration / poll_interval).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/chain/blockchain.h"
#include "src/chain/wallet.h"
#include "src/core/environment.h"
#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/engine_base.h"
#include "src/protocols/messages.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/network.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

// Disambiguates the vector/span AssembleBlock overloads at empty-candidate
// call sites ({} binds to both).
const std::vector<chain::Transaction> kNoCandidates;

using testutil::Fund;
using testutil::TestChain;

std::vector<crypto::KeyPair> MakeKeys(int n) {
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(6000 + static_cast<uint64_t>(i)));
  }
  return keys;
}

std::vector<crypto::PublicKey> Pks(const std::vector<crypto::KeyPair>& keys) {
  std::vector<crypto::PublicKey> pks;
  for (const auto& k : keys) pks.push_back(k.public_key());
  return pks;
}

// ---- Blockchain::SubscribeHead --------------------------------------------

TEST(HeadSubscriptionTest, FiresOnExtensionWithOldHead) {
  TestChain tc(chain::TestChainParams(), {});
  int fired = 0;
  crypto::Hash256 last_old_head;
  tc.chain().SubscribeHead([&](const chain::BlockEntry& old_head) {
    ++fired;
    last_old_head = old_head.hash;
  });
  const crypto::Hash256 genesis = tc.chain().genesis()->hash;
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last_old_head, genesis);
  const crypto::Hash256 first = tc.chain().head()->hash;
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(last_old_head, first);
}

TEST(HeadSubscriptionTest, SideBranchDoesNotFireUntilItWins) {
  TestChain tc(chain::TestChainParams(), {});
  ASSERT_TRUE(tc.MineEmpty(2).ok());
  const chain::BlockEntry* fork_parent = tc.chain().head()->parent;

  int fired = 0;
  tc.chain().SubscribeHead([&](const chain::BlockEntry&) { ++fired; });

  // A sibling at the same height loses the first-seen tie: no head move.
  ASSERT_TRUE(tc.MineBlockOn(fork_parent->hash, {}).ok());
  EXPECT_EQ(fired, 0);
  // Extending the side branch makes it strictly heavier: one reorg event.
  const chain::BlockEntry* side = tc.chain().arrival_order().back();
  ASSERT_TRUE(tc.MineBlockOn(side->hash, {}).ok());
  EXPECT_EQ(fired, 1);
}

TEST(HeadSubscriptionTest, UnsubscribeStopsDelivery) {
  TestChain tc(chain::TestChainParams(), {});
  int fired = 0;
  auto id = tc.chain().SubscribeHead([&](const chain::BlockEntry&) {
    ++fired;
  });
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  tc.chain().UnsubscribeHead(id);
  tc.chain().UnsubscribeHead(id);  // Idempotent.
  ASSERT_TRUE(tc.MineEmpty(1).ok());
  EXPECT_EQ(fired, 1);
}

// ---- Network::SubscribeConnectivity ---------------------------------------

TEST(ConnectivitySubscriptionTest, FiresOnCrashRecoverAndPartition) {
  sim::Simulation sim(1);
  sim::Network network(&sim, sim::LatencyModel{0, 0});
  const sim::NodeId a = network.AddNode("a");
  const sim::NodeId b = network.AddNode("b");

  std::vector<sim::NodeId> events;
  auto id = network.SubscribeConnectivity(
      [&](sim::NodeId node) { events.push_back(node); });

  network.Crash(a);
  network.Recover(a);
  network.SetPartition(b, 2);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], a);
  EXPECT_EQ(events[1], a);
  EXPECT_EQ(events[2], b);

  events.clear();
  network.HealPartitions();  // One notification per node.
  EXPECT_EQ(events.size(), network.node_count());

  events.clear();
  network.UnsubscribeConnectivity(id);
  network.Crash(b);
  EXPECT_TRUE(events.empty());
}

// ---- Environment: batched prune on head movement --------------------------

TEST(MempoolAutoPruneTest, IncludedTransactionsLeaveThePoolOnHeadMove) {
  auto keys = MakeKeys(3);
  core::Environment env(/*seed=*/3);
  // miner_count 1 keeps block production deterministic and fork-free.
  chain::MiningConfig mining;
  mining.miner_count = 1;
  mining.max_propagation_delay = 0;
  const chain::ChainId id =
      env.AddChain(chain::TestChainParams(), Fund(Pks(keys), 1000), mining);

  chain::Wallet wallet(keys[0], id);
  auto tx = wallet.BuildTransfer(env.blockchain(id)->StateAtHead(),
                                 keys[1].public_key(), 10, 1, /*nonce=*/1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(env.mempool(id)->Submit(*tx, 0).ok());
  EXPECT_EQ(env.mempool(id)->size(), 1u);

  env.StartMining();
  Status mined = env.sim()->RunUntilCondition(
      [&]() { return env.blockchain(id)->FindTx(tx->Id()).has_value(); },
      Minutes(5));
  ASSERT_TRUE(mined.ok());
  // The inclusion moved the head, and the head subscription pruned the
  // pool in the same event — no ad-hoc Prune call anywhere.
  EXPECT_EQ(env.mempool(id)->size(), 0u);
  EXPECT_FALSE(env.mempool(id)->Contains(tx->Id()));
}

TEST(MempoolAutoPruneTest, ReorgedOutTransactionsReturnToThePool) {
  auto keys = MakeKeys(3);
  core::Environment env(/*seed=*/4);
  chain::MiningConfig mining;
  mining.miner_count = 1;
  const chain::ChainId id =
      env.AddChain(chain::TestChainParams(), Fund(Pks(keys), 1000), mining);
  chain::Blockchain* chain = env.blockchain(id);
  Rng rng(99);
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(77);

  chain::Wallet wallet(keys[0], id);
  auto tx = wallet.BuildTransfer(chain->StateAtHead(), keys[1].public_key(),
                                 10, 1, /*nonce=*/1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(env.mempool(id)->Submit(*tx, 0).ok());

  // Block A (genesis + tx) becomes the head: the subscription prunes.
  const crypto::Hash256 genesis = chain->genesis()->hash;
  auto block_a = chain->AssembleBlock(genesis, {*tx}, miner.public_key(),
                                      /*now=*/100, &rng);
  ASSERT_TRUE(block_a.ok());
  ASSERT_TRUE(chain->SubmitBlock(*block_a, 100).ok());
  EXPECT_EQ(env.mempool(id)->size(), 0u);

  // An empty two-block side branch reorgs A out: the transaction is on
  // neither branch any more, so the disconnect path re-queues it.
  auto side_1 = chain->AssembleBlock(genesis, kNoCandidates, miner.public_key(), 101,
                                     &rng);
  ASSERT_TRUE(side_1.ok());
  ASSERT_TRUE(chain->SubmitBlock(*side_1, 101).ok());
  auto side_2 = chain->AssembleBlock(side_1->header.Hash(), kNoCandidates,
                                     miner.public_key(), 102, &rng);
  ASSERT_TRUE(side_2.ok());
  ASSERT_TRUE(chain->SubmitBlock(*side_2, 102).ok());

  ASSERT_EQ(chain->head()->hash, side_2->header.Hash());
  EXPECT_FALSE(chain->FindTx(tx->Id()).has_value());
  EXPECT_TRUE(env.mempool(id)->Contains(tx->Id()))
      << "a reorged-out transaction must return to the pool for re-mining";
}

// ---- the engine-level payoff: event counts --------------------------------

TEST(ReactiveEngineTest, WaitingWorldExecutesFewerEventsThanPollingAlone) {
  // A waiting-dominated world: the counterparty crashes at 100 ms (before
  // publishing) and stays down 20 s, so the engine spends most of the run
  // waiting on its patience window. The retired fixed-poll AC3TW engine
  // executed 1449 total events on this exact cell (985 for Herlihy, 1661
  // for AC3WN — measured at the PR 3 seed); the reactive engine's ENTIRE
  // world (mining, gossip, retries, wakes) must cost fewer events than the
  // ~latency/20ms poll events alone would have.
  runner::SweepGridConfig config;
  config.protocols = {runner::Protocol::kAc3tw};
  config.topologies = {runner::Topology::kRing};
  config.sizes = {2};
  config.failures = {runner::FailureMode::kCrashParticipant};
  config.seeds = {11};
  config.deadline = Minutes(20);
  config.failure_onset_deltas = 0.05;
  config.failure_length_deltas = 10.0;
  std::vector<runner::RunOutcome> outcomes =
      runner::SweepRunner(1).RunGrid(config);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[0].finished);
  ASSERT_GT(outcomes[0].latency_ms, Seconds(15));

  const double poll_floor = outcomes[0].latency_ms / 20.0;
  EXPECT_LT(static_cast<double>(outcomes[0].sim_events), poll_floor)
      << "sim_events=" << outcomes[0].sim_events
      << " latency_ms=" << outcomes[0].latency_ms;
}

// ---- SwapEngineBase wake coalescing and message fencing -------------------
//
// The typed-message layer leans on two substrate guarantees: (1) any number
// of same-instant wake requests — resend heartbeats included — execute
// Step() once, so a burst of paced resends cannot stampede the state
// machine; (2) HandleMessage fences fault-injected duplicate deliveries
// (same seq) and stale epochs while letting genuine resends (fresh seqs)
// through. A minimal probe engine exposes the protected plumbing.

class ProbeEngine : public protocols::SwapEngineBase {
 public:
  ProbeEngine(core::Environment* env, graph::Ac2tGraph graph,
              std::vector<protocols::Participant*> participants,
              protocols::WatchConfig watch)
      : SwapEngineBase(env, std::move(graph), std::move(participants), watch,
                       "probe") {}

  using SwapEngineBase::HandleMessage;
  using SwapEngineBase::PaceResend;
  using SwapEngineBase::RequestWakeAt;
  using SwapEngineBase::SendProtocolMessage;

  int steps = 0;
  int messages = 0;
  uint64_t epoch_floor = 0;

 protected:
  Status OnStart() override { return Status::OK(); }
  void Step() override { ++steps; }
  bool IsComplete() const override { return false; }
  size_t EdgeCount() const override { return 0; }
  EdgeState* Edge(size_t) override { return nullptr; }
  void FillVerdict(protocols::SwapReport*) const override {}
  void OnMessage(const proto::Message&) override { ++messages; }
  uint64_t MessageEpochFloor() const override { return epoch_floor; }
};

struct ProbeWorld {
  ProbeWorld() : world(MakeOptions()) {
    graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
        world.participant(0)->pk(), world.participant(1)->pk(),
        world.asset_chain(0), 300, world.asset_chain(1), 200,
        world.env()->sim()->Now());
    protocols::WatchConfig watch;
    watch.resubmit_interval = Milliseconds(800);
    engine = std::make_unique<ProbeEngine>(world.env(), graph,
                                           world.all_participants(), watch);
  }

  static core::ScenarioOptions MakeOptions() {
    core::ScenarioOptions options;
    options.seed = 424242;
    return options;
  }

  proto::Message Envelope(uint64_t seq, uint64_t epoch) {
    proto::Message msg;
    msg.swap_id = crypto::Hash256::OfString("probe-swap");
    msg.epoch = epoch;
    msg.seq = seq;
    msg.sender = world.participant(0)->node();
    msg.receiver = world.participant(1)->node();
    msg.payload = proto::RedeemNotifyPayload{1};
    return msg;
  }

  core::ScenarioWorld world;
  std::unique_ptr<ProbeEngine> engine;
};

TEST(EngineWakeTest, SameInstantWakeRequestsExecuteStepOnce) {
  ProbeWorld probe;
  sim::Simulation* sim = probe.world.env()->sim();
  ASSERT_TRUE(probe.engine->Start().ok());
  sim->RunUntil(sim->Now() + Milliseconds(10));
  ASSERT_EQ(probe.engine->steps, 1);  // The initial scheduled step.

  // Three wakes at one instant plus two resend heartbeats (two distinct
  // exchanges pacing at the same moment — both arm Now+interval): exactly
  // TWO more steps, not five. A same-instant re-pace of an exchange is
  // refused outright.
  const TimePoint t = sim->Now();
  probe.engine->RequestWakeAt(t + Milliseconds(500));
  probe.engine->RequestWakeAt(t + Milliseconds(500));
  probe.engine->RequestWakeAt(t + Milliseconds(500));
  TimePoint exchange_a = -1;
  TimePoint exchange_b = -1;
  EXPECT_TRUE(probe.engine->PaceResend(&exchange_a));
  EXPECT_TRUE(probe.engine->PaceResend(&exchange_b));
  EXPECT_FALSE(probe.engine->PaceResend(&exchange_a));
  sim->RunUntil(t + Seconds(2));
  EXPECT_EQ(probe.engine->steps, 3);

  // After the interval elapses the same exchange paces again.
  EXPECT_TRUE(probe.engine->PaceResend(&exchange_a));
  EXPECT_EQ(exchange_a, sim->Now());
}

TEST(EngineMessageFenceTest, DuplicateDeliveriesOfOneSendAreFenced) {
  ProbeWorld probe;
  ASSERT_TRUE(probe.engine->Start().ok());

  const proto::Message msg = probe.Envelope(/*seq=*/7, /*epoch=*/0);
  probe.engine->HandleMessage(msg);
  probe.engine->HandleMessage(msg);  // Fault-injected duplicate: same seq.
  EXPECT_EQ(probe.engine->messages, 1);
  EXPECT_EQ(probe.engine->report().messages_delivered, 1);
  EXPECT_EQ(probe.engine->report().messages_fenced, 1);

  // A resend is a fresh send with a fresh seq — it passes the fence.
  probe.engine->HandleMessage(probe.Envelope(/*seq=*/8, /*epoch=*/0));
  EXPECT_EQ(probe.engine->messages, 2);
}

TEST(EngineMessageFenceTest, StaleEpochsAreFencedBeforeDispatch) {
  ProbeWorld probe;
  ASSERT_TRUE(probe.engine->Start().ok());
  probe.engine->epoch_floor = 5;

  probe.engine->HandleMessage(probe.Envelope(/*seq=*/9, /*epoch=*/4));
  EXPECT_EQ(probe.engine->messages, 0);
  EXPECT_EQ(probe.engine->report().messages_fenced, 1);

  probe.engine->HandleMessage(probe.Envelope(/*seq=*/10, /*epoch=*/5));
  EXPECT_EQ(probe.engine->messages, 1);
}

TEST(EngineMessageFenceTest, SentMessagesDeliverWithFreshSeqsAndAreCounted) {
  ProbeWorld probe;
  sim::Simulation* sim = probe.world.env()->sim();
  ASSERT_TRUE(probe.engine->Start().ok());

  // Two sends of the same logical exchange (a resend): distinct seqs are
  // stamped, so BOTH deliveries pass the duplicate fence, and the report's
  // send-side counters charge each send's wire size.
  probe.engine->SendProtocolMessage(probe.Envelope(/*seq=*/0, /*epoch=*/0));
  probe.engine->SendProtocolMessage(probe.Envelope(/*seq=*/0, /*epoch=*/0));
  sim->RunUntil(sim->Now() + Seconds(2));
  EXPECT_EQ(probe.engine->messages, 2);
  EXPECT_EQ(probe.engine->report().messages_sent, 2);
  EXPECT_EQ(probe.engine->report().messages_delivered, 2);
  EXPECT_EQ(probe.engine->report().messages_fenced, 0);
  EXPECT_EQ(probe.engine->report().message_bytes_sent,
            2 * static_cast<int64_t>(probe.Envelope(1, 0).EncodedSize()));
}

}  // namespace
}  // namespace ac3
