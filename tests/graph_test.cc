// AC2T graph tests: Section 3's model, Section 5.3's shape analysis, the
// Figure 4 / Figure 7 example graphs, and ms(D) (Equation 1).

#include "src/graph/ac2t_graph.h"

#include <gtest/gtest.h>

#include "src/graph/multisig_graph.h"

namespace ac3::graph {
namespace {

std::vector<crypto::PublicKey> Keys(int n) {
  std::vector<crypto::PublicKey> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(crypto::KeyPair::FromSeed(1000 + i).public_key());
  }
  return out;
}

std::vector<crypto::KeyPair> KeyPairs(int n) {
  std::vector<crypto::KeyPair> out;
  for (int i = 0; i < n; ++i) out.push_back(crypto::KeyPair::FromSeed(1000 + i));
  return out;
}

std::vector<chain::ChainId> Chains(int n) {
  std::vector<chain::ChainId> out;
  for (int i = 0; i < n; ++i) out.push_back(static_cast<chain::ChainId>(i));
  return out;
}

// -------------------------------------------------------------- validation

TEST(Ac2tGraphTest, ValidatesWellFormedGraph) {
  auto keys = Keys(2);
  Ac2tGraph graph = MakeTwoPartySwap(keys[0], keys[1], 0, 100, 1, 50, 42);
  EXPECT_TRUE(graph.Validate().ok());
  EXPECT_EQ(graph.participant_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_EQ(graph.timestamp(), 42);
}

TEST(Ac2tGraphTest, RejectsEmptyEdgeSet) {
  Ac2tGraph graph(Keys(2), {}, 0);
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(Ac2tGraphTest, RejectsSelfLoop) {
  Ac2tGraph graph(Keys(2), {Ac2tEdge{0, 0, 0, 100}}, 0);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(Ac2tGraphTest, RejectsOutOfRangeVertex) {
  Ac2tGraph graph(Keys(2), {Ac2tEdge{0, 5, 0, 100}}, 0);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(Ac2tGraphTest, RejectsZeroAmount) {
  Ac2tGraph graph(Keys(2), {Ac2tEdge{0, 1, 0, 0}}, 0);
  EXPECT_FALSE(graph.Validate().ok());
}

// ---------------------------------------------------------------- encoding

TEST(Ac2tGraphTest, EncodeDecodeRoundTrips) {
  auto keys = Keys(3);
  Ac2tGraph graph = MakeRing(keys, Chains(3), 120, 77);
  auto decoded = Ac2tGraph::Decode(graph.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->participants(), graph.participants());
  EXPECT_EQ(decoded->edge_count(), graph.edge_count());
  EXPECT_EQ(decoded->timestamp(), graph.timestamp());
  EXPECT_EQ(decoded->Encode(), graph.Encode());
}

TEST(Ac2tGraphTest, TimestampDistinguishesIdenticalSwaps) {
  // "The timestamp t is important to distinguish between identical AC2Ts
  //  among the same participants."
  auto keys = Keys(2);
  Ac2tGraph g1 = MakeTwoPartySwap(keys[0], keys[1], 0, 100, 1, 50, 1);
  Ac2tGraph g2 = MakeTwoPartySwap(keys[0], keys[1], 0, 100, 1, 50, 2);
  EXPECT_NE(g1.Encode(), g2.Encode());
}

// ---------------------------------------------------------- shape analysis

TEST(Ac2tGraphTest, TwoPartySwapHasDiameterTwo) {
  auto keys = Keys(2);
  Ac2tGraph graph = MakeTwoPartySwap(keys[0], keys[1], 0, 100, 1, 50, 0);
  // "The smallest transaction graph consists of two nodes and two edges and
  //  hence the graph diameter ... starts at 2."
  EXPECT_EQ(graph.Diameter(), 2u);
  EXPECT_TRUE(graph.IsCyclic());
  EXPECT_TRUE(graph.IsConnected());
}

TEST(Ac2tGraphTest, RingDiameterEqualsSize) {
  for (int n = 3; n <= 8; ++n) {
    Ac2tGraph ring = MakeRing(Keys(n), Chains(n), 100, 0);
    EXPECT_EQ(ring.Diameter(), static_cast<uint32_t>(n)) << n;
    EXPECT_TRUE(ring.IsCyclic());
    EXPECT_TRUE(ring.IsConnected());
  }
}

TEST(Ac2tGraphTest, PathGraphShapes) {
  // 0 -> 1 -> 2: acyclic, connected, diameter 2.
  Ac2tGraph path(Keys(3),
                 {Ac2tEdge{0, 1, 0, 10}, Ac2tEdge{1, 2, 1, 10}}, 0);
  ASSERT_TRUE(path.Validate().ok());
  EXPECT_EQ(path.Diameter(), 2u);
  EXPECT_FALSE(path.IsCyclic());
  EXPECT_TRUE(path.IsConnected());
}

TEST(Ac2tGraphTest, SingleLeaderFeasibility) {
  // A directed ring is single-leader feasible: removing any one vertex
  // breaks the only cycle.
  Ac2tGraph ring = MakeRing(Keys(4), Chains(4), 100, 0);
  EXPECT_TRUE(ring.FindSingleLeader().has_value());

  // Figure 7a is not: removing any vertex leaves a 2-cycle.
  Ac2tGraph fig7a = MakeFigure7aCyclic(Keys(3), Chains(3), 100, 0);
  EXPECT_FALSE(fig7a.FindSingleLeader().has_value());
  for (uint32_t v = 0; v < 3; ++v) {
    EXPECT_FALSE(fig7a.AcyclicWithoutVertex(v)) << v;
  }
}

TEST(Ac2tGraphTest, Figure7bIsDisconnected) {
  Ac2tGraph fig7b = MakeFigure7bDisconnected(Keys(4), Chains(4), 100, 0);
  ASSERT_TRUE(fig7b.Validate().ok());
  EXPECT_FALSE(fig7b.IsConnected());
  EXPECT_EQ(fig7b.edge_count(), 4u);
  // Each two-party component is a 2-cycle; no single leader exists because
  // the graph minus any vertex still contains the other component's cycle.
  EXPECT_FALSE(fig7b.FindSingleLeader().has_value());
}

TEST(Ac2tGraphTest, DescribeClassifiesShapes) {
  auto keys = Keys(4);
  EXPECT_NE(MakeFigure7bDisconnected(keys, Chains(4), 1, 0)
                .Describe()
                .find("disconnected"),
            std::string::npos);
  EXPECT_NE(MakeRing(Keys(3), Chains(3), 1, 0).Describe().find("cyclic"),
            std::string::npos);
}

// -------------------------------------------------- property-style sweeps

class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, GeneratedGraphsAreValidAndAnalyzable) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.NextBelow(6));
  Ac2tGraph graph =
      MakeRandomGraph(Keys(n), Chains(n), 100, /*extra_edge_prob=*/0.3, &rng,
                      /*timestamp=*/static_cast<TimePoint>(GetParam()));
  ASSERT_TRUE(graph.Validate().ok());
  EXPECT_TRUE(graph.IsConnected());
  // Diameter of a connected digraph with a covering structure is within
  // [1, |E|]; the analysis must terminate and be stable across calls.
  const uint32_t diam = graph.Diameter();
  EXPECT_GE(diam, 1u);
  EXPECT_LE(diam, graph.edge_count());
  EXPECT_EQ(graph.Diameter(), diam);
  // Round trip preserves analysis results.
  auto decoded = Ac2tGraph::Decode(graph.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Diameter(), diam);
  EXPECT_EQ(decoded->IsCyclic(), graph.IsCyclic());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range<uint64_t>(1, 33));

// ------------------------------------------------------------------ ms(D)

TEST(MultisigGraphTest, SignAndVerifyRoundTrip) {
  auto keys = KeyPairs(3);
  Ac2tGraph graph = MakeRing(Keys(3), Chains(3), 100, 5);
  auto ms = SignGraph(graph, keys);
  ASSERT_TRUE(ms.ok()) << ms.status();
  EXPECT_TRUE(VerifyGraphMultisig(graph, *ms));
}

TEST(MultisigGraphTest, SignatureOrderDoesNotMatter) {
  // "The order of participant signatures in ms(D) is not important."
  auto keys = KeyPairs(3);
  Ac2tGraph graph = MakeRing(Keys(3), Chains(3), 100, 5);
  std::vector<crypto::KeyPair> shuffled = {keys[2], keys[0], keys[1]};
  auto ms = SignGraph(graph, shuffled);
  ASSERT_TRUE(ms.ok());
  EXPECT_TRUE(VerifyGraphMultisig(graph, *ms));
}

TEST(MultisigGraphTest, MissingSignerFailsVerification) {
  auto keys = KeyPairs(3);
  Ac2tGraph graph = MakeRing(Keys(3), Chains(3), 100, 5);
  auto partial = SignGraph(graph, {keys[0], keys[1]});
  // Either signing reports the mismatch or verification must fail.
  if (partial.ok()) {
    EXPECT_FALSE(VerifyGraphMultisig(graph, *partial));
  }
}

TEST(MultisigGraphTest, WrongGraphFailsVerification) {
  auto keys = KeyPairs(2);
  Ac2tGraph g1 = MakeTwoPartySwap(Keys(2)[0], Keys(2)[1], 0, 100, 1, 50, 1);
  Ac2tGraph g2 = MakeTwoPartySwap(Keys(2)[0], Keys(2)[1], 0, 100, 1, 50, 2);
  auto ms = SignGraph(g1, keys);
  ASSERT_TRUE(ms.ok());
  EXPECT_TRUE(VerifyGraphMultisig(g1, *ms));
  EXPECT_FALSE(VerifyGraphMultisig(g2, *ms));
}

TEST(MultisigGraphTest, TamperedSignatureDetected) {
  auto keys = KeyPairs(2);
  Ac2tGraph graph = MakeTwoPartySwap(Keys(2)[0], Keys(2)[1], 0, 100, 1, 50, 1);
  auto ms = SignGraph(graph, keys);
  ASSERT_TRUE(ms.ok());
  auto encoded = ms->Encode();
  encoded[encoded.size() / 2] ^= 0x01;
  auto tampered = crypto::Multisignature::Decode(encoded);
  if (tampered.ok()) {
    EXPECT_FALSE(VerifyGraphMultisig(graph, *tampered));
  }
}

}  // namespace
}  // namespace ac3::graph
