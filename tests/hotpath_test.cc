// Unit tests for the engine hot-path machinery introduced by the perf
// overhaul: the midstate PoW hasher, the persistent (copy-on-write)
// ledger maps, skip-pointer ancestry / branch membership, the incremental
// visible-head tracker, and the indexed mempool. Each test checks the fast
// path against the straightforward reference computation.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"
#include "src/chain/pow.h"
#include "src/chain/wallet.h"
#include "src/common/persistent_map.h"
#include "src/common/random.h"
#include "src/core/environment.h"
#include "src/crypto/header_hasher.h"
#include "tests/dispatch_test_util.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

// Disambiguates the vector/span AssembleBlock overloads at empty-candidate
// call sites ({} binds to both).
const std::vector<chain::Transaction> kNoCandidates;

// ---- HeaderHasher ----------------------------------------------------------

chain::BlockHeader RandomHeader(Rng* rng) {
  chain::BlockHeader header;
  header.chain_id = static_cast<chain::ChainId>(rng->NextU64());
  header.height = rng->NextU64() % 100000;
  header.time = static_cast<TimePoint>(rng->NextU64() % 1000000);
  header.difficulty_bits = static_cast<uint32_t>(rng->NextU64() % 20);
  Bytes seed;
  for (int i = 0; i < 32; ++i) {
    seed.push_back(static_cast<uint8_t>(rng->NextU64()));
  }
  header.prev_hash = crypto::Hash256::Of(seed);
  seed.push_back(1);
  header.tx_root = crypto::Hash256::Of(seed);
  seed.push_back(2);
  header.receipt_root = crypto::Hash256::Of(seed);
  return header;
}

TEST(HeaderHasherTest, MidstateMatchesNaiveDoubleHash) {
  Rng rng(314);
  for (int trial = 0; trial < 8; ++trial) {
    chain::BlockHeader header = RandomHeader(&rng);
    uint8_t preimage[chain::BlockHeader::kEncodedSize];
    header.EncodeTo(preimage);
    crypto::HeaderHasher hasher(preimage);
    for (int n = 0; n < 16; ++n) {
      const uint64_t nonce = rng.NextU64();
      header.nonce = nonce;
      EXPECT_EQ(hasher.HashWithNonce(nonce),
                crypto::Hash256::DoubleOf(header.Encode()))
          << "trial " << trial << " nonce " << nonce;
      EXPECT_EQ(hasher.HashWithNonce(nonce), header.Hash());
    }
  }
}

TEST(HeaderHasherTest, SupportsArbitraryPreimageLengths) {
  Rng rng(2718);
  for (size_t len : {8u, 9u, 63u, 64u, 71u, 72u, 100u, 128u, 129u}) {
    Bytes preimage;
    for (size_t i = 0; i < len; ++i) {
      preimage.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    crypto::HeaderHasher hasher(preimage);
    const uint64_t nonce = rng.NextU64();
    Bytes patched = preimage;
    for (int i = 0; i < 8; ++i) {
      patched[len - 8 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(nonce >> (8 * i));
    }
    EXPECT_EQ(hasher.HashWithNonce(nonce), crypto::Hash256::DoubleOf(patched))
        << "preimage length " << len;
  }
}

TEST(MineHeaderTest, ProducesValidPowFromMidstate) {
  Rng rng(55);
  chain::BlockHeader header = RandomHeader(&rng);
  header.difficulty_bits = 8;
  const uint64_t evals = chain::MineHeader(&header, &rng);
  EXPECT_GE(evals, 1u);
  EXPECT_TRUE(chain::CheckProofOfWork(header));
}

TEST(HeaderHasherTest, PairLanesMatchScalarDigests) {
  Rng rng(424242);
  for (int trial = 0; trial < 8; ++trial) {
    chain::BlockHeader header = RandomHeader(&rng);
    uint8_t preimage[chain::BlockHeader::kEncodedSize];
    header.EncodeTo(preimage);
    crypto::HeaderHasher hasher(preimage);
    for (int n = 0; n < 8; ++n) {
      const uint64_t nonce_a = rng.NextU64();
      const uint64_t nonce_b = rng.NextU64();
      crypto::Hash256 pair_a;
      crypto::Hash256 pair_b;
      hasher.HashPairWithNonces(nonce_a, nonce_b, &pair_a, &pair_b);
      EXPECT_EQ(pair_a, hasher.HashWithNonce(nonce_a));
      EXPECT_EQ(pair_b, hasher.HashWithNonce(nonce_b));
      // Scalar calls in between must not perturb later pair calls.
      hasher.HashPairWithNonces(nonce_b, nonce_a, &pair_b, &pair_a);
      EXPECT_EQ(pair_a, hasher.HashWithNonce(nonce_a));
      EXPECT_EQ(pair_b, hasher.HashWithNonce(nonce_b));
    }
  }
}

using ::ac3::testutil::AvailableDispatches;
using ::ac3::testutil::DispatchGuard;

// The batch hasher must agree with the scalar hasher for every batch
// width up to kMaxLanes, on every available dispatch level (this is the
// digest seam the 8-way AVX2 nonce search rides).
TEST(HeaderHasherTest, BatchLanesMatchScalarDigestsOnEveryDispatch) {
  DispatchGuard guard;
  Rng rng(887766);
  for (crypto::Sha256::Dispatch level : AvailableDispatches()) {
    ASSERT_TRUE(crypto::Sha256::SetDispatch(level));
    chain::BlockHeader header = RandomHeader(&rng);
    uint8_t preimage[chain::BlockHeader::kEncodedSize];
    header.EncodeTo(preimage);
    crypto::HeaderHasher hasher(preimage);
    for (size_t n = 1; n <= crypto::Sha256::kMaxLanes; ++n) {
      uint64_t nonces[crypto::Sha256::kMaxLanes];
      crypto::Hash256 batch[crypto::Sha256::kMaxLanes];
      for (size_t lane = 0; lane < n; ++lane) nonces[lane] = rng.NextU64();
      hasher.HashBatchWithNonces(nonces, n, batch);
      for (size_t lane = 0; lane < n; ++lane) {
        EXPECT_EQ(batch[lane], hasher.HashWithNonce(nonces[lane]))
            << "level " << crypto::Sha256::DispatchName(level) << " n " << n
            << " lane " << lane;
      }
    }
  }
}

// The wide search must be observationally identical to the scalar
// oracle on EVERY dispatch level: same ascending visit order from the
// same random start, so the same winning nonce and the same
// visited-nonce count, at every lane offset the winner can land on
// (bits 0..11 sweep winners across both pair lanes and all 8 AVX2
// lanes).
TEST(MineHeaderTest, InterleavedVisitsSameNoncesAsScalar) {
  DispatchGuard guard;
  for (crypto::Sha256::Dispatch level : AvailableDispatches()) {
    ASSERT_TRUE(crypto::Sha256::SetDispatch(level));
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      for (uint32_t bits : {0u, 1u, 4u, 8u, 11u}) {
        Rng scalar_rng(seed * 1000 + bits);
        Rng fast_rng(seed * 1000 + bits);
        chain::BlockHeader scalar_header = RandomHeader(&scalar_rng);
        chain::BlockHeader fast_header = RandomHeader(&fast_rng);
        scalar_header.difficulty_bits = bits;
        fast_header.difficulty_bits = bits;
        const uint64_t scalar_evals =
            chain::MineHeaderScalar(&scalar_header, &scalar_rng);
        const uint64_t fast_evals = chain::MineHeader(&fast_header, &fast_rng);
        EXPECT_EQ(fast_header.nonce, scalar_header.nonce)
            << "level " << crypto::Sha256::DispatchName(level) << " seed "
            << seed << " bits " << bits;
        EXPECT_EQ(fast_evals, scalar_evals)
            << "level " << crypto::Sha256::DispatchName(level) << " seed "
            << seed << " bits " << bits;
        EXPECT_TRUE(chain::CheckProofOfWork(fast_header));
      }
    }
  }
}

// Golden re-pin of the deterministic PoW witness, mirroring the bench's
// --smoke pow parameters (bench_engine_hotpaths RunPow: 4 headers at 12
// bits from Rng seed 99; the committed full-run envelope pins the
// analogous 836367-eval witness at 16 bits). The wide search reproduces
// the scalar count by construction on every dispatch level; running the
// oracle and the wide loop on each available level pins the value
// against the implementations drifting together.
TEST(MineHeaderTest, GoldenEvalCountMatchesBenchWitness) {
  constexpr uint64_t kGoldenEvals = 15254;  // 4 headers, 12 bits, seed 99.
  DispatchGuard guard;
  for (crypto::Sha256::Dispatch level : AvailableDispatches()) {
    ASSERT_TRUE(crypto::Sha256::SetDispatch(level));
    for (const bool interleaved : {false, true}) {
      Rng rng(99);
      uint64_t evals = 0;
      for (uint64_t i = 0; i < 4; ++i) {
        chain::BlockHeader header;
        header.chain_id = 1;
        header.height = i + 1;
        header.time = static_cast<TimePoint>(i * 100);
        header.difficulty_bits = 12;
        evals += interleaved ? chain::MineHeader(&header, &rng)
                             : chain::MineHeaderScalar(&header, &rng);
      }
      EXPECT_EQ(evals, kGoldenEvals)
          << "level " << crypto::Sha256::DispatchName(level)
          << " interleaved=" << interleaved;
    }
  }
}

// The multi-miner batch search must be observationally identical to
// calling MineHeader(headers[i], rng) in index order: one rng draw per
// header, ascending visit order per miner, so the same winning nonces
// and the same per-header eval counts — on every dispatch level, at
// every batch width (1 exercises the degenerate lane split, 16 > 8
// lanes exercises chunking, intermediate widths exercise uneven
// per-miner lane shares).
TEST(MineHeaderTest, BatchVisitsSameNoncesAsSequentialMineHeader) {
  DispatchGuard guard;
  for (crypto::Sha256::Dispatch level : AvailableDispatches()) {
    ASSERT_TRUE(crypto::Sha256::SetDispatch(level));
    for (size_t width : {1u, 2u, 3u, 5u, 8u, 16u}) {
      for (uint32_t bits : {0u, 4u, 9u}) {
        Rng seq_rng(width * 100 + bits);
        Rng batch_rng(width * 100 + bits);
        Rng header_rng(width * 7 + bits);
        std::vector<chain::BlockHeader> seq_headers;
        for (size_t i = 0; i < width; ++i) {
          chain::BlockHeader header = RandomHeader(&header_rng);
          header.difficulty_bits = bits;
          seq_headers.push_back(header);
        }
        std::vector<chain::BlockHeader> batch_headers = seq_headers;

        std::vector<uint64_t> seq_evals;
        for (chain::BlockHeader& header : seq_headers) {
          seq_evals.push_back(chain::MineHeader(&header, &seq_rng));
        }
        std::vector<chain::BlockHeader*> pointers;
        for (chain::BlockHeader& header : batch_headers) {
          pointers.push_back(&header);
        }
        const std::vector<uint64_t> batch_evals = chain::MineHeaderBatch(
            std::span<chain::BlockHeader* const>(pointers), &batch_rng);
        ASSERT_EQ(batch_evals.size(), width);
        for (size_t i = 0; i < width; ++i) {
          EXPECT_EQ(batch_headers[i].nonce, seq_headers[i].nonce)
              << "level " << crypto::Sha256::DispatchName(level) << " width "
              << width << " bits " << bits << " header " << i;
          EXPECT_EQ(batch_evals[i], seq_evals[i])
              << "level " << crypto::Sha256::DispatchName(level) << " width "
              << width << " bits " << bits << " header " << i;
          EXPECT_TRUE(chain::CheckProofOfWork(batch_headers[i]));
        }
      }
    }
  }
}

// The 15254-eval smoke witness (4 headers, 12 bits, Rng seed 99 — see
// GoldenEvalCountMatchesBenchWitness) reproduced through one batched
// multi-miner search instead of four sequential calls.
TEST(MineHeaderTest, GoldenEvalCountMatchesBenchWitnessViaBatch) {
  constexpr uint64_t kGoldenEvals = 15254;
  DispatchGuard guard;
  for (crypto::Sha256::Dispatch level : AvailableDispatches()) {
    ASSERT_TRUE(crypto::Sha256::SetDispatch(level));
    Rng rng(99);
    std::vector<chain::BlockHeader> headers(4);
    for (uint64_t i = 0; i < 4; ++i) {
      headers[i].chain_id = 1;
      headers[i].height = i + 1;
      headers[i].time = static_cast<TimePoint>(i * 100);
      headers[i].difficulty_bits = 12;
    }
    std::vector<chain::BlockHeader*> pointers;
    for (chain::BlockHeader& header : headers) pointers.push_back(&header);
    const std::vector<uint64_t> evals = chain::MineHeaderBatch(
        std::span<chain::BlockHeader* const>(pointers), &rng);
    uint64_t total = 0;
    for (const uint64_t e : evals) total += e;
    EXPECT_EQ(total, kGoldenEvals)
        << "level " << crypto::Sha256::DispatchName(level);
  }
}

// The committed full-run envelope (BENCH_engine_hotpaths.json
// results.pow.evaluations) pins 836367 evals for 16 headers at 16 bits
// from Rng seed 99; the batched search must land on the same witness.
// One dispatch level suffices (the sweep above covers cross-level
// identity); the active level is whatever the environment pinned.
TEST(MineHeaderTest, GoldenFullRunEvalCountMatchesEnvelopeViaBatch) {
  constexpr uint64_t kGoldenEvals = 836367;
  Rng rng(99);
  std::vector<chain::BlockHeader> headers(16);
  for (uint64_t i = 0; i < 16; ++i) {
    headers[i].chain_id = 1;
    headers[i].height = i + 1;
    headers[i].time = static_cast<TimePoint>(i * 100);
    headers[i].difficulty_bits = 16;
  }
  std::vector<chain::BlockHeader*> pointers;
  for (chain::BlockHeader& header : headers) pointers.push_back(&header);
  const std::vector<uint64_t> evals = chain::MineHeaderBatch(
      std::span<chain::BlockHeader* const>(pointers), &rng);
  uint64_t total = 0;
  for (const uint64_t e : evals) total += e;
  EXPECT_EQ(total, kGoldenEvals);
}

// ---- PersistentMap ---------------------------------------------------------

TEST(PersistentMapTest, MatchesStdMapUnderRandomOperations) {
  PersistentMap<uint64_t, uint64_t> fast;
  std::map<uint64_t, uint64_t> reference;
  Rng rng(161803);
  for (int op = 0; op < 4000; ++op) {
    const uint64_t key = rng.NextU64() % 257;  // Forces collisions/erases.
    const uint64_t value = rng.NextU64();
    switch (rng.NextU64() % 3) {
      case 0:
      case 1:  // Insert-heavy mix.
        fast.Put(key, value);
        reference[key] = value;
        break;
      case 2:
        EXPECT_EQ(fast.Erase(key), reference.erase(key) > 0);
        break;
    }
    ASSERT_EQ(fast.size(), reference.size());
  }
  // Lookups agree...
  for (uint64_t key = 0; key < 257; ++key) {
    auto it = reference.find(key);
    const uint64_t* found = fast.Find(key);
    ASSERT_EQ(found != nullptr, it != reference.end()) << key;
    if (found != nullptr) {
      EXPECT_EQ(*found, it->second);
    }
  }
  // ...and iteration is in identical (key) order.
  auto it = reference.begin();
  for (const auto& [key, value] : fast) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second);
    ++it;
  }
  EXPECT_EQ(it, reference.end());
}

TEST(PersistentMapTest, SnapshotsAreIndependent) {
  PersistentMap<int, int> original;
  for (int i = 0; i < 100; ++i) original.Put(i, i * 10);

  PersistentMap<int, int> snapshot = original;  // O(1) copy.
  for (int i = 0; i < 100; i += 2) original.Erase(i);
  original.Put(1000, 1);

  // The snapshot still sees exactly the pre-mutation contents.
  EXPECT_EQ(snapshot.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(snapshot.Find(i), nullptr) << i;
    EXPECT_EQ(*snapshot.Find(i), i * 10);
  }
  EXPECT_EQ(snapshot.Find(1000), nullptr);
  // And the mutated handle sees its own changes.
  EXPECT_EQ(original.size(), 51u);
  EXPECT_EQ(original.Find(2), nullptr);
  ASSERT_NE(original.Find(1000), nullptr);
}

TEST(LedgerStateTest, CopyOnWriteSemantics) {
  testutil::TestChain tc(chain::TestChainParams(),
                         testutil::Fund({crypto::KeyPair::FromSeed(1)
                                             .public_key()},
                                        500));
  const chain::LedgerState& head_state = tc.chain().StateAtHead();
  chain::LedgerState copy = head_state;  // O(1) persistent snapshot.

  chain::Wallet wallet(crypto::KeyPair::FromSeed(1), tc.chain().id());
  auto tx = wallet.BuildTransfer(copy, crypto::KeyPair::FromSeed(2).public_key(),
                                 100, 1, 1);
  ASSERT_TRUE(tx.ok());
  chain::BlockEnv env{tc.chain().id(), 1, 100};
  ASSERT_TRUE(chain::ApplyTransaction(&copy, *tx, env).ok());

  // The head state is untouched by mutations of its copy.
  EXPECT_EQ(head_state.BalanceOf(crypto::KeyPair::FromSeed(1).public_key()),
            500u);
  EXPECT_EQ(copy.BalanceOf(crypto::KeyPair::FromSeed(1).public_key()), 399u);
  EXPECT_EQ(copy.BalanceOf(crypto::KeyPair::FromSeed(2).public_key()), 100u);
}

// ---- ancestry + branch membership ------------------------------------------

TEST(AncestryTest, GetAncestorMatchesParentWalk) {
  testutil::TestChain tc(chain::TestChainParams(), {});
  ASSERT_TRUE(tc.MineEmpty(64).ok());
  const chain::BlockEntry* head = tc.chain().head();
  for (uint64_t target = 0; target <= head->height(); ++target) {
    const chain::BlockEntry* slow = head;
    while (slow->height() > target) slow = slow->parent;
    EXPECT_EQ(tc.chain().GetAncestor(head, target), slow) << target;
  }
  EXPECT_EQ(tc.chain().GetAncestor(head, head->height() + 1), nullptr);
}

TEST(AncestryTest, TxOnBranchDistinguishesForks) {
  const crypto::KeyPair alice = crypto::KeyPair::FromSeed(1);
  testutil::TestChain tc(chain::TestChainParams(),
                         testutil::Fund({alice.public_key()}, 500));
  ASSERT_TRUE(tc.MineEmpty(3).ok());
  const crypto::Hash256 fork_point = tc.chain().head()->hash;

  // Branch A carries the transfer; branch B (same parent) does not.
  chain::Wallet wallet(alice, tc.chain().id());
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(),
                                 crypto::KeyPair::FromSeed(2).public_key(),
                                 50, 1, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tc.MineBlockOn(fork_point, {*tx}).ok());
  const chain::BlockEntry* tip_a = tc.chain().head();
  ASSERT_TRUE(tc.MineBlockOn(fork_point, {}).ok());
  const chain::BlockEntry* tip_b =
      tc.chain().head() == tip_a
          ? nullptr  // Ties keep the first-seen head; find B by walking.
          : tc.chain().head();
  if (tip_b == nullptr) {
    tc.chain().ForEachEntry(
        [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
          (void)hash;
          if (entry.height() == tip_a->height() && &entry != tip_a) {
            tip_b = &entry;
          }
        });
  }
  ASSERT_NE(tip_b, nullptr);

  EXPECT_TRUE(tc.chain().TxOnBranch(*tip_a, tx->Id()));
  EXPECT_FALSE(tc.chain().TxOnBranch(*tip_b, tx->Id()));
  // Genesis coinbase is on every branch; unknown ids on none.
  const crypto::Hash256 genesis_tx_id = tc.chain().genesis_tx().Id();
  EXPECT_TRUE(tc.chain().TxOnBranch(*tip_a, genesis_tx_id));
  EXPECT_TRUE(tc.chain().TxOnBranch(*tip_b, genesis_tx_id));
  EXPECT_FALSE(tc.chain().TxOnBranch(*tip_a, crypto::Hash256()));
}

// ---- batch submission (parallel fork validation) ---------------------------

// SubmitBlocks must be observationally identical to a serial SubmitBlock
// loop over the same sequence — statuses, stored blocks, head movements —
// whatever the thread count. The batch deliberately mixes the serial
// loop's edge cases: fork siblings, a child ordered before its parent, a
// duplicate, an unknown parent, and a validation failure.
TEST(SubmitBlocksTest, BatchMatchesSerialSubmission) {
  const chain::ChainParams params = chain::TestChainParams();
  const crypto::KeyPair alice = crypto::KeyPair::FromSeed(1);
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(2);
  const auto allocations = testutil::Fund({alice.public_key()}, 500);

  chain::Blockchain source(params, allocations);
  Rng rng(31337);
  TimePoint now = 0;
  auto mine_on = [&](const crypto::Hash256& parent,
                     const std::vector<chain::Transaction>& txs) {
    now += 100;
    auto block =
        source.AssembleBlock(parent, txs, miner.public_key(), now, &rng);
    EXPECT_TRUE(block.ok()) << block.status().ToString();
    Status submitted = source.SubmitBlock(*block, now);
    EXPECT_TRUE(submitted.ok()) << submitted.ToString();
    return *block;
  };

  const crypto::Hash256 genesis = source.genesis()->hash;
  const chain::Block base = mine_on(genesis, {});
  chain::Wallet wallet(alice, source.id());
  auto tx = wallet.BuildTransfer(source.Get(base.header.Hash())->state,
                                 miner.public_key(), 50, 1, 1);
  ASSERT_TRUE(tx.ok());
  const chain::Block child1 = mine_on(base.header.Hash(), {*tx});
  const chain::Block child2 = mine_on(child1.header.Hash(), {});
  const chain::Block fork = mine_on(genesis, {});  // Sibling of `base`.

  chain::Block orphan = base;
  orphan.header.prev_hash = crypto::Hash256::OfString("nowhere");

  // A valid unsubmitted block with tampered receipts: unique header hash,
  // fails re-execution equality (receipt merkle root mismatch).
  now += 100;
  auto extra = source.AssembleBlock(child1.header.Hash(), kNoCandidates,
                                    miner.public_key(), now, &rng);
  ASSERT_TRUE(extra.ok());
  chain::Block bad_receipts = *extra;
  bad_receipts.receipts[0].note = "tampered";

  const std::vector<chain::Block> batch = {
      base,          // 0: accepted.
      orphan,        // 1: unknown parent.
      child2,        // 2: parent appears later in the batch -> orphan.
      child1,        // 3: accepted (parent committed at index 0).
      base,          // 4: duplicate -> AlreadyExists.
      bad_receipts,  // 5: VerificationFailed.
      fork,          // 6: accepted fork sibling.
  };

  chain::Blockchain serial_replica(params, allocations);
  int serial_head_moves = 0;
  serial_replica.SubscribeHead([&](const chain::BlockEntry&) {
    ++serial_head_moves;
  });
  std::vector<Status> serial_statuses;
  size_t serial_accepted = 0;
  for (const chain::Block& block : batch) {
    serial_statuses.push_back(serial_replica.SubmitBlock(block, 999));
    if (serial_statuses.back().ok()) ++serial_accepted;
  }

  chain::Blockchain batch_replica(params, allocations);
  int batch_head_moves = 0;
  batch_replica.SubscribeHead([&](const chain::BlockEntry&) {
    ++batch_head_moves;
  });
  const auto result = batch_replica.SubmitBlocks(batch, 999, /*threads=*/4);

  ASSERT_EQ(result.statuses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.statuses[i].code(), serial_statuses[i].code())
        << "block " << i << ": batch '" << result.statuses[i]
        << "' vs serial '" << serial_statuses[i] << "'";
  }
  EXPECT_EQ(result.accepted, serial_accepted);
  EXPECT_EQ(batch_replica.head()->hash, serial_replica.head()->hash);
  EXPECT_EQ(batch_replica.block_count(), serial_replica.block_count());
  EXPECT_EQ(batch_head_moves, serial_head_moves);

  // A second pass over the same batch still matches serial: everything is
  // a duplicate except child2, whose parent landed in pass one.
  const auto again = batch_replica.SubmitBlocks(batch, 1999, /*threads=*/4);
  std::vector<Status> serial_again;
  size_t serial_again_accepted = 0;
  for (const chain::Block& block : batch) {
    serial_again.push_back(serial_replica.SubmitBlock(block, 1999));
    if (serial_again.back().ok()) ++serial_again_accepted;
  }
  EXPECT_EQ(again.accepted, serial_again_accepted);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(again.statuses[i].code(), serial_again[i].code()) << i;
  }
  EXPECT_EQ(batch_replica.head()->hash, serial_replica.head()->hash);
}

// The pure catch-up shape: one linear chain submitted in order. Every
// round resolves exactly one block (each block waits on its predecessor),
// so this exercises the prefix-scan frontier logic end to end.
TEST(SubmitBlocksTest, LinearChainCatchUp) {
  const chain::ChainParams params = chain::TestChainParams();
  const crypto::KeyPair alice = crypto::KeyPair::FromSeed(1);
  const auto allocations = testutil::Fund({alice.public_key()}, 500);
  testutil::TestChain source(params, allocations);
  std::vector<chain::Block> batch;
  ASSERT_TRUE(source.MineEmpty(40).ok());
  for (const chain::BlockEntry* walk = source.chain().head();
       walk->parent != nullptr; walk = walk->parent) {
    batch.push_back(walk->block);
  }
  std::reverse(batch.begin(), batch.end());  // Genesis-outward order.

  chain::Blockchain replica(params, allocations);
  const auto result = replica.SubmitBlocks(batch, 7, /*threads=*/4);
  EXPECT_EQ(result.accepted, batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(result.statuses[i].ok()) << i << ": " << result.statuses[i];
  }
  EXPECT_EQ(replica.head()->hash, source.chain().head()->hash);
  EXPECT_EQ(replica.height(), source.chain().height());
}

// ---- incremental visible head ----------------------------------------------

TEST(VisibleHeadTest, IncrementalMatchesFullScan) {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.block_interval = Milliseconds(60);  // Dense arrivals: many forks.
  core::Environment env(/*seed=*/99);
  chain::MiningConfig mining;
  mining.miner_count = 4;
  mining.max_propagation_delay = Milliseconds(80);
  const chain::ChainId id = env.AddChain(params, {}, mining);
  env.StartMining();
  const chain::Blockchain* chain = env.blockchain(id);
  ASSERT_TRUE(env.sim()
                  ->RunUntilCondition([&]() { return chain->height() >= 80; },
                                      Hours(1))
                  .ok());
  env.StopMining();
  chain::MiningNetwork* miners = env.miners(id);
  ASSERT_GT(chain->block_count(), chain->height());  // Forks happened.

  const TimePoint now = env.sim()->Now();
  for (int miner = 0; miner < mining.miner_count; ++miner) {
    // Incremental == reference at the present...
    EXPECT_EQ(miners->VisibleHead(miner, now),
              miners->VisibleHeadScan(miner, now))
        << "miner " << miner;
    // ...a query into the past falls back to the exact scan...
    const TimePoint past = now / 2;
    EXPECT_EQ(miners->VisibleHead(miner, past),
              miners->VisibleHeadScan(miner, past));
    // ...and the tracker state is unharmed for later queries.
    EXPECT_EQ(miners->VisibleHead(miner, now + 1000),
              miners->VisibleHeadScan(miner, now + 1000));
  }
}

// ---- mempool ---------------------------------------------------------------

chain::Transaction SignedTransfer(uint64_t nonce) {
  chain::Transaction tx;
  tx.type = chain::TxType::kTransfer;
  tx.nonce = nonce;
  tx.SignWith(crypto::KeyPair::FromSeed(1));
  return tx;
}

TEST(MempoolIndexTest, OutOfOrderArrivalsStaySorted) {
  chain::Mempool pool;
  const chain::Transaction t1 = SignedTransfer(1);
  const chain::Transaction t2 = SignedTransfer(2);
  const chain::Transaction t3 = SignedTransfer(3);
  ASSERT_TRUE(pool.Submit(t1, 300).ok());
  ASSERT_TRUE(pool.Submit(t2, 100).ok());  // Arrives out of order.
  ASSERT_TRUE(pool.Submit(t3, 300).ok());  // Ties keep submission order.

  auto candidates = pool.CandidatesAt(300, std::set<crypto::Hash256>{});
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].Id(), t2.Id());
  EXPECT_EQ(candidates[1].Id(), t1.Id());
  EXPECT_EQ(candidates[2].Id(), t3.Id());
  EXPECT_EQ(pool.CandidatesAt(200, std::set<crypto::Hash256>{}).size(), 1u);
}

TEST(MempoolIndexTest, FilterCallbackExcludes) {
  chain::Mempool pool;
  const chain::Transaction t1 = SignedTransfer(1);
  const chain::Transaction t2 = SignedTransfer(2);
  ASSERT_TRUE(pool.Submit(t1, 0).ok());
  ASSERT_TRUE(pool.Submit(t2, 0).ok());
  auto candidates = pool.CandidatesAt(
      10, [&](const crypto::Hash256& id) { return id == t1.Id(); });
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].Id(), t2.Id());
}

TEST(MempoolIndexTest, PruneDropsEntriesAndIdsTogether) {
  chain::Mempool pool;
  std::vector<chain::Transaction> txs;
  for (uint64_t i = 0; i < 10; ++i) {
    txs.push_back(SignedTransfer(i + 1));
    ASSERT_TRUE(pool.Submit(txs.back(), static_cast<TimePoint>(i)).ok());
  }
  std::set<crypto::Hash256> included;
  for (size_t i = 0; i < txs.size(); i += 2) included.insert(txs[i].Id());
  pool.Prune(included);
  EXPECT_EQ(pool.size(), 5u);
  for (size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(pool.Contains(txs[i].Id()), i % 2 == 1) << i;
  }
  // Survivors keep arrival order.
  auto candidates = pool.CandidatesAt(100, std::set<crypto::Hash256>{});
  ASSERT_EQ(candidates.size(), 5u);
  for (size_t i = 0; i + 1 < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].nonce + 2, candidates[i + 1].nonce);
  }
}

}  // namespace
}  // namespace ac3
