// SwapReport unit tests: the atomicity verdict every experiment relies on,
// in isolation — including the subtle cases (stranded contracts after a
// decision, unpublished edges, phase bookkeeping).

#include "src/protocols/swap_report.h"

#include <gtest/gtest.h>

namespace ac3::protocols {
namespace {

EdgeReport Edge(EdgeOutcome outcome, TimePoint settled_at = 100) {
  EdgeReport edge;
  edge.outcome = outcome;
  edge.settled_at = settled_at;
  return edge;
}

TEST(SwapReportTest, AllRedeemedIsAtomic) {
  SwapReport report;
  report.edges = {Edge(EdgeOutcome::kRedeemed), Edge(EdgeOutcome::kRedeemed)};
  EXPECT_TRUE(report.AllRedeemed());
  EXPECT_FALSE(report.AllRefunded());
  EXPECT_FALSE(report.AtomicityViolated());
}

TEST(SwapReportTest, AllRefundedIsAtomic) {
  SwapReport report;
  report.edges = {Edge(EdgeOutcome::kRefunded), Edge(EdgeOutcome::kRefunded)};
  EXPECT_TRUE(report.AllRefunded());
  EXPECT_FALSE(report.AtomicityViolated());
}

TEST(SwapReportTest, MixedRedeemRefundViolates) {
  // The paper's violation: some asset moved while another was returned.
  SwapReport report;
  report.edges = {Edge(EdgeOutcome::kRedeemed), Edge(EdgeOutcome::kRefunded)};
  EXPECT_TRUE(report.AtomicityViolated());
}

TEST(SwapReportTest, RefundWithUnpublishedEdgeIsAtomic) {
  // A declined participant never locked anything: refunding the rest is
  // exactly the all-or-nothing "nothing" branch.
  SwapReport report;
  report.edges = {Edge(EdgeOutcome::kRefunded),
                  Edge(EdgeOutcome::kUnpublished)};
  EXPECT_FALSE(report.AtomicityViolated());
}

TEST(SwapReportTest, RedeemWithUnpublishedEdgeViolates) {
  // A finished run where someone redeemed while a counterparty never even
  // locked: assets moved without the full exchange.
  SwapReport report;
  report.finished = true;
  report.edges = {Edge(EdgeOutcome::kRedeemed),
                  Edge(EdgeOutcome::kUnpublished)};
  EXPECT_TRUE(report.AtomicityViolated());
}

TEST(SwapReportTest, StrandedAfterCommitViolates) {
  // A commit decision was reached but one published contract never settled
  // by the end of the run — the commitment obligation is unmet.
  SwapReport report;
  report.finished = true;
  report.committed = true;
  report.edges = {Edge(EdgeOutcome::kRedeemed),
                  Edge(EdgeOutcome::kPublished, /*settled_at=*/-1)};
  EXPECT_TRUE(report.AtomicityViolated());
}

TEST(SwapReportTest, PendingRunIsNotYetAViolation) {
  // Mid-run (not finished): published-but-unsettled contracts are simply
  // in flight.
  SwapReport report;
  report.finished = false;
  report.edges = {Edge(EdgeOutcome::kRedeemed),
                  Edge(EdgeOutcome::kPublished, /*settled_at=*/-1)};
  EXPECT_FALSE(report.AtomicityViolated());
}

TEST(SwapReportTest, CountsAndLatency) {
  SwapReport report;
  report.start_time = 50;
  report.end_time = 450;
  report.edges = {Edge(EdgeOutcome::kRedeemed), Edge(EdgeOutcome::kRedeemed),
                  Edge(EdgeOutcome::kRefunded)};
  EXPECT_EQ(report.CountOutcome(EdgeOutcome::kRedeemed), 2);
  EXPECT_EQ(report.CountOutcome(EdgeOutcome::kRefunded), 1);
  EXPECT_EQ(report.CountOutcome(EdgeOutcome::kUnpublished), 0);
  EXPECT_EQ(report.Latency(), 400);
}

TEST(SwapReportTest, PhasesAccumulateInOrder) {
  SwapReport report;
  report.MarkPhase("a", 10);
  report.MarkPhase("b", 20);
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].first, "a");
  EXPECT_EQ(report.phases[1].second, 20);
}

TEST(SwapReportTest, SummaryMentionsVerdict) {
  SwapReport report;
  report.protocol = "AC3WN";
  report.finished = true;
  report.committed = true;
  report.edges = {Edge(EdgeOutcome::kRedeemed)};
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("AC3WN"), std::string::npos);
  EXPECT_NE(summary.find("committed"), std::string::npos);

  report.edges.push_back(Edge(EdgeOutcome::kRefunded));
  EXPECT_NE(report.Summary().find("VIOLATED"), std::string::npos);
}

TEST(SwapReportTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(EdgeOutcomeName(EdgeOutcome::kUnpublished), "unpublished");
  EXPECT_STREQ(EdgeOutcomeName(EdgeOutcome::kPublished), "stranded");
  EXPECT_STREQ(EdgeOutcomeName(EdgeOutcome::kRedeemed), "redeemed");
  EXPECT_STREQ(EdgeOutcomeName(EdgeOutcome::kRefunded), "refunded");
}

}  // namespace
}  // namespace ac3::protocols
