// QuorumCommit engine tests: the 3PC-style phase machine
// (prepare/pre-commit/commit), quorum counting, the epoch-takeover
// recovery path, the n = 2 lone-survivor boundary, deterministic
// crash-at-each-phase schedules across every topology family, and a
// workload-driven end-to-end run with a mid-run coordinator crash.

#include "src/protocols/quorum_commit.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/graph/ac2t_graph.h"
#include "src/runner/sweep_runner.h"
#include "src/sim/workload.h"
#include "tests/test_util.h"

namespace ac3::protocols {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

constexpr TimePoint kDeadline = Minutes(10);

QuorumConfig FastConfig() {
  QuorumConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(12);
  config.takeover_timeout = Seconds(4);
  return config;
}

bool HasPhase(const SwapReport& report, const std::string& name) {
  for (const auto& [phase, at] : report.phases) {
    if (phase == name) return true;
  }
  return false;
}

/// Index of the first occurrence of `name`, or -1 — ordering assertions.
int PhaseIndex(const SwapReport& report, const std::string& name) {
  for (size_t i = 0; i < report.phases.size(); ++i) {
    if (report.phases[i].first == name) return static_cast<int>(i);
  }
  return -1;
}

SwapWorldOptions RingWorldOptions(int n) {
  SwapWorldOptions options;
  options.participants = n;
  options.asset_chains = n < 4 ? n : 4;
  options.witness_chain = false;
  return options;
}

graph::Ac2tGraph RingGraph(SwapWorld* world, int n) {
  return runner::RingOverWorld(world, n, /*amount=*/100);
}

// ---- the fault-free phase machine -----------------------------------------

TEST(QuorumCommitTest, RingHappyPathWalksPrepramblePreCommitCommit) {
  SwapWorld world(RingWorldOptions(4));
  world.StartMining();
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 4),
                            world.all_participants(), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_FALSE(report->AtomicityViolated());
  EXPECT_EQ(engine.epoch(), 0u);
  ASSERT_TRUE(engine.decision_tag().has_value());
  EXPECT_EQ(*engine.decision_tag(), crypto::CommitmentTag::kRedeem);

  // Phase order pins the 3PC shape: every contract publicly recognized,
  // then the pre-commit round, then the quorum-signed decision.
  const int prepared = PhaseIndex(*report, "contracts_published");
  const int precommit = PhaseIndex(*report, "precommit_round_started");
  const int decided = PhaseIndex(*report, "quorum_commit_decided");
  ASSERT_GE(prepared, 0);
  ASSERT_GE(precommit, 0);
  ASSERT_GE(decided, 0);
  EXPECT_LT(prepared, precommit);
  EXPECT_LT(precommit, decided);
}

TEST(QuorumCommitTest, QuorumIsAStrictMajority) {
  for (int n = 2; n <= 5; ++n) {
    SwapWorld world(RingWorldOptions(n));
    QuorumCommitEngine engine(world.env(), RingGraph(&world, n),
                              world.all_participants(), FastConfig());
    EXPECT_EQ(engine.quorum(), n / 2 + 1) << "n=" << n;
  }
}

TEST(QuorumCommitTest, DeclineToPublishDrivesTheAbortVerdict) {
  SwapWorld world(RingWorldOptions(4));
  world.StartMining();
  world.participant(1)->behavior().decline_publish = true;
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 4),
                            world.all_participants(), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->aborted);
  EXPECT_TRUE(HasPhase(*report, "quorum_abort_decided"));
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRefunded), 3);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kUnpublished), 1);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(QuorumCommitTest, RequestAbortRefundsEverything) {
  SwapWorld world(RingWorldOptions(4));
  world.StartMining();
  QuorumConfig config = FastConfig();
  config.request_abort = true;
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 4),
                            world.all_participants(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aborted);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 0);
  EXPECT_FALSE(report->AtomicityViolated());
  ASSERT_TRUE(engine.decision_tag().has_value());
  EXPECT_EQ(*engine.decision_tag(), crypto::CommitmentTag::kRefund);
}

// ---- coordinator crash + recovery takeover --------------------------------

TEST(QuorumCommitTest, CoordinatorCrashAtPrepareRecoversViaTakeover) {
  SwapWorld world(RingWorldOptions(4));
  world.StartMining();
  QuorumConfig config = FastConfig();
  config.coordinator_crash.phase = CoordinatorCrashPhase::kAtPrepare;
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 4),
                            world.all_participants(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kPublished), 0);
  EXPECT_FALSE(report->AtomicityViolated());
  // Vertex 1 is the lowest live successor, so the takeover lands on the
  // first epoch it coordinates.
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_TRUE(HasPhase(*report, "coordinator_crash_at_prepare"));
  EXPECT_TRUE(HasPhase(*report, "epoch_1_takeover"));
}

TEST(QuorumCommitTest, CoordinatorCrashAtCommitResumesPreCommittedVerdict) {
  SwapWorld world(RingWorldOptions(4));
  world.StartMining();
  QuorumConfig config = FastConfig();
  config.coordinator_crash.phase = CoordinatorCrashPhase::kAtCommit;
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 4),
                            world.all_participants(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_FALSE(report->AtomicityViolated());
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kPublished), 0);
  EXPECT_GE(engine.epoch(), 1u);
  // The crash lands after the pre-commit round replicated the verdict, so
  // the recovering coordinator RESUMES it rather than choosing afresh.
  const int precommit = PhaseIndex(*report, "precommit_round_started");
  const int crash = PhaseIndex(*report, "coordinator_crash_at_commit");
  const int takeover = PhaseIndex(*report, "epoch_1_takeover");
  const int decided = PhaseIndex(*report, "quorum_commit_decided");
  ASSERT_GE(precommit, 0);
  ASSERT_GE(crash, 0);
  ASSERT_GE(takeover, 0);
  ASSERT_GE(decided, 0);
  EXPECT_LT(precommit, crash);
  EXPECT_LT(crash, takeover);
  EXPECT_LT(takeover, decided);
}

TEST(QuorumCommitTest, LateRecoveryBeforeTakeoverKeepsEpochZero) {
  SwapWorld world(RingWorldOptions(4));
  world.StartMining();
  QuorumConfig config = FastConfig();
  config.coordinator_crash.phase = CoordinatorCrashPhase::kAtPrepare;
  config.coordinator_crash.recover_after = Seconds(1);
  config.takeover_timeout = Seconds(30);  // Recovery wins the race.
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 4),
                            world.all_participants(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(engine.epoch(), 0u);
  EXPECT_TRUE(HasPhase(*report, "coordinator_crash_at_prepare"));
  EXPECT_FALSE(HasPhase(*report, "epoch_1_takeover"));
}

// Majority quorums tolerate a crash only for n >= 3: with n = 2 the lone
// survivor is below quorum and must block (the correct, safe behavior).
TEST(QuorumCommitTest, TwoPartyLoneSurvivorBlocksBelowQuorum) {
  SwapWorld world(RingWorldOptions(2));
  world.StartMining();
  QuorumConfig config = FastConfig();
  config.coordinator_crash.phase = CoordinatorCrashPhase::kAtPrepare;
  QuorumCommitEngine engine(world.env(), RingGraph(&world, 2),
                            world.all_participants(), config);
  auto report = engine.Run(Seconds(45));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->finished);
  EXPECT_FALSE(engine.decision_tag().has_value());
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kPublished), 2);
  EXPECT_FALSE(report->AtomicityViolated());
}

// ---- crash-at-each-phase across every topology family ---------------------

TEST(QuorumTopologySweep, CoordinatorCrashCommitsOnEveryFamily) {
  runner::SweepGridConfig grid;
  grid.deadline = Minutes(10);
  for (runner::Topology topology :
       {runner::Topology::kRing, runner::Topology::kPath,
        runner::Topology::kStar, runner::Topology::kComplete,
        runner::Topology::kRandomFeasible, runner::Topology::kFig7aCyclic,
        runner::Topology::kFig7bDisconnected}) {
    for (runner::FailureMode mode :
         {runner::FailureMode::kCrashCoordinatorAtPrepare,
          runner::FailureMode::kCrashCoordinatorAtCommit}) {
      runner::SweepPoint point;
      point.protocol = runner::Protocol::kQuorum;
      point.topology = topology;
      point.size = 4;
      point.failure = mode;
      point.seed = 1101;
      auto report = runner::RunSwapReport(grid, point);
      const std::string cell = std::string(runner::TopologyName(topology)) +
                               "/" + runner::FailureModeName(mode);
      ASSERT_TRUE(report.ok()) << cell << ": " << report.status();
      EXPECT_TRUE(report->finished) << cell;
      EXPECT_TRUE(report->committed) << cell;
      EXPECT_FALSE(report->AtomicityViolated()) << cell;
      EXPECT_EQ(report->CountOutcome(EdgeOutcome::kPublished), 0) << cell;
      EXPECT_TRUE(HasPhase(
          *report, mode == runner::FailureMode::kCrashCoordinatorAtPrepare
                       ? "coordinator_crash_at_prepare"
                       : "coordinator_crash_at_commit"))
          << cell;
    }
  }
}

// ---- seed-replay determinism ----------------------------------------------

TEST(QuorumCommitTest, CrashScheduleReplaysBitForBit) {
  runner::SweepGridConfig grid;
  grid.deadline = Minutes(10);
  runner::SweepPoint point;
  point.protocol = runner::Protocol::kQuorum;
  point.topology = runner::Topology::kRing;
  point.size = 4;
  point.failure = runner::FailureMode::kCrashCoordinatorAtCommit;
  point.seed = 2024;
  const std::string first =
      runner::OutcomeToJson(runner::RunSwapPoint(grid, point)).Serialize();
  const std::string second =
      runner::OutcomeToJson(runner::RunSwapPoint(grid, point)).Serialize();
  EXPECT_EQ(first, second);
}

// ---- workload-driven end-to-end traffic -----------------------------------

chain::Transaction FakeGenesis(std::vector<chain::TxOutput> allocations,
                               chain::ChainId id) {
  chain::Transaction tx;
  tx.type = chain::TxType::kCoinbase;
  tx.chain_id = id;
  tx.outputs = std::move(allocations);
  tx.nonce = 0;
  return tx;
}

// The open-world generator supplies the swap schedule (chain pairs in
// arrival order); each record is realized as a two-party quorum swap
// between scenario participants. The middle swap's coordinator crashes at
// prepare and recovers — with n = 2 no takeover is possible, so the run
// exercises the late-recovery path under generated traffic.
TEST(QuorumWorkloadE2E, GeneratedSwapTrafficCompletesWithMidRunCrash) {
  sim::WorkloadConfig wcfg;
  wcfg.chains = 2;
  wcfg.arrivals_per_sec = 2.0;
  sim::WorkloadGenerator gen(wcfg, /*seed=*/77);
  for (size_t c = 0; c < wcfg.chains; ++c) {
    gen.BindChain(c, static_cast<chain::ChainId>(c),
                  FakeGenesis(gen.GenesisAllocations(c),
                              static_cast<chain::ChainId>(c)));
  }
  sim::WorkloadBatch batch = gen.NextBatch(Seconds(5));
  ASSERT_GE(batch.swaps.size(), 3u);

  SwapWorldOptions options;
  options.participants = 3;
  options.asset_chains = 2;
  options.witness_chain = false;
  options.seed = 4242;
  SwapWorld world(options);
  world.StartMining();

  // Engines stay alive until the end: a completed engine's in-flight
  // messages may still execute while a later swap pumps the simulation.
  std::vector<std::unique_ptr<QuorumCommitEngine>> engines;
  for (size_t i = 0; i < 3; ++i) {
    const sim::SwapRecord& record = batch.swaps[i];
    Participant* a = world.participant(static_cast<int>(i % 3));
    Participant* b = world.participant(static_cast<int>((i + 1) % 3));
    graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
        a->pk(), b->pk(),
        world.asset_chain(static_cast<int>(record.chain_a)), 120,
        world.asset_chain(static_cast<int>(record.chain_b)), 80,
        world.env()->sim()->Now());
    QuorumConfig config = FastConfig();
    if (i == 1) {
      config.coordinator_crash.phase = CoordinatorCrashPhase::kAtPrepare;
      config.coordinator_crash.recover_after = Seconds(6);
      config.takeover_timeout = Seconds(60);
    }
    engines.push_back(std::make_unique<QuorumCommitEngine>(
        world.env(), std::move(graph), std::vector<Participant*>{a, b},
        config));
    auto report = engines.back()->Run(world.env()->sim()->Now() + Minutes(5));
    ASSERT_TRUE(report.ok()) << "swap " << i << ": " << report.status();
    EXPECT_TRUE(report->finished) << "swap " << i;
    EXPECT_TRUE(report->committed) << "swap " << i;
    EXPECT_FALSE(report->AtomicityViolated()) << "swap " << i;
    if (i == 1) {
      EXPECT_TRUE(HasPhase(*report, "coordinator_crash_at_prepare"));
    }
  }
}

}  // namespace
}  // namespace ac3::protocols
