// Property sweep: EVERY way of tampering with Section 4.3 header-chain
// evidence must be caught by VerifyHeaderChainEvidence. One valid evidence
// object is built per seed, one mutation per tamper mode is applied, and
// verification must flip from OK to failure (sanity: the untampered object
// verifies).

#include <gtest/gtest.h>

#include <ostream>

#include "src/contracts/evidence.h"
#include "src/contracts/evidence_builder.h"
#include "src/chain/wallet.h"
#include "tests/test_util.h"

namespace ac3::contracts {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(51);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(52);

enum class Tamper {
  kNone,                  ///< Control: must verify.
  kDropFirstHeader,       ///< Evidence no longer extends the checkpoint.
  kDropMiddleHeader,      ///< Linkage breaks inside the chain.
  kFlipHeaderNonce,       ///< PoW of one header becomes invalid.
  kFlipLeafByte,          ///< Merkle proof no longer binds the leaf.
  kWrongTargetIndex,      ///< Proof checked against the wrong header.
  kFlipLeafFamily,        ///< Tx leaf presented as receipt (wrong root).
  kTruncateProof,         ///< Proof path shortened.
  kRaiseMinConfirmations, ///< Honest evidence, but too shallow.
};

struct Case {
  Tamper tamper;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    static const char* names[] = {
        "none",         "drop-first",   "drop-middle",
        "flip-nonce",   "flip-leaf",    "wrong-index",
        "flip-family",  "trunc-proof",  "raise-minconf"};
    return os << names[static_cast<int>(c.tamper)] << "/seed" << c.seed;
  }
};

class EvidenceTamperTest : public ::testing::TestWithParam<Case> {};

TEST_P(EvidenceTamperTest, TamperedEvidenceRejected) {
  const Case& c = GetParam();

  // A fresh chain with the transaction of interest buried at depth 4.
  testutil::TestChain world(
      chain::TestChainParams(),
      testutil::Fund({kAlice.public_key(), kBob.public_key()}, 2000), c.seed);
  chain::Wallet alice(kAlice, world.chain().id());
  auto tx = alice.BuildTransfer(world.chain().StateAtHead(),
                                kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(world.MineTxToDepth(*tx, 4).ok());

  auto built = BuildTxEvidence(world.chain(), world.chain().genesis()->hash,
                               tx->Id());
  ASSERT_TRUE(built.ok());
  HeaderChainEvidence evidence = *built;
  const chain::BlockHeader checkpoint = world.chain().genesis()->block.header;
  const uint32_t bits = world.chain().params().difficulty_bits;
  uint32_t min_confirmations = 3;

  switch (c.tamper) {
    case Tamper::kNone:
      break;
    case Tamper::kDropFirstHeader:
      evidence.headers.erase(evidence.headers.begin());
      if (evidence.target_index > 0) evidence.target_index -= 1;
      break;
    case Tamper::kDropMiddleHeader:
      ASSERT_GE(evidence.headers.size(), 3u);
      evidence.headers.erase(evidence.headers.begin() + 2);
      break;
    case Tamper::kFlipHeaderNonce:
      evidence.headers[1].nonce ^= 1;
      break;
    case Tamper::kFlipLeafByte:
      evidence.leaf[evidence.leaf.size() / 2] ^= 0x01;
      break;
    case Tamper::kWrongTargetIndex:
      evidence.target_index += 1;
      ASSERT_LT(evidence.target_index, evidence.headers.size());
      break;
    case Tamper::kFlipLeafFamily:
      evidence.leaf_is_receipt = !evidence.leaf_is_receipt;
      break;
    case Tamper::kTruncateProof:
      ASSERT_FALSE(evidence.proof.path.empty());
      evidence.proof.path.pop_back();
      break;
    case Tamper::kRaiseMinConfirmations:
      min_confirmations = evidence.ConfirmationsShown() + 1;
      break;
  }

  Status verified = VerifyHeaderChainEvidence(checkpoint, bits, evidence,
                                              min_confirmations);
  if (c.tamper == Tamper::kNone) {
    EXPECT_TRUE(verified.ok()) << GetParam() << ": " << verified;
  } else {
    EXPECT_FALSE(verified.ok()) << GetParam() << " must be rejected";
  }

  // Encode/decode round trip does not launder tampering.
  auto decoded = HeaderChainEvidence::Decode(evidence.Encode());
  if (decoded.ok()) {
    Status reverified = VerifyHeaderChainEvidence(checkpoint, bits, *decoded,
                                                  min_confirmations);
    EXPECT_EQ(reverified.ok(), verified.ok()) << GetParam();
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> out;
  for (Tamper tamper :
       {Tamper::kNone, Tamper::kDropFirstHeader, Tamper::kDropMiddleHeader,
        Tamper::kFlipHeaderNonce, Tamper::kFlipLeafByte,
        Tamper::kWrongTargetIndex, Tamper::kFlipLeafFamily,
        Tamper::kTruncateProof, Tamper::kRaiseMinConfirmations}) {
    for (uint64_t seed : {601ull, 602ull, 603ull}) {
      out.push_back(Case{tamper, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvidenceTamperTest,
                         ::testing::ValuesIn(AllCases()));

}  // namespace
}  // namespace ac3::contracts
