// Unit tests for src/common: Status/Result, byte codec, RNG, sim time,
// and the shared WorkerPool fan-out primitive.

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/worker_pool.h"

namespace ac3 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kVerificationFailed),
               "VerificationFailed");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleOfPositive(int x) {
  AC3_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  AC3_ASSIGN_OR_RETURN(int w, ParsePositive(v * 2));
  return w;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = DoubleOfPositive(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  Result<int> err = DoubleOfPositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = ToHex(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = FromHex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_FALSE(FromHex("abc").ok());
}

TEST(BytesTest, HexRejectsNonHexChars) {
  EXPECT_FALSE(FromHex("zz").ok());
}

TEST(BytesTest, HexAcceptsUppercase) {
  auto r = FromHex("ABCD");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToHex(*r), "abcd");
}

TEST(ByteCodecTest, RoundTripAllTypes) {
  ByteWriter w;
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0x789abcde);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutBytes({1, 2, 3});
  w.PutString("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0x12);
  EXPECT_EQ(r.GetU16().value(), 0x3456);
  EXPECT_EQ(r.GetU32().value(), 0x789abcdeu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI64().value(), -42);
  EXPECT_EQ(r.GetBytes().value(), Bytes({1, 2, 3}));
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteCodecTest, UnderrunReturnsOutOfRange) {
  ByteWriter w;
  w.PutU8(7);
  ByteReader r(w.bytes());
  ASSERT_TRUE(r.GetU8().ok());
  auto fail = r.GetU32();
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kOutOfRange);
}

TEST(ByteCodecTest, EncodingIsLittleEndian) {
  ByteWriter w;
  w.PutU32(0x01020304);
  EXPECT_EQ(w.bytes(), Bytes({0x04, 0x03, 0x02, 0x01}));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextInRange(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(600.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 600.0, 25.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, NextBytesLengthAndDeterminism) {
  Rng a(21), b(21);
  Bytes x = a.NextBytes(37);
  Bytes y = b.NextBytes(37);
  EXPECT_EQ(x.size(), 37u);
  EXPECT_EQ(x, y);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream should not equal the parent's continued stream.
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(2), 2000);
  EXPECT_EQ(Minutes(3), 180000);
  EXPECT_EQ(Hours(1), 3600000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(5)), 5.0);
}

// ---- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, ResolveThreadsPolicy) {
  EXPECT_EQ(common::WorkerPool::ResolveThreads(1), 1);
  EXPECT_EQ(common::WorkerPool::ResolveThreads(7), 7);
  // hardware_concurrency() may legally report 0; the resolved count must
  // still be a usable pool width.
  EXPECT_GE(common::WorkerPool::ResolveThreads(0), 1);
  EXPECT_GE(common::WorkerPool::ResolveThreads(-3), 1);
  EXPECT_GE(common::WorkerPool(0).threads(), 1);
}

TEST(WorkerPoolTest, CoversEveryIndexExactlyOnceAcrossRounds) {
  for (int threads : {1, 2, 5}) {
    common::WorkerPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    // Several rounds on one pool, including widths that grow (exercising
    // the gang rebuild) and degenerate widths 0 and 1.
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{64}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
      }
    }
  }
}

TEST(WorkerPoolTest, RethrowsTaskExceptionOnCaller) {
  // A throwing task must not escape a worker thread (std::terminate);
  // the first exception surfaces on the calling thread instead — for the
  // inline 1-thread round and the parallel round alike.
  for (int threads : {1, 4}) {
    common::WorkerPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(32,
                                  [](size_t i) {
                                    if (i == 17) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
    // The pool survives a failed round and runs clean ones afterwards.
    std::atomic<int> sum{0};
    pool.ParallelFor(10, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(WorkerPoolTest, StopsClaimingAfterFailure) {
  // Indices claimed after the failure flag is raised must not run: with
  // one worker lane (2 threads) a failure at the first index keeps the
  // executed count well below n.
  common::WorkerPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.ParallelFor(10000,
                                [&](size_t) {
                                  executed.fetch_add(
                                      1, std::memory_order_relaxed);
                                  throw std::runtime_error("first");
                                }),
               std::runtime_error);
  EXPECT_LT(executed.load(), 10000);
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel saved = Logger::level();
  Logger::set_level(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  // Should be filtered (no crash, no output assertions needed).
  AC3_LOG(kDebug) << "hidden";
  AC3_LOG(kError) << "visible in stderr";
  Logger::set_level(saved);
}

}  // namespace
}  // namespace ac3
