// Mempool tests: FIFO candidate ordering, arrival-time visibility (a
// transaction gossiped at t is not minable before t), pruning, and the
// interaction with block capacity via CandidatesAt.

#include "src/chain/mempool.h"

#include <span>

#include <gtest/gtest.h>

#include "src/chain/wallet.h"
#include "tests/test_util.h"

namespace ac3::chain {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(81);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(82);

class MempoolTest : public ::testing::Test {
 protected:
  // Many small outputs so independent transfers never compete for inputs
  // (each build reserves what it spends).
  static std::vector<TxOutput> ManyOutputs() {
    std::vector<TxOutput> out;
    for (int i = 0; i < 80; ++i) {
      out.push_back(TxOutput{100, kAlice.public_key()});
    }
    return out;
  }

  MempoolTest()
      : world_(TestChainParams(), ManyOutputs(), /*seed=*/601),
        alice_(kAlice, world_.chain().id()) {}

  Transaction MakeTransfer(uint64_t nonce) {
    auto tx = alice_.BuildTransfer(world_.chain().StateAtHead(),
                                   kBob.public_key(), 10, 1, nonce);
    EXPECT_TRUE(tx.ok()) << tx.status();
    return *tx;
  }

  testutil::TestChain world_;
  Wallet alice_;
  Mempool pool_;
  std::set<crypto::Hash256> none_;
};

TEST_F(MempoolTest, CandidatesComeOutInArrivalOrder) {
  Transaction t1 = MakeTransfer(1);
  Transaction t2 = MakeTransfer(2);
  Transaction t3 = MakeTransfer(3);
  ASSERT_TRUE(pool_.Submit(t2, /*arrival=*/10).ok());
  ASSERT_TRUE(pool_.Submit(t1, /*arrival=*/20).ok());
  ASSERT_TRUE(pool_.Submit(t3, /*arrival=*/30).ok());
  auto candidates = pool_.CandidatesAt(/*now=*/100, none_);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].Id(), t2.Id());
  EXPECT_EQ(candidates[1].Id(), t1.Id());
  EXPECT_EQ(candidates[2].Id(), t3.Id());
}

TEST_F(MempoolTest, FutureArrivalsAreInvisible) {
  Transaction tx = MakeTransfer(1);
  ASSERT_TRUE(pool_.Submit(tx, /*arrival=*/500).ok());
  EXPECT_TRUE(pool_.CandidatesAt(/*now=*/499, none_).empty());
  EXPECT_EQ(pool_.CandidatesAt(/*now=*/500, none_).size(), 1u);
}

TEST_F(MempoolTest, DuplicateSubmissionRejectedButHarmless) {
  Transaction tx = MakeTransfer(1);
  ASSERT_TRUE(pool_.Submit(tx, 0).ok());
  Status again = pool_.Submit(tx, 5);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(pool_.size(), 1u);
}

TEST_F(MempoolTest, IncludedTransactionsAreFiltered) {
  Transaction t1 = MakeTransfer(1);
  Transaction t2 = MakeTransfer(2);
  ASSERT_TRUE(pool_.Submit(t1, 0).ok());
  ASSERT_TRUE(pool_.Submit(t2, 0).ok());
  std::set<crypto::Hash256> included{t1.Id()};
  auto candidates = pool_.CandidatesAt(100, included);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].Id(), t2.Id());
}

TEST_F(MempoolTest, PruneDropsEntriesPermanently) {
  Transaction t1 = MakeTransfer(1);
  Transaction t2 = MakeTransfer(2);
  ASSERT_TRUE(pool_.Submit(t1, 0).ok());
  ASSERT_TRUE(pool_.Submit(t2, 0).ok());
  pool_.Prune({t1.Id()});
  EXPECT_EQ(pool_.size(), 1u);
  EXPECT_FALSE(pool_.Contains(t1.Id()));
  EXPECT_TRUE(pool_.Contains(t2.Id()));
  auto candidates = pool_.CandidatesAt(100, none_);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].Id(), t2.Id());
}

TEST_F(MempoolTest, CapacityIsEnforcedByBlockAssemblyNotThePool) {
  // The pool returns every visible candidate; AssembleBlock applies the
  // per-block cap. Verify the division of labor end to end.
  const size_t capacity = world_.chain().params().max_block_txs;
  std::vector<Transaction> batch;
  for (size_t i = 0; i < capacity + 5; ++i) {
    Transaction tx = MakeTransfer(static_cast<uint64_t>(i + 1));
    ASSERT_TRUE(pool_.Submit(tx, 0).ok());
    batch.push_back(tx);
  }
  auto candidates = pool_.CandidatesAt(100, none_);
  EXPECT_EQ(candidates.size(), capacity + 5);
  Rng rng(1);
  auto block = world_.chain().AssembleBlock(world_.chain().head()->hash,
                                            candidates,
                                            kAlice.public_key(), 100, &rng);
  ASSERT_TRUE(block.ok());
  // +1 coinbase; the overflow stays pooled for the next block.
  EXPECT_LE(block->txs.size(), capacity + 1);
}

// ---------------------------------------------- batched ingestion

TEST_F(MempoolTest, SubmitBatchMatchesSerialSubmit) {
  std::vector<Transaction> batch;
  for (uint64_t i = 1; i <= 20; ++i) batch.push_back(MakeTransfer(i));

  Mempool serial;
  for (const Transaction& tx : batch) {
    ASSERT_TRUE(serial.Submit(tx, /*arrival=*/40).ok());
  }
  Mempool batched;
  auto result =
      batched.SubmitBatch(std::span<const Transaction>(batch), /*arrival=*/40);
  EXPECT_EQ(result.accepted, batch.size());
  ASSERT_EQ(result.statuses.size(), batch.size());
  for (const Status& status : result.statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(batched.size(), serial.size());
  auto serial_candidates = serial.CandidatesAt(100, none_);
  auto batched_candidates = batched.CandidatesAt(100, none_);
  ASSERT_EQ(batched_candidates.size(), serial_candidates.size());
  for (size_t i = 0; i < serial_candidates.size(); ++i) {
    EXPECT_EQ(batched_candidates[i].Id(), serial_candidates[i].Id());
  }
}

TEST_F(MempoolTest, SubmitBatchRejectsDuplicateInsideBatch) {
  Transaction t1 = MakeTransfer(1);
  Transaction t2 = MakeTransfer(2);
  std::vector<Transaction> batch{t1, t2, t1};
  auto result = pool_.SubmitBatch(std::span<const Transaction>(batch), 10);
  EXPECT_EQ(result.accepted, 2u);
  ASSERT_EQ(result.statuses.size(), 3u);
  EXPECT_TRUE(result.statuses[0].ok());
  EXPECT_TRUE(result.statuses[1].ok());
  EXPECT_FALSE(result.statuses[2].ok());
  EXPECT_EQ(pool_.size(), 2u);
}

TEST_F(MempoolTest, SubmitBatchRejectsCrossBatchDuplicate) {
  Transaction t1 = MakeTransfer(1);
  ASSERT_TRUE(pool_.Submit(t1, 0).ok());
  Transaction t2 = MakeTransfer(2);
  std::vector<Transaction> batch{t1, t2};
  auto result = pool_.SubmitBatch(std::span<const Transaction>(batch), 10);
  EXPECT_EQ(result.accepted, 1u);
  EXPECT_FALSE(result.statuses[0].ok());
  EXPECT_TRUE(result.statuses[1].ok());
  EXPECT_EQ(pool_.size(), 2u);
  // The duplicate kept its original (earlier) arrival.
  auto candidates = pool_.CandidatesAt(100, none_);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].Id(), t1.Id());
}

TEST_F(MempoolTest, SubmitBatchKeepsArrivalOrderWhenBatchArrivesEarlier) {
  // A batch whose arrival predates the pool tail takes the non-monotone
  // path; visibility ordering must still be arrival-sorted.
  Transaction late = MakeTransfer(1);
  ASSERT_TRUE(pool_.Submit(late, /*arrival=*/100).ok());
  std::vector<Transaction> batch{MakeTransfer(2), MakeTransfer(3)};
  auto result = pool_.SubmitBatch(std::span<const Transaction>(batch),
                                  /*arrival=*/50);
  EXPECT_EQ(result.accepted, 2u);
  auto candidates = pool_.CandidatesAt(200, none_);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].Id(), batch[0].Id());
  EXPECT_EQ(candidates[1].Id(), batch[1].Id());
  EXPECT_EQ(candidates[2].Id(), late.Id());
  EXPECT_TRUE(pool_.CandidatesAt(60, none_).size() == 2u);
}

TEST_F(MempoolTest, CandidatePointersMatchValueCandidates) {
  std::vector<Transaction> batch;
  for (uint64_t i = 1; i <= 8; ++i) batch.push_back(MakeTransfer(i));
  ASSERT_EQ(pool_.SubmitBatch(std::span<const Transaction>(batch), 5).accepted,
            batch.size());
  std::set<crypto::Hash256> included{batch[2].Id(), batch[6].Id()};
  auto values = pool_.CandidatesAt(100, included);
  auto pointers = pool_.CandidatePointersAt(
      100, [&](const crypto::Hash256& id) { return included.count(id) > 0; });
  ASSERT_EQ(pointers.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(pointers[i]->Id(), values[i].Id());
  }
}

TEST_F(MempoolTest, PruneSpanMatchesSetPrune) {
  std::vector<Transaction> batch;
  for (uint64_t i = 1; i <= 10; ++i) batch.push_back(MakeTransfer(i));
  Mempool set_pool;
  Mempool span_pool;
  for (const Transaction& tx : batch) {
    ASSERT_TRUE(set_pool.Submit(tx, 0).ok());
    ASSERT_TRUE(span_pool.Submit(tx, 0).ok());
  }
  // Unsorted, with an unknown id mixed in.
  std::vector<crypto::Hash256> drop{batch[7].Id(), batch[1].Id(),
                                    crypto::Hash256::Of(Bytes{9, 9}),
                                    batch[4].Id()};
  set_pool.Prune(std::set<crypto::Hash256>(drop.begin(), drop.end()));
  span_pool.Prune(std::span<const crypto::Hash256>(drop));
  EXPECT_EQ(span_pool.size(), set_pool.size());
  auto expected = set_pool.CandidatesAt(100, none_);
  auto actual = span_pool.CandidatesAt(100, none_);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].Id(), expected[i].Id());
  }
}

}  // namespace
}  // namespace ac3::chain
