// Shared test scaffolding: a hand-driven chain (no Poisson mining) so tests
// control exactly which transactions land in which block.

#ifndef AC3_TESTS_TEST_UTIL_H_
#define AC3_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/chain/blockchain.h"
#include "src/chain/pow.h"
#include "src/chain/wallet.h"
#include "src/common/random.h"
#include "src/core/scenario.h"

namespace ac3::testutil {

/// A blockchain the test advances manually, one block at a time.
class TestChain {
 public:
  TestChain(chain::ChainParams params,
            std::vector<chain::TxOutput> allocations, uint64_t seed = 42)
      : chain_(std::move(params), std::move(allocations)),
        rng_(seed),
        miner_(crypto::KeyPair::FromSeed(seed ^ 0xabcdef)) {}

  chain::Blockchain& chain() { return chain_; }
  const chain::Blockchain& chain() const { return chain_; }
  Rng* rng() { return &rng_; }
  TimePoint now() const { return now_; }

  /// Mines one block on the canonical head containing `txs` (best effort).
  Status MineBlock(const std::vector<chain::Transaction>& txs) {
    return MineBlockOn(chain_.head()->hash, txs);
  }

  /// Mines one block on an arbitrary parent — the raw material of fork
  /// experiments (two branches from the same parent).
  Status MineBlockOn(const crypto::Hash256& parent,
                     const std::vector<chain::Transaction>& txs) {
    now_ += 100;
    auto block =
        chain_.AssembleBlock(parent, txs, miner_.public_key(), now_, &rng_);
    if (!block.ok()) return block.status();
    return chain_.SubmitBlock(*block, now_);
  }

  /// Mines `count` empty blocks (to bury things).
  Status MineEmpty(int count) {
    for (int i = 0; i < count; ++i) {
      AC3_RETURN_IF_ERROR(MineBlock({}));
    }
    return Status::OK();
  }

  /// Mines until `tx_id` is on the canonical chain with >= depth
  /// confirmations (submitting `tx` in the next block).
  Status MineTxToDepth(const chain::Transaction& tx, uint32_t depth) {
    AC3_RETURN_IF_ERROR(MineBlock({tx}));
    if (!chain_.FindTx(tx.Id()).has_value()) {
      return Status::Internal("transaction not included");
    }
    return MineEmpty(static_cast<int>(depth));
  }

 private:
  chain::Blockchain chain_;
  Rng rng_;
  crypto::KeyPair miner_;
  TimePoint now_ = 0;
};

/// Funding allocation for a set of keys.
inline std::vector<chain::TxOutput> Fund(
    const std::vector<crypto::PublicKey>& keys, chain::Amount each) {
  std::vector<chain::TxOutput> out;
  for (const crypto::PublicKey& pk : keys) {
    out.push_back(chain::TxOutput{each, pk});
  }
  return out;
}

/// Protocol-test world: an alias of the library's public scenario facade
/// (tests drove its design; examples and benches share it).
using SwapWorldOptions = core::ScenarioOptions;
using SwapWorld = core::ScenarioWorld;
using core::ScenarioParticipantSeed;

/// Back-compat shim for older test call sites.
inline uint64_t ParticipantSeed(int i) { return ScenarioParticipantSeed(i); }

}  // namespace ac3::testutil

#endif  // AC3_TESTS_TEST_UTIL_H_
