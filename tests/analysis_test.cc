// Unit tests for the Section 6 closed-form models, pinned to the numbers
// the paper itself quotes.

#include <gtest/gtest.h>

#include "src/analysis/cost_model.h"
#include "src/analysis/latency_model.h"
#include "src/analysis/throughput_model.h"
#include "src/analysis/witness_selection.h"

namespace ac3::analysis {
namespace {

// ---------------------------------------------------------------- Sec 6.1

TEST(LatencyModelTest, HerlihyGrowsLinearlyWithDiameter) {
  EXPECT_EQ(HerlihyLatencyDeltas(2), 4u);
  EXPECT_EQ(HerlihyLatencyDeltas(5), 10u);
  EXPECT_EQ(HerlihyLatencyDeltas(20), 40u);
}

TEST(LatencyModelTest, Ac3wnIsConstantFourDeltas) {
  EXPECT_EQ(Ac3wnLatencyDeltas(), 4u);
}

TEST(LatencyModelTest, CrossoverAtDiameterTwo) {
  // Diam = 2 (the smallest graph): both protocols cost 4Δ; every larger
  // diameter favours AC3WN.
  EXPECT_EQ(CrossoverDiameter(), 2u);
  EXPECT_EQ(HerlihyLatencyDeltas(2), Ac3wnLatencyDeltas());
  for (uint32_t diam = 3; diam <= 30; ++diam) {
    EXPECT_GT(HerlihyLatencyDeltas(diam), Ac3wnLatencyDeltas()) << diam;
  }
}

TEST(LatencyModelTest, AbsoluteLatencyScalesWithDelta) {
  EXPECT_EQ(HerlihyLatency(3, Seconds(10)), Seconds(60));
  EXPECT_EQ(Ac3wnLatency(Seconds(10)), Seconds(40));
}

// ---------------------------------------------------------------- Sec 6.2

TEST(CostModelTest, FeesMatchPaperFormulas) {
  const chain::Amount fd = 4, ffc = 2;
  for (uint32_t n = 1; n <= 20; ++n) {
    EXPECT_EQ(HerlihyFee(n, fd, ffc), n * (fd + ffc));
    EXPECT_EQ(Ac3wnFee(n, fd, ffc), (n + 1) * (fd + ffc));
  }
}

TEST(CostModelTest, OverheadIsOneOverN) {
  EXPECT_DOUBLE_EQ(Ac3wnOverheadRatio(1), 1.0);
  EXPECT_DOUBLE_EQ(Ac3wnOverheadRatio(2), 0.5);
  EXPECT_DOUBLE_EQ(Ac3wnOverheadRatio(10), 0.1);
  // Consistency with the fee formulas themselves.
  const chain::Amount fd = 7, ffc = 3;
  for (uint32_t n = 1; n <= 16; ++n) {
    const double measured =
        static_cast<double>(Ac3wnFee(n, fd, ffc) - HerlihyFee(n, fd, ffc)) /
        static_cast<double>(HerlihyFee(n, fd, ffc));
    EXPECT_DOUBLE_EQ(measured, Ac3wnOverheadRatio(n)) << n;
  }
}

TEST(CostModelTest, ScwDollarCostMatchesPaperQuotes) {
  // "$4 when the ether to USD rate is $300 ... approximately $2 assuming
  //  the current ether to USD rate of $140."
  EXPECT_DOUBLE_EQ(ScwDollarCost(4.0, 300.0), 4.0);
  EXPECT_NEAR(ScwDollarCost(4.0, 140.0), 1.87, 0.01);
}

// ---------------------------------------------------------------- Sec 6.3

TEST(WitnessSelectionTest, PaperExampleOneMillionOnBitcoin) {
  // "let Va be $1M ... Ch = $300K ... d must be set to be > 20."
  EXPECT_DOUBLE_EQ(RequiredDepthBound(1e6, 6.0, 300e3), 20.0);
  EXPECT_EQ(MinimumSafeDepth(1e6, 6.0, 300e3), 21u);
  EXPECT_FALSE(DepthDisincentivizesAttack(20, 1e6, 6.0, 300e3));
  EXPECT_TRUE(DepthDisincentivizesAttack(21, 1e6, 6.0, 300e3));
}

TEST(WitnessSelectionTest, DepthGrowsLinearlyInAssetValue) {
  uint32_t prev = 0;
  for (double value = 100e3; value <= 10e6; value *= 2) {
    uint32_t depth = MinimumSafeDepth(value, 6.0, 300e3);
    EXPECT_GE(depth, prev);
    prev = depth;
  }
  // Doubling the asset value roughly doubles the depth.
  EXPECT_NEAR(static_cast<double>(MinimumSafeDepth(2e6, 6.0, 300e3)) /
                  static_cast<double>(MinimumSafeDepth(1e6, 6.0, 300e3)),
              2.0, 0.1);
}

TEST(WitnessSelectionTest, AttackCostFormula) {
  // d blocks at dh blocks/hour costs d/dh hours of Ch dollars.
  EXPECT_DOUBLE_EQ(AttackCostForDepth(6, 6.0, 300e3), 300e3);
  EXPECT_DOUBLE_EQ(AttackCostForDepth(12, 6.0, 300e3), 600e3);
}

TEST(WitnessSelectionTest, ForkCatchUpProbabilityDecaysGeometrically) {
  EXPECT_DOUBLE_EQ(ForkCatchUpProbability(0.0, 6), 0.0);
  EXPECT_DOUBLE_EQ(ForkCatchUpProbability(0.5, 6), 1.0);
  const double p1 = ForkCatchUpProbability(0.25, 1);
  EXPECT_NEAR(p1, 1.0 / 3.0, 1e-12);
  for (uint32_t d = 1; d < 12; ++d) {
    EXPECT_NEAR(ForkCatchUpProbability(0.25, d + 1),
                ForkCatchUpProbability(0.25, d) * p1, 1e-12);
  }
  // Six confirmations against a 25% attacker: well under 1%.
  EXPECT_LT(ForkCatchUpProbability(0.25, 6), 0.01);
}

TEST(WitnessSelectionTest, RankingSortsByFinalityTime) {
  std::vector<chain::ChainParams> candidates = {
      chain::BitcoinParams(), chain::EthereumParams(),
      chain::LitecoinParams(), chain::BitcoinCashParams()};
  auto ranked = RankWitnessNetworks(candidates, /*asset_value_usd=*/1e6);
  ASSERT_EQ(ranked.size(), 4u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].finality_hours, ranked[i].finality_hours);
  }
  // Every recommendation must actually disincentivize the attack.
  for (const WitnessChoice& choice : ranked) {
    EXPECT_GT(choice.attack_cost_usd, 1e6) << choice.chain_name;
  }
}

// ---------------------------------------------------------------- Sec 6.4

TEST(ThroughputModelTest, Table1Figures) {
  auto rows = Table1Rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "Bitcoin");
  EXPECT_DOUBLE_EQ(rows[0].tps, 7.0);
  EXPECT_EQ(rows[1].name, "Ethereum");
  EXPECT_DOUBLE_EQ(rows[1].tps, 25.0);
  EXPECT_EQ(rows[2].name, "Litecoin");
  EXPECT_DOUBLE_EQ(rows[2].tps, 56.0);
  EXPECT_EQ(rows[3].name, "BitcoinCash");
  EXPECT_DOUBLE_EQ(rows[3].tps, 61.0);
}

TEST(ThroughputModelTest, PaperExampleEthereumLitecoinWitnessedByBitcoin) {
  // "An example AC2T that exchange[s] assets among Ethereum and Litecoin
  //  ... witnessed by the Bitcoin network achieves a throughput of 7."
  EXPECT_DOUBLE_EQ(
      Ac2tThroughput({chain::EthereumParams(), chain::LitecoinParams()},
                     chain::BitcoinParams()),
      7.0);
}

TEST(ThroughputModelTest, WitnessFromInvolvedSetAvoidsTheBottleneck) {
  std::vector<chain::ChainParams> involved = {chain::EthereumParams(),
                                              chain::LitecoinParams()};
  const chain::ChainParams& witness = BestWitnessAmongInvolved(involved);
  EXPECT_EQ(witness.name, "Litecoin");
  // Witnessing inside the involved set keeps the min at the slowest asset
  // chain (Ethereum's 25), strictly better than importing Bitcoin's 7.
  EXPECT_DOUBLE_EQ(Ac2tThroughput(involved, witness), 25.0);
}

TEST(ThroughputModelTest, CompositeIsMin) {
  EXPECT_DOUBLE_EQ(CompositeThroughput({7, 25, 56}), 7.0);
  EXPECT_DOUBLE_EQ(CompositeThroughput({61}), 61.0);
  EXPECT_DOUBLE_EQ(CompositeThroughput({}), 0.0);
}

}  // namespace
}  // namespace ac3::analysis
