// Tests for the parallel sweep substrate: the JSON model round-trips, the
// worker pool is deterministic (N threads reproduce 1 thread bit-for-bit),
// and aggregation computes the statistics the benches publish.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runner/bench_output.h"
#include "src/runner/json.h"
#include "src/runner/sweep_runner.h"

namespace ac3::runner {
namespace {

// ---- JSON ----------------------------------------------------------------

TEST(JsonTest, SerializesScalars) {
  EXPECT_EQ(Json(true).Serialize(), "true\n");
  EXPECT_EQ(Json(false).Serialize(), "false\n");
  EXPECT_EQ(Json().Serialize(), "null\n");
  EXPECT_EQ(Json(42).Serialize(), "42\n");
  EXPECT_EQ(Json(int64_t{-7}).Serialize(), "-7\n");
  EXPECT_EQ(Json("hi").Serialize(), "\"hi\"\n");
  // Integral-valued doubles keep a ".0" so the type survives a parse.
  EXPECT_EQ(Json(2.0).Serialize(), "2.0\n");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j = Json::Object();
  j.Set("zulu", 1);
  j.Set("alpha", 2);
  ASSERT_EQ(j.members().size(), 2u);
  EXPECT_EQ(j.members()[0].first, "zulu");
  EXPECT_EQ(j.members()[1].first, "alpha");
  // Overwrite keeps the original slot.
  j.Set("zulu", 3);
  ASSERT_EQ(j.members().size(), 2u);
  EXPECT_EQ(j.at("zulu").AsInt(), 3);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
}

TEST(JsonTest, ParseHandlesEscapesAndNumbers) {
  auto parsed = Json::Parse(R"({"s": "a\nbA", "i": -12, "d": 2.5e3})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at("s").AsString(), "a\nbA");
  EXPECT_EQ(parsed->at("i").type(), Json::Type::kInt);
  EXPECT_EQ(parsed->at("i").AsInt(), -12);
  EXPECT_EQ(parsed->at("d").type(), Json::Type::kDouble);
  EXPECT_DOUBLE_EQ(parsed->at("d").AsDouble(), 2500.0);
}

TEST(JsonTest, SerializeParseRoundTrip) {
  Json doc = Json::Object();
  doc.Set("name", "sweep \"x\"\n");
  doc.Set("count", 3);
  doc.Set("ratio", 0.1);
  doc.Set("flag", true);
  doc.Set("nothing", Json());
  Json arr = Json::Array();
  arr.Push(1);
  arr.Push(2.5);
  arr.Push("three");
  Json nested = Json::Object();
  nested.Set("empty_array", Json::Array());
  nested.Set("empty_object", Json::Object());
  arr.Push(std::move(nested));
  doc.Set("items", std::move(arr));

  const std::string text = doc.Serialize();
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, doc);
  // The fixed point: serialize(parse(serialize(x))) == serialize(x).
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST(JsonTest, DoubleRoundTripIsExact) {
  for (double v : {0.1, 1.0 / 3.0, 123456.789, -2.2250738585072014e-308}) {
    auto parsed = Json::Parse(Json(v).Serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->AsDouble(), v);
  }
}

// ---- bench envelope -------------------------------------------------------

// NOTE: the shared bench CLI (bench::Options::Parse) is covered by
// tests/bench_cli_test.cc; this file covers the envelope itself.

TEST(BenchOutputTest, EnvelopeShape) {
  BenchContext context;
  context.smoke = true;
  Json results = Json::Object();
  results.Set("answer", 42);
  Json envelope = BenchEnvelope(context, "unit", std::move(results));
  EXPECT_EQ(envelope.at("schema_version").AsInt(), 2);
  EXPECT_EQ(envelope.at("bench").AsString(), "unit");
  EXPECT_TRUE(envelope.at("smoke").AsBool());
  EXPECT_EQ(envelope.at("results").at("answer").AsInt(), 42);
  // Every envelope carries the wall-clock section, outside "results" so
  // the deterministic section stays machine-independent.
  ASSERT_TRUE(envelope.Has("wall"));
  EXPECT_GE(envelope.at("wall").at("wall_ms_total").AsDouble(), 0.0);
}

TEST(BenchOutputTest, EnvelopeMergesWallExtras) {
  BenchContext context;
  Json wall_extra = Json::Object();
  wall_extra.Set("worlds_per_sec", 12.5);
  Json envelope =
      BenchEnvelope(context, "unit", Json::Object(), std::move(wall_extra));
  const Json& wall = envelope.at("wall");
  EXPECT_TRUE(wall.Has("wall_ms_total"));
  EXPECT_DOUBLE_EQ(wall.at("worlds_per_sec").AsDouble(), 12.5);
}

TEST(BenchOutputTest, WriteBenchJsonRoundTripsThroughDisk) {
  BenchContext context;
  context.out_dir = ::testing::TempDir();
  Json results = Json::Object();
  results.Set("value", 7);
  auto path = WriteBenchJson(context, "roundtrip", std::move(results));
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  std::FILE* f = std::fopen(path->c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("bench").AsString(), "roundtrip");
  EXPECT_EQ(parsed->at("results").at("value").AsInt(), 7);
}

// ---- worker pool ----------------------------------------------------------

TEST(ParallelMapTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    std::vector<int> out = ParallelMap<int>(100, threads,
                                            [](int i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelMapTest, HandlesEmptyAndSingleton) {
  EXPECT_TRUE(ParallelMap<int>(0, 4, [](int) { return 1; }).empty());
  EXPECT_EQ(ParallelMap<int>(1, 4, [](int i) { return i + 5; })[0], 5);
}

// Regression: a throwing grid cell used to escape its worker thread and
// take the whole process down with std::terminate. The unified
// common::WorkerPool captures the first exception and rethrows it on the
// caller — from ParallelFor/ParallelMap and from a SweepRunner alike.
TEST(ParallelMapTest, MidGridThrowRethrowsOnCaller) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(ParallelMap<int>(64, threads,
                                  [](int i) -> int {
                                    if (i == 23) {
                                      throw std::runtime_error("mid-grid");
                                    }
                                    return i;
                                  }),
                 std::runtime_error);
  }
}

TEST(SweepRunnerTest, MapRethrowsWorldFailureAndSurvives) {
  SweepRunner runner(3);
  EXPECT_THROW(runner.Map<int>(16,
                               [](int i) -> int {
                                 if (i == 7) {
                                   throw std::runtime_error("world failed");
                                 }
                                 return i;
                               }),
               std::runtime_error);
  // The runner's persistent pool stays usable after the failed grid.
  std::vector<int> out = runner.Map<int>(8, [](int i) { return i * 2; });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7], 14);
}

// ---- grid + aggregation ---------------------------------------------------

TEST(SweepGridTest, PointsEnumerateInDeterministicOrder) {
  SweepGridConfig config;
  config.protocols = {Protocol::kHerlihy, Protocol::kAc3wn};
  config.topologies = {Topology::kRing, Topology::kStar};
  config.sizes = {2, 3};
  config.failures = {FailureMode::kNone, FailureMode::kCrashParticipant};
  config.seeds = {1, 2, 3};
  std::vector<SweepPoint> points = GridPoints(config);
  ASSERT_EQ(points.size(), 2u * 2u * 2u * 2u * 3u);
  EXPECT_EQ(points[0].protocol, Protocol::kHerlihy);
  EXPECT_EQ(points[0].topology, Topology::kRing);
  EXPECT_EQ(points[0].seed, 1u);
  EXPECT_EQ(points[1].seed, 2u);  // Seeds are the innermost axis.
  EXPECT_EQ(points.back().protocol, Protocol::kAc3wn);
  EXPECT_EQ(points.back().topology, Topology::kStar);
  EXPECT_EQ(points.back().size, 3);
  EXPECT_EQ(points.back().seed, 3u);
}

TEST(SweepGridTest, NameTablesRoundTripThroughParse) {
  for (Protocol protocol : {Protocol::kHerlihy, Protocol::kAc3tw,
                            Protocol::kAc3wn, Protocol::kQuorum}) {
    auto parsed = ParseProtocol(ProtocolName(protocol));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, protocol);
  }
  for (FailureMode mode :
       {FailureMode::kNone, FailureMode::kCrashParticipant,
        FailureMode::kPartitionParticipant,
        FailureMode::kCrashCoordinatorAtPrepare,
        FailureMode::kCrashCoordinatorAtCommit, FailureMode::kDropMessages,
        FailureMode::kDuplicateMessages}) {
    auto parsed = ParseFailureMode(FailureModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  for (Topology topology :
       {Topology::kRing, Topology::kPath, Topology::kStar,
        Topology::kComplete, Topology::kRandomFeasible,
        Topology::kFig7aCyclic, Topology::kFig7bDisconnected}) {
    auto parsed = ParseTopology(TopologyName(topology));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, topology);
  }
  // The JSON/CLI spellings of the quorum-commit additions are pinned: a
  // rename would silently orphan committed BENCH files and CI flags.
  EXPECT_STREQ(ProtocolName(Protocol::kQuorum), "quorum");
  EXPECT_STREQ(FailureModeName(FailureMode::kCrashCoordinatorAtPrepare),
               "crash_coordinator_at_prepare");
  EXPECT_STREQ(FailureModeName(FailureMode::kCrashCoordinatorAtCommit),
               "crash_coordinator_at_commit");
  EXPECT_STREQ(FailureModeName(FailureMode::kDropMessages), "drop_messages");
  EXPECT_STREQ(FailureModeName(FailureMode::kDuplicateMessages),
               "duplicate_messages");
  EXPECT_FALSE(ParseProtocol("bitcoin").ok());
  EXPECT_FALSE(ParseTopology("mesh").ok());
  EXPECT_FALSE(ParseFailureMode("byzantine").ok());
}

TEST(AggregateTest, LatencyPercentilesUseNearestRank) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  LatencyStats stats = ComputeLatencyStats(samples);
  EXPECT_EQ(stats.samples, 100);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 50.5);
  EXPECT_DOUBLE_EQ(stats.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(stats.p99_ms, 99.0);
}

TEST(AggregateTest, CountsOutcomesAndNormalizesByDelta) {
  std::vector<RunOutcome> outcomes(3);
  outcomes[0].ok = true;
  outcomes[0].finished = true;
  outcomes[0].committed = true;
  outcomes[0].latency_ms = 4000;
  outcomes[0].total_fees = 10;
  outcomes[1].ok = true;
  outcomes[1].finished = true;
  outcomes[1].aborted = true;
  outcomes[1].total_fees = 2;
  outcomes[2].ok = false;
  outcomes[2].error = "boom";

  SweepAggregate agg = Aggregate(outcomes, /*delta_ms=*/2000);
  EXPECT_EQ(agg.runs, 3);
  EXPECT_EQ(agg.errors, 1);
  EXPECT_EQ(agg.finished, 2);
  EXPECT_EQ(agg.committed, 1);
  EXPECT_EQ(agg.aborted, 1);
  EXPECT_EQ(agg.commit_latency.samples, 1);
  EXPECT_DOUBLE_EQ(agg.mean_latency_deltas, 2.0);
  EXPECT_DOUBLE_EQ(agg.mean_fees, 6.0);
  EXPECT_DOUBLE_EQ(agg.throughput_swaps_per_sec, 0.25);
}

// ---- end-to-end determinism ----------------------------------------------

std::string OutcomesFingerprint(const std::vector<RunOutcome>& outcomes) {
  Json arr = Json::Array();
  for (const RunOutcome& outcome : outcomes) {
    arr.Push(OutcomeToJson(outcome));
  }
  return arr.Serialize();
}

// The acceptance-criteria test: the same grid run on 1 thread and on N>1
// threads must produce bit-for-bit identical results (every world is an
// independent deterministic simulation; the pool only changes scheduling).
TEST(SweepRunnerTest, ThreadCountDoesNotChangeResults) {
  SweepGridConfig config;
  config.protocols = {Protocol::kHerlihy, Protocol::kAc3tw, Protocol::kAc3wn};
  config.topologies = {Topology::kRing};
  config.sizes = {2};
  config.failures = {FailureMode::kNone};
  config.seeds = {11};
  config.deadline = Minutes(20);

  SweepRunner serial(1);
  SweepRunner pooled(4);
  EXPECT_EQ(serial.threads(), 1);
  EXPECT_EQ(pooled.threads(), 4);

  std::vector<RunOutcome> a = serial.RunGrid(config);
  std::vector<RunOutcome> b = pooled.RunGrid(config);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), a.size());
  EXPECT_EQ(OutcomesFingerprint(a), OutcomesFingerprint(b));

  // The happy-path grid commits everywhere — and a second serial run
  // reproduces the first (the worlds are deterministic, not just ordered).
  for (const RunOutcome& outcome : a) {
    EXPECT_TRUE(outcome.ok) << outcome.error;
    EXPECT_TRUE(outcome.committed)
        << ProtocolName(outcome.point.protocol) << " did not commit";
    EXPECT_FALSE(outcome.atomicity_violated);
  }
  std::vector<RunOutcome> c = serial.RunGrid(config);
  EXPECT_EQ(OutcomesFingerprint(a), OutcomesFingerprint(c));
}

TEST(SweepRunnerTest, CrashFailureModeRunsToAVerdict) {
  SweepGridConfig config;
  config.protocols = {Protocol::kAc3wn};
  config.topologies = {Topology::kRing};
  config.sizes = {2};
  config.failures = {FailureMode::kCrashParticipant};
  config.seeds = {5};
  config.deadline = Minutes(20);

  std::vector<RunOutcome> outcomes = SweepRunner(2).RunGrid(config);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_TRUE(outcomes[0].finished);
  // AC3WN's whole point: even under a participant crash the verdict is
  // atomic — never "some redeemed, some refunded".
  EXPECT_FALSE(outcomes[0].atomicity_violated);
}

}  // namespace
}  // namespace ac3::runner
