// Wallet tests: UTXO selection, change computation, the reservation
// discipline that lets one identity fund several in-flight transactions
// without self-double-spending, and value invariants of built transactions
// (the merge/split semantics of Figures 2-3 from the wallet's side).

#include "src/chain/wallet.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ac3::chain {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(71);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(72);

class WalletTest : public ::testing::Test {
 protected:
  // Alice's funds arrive as three separate genesis outputs so selection
  // has real choices: 100 + 250 + 400.
  WalletTest()
      : world_(TestChainParams(),
               {TxOutput{100, kAlice.public_key()},
                TxOutput{250, kAlice.public_key()},
                TxOutput{400, kAlice.public_key()},
                TxOutput{500, kBob.public_key()}},
               /*seed=*/501),
        alice_(kAlice, world_.chain().id()) {}

  const LedgerState& State() { return world_.chain().StateAtHead(); }

  testutil::TestChain world_;
  Wallet alice_;
};

TEST_F(WalletTest, SpendableBalanceSumsOwnedUtxos) {
  EXPECT_EQ(alice_.SpendableBalance(State()), 750u);
}

TEST_F(WalletTest, TransferValueBalanceHolds) {
  auto tx = alice_.BuildTransfer(State(), kBob.public_key(), 300, 5, 1);
  ASSERT_TRUE(tx.ok()) << tx.status();
  // sum(inputs) = sum(outputs) + fee: the Figure 2 invariant.
  Amount input_total = 0;
  for (const OutPoint& in : tx->inputs) {
    input_total += State().utxos.at(in).value;
  }
  EXPECT_EQ(input_total, tx->TotalOutput() + tx->fee);
  // Bob receives exactly the amount; change (if any) returns to Alice.
  Amount to_bob = 0, to_alice = 0;
  for (const TxOutput& out : tx->outputs) {
    if (out.owner == kBob.public_key()) to_bob += out.value;
    if (out.owner == kAlice.public_key()) to_alice += out.value;
  }
  EXPECT_EQ(to_bob, 300u);
  EXPECT_EQ(to_alice, input_total - 300u - 5u);
}

TEST_F(WalletTest, MergesUtxosWhenOneIsNotEnough) {
  // 600 exceeds any single UTXO: at least two inputs are merged.
  auto tx = alice_.BuildTransfer(State(), kBob.public_key(), 600, 5, 1);
  ASSERT_TRUE(tx.ok());
  EXPECT_GE(tx->inputs.size(), 2u);
}

TEST_F(WalletTest, InsufficientFundsReported) {
  auto tx = alice_.BuildTransfer(State(), kBob.public_key(), 800, 5, 1);
  EXPECT_FALSE(tx.ok());
  EXPECT_EQ(tx.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WalletTest, ReservationsPreventOverlappingSpends) {
  // Two transfers built back-to-back from the same state must not share
  // inputs: the first reserves what it spends.
  auto t1 = alice_.BuildTransfer(State(), kBob.public_key(), 300, 5, 1);
  auto t2 = alice_.BuildTransfer(State(), kBob.public_key(), 300, 5, 2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (const OutPoint& a : t1->inputs) {
    for (const OutPoint& b : t2->inputs) {
      EXPECT_FALSE(a == b) << "shared input = self double spend";
    }
  }
  // Both land in one block: only possible because inputs are disjoint.
  ASSERT_TRUE(world_.MineBlock({*t1, *t2}).ok());
  EXPECT_TRUE(world_.chain().FindTx(t1->Id()).has_value());
  EXPECT_TRUE(world_.chain().FindTx(t2->Id()).has_value());
}

TEST_F(WalletTest, ReservationsExhaustThenClearRestores) {
  auto t1 = alice_.BuildTransfer(State(), kBob.public_key(), 700, 5, 1);
  ASSERT_TRUE(t1.ok());  // Consumes (nearly) everything.
  auto t2 = alice_.BuildTransfer(State(), kBob.public_key(), 10, 1, 2);
  EXPECT_FALSE(t2.ok()) << "all funds reserved by the first build";
  // The caller abandons t1 (e.g. it was never gossiped): clearing the
  // reservations makes the funds spendable again.
  alice_.ClearReservations();
  auto t3 = alice_.BuildTransfer(State(), kBob.public_key(), 10, 1, 3);
  EXPECT_TRUE(t3.ok());
}

TEST_F(WalletTest, DeployLocksContractValueSeparately) {
  auto tx = alice_.BuildDeploy(State(), "HTLC", Bytes{1, 2, 3},
                               /*locked_value=*/200, /*fee=*/4, 1);
  ASSERT_TRUE(tx.ok()) << tx.status();
  EXPECT_EQ(tx->type, TxType::kDeploy);
  EXPECT_EQ(tx->contract_value, 200u);
  // Inputs cover locked value + fee + change outputs.
  Amount input_total = 0;
  for (const OutPoint& in : tx->inputs) {
    input_total += State().utxos.at(in).value;
  }
  EXPECT_EQ(input_total, tx->TotalOutput() + tx->fee + tx->contract_value);
}

TEST_F(WalletTest, CallSpendsOnlyTheFee) {
  auto tx = alice_.BuildCall(State(), crypto::Hash256::Of(Bytes{9}), "redeem",
                             Bytes{1}, /*fee=*/2, 1);
  ASSERT_TRUE(tx.ok()) << tx.status();
  EXPECT_EQ(tx->type, TxType::kCall);
  Amount input_total = 0;
  for (const OutPoint& in : tx->inputs) {
    input_total += State().utxos.at(in).value;
  }
  EXPECT_EQ(input_total - tx->TotalOutput(), 2u);
}

TEST_F(WalletTest, BuiltTransactionsCarryValidSignatures) {
  auto tx = alice_.BuildTransfer(State(), kBob.public_key(), 100, 1, 1);
  ASSERT_TRUE(tx.ok());
  EXPECT_TRUE(tx->VerifySignature());
  EXPECT_EQ(tx->signer, kAlice.public_key());
  // Tampering after signing is detectable.
  Transaction tampered = *tx;
  tampered.fee += 1;
  EXPECT_FALSE(tampered.VerifySignature());
}

// Property sweep: for any (amount, fee) the wallet can afford, the value
// balance holds and the change never exceeds the inputs.
class WalletBalanceSweep
    : public ::testing::TestWithParam<std::pair<Amount, Amount>> {};

TEST_P(WalletBalanceSweep, ValueConservation) {
  testutil::TestChain world(TestChainParams(),
                            {TxOutput{100, kAlice.public_key()},
                             TxOutput{250, kAlice.public_key()},
                             TxOutput{400, kAlice.public_key()}},
                            /*seed=*/502);
  Wallet alice(kAlice, world.chain().id());
  const auto [amount, fee] = GetParam();
  auto tx = alice.BuildTransfer(world.chain().StateAtHead(),
                                kBob.public_key(), amount, fee, 1);
  if (amount + fee > 750) {
    EXPECT_FALSE(tx.ok());
    return;
  }
  ASSERT_TRUE(tx.ok()) << tx.status();
  Amount input_total = 0;
  for (const OutPoint& in : tx->inputs) {
    input_total += world.chain().StateAtHead().utxos.at(in).value;
  }
  EXPECT_EQ(input_total, tx->TotalOutput() + fee);
  // And the ledger accepts it.
  ASSERT_TRUE(world.MineBlock({*tx}).ok());
  EXPECT_TRUE(world.chain().FindTx(tx->Id()).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AmountsAndFees, WalletBalanceSweep,
    ::testing::Values(std::pair<Amount, Amount>{1, 0},
                      std::pair<Amount, Amount>{99, 1},
                      std::pair<Amount, Amount>{100, 0},
                      std::pair<Amount, Amount>{101, 5},
                      std::pair<Amount, Amount>{350, 2},
                      std::pair<Amount, Amount>{744, 6},
                      std::pair<Amount, Amount>{750, 0},
                      std::pair<Amount, Amount>{750, 1},
                      std::pair<Amount, Amount>{9999, 0}));

}  // namespace
}  // namespace ac3::chain
