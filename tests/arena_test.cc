// Arena / pool reclamation edge cases. The NodePool behind PersistentMap
// recycles node storage through thread-local free lists, and the map's
// intrusive refcounts decide *when* a node goes back to the pool — so the
// dangerous corners are lifetime corners: snapshots outliving the handle
// that created them, heavy snapshot/mutate churn (every iteration both
// allocates path copies and releases dropped ones), structure shared
// across threads, and free lists surviving thread exit. The churn and
// lifetime tests run unchanged under the sanitizer job, where the pool is
// bypassed (NodePool<T>::kPoolingEnabled == false) and ASAN checks every
// node individually; pool-recycling assertions are gated on pooling being
// compiled in.

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/arena.h"
#include "src/common/persistent_map.h"
#include "src/common/random.h"

namespace ac3 {
namespace {

// ---- NodePool mechanics ----------------------------------------------------

struct PoolNode {
  uint64_t payload[8];
};

TEST(NodePoolTest, RecyclesFreedStorageLifo) {
  if (!NodePool<PoolNode>::kPoolingEnabled) {
    GTEST_SKIP() << "pooling disabled under sanitizers";
  }
  void* first = NodePool<PoolNode>::Allocate();
  NodePool<PoolNode>::Deallocate(first);
  void* second = NodePool<PoolNode>::Allocate();
  // Thread-local free list is LIFO: the block comes straight back.
  EXPECT_EQ(first, second);
  NodePool<PoolNode>::Deallocate(second);
}

TEST(NodePoolTest, SlabCountStaysBoundedUnderRecycling) {
  if (!NodePool<PoolNode>::kPoolingEnabled) {
    GTEST_SKIP() << "pooling disabled under sanitizers";
  }
  // Allocate-free cycles far beyond one slab's capacity must not carve new
  // slabs once the free list is primed.
  void* warm = NodePool<PoolNode>::Allocate();
  NodePool<PoolNode>::Deallocate(warm);
  const size_t slabs_before = NodePool<PoolNode>::SlabCount();
  for (size_t i = 0; i < 8 * NodePool<PoolNode>::kSlabNodes; ++i) {
    void* p = NodePool<PoolNode>::Allocate();
    NodePool<PoolNode>::Deallocate(p);
  }
  EXPECT_EQ(NodePool<PoolNode>::SlabCount(), slabs_before);
}

TEST(NodePoolTest, FreeListSurvivesThreadExit) {
  if (!NodePool<PoolNode>::kPoolingEnabled) {
    GTEST_SKIP() << "pooling disabled under sanitizers";
  }
  // A worker allocates enough to force at least one slab, frees it all,
  // and exits; its cache must splice to the global overflow so later
  // threads reuse the memory instead of carving fresh slabs.
  std::thread([] {
    std::vector<void*> blocks;
    for (size_t i = 0; i < NodePool<PoolNode>::kSlabNodes; ++i) {
      blocks.push_back(NodePool<PoolNode>::Allocate());
    }
    for (void* p : blocks) NodePool<PoolNode>::Deallocate(p);
  }).join();
  const size_t slabs_before = NodePool<PoolNode>::SlabCount();
  std::thread([&] {
    std::vector<void*> blocks;
    for (size_t i = 0; i < NodePool<PoolNode>::kSlabNodes; ++i) {
      blocks.push_back(NodePool<PoolNode>::Allocate());
    }
    EXPECT_EQ(NodePool<PoolNode>::SlabCount(), slabs_before);
    for (void* p : blocks) NodePool<PoolNode>::Deallocate(p);
  }).join();
}

// ---- lifetime corners through PersistentMap --------------------------------

TEST(ArenaReclamationTest, SnapshotOutlivesOriginMap) {
  PersistentMap<int, int> snapshot;
  {
    auto origin = std::make_unique<PersistentMap<int, int>>();
    for (int i = 0; i < 500; ++i) origin->Put(i, i * 3);
    snapshot = *origin;  // Shares every node with `origin`.
    origin->Erase(123);  // Diverge a little before dying.
  }                      // `origin` destroyed; snapshot keeps the nodes alive.
  ASSERT_EQ(snapshot.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_NE(snapshot.Find(i), nullptr) << i;
    EXPECT_EQ(*snapshot.Find(i), i * 3);
  }
}

TEST(ArenaReclamationTest, InterleavedSnapshotMutateChurn) {
  // Rolling snapshots + mutations: every round releases an old snapshot's
  // refs (returning divergent nodes to the pool) while path-copying new
  // ones. A stale pointer or double free here is exactly what ASAN's
  // pool-bypass build catches byte-accurately.
  constexpr int kRounds = 2000;
  constexpr int kSnapshots = 7;
  PersistentMap<uint64_t, uint64_t> live;
  std::map<uint64_t, uint64_t> reference;
  std::vector<PersistentMap<uint64_t, uint64_t>> ring(kSnapshots);
  std::vector<std::map<uint64_t, uint64_t>> ring_reference(kSnapshots);
  Rng rng(90210);
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t key = rng.NextU64() % 193;
    if (rng.NextU64() % 4 == 0) {
      live.Erase(key);
      reference.erase(key);
    } else {
      const uint64_t value = rng.NextU64();
      live.Put(key, value);
      reference[key] = value;
    }
    const size_t slot = static_cast<size_t>(round) % kSnapshots;
    ring[slot] = live;  // Overwrite releases the oldest snapshot's nodes.
    ring_reference[slot] = reference;
  }
  for (size_t s = 0; s < kSnapshots; ++s) {
    ASSERT_EQ(ring[s].size(), ring_reference[s].size()) << s;
    auto it = ring_reference[s].begin();
    for (const auto& [key, value] : ring[s]) {
      ASSERT_EQ(key, it->first);
      ASSERT_EQ(value, it->second);
      ++it;
    }
  }
}

TEST(ArenaReclamationTest, CrossThreadSharedStructureMutation) {
  // Divergent snapshots sharing one base tree are copied, mutated, and
  // released on several threads at once — the access pattern parallel fork
  // validation produces. The intrusive refcounts must be atomic for this
  // to be sound; a torn count shows up as a leak or use-after-free under
  // the sanitizer job and as corruption here.
  PersistentMap<uint64_t, uint64_t> base;
  for (uint64_t i = 0; i < 4000; ++i) base.Put(i, i);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      bool good = true;
      for (int round = 0; round < 50; ++round) {
        PersistentMap<uint64_t, uint64_t> mine = base;  // Shared structure.
        const uint64_t stride = static_cast<uint64_t>(t) + 2;
        for (uint64_t k = 0; k < 4000; k += stride) {
          mine.Put(k, k * stride);
        }
        for (uint64_t k = 1; k < 4000; k += 2 * stride) mine.Erase(k);
        good = good && mine.size() <= 4000 && mine.Find(0) != nullptr;
      }
      ok[static_cast<size_t>(t)] = good;
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[static_cast<size_t>(t)]);
  // The base tree is untouched by any of it.
  ASSERT_EQ(base.size(), 4000u);
  for (uint64_t i = 0; i < 4000; i += 97) EXPECT_EQ(base.at(i), i);
}

}  // namespace
}  // namespace ac3
