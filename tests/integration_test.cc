// Cross-module integration tests:
//  * Lemma 5.3 mechanics: conflicting RDauth / RFauth blocks on two forks
//    of the witness chain, resolved by the longest-chain rule, with the
//    depth-d discipline protecting participants in the interim.
//  * Section 5.2: concurrent AC2Ts coordinated by DIFFERENT witness
//    networks, interleaved on shared asset chains.
//  * Conservation of value across the whole multi-chain world.
//  * The paper's Figure 4 scenario on the Bitcoin/Ethereum parameter
//    presets witnessed by Litecoin.

#include <gtest/gtest.h>

#include "src/contracts/evidence_builder.h"
#include "src/contracts/permissionless_contract.h"
#include "src/contracts/witness_contract.h"
#include "src/graph/ac2t_graph.h"
#include "src/graph/multisig_graph.h"
#include "src/protocols/ac3wn_swap.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(21);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(22);

constexpr TimePoint kDeadline = Minutes(20);

// ------------------------------------------------ Lemma 5.3 fork mechanics

class WitnessForkTest : public ::testing::Test {
 protected:
  static chain::ChainParams WithId(chain::ChainParams params,
                                   chain::ChainId id) {
    params.id = id;
    return params;
  }

  WitnessForkTest()
      : asset_(WithId(chain::TestChainParams(), 0),
               testutil::Fund({kAlice.public_key(), kBob.public_key()}, 2000),
               /*seed=*/301),
        witness_(WithId(chain::TestWitnessParams(), 1),
                 testutil::Fund({kAlice.public_key(), kBob.public_key()},
                                2000),
                 /*seed=*/302),
        alice_asset_(kAlice, 0),
        alice_witness_(kAlice, 1),
        bob_witness_(kBob, 1) {}

  void SetUpContracts(uint32_t d) {
    graph::Ac2tGraph graph({kAlice.public_key(), kBob.public_key()},
                           {graph::Ac2tEdge{0, 1, 0, 400}}, 7);
    auto ms = graph::SignGraph(graph, {kAlice, kBob});
    ASSERT_TRUE(ms.ok());
    contracts::WitnessInit init;
    init.participants = {kAlice.public_key(), kBob.public_key()};
    init.ms_encoded = ms->Encode();
    contracts::EdgeSpec spec;
    spec.chain_id = 0;
    spec.sender = kAlice.public_key();
    spec.recipient = kBob.public_key();
    spec.amount = 400;
    spec.min_evidence_depth = d;
    spec.asset_checkpoint = asset_.chain().genesis()->block.header;
    spec.asset_difficulty_bits = asset_.chain().params().difficulty_bits;
    init.edges.push_back(spec);
    auto scw_deploy = alice_witness_.BuildDeploy(
        witness_.chain().StateAtHead(), contracts::kWitnessKind, init.Encode(),
        0, 4, 1);
    ASSERT_TRUE(scw_deploy.ok());
    ASSERT_TRUE(witness_.MineBlock({*scw_deploy}).ok());
    scw_id_ = scw_deploy->Id();

    contracts::PermissionlessInit sc_init;
    sc_init.recipient = kBob.public_key();
    sc_init.witness_chain_id = 1;
    sc_init.scw_id = scw_id_;
    sc_init.depth = d;
    sc_init.witness_checkpoint = witness_.chain().genesis()->block.header;
    sc_init.witness_difficulty_bits =
        witness_.chain().params().difficulty_bits;
    auto sc_deploy = alice_asset_.BuildDeploy(
        asset_.chain().StateAtHead(), contracts::kPermissionlessKind,
        sc_init.Encode(), 400, 4, 2);
    ASSERT_TRUE(sc_deploy.ok());
    ASSERT_TRUE(asset_.MineTxToDepth(*sc_deploy, 1).ok());
    sc_id_ = sc_deploy->Id();
  }

  contracts::WitnessState ScwStateAtHead() {
    auto contract = witness_.chain().ContractAtHead(scw_id_);
    EXPECT_TRUE(contract.ok());
    return dynamic_cast<const contracts::WitnessContract*>(contract->get())
        ->state();
  }

  testutil::TestChain asset_;
  testutil::TestChain witness_;
  chain::Wallet alice_asset_;
  chain::Wallet alice_witness_;
  chain::Wallet bob_witness_;
  crypto::Hash256 scw_id_;
  crypto::Hash256 sc_id_;
};

TEST_F(WitnessForkTest, ConflictingStatesResolveByLongestChain) {
  SetUpContracts(/*d=*/2);

  // Build the two conflicting state-change transactions.
  auto deploy_ev = contracts::BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, sc_id_);
  ASSERT_TRUE(deploy_ev.ok());
  auto redeem_call = alice_witness_.BuildCall(
      witness_.chain().StateAtHead(), scw_id_,
      contracts::kAuthorizeRedeemFunction,
      contracts::EncodeEdgeEvidence({*deploy_ev}), 2, 10);
  ASSERT_TRUE(redeem_call.ok());
  // Bob (also a participant) issues the conflicting request — the two
  // calls must spend different wallets' funds to coexist on two branches.
  auto refund_call = bob_witness_.BuildCall(
      witness_.chain().StateAtHead(), scw_id_,
      contracts::kAuthorizeRefundFunction, {}, 2, 11);
  ASSERT_TRUE(refund_call.ok());

  // Fork: branch A carries RDauth, branch B (same parent) carries RFauth.
  const crypto::Hash256 fork_parent = witness_.chain().head()->hash;
  ASSERT_TRUE(witness_.MineBlockOn(fork_parent, {*redeem_call}).ok());
  const crypto::Hash256 branch_a = witness_.chain().head()->hash;
  EXPECT_EQ(ScwStateAtHead(), contracts::WitnessState::kRedeemAuthorized);

  ASSERT_TRUE(witness_.MineBlockOn(fork_parent, {*refund_call}).ok());
  // Equal work: the first-seen branch (A) remains canonical.
  EXPECT_TRUE(witness_.chain().IsCanonical(branch_a));
  EXPECT_EQ(ScwStateAtHead(), contracts::WitnessState::kRedeemAuthorized);

  // The depth-d discipline: RDauth has 0 confirmations, so no participant
  // may act on it yet — exactly why the transient conflict is harmless.
  auto rd_call = witness_.chain().FindCall(
      scw_id_, contracts::kAuthorizeRedeemFunction, true);
  ASSERT_TRUE(rd_call.has_value());
  EXPECT_LT(*witness_.chain().ConfirmationsOf(rd_call->entry->hash), 2u);

  // RFauth is not canonically visible while branch B is the loser.
  auto refund_loc = witness_.chain().FindCall(
      scw_id_, contracts::kAuthorizeRefundFunction, true);
  EXPECT_FALSE(refund_loc.has_value()) << "branch B not canonical yet";

  // Branch B grows heavier: the reorg flips the canonical SCw state to
  // RFauth, and the RDauth block is no longer canonical.
  crypto::Hash256 branch_b;
  witness_.chain().ForEachEntry(
      [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
        if (entry.block.header.prev_hash == fork_parent && hash != branch_a) {
          branch_b = hash;
        }
      });
  ASSERT_FALSE(branch_b.IsZero());
  ASSERT_TRUE(witness_.MineBlockOn(branch_b, {}).ok());
  EXPECT_FALSE(witness_.chain().IsCanonical(branch_a));
  EXPECT_EQ(ScwStateAtHead(), contracts::WitnessState::kRefundAuthorized);
}

TEST_F(WitnessForkTest, DepthDisciplineOutlastsShortForkAttack) {
  // A d-deep burial defeats any private fork shorter than d: after the
  // decision is buried, an attacker branch of length < d cannot reorg it.
  const uint32_t d = 3;
  SetUpContracts(d);
  auto deploy_ev = contracts::BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, sc_id_);
  ASSERT_TRUE(deploy_ev.ok());
  auto redeem_call = alice_witness_.BuildCall(
      witness_.chain().StateAtHead(), scw_id_,
      contracts::kAuthorizeRedeemFunction,
      contracts::EncodeEdgeEvidence({*deploy_ev}), 2, 10);
  ASSERT_TRUE(redeem_call.ok());
  // Bob (also a participant) issues the conflicting request — the two
  // calls must spend different wallets' funds to coexist on two branches.
  auto refund_call = bob_witness_.BuildCall(
      witness_.chain().StateAtHead(), scw_id_,
      contracts::kAuthorizeRefundFunction, {}, 2, 11);
  ASSERT_TRUE(refund_call.ok());

  const crypto::Hash256 fork_parent = witness_.chain().head()->hash;
  ASSERT_TRUE(witness_.MineBlockOn(fork_parent, {*redeem_call}).ok());
  ASSERT_TRUE(witness_.MineEmpty(static_cast<int>(d)).ok());  // Buried >= d.
  EXPECT_EQ(ScwStateAtHead(), contracts::WitnessState::kRedeemAuthorized);

  // Attacker releases a private RFauth branch of length d (< honest d+1).
  ASSERT_TRUE(witness_.MineBlockOn(fork_parent, {*refund_call}).ok());
  crypto::Hash256 tip;
  witness_.chain().ForEachEntry(
      [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
        if (entry.block.header.prev_hash == fork_parent &&
            !witness_.chain().IsCanonical(hash)) {
          tip = hash;
        }
      });
  ASSERT_FALSE(tip.IsZero());
  for (uint32_t i = 1; i < d; ++i) {
    ASSERT_TRUE(witness_.MineBlockOn(tip, {}).ok());
    crypto::Hash256 next;
    witness_.chain().ForEachEntry(
        [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
          if (entry.block.header.prev_hash == tip) next = hash;
        });
    tip = next;
  }
  // The honest branch (d+1 blocks past the parent) still wins.
  EXPECT_EQ(ScwStateAtHead(), contracts::WitnessState::kRedeemAuthorized);
}

// ------------------------------------------- Section 5.2: multi-witness

TEST(MultiWitnessTest, ConcurrentSwapsUseDifferentWitnessNetworks) {
  // Two AC2Ts share the same two asset chains but are coordinated by two
  // different witness networks, running fully interleaved.
  SwapWorldOptions options;
  options.participants = 4;
  options.asset_chains = 4;  // chains 2 and 3 double as witness networks
  options.witness_chain = false;
  SwapWorld world(options);
  world.StartMining();

  graph::Ac2tGraph g1 = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  graph::Ac2tGraph g2 = graph::MakeTwoPartySwap(
      world.participant(2)->pk(), world.participant(3)->pk(),
      world.asset_chain(0), 150, world.asset_chain(1), 100, 1);

  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(12);

  protocols::Ac3wnSwapEngine e1(world.env(), g1,
                                {world.participant(0), world.participant(1)},
                                world.asset_chain(2), config);
  protocols::Ac3wnSwapEngine e2(world.env(), g2,
                                {world.participant(2), world.participant(3)},
                                world.asset_chain(3), config);
  ASSERT_TRUE(e1.Start().ok());
  ASSERT_TRUE(e2.Start().ok());
  Status done = world.env()->sim()->RunUntilCondition(
      [&]() { return e1.Done() && e2.Done(); }, kDeadline);
  ASSERT_TRUE(done.ok());
  auto r1 = e1.Run(kDeadline);
  auto r2 = e2.Run(kDeadline);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->committed) << r1->Summary();
  EXPECT_TRUE(r2->committed) << r2->Summary();
  EXPECT_FALSE(r1->AtomicityViolated());
  EXPECT_FALSE(r2->AtomicityViolated());
  EXPECT_NE(e1.witness_chain(), e2.witness_chain());
}

TEST(MultiWitnessTest, FailedSwapDoesNotDisturbConcurrentSwap) {
  SwapWorldOptions options;
  options.participants = 4;
  options.asset_chains = 4;
  options.witness_chain = false;
  SwapWorld world(options);
  world.StartMining();
  // Swap 2's counterparty declines; swap 1 must still commit.
  world.participant(3)->behavior().decline_publish = true;

  graph::Ac2tGraph g1 = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  graph::Ac2tGraph g2 = graph::MakeTwoPartySwap(
      world.participant(2)->pk(), world.participant(3)->pk(),
      world.asset_chain(0), 150, world.asset_chain(1), 100, 1);

  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(10);

  protocols::Ac3wnSwapEngine e1(world.env(), g1,
                                {world.participant(0), world.participant(1)},
                                world.asset_chain(2), config);
  protocols::Ac3wnSwapEngine e2(world.env(), g2,
                                {world.participant(2), world.participant(3)},
                                world.asset_chain(3), config);
  ASSERT_TRUE(e1.Start().ok());
  ASSERT_TRUE(e2.Start().ok());
  Status done = world.env()->sim()->RunUntilCondition(
      [&]() { return e1.Done() && e2.Done(); }, kDeadline);
  ASSERT_TRUE(done.ok());
  auto r1 = e1.Run(kDeadline);
  auto r2 = e2.Run(kDeadline);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->committed);
  EXPECT_TRUE(r2->aborted);
  EXPECT_FALSE(r1->AtomicityViolated());
  EXPECT_FALSE(r2->AtomicityViolated());
}

// --------------------------------------------------- value conservation

TEST(ConservationTest, WorldValueConservedUpToMiningRewards) {
  SwapWorld world;
  world.StartMining();
  std::vector<chain::Amount> genesis_totals;
  for (size_t c = 0; c < world.env()->chain_count(); ++c) {
    genesis_totals.push_back(
        world.env()
            ->blockchain(static_cast<chain::ChainId>(c))
            ->genesis()
            ->state.TotalValue());
  }
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 0);
  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                    world.all_participants(),
                                    world.witness_chain(), config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->committed);
  // Per chain: total value = genesis + height * block_reward (fees are
  // redistributed to miners, never destroyed).
  for (size_t c = 0; c < world.env()->chain_count(); ++c) {
    const chain::Blockchain* chain =
        world.env()->blockchain(static_cast<chain::ChainId>(c));
    EXPECT_EQ(chain->StateAtHead().TotalValue(),
              genesis_totals[c] +
                  chain->height() * chain->params().block_reward)
        << "chain " << c;
  }
}

// --------------------------------------------------- real-chain presets

TEST(RealPresetsTest, BitcoinEthereumSwapWitnessedByLitecoin) {
  core::Environment env(/*seed=*/4242);
  std::vector<crypto::PublicKey> pks = {
      crypto::KeyPair::FromSeed(testutil::ParticipantSeed(0)).public_key(),
      crypto::KeyPair::FromSeed(testutil::ParticipantSeed(1)).public_key()};
  chain::MiningConfig mining;
  mining.miner_count = 3;
  mining.max_propagation_delay = Milliseconds(5);
  chain::ChainId btc =
      env.AddChain(chain::BitcoinParams(), testutil::Fund(pks, 5000), mining);
  chain::ChainId eth =
      env.AddChain(chain::EthereumParams(), testutil::Fund(pks, 5000), mining);
  chain::ChainId ltc =
      env.AddChain(chain::LitecoinParams(), testutil::Fund(pks, 5000), mining);
  protocols::Participant alice("Alice", testutil::ParticipantSeed(0), &env);
  protocols::Participant bob("Bob", testutil::ParticipantSeed(1), &env);
  env.StartMining();

  // Figure 4: X bitcoins for Y ethers.
  graph::Ac2tGraph graph = graph::MakeTwoPartySwap(
      alice.pk(), bob.pk(), btc, 300, eth, 200, env.sim()->Now());
  protocols::Ac3wnConfig config;
  config.confirm_depth = 1;
  config.witness_depth_d = 3;
  config.resubmit_interval = Seconds(2);
  config.publish_patience = Seconds(60);
  protocols::Ac3wnSwapEngine engine(&env, graph, {&alice, &bob}, ltc, config);
  auto report = engine.Run(Minutes(60));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed) << report->Summary();
  EXPECT_FALSE(report->AtomicityViolated());
}

}  // namespace
}  // namespace ac3
