// Unit tests for the discrete-event simulation kernel, network model, and
// failure injection.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/failure.h"
#include "src/sim/network.h"
#include "src/sim/simulation.h"

namespace ac3::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (auto e = q.PopNext()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(7, [&order, i] { order.push_back(i); });
  }
  while (auto e = q.PopNext()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelledEventSkipped) {
  EventQueue q;
  bool ran = false;
  EventHandle handle = q.Push(5, [&] { ran = true; });
  handle.Cancel();
  while (auto e = q.PopNext()) e->fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), kTimeInfinity);
  q.Push(42, [] {});
  q.Push(17, [] {});
  EXPECT_EQ(q.NextTime(), 17);
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim(1);
  TimePoint seen = -1;
  sim.After(100, [&] { seen = sim.Now(); });
  sim.RunUntil(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim(1);
  std::vector<TimePoint> times;
  sim.After(10, [&] {
    times.push_back(sim.Now());
    sim.After(15, [&] { times.push_back(sim.Now()); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(times, (std::vector<TimePoint>{10, 25}));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim(1);
  int count = 0;
  // Self-rescheduling timer.
  std::function<void()> tick = [&] {
    ++count;
    sim.After(10, tick);
  };
  sim.After(10, tick);
  sim.RunUntil(105);
  EXPECT_EQ(count, 10);  // t=10..100.
}

TEST(SimulationTest, RunUntilConditionFires) {
  Simulation sim(1);
  int x = 0;
  sim.After(50, [&] { x = 1; });
  sim.After(60, [&] { x = 2; });
  Status s = sim.RunUntilCondition([&] { return x == 1; }, 1000);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(sim.Now(), 50);
}

TEST(SimulationTest, RunUntilConditionTimesOut) {
  Simulation sim(1);
  Status s = sim.RunUntilCondition([] { return false; }, 500);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(NetworkTest, DeliversWithLatency) {
  Simulation sim(7);
  Network net(&sim, LatencyModel{Milliseconds(50), Milliseconds(0)});
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  TimePoint delivered_at = -1;
  net.Send(a, b, [&] { delivered_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(delivered_at, 50);
  EXPECT_EQ(net.delivered_count(), 1u);
}

TEST(NetworkTest, CrashedReceiverDropsMessage) {
  Simulation sim(7);
  Network net(&sim, LatencyModel{Milliseconds(10), Milliseconds(0)});
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  net.Crash(b);
  bool delivered = false;
  net.Send(a, b, [&] { delivered = true; });
  sim.RunToCompletion();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_count(), 1u);
}

TEST(NetworkTest, CrashMidFlightDropsMessage) {
  Simulation sim(7);
  Network net(&sim, LatencyModel{Milliseconds(100), Milliseconds(0)});
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  bool delivered = false;
  net.Send(a, b, [&] { delivered = true; });
  sim.After(50, [&] { net.Crash(b); });  // Crashes while in flight.
  sim.RunToCompletion();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, RecoveryRestoresDelivery) {
  Simulation sim(7);
  Network net(&sim, LatencyModel{Milliseconds(10), Milliseconds(0)});
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  net.Crash(b);
  net.Recover(b);
  bool delivered = false;
  net.Send(a, b, [&] { delivered = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  Simulation sim(7);
  Network net(&sim, LatencyModel{Milliseconds(10), Milliseconds(0)});
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  net.SetPartition(b, 1);
  bool delivered = false;
  net.Send(a, b, [&] { delivered = true; });
  sim.RunToCompletion();
  EXPECT_FALSE(delivered);

  net.HealPartitions();
  net.Send(a, b, [&] { delivered = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, BroadcastReachesAllOthers) {
  Simulation sim(7);
  Network net(&sim, LatencyModel{Milliseconds(5), Milliseconds(3)});
  NodeId a = net.AddNode("a");
  net.AddNode("b");
  net.AddNode("c");
  net.AddNode("d");
  int received = 0;
  net.Broadcast(a, [&](NodeId) { ++received; });
  sim.RunToCompletion();
  EXPECT_EQ(received, 3);
}

TEST(NetworkTest, JitterWithinBounds) {
  Simulation sim(9);
  Network net(&sim, LatencyModel{Milliseconds(20), Milliseconds(30)});
  for (int i = 0; i < 200; ++i) {
    Duration latency = net.SampleLatency();
    EXPECT_GE(latency, 20);
    EXPECT_LE(latency, 50);
  }
}

TEST(FailureInjectorTest, CrashWindowCrashesAndRecovers) {
  Simulation sim(11);
  Network net(&sim, LatencyModel{});
  NodeId n = net.AddNode("victim");
  FailureInjector injector(&sim, &net);
  injector.CrashFor(n, 100, 200);

  std::vector<bool> up_samples;
  for (TimePoint t : {50, 150, 250, 350}) {
    sim.At(t, [&, t] { up_samples.push_back(net.IsUp(n)); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(up_samples, (std::vector<bool>{true, false, false, true}));
}

TEST(FailureInjectorTest, PermanentCrashNeverRecovers) {
  Simulation sim(11);
  Network net(&sim, LatencyModel{});
  NodeId n = net.AddNode("victim");
  FailureInjector injector(&sim, &net);
  injector.ScheduleCrash(CrashWindow{n, 10, kTimeInfinity});
  sim.RunUntil(10'000);
  EXPECT_FALSE(net.IsUp(n));
}

TEST(FailureInjectorTest, PartitionWindowIsolatesNode) {
  Simulation sim(13);
  Network net(&sim, LatencyModel{Milliseconds(1), Milliseconds(0)});
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  FailureInjector injector(&sim, &net);
  injector.SchedulePartition(PartitionWindow{b, 100, 200});

  int delivered = 0;
  sim.At(150, [&] { net.Send(a, b, [&] { ++delivered; }); });
  sim.At(250, [&] { net.Send(a, b, [&] { ++delivered; }); });
  sim.RunToCompletion();
  EXPECT_EQ(delivered, 1);  // Only the post-heal message lands.
}

}  // namespace
}  // namespace ac3::sim
