// The sharded chain-index substrate (PR: sharded multi-chain world state):
//  * SlabPool geometry, reuse, and the memory-ceiling contract;
//  * ShardedIndex semantics — pointer stability across rehash,
//    deterministic iteration, the hot list, and randomized churn proven
//    equivalent to the single-map oracle mode (the MineHeaderScalar /
//    VisibleHeadScan discipline);
//  * ChainIndex behind a Blockchain — fork/reorg churn driven identically
//    into a sharded chain and an oracle chain must answer every query
//    identically, and per-entry state snapshots stay independent.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/sharded_index.h"
#include "src/common/slab.h"
#include "src/contracts/htlc_contract.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

// ---------------------------------------------------------------- SlabPool

TEST(SlabPoolTest, TracksLiveBlocksInEveryBuild) {
  SlabPool pool(24);
  void* a = pool.Allocate();
  void* b = pool.Allocate();
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live_blocks(), 2u);
  pool.Deallocate(a);
  pool.Deallocate(b);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(SlabPoolTest, CarvesSlabsAndReportsReservedBytes) {
  if (!SlabPool::kPoolingEnabled) {
    GTEST_SKIP() << "slab geometry is bypassed under sanitizers";
  }
  SlabPool pool(24, /*blocks_per_slab=*/8);
  // Block size rounds up to max_align_t alignment.
  EXPECT_EQ(pool.block_size() % alignof(std::max_align_t), 0u);
  EXPECT_GE(pool.block_size(), 24u);
  EXPECT_EQ(pool.slab_count(), 0u);
  EXPECT_EQ(pool.bytes_reserved(), 0u);

  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(pool.Allocate());
  EXPECT_EQ(pool.slab_count(), 1u);
  blocks.push_back(pool.Allocate());  // The 9th forces a second slab.
  EXPECT_EQ(pool.slab_count(), 2u);
  EXPECT_EQ(pool.bytes_reserved(), 2u * 8u * pool.block_size());

  for (void* block : blocks) pool.Deallocate(block);
  // Slabs are retained for reuse; reserved bytes stay put.
  EXPECT_EQ(pool.bytes_reserved(), 2u * 8u * pool.block_size());
}

TEST(SlabPoolTest, ReusesFreedBlocksWithoutNewSlabs) {
  if (!SlabPool::kPoolingEnabled) {
    GTEST_SKIP() << "free-list reuse is bypassed under sanitizers";
  }
  SlabPool pool(64, /*blocks_per_slab=*/8);
  void* first = pool.Allocate();
  pool.Deallocate(first);
  // LIFO free list: the freed block comes straight back.
  EXPECT_EQ(pool.Allocate(), first);
  const size_t slabs = pool.slab_count();
  for (int round = 0; round < 100; ++round) {
    void* block = pool.Allocate();
    pool.Deallocate(block);
  }
  EXPECT_EQ(pool.slab_count(), slabs);
  pool.Deallocate(first);
}

// ------------------------------------------------------------ ShardedIndex

TEST(ShardedIndexTest, EmplaceFindContains) {
  ShardedIndex<uint64_t, uint64_t> index;
  EXPECT_TRUE(index.empty());
  auto [value, inserted] = index.Emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*value, 70u);
  // A duplicate emplace keeps the stored value and reports no insert.
  auto [again, second] = index.Emplace(7, 999);
  EXPECT_FALSE(second);
  EXPECT_EQ(again, value);
  EXPECT_EQ(*again, 70u);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.Contains(7));
  EXPECT_FALSE(index.Contains(8));
  const auto& const_index = index;
  ASSERT_NE(const_index.Find(7), nullptr);
  EXPECT_EQ(*const_index.Find(7), 70u);
  EXPECT_EQ(const_index.Find(8), nullptr);
}

TEST(ShardedIndexTest, GetOrCreateAccumulates) {
  ShardedIndex<uint64_t, std::vector<int>> index;
  index.GetOrCreate(3).push_back(1);
  index.GetOrCreate(3).push_back(2);
  ASSERT_NE(index.Find(3), nullptr);
  EXPECT_EQ(*index.Find(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(index.size(), 1u);
}

TEST(ShardedIndexTest, ValuePointersSurviveRehash) {
  ShardedIndex<uint64_t, uint64_t> index;
  std::vector<const uint64_t*> pointers;
  for (uint64_t key = 0; key < 100; ++key) {
    pointers.push_back(index.Emplace(key, key * 10).first);
  }
  // 10k more inserts force many bucket-table rehashes in every shard.
  for (uint64_t key = 100; key < 10100; ++key) index.Emplace(key, key * 10);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(index.Find(key), pointers[key]);
    EXPECT_EQ(*pointers[key], key * 10);
  }
}

TEST(ShardedIndexTest, IterationIsDeterministicAcrossInstances) {
  using Index = ShardedIndex<uint64_t, uint64_t>;
  Index::Options options;
  options.shards = 8;
  Index first(options);
  Index second(options);
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.NextU64() % 1500;
    first.Emplace(key, key + 1);
    second.Emplace(key, key + 1);
  }
  std::vector<std::pair<uint64_t, uint64_t>> seen_first;
  std::vector<std::pair<uint64_t, uint64_t>> seen_second;
  first.ForEach([&](const uint64_t& k, const uint64_t& v) {
    seen_first.emplace_back(k, v);
  });
  second.ForEach([&](const uint64_t& k, const uint64_t& v) {
    seen_second.emplace_back(k, v);
  });
  EXPECT_EQ(seen_first.size(), first.size());
  // Identical operation sequences iterate identically — the property the
  // golden fingerprints lean on.
  EXPECT_EQ(seen_first, seen_second);
}

TEST(ShardedIndexTest, OracleIteratesInInsertionOrder) {
  ShardedIndex<uint64_t, uint64_t>::Options options;
  options.oracle = true;
  ShardedIndex<uint64_t, uint64_t> index(options);
  EXPECT_TRUE(index.is_oracle());
  EXPECT_EQ(index.shard_count(), 1u);
  for (uint64_t key : {5u, 1u, 9u, 3u}) index.Emplace(key, key);
  std::vector<uint64_t> order;
  index.ForEach([&](const uint64_t& k, const uint64_t&) {
    order.push_back(k);
  });
  EXPECT_EQ(order, (std::vector<uint64_t>{5, 1, 9, 3}));
}

TEST(ShardedIndexTest, RandomChurnMatchesOracle) {
  using Index = ShardedIndex<uint64_t, uint64_t>;
  Index::Options sharded_options;
  sharded_options.shards = 8;
  Index::Options oracle_options;
  oracle_options.oracle = true;
  Index sharded(sharded_options);
  Index oracle(oracle_options);

  Rng rng(4242);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.NextU64() % 4096;
    switch (rng.NextU64() % 4) {
      case 0: {
        const uint64_t value = rng.NextU64();
        auto a = sharded.Emplace(key, value);
        auto b = oracle.Emplace(key, value);
        EXPECT_EQ(a.second, b.second);
        EXPECT_EQ(*a.first, *b.first);
        break;
      }
      case 1: {
        const uint64_t* a = std::as_const(sharded).Find(key);
        const uint64_t* b = std::as_const(oracle).Find(key);
        ASSERT_EQ(a != nullptr, b != nullptr);
        if (a != nullptr) {
          EXPECT_EQ(*a, *b);
        }
        break;
      }
      case 2:
        sharded.Touch(key);
        oracle.Touch(key);
        break;
      default: {
        const uint64_t bump = rng.NextU64() % 7;
        sharded.GetOrCreate(key) += bump;
        oracle.GetOrCreate(key) += bump;
        break;
      }
    }
  }
  ASSERT_EQ(sharded.size(), oracle.size());
  // Same key set, same values — compare as sorted pairs since the two
  // backends legitimately iterate in different orders.
  std::vector<std::pair<uint64_t, uint64_t>> a, b;
  sharded.ForEach([&](const uint64_t& k, const uint64_t& v) {
    a.emplace_back(k, v);
  });
  oracle.ForEach([&](const uint64_t& k, const uint64_t& v) {
    b.emplace_back(k, v);
  });
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ShardedIndexTest, HotListFrontIsMostRecentlyTouched) {
  ShardedIndex<uint64_t, uint64_t>::Options options;
  options.shards = 1;  // One shard so the hot order is fully observable.
  ShardedIndex<uint64_t, uint64_t> index(options);
  index.Emplace(1, 10);
  index.Emplace(2, 20);
  index.Emplace(3, 30);

  auto hot_front = [&]() {
    uint64_t front = 0;
    bool first = true;
    index.ForEachHot(1, [&](const uint64_t& k, const uint64_t&) {
      if (first) front = k;
      first = false;
    });
    return front;
  };
  EXPECT_EQ(hot_front(), 3u);  // Insertion counts as a touch.
  index.Touch(1);
  EXPECT_EQ(hot_front(), 1u);
  // A const lookup is pure-read: the hot order must not move.
  ASSERT_NE(std::as_const(index).Find(2), nullptr);
  EXPECT_EQ(hot_front(), 1u);
  // A mutable lookup touches.
  ASSERT_NE(index.Find(2), nullptr);
  EXPECT_EQ(hot_front(), 2u);
}

TEST(ShardedIndexTest, SlabMemoryStaysUnderCeiling) {
  if (!SlabPool::kPoolingEnabled) {
    GTEST_SKIP() << "bytes_reserved degrades to live bytes under sanitizers";
  }
  ShardedIndex<uint64_t, uint64_t>::Options options;
  options.shards = 16;
  ShardedIndex<uint64_t, uint64_t> index(options);
  constexpr size_t kEntries = 100000;
  for (uint64_t key = 0; key < kEntries; ++key) index.Emplace(key, key);
  const size_t reserved = index.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // Ceiling: generous per-node bound plus one partially-used slab per
  // shard. A regression to per-node heap allocation or slab leak per
  // rehash blows straight through this.
  const size_t kPerNodeCeiling = 160;
  const size_t kSlabSlack = 16 * 64 * 1024;
  EXPECT_LE(reserved, kEntries * kPerNodeCeiling + kSlabSlack);
}

// -------------------------------------------------- ChainIndex equivalence

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(61);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(62);
const crypto::KeyPair kMiner = crypto::KeyPair::FromSeed(63);

chain::ChainParams ChurnParams() {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  return params;
}

TEST(ChainIndexTest, ForkReorgChurnMatchesOracleChain) {
  contracts::RegisterBuiltinContracts();
  const chain::ChainParams params = ChurnParams();
  const auto allocations =
      testutil::Fund({kAlice.public_key(), kBob.public_key()}, 100000);
  chain::Blockchain sharded(params, allocations);
  chain::ChainIndex::Options oracle_options;
  oracle_options.oracle = true;
  chain::Blockchain oracle(params, allocations, oracle_options);
  ASSERT_EQ(sharded.genesis()->hash, oracle.genesis()->hash);

  Rng rng(777);
  TimePoint now = 0;
  std::vector<crypto::Hash256> tx_ids;
  // Assemble once (on the sharded chain), submit the same block to both;
  // every status must agree.
  auto mine_on = [&](const crypto::Hash256& parent,
                     const std::vector<chain::Transaction>& txs) {
    now += 100;
    auto block =
        sharded.AssembleBlock(parent, txs, kMiner.public_key(), now, &rng);
    ASSERT_TRUE(block.ok());
    const Status a = sharded.SubmitBlock(*block, now);
    const Status b = oracle.SubmitBlock(*block, now);
    EXPECT_EQ(a.ok(), b.ok());
    for (const chain::Transaction& tx : block->txs) tx_ids.push_back(tx.Id());
  };

  chain::Wallet alice(kAlice, params.id);
  chain::Wallet bob(kBob, params.id);

  // An HTLC deploy + redeem so FindCall has real traffic to index.
  const Bytes secret{4, 8, 15, 16, 23, 42};
  auto deploy = alice.BuildDeploy(
      sharded.StateAtHead(), contracts::kHtlcKind,
      contracts::HtlcContract::MakeInitPayload(
          kBob.public_key(), crypto::Hash256::Of(secret), Minutes(60)),
      500, params.deploy_fee, /*nonce=*/1);
  ASSERT_TRUE(deploy.ok());
  const crypto::Hash256 contract_id = deploy->Id();
  mine_on(sharded.head()->hash, {*deploy});
  auto redeem = bob.BuildCall(sharded.StateAtHead(), contract_id,
                              contracts::kRedeemFunction, secret, 1,
                              /*nonce=*/1);
  ASSERT_TRUE(redeem.ok());
  mine_on(sharded.head()->hash, {*redeem});

  // Randomized churn: transfers on the head, plus empty fork blocks on
  // random recent parents (some of which overtake the head — reorgs).
  uint64_t nonce = 2;
  for (int round = 0; round < 40; ++round) {
    if (rng.NextU64() % 3 == 0) {
      auto tx = alice.BuildTransfer(sharded.StateAtHead(), kBob.public_key(),
                                    1 + rng.NextU64() % 5, 1, nonce++);
      ASSERT_TRUE(tx.ok());
      mine_on(sharded.head()->hash, {*tx});
    } else {
      const auto& arrivals = sharded.arrival_order();
      const size_t window = std::min<size_t>(arrivals.size(), 6);
      const chain::BlockEntry* parent =
          arrivals[arrivals.size() - 1 - rng.NextU64() % window];
      mine_on(parent->hash, {});
    }
    ASSERT_EQ(sharded.head()->hash, oracle.head()->hash);
    ASSERT_EQ(sharded.block_count(), oracle.block_count());
  }
  ASSERT_GT(sharded.block_count(), 40u);

  // Every query the facade exposes answers identically in both modes.
  EXPECT_EQ(sharded.index().EntryCount(), oracle.index().EntryCount());
  for (const crypto::Hash256& tx_id : tx_ids) {
    const auto a = sharded.FindTx(tx_id);
    const auto b = oracle.FindTx(tx_id);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->entry->hash, b->entry->hash);
      EXPECT_EQ(a->index, b->index);
    }
    EXPECT_EQ(sharded.index().OccurrencesOf(tx_id).size(),
              oracle.index().OccurrencesOf(tx_id).size());
    EXPECT_EQ(sharded.TxOnBranch(*sharded.head(), tx_id),
              oracle.TxOnBranch(*oracle.head(), tx_id));
  }
  for (bool require_success : {false, true}) {
    const auto a = sharded.FindCall(contract_id, contracts::kRedeemFunction,
                                    require_success);
    const auto b = oracle.FindCall(contract_id, contracts::kRedeemFunction,
                                   require_success);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->entry->hash, b->entry->hash);
      EXPECT_EQ(a->index, b->index);
    }
  }
  // Entry-by-entry: everything the sharded store holds, the oracle holds,
  // with the same canonical status.
  size_t visited = 0;
  sharded.ForEachEntry(
      [&](const crypto::Hash256& hash, const chain::BlockEntry& entry) {
        ++visited;
        const chain::BlockEntry* twin = oracle.Get(hash);
        ASSERT_NE(twin, nullptr);
        EXPECT_EQ(twin->height(), entry.height());
        EXPECT_EQ(sharded.ConfirmationsOf(hash), oracle.ConfirmationsOf(hash));
      });
  EXPECT_EQ(visited, sharded.block_count());
}

TEST(ChainIndexTest, EntrySnapshotsAreIndependentOfLaterChurn) {
  testutil::TestChain tc(ChurnParams(),
                         testutil::Fund({kAlice.public_key()}, 1000));
  chain::Wallet alice(kAlice, tc.chain().id());
  auto tx = alice.BuildTransfer(tc.chain().StateAtHead(), kBob.public_key(),
                                100, 1, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tc.MineBlock({*tx}).ok());
  const chain::BlockEntry* snapshot_entry = tc.chain().head();
  const chain::Amount bob_then =
      snapshot_entry->state.BalanceOf(kBob.public_key());
  EXPECT_EQ(bob_then, 100);

  // Later blocks (including a fork off the snapshot's parent) must not
  // disturb the stored entry's state snapshot.
  auto tx2 = alice.BuildTransfer(tc.chain().StateAtHead(), kBob.public_key(),
                                 25, 1, 2);
  ASSERT_TRUE(tx2.ok());
  ASSERT_TRUE(tc.MineBlock({*tx2}).ok());
  ASSERT_TRUE(tc.MineBlockOn(snapshot_entry->block.header.prev_hash, {}).ok());
  ASSERT_TRUE(tc.MineEmpty(5).ok());
  EXPECT_EQ(snapshot_entry->state.BalanceOf(kBob.public_key()), bob_then);
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(kBob.public_key()), 125);
}

}  // namespace
}  // namespace ac3
