// The uniform bench CLI (bench::Options): one table-driven parser shared
// by every harness in bench/. These tests pin the contract the benches
// and CI rely on — shared flags fill the BenchContext the envelope writer
// consumes, axis lists go through the same name tables as the JSON
// output, unknown flags exit non-zero, and ParseKnown forwards foreign
// flags (google-benchmark's) instead of failing.

#include <gtest/gtest.h>

#include <vector>

#include "bench/bench_util.h"

namespace ac3 {
namespace {

using bench::Options;

TEST(BenchCliTest, ParsesSharedFlags) {
  const char* argv[] = {"bench", "--smoke", "--out", "/tmp/x", "--threads",
                        "3"};
  Options options = Options::Parse(6, const_cast<char**>(argv));
  EXPECT_TRUE(options.smoke);
  EXPECT_EQ(options.out_dir, "/tmp/x");
  EXPECT_EQ(options.threads, 3);
  EXPECT_FALSE(options.exit_early);
}

TEST(BenchCliTest, DefaultsWhenNoFlags) {
  const char* argv[] = {"bench"};
  Options options = Options::Parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(options.smoke);
  EXPECT_EQ(options.out_dir, ".");
  EXPECT_EQ(options.threads, 0);
  EXPECT_FALSE(options.seed_set);
  EXPECT_FALSE(options.exit_early);
}

TEST(BenchCliTest, UnknownFlagRequestsNonZeroExit) {
  const char* argv[] = {"bench", "--bogus"};
  Options options = Options::Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(options.exit_early);
  EXPECT_EQ(options.exit_code, 1);
}

TEST(BenchCliTest, MissingValueRequestsNonZeroExit) {
  const char* argv[] = {"bench", "--out"};
  Options options = Options::Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(options.exit_early);
  EXPECT_EQ(options.exit_code, 1);
}

TEST(BenchCliTest, HelpExitsZero) {
  const char* argv[] = {"bench", "--help"};
  Options options = Options::Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(options.exit_early);
  EXPECT_EQ(options.exit_code, 0);
}

TEST(BenchCliTest, SeedOverridesOnlyWhenGiven) {
  const char* with[] = {"bench", "--seed", "1234"};
  Options given = Options::Parse(3, const_cast<char**>(with));
  ASSERT_FALSE(given.exit_early);
  EXPECT_TRUE(given.seed_set);
  EXPECT_EQ(given.SeedOr(7), 1234u);

  const char* without[] = {"bench"};
  Options absent = Options::Parse(1, const_cast<char**>(without));
  EXPECT_FALSE(absent.seed_set);
  EXPECT_EQ(absent.SeedOr(7), 7u);
}

TEST(BenchCliTest, ParsesAxisListsThroughTheSharedTables) {
  const char* argv[] = {"bench", "--protocols", "herlihy,ac3wn",
                        "--topologies", "ring,complete", "--failures",
                        "crash_participant"};
  Options options = Options::Parse(7, const_cast<char**>(argv));
  ASSERT_FALSE(options.exit_early);
  ASSERT_EQ(options.protocols.size(), 2u);
  EXPECT_EQ(options.protocols[1], runner::Protocol::kAc3wn);
  ASSERT_EQ(options.topologies.size(), 2u);
  EXPECT_EQ(options.topologies[1], runner::Topology::kComplete);
  ASSERT_EQ(options.failures.size(), 1u);
  EXPECT_EQ(options.failures[0], runner::FailureMode::kCrashParticipant);

  runner::SweepGridConfig grid;
  options.ApplyAxisOverrides(&grid);
  EXPECT_EQ(grid.topologies, options.topologies);
  EXPECT_EQ(grid.protocols, options.protocols);
  EXPECT_EQ(grid.failures, options.failures);
}

TEST(BenchCliTest, ParsesCoordinatorCrashFailureSpellings) {
  // The commit-study axis rows flow to the CLI through the shared name
  // tables — no bench-side registration needed.
  const char* argv[] = {"bench", "--failures",
                        "crash_coordinator_at_prepare,"
                        "crash_coordinator_at_commit",
                        "--protocols", "quorum"};
  Options options = Options::Parse(5, const_cast<char**>(argv));
  ASSERT_FALSE(options.exit_early);
  ASSERT_EQ(options.failures.size(), 2u);
  EXPECT_EQ(options.failures[0],
            runner::FailureMode::kCrashCoordinatorAtPrepare);
  EXPECT_EQ(options.failures[1],
            runner::FailureMode::kCrashCoordinatorAtCommit);
  ASSERT_EQ(options.protocols.size(), 1u);
  EXPECT_EQ(options.protocols[0], runner::Protocol::kQuorum);
}

TEST(BenchCliTest, ParsesMessageFaultFailureSpellings) {
  // The message-overhead study's fault axis rides the same shared tables;
  // these spellings are what CI smoke flags and committed BENCH files use.
  const char* argv[] = {"bench", "--failures",
                        "drop_messages,duplicate_messages"};
  Options options = Options::Parse(3, const_cast<char**>(argv));
  ASSERT_FALSE(options.exit_early);
  ASSERT_EQ(options.failures.size(), 2u);
  EXPECT_EQ(options.failures[0], runner::FailureMode::kDropMessages);
  EXPECT_EQ(options.failures[1], runner::FailureMode::kDuplicateMessages);
}

TEST(BenchCliTest, EmptyAxisOverridesKeepTheGridDefaults) {
  const char* argv[] = {"bench", "--smoke"};
  Options options = Options::Parse(2, const_cast<char**>(argv));
  runner::SweepGridConfig grid;
  grid.protocols = {runner::Protocol::kHerlihy};
  const auto before = grid.protocols;
  options.ApplyAxisOverrides(&grid);
  EXPECT_EQ(grid.protocols, before);
}

TEST(BenchCliTest, RejectsUnknownAxisNames) {
  const char* argv[] = {"bench", "--topologies", "ring,donut"};
  Options options = Options::Parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(options.exit_early);
  EXPECT_EQ(options.exit_code, 1);
}

TEST(BenchCliTest, ParseKnownForwardsForeignFlags) {
  const char* argv[] = {"bench", "--smoke", "--benchmark_filter=Pow",
                        "--out", "/tmp/y"};
  std::vector<char*> rest;
  Options options = Options::ParseKnown(5, const_cast<char**>(argv), &rest);
  ASSERT_FALSE(options.exit_early);
  EXPECT_TRUE(options.smoke);
  EXPECT_EQ(options.out_dir, "/tmp/y");
  // argv[0] plus the one foreign flag survive for the wrapped consumer.
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_STREQ(rest[0], "bench");
  EXPECT_STREQ(rest[1], "--benchmark_filter=Pow");
}

}  // namespace
}  // namespace ac3
