// Shared helpers for tests that iterate the SHA-256 dispatch ladder
// (tests/crypto_test.cc and tests/hotpath_test.cc): a RAII guard that
// restores the entry dispatch level, and the enumeration of levels
// available in this process. Kept in one place so adding a dispatch
// level extends every equivalence suite at once.

#ifndef AC3_TESTS_DISPATCH_TEST_UTIL_H_
#define AC3_TESTS_DISPATCH_TEST_UTIL_H_

#include <vector>

#include "src/crypto/sha256.h"

namespace ac3::testutil {

/// Restores the entry SHA-256 dispatch level on scope exit, so a failing
/// equivalence test cannot leak a forced level into later tests.
class DispatchGuard {
 public:
  DispatchGuard() : saved_(crypto::Sha256::ActiveDispatch()) {}
  ~DispatchGuard() { crypto::Sha256::SetDispatch(saved_); }

 private:
  crypto::Sha256::Dispatch saved_;
};

/// Every dispatch level this process can run (honors the
/// AC3_SHA256_DISPATCH pin, under which only the pinned level lists).
inline std::vector<crypto::Sha256::Dispatch> AvailableDispatches() {
  std::vector<crypto::Sha256::Dispatch> levels;
  for (crypto::Sha256::Dispatch level :
       {crypto::Sha256::Dispatch::kScalar, crypto::Sha256::Dispatch::kShaNi,
        crypto::Sha256::Dispatch::kAvx2}) {
    if (crypto::Sha256::DispatchAvailable(level)) levels.push_back(level);
  }
  return levels;
}

}  // namespace ac3::testutil

#endif  // AC3_TESTS_DISPATCH_TEST_UTIL_H_
