// Unit tests for src/protocols/messages: the typed protocol-message
// envelope. Pins the canonical binary round trip for every MessageKind,
// the EncodedSize() == Encode().size() contract the network's byte
// counters rely on, and the decoder's rejection of truncated buffers,
// unknown kinds, and trailing garbage.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/crypto/hash256.h"
#include "src/protocols/messages.h"

namespace ac3::proto {
namespace {

// One representative message per kind, with non-default field values so a
// round trip that zeroes anything is caught.
Message Envelope(Message::Payload payload) {
  Message msg;
  msg.swap_id = crypto::Hash256::OfString("messages-test-swap");
  msg.epoch = 7;
  msg.seq = 42;
  msg.sender = 3;
  msg.receiver = 11;
  msg.payload = std::move(payload);
  return msg;
}

std::vector<Message> OnePerKind() {
  std::vector<Message> all;
  all.push_back(Envelope(PreparePayload{Bytes{0xde, 0xad, 0xbe, 0xef}}));
  all.push_back(Envelope(AckPayload{5, 1, true}));
  all.push_back(Envelope(PreCommitPayload{2, 2}));
  all.push_back(Envelope(DecisionPayload{1, 1, Bytes{0x01, 0x02, 0x03}}));
  all.push_back(Envelope(StateReqPayload{4, 0}));
  all.push_back(Envelope(StateReplyPayload{4, 9, 2, 1, true}));
  all.push_back(Envelope(RedeemNotifyPayload{1}));
  all.push_back(Envelope(TxSubmitPayload{6, 311}));
  return all;
}

void ExpectSame(const Message& a, const Message& b) {
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.swap_id, b.swap_id);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.receiver, b.receiver);
  EXPECT_EQ(a.Encode(), b.Encode());
}

TEST(MessagesTest, KindFollowsPayloadAlternative) {
  const std::vector<Message> all = OnePerKind();
  ASSERT_EQ(all.size(), 8u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(all[i].kind()), i + 1);
  }
}

TEST(MessagesTest, EveryKindRoundTrips) {
  for (const Message& msg : OnePerKind()) {
    const Bytes wire = msg.Encode();
    auto decoded = Message::Decode(wire);
    ASSERT_TRUE(decoded.ok()) << MessageKindName(msg.kind()) << ": "
                              << decoded.status().ToString();
    ExpectSame(msg, *decoded);
  }
}

TEST(MessagesTest, EncodedSizeMatchesEncode) {
  for (const Message& msg : OnePerKind()) {
    EXPECT_EQ(msg.EncodedSize(), msg.Encode().size())
        << MessageKindName(msg.kind());
  }
}

TEST(MessagesTest, KindNamesAreStable) {
  EXPECT_STREQ(MessageKindName(MessageKind::kPrepare), "prepare");
  EXPECT_STREQ(MessageKindName(MessageKind::kAck), "ack");
  EXPECT_STREQ(MessageKindName(MessageKind::kPreCommit), "pre_commit");
  EXPECT_STREQ(MessageKindName(MessageKind::kDecision), "decision");
  EXPECT_STREQ(MessageKindName(MessageKind::kStateReq), "state_req");
  EXPECT_STREQ(MessageKindName(MessageKind::kStateReply), "state_reply");
  EXPECT_STREQ(MessageKindName(MessageKind::kRedeemNotify), "redeem_notify");
  EXPECT_STREQ(MessageKindName(MessageKind::kTxSubmit), "tx_submit");
}

// Randomized envelopes and variable-length payloads: the round trip must
// be lossless for arbitrary field values, including empty and large byte
// strings.
TEST(MessagesTest, FuzzedPayloadsRoundTrip) {
  Rng rng(20260807);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes blob(rng.NextBelow(300), 0);
    for (auto& b : blob) b = static_cast<uint8_t>(rng.NextBelow(256));

    Message msg;
    msg.swap_id = crypto::Hash256::OfString("fuzz-" + std::to_string(iter));
    msg.epoch = rng.NextU64();
    msg.seq = rng.NextU64();
    msg.sender = static_cast<sim::NodeId>(rng.NextBelow(1 << 20));
    msg.receiver = static_cast<sim::NodeId>(rng.NextBelow(1 << 20));
    switch (rng.NextBelow(4)) {
      case 0:
        msg.payload = PreparePayload{blob};
        break;
      case 1:
        msg.payload = DecisionPayload{
            static_cast<uint32_t>(rng.NextBelow(64)),
            static_cast<uint8_t>(rng.NextBelow(3)), blob};
        break;
      case 2:
        msg.payload = StateReplyPayload{
            static_cast<uint32_t>(rng.NextBelow(64)), rng.NextU64(),
            static_cast<uint8_t>(rng.NextBelow(4)),
            static_cast<uint8_t>(rng.NextBelow(3)), rng.NextBool(0.5)};
        break;
      default:
        msg.payload = TxSubmitPayload{
            static_cast<chain::ChainId>(rng.NextBelow(1 << 16)),
            static_cast<uint32_t>(rng.NextBelow(1 << 24))};
        break;
    }

    const Bytes wire = msg.Encode();
    EXPECT_EQ(msg.EncodedSize(), wire.size());
    auto decoded = Message::Decode(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectSame(msg, *decoded);
  }
}

// Every strict prefix of a valid encoding must be rejected — the decoder
// never reads past the buffer and never accepts a partial message.
TEST(MessagesTest, TruncatedBuffersAreRejected) {
  for (const Message& msg : OnePerKind()) {
    const Bytes wire = msg.Encode();
    for (size_t len = 0; len < wire.size(); ++len) {
      Bytes cut(wire.begin(), wire.begin() + static_cast<long>(len));
      EXPECT_FALSE(Message::Decode(cut).ok())
          << MessageKindName(msg.kind()) << " accepted prefix of " << len
          << "/" << wire.size() << " bytes";
    }
  }
}

TEST(MessagesTest, TrailingBytesAreRejected) {
  for (const Message& msg : OnePerKind()) {
    Bytes wire = msg.Encode();
    wire.push_back(0x00);
    EXPECT_FALSE(Message::Decode(wire).ok())
        << MessageKindName(msg.kind()) << " accepted trailing garbage";
  }
}

TEST(MessagesTest, UnknownKindIsRejected) {
  Bytes wire = OnePerKind().front().Encode();
  wire[0] = 0;  // Below the kind range.
  EXPECT_FALSE(Message::Decode(wire).ok());
  wire[0] = 9;  // Above the kind range.
  EXPECT_FALSE(Message::Decode(wire).ok());
}

// Booleans ride a single byte that must be exactly 0 or 1 — a sloppy
// encoder (or bit-flipped wire) is surfaced, not silently truthified.
TEST(MessagesTest, NonCanonicalBoolIsRejected) {
  const Message msg = Envelope(AckPayload{5, 1, true});
  Bytes wire = msg.Encode();
  wire.back() = 2;  // accepted flag is the final payload byte.
  EXPECT_FALSE(Message::Decode(wire).ok());
}

}  // namespace
}  // namespace ac3::proto
