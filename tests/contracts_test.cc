// Contract-layer tests: the Algorithm 1 template's state machine and its
// three instantiations (HTLC, Algorithm 2 CentralizedSC, Algorithm 4
// PermissionlessSC), the contract factory, and on-ledger execution
// (deploy fees, payouts, failed-guard receipts).

#include <gtest/gtest.h>

#include "src/chain/ledger.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/centralized_contract.h"
#include "src/contracts/contract.h"
#include "src/contracts/htlc_contract.h"
#include "src/contracts/permissionless_contract.h"
#include "tests/test_util.h"

namespace ac3::contracts {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(1);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(2);
const crypto::KeyPair kTrent = crypto::KeyPair::FromSeed(3);

DeployContext MakeDeployCtx(chain::Amount value) {
  DeployContext ctx;
  ctx.chain_id = 0;
  ctx.tx_id = crypto::Hash256::Of(Bytes{1, 2, 3});
  ctx.sender = kAlice.public_key();
  ctx.value = value;
  ctx.block_time = 100;
  ctx.block_height = 1;
  return ctx;
}

struct CallEnv {
  std::vector<Payout> payouts;
  CallContext ctx;
  explicit CallEnv(TimePoint block_time = 200) {
    ctx.chain_id = 0;
    ctx.tx_id = crypto::Hash256::Of(Bytes{9});
    ctx.sender = kBob.public_key();
    ctx.block_time = block_time;
    ctx.block_height = 2;
    ctx.payouts = &payouts;
  }
};

Result<ContractPtr> MakeHtlc(const Bytes& secret, TimePoint timelock,
                             chain::Amount value = 500) {
  Bytes payload = HtlcContract::MakeInitPayload(
      kBob.public_key(), crypto::Hash256::Of(secret), timelock);
  return HtlcContract::Create(payload, MakeDeployCtx(value));
}

// -------------------------------------------------- Algorithm 1 template

TEST(AtomicSwapTemplateTest, ConstructorInitializesPerAlgorithm1) {
  auto contract = MakeHtlc(Bytes{42}, 1000);
  ASSERT_TRUE(contract.ok());
  const auto* swap = dynamic_cast<const AtomicSwapContract*>(contract->get());
  ASSERT_NE(swap, nullptr);
  EXPECT_EQ(swap->state(), SwapState::kPublished);
  EXPECT_EQ(swap->sender(), kAlice.public_key());      // this.s = msg.sender
  EXPECT_EQ(swap->recipient(), kBob.public_key());     // this.r = r
  EXPECT_EQ(swap->locked_value(), 500u);               // this.a = msg.value
}

TEST(AtomicSwapTemplateTest, RedeemTransfersAssetToRecipient) {
  auto contract = MakeHtlc(Bytes{42}, 1000);
  ASSERT_TRUE(contract.ok());
  CallEnv env;
  auto outcome = (*contract)->Call(kRedeemFunction, Bytes{42}, env.ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(env.payouts.size(), 1u);
  EXPECT_EQ(env.payouts[0].value, 500u);
  EXPECT_EQ(env.payouts[0].recipient, kBob.public_key());
  const auto* next =
      dynamic_cast<const AtomicSwapContract*>(outcome->next.get());
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->state(), SwapState::kRedeemed);
  EXPECT_EQ(next->locked_value(), 0u);
}

TEST(AtomicSwapTemplateTest, RefundTransfersAssetBackToSender) {
  auto contract = MakeHtlc(Bytes{42}, /*timelock=*/150);
  ASSERT_TRUE(contract.ok());
  CallEnv env(/*block_time=*/200);  // past the timelock
  auto outcome = (*contract)->Call(kRefundFunction, {}, env.ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(env.payouts.size(), 1u);
  EXPECT_EQ(env.payouts[0].recipient, kAlice.public_key());
  const auto* next =
      dynamic_cast<const AtomicSwapContract*>(outcome->next.get());
  EXPECT_EQ(next->state(), SwapState::kRefunded);
}

TEST(AtomicSwapTemplateTest, RedeemRequiresStateP) {
  auto contract = MakeHtlc(Bytes{42}, 1000);
  CallEnv env;
  auto redeemed = (*contract)->Call(kRedeemFunction, Bytes{42}, env.ctx);
  ASSERT_TRUE(redeemed.ok());
  // Second redeem on the RD snapshot must fail the `requires` guard.
  CallEnv env2;
  auto again = redeemed->next->Call(kRedeemFunction, Bytes{42}, env2.ctx);
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(env2.payouts.empty());
}

TEST(AtomicSwapTemplateTest, RefundAfterRedeemImpossible) {
  // The state machine allows P->RD or P->RF, never RD->RF: the on-chain
  // backbone of atomicity.
  auto contract = MakeHtlc(Bytes{42}, /*timelock=*/150);
  CallEnv env(/*block_time=*/200);
  auto redeemed = (*contract)->Call(kRedeemFunction, Bytes{42}, env.ctx);
  ASSERT_TRUE(redeemed.ok());
  CallEnv env2(/*block_time=*/500);
  auto refund = redeemed->next->Call(kRefundFunction, {}, env2.ctx);
  EXPECT_EQ(refund.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AtomicSwapTemplateTest, UnknownFunctionRejected) {
  auto contract = MakeHtlc(Bytes{42}, 1000);
  CallEnv env;
  auto outcome = (*contract)->Call("selfdestruct", {}, env.ctx);
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(AtomicSwapTemplateTest, FailedGuardLeavesStateUnchanged) {
  auto contract = MakeHtlc(Bytes{42}, 1000);
  CallEnv env;
  auto outcome = (*contract)->Call(kRedeemFunction, Bytes{7}, env.ctx);
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(env.payouts.empty());
  const auto* swap = dynamic_cast<const AtomicSwapContract*>(contract->get());
  EXPECT_EQ(swap->state(), SwapState::kPublished);
}

// ------------------------------------------------------------------- HTLC

TEST(HtlcContractTest, RedeemRequiresPreimage) {
  auto contract = MakeHtlc(Bytes{1, 2, 3}, 1000);
  CallEnv env;
  EXPECT_FALSE((*contract)->Call(kRedeemFunction, Bytes{3, 2, 1}, env.ctx).ok());
  EXPECT_TRUE((*contract)->Call(kRedeemFunction, Bytes{1, 2, 3}, env.ctx).ok());
}

TEST(HtlcContractTest, RefundOnlyAfterTimelock) {
  auto contract = MakeHtlc(Bytes{1}, /*timelock=*/500);
  CallEnv before(/*block_time=*/499);
  EXPECT_FALSE((*contract)->Call(kRefundFunction, {}, before.ctx).ok());
  CallEnv at(/*block_time=*/500);
  EXPECT_TRUE((*contract)->Call(kRefundFunction, {}, at.ctx).ok());
}

TEST(HtlcContractTest, RejectsZeroValueDeploy) {
  auto contract = MakeHtlc(Bytes{1}, 1000, /*value=*/0);
  EXPECT_EQ(contract.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- Algorithm 2 (AC3TW SC)

class CentralizedContractTest : public ::testing::Test {
 protected:
  CentralizedContractTest() {
    ms_id_ = crypto::Hash256::Of(Bytes{0xAA});
    Bytes payload = CentralizedContract::MakeInitPayload(
        kBob.public_key(), ms_id_, kTrent.public_key());
    contract_ = *CentralizedContract::Create(payload, MakeDeployCtx(500));
  }

  crypto::Signature SignCommitment(crypto::CommitmentTag tag,
                                   const crypto::KeyPair& signer) const {
    return signer.Sign(crypto::SignatureCommitmentMessage(ms_id_, tag));
  }

  crypto::Hash256 ms_id_;
  ContractPtr contract_;
};

TEST_F(CentralizedContractTest, RedeemsWithTrentRedeemSignature) {
  CallEnv env;
  Bytes secret =
      SignCommitment(crypto::CommitmentTag::kRedeem, kTrent).Encode();
  auto outcome = contract_->Call(kRedeemFunction, secret, env.ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(env.payouts[0].recipient, kBob.public_key());
}

TEST_F(CentralizedContractTest, RefundsWithTrentRefundSignature) {
  CallEnv env;
  Bytes secret =
      SignCommitment(crypto::CommitmentTag::kRefund, kTrent).Encode();
  auto outcome = contract_->Call(kRefundFunction, secret, env.ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(env.payouts[0].recipient, kAlice.public_key());
}

TEST_F(CentralizedContractTest, TagsAreMutuallyExclusive) {
  // T(ms, RF) cannot redeem and T(ms, RD) cannot refund.
  CallEnv env;
  Bytes refund_sig =
      SignCommitment(crypto::CommitmentTag::kRefund, kTrent).Encode();
  EXPECT_FALSE(contract_->Call(kRedeemFunction, refund_sig, env.ctx).ok());
  Bytes redeem_sig =
      SignCommitment(crypto::CommitmentTag::kRedeem, kTrent).Encode();
  EXPECT_FALSE(contract_->Call(kRefundFunction, redeem_sig, env.ctx).ok());
}

TEST_F(CentralizedContractTest, RejectsNonTrentSignature) {
  CallEnv env;
  Bytes forged =
      SignCommitment(crypto::CommitmentTag::kRedeem, kAlice).Encode();
  EXPECT_FALSE(contract_->Call(kRedeemFunction, forged, env.ctx).ok());
}

TEST_F(CentralizedContractTest, RejectsSignatureForOtherSwap) {
  CallEnv env;
  crypto::Hash256 other_ms = crypto::Hash256::Of(Bytes{0xBB});
  Bytes other = kTrent
                    .Sign(crypto::SignatureCommitmentMessage(
                        other_ms, crypto::CommitmentTag::kRedeem))
                    .Encode();
  EXPECT_FALSE(contract_->Call(kRedeemFunction, other, env.ctx).ok());
}

TEST_F(CentralizedContractTest, RejectsGarbageArgs) {
  CallEnv env;
  EXPECT_FALSE(contract_->Call(kRedeemFunction, Bytes{1, 2}, env.ctx).ok());
  EXPECT_FALSE(contract_->Call(kRedeemFunction, {}, env.ctx).ok());
}

// ----------------------------------------------------------------- factory

TEST(ContractFactoryTest, KnowsAllBuiltinKinds) {
  RegisterBuiltinContracts();
  ContractFactory& factory = ContractFactory::Instance();
  EXPECT_TRUE(factory.Knows(kHtlcKind));
  EXPECT_TRUE(factory.Knows(kCentralizedKind));
  EXPECT_TRUE(factory.Knows(kPermissionlessKind));
  EXPECT_TRUE(factory.Knows("WitnessSC"));
  EXPECT_TRUE(factory.Knows("RelaySC"));
  EXPECT_FALSE(factory.Knows("NoSuchContract"));
}

TEST(ContractFactoryTest, DeployDispatchesByKind) {
  RegisterBuiltinContracts();
  Bytes payload = HtlcContract::MakeInitPayload(
      kBob.public_key(), crypto::Hash256::Of(Bytes{5}), 1000);
  auto contract =
      ContractFactory::Instance().Deploy(kHtlcKind, payload, MakeDeployCtx(9));
  ASSERT_TRUE(contract.ok());
  EXPECT_EQ((*contract)->Kind(), kHtlcKind);
}

TEST(ContractFactoryTest, UnknownKindFails) {
  RegisterBuiltinContracts();
  auto contract = ContractFactory::Instance().Deploy("Bogus", {},
                                                     MakeDeployCtx(1));
  EXPECT_FALSE(contract.ok());
}

// --------------------------------------------------------- ledger behaviour

TEST(ContractOnLedgerTest, DeployLocksValueAndCallPaysOut) {
  testutil::TestChain world(
      chain::TestChainParams(),
      testutil::Fund({kAlice.public_key(), kBob.public_key()}, 1000));
  chain::Wallet alice(kAlice, world.chain().id());
  chain::Wallet bob(kBob, world.chain().id());

  Bytes secret{7, 7, 7};
  Bytes payload = HtlcContract::MakeInitPayload(
      kBob.public_key(), crypto::Hash256::Of(secret), /*timelock=*/60'000);
  auto deploy = alice.BuildDeploy(world.chain().StateAtHead(), kHtlcKind,
                                  payload, /*locked_value=*/400,
                                  /*fee=*/4, /*nonce=*/1);
  ASSERT_TRUE(deploy.ok()) << deploy.status();
  ASSERT_TRUE(world.MineBlock({*deploy}).ok());

  const chain::LedgerState& state = world.chain().StateAtHead();
  EXPECT_EQ(state.BalanceOf(kAlice.public_key()), 1000u - 400u - 4u);
  EXPECT_EQ(state.LockedValue(), 400u);
  auto contract = state.GetContract(deploy->Id());
  ASSERT_TRUE(contract.ok());

  auto redeem = bob.BuildCall(state, deploy->Id(), kRedeemFunction, secret,
                              /*fee=*/2, /*nonce=*/1);
  ASSERT_TRUE(redeem.ok()) << redeem.status();
  ASSERT_TRUE(world.MineBlock({*redeem}).ok());
  EXPECT_EQ(world.chain().StateAtHead().BalanceOf(kBob.public_key()),
            1000u - 2u + 400u);
  EXPECT_EQ(world.chain().StateAtHead().LockedValue(), 0u);
}

TEST(ContractOnLedgerTest, FailedGuardRecordsUnsuccessfulReceipt) {
  testutil::TestChain world(
      chain::TestChainParams(),
      testutil::Fund({kAlice.public_key(), kBob.public_key()}, 1000));
  chain::Wallet alice(kAlice, world.chain().id());
  chain::Wallet bob(kBob, world.chain().id());

  Bytes payload = HtlcContract::MakeInitPayload(
      kBob.public_key(), crypto::Hash256::Of(Bytes{1}), 60'000);
  auto deploy = alice.BuildDeploy(world.chain().StateAtHead(), kHtlcKind,
                                  payload, 400, 4, 1);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(world.MineBlock({*deploy}).ok());

  // Wrong secret: the call lands on-chain but with success=false, and the
  // asset stays locked.
  auto bad = bob.BuildCall(world.chain().StateAtHead(), deploy->Id(),
                           kRedeemFunction, Bytes{9}, /*fee=*/2, /*nonce=*/1);
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(world.MineBlock({*bad}).ok());
  auto location = world.chain().FindTx(bad->Id());
  ASSERT_TRUE(location.has_value());
  EXPECT_FALSE(location->entry->block.receipts[location->index].success);
  EXPECT_EQ(world.chain().StateAtHead().LockedValue(), 400u);
  // And no successful redeem call is discoverable.
  EXPECT_FALSE(world.chain()
                   .FindCall(deploy->Id(), kRedeemFunction,
                             /*require_success=*/true)
                   .has_value());
}

}  // namespace
}  // namespace ac3::contracts
