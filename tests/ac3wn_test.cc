// AC3WN protocol-engine tests: the paper's Section 4.2 walkthrough, the
// abort paths of step 6, crash-failure atomicity (Lemmas 5.1/5.3), the
// commitment obligation, and the complex graphs of Section 5.3.

#include "src/protocols/ac3wn_swap.h"

#include <gtest/gtest.h>

#include "src/contracts/permissionless_contract.h"
#include "src/graph/ac2t_graph.h"
#include "tests/test_util.h"

namespace ac3::protocols {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

constexpr TimePoint kDeadline = Minutes(10);

Ac3wnConfig FastConfig() {
  Ac3wnConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.witness_depth_d = 2;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(12);
  return config;
}

graph::Ac2tGraph TwoPartyGraph(SwapWorld* world, chain::Amount x = 300,
                               chain::Amount y = 200) {
  return graph::MakeTwoPartySwap(
      world->participant(0)->pk(), world->participant(1)->pk(),
      world->asset_chain(0), x, world->asset_chain(1), y,
      world->env()->sim()->Now());
}

TEST(Ac3wnSwapTest, TwoPartyHappyPathCommits) {
  SwapWorld world;
  world.StartMining();
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_FALSE(report->aborted);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_FALSE(report->AtomicityViolated());
  ASSERT_TRUE(engine.decided_state().has_value());
  EXPECT_EQ(*engine.decided_state(),
            contracts::WitnessState::kRedeemAuthorized);
}

TEST(Ac3wnSwapTest, HappyPathMovesAssetsToRecipients) {
  SwapWorld world;
  world.StartMining();
  const chain::Amount x = 300, y = 200;
  const chain::Amount alice0 = world.participant(0)->BalanceOn(0);
  const chain::Amount bob1 = world.participant(1)->BalanceOn(1);
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world, x, y),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->committed);
  const chain::ChainParams& params =
      world.env()->blockchain(world.asset_chain(0))->params();
  // Alice paid x plus the deploy fee on chain 0; Bob received x minus
  // nothing (recipient pays the redeem call fee from his own funds).
  EXPECT_EQ(world.participant(0)->BalanceOn(0),
            alice0 - x - params.deploy_fee);
  EXPECT_EQ(world.participant(1)->BalanceOn(1), bob1 - y - params.deploy_fee);
  EXPECT_GE(world.participant(1)->BalanceOn(0), x - params.call_fee);
  EXPECT_GE(world.participant(0)->BalanceOn(1), y - params.call_fee);
}

TEST(Ac3wnSwapTest, DeclineToPublishAborts) {
  SwapWorld world;
  world.StartMining();
  world.participant(1)->behavior().decline_publish = true;
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->aborted);
  EXPECT_FALSE(report->committed);
  EXPECT_FALSE(report->AtomicityViolated());
  // Alice's published contract was refunded; Bob's was never published.
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRefunded), 1);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kUnpublished), 1);
}

TEST(Ac3wnSwapTest, ParticipantChangesMindAborts) {
  SwapWorld world;
  world.StartMining();
  Ac3wnConfig config = FastConfig();
  config.request_abort = true;  // Step 6: "changes her mind".
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aborted);
  EXPECT_FALSE(report->AtomicityViolated());
  // Whatever was published must be refunded, nothing redeemed.
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 0);
}

// The paper's motivating scenario: Bob crashes. Under HTLC he loses his
// asset; under AC3WN the swap still commits and Bob redeems after recovery
// (the commitment obligation).
TEST(Ac3wnSwapTest, RecipientCrashStillCommitsAfterRecovery) {
  SwapWorld world;
  world.StartMining();
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  // Bob crashes right after his contract lands and stays down well past
  // the decision; he recovers later and must still get his bitcoins.
  world.env()->failures()->CrashFor(world.participant(1)->node(), Seconds(5),
                                    Seconds(40));
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(Ac3wnSwapTest, SenderCrashBeforePublishingAborts) {
  SwapWorld world;
  world.StartMining();
  // Bob is down from the start: his contract never appears and the others
  // refund after the patience window.
  world.env()->failures()->CrashFor(world.participant(1)->node(), 0,
                                    Minutes(30));
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aborted);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 0);
  EXPECT_FALSE(report->AtomicityViolated());
}

// Section 5.3: the Figure 7 graphs no single-leader protocol can run.
TEST(Ac3wnSwapTest, ExecutesCyclicFigure7aGraph) {
  SwapWorldOptions options;
  options.participants = 3;
  options.asset_chains = 3;
  SwapWorld world(options);
  world.StartMining();
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeFigure7aCyclic(
      pks, world.asset_chains(), 100, world.env()->sim()->Now());
  ASSERT_FALSE(graph.FindSingleLeader().has_value())
      << "figure 7a must not be single-leader feasible";
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
}

TEST(Ac3wnSwapTest, ExecutesDisconnectedFigure7bGraph) {
  SwapWorldOptions options;
  options.participants = 4;
  options.asset_chains = 4;
  SwapWorld world(options);
  world.StartMining();
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeFigure7bDisconnected(
      pks, world.asset_chains(), 100, world.env()->sim()->Now());
  ASSERT_FALSE(graph.IsConnected());
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
}

TEST(Ac3wnSwapTest, MultiPartyRingCommits) {
  SwapWorldOptions options;
  options.participants = 5;
  options.asset_chains = 5;
  SwapWorld world(options);
  world.StartMining();
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeRing(pks, world.asset_chains(), 120,
                                           world.env()->sim()->Now());
  Ac3wnSwapEngine engine(world.env(), graph, world.all_participants(),
                         world.witness_chain(), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 5);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(Ac3wnSwapTest, AssetChainCanWitnessItself) {
  // Section 6.4: "The witness network should be chosen from the set of
  // involved blockchains" — chain 0 both moves an asset and coordinates.
  SwapWorldOptions options;
  options.witness_chain = false;
  SwapWorld world(options);
  world.StartMining();
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.asset_chain(0),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(Ac3wnSwapTest, RejectsMismatchedParticipants) {
  SwapWorld world;
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         {world.participant(0)}, world.witness_chain(),
                         FastConfig());
  Status status = engine.Start();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Ac3wnSwapTest, RejectsUnknownWitnessChain) {
  SwapWorld world;
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), /*witness_chain=*/99,
                         FastConfig());
  Status status = engine.Start();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Ac3wnSwapTest, ReportRecordsPhaseTimeline) {
  SwapWorld world;
  world.StartMining();
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->committed);
  // Figure 9's four phases appear in order.
  std::vector<std::string> names;
  for (const auto& [name, at] : report->phases) names.push_back(name);
  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  ASSERT_GE(index_of("scw_published"), 0);
  ASSERT_GE(index_of("contracts_published"), 0);
  ASSERT_GE(index_of("commit_decided_buried_d"), 0);
  EXPECT_LT(index_of("scw_published"), index_of("contracts_published"));
  EXPECT_LT(index_of("contracts_published"),
            index_of("commit_decided_buried_d"));
  EXPECT_GT(report->decision_time, report->start_time);
  EXPECT_GE(report->end_time, report->decision_time);
}

TEST(Ac3wnSwapTest, FeesIncludeWitnessOverhead) {
  // Section 6.2: AC3WN pays (N+1) deployments and (N+1) calls.
  SwapWorld world;
  world.StartMining();
  Ac3wnSwapEngine engine(world.env(), TwoPartyGraph(&world),
                         world.all_participants(), world.witness_chain(),
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->committed);
  const auto& asset_params =
      world.env()->blockchain(world.asset_chain(0))->params();
  const auto& witness_params =
      world.env()->blockchain(world.witness_chain())->params();
  const chain::Amount expected =
      2 * (asset_params.deploy_fee + asset_params.call_fee) +
      witness_params.deploy_fee + witness_params.call_fee;
  EXPECT_EQ(report->total_fees, expected);
}

}  // namespace
}  // namespace ac3::protocols
