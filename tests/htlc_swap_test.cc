// HTLC baseline tests: Nolan's two-party swap, Herlihy's generalization,
// and — centrally — the paper's motivating atomicity violation: "if Bob
// fails to provide s to SC1 before t1 expires due to a crash failure ...
// Bob loses his X bitcoins" (Section 1).

#include "src/protocols/herlihy_swap.h"

#include <gtest/gtest.h>

#include "src/contracts/atomic_swap_contract.h"
#include "src/graph/ac2t_graph.h"
#include "tests/test_util.h"

namespace ac3::protocols {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

constexpr TimePoint kDeadline = Minutes(10);

HtlcConfig FastConfig() {
  HtlcConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  return config;
}

SwapWorldOptions NoWitness() {
  SwapWorldOptions options;
  options.witness_chain = false;
  return options;
}

graph::Ac2tGraph TwoPartyGraph(SwapWorld* world, chain::Amount x = 300,
                               chain::Amount y = 200) {
  return graph::MakeTwoPartySwap(
      world->participant(0)->pk(), world->participant(1)->pk(),
      world->asset_chain(0), x, world->asset_chain(1), y,
      world->env()->sim()->Now());
}

TEST(NolanSwapTest, TwoPartyHappyPathCommits) {
  SwapWorld world(NoWitness());
  world.StartMining();
  HerlihySwapEngine engine = MakeNolanTwoPartySwap(
      world.env(), TwoPartyGraph(&world), world.participant(0),
      world.participant(1), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->protocol, "Nolan-HTLC");
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(NolanSwapTest, AssetsActuallyMove) {
  SwapWorld world(NoWitness());
  world.StartMining();
  const chain::Amount x = 300, y = 200;
  const chain::Amount bob_on_0 = world.participant(1)->BalanceOn(0);
  HerlihySwapEngine engine = MakeNolanTwoPartySwap(
      world.env(), TwoPartyGraph(&world, x, y), world.participant(0),
      world.participant(1), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->committed);
  const auto& params = world.env()->blockchain(world.asset_chain(0))->params();
  EXPECT_EQ(world.participant(1)->BalanceOn(0),
            bob_on_0 + x - params.call_fee);
}

// The paper's central criticism, reproduced: the recipient crashes after
// the leader reveals the secret; his timelock expires; the sender refunds;
// one contract redeemed + one refunded = the all-or-nothing property is
// violated and the crashed participant is worse off.
TEST(NolanSwapTest, RecipientCrashViolatesAtomicity) {
  SwapWorld world(NoWitness());
  world.StartMining();
  const chain::Amount x = 300, y = 200;
  const chain::Amount bob_on_0 = world.participant(1)->BalanceOn(0);
  const chain::Amount bob_on_1 = world.participant(1)->BalanceOn(1);
  HerlihySwapEngine engine = MakeNolanTwoPartySwap(
      world.env(), TwoPartyGraph(&world, x, y), world.participant(0),
      world.participant(1), FastConfig());
  ASSERT_TRUE(engine.Start().ok());
  // Run until both contracts are on their chains, then crash Bob before he
  // can observe the secret; he stays down until long after his timelock
  // (start + 5Δ = 10 s).
  Status published = world.env()->sim()->RunUntilCondition(
      [&world]() {
        return !world.env()->blockchain(0)->StateAtHead().contracts.empty() &&
               !world.env()->blockchain(1)->StateAtHead().contracts.empty();
      },
      kDeadline);
  ASSERT_TRUE(published.ok());
  world.env()->failures()->CrashFor(world.participant(1)->node(),
                                    world.env()->sim()->Now(), Seconds(60));
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->AtomicityViolated());
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 1);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRefunded), 1);
  // "Although a crashed participant is the only participant who ends up
  //  worse off": Bob paid y ether and received nothing.
  const auto& params = world.env()->blockchain(world.asset_chain(1))->params();
  EXPECT_EQ(world.participant(1)->BalanceOn(0), bob_on_0);
  EXPECT_EQ(world.participant(1)->BalanceOn(1),
            bob_on_1 - y - params.deploy_fee);
}

TEST(NolanSwapTest, CounterpartyNeverPublishesLeadsToRefund) {
  SwapWorld world(NoWitness());
  world.StartMining();
  world.participant(1)->behavior().decline_publish = true;
  HerlihySwapEngine engine = MakeNolanTwoPartySwap(
      world.env(), TwoPartyGraph(&world), world.participant(0),
      world.participant(1), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->finished);
  EXPECT_FALSE(report->committed);
  // Alice's contract expires and refunds; Bob never locked anything. The
  // all-or-nothing property holds on this path (nothing was redeemed).
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRefunded), 1);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kUnpublished), 1);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(HerlihySwapTest, ThreePartyRingCommits) {
  SwapWorldOptions options = NoWitness();
  options.participants = 3;
  options.asset_chains = 3;
  SwapWorld world(options);
  world.StartMining();
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeRing(pks, world.asset_chains(), 100,
                                           world.env()->sim()->Now());
  HerlihySwapEngine engine(world.env(), graph, world.all_participants(),
                           FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->protocol, "Herlihy-HTLC");
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 3);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST(HerlihySwapTest, SequentialPublishingCostsDiameterRounds) {
  // Figure 8: the publish phase takes Diam(D) sequential rounds. On a
  // directed ring of 5, Diam = 5; the last contract cannot be published
  // before its sender's incoming contract confirms, 4 hops from the leader.
  SwapWorldOptions options = NoWitness();
  options.participants = 5;
  options.asset_chains = 5;
  SwapWorld world(options);
  world.StartMining();
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeRing(pks, world.asset_chains(), 100,
                                           world.env()->sim()->Now());
  ASSERT_EQ(graph.Diameter(), 5u);
  HerlihySwapEngine engine(world.env(), graph, world.all_participants(),
                           FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->committed);
  // Publication forms Diam(D) sequential waves: on the ring 0->1->...->0
  // with leader 0, the edge leaving vertex k cannot publish before the
  // edge leaving k-1 confirmed, so publish times strictly increase with k.
  ASSERT_EQ(report->edges.size(), 5u);
  std::vector<TimePoint> by_sender(5, -1);
  for (const EdgeReport& edge : report->edges) {
    by_sender[edge.edge.from] = edge.published_at;
  }
  const uint32_t leader = engine.leader();
  for (uint32_t hop = 1; hop < 5; ++hop) {
    const uint32_t prev = (leader + hop - 1) % 5;
    const uint32_t cur = (leader + hop) % 5;
    EXPECT_GT(by_sender[cur], by_sender[prev])
        << "wave " << hop << " should publish after wave " << hop - 1;
  }
}

TEST(HerlihySwapTest, RejectsCyclicFigure7aGraph) {
  SwapWorldOptions options = NoWitness();
  options.participants = 3;
  options.asset_chains = 3;
  SwapWorld world(options);
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeFigure7aCyclic(
      pks, world.asset_chains(), 100, world.env()->sim()->Now());
  HerlihySwapEngine engine(world.env(), graph, world.all_participants(),
                           FastConfig());
  Status status = engine.Start();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << "figure 7a has no single leader; Nolan/Herlihy must refuse it";
}

TEST(HerlihySwapTest, RejectsDisconnectedFigure7bGraph) {
  SwapWorldOptions options = NoWitness();
  options.participants = 4;
  options.asset_chains = 4;
  SwapWorld world(options);
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeFigure7bDisconnected(
      pks, world.asset_chains(), 100, world.env()->sim()->Now());
  HerlihySwapEngine engine(world.env(), graph, world.all_participants(),
                           FastConfig());
  Status status = engine.Start();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(HerlihySwapTest, TimelocksDecreaseAlongPublishOrder) {
  // t1 > t2 in the two-party walkthrough: the first-published contract
  // carries the later timelock, giving downstream redeemers room.
  SwapWorld world(NoWitness());
  world.StartMining();
  HerlihySwapEngine engine = MakeNolanTwoPartySwap(
      world.env(), TwoPartyGraph(&world), world.participant(0),
      world.participant(1), FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->committed);
  // The leader's redeem releases the secret, so it must be *included
  // on-chain* no later than the non-leader's redeem on the other chain —
  // the causality the timelock headroom (t1 > t2) exists to protect. The
  // engine's own settled_at timestamps are observation times at wake
  // granularity and may legitimately flip across chains, so the assertion
  // reads the chains themselves.
  ASSERT_EQ(report->edges.size(), 2u);
  const EdgeReport& leader_in =
      report->edges[0].edge.to == engine.leader() ? report->edges[0]
                                                  : report->edges[1];
  const EdgeReport& leader_out =
      report->edges[0].edge.to == engine.leader() ? report->edges[1]
                                                  : report->edges[0];
  auto redeem_block_time = [&](const EdgeReport& edge) {
    const chain::Blockchain* chain =
        world.env()->blockchain(edge.edge.chain_id);
    auto call = chain->FindCall(edge.contract_id, contracts::kRedeemFunction,
                                /*require_success=*/true);
    EXPECT_TRUE(call.has_value());
    return call.has_value() ? call->entry->block.header.time : TimePoint{-1};
  };
  EXPECT_LE(redeem_block_time(leader_in), redeem_block_time(leader_out));
}

}  // namespace
}  // namespace ac3::protocols
