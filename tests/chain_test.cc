// Unit tests for the blockchain substrate: transactions, blocks, PoW,
// ledger execution, fork choice, canonical queries, mempool, wallet, and
// the Poisson mining network.

#include <gtest/gtest.h>

#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"
#include "src/chain/mining.h"
#include "src/chain/pow.h"
#include "src/chain/wallet.h"
#include "src/sim/simulation.h"
#include "tests/test_util.h"

namespace ac3::chain {
namespace {

// Disambiguates the vector/span AssembleBlock overloads at empty-candidate
// call sites ({} binds to both).
const std::vector<Transaction> kNoCandidates;

using testutil::Fund;
using testutil::TestChain;

ChainParams FastParams(ChainId id = 0) {
  ChainParams p = TestChainParams();
  p.id = id;
  return p;
}

crypto::KeyPair Alice() { return crypto::KeyPair::FromSeed(1001); }
crypto::KeyPair Bob() { return crypto::KeyPair::FromSeed(1002); }

// ------------------------------------------------------------ transactions

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.chain_id = 3;
  tx.inputs.push_back(OutPoint{crypto::Hash256::OfString("prev"), 1});
  tx.outputs.push_back(TxOutput{25, Alice().public_key()});
  tx.fee = 2;
  tx.nonce = 99;
  tx.SignWith(Bob());

  auto decoded = Transaction::Decode(tx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Id(), tx.Id());
  EXPECT_EQ(decoded->outputs[0].value, 25u);
  EXPECT_TRUE(decoded->VerifySignature());
}

TEST(TransactionTest, SignatureCoversContent) {
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.outputs.push_back(TxOutput{10, Alice().public_key()});
  tx.SignWith(Bob());
  EXPECT_TRUE(tx.VerifySignature());
  tx.outputs[0].value = 11;  // Tamper.
  EXPECT_FALSE(tx.VerifySignature());
}

TEST(TransactionTest, NonceChangesId) {
  Transaction a, b;
  a.type = b.type = TxType::kTransfer;
  a.nonce = 1;
  b.nonce = 2;
  a.SignWith(Alice());
  b.SignWith(Alice());
  EXPECT_NE(a.Id(), b.Id());
}

// ------------------------------------------------------------------ blocks

TEST(BlockTest, HeaderRoundTrip) {
  BlockHeader h;
  h.chain_id = 2;
  h.height = 5;
  h.prev_hash = crypto::Hash256::OfString("parent");
  h.tx_root = crypto::Hash256::OfString("txroot");
  h.receipt_root = crypto::Hash256::OfString("rcroot");
  h.time = 1234;
  h.difficulty_bits = 8;
  h.nonce = 42;

  Bytes encoded = h.Encode();
  ByteReader r(encoded);
  auto decoded = BlockHeader::Decode(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, h);
  EXPECT_EQ(decoded->Hash(), h.Hash());
}

TEST(PowTest, DifficultyZeroAlwaysPasses) {
  EXPECT_TRUE(HashMeetsDifficulty(crypto::Hash256::OfString("x"), 0));
}

TEST(PowTest, MineHeaderSatisfiesTarget) {
  Rng rng(5);
  BlockHeader h;
  h.difficulty_bits = 12;
  uint64_t evals = MineHeader(&h, &rng);
  EXPECT_GE(evals, 1u);
  EXPECT_TRUE(CheckProofOfWork(h));
}

TEST(PowTest, TamperedNonceFails) {
  Rng rng(5);
  BlockHeader h;
  h.difficulty_bits = 14;
  MineHeader(&h, &rng);
  ASSERT_TRUE(CheckProofOfWork(h));
  h.nonce ^= 0xdeadbeef;
  // Overwhelmingly likely to fail the 14-bit target.
  EXPECT_FALSE(CheckProofOfWork(h));
}

TEST(PowTest, WorkGrowsExponentially) {
  EXPECT_DOUBLE_EQ(WorkForDifficulty(10) * 2, WorkForDifficulty(11));
}

// ------------------------------------------------------------------ ledger

TEST(LedgerTest, GenesisFundsAllocations) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(Alice().public_key()), 500u);
  EXPECT_EQ(tc.chain().StateAtHead().TotalValue(), 500u);
}

TEST(LedgerTest, TransferMovesValue) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 120, 1, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tc.MineBlock({*tx}).ok());
  const LedgerState& state = tc.chain().StateAtHead();
  EXPECT_EQ(state.BalanceOf(Bob().public_key()), 120u);
  // 500 - 120 - 1 fee = 379 change.
  EXPECT_EQ(state.BalanceOf(Alice().public_key()), 379u);
}

TEST(LedgerTest, DoubleSpendRejected) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 100, 1, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tc.MineBlock({*tx}).ok());

  // Re-submitting the same transaction must not be re-included.
  ASSERT_TRUE(tc.MineBlock({*tx}).ok());
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(Bob().public_key()), 100u);
}

TEST(LedgerTest, ForeignInputsRejected) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  // Bob tries to spend Alice's UTXO.
  Transaction theft;
  theft.type = TxType::kTransfer;
  theft.chain_id = 0;
  theft.inputs.push_back(OutPoint{tc.chain().genesis_tx().Id(), 0});
  theft.outputs.push_back(TxOutput{499, Bob().public_key()});
  theft.fee = 1;
  theft.SignWith(Bob());

  LedgerState state = tc.chain().StateAtHead();
  BlockEnv env{0, 1, 100};
  auto receipt = ApplyTransaction(&state, theft, env);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.status().code(), StatusCode::kVerificationFailed);
}

TEST(LedgerTest, DuplicateInputOutpointRejected) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  // Listing the same 500-value outpoint twice must not let Alice claim
  // 1000 of outputs (value inflation).
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.chain_id = 0;
  const OutPoint funding{tc.chain().genesis_tx().Id(), 0};
  tx.inputs = {funding, funding};
  tx.outputs.push_back(TxOutput{999, Bob().public_key()});
  tx.fee = 1;
  tx.SignWith(Alice());

  LedgerState state = tc.chain().StateAtHead();
  BlockEnv env{0, 1, 100};
  auto receipt = ApplyTransaction(&state, tx, env);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(state.TotalValue(), 500u);
}

TEST(LedgerTest, ValueImbalanceRejected) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.chain_id = 0;
  tx.inputs.push_back(OutPoint{tc.chain().genesis_tx().Id(), 0});
  tx.outputs.push_back(TxOutput{600, Bob().public_key()});  // Inflates value.
  tx.fee = 0;
  tx.SignWith(Alice());

  LedgerState state = tc.chain().StateAtHead();
  BlockEnv env{0, 1, 100};
  EXPECT_FALSE(ApplyTransaction(&state, tx, env).ok());
}

TEST(LedgerTest, MergeAndSplitSemantics) {
  // Figure 2: merge three inputs into one output, then split.
  std::vector<TxOutput> allocations(3, TxOutput{100, Alice().public_key()});
  TestChain tc(FastParams(), allocations);
  Wallet alice(Alice(), 0);
  // Merge: transfer 299 to Bob (consumes all three 100s, fee 1).
  auto merge = alice.BuildTransfer(tc.chain().StateAtHead(),
                                   Bob().public_key(), 299, 1, 1);
  ASSERT_TRUE(merge.ok());
  EXPECT_EQ(merge->inputs.size(), 3u);
  ASSERT_TRUE(tc.MineBlock({*merge}).ok());

  // Split: Bob sends 50 back, keeps change.
  Wallet bob(Bob(), 0);
  auto split = bob.BuildTransfer(tc.chain().StateAtHead(),
                                 Alice().public_key(), 50, 1, 2);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(tc.MineBlock({*split}).ok());
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(Alice().public_key()), 50u);
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(Bob().public_key()), 248u);
}

TEST(LedgerTest, TotalValueConservedPlusRewards) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 500));
  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 100, 2, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tc.MineBlock({*tx}).ok());
  // Genesis 500 + one block reward. The fee leaves Alice and re-enters the
  // system inside the coinbase, so only the reward is net-new value.
  EXPECT_EQ(tc.chain().StateAtHead().TotalValue(),
            500u + tc.chain().params().block_reward);
}

// ------------------------------------------------------------- fork choice

TEST(BlockchainTest, RejectsUnknownParent) {
  TestChain tc(FastParams(), {});
  Block orphan;
  orphan.header.chain_id = 0;
  orphan.header.height = 5;
  orphan.header.prev_hash = crypto::Hash256::OfString("nowhere");
  EXPECT_EQ(tc.chain().SubmitBlock(orphan, 0).code(), StatusCode::kNotFound);
}

TEST(BlockchainTest, RejectsBadPow) {
  TestChain tc(FastParams(), {});
  Rng rng(3);
  auto block = tc.chain().AssembleBlock(tc.chain().head()->hash, kNoCandidates,
                                        Alice().public_key(), 50, &rng);
  ASSERT_TRUE(block.ok());
  Block bad = *block;
  // Find a nonce that fails the target.
  do {
    ++bad.header.nonce;
  } while (CheckProofOfWork(bad.header));
  EXPECT_EQ(tc.chain().SubmitBlock(bad, 50).code(),
            StatusCode::kVerificationFailed);
}

TEST(BlockchainTest, RejectsTamperedReceipts) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 100));
  Rng rng(3);
  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 10, 1, 1);
  ASSERT_TRUE(tx.ok());
  auto block = tc.chain().AssembleBlock(tc.chain().head()->hash, {*tx},
                                        Alice().public_key(), 50, &rng);
  ASSERT_TRUE(block.ok());
  Block bad = *block;
  bad.receipts[1].note = "forged";
  bad.header.receipt_root = bad.ComputeReceiptRoot();
  MineHeader(&bad.header, &rng);
  EXPECT_EQ(tc.chain().SubmitBlock(bad, 50).code(),
            StatusCode::kVerificationFailed);
}

TEST(BlockchainTest, ForkResolvesToHeavierBranch) {
  TestChain tc(FastParams(), {});
  Rng rng(17);
  const BlockEntry* root = tc.chain().head();

  // Two competing children.
  auto a1 = tc.chain().AssembleBlock(root->hash, kNoCandidates, Alice().public_key(),
                                     100, &rng);
  auto b1 = tc.chain().AssembleBlock(root->hash, kNoCandidates, Bob().public_key(),
                                     100, &rng);
  ASSERT_TRUE(a1.ok() && b1.ok());
  ASSERT_TRUE(tc.chain().SubmitBlock(*a1, 100).ok());
  ASSERT_TRUE(tc.chain().SubmitBlock(*b1, 101).ok());
  // First seen (a1) wins the tie.
  EXPECT_EQ(tc.chain().head()->hash, a1->header.Hash());

  // Extend the b-branch: it becomes strictly heavier.
  auto b2 = tc.chain().AssembleBlock(b1->header.Hash(), kNoCandidates,
                                     Bob().public_key(), 200, &rng);
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(tc.chain().SubmitBlock(*b2, 200).ok());
  EXPECT_EQ(tc.chain().head()->hash, b2->header.Hash());

  // The a-branch is no longer canonical.
  EXPECT_FALSE(tc.chain().IsCanonical(a1->header.Hash()));
  EXPECT_TRUE(tc.chain().IsCanonical(b1->header.Hash()));
}

TEST(BlockchainTest, ReorgRevertsState) {
  // A transfer included on a losing branch must not affect the winning
  // branch's state.
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 100));
  Rng rng(19);
  const BlockEntry* root = tc.chain().head();

  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 50, 1, 1);
  ASSERT_TRUE(tx.ok());

  // Use a neutral miner key so coinbase rewards don't pollute balances.
  const crypto::PublicKey miner = crypto::KeyPair::FromSeed(9999).public_key();
  auto with_tx =
      tc.chain().AssembleBlock(root->hash, {*tx}, miner, 100, &rng);
  auto without1 = tc.chain().AssembleBlock(root->hash, kNoCandidates, miner, 100, &rng);
  ASSERT_TRUE(with_tx.ok() && without1.ok());
  ASSERT_TRUE(tc.chain().SubmitBlock(*with_tx, 100).ok());
  ASSERT_TRUE(tc.chain().SubmitBlock(*without1, 101).ok());
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(Bob().public_key()), 50u);

  auto without2 = tc.chain().AssembleBlock(without1->header.Hash(), kNoCandidates, miner,
                                           200, &rng);
  ASSERT_TRUE(without2.ok());
  ASSERT_TRUE(tc.chain().SubmitBlock(*without2, 200).ok());
  // Reorged to the empty branch: Bob never got paid there.
  EXPECT_EQ(tc.chain().StateAtHead().BalanceOf(Bob().public_key()), 0u);
}

TEST(BlockchainTest, ConfirmationsAndStableBlock) {
  TestChain tc(FastParams(), {});
  ASSERT_TRUE(tc.MineEmpty(10).ok());
  const BlockEntry* head = tc.chain().head();
  EXPECT_EQ(head->block.header.height, 10u);
  EXPECT_EQ(tc.chain().ConfirmationsOf(head->hash), 0u);
  EXPECT_EQ(tc.chain().ConfirmationsOf(tc.chain().genesis()->hash), 10u);

  const BlockEntry* stable = tc.chain().StableBlock(6);
  EXPECT_EQ(stable->block.header.height, 4u);
  // Clamped at genesis.
  EXPECT_EQ(tc.chain().StableBlock(100)->hash, tc.chain().genesis()->hash);
}

TEST(BlockchainTest, HeadersAfterReturnsOrderedSuffix) {
  TestChain tc(FastParams(), {});
  ASSERT_TRUE(tc.MineEmpty(5).ok());
  const BlockEntry* anchor = tc.chain().StableBlock(3);  // height 2.
  auto headers = tc.chain().HeadersAfter(anchor->hash);
  ASSERT_TRUE(headers.ok());
  ASSERT_EQ(headers->size(), 3u);
  EXPECT_EQ((*headers)[0].height, 3u);
  EXPECT_EQ((*headers)[2].height, 5u);
  EXPECT_EQ((*headers)[0].prev_hash, anchor->hash);
}

TEST(BlockchainTest, FindTxLocatesCanonicalInclusion) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 100));
  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 10, 1, 7);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(tc.MineBlock({*tx}).ok());
  auto loc = tc.chain().FindTx(tx->Id());
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->index, 1u);  // After the coinbase.
  EXPECT_FALSE(tc.chain().FindTx(crypto::Hash256::OfString("no")).has_value());
}

// ----------------------------------------------------------------- mempool

TEST(MempoolTest, VisibilityByArrivalTime) {
  Mempool pool;
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.nonce = 1;
  tx.SignWith(Alice());
  ASSERT_TRUE(pool.Submit(tx, 100).ok());
  EXPECT_TRUE(pool.CandidatesAt(50, std::set<crypto::Hash256>{}).empty());
  EXPECT_EQ(pool.CandidatesAt(100, std::set<crypto::Hash256>{}).size(), 1u);
}

TEST(MempoolTest, RejectsDuplicates) {
  Mempool pool;
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.nonce = 1;
  tx.SignWith(Alice());
  ASSERT_TRUE(pool.Submit(tx, 0).ok());
  EXPECT_EQ(pool.Submit(tx, 5).code(), StatusCode::kAlreadyExists);
}

TEST(MempoolTest, ExcludesIncluded) {
  Mempool pool;
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.nonce = 1;
  tx.SignWith(Alice());
  ASSERT_TRUE(pool.Submit(tx, 0).ok());
  std::set<crypto::Hash256> included = {tx.Id()};
  EXPECT_TRUE(pool.CandidatesAt(10, included).empty());
  pool.Prune(included);
  EXPECT_EQ(pool.size(), 0u);
}

// ------------------------------------------------------------------ wallet

TEST(WalletTest, ReservationsPreventSelfDoubleSpend) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 100));
  Wallet wallet(Alice(), 0);
  auto tx1 = wallet.BuildTransfer(tc.chain().StateAtHead(),
                                  Bob().public_key(), 40, 1, 1);
  ASSERT_TRUE(tx1.ok());
  // The single genesis UTXO is now reserved; a second build must fail.
  auto tx2 = wallet.BuildTransfer(tc.chain().StateAtHead(),
                                  Bob().public_key(), 40, 1, 2);
  EXPECT_FALSE(tx2.ok());
  wallet.ClearReservations();
  auto tx3 = wallet.BuildTransfer(tc.chain().StateAtHead(),
                                  Bob().public_key(), 40, 1, 3);
  EXPECT_TRUE(tx3.ok());
}

TEST(WalletTest, InsufficientFunds) {
  TestChain tc(FastParams(), Fund({Alice().public_key()}, 10));
  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(tc.chain().StateAtHead(), Bob().public_key(),
                                 100, 1, 1);
  EXPECT_EQ(tx.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------------ mining

TEST(MiningNetworkTest, ProducesBlocksAndIncludesTxs) {
  sim::Simulation sim(101);
  ChainParams params = FastParams();
  Blockchain chain(params, Fund({Alice().public_key()}, 1000));
  Mempool pool;
  MiningNetwork miners(&sim, &chain, &pool, MiningConfig{4, Milliseconds(20)});

  Wallet wallet(Alice(), 0);
  auto tx = wallet.BuildTransfer(chain.StateAtHead(), Bob().public_key(),
                                 100, 1, 1);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(pool.Submit(*tx, 0).ok());

  miners.Start();
  sim.RunUntil(Seconds(5));
  miners.Stop();

  EXPECT_GT(chain.height(), 10u);
  EXPECT_TRUE(chain.FindTx(tx->Id()).has_value());
  EXPECT_EQ(chain.StateAtHead().BalanceOf(Bob().public_key()), 100u);
}

TEST(MiningNetworkTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    sim::Simulation sim(seed);
    Blockchain chain(FastParams(), {});
    Mempool pool;
    MiningNetwork miners(&sim, &chain, &pool,
                         MiningConfig{3, Milliseconds(30)});
    miners.Start();
    sim.RunUntil(Seconds(3));
    miners.Stop();
    return chain.head()->hash;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(MiningNetworkTest, PrivateBranchOverridesHead) {
  sim::Simulation sim(55);
  Blockchain chain(FastParams(), {});
  Mempool pool;
  MiningNetwork miners(&sim, &chain, &pool, MiningConfig{2, Milliseconds(10)});
  miners.Start();
  sim.RunUntil(Seconds(2));
  miners.Stop();

  const uint64_t public_height = chain.height();
  ASSERT_GT(public_height, 3u);
  // Attacker mines a longer private branch from 3 blocks back.
  const BlockEntry* fork_point = chain.StableBlock(3);
  auto branch = miners.BuildPrivateBranch(fork_point->hash, 6, {},
                                          sim.Now() + 1);
  ASSERT_TRUE(branch.ok());
  ASSERT_TRUE(miners.PublishBranch(*branch).ok());
  // 51% attack succeeded: the private branch is now canonical.
  EXPECT_EQ(chain.head()->hash, branch->back().header.Hash());
  EXPECT_EQ(chain.height(), fork_point->block.header.height + 6);
}

}  // namespace
}  // namespace ac3::chain
