// Parallel intra-block execution: conflict-graph unit tests plus the
// parallel-vs-serial equivalence harness.
//
// ApplyBlockBodyParallel's contract is byte-identity with ApplyBlockBody —
// same receipts (revert ordering included), same error statuses on invalid
// bodies (with the same partial state mutation the serial loop leaves
// behind), same post-state. The harness checks all three on blocks mixing
// transfers, deploys, calls and reverted redeems, on hand-built invalid
// bodies, and across SubmitBlocks catch-up at several thread counts.

#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/chain/ledger.h"
#include "src/chain/tx_conflict.h"
#include "src/common/worker_pool.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/htlc_contract.h"
#include "tests/test_util.h"

namespace ac3 {
namespace {

using chain::Amount;
using chain::ApplyBlockBody;
using chain::ApplyBlockBodyParallel;
using chain::Block;
using chain::BuildExecutionWaves;
using chain::ChainParams;
using chain::ExtractRwSet;
using chain::LedgerState;
using chain::OutPoint;
using chain::Receipt;
using chain::RwSetsConflict;
using chain::Transaction;
using chain::TxOutput;
using chain::TxType;
using chain::Wallet;

// ------------------------------------------------------------ conflict graph

Transaction FakeCoinbase() {
  Transaction tx;
  tx.type = TxType::kCoinbase;
  tx.nonce = 1;
  return tx;
}

Transaction FakeTransfer(uint64_t nonce, std::vector<OutPoint> inputs) {
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.nonce = nonce;
  tx.inputs = std::move(inputs);
  return tx;
}

OutPoint Op(uint8_t tag, uint32_t index = 0) {
  return OutPoint{crypto::Hash256::Of(Bytes{tag}), index};
}

/// wave_of[i] for every body index; also asserts the two scheduling
/// invariants: conflicting pairs are split across waves in block order,
/// and no two transactions inside one wave conflict.
std::vector<size_t> CheckWaves(const std::vector<Transaction>& txs) {
  const auto waves = BuildExecutionWaves(txs);
  std::vector<size_t> wave_of(txs.size(), SIZE_MAX);
  size_t scheduled = 0;
  for (size_t w = 0; w < waves.size(); ++w) {
    for (size_t k = 0; k < waves[w].size(); ++k) {
      const size_t i = waves[w][k];
      EXPECT_EQ(wave_of[i], SIZE_MAX) << "index scheduled twice";
      wave_of[i] = w;
      ++scheduled;
      if (k > 0) {
        EXPECT_LT(waves[w][k - 1], i) << "wave not ascending";
      }
    }
  }
  EXPECT_EQ(scheduled, txs.size() - 1) << "body index missing from waves";

  std::vector<chain::TxRwSet> sets(txs.size());
  for (size_t i = 1; i < txs.size(); ++i) sets[i] = ExtractRwSet(txs[i]);
  for (size_t i = 1; i < txs.size(); ++i) {
    for (size_t j = i + 1; j < txs.size(); ++j) {
      if (RwSetsConflict(sets[i], sets[j])) {
        EXPECT_LT(wave_of[i], wave_of[j])
            << "conflicting pair (" << i << "," << j << ") not ordered";
      }
    }
  }
  return wave_of;
}

TEST(TxConflictTest, DisjointTransfersShareOneWave) {
  std::vector<Transaction> txs{FakeCoinbase(), FakeTransfer(1, {Op(1)}),
                               FakeTransfer(2, {Op(2)}),
                               FakeTransfer(3, {Op(3)})};
  const auto wave_of = CheckWaves(txs);
  EXPECT_EQ(wave_of[1], 0u);
  EXPECT_EQ(wave_of[2], 0u);
  EXPECT_EQ(wave_of[3], 0u);
}

TEST(TxConflictTest, SharedInputConflicts) {
  std::vector<Transaction> txs{FakeCoinbase(), FakeTransfer(1, {Op(1)}),
                               FakeTransfer(2, {Op(1)})};
  const auto wave_of = CheckWaves(txs);
  EXPECT_LT(wave_of[1], wave_of[2]);
}

TEST(TxConflictTest, ChainedSpendsSerialize) {
  // t2 spends t1's output, t3 spends t2's: three waves.
  Transaction t1 = FakeTransfer(1, {Op(1)});
  Transaction t2 = FakeTransfer(2, {OutPoint{t1.Id(), 0}});
  Transaction t3 = FakeTransfer(3, {OutPoint{t2.Id(), 0}});
  std::vector<Transaction> txs{FakeCoinbase(), t1, t2, t3};
  const auto wave_of = CheckWaves(txs);
  EXPECT_EQ(wave_of[1], 0u);
  EXPECT_EQ(wave_of[2], 1u);
  EXPECT_EQ(wave_of[3], 2u);
}

TEST(TxConflictTest, SameContractCallsSerialize) {
  const crypto::Hash256 contract = crypto::Hash256::Of(Bytes{9});
  Transaction c1 = FakeTransfer(1, {Op(1)});
  c1.type = TxType::kCall;
  c1.contract_id = contract;
  Transaction c2 = FakeTransfer(2, {Op(2)});
  c2.type = TxType::kCall;
  c2.contract_id = contract;
  Transaction other = FakeTransfer(3, {Op(3)});
  std::vector<Transaction> txs{FakeCoinbase(), c1, c2, other};
  const auto wave_of = CheckWaves(txs);
  EXPECT_LT(wave_of[1], wave_of[2]);
  EXPECT_EQ(wave_of[3], 0u);  // Unrelated transfer still runs first wave.
}

TEST(TxConflictTest, CallOrdersAfterSameBlockDeploy) {
  Transaction deploy = FakeTransfer(1, {Op(1)});
  deploy.type = TxType::kDeploy;
  Transaction call = FakeTransfer(2, {Op(2)});
  call.type = TxType::kCall;
  call.contract_id = deploy.Id();
  std::vector<Transaction> txs{FakeCoinbase(), deploy, call};
  const auto wave_of = CheckWaves(txs);
  EXPECT_LT(wave_of[1], wave_of[2]);
}

TEST(TxConflictTest, SpendOfLaterTxOutputForcesOrder) {
  // t1 names t2's (later) output: a forward reference. The scheduler must
  // still order the pair by block position — t2 lands after t1.
  Transaction t2 = FakeTransfer(2, {Op(2)});
  Transaction t1 = FakeTransfer(1, {OutPoint{t2.Id(), 0}});
  std::vector<Transaction> txs{FakeCoinbase(), t1, t2};
  const auto wave_of = CheckWaves(txs);
  EXPECT_LT(wave_of[1], wave_of[2]);
}

// ----------------------------------------------------- equivalence harness

void ExpectStatesEqual(const LedgerState& a, const LedgerState& b) {
  std::vector<std::pair<OutPoint, TxOutput>> utxos_a, utxos_b;
  for (const auto& [op, out] : a.utxos) utxos_a.emplace_back(op, out);
  for (const auto& [op, out] : b.utxos) utxos_b.emplace_back(op, out);
  EXPECT_EQ(utxos_a, utxos_b);

  std::vector<std::pair<crypto::Hash256, Bytes>> digests_a, digests_b;
  for (const auto& [id, c] : a.contracts) {
    digests_a.emplace_back(id, c->StateDigest());
  }
  for (const auto& [id, c] : b.contracts) {
    digests_b.emplace_back(id, c->StateDigest());
  }
  EXPECT_EQ(digests_a, digests_b);

  EXPECT_EQ(a.LiquidValue(), b.LiquidValue());
  EXPECT_EQ(a.LockedValue(), b.LockedValue());
}

/// Runs `block` through both execution paths from `base` and asserts the
/// byte-identity contract: same ok/error outcome (status text included),
/// same receipts, and the same post-state — even mid-block-failure partial
/// mutation.
void ExpectParallelMatchesSerial(const LedgerState& base, const Block& block,
                                 const ChainParams& params, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  LedgerState serial_state = base;
  LedgerState parallel_state = base;
  auto serial = ApplyBlockBody(&serial_state, block, params);
  common::WorkerPool pool(threads);
  auto parallel =
      ApplyBlockBodyParallel(&parallel_state, block, params, &pool);

  ASSERT_EQ(serial.ok(), parallel.ok()) << serial.status().ToString() << " vs "
                                        << parallel.status().ToString();
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), parallel.status().code());
    EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
  } else {
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i].Encode(), (*parallel)[i].Encode())
          << "receipt mismatch at index " << i;
    }
  }
  ExpectStatesEqual(serial_state, parallel_state);
}

constexpr int kThreadCounts[] = {1, 2, 8};

class ParallelExecTest : public ::testing::Test {
 protected:
  ParallelExecTest() {
    for (int i = 0; i < 16; ++i) {
      keys_.push_back(crypto::KeyPair::FromSeed(1000 + i));
    }
    std::vector<crypto::PublicKey> pks;
    for (const auto& k : keys_) pks.push_back(k.public_key());
    tc_ = std::make_unique<testutil::TestChain>(chain::TestChainParams(),
                                                testutil::Fund(pks, 1000));
  }

  chain::Blockchain& chain() { return tc_->chain(); }
  const ChainParams& params() { return chain().params(); }
  Wallet WalletFor(size_t i) { return Wallet(keys_[i], chain().id()); }

  /// Assembles a block from `candidates` on the current head, runs the
  /// equivalence harness against the head state at every thread count,
  /// then submits it (advancing the chain for the next round).
  void CheckAndSubmit(const std::vector<Transaction>& candidates) {
    now_ += 100;
    auto block = chain().AssembleBlock(chain().head()->hash, candidates,
                                       keys_[0].public_key(), now_,
                                       tc_->rng());
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    for (int threads : kThreadCounts) {
      ExpectParallelMatchesSerial(chain().head()->state, *block, params(),
                                  threads);
    }
    ASSERT_TRUE(chain().SubmitBlock(*block, now_).ok());
  }

  /// A coinbase-headed block built outside AssembleBlock, for invalid
  /// shapes the assembler would never produce. `fees` funds the coinbase.
  Block RawBlock(std::vector<Transaction> body, Amount fees) {
    Block block;
    block.header.chain_id = params().id;
    block.header.height = chain().head()->height() + 1;
    block.header.time = now_ + 50;
    Transaction coinbase;
    coinbase.type = TxType::kCoinbase;
    coinbase.chain_id = params().id;
    coinbase.outputs.push_back(
        TxOutput{params().block_reward + fees, keys_[0].public_key()});
    coinbase.nonce = 4242;
    block.txs.push_back(std::move(coinbase));
    for (Transaction& tx : body) block.txs.push_back(std::move(tx));
    return block;
  }

  std::vector<crypto::KeyPair> keys_;
  std::unique_ptr<testutil::TestChain> tc_;
  TimePoint now_ = 0;
};

TEST_F(ParallelExecTest, WideTransferBlockMatchesSerial) {
  // 15 pairwise-independent transfers: one wide wave.
  std::vector<Transaction> txs;
  for (size_t i = 0; i < 15; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(chain().head()->state,
                              keys_[(i + 1) % keys_.size()].public_key(),
                              50 + static_cast<Amount>(i), 1, i);
    ASSERT_TRUE(tx.ok());
    txs.push_back(std::move(*tx));
  }
  CheckAndSubmit(txs);
}

TEST_F(ParallelExecTest, ConflictChainsAndRevertsMatchSerial) {
  // Block 1: two HTLCs (one to redeem properly, one to feed a wrong-secret
  // revert) plus independent transfers.
  const Bytes secret{7, 7, 7};
  const Bytes wrong{6, 6, 6};
  Wallet alice = WalletFor(1);
  Wallet dave = WalletFor(3);
  Wallet bob = WalletFor(2);
  const LedgerState& s0 = chain().head()->state;
  Bytes payload = contracts::HtlcContract::MakeInitPayload(
      keys_[2].public_key(), crypto::Hash256::Of(secret), /*timelock=*/10'000);
  auto deploy_a =
      alice.BuildDeploy(s0, contracts::kHtlcKind, payload, 300, 4, 1);
  auto deploy_b =
      dave.BuildDeploy(s0, contracts::kHtlcKind, payload, 200, 4, 2);
  ASSERT_TRUE(deploy_a.ok() && deploy_b.ok());
  std::vector<Transaction> block1{*deploy_a, *deploy_b};
  for (size_t i = 4; i < 10; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(s0, keys_[i + 1].public_key(), 40, 1, i);
    ASSERT_TRUE(tx.ok());
    block1.push_back(std::move(*tx));
  }
  CheckAndSubmit(block1);

  // Block 2: a successful redeem, a wrong-secret revert (both kCall, on
  // different contracts — same wave), and a same-block spend chain: a
  // transfer whose output a second transfer consumes.
  const LedgerState& s1 = chain().head()->state;
  Wallet eve = WalletFor(15);
  auto redeem = bob.BuildCall(s1, deploy_a->Id(), contracts::kRedeemFunction,
                              secret, 2, 1);
  auto bad_redeem = eve.BuildCall(s1, deploy_b->Id(),
                                  contracts::kRedeemFunction, wrong, 2, 2);
  ASSERT_TRUE(redeem.ok() && bad_redeem.ok());

  Wallet carol = WalletFor(5);
  auto hop1 = carol.BuildTransfer(s1, keys_[6].public_key(), 100, 1, 7);
  ASSERT_TRUE(hop1.ok());
  Transaction hop2;  // keys_[6] spends hop1's output inside the same block.
  hop2.type = TxType::kTransfer;
  hop2.chain_id = chain().id();
  hop2.inputs.push_back(OutPoint{hop1->Id(), 0});
  hop2.outputs.push_back(TxOutput{99, keys_[7].public_key()});
  hop2.fee = 1;
  hop2.nonce = 8;
  hop2.SignWith(keys_[6]);

  std::vector<Transaction> block2{*redeem, *bad_redeem, *hop1, hop2};
  for (size_t i = 10; i < 14; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(s1, keys_[i + 1].public_key(), 30, 1, i);
    ASSERT_TRUE(tx.ok());
    block2.push_back(std::move(*tx));
  }
  CheckAndSubmit(block2);

  // The wrong-secret call must have landed as a revert receipt.
  const Block& mined = chain().head()->block;
  bool saw_revert = false;
  for (size_t i = 0; i < mined.txs.size(); ++i) {
    if (mined.txs[i].Id() == bad_redeem->Id()) {
      EXPECT_FALSE(mined.receipts[i].success);
      saw_revert = true;
    }
  }
  EXPECT_TRUE(saw_revert);
}

TEST_F(ParallelExecTest, RandomizedChurnMatchesSerial) {
  Rng rng(0xfeed);
  for (int round = 0; round < 6; ++round) {
    const LedgerState& state = chain().head()->state;
    std::vector<Transaction> txs;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (rng.NextU64() % 4 == 0) continue;  // Skip some senders.
      Wallet w = WalletFor(i);
      const size_t to = rng.NextU64() % keys_.size();
      const Amount amount = 10 + static_cast<Amount>(rng.NextU64() % 50);
      auto tx = w.BuildTransfer(state, keys_[to].public_key(), amount, 1,
                                rng.NextU64());
      if (tx.ok()) txs.push_back(std::move(*tx));
    }
    CheckAndSubmit(txs);
  }
  // Aggregate caches stayed exact mirrors of the UTXO set through churn.
  const LedgerState& head = chain().head()->state;
  EXPECT_EQ(head.LiquidValue(), head.LiquidValueScan());
  for (const auto& key : keys_) {
    EXPECT_EQ(head.BalanceOf(key.public_key()),
              head.BalanceOfScan(key.public_key()));
  }
}

TEST_F(ParallelExecTest, MidBlockFailureStatusIdentical) {
  // Body: two valid transfers, then a signed transfer spending a
  // nonexistent outpoint, then another valid transfer. The serial loop
  // aborts at index 3 having applied indices 1-2; the parallel path must
  // return the identical status and leave identical partial mutation.
  const LedgerState& state = chain().head()->state;
  std::vector<Transaction> body;
  for (size_t i = 1; i <= 2; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(state, keys_[i + 1].public_key(), 25, 1, i);
    ASSERT_TRUE(tx.ok());
    body.push_back(std::move(*tx));
  }
  Transaction bogus;
  bogus.type = TxType::kTransfer;
  bogus.chain_id = chain().id();
  bogus.inputs.push_back(OutPoint{crypto::Hash256::Of(Bytes{0xBA}), 0});
  bogus.outputs.push_back(TxOutput{5, keys_[9].public_key()});
  bogus.nonce = 77;
  bogus.SignWith(keys_[8]);
  body.push_back(std::move(bogus));
  Wallet w4 = WalletFor(4);
  auto tail = w4.BuildTransfer(state, keys_[5].public_key(), 25, 1, 4);
  ASSERT_TRUE(tail.ok());
  body.push_back(std::move(*tail));

  const Block block = RawBlock(std::move(body), /*fees=*/4);
  for (int threads : kThreadCounts) {
    ExpectParallelMatchesSerial(state, block, params(), threads);
  }
}

TEST_F(ParallelExecTest, DuplicateCoinbaseStatusIdentical) {
  const LedgerState& state = chain().head()->state;
  std::vector<Transaction> body;
  for (size_t i = 1; i <= 2; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(state, keys_[i + 1].public_key(), 25, 1, i);
    ASSERT_TRUE(tx.ok());
    body.push_back(std::move(*tx));
  }
  Transaction rogue;  // A second coinbase buried mid-body.
  rogue.type = TxType::kCoinbase;
  rogue.chain_id = chain().id();
  rogue.outputs.push_back(TxOutput{1, keys_[9].public_key()});
  rogue.nonce = 5;
  body.push_back(std::move(rogue));
  Wallet w4 = WalletFor(4);
  auto tail = w4.BuildTransfer(state, keys_[5].public_key(), 25, 1, 4);
  ASSERT_TRUE(tail.ok());
  body.push_back(std::move(*tail));

  const Block block = RawBlock(std::move(body), /*fees=*/2);
  for (int threads : kThreadCounts) {
    ExpectParallelMatchesSerial(state, block, params(), threads);
  }
}

TEST_F(ParallelExecTest, BadSignatureStatusIdentical) {
  const LedgerState& state = chain().head()->state;
  std::vector<Transaction> body;
  for (size_t i = 1; i <= 3; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(state, keys_[i + 1].public_key(), 25, 1, i);
    ASSERT_TRUE(tx.ok());
    body.push_back(std::move(*tx));
  }
  // Corrupt the third transfer's nonce after signing: the batch signature
  // fan-out sees the failure, and the oracle pins which status surfaces.
  body[2].nonce ^= 1;
  Wallet w4 = WalletFor(4);
  auto tail = w4.BuildTransfer(state, keys_[5].public_key(), 25, 1, 4);
  ASSERT_TRUE(tail.ok());
  body.push_back(std::move(*tail));

  const Block block = RawBlock(std::move(body), /*fees=*/4);
  for (int threads : kThreadCounts) {
    ExpectParallelMatchesSerial(state, block, params(), threads);
  }
}

TEST_F(ParallelExecTest, AssembledReceiptsMatchFullReExecution) {
  // AssembleBlock now reuses the selection-pass receipts instead of
  // re-running the body; this pins them against the validators' oracle.
  std::vector<Transaction> txs;
  for (size_t i = 0; i < 8; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(chain().head()->state,
                              keys_[i + 1].public_key(), 60, 1, i);
    ASSERT_TRUE(tx.ok());
    txs.push_back(std::move(*tx));
  }
  now_ += 100;
  auto block = chain().AssembleBlock(chain().head()->hash, txs,
                                     keys_[0].public_key(), now_, tc_->rng());
  ASSERT_TRUE(block.ok());
  LedgerState replay = chain().head()->state;
  auto receipts = ApplyBlockBody(&replay, *block, params());
  ASSERT_TRUE(receipts.ok());
  ASSERT_EQ(receipts->size(), block->receipts.size());
  for (size_t i = 0; i < receipts->size(); ++i) {
    EXPECT_EQ((*receipts)[i].Encode(), block->receipts[i].Encode());
  }
  EXPECT_EQ(block->header.receipt_root, block->ComputeReceiptRoot());
}

TEST_F(ParallelExecTest, DeepCatchupThreadInvariant) {
  // Grow a 10-block linear chain of 8-transfer blocks, then replay it into
  // fresh chains through SubmitBlocks at several thread counts. Width-1
  // rounds route the batch pool into intra-block execution; the head hash
  // and post-state must not depend on the thread count.
  for (int round = 0; round < 10; ++round) {
    const LedgerState& state = chain().head()->state;
    std::vector<Transaction> txs;
    for (size_t i = 0; i < 8; ++i) {
      Wallet w = WalletFor(i + (round % 2 == 0 ? 0 : 8));
      auto tx = w.BuildTransfer(state, keys_[(i + 3) % keys_.size()].public_key(),
                                20, 1, static_cast<uint64_t>(round) * 100 + i);
      ASSERT_TRUE(tx.ok());
      txs.push_back(std::move(*tx));
    }
    CheckAndSubmit(txs);
  }
  std::vector<Block> batch;
  for (const auto* entry : chain().arrival_order()) {
    if (entry->height() > 0) batch.push_back(entry->block);
  }
  ASSERT_EQ(batch.size(), 10u);

  std::vector<crypto::PublicKey> pks;
  for (const auto& k : keys_) pks.push_back(k.public_key());
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    chain::Blockchain replica(chain::TestChainParams(),
                              testutil::Fund(pks, 1000));
    auto result = replica.SubmitBlocks(batch, /*arrival_time=*/1, threads);
    EXPECT_EQ(result.accepted, batch.size());
    for (const Status& status : result.statuses) {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    ASSERT_EQ(replica.head()->hash, chain().head()->hash);
    ExpectStatesEqual(replica.head()->state, chain().head()->state);
  }
}

// ------------------------------- widened block assembly equivalence

void ExpectBlocksIdentical(const Block& a, const Block& b) {
  EXPECT_EQ(a.header.Encode(), b.header.Encode());
  ASSERT_EQ(a.txs.size(), b.txs.size());
  for (size_t i = 0; i < a.txs.size(); ++i) {
    EXPECT_EQ(a.txs[i].Encode(), b.txs[i].Encode()) << "tx " << i;
  }
  ASSERT_EQ(a.receipts.size(), b.receipts.size());
  for (size_t i = 0; i < a.receipts.size(); ++i) {
    EXPECT_EQ(a.receipts[i].Encode(), b.receipts[i].Encode())
        << "receipt " << i;
  }
}

/// Assembles from `candidates` through the serial oracle
/// (AssembleBlockOn with a null pool), then through explicit pools of
/// several widths and the implicit-pool span overload, asserting the
/// returned blocks are byte-identical (selected set, order, receipts,
/// roots). mine=false keeps headers nonce-free so blocks compare whole.
void ExpectWidenedAssemblyMatchesSerial(
    chain::Blockchain& chain, const std::vector<Transaction>& candidates,
    const crypto::PublicKey& miner, TimePoint now) {
  std::vector<const Transaction*> pointers;
  pointers.reserve(candidates.size());
  for (const Transaction& tx : candidates) pointers.push_back(&tx);
  const std::span<const Transaction* const> span(pointers);

  Rng serial_rng(777);
  auto serial = chain.AssembleBlockOn(nullptr, chain.head()->hash, span, miner,
                                      now, &serial_rng, /*mine=*/false);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    common::WorkerPool pool(threads);
    Rng wide_rng(777);
    auto wide = chain.AssembleBlockOn(&pool, chain.head()->hash, span, miner,
                                      now, &wide_rng, /*mine=*/false);
    ASSERT_TRUE(wide.ok()) << wide.status().ToString();
    ExpectBlocksIdentical(*serial, *wide);
  }
  Rng implicit_rng(777);
  auto implicit = chain.AssembleBlock(chain.head()->hash, span, miner, now,
                                      &implicit_rng, /*mine=*/false);
  ASSERT_TRUE(implicit.ok()) << implicit.status().ToString();
  ExpectBlocksIdentical(*serial, *implicit);
}

TEST_F(ParallelExecTest, AssembleBlockWidenedMatchesSerialOnIndependentSet) {
  std::vector<Transaction> txs;
  for (size_t i = 0; i < 15; ++i) {
    Wallet w = WalletFor(i);
    auto tx = w.BuildTransfer(chain().head()->state,
                              keys_[(i + 1) % keys_.size()].public_key(),
                              40 + static_cast<Amount>(i), 1, i);
    ASSERT_TRUE(tx.ok());
    txs.push_back(std::move(*tx));
  }
  ExpectWidenedAssemblyMatchesSerial(chain(), txs, keys_[0].public_key(), 100);
}

TEST_F(ParallelExecTest, AssembleBlockWidenedMatchesSerialOnConflictHeavySet) {
  // Pairs of transactions double-spending the same wallet funds (two
  // independent Wallet instances over one key do not see each other's
  // reservations), an exact duplicate, a bad signature and a spend of a
  // nonexistent output. FIFO selection keeps the first of each pair and
  // skips the rest; the widened loop must reproduce that exactly.
  std::vector<Transaction> txs;
  const LedgerState& state = chain().head()->state;
  for (size_t i = 0; i < 6; ++i) {
    Wallet first(keys_[i], chain().id());
    Wallet second(keys_[i], chain().id());
    auto a = first.BuildTransfer(state, keys_[i + 1].public_key(), 900, 1, 1);
    auto b = second.BuildTransfer(state, keys_[i + 2].public_key(), 900, 1, 2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    txs.push_back(std::move(*a));
    txs.push_back(std::move(*b));
  }
  txs.push_back(txs[0]);  // Exact duplicate id.
  Transaction corrupt = txs[2];
  corrupt.fee += 1;  // Invalidates the signature.
  txs.push_back(std::move(corrupt));
  Transaction phantom;
  phantom.type = TxType::kTransfer;
  phantom.chain_id = chain().id();
  phantom.inputs.push_back(Op(0x5e));
  phantom.outputs.push_back(TxOutput{1, keys_[0].public_key()});
  phantom.SignWith(keys_[0]);
  txs.push_back(std::move(phantom));
  ExpectWidenedAssemblyMatchesSerial(chain(), txs, keys_[0].public_key(), 100);
}

TEST_F(ParallelExecTest, AssembleBlockWidenedMatchesSerialOnDependentChain) {
  // tx[k+1] spends tx[k]'s payment output (a fresh key unfunded at
  // genesis, so the input can only come from the previous candidate).
  // Speculation against the round-start snapshot fails for every link but
  // the first; the serial re-run must adopt them all, in order.
  std::vector<crypto::KeyPair> fresh;
  for (int i = 0; i < 5; ++i) {
    fresh.push_back(crypto::KeyPair::FromSeed(5000 + i));
  }
  std::vector<Transaction> txs;
  LedgerState scratch = chain().head()->state;
  const chain::BlockEnv env{chain().id(), chain().head()->height() + 1, 100};
  {
    Wallet w = WalletFor(0);
    auto tx = w.BuildTransfer(scratch, fresh[0].public_key(), 500, 1, 9);
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(chain::ApplyTransaction(&scratch, *tx, env).ok());
    txs.push_back(std::move(*tx));
  }
  for (size_t i = 0; i + 1 < fresh.size(); ++i) {
    Wallet w(fresh[i], chain().id());
    auto tx = w.BuildTransfer(scratch, fresh[i + 1].public_key(),
                              400 - static_cast<Amount>(i) * 50, 1, 9);
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(chain::ApplyTransaction(&scratch, *tx, env).ok());
    txs.push_back(std::move(*tx));
  }
  ExpectWidenedAssemblyMatchesSerial(chain(), txs, keys_[0].public_key(), 100);
}

TEST(AssembleBlockWidenedTest, CapacityCapRespectedAtAllWidths) {
  // More valid candidates than max_block_txs: the window walk must stop
  // at capacity with exactly the serial prefix, at every width.
  ChainParams params = chain::TestChainParams();
  params.max_block_txs = 7;
  std::vector<crypto::KeyPair> keys;
  std::vector<crypto::PublicKey> pks;
  for (int i = 0; i < 24; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(7000 + i));
    pks.push_back(keys.back().public_key());
  }
  testutil::TestChain tc(params, testutil::Fund(pks, 1000));
  std::vector<Transaction> txs;
  for (size_t i = 0; i < keys.size(); ++i) {
    Wallet w(keys[i], tc.chain().id());
    auto tx = w.BuildTransfer(tc.chain().head()->state,
                              pks[(i + 1) % pks.size()], 100, 1, i);
    ASSERT_TRUE(tx.ok());
    txs.push_back(std::move(*tx));
  }
  ExpectWidenedAssemblyMatchesSerial(tc.chain(), txs, pks[0], 100);
  std::vector<const Transaction*> pointers;
  for (const Transaction& tx : txs) pointers.push_back(&tx);
  Rng rng(777);
  auto block = tc.chain().AssembleBlockOn(
      nullptr, tc.chain().head()->hash,
      std::span<const Transaction* const>(pointers), pks[0], 100, &rng,
      /*mine=*/false);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->txs.size(), params.max_block_txs + 1);  // +1 coinbase.
}

TEST(ParallelExecEnvTest, SerialPinReadsEnvironmentOnce) {
  // In the regular test environment the pin is unset; the forced-serial CI
  // shard runs this whole suite with AC3_EXEC_SERIAL=1, where every
  // equivalence test above exercises the oracle delegation instead.
  const char* pin = std::getenv("AC3_EXEC_SERIAL");
  const bool expected =
      pin != nullptr && pin[0] != '\0' && !(pin[0] == '0' && pin[1] == '\0');
  EXPECT_EQ(chain::BlockExecutionPinnedSerial(), expected);
}

}  // namespace
}  // namespace ac3
