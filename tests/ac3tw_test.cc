// AC3TW protocol-engine tests: the Section 4.1 walkthrough with Trent, the
// mutual exclusion of his two signatures, abort paths, and the
// single-point-of-failure behaviour AC3WN was designed to remove.

#include "src/protocols/ac3tw_swap.h"

#include <gtest/gtest.h>

#include "src/graph/ac2t_graph.h"
#include "src/graph/multisig_graph.h"
#include "tests/test_util.h"

namespace ac3::protocols {
namespace {

using testutil::SwapWorld;
using testutil::SwapWorldOptions;

constexpr TimePoint kDeadline = Minutes(10);

Ac3twConfig FastConfig() {
  Ac3twConfig config;
  config.delta = Seconds(2);
  config.confirm_depth = 1;
  config.resubmit_interval = Milliseconds(800);
  config.publish_patience = Seconds(12);
  return config;
}

graph::Ac2tGraph TwoPartyGraph(SwapWorld* world, chain::Amount x = 300,
                               chain::Amount y = 200) {
  return graph::MakeTwoPartySwap(
      world->participant(0)->pk(), world->participant(1)->pk(),
      world->asset_chain(0), x, world->asset_chain(1), y,
      world->env()->sim()->Now());
}

class Ac3twSwapTest : public ::testing::Test {
 protected:
  Ac3twSwapTest()
      : world_(SwapWorldOptions{.witness_chain = false}),
        trent_("Trent", 0x7ae47, world_.env()) {}

  SwapWorld world_;
  TrustedWitness trent_;
};

TEST_F(Ac3twSwapTest, TwoPartyHappyPathCommits) {
  world_.StartMining();
  Ac3twSwapEngine engine(world_.env(), TwoPartyGraph(&world_),
                         world_.all_participants(), &trent_, FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->finished);
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST_F(Ac3twSwapTest, DeclineToPublishAborts) {
  world_.StartMining();
  world_.participant(1)->behavior().decline_publish = true;
  Ac3twSwapEngine engine(world_.env(), TwoPartyGraph(&world_),
                         world_.all_participants(), &trent_, FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aborted);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRefunded), 1);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kUnpublished), 1);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST_F(Ac3twSwapTest, RequestAbortRefundsEverything) {
  world_.StartMining();
  Ac3twConfig config = FastConfig();
  config.request_abort = true;
  Ac3twSwapEngine engine(world_.env(), TwoPartyGraph(&world_),
                         world_.all_participants(), &trent_, config);
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->aborted);
  EXPECT_EQ(report->CountOutcome(EdgeOutcome::kRedeemed), 0);
  EXPECT_FALSE(report->AtomicityViolated());
}

// Trent being unreachable stalls the protocol: the single point of failure
// (and DoS target) the paper criticizes in Section 4.2's motivation.
TEST_F(Ac3twSwapTest, CrashedTrentStallsTheSwap) {
  world_.StartMining();
  world_.env()->failures()->CrashFor(trent_.node(), 0, Minutes(30));
  Ac3twSwapEngine engine(world_.env(), TwoPartyGraph(&world_),
                         world_.all_participants(), &trent_, FastConfig());
  ASSERT_TRUE(engine.Start().ok());
  world_.env()->sim()->RunUntil(Minutes(2));
  EXPECT_FALSE(engine.Done());
  EXPECT_FALSE(trent_.IsRegistered(engine.ms_id()));
}

TEST_F(Ac3twSwapTest, SwapResumesWhenTrentRecovers) {
  world_.StartMining();
  world_.env()->failures()->CrashFor(trent_.node(), 0, Seconds(20));
  Ac3twSwapEngine engine(world_.env(), TwoPartyGraph(&world_),
                         world_.all_participants(), &trent_, FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST_F(Ac3twSwapTest, RecipientCrashStillCommitsAfterRecovery) {
  world_.StartMining();
  world_.env()->failures()->CrashFor(world_.participant(1)->node(),
                                     Seconds(5), Seconds(30));
  Ac3twSwapEngine engine(world_.env(), TwoPartyGraph(&world_),
                         world_.all_participants(), &trent_, FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->committed);
  EXPECT_TRUE(report->AllRedeemed());
  EXPECT_FALSE(report->AtomicityViolated());
}

TEST_F(Ac3twSwapTest, HandlesCyclicGraph) {
  // AC3TW also coordinates graphs the HTLC protocols cannot (the witness
  // decides, not the publish order).
  SwapWorldOptions options;
  options.participants = 3;
  options.asset_chains = 3;
  options.witness_chain = false;
  SwapWorld world(options);
  TrustedWitness trent("Trent", 0x7ae47, world.env());
  world.StartMining();
  std::vector<crypto::PublicKey> pks;
  for (auto* p : world.all_participants()) pks.push_back(p->pk());
  graph::Ac2tGraph graph = graph::MakeFigure7aCyclic(
      pks, world.asset_chains(), 100, world.env()->sim()->Now());
  Ac3twSwapEngine engine(world.env(), graph, world.all_participants(), &trent,
                         FastConfig());
  auto report = engine.Run(kDeadline);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->committed);
  EXPECT_FALSE(report->AtomicityViolated());
}

// ---- Trent unit behaviour (the key/value store rules of Section 4.1) ----

class TrentStoreTest : public ::testing::Test {
 protected:
  TrentStoreTest()
      : world_(SwapWorldOptions{.witness_chain = false}),
        trent_("Trent", 0x7ae47, world_.env()) {
    graph_ = TwoPartyGraph(&world_);
    std::vector<crypto::KeyPair> keys{
        crypto::KeyPair::FromSeed(testutil::ParticipantSeed(0)),
        crypto::KeyPair::FromSeed(testutil::ParticipantSeed(1))};
    ms_ = *graph::SignGraph(graph_, keys);
  }

  SwapWorld world_;
  TrustedWitness trent_;
  graph::Ac2tGraph graph_;
  crypto::Multisignature ms_;
};

TEST_F(TrentStoreTest, RegisterOnceOnly) {
  EXPECT_TRUE(trent_.HandleRegister(ms_).ok());
  Status second = trent_.HandleRegister(ms_);
  EXPECT_EQ(second.code(), StatusCode::kAlreadyExists);
}

TEST_F(TrentStoreTest, RejectsIncompleteMultisignature) {
  crypto::Multisignature partial(graph_.Encode());
  ASSERT_TRUE(partial
                  .AddSignature(crypto::KeyPair::FromSeed(
                      testutil::ParticipantSeed(0)))
                  .ok());
  Status status = trent_.HandleRegister(partial);
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(TrentStoreTest, RedeemBeforeRegistrationFails) {
  auto result = trent_.HandleRedeemRequest(ms_.Id());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(TrentStoreTest, RedeemWithoutDeploymentsFails) {
  ASSERT_TRUE(trent_.HandleRegister(ms_).ok());
  auto result = trent_.HandleRedeemRequest(ms_.Id());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // The failed redeem request must NOT have burned the store entry.
  EXPECT_FALSE(trent_.Lookup(ms_.Id()).has_value());
}

TEST_F(TrentStoreTest, RefundThenRedeemReturnsRefund) {
  ASSERT_TRUE(trent_.HandleRegister(ms_).ok());
  auto refund = trent_.HandleRefundRequest(ms_.Id());
  ASSERT_TRUE(refund.ok());
  EXPECT_EQ(refund->tag, crypto::CommitmentTag::kRefund);
  // Mutual exclusion: a later redeem request re-reads the refund decision.
  auto redeem = trent_.HandleRedeemRequest(ms_.Id());
  ASSERT_TRUE(redeem.ok());
  EXPECT_EQ(redeem->tag, crypto::CommitmentTag::kRefund);
  EXPECT_EQ(redeem->signature, refund->signature);
}

TEST_F(TrentStoreTest, RefundSignatureVerifiesAgainstCommitment) {
  ASSERT_TRUE(trent_.HandleRegister(ms_).ok());
  auto refund = trent_.HandleRefundRequest(ms_.Id());
  ASSERT_TRUE(refund.ok());
  crypto::SignatureCommitment commitment(ms_.Id(), trent_.pk(),
                                         crypto::CommitmentTag::kRefund);
  EXPECT_TRUE(commitment.VerifySecret(refund->signature));
  crypto::SignatureCommitment wrong_tag(ms_.Id(), trent_.pk(),
                                        crypto::CommitmentTag::kRedeem);
  EXPECT_FALSE(wrong_tag.VerifySecret(refund->signature));
}


// Trent's key/value store coordinates many independent AC2Ts at once —
// one decision slot per ms(D), with no cross-swap interference.
TEST(TrentMultiSwapTest, CoordinatesConcurrentSwapsIndependently) {
  SwapWorldOptions options;
  options.participants = 4;
  options.asset_chains = 2;
  options.witness_chain = false;
  options.funding = 8000;
  SwapWorld world(options);
  TrustedWitness trent("Trent", 0x7ae47, world.env());
  world.StartMining();
  // Swap 2's counterparty declines; swap 1 must still commit through the
  // same Trent instance.
  world.participant(3)->behavior().decline_publish = true;

  graph::Ac2tGraph g1 = graph::MakeTwoPartySwap(
      world.participant(0)->pk(), world.participant(1)->pk(),
      world.asset_chain(0), 300, world.asset_chain(1), 200, 1);
  graph::Ac2tGraph g2 = graph::MakeTwoPartySwap(
      world.participant(2)->pk(), world.participant(3)->pk(),
      world.asset_chain(0), 150, world.asset_chain(1), 100, 2);

  Ac3twConfig config = FastConfig();
  Ac3twSwapEngine e1(world.env(), g1,
                     {world.participant(0), world.participant(1)}, &trent,
                     config);
  Ac3twSwapEngine e2(world.env(), g2,
                     {world.participant(2), world.participant(3)}, &trent,
                     config);
  ASSERT_TRUE(e1.Start().ok());
  ASSERT_TRUE(e2.Start().ok());
  ASSERT_NE(e1.ms_id(), e2.ms_id());
  Status done = world.env()->sim()->RunUntilCondition(
      [&]() { return e1.Done() && e2.Done(); }, kDeadline);
  ASSERT_TRUE(done.ok());
  auto r1 = e1.Run(kDeadline);
  auto r2 = e2.Run(kDeadline);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->committed) << r1->Summary();
  EXPECT_TRUE(r2->aborted) << r2->Summary();
  EXPECT_FALSE(r1->AtomicityViolated());
  EXPECT_FALSE(r2->AtomicityViolated());
  // Trent holds two independent decisions.
  auto d1 = trent.Lookup(e1.ms_id());
  auto d2 = trent.Lookup(e2.ms_id());
  ASSERT_TRUE(d1.has_value());
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d1->tag, crypto::CommitmentTag::kRedeem);
  EXPECT_EQ(d2->tag, crypto::CommitmentTag::kRefund);
}

}  // namespace
}  // namespace ac3::protocols
