// Section 4.3 tests: header-chain (SPV) evidence construction and
// verification, the relay contract of Figure 6, the witness contract's
// VerifyContracts (Algorithm 3), and the depth-d discipline of the
// permissionless asset contract (Algorithm 4).

#include "src/contracts/evidence.h"

#include <gtest/gtest.h>

#include "src/contracts/evidence_builder.h"
#include "src/contracts/permissionless_contract.h"
#include "src/contracts/relay_contract.h"
#include "src/contracts/witness_contract.h"
#include "src/graph/ac2t_graph.h"
#include "src/graph/multisig_graph.h"
#include "tests/test_util.h"

namespace ac3::contracts {
namespace {

const crypto::KeyPair kAlice = crypto::KeyPair::FromSeed(11);
const crypto::KeyPair kBob = crypto::KeyPair::FromSeed(12);
const crypto::KeyPair kMallory = crypto::KeyPair::FromSeed(13);

// A two-chain world driven by hand: an "asset" chain (validated) and a
// "witness" chain (validator), per Figure 6's terminology.
class EvidenceTest : public ::testing::Test {
 protected:
  EvidenceTest()
      : asset_(MakeParams("Asset", 0),
               testutil::Fund({kAlice.public_key(), kBob.public_key()}, 2000),
               /*seed=*/101),
        witness_(MakeParams("Witness", 1),
                 testutil::Fund({kAlice.public_key(), kBob.public_key()}, 2000),
                 /*seed=*/202),
        alice_asset_(kAlice, 0),
        bob_asset_(kBob, 0),
        alice_witness_(kAlice, 1) {}

  static chain::ChainParams MakeParams(const std::string& name,
                                       chain::ChainId id) {
    chain::ChainParams params = chain::TestChainParams();
    params.name = name;
    params.id = id;
    return params;
  }

  // Deploys SCw on the witness chain for a one-edge graph Alice -> Bob,
  // returning the SCw id. `min_depth` is the agreed evidence depth d.
  crypto::Hash256 DeployWitnessContract(uint32_t min_depth,
                                        chain::Amount amount = 400) {
    graph::Ac2tGraph graph(
        {kAlice.public_key(), kBob.public_key()},
        {graph::Ac2tEdge{0, 1, /*chain_id=*/0, amount}}, /*timestamp=*/7);
    auto ms = graph::SignGraph(graph, {kAlice, kBob});
    EXPECT_TRUE(ms.ok());

    WitnessInit init;
    init.participants = {kAlice.public_key(), kBob.public_key()};
    init.ms_encoded = ms->Encode();
    EdgeSpec spec;
    spec.chain_id = 0;
    spec.sender = kAlice.public_key();
    spec.recipient = kBob.public_key();
    spec.amount = amount;
    spec.min_evidence_depth = min_depth;
    spec.asset_checkpoint = asset_.chain().genesis()->block.header;
    spec.asset_difficulty_bits = asset_.chain().params().difficulty_bits;
    init.edges.push_back(spec);

    auto deploy = alice_witness_.BuildDeploy(witness_.chain().StateAtHead(),
                                             kWitnessKind, init.Encode(),
                                             /*locked_value=*/0, /*fee=*/4,
                                             /*nonce=*/next_nonce_++);
    EXPECT_TRUE(deploy.ok()) << deploy.status();
    EXPECT_TRUE(witness_.MineBlock({*deploy}).ok());
    return deploy->Id();
  }

  // Deploys the matching PermissionlessSC on the asset chain.
  crypto::Hash256 DeployAssetContract(const crypto::Hash256& scw_id,
                                      uint32_t depth,
                                      chain::Amount amount = 400) {
    PermissionlessInit init;
    init.recipient = kBob.public_key();
    init.witness_chain_id = 1;
    init.scw_id = scw_id;
    init.depth = depth;
    init.witness_checkpoint = witness_.chain().genesis()->block.header;
    init.witness_difficulty_bits = witness_.chain().params().difficulty_bits;
    last_asset_init_ = init;

    auto deploy = alice_asset_.BuildDeploy(asset_.chain().StateAtHead(),
                                           kPermissionlessKind, init.Encode(),
                                           amount, /*fee=*/4,
                                           /*nonce=*/next_nonce_++);
    EXPECT_TRUE(deploy.ok()) << deploy.status();
    EXPECT_TRUE(asset_.MineBlock({*deploy}).ok());
    return deploy->Id();
  }

  const WitnessContract* Scw(const crypto::Hash256& scw_id) {
    auto contract = witness_.chain().ContractAtHead(scw_id);
    EXPECT_TRUE(contract.ok());
    return dynamic_cast<const WitnessContract*>(contract->get());
  }

  testutil::TestChain asset_;
  testutil::TestChain witness_;
  chain::Wallet alice_asset_;
  chain::Wallet bob_asset_;
  chain::Wallet alice_witness_;
  PermissionlessInit last_asset_init_;
  uint64_t next_nonce_ = 1;
};

// ------------------------------------------------- raw evidence mechanics

TEST_F(EvidenceTest, TxEvidenceVerifiesAgainstCheckpoint) {
  auto transfer = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                             kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(transfer.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*transfer, 3).ok());

  auto evidence = BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, transfer->Id());
  ASSERT_TRUE(evidence.ok()) << evidence.status();
  EXPECT_GE(evidence->ConfirmationsShown(), 3u);
  EXPECT_TRUE(VerifyHeaderChainEvidence(
                  asset_.chain().genesis()->block.header,
                  asset_.chain().params().difficulty_bits, *evidence,
                  /*min_confirmations=*/3)
                  .ok());
}

TEST_F(EvidenceTest, EvidenceRoundTripsThroughEncoding) {
  auto transfer = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                             kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(transfer.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*transfer, 2).ok());
  auto evidence = BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, transfer->Id());
  ASSERT_TRUE(evidence.ok());
  auto decoded = HeaderChainEvidence::Decode(evidence->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(VerifyHeaderChainEvidence(
                  asset_.chain().genesis()->block.header,
                  asset_.chain().params().difficulty_bits, *decoded, 2)
                  .ok());
}

TEST_F(EvidenceTest, InsufficientConfirmationsRejected) {
  auto transfer = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                             kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(transfer.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*transfer, 1).ok());
  auto evidence = BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, transfer->Id());
  ASSERT_TRUE(evidence.ok());
  Status status = VerifyHeaderChainEvidence(
      asset_.chain().genesis()->block.header,
      asset_.chain().params().difficulty_bits, *evidence,
      /*min_confirmations=*/5);
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(EvidenceTest, WrongCheckpointRejected) {
  auto transfer = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                             kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(transfer.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*transfer, 2).ok());
  auto evidence = BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, transfer->Id());
  ASSERT_TRUE(evidence.ok());
  // Verify against the *witness* chain's genesis: linkage must fail.
  Status status = VerifyHeaderChainEvidence(
      witness_.chain().genesis()->block.header,
      asset_.chain().params().difficulty_bits, *evidence, 0);
  EXPECT_FALSE(status.ok());
}

TEST_F(EvidenceTest, BrokenHeaderLinkageRejected) {
  auto transfer = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                             kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(transfer.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*transfer, 3).ok());
  auto evidence = BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, transfer->Id());
  ASSERT_TRUE(evidence.ok());
  ASSERT_GE(evidence->headers.size(), 2u);
  // Drop a middle header: consecutive linkage breaks.
  evidence->headers.erase(evidence->headers.begin() + 1);
  if (evidence->target_index > 0) evidence->target_index -= 1;
  Status status = VerifyHeaderChainEvidence(
      asset_.chain().genesis()->block.header,
      asset_.chain().params().difficulty_bits, *evidence, 0);
  EXPECT_FALSE(status.ok());
}

TEST_F(EvidenceTest, HigherDifficultyRequirementRejected) {
  // A validator that demands more PoW than the evidence headers carry must
  // reject them (defense against cheaply mined fake branches).
  auto transfer = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                             kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(transfer.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*transfer, 2).ok());
  auto evidence = BuildTxEvidence(
      asset_.chain(), asset_.chain().genesis()->hash, transfer->Id());
  ASSERT_TRUE(evidence.ok());
  Status status = VerifyHeaderChainEvidence(
      asset_.chain().genesis()->block.header,
      /*required_difficulty_bits=*/30, *evidence, 0);
  EXPECT_FALSE(status.ok());
}

TEST_F(EvidenceTest, SwappedLeafRejectedByMerkleProof) {
  auto t1 = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                       kBob.public_key(), 10, 1, 1);
  auto t2 = bob_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                     kAlice.public_key(), 20, 1, 1);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(asset_.MineBlock({*t1, *t2}).ok());
  ASSERT_TRUE(asset_.MineEmpty(2).ok());
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, t1->Id());
  ASSERT_TRUE(evidence.ok());
  // Claim the proof covers t2 instead of t1.
  evidence->leaf = t2->Encode();
  Status status = VerifyHeaderChainEvidence(
      asset_.chain().genesis()->block.header,
      asset_.chain().params().difficulty_bits, *evidence, 0);
  EXPECT_FALSE(status.ok());
}

TEST_F(EvidenceTest, ReceiptEvidenceBindsToReceiptRoot) {
  // Receipts and transactions live under different Merkle roots; a receipt
  // proof presented as a transaction proof must fail.
  auto scw_id = DeployWitnessContract(/*min_depth=*/0);
  auto sc_id = DeployAssetContract(scw_id, /*depth=*/0);
  (void)sc_id;
  ASSERT_TRUE(witness_.MineEmpty(2).ok());
  auto deploy_loc = witness_.chain().FindTx(scw_id);
  ASSERT_TRUE(deploy_loc.has_value());

  auto receipt_ev = BuildReceiptEvidence(
      witness_.chain(), witness_.chain().genesis()->hash, scw_id);
  ASSERT_TRUE(receipt_ev.ok()) << receipt_ev.status();
  EXPECT_TRUE(VerifyHeaderChainEvidence(
                  witness_.chain().genesis()->block.header,
                  witness_.chain().params().difficulty_bits, *receipt_ev, 0)
                  .ok());
  HeaderChainEvidence cross = *receipt_ev;
  cross.leaf_is_receipt = false;  // Lie about the leaf family.
  EXPECT_FALSE(VerifyHeaderChainEvidence(
                   witness_.chain().genesis()->block.header,
                   witness_.chain().params().difficulty_bits, cross, 0)
                   .ok());
}

// --------------------------------------------------------- relay contract

TEST_F(EvidenceTest, RelayContractAcceptsProofOfTx1) {
  // Figure 6: SC on blockchain2 stores a stable header of blockchain1 and
  // flips S1 -> S2 when evidence of TX1 arrives.
  auto tx1 = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                        kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(tx1.ok());

  RelayInit init;
  init.checkpoint = asset_.chain().genesis()->block.header;
  init.validated_difficulty_bits = asset_.chain().params().difficulty_bits;
  init.interesting_tx = tx1->Id();
  init.required_depth = 2;
  auto deploy = alice_witness_.BuildDeploy(witness_.chain().StateAtHead(),
                                           kRelayKind, init.Encode(), 0, 4,
                                           /*nonce=*/50);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(witness_.MineBlock({*deploy}).ok());

  // TX1 takes place (label 3) and becomes stable (label 4).
  ASSERT_TRUE(asset_.MineTxToDepth(*tx1, 2).ok());
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, tx1->Id());
  ASSERT_TRUE(evidence.ok());

  // Submit the evidence (labels 5-6); the miners flip the relay to S2.
  auto call = alice_witness_.BuildCall(witness_.chain().StateAtHead(),
                                       deploy->Id(), kSubmitEvidenceFunction,
                                       evidence->Encode(), 2, /*nonce=*/51);
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(witness_.MineBlock({*call}).ok());

  auto relay = witness_.chain().ContractAtHead(deploy->Id());
  ASSERT_TRUE(relay.ok());
  const auto* rc = dynamic_cast<const RelayContract*>(relay->get());
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(rc->state(), RelayState::kS2);
}

TEST_F(EvidenceTest, RelayContractRejectsShallowEvidence) {
  auto tx1 = alice_asset_.BuildTransfer(asset_.chain().StateAtHead(),
                                        kBob.public_key(), 10, 1, 1);
  ASSERT_TRUE(tx1.ok());
  RelayInit init;
  init.checkpoint = asset_.chain().genesis()->block.header;
  init.validated_difficulty_bits = asset_.chain().params().difficulty_bits;
  init.interesting_tx = tx1->Id();
  init.required_depth = 4;
  auto deploy = alice_witness_.BuildDeploy(witness_.chain().StateAtHead(),
                                           kRelayKind, init.Encode(), 0, 4, 60);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(witness_.MineBlock({*deploy}).ok());

  ASSERT_TRUE(asset_.MineTxToDepth(*tx1, 1).ok());  // Only 1 confirmation.
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, tx1->Id());
  ASSERT_TRUE(evidence.ok());
  auto call = alice_witness_.BuildCall(witness_.chain().StateAtHead(),
                                       deploy->Id(), kSubmitEvidenceFunction,
                                       evidence->Encode(), 2, 61);
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(witness_.MineBlock({*call}).ok());
  const auto* rc = dynamic_cast<const RelayContract*>(
      witness_.chain().ContractAtHead(deploy->Id())->get());
  EXPECT_EQ(rc->state(), RelayState::kS1) << "shallow evidence must not flip";
}

// ----------------------------------------- Algorithm 3: VerifyContracts

TEST_F(EvidenceTest, WitnessVerifyContractsAcceptsMatchingDeployment) {
  auto scw_id = DeployWitnessContract(/*min_depth=*/1);
  auto sc_id = DeployAssetContract(scw_id, /*depth=*/1);
  ASSERT_TRUE(asset_.MineEmpty(1).ok());
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, sc_id);
  ASSERT_TRUE(evidence.ok());
  EXPECT_TRUE(Scw(scw_id)->VerifyContracts({*evidence}).ok());
}

TEST_F(EvidenceTest, VerifyContractsRejectsWrongSender) {
  auto scw_id = DeployWitnessContract(1);
  // Mallory (via Bob's wallet) deploys a contract with the right shape but
  // the wrong sender.
  PermissionlessInit init;
  init.recipient = kBob.public_key();
  init.witness_chain_id = 1;
  init.scw_id = scw_id;
  init.depth = 1;
  init.witness_checkpoint = witness_.chain().genesis()->block.header;
  init.witness_difficulty_bits = witness_.chain().params().difficulty_bits;
  auto deploy = bob_asset_.BuildDeploy(asset_.chain().StateAtHead(),
                                       kPermissionlessKind, init.Encode(), 400,
                                       4, 70);
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(asset_.MineTxToDepth(*deploy, 1).ok());
  auto evidence = BuildTxEvidence(asset_.chain(),
                                  asset_.chain().genesis()->hash, deploy->Id());
  ASSERT_TRUE(evidence.ok());
  Status status = Scw(scw_id)->VerifyContracts({*evidence});
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(EvidenceTest, VerifyContractsRejectsWrongAmount) {
  auto scw_id = DeployWitnessContract(1, /*amount=*/400);
  auto sc_id = DeployAssetContract(scw_id, 1, /*amount=*/399);
  ASSERT_TRUE(asset_.MineEmpty(1).ok());
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, sc_id);
  ASSERT_TRUE(evidence.ok());
  EXPECT_FALSE(Scw(scw_id)->VerifyContracts({*evidence}).ok());
}

TEST_F(EvidenceTest, VerifyContractsRejectsForeignScwBinding) {
  auto scw_id = DeployWitnessContract(1);
  // The asset contract conditions on a DIFFERENT SCw — other participants
  // would never be able to redeem against this one.
  auto sc_id =
      DeployAssetContract(crypto::Hash256::Of(Bytes{0xEE}), /*depth=*/1);
  ASSERT_TRUE(asset_.MineEmpty(1).ok());
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, sc_id);
  ASSERT_TRUE(evidence.ok());
  EXPECT_FALSE(Scw(scw_id)->VerifyContracts({*evidence}).ok());
}

TEST_F(EvidenceTest, VerifyContractsRejectsShallowDepthAgreement) {
  auto scw_id = DeployWitnessContract(/*min_depth=*/4);
  auto sc_id = DeployAssetContract(scw_id, /*depth=*/1);  // Below agreement.
  ASSERT_TRUE(asset_.MineEmpty(1).ok());
  auto evidence =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, sc_id);
  ASSERT_TRUE(evidence.ok());
  EXPECT_FALSE(Scw(scw_id)->VerifyContracts({*evidence}).ok());
}

TEST_F(EvidenceTest, VerifyContractsDemandsEvidencePerEdge) {
  auto scw_id = DeployWitnessContract(1);
  EXPECT_FALSE(Scw(scw_id)->VerifyContracts({}).ok());
}

// --------------------------------------- Algorithm 3: state transitions

TEST_F(EvidenceTest, AuthorizeRefundOnlyFromParticipants) {
  auto scw_id = DeployWitnessContract(1);
  const WitnessContract* scw = Scw(scw_id);

  std::vector<Payout> payouts;
  CallContext ctx;
  ctx.chain_id = 1;
  ctx.sender = kMallory.public_key();
  ctx.payouts = &payouts;
  auto outcome = scw->Call(kAuthorizeRefundFunction, {}, ctx);
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);

  ctx.sender = kBob.public_key();
  auto ok = scw->Call(kAuthorizeRefundFunction, {}, ctx);
  ASSERT_TRUE(ok.ok()) << ok.status();
  const auto* next = dynamic_cast<const WitnessContract*>(ok->next.get());
  EXPECT_EQ(next->state(), WitnessState::kRefundAuthorized);
}

TEST_F(EvidenceTest, WitnessStateTransitionsAreMutuallyExclusive) {
  auto scw_id = DeployWitnessContract(1);
  const WitnessContract* scw = Scw(scw_id);
  std::vector<Payout> payouts;
  CallContext ctx;
  ctx.chain_id = 1;
  ctx.sender = kAlice.public_key();
  ctx.payouts = &payouts;

  auto refunded = scw->Call(kAuthorizeRefundFunction, {}, ctx);
  ASSERT_TRUE(refunded.ok());
  // From RFauth, neither transition is allowed any more.
  EXPECT_FALSE(refunded->next->Call(kAuthorizeRefundFunction, {}, ctx).ok());
  EXPECT_FALSE(
      refunded->next->Call(kAuthorizeRedeemFunction, Bytes{}, ctx).ok());
}

// ------------------------------------ Algorithm 4: the depth-d discipline

TEST_F(EvidenceTest, PermissionlessRedeemFollowsDepthDiscipline) {
  const uint32_t d = 3;
  auto scw_id = DeployWitnessContract(d);
  auto sc_id = DeployAssetContract(scw_id, d);
  ASSERT_TRUE(asset_.MineEmpty(1).ok());

  // Authorize the redeem on the witness chain (valid evidence).
  auto deploy_ev =
      BuildTxEvidence(asset_.chain(), asset_.chain().genesis()->hash, sc_id);
  ASSERT_TRUE(deploy_ev.ok());
  auto call = alice_witness_.BuildCall(
      witness_.chain().StateAtHead(), scw_id, kAuthorizeRedeemFunction,
      EncodeEdgeEvidence({*deploy_ev}), 2, /*nonce=*/80);
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(witness_.MineBlock({*call}).ok());
  ASSERT_EQ(Scw(scw_id)->state(), WitnessState::kRedeemAuthorized);

  auto contract = asset_.chain().ContractAtHead(sc_id);
  ASSERT_TRUE(contract.ok());
  const auto* sc =
      dynamic_cast<const PermissionlessContract*>(contract->get());
  ASSERT_NE(sc, nullptr);

  std::vector<Payout> payouts;
  CallContext ctx;
  ctx.chain_id = 0;
  ctx.sender = kBob.public_key();
  ctx.payouts = &payouts;

  // Buried under only 1 block (< d): the redeem must be refused.
  ASSERT_TRUE(witness_.MineEmpty(1).ok());
  auto shallow = BuildReceiptEvidence(
      witness_.chain(), witness_.chain().genesis()->hash, call->Id());
  ASSERT_TRUE(shallow.ok());
  EXPECT_FALSE(sc->IsRedeemable(shallow->Encode(), ctx));

  // Buried under >= d blocks: the redeem goes through.
  ASSERT_TRUE(witness_.MineEmpty(d).ok());
  auto deep = BuildReceiptEvidence(
      witness_.chain(), witness_.chain().genesis()->hash, call->Id());
  ASSERT_TRUE(deep.ok());
  EXPECT_TRUE(sc->IsRedeemable(deep->Encode(), ctx));
  // The same (RDauth) receipt can never power a refund.
  EXPECT_FALSE(sc->IsRefundable(deep->Encode(), ctx));
}

TEST_F(EvidenceTest, PermissionlessRejectsForeignScwReceipt) {
  const uint32_t d = 1;
  auto scw_id = DeployWitnessContract(d);
  auto sc_id = DeployAssetContract(scw_id, d);
  ASSERT_TRUE(asset_.MineEmpty(1).ok());

  // A second, unrelated witness contract reaches RFauth; its receipt must
  // not refund OUR asset contract.
  auto other_scw = DeployWitnessContract(d);
  ASSERT_NE(other_scw, scw_id);
  auto refund_call = alice_witness_.BuildCall(witness_.chain().StateAtHead(),
                                              other_scw,
                                              kAuthorizeRefundFunction, {}, 2,
                                              /*nonce=*/90);
  ASSERT_TRUE(refund_call.ok());
  ASSERT_TRUE(witness_.MineTxToDepth(*refund_call, d).ok());

  auto contract = asset_.chain().ContractAtHead(sc_id);
  ASSERT_TRUE(contract.ok());
  const auto* sc =
      dynamic_cast<const PermissionlessContract*>(contract->get());
  std::vector<Payout> payouts;
  CallContext ctx;
  ctx.chain_id = 0;
  ctx.sender = kAlice.public_key();
  ctx.payouts = &payouts;
  auto foreign = BuildReceiptEvidence(
      witness_.chain(), witness_.chain().genesis()->hash, refund_call->Id());
  ASSERT_TRUE(foreign.ok());
  EXPECT_FALSE(sc->IsRefundable(foreign->Encode(), ctx));
}

}  // namespace
}  // namespace ac3::contracts
