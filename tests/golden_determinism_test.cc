// Golden determinism: the engine's domain outputs are pinned to exact
// pre-refactor values, so any perf work on the hot paths (visible-head
// tracking, copy-on-write ledger state, midstate PoW, mempool indexing)
// is provably behavior-preserving. Three fingerprints are pinned:
//
//  * a manually-mined chain (assembly + validation + ledger execution):
//    the head block hash after 60 blocks x 4 funded transfers;
//  * a Poisson mining simulation (visible-head selection under gossip
//    delays and forks): the head hash and fork count at height 200;
//  * a full protocol sweep (herlihy / ac3tw / ac3wn worlds run to their
//    verdicts): a SHA-256 over the serialized outcome + aggregate JSON,
//    identical on 1 thread and on 4.
//
// If an intentional semantic change ever invalidates these, the failure
// message prints the new value to re-pin — but for a perf PR, a mismatch
// here means the optimization changed behavior and must be fixed.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/chain/blockchain.h"
#include "src/chain/wallet.h"
#include "src/core/environment.h"
#include "src/crypto/hash256.h"
#include "src/runner/sweep_runner.h"

namespace ac3 {
namespace {

// ---- golden values (pinned from the pre-refactor engine) -------------------

constexpr char kChainBuildHeadHash[] =
    "059d9117eef71ecf146919c7d2be43f61d5917f6bd344c4c4b1ac2c230ae9339";
constexpr char kMiningSimHeadHash[] =
    "0ef05f39fb0a3c791adbe6c87a6baefdf83047b889c90cad26c0f404683790f7";
constexpr size_t kMiningSimBlocksStored = 213;
// Re-pinned for the reactive protocol substrate (PR 3): engines now step on
// block-arrival / connectivity / timer wakes instead of a fixed 20 ms poll,
// so every protocol action lands on a different (coarser) event schedule
// and outcomes carry topology/size/sim_events fields. The chain-layer
// goldens above are untouched — the chain, mining, and ledger hot paths are
// bit-for-bit identical; only the engines' action timing moved.
constexpr char kSweepFingerprint[] =
    "22e7025e2f7207747862268faadcf48f438278e53a21ee89dec7d59de93c2edc";
// Pinned from the closure-delivery engines immediately BEFORE the typed
// protocol-message migration, over all four engines (quorum included, on
// the 3-party ring where its majority quorum is meaningful). The migration
// must keep this fingerprint bit-for-bit: at zero loss/duplication the
// typed path draws the same latency stream and schedules the same events
// as the closure oracle.
constexpr char kFourEngineSweepFingerprint[] =
    "5947e6f83c396242e20b321350f7a7fb5332dda082a5c6dbf9f335e058fb3c9d";

// ---- scenario 1: manual chain build ---------------------------------------

std::string BuildChainHeadHash() {
  constexpr int kUsers = 4;
  constexpr uint64_t kBlocks = 60;
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  std::vector<crypto::KeyPair> keys;
  std::vector<chain::TxOutput> allocations;
  for (int i = 0; i < kUsers; ++i) {
    keys.push_back(crypto::KeyPair::FromSeed(7000 + static_cast<uint64_t>(i)));
    allocations.push_back(chain::TxOutput{100'000, keys.back().public_key()});
  }
  chain::Blockchain chain(params, allocations);
  std::vector<chain::Wallet> wallets;
  for (int i = 0; i < kUsers; ++i) wallets.emplace_back(keys[i], chain.id());
  const crypto::KeyPair miner = crypto::KeyPair::FromSeed(6999);

  Rng rng(2025);
  TimePoint now = 0;
  uint64_t nonce = 1;
  for (uint64_t b = 0; b < kBlocks; ++b) {
    now += 100;
    std::vector<chain::Transaction> txs;
    for (int j = 0; j < 4; ++j) {
      const int from = static_cast<int>((b + static_cast<uint64_t>(j)) %
                                        kUsers);
      auto tx = wallets[static_cast<size_t>(from)].BuildTransfer(
          chain.StateAtHead(),
          keys[static_cast<size_t>((from + 1) % kUsers)].public_key(),
          /*amount=*/10, /*fee=*/1, nonce++);
      if (tx.ok()) txs.push_back(*tx);
    }
    auto block = chain.AssembleBlock(chain.head()->hash, txs,
                                     miner.public_key(), now, &rng);
    EXPECT_TRUE(block.ok()) << block.status().ToString();
    if (!block.ok()) break;
    Status submitted = chain.SubmitBlock(*block, now);
    EXPECT_TRUE(submitted.ok()) << submitted.ToString();
  }
  EXPECT_EQ(chain.height(), kBlocks);
  return chain.head()->hash.ToHex();
}

TEST(GoldenDeterminismTest, ChainBuildHeadHashMatchesPinned) {
  EXPECT_EQ(BuildChainHeadHash(), kChainBuildHeadHash)
      << "chain-build domain output drifted; if intentional, re-pin.";
}

// ---- scenario 2: Poisson mining with gossip-delayed views ------------------

struct MiningSimResult {
  std::string head_hash;
  size_t blocks_stored = 0;
};

MiningSimResult RunMiningSim() {
  chain::ChainParams params = chain::TestChainParams();
  params.difficulty_bits = 4;
  params.block_interval = Milliseconds(200);
  core::Environment env(/*seed=*/7);
  chain::MiningConfig mining;
  mining.miner_count = 5;
  mining.max_propagation_delay = Milliseconds(40);
  const chain::ChainId id = env.AddChain(params, {}, mining);
  env.StartMining();
  const chain::Blockchain* chain = env.blockchain(id);
  Status ran = env.sim()->RunUntilCondition(
      [&]() { return chain->height() >= 200; }, Hours(2));
  EXPECT_TRUE(ran.ok()) << ran.ToString();
  env.StopMining();
  return MiningSimResult{chain->head()->hash.ToHex(), chain->block_count()};
}

TEST(GoldenDeterminismTest, MiningSimHeadHashMatchesPinned) {
  MiningSimResult result = RunMiningSim();
  EXPECT_EQ(result.head_hash, kMiningSimHeadHash)
      << "mining-sim head drifted (" << result.blocks_stored
      << " blocks stored); if intentional, re-pin.";
  EXPECT_EQ(result.blocks_stored, kMiningSimBlocksStored)
      << "fork count drifted; visible-head selection changed.";
}

// ---- scenario 3: protocol sweep, thread-invariant --------------------------

std::string GridFingerprint(const runner::SweepGridConfig& config,
                            int threads) {
  std::vector<runner::RunOutcome> outcomes =
      runner::SweepRunner(threads).RunGrid(config);
  runner::Json doc = runner::Json::Object();
  runner::Json arr = runner::Json::Array();
  for (const runner::RunOutcome& outcome : outcomes) {
    arr.Push(runner::OutcomeToJson(outcome));
  }
  doc.Set("outcomes", std::move(arr));
  doc.Set("aggregate", runner::AggregateToJson(
                           runner::Aggregate(outcomes, /*delta_ms=*/2000.0)));
  return crypto::Hash256::OfString(doc.Serialize()).ToHex();
}

std::string SweepFingerprint(int threads) {
  runner::SweepGridConfig config;
  config.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3tw,
                      runner::Protocol::kAc3wn};
  config.topologies = {runner::Topology::kRing};
  config.sizes = {2};
  config.failures = {runner::FailureMode::kNone};
  config.seeds = {11};
  config.deadline = Minutes(20);
  return GridFingerprint(config, threads);
}

std::string FourEngineFingerprint(int threads) {
  runner::SweepGridConfig config;
  config.protocols = {runner::Protocol::kHerlihy, runner::Protocol::kAc3tw,
                      runner::Protocol::kAc3wn, runner::Protocol::kQuorum};
  config.topologies = {runner::Topology::kRing};
  config.sizes = {3};
  config.failures = {runner::FailureMode::kNone};
  config.seeds = {11};
  config.deadline = Minutes(20);
  return GridFingerprint(config, threads);
}

TEST(GoldenDeterminismTest, SweepOutputsMatchPinnedGolden) {
  EXPECT_EQ(SweepFingerprint(/*threads=*/1), kSweepFingerprint)
      << "swap reports / aggregates drifted; if intentional, re-pin.";
}

TEST(GoldenDeterminismTest, SweepOutputsThreadInvariant) {
  EXPECT_EQ(SweepFingerprint(/*threads=*/4), kSweepFingerprint)
      << "thread count changed domain outputs — determinism bug.";
}

TEST(GoldenDeterminismTest, FourEngineSweepMatchesPinnedGolden) {
  EXPECT_EQ(FourEngineFingerprint(/*threads=*/1), kFourEngineSweepFingerprint)
      << "four-engine outputs drifted from the pre-migration pin; the "
         "typed message layer must be behavior-preserving at zero faults.";
}

TEST(GoldenDeterminismTest, FourEngineSweepThreadInvariant) {
  EXPECT_EQ(FourEngineFingerprint(/*threads=*/4), kFourEngineSweepFingerprint)
      << "thread count changed domain outputs — determinism bug.";
}

}  // namespace
}  // namespace ac3
