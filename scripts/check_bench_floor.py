#!/usr/bin/env python3
"""Engine hot-path perf floors for CI.

Compares a fresh bench_engine_hotpaths envelope (usually a --smoke run on
a CI runner) against the committed full-run envelope at the repo root:

  * chain growth — the slowest fresh segment must reach at least
    GROWTH_FACTOR times the slowest committed segment's blocks/sec.
  * PoW — the fresh evals/sec must reach at least POW_FACTOR times the
    committed rate.
  * block execution — the best fresh txs/sec across the serial run and
    every thread count must reach at least EXEC_FACTOR times the
    committed best, and the fresh run's parallel-vs-serial equivalence
    verdicts (block_execution and deep_catchup thread_invariant) must
    hold. The floor rides the *best* rate so it is meaningful both on
    many-core runners (where the parallel path wins) and single-core
    ones (where the serial path does).

The committed envelope is the floors' source of truth — landing a faster
full run automatically tightens them. GROWTH_FACTOR (default 0.5)
absorbs the machine gap between CI runners and the container the
committed run came from. POW_FACTOR defaults lower (0.1) because the
committed rate rides the widest SHA-256 dispatch level the bench
container has (SHA-NI / AVX2) while a CI runner may only have the scalar
path — the floor still catches a hot-loop regression, which costs far
more than one dispatch rung.

The many-chain world-state envelope has its own mode:

  check_bench_floor.py --multichain FRESH.json COMMITTED.json [OPS_FACTOR]

  * lookups — the slowest fresh cell's lookup ops/sec must reach at least
    OPS_FACTOR (default 0.1) times the slowest committed cell's.
  * memory — the fresh run's measured wall.peak_rss_bytes must stay under
    the ceiling the *committed* envelope declares
    (results.rss_ceiling_bytes), so a smoke run on a CI runner is held to
    the same absolute budget the full run promised.
  * the fresh sharded-vs-oracle equivalence verdict must be true.

The commit-study envelope has its own mode:

  check_bench_floor.py --commit-study FRESH.json COMMITTED.json [WORLDS_FACTOR]

  * correctness — the fresh run's separation_reproduced verdict (blocking
    baselines stall/strand under coordinator crash, the quorum engine
    reaches an atomic verdict everywhere) and its thread_invariant
    verdict must both be true.
  * throughput — the fresh grid's worlds/sec must reach at least
    WORLDS_FACTOR (default 0.05) times the committed full run's.

The message-overhead envelope has its own mode:

  check_bench_floor.py --message-overhead FRESH.json COMMITTED.json [WORLDS_FACTOR]

  * correctness — the fresh run's counts_match verdict (fault-free
    per-protocol message counts equal their closed forms), its
    loss_recovered / dup_recovered verdicts (every lossy cell reached an
    atomic verdict via resends), and its thread_invariant verdict must
    all be true.
  * throughput — the fresh grid's worlds/sec must reach at least
    WORLDS_FACTOR (default 0.05) times the committed full run's.

The open-world traffic envelope has its own mode:

  check_bench_floor.py --openworld FRESH.json COMMITTED.json [SWAPS_FACTOR]

  * throughput — the slowest fresh cell's wall swaps/sec must reach at
    least SWAPS_FACTOR (default 0.05; a smoke cell is far smaller than a
    full-run cell, and CI runners lack the bench container's SIMD rungs)
    times the slowest committed cell's.
  * memory — the fresh run's wall.peak_rss_bytes must stay under the
    ceiling the *committed* envelope declares (results.rss_ceiling_bytes).
  * the fresh hot-vs-serial-oracle equivalence verdict must be true.

Usage: check_bench_floor.py FRESH.json COMMITTED.json [GROWTH_FACTOR] [POW_FACTOR] [EXEC_FACTOR]
Exit status: 0 when every floor holds, 1 on regression or malformed input.
"""

import json
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


def min_growth_rate(doc, path):
    segments = doc["wall"]["chain_growth_segments"]
    if not segments:
        raise ValueError(f"{path}: no chain_growth_segments")
    return min(seg["blocks_per_sec"] for seg in segments)


def pow_rate(doc, path):
    rate = doc["wall"]["pow"]["evals_per_sec"]
    if rate <= 0:
        raise ValueError(f"{path}: non-positive pow evals_per_sec")
    return rate


def check(name, fresh, committed, factor):
    floor = factor * committed
    ok = fresh >= floor
    verdict = "OK" if ok else "REGRESSION"
    print(
        f"{name}: fresh {fresh:.0f} vs floor {floor:.0f} "
        f"({factor} x committed {committed:.0f}) -> {verdict}"
    )
    return ok


def best_exec_rate(doc, path):
    exec_wall = doc["wall"]["block_execution"]
    rates = [exec_wall["serial_txs_per_sec"]]
    rates.extend(cell["txs_per_sec"] for cell in exec_wall["per_thread"])
    best = max(rates)
    if best <= 0:
        raise ValueError(f"{path}: non-positive block-execution txs/sec")
    return best


def exec_invariants_ok(doc):
    results = doc["results"]
    exec_ok = bool(results["block_execution"]["thread_invariant"])
    catchup_ok = bool(results["deep_catchup"]["thread_invariant"])
    print(
        "block execution parallel-vs-serial: "
        f"{'identical' if exec_ok else 'DIVERGED'}; deep catchup: "
        f"{'identical' if catchup_ok else 'DIVERGED'}"
    )
    return exec_ok and catchup_ok


def min_lookup_rate(doc, path):
    cells = doc["wall"]["cells"]
    if not cells:
        raise ValueError(f"{path}: no wall cells")
    return min(cell["lookup_ops_per_sec"] for cell in cells)


def check_multichain(argv):
    if len(argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path, committed_path = argv[2], argv[3]
    ops_factor = float(argv[4]) if len(argv) == 5 else 0.1

    fresh = load(fresh_path)
    committed = load(committed_path)
    ops_ok = check(
        "multichain lookups (ops/s)",
        min_lookup_rate(fresh, fresh_path),
        min_lookup_rate(committed, committed_path),
        ops_factor,
    )

    ceiling = committed["results"]["rss_ceiling_bytes"]
    peak = fresh["wall"]["peak_rss_bytes"]
    rss_ok = peak <= ceiling
    print(
        f"multichain peak RSS: fresh {peak} vs declared ceiling {ceiling} "
        f"-> {'OK' if rss_ok else 'REGRESSION'}"
    )

    equiv_ok = bool(fresh["results"].get("equivalence_ok"))
    print(
        "multichain sharded-vs-oracle: "
        f"{'identical' if equiv_ok else 'DIVERGED'}"
    )
    return 0 if ops_ok and rss_ok and equiv_ok else 1


def check_commit_study(argv):
    if len(argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path, committed_path = argv[2], argv[3]
    worlds_factor = float(argv[4]) if len(argv) == 5 else 0.05

    fresh = load(fresh_path)
    committed = load(committed_path)

    separation_ok = bool(fresh["results"].get("separation_reproduced"))
    print(
        "commit-study separation (blocking baselines vs quorum engine): "
        f"{'reproduced' if separation_ok else 'NOT REPRODUCED'}"
    )
    invariant_ok = bool(fresh["results"].get("thread_invariant"))
    print(
        "commit-study 1-vs-N thread grids: "
        f"{'identical' if invariant_ok else 'DIVERGED'}"
    )
    worlds_ok = check(
        "commit-study grid throughput (worlds/s)",
        fresh["wall"]["worlds_per_sec"],
        committed["wall"]["worlds_per_sec"],
        worlds_factor,
    )
    return 0 if separation_ok and invariant_ok and worlds_ok else 1


def check_message_overhead(argv):
    if len(argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path, committed_path = argv[2], argv[3]
    worlds_factor = float(argv[4]) if len(argv) == 5 else 0.05

    fresh = load(fresh_path)
    committed = load(committed_path)

    counts_ok = bool(fresh["results"].get("counts_match"))
    print(
        "message-overhead fault-free counts vs closed forms: "
        f"{'match' if counts_ok else 'MISMATCH'}"
    )
    loss_ok = bool(fresh["results"].get("loss_recovered"))
    dup_ok = bool(fresh["results"].get("dup_recovered"))
    print(
        "message-overhead lossy-cell recovery: "
        f"drop {'recovered' if loss_ok else 'NOT RECOVERED'}, "
        f"duplicate {'recovered' if dup_ok else 'NOT RECOVERED'}"
    )
    invariant_ok = bool(fresh["results"].get("thread_invariant"))
    print(
        "message-overhead 1-vs-N thread grids: "
        f"{'identical' if invariant_ok else 'DIVERGED'}"
    )
    worlds_ok = check(
        "message-overhead grid throughput (worlds/s)",
        fresh["wall"]["worlds_per_sec"],
        committed["wall"]["worlds_per_sec"],
        worlds_factor,
    )
    correct = counts_ok and loss_ok and dup_ok and invariant_ok
    return 0 if correct and worlds_ok else 1


def min_swap_rate(doc, path):
    cells = doc["wall"]["cells"]
    if not cells:
        raise ValueError(f"{path}: no wall cells")
    return min(cell["wall_swaps_per_sec"] for cell in cells)


def check_openworld(argv):
    if len(argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path, committed_path = argv[2], argv[3]
    swaps_factor = float(argv[4]) if len(argv) == 5 else 0.05

    fresh = load(fresh_path)
    committed = load(committed_path)
    swaps_ok = check(
        "openworld throughput (swaps/s)",
        min_swap_rate(fresh, fresh_path),
        min_swap_rate(committed, committed_path),
        swaps_factor,
    )

    ceiling = committed["results"]["rss_ceiling_bytes"]
    peak = fresh["wall"]["peak_rss_bytes"]
    rss_ok = peak <= ceiling
    print(
        f"openworld peak RSS: fresh {peak} vs declared ceiling {ceiling} "
        f"-> {'OK' if rss_ok else 'REGRESSION'}"
    )

    equiv_ok = bool(fresh["results"].get("equivalence_ok"))
    print(
        "openworld hot-vs-oracle: "
        f"{'identical' if equiv_ok else 'DIVERGED'}"
    )
    return 0 if swaps_ok and rss_ok and equiv_ok else 1


def main(argv):
    if len(argv) >= 2 and argv[1] == "--multichain":
        return check_multichain(argv)
    if len(argv) >= 2 and argv[1] == "--openworld":
        return check_openworld(argv)
    if len(argv) >= 2 and argv[1] == "--commit-study":
        return check_commit_study(argv)
    if len(argv) >= 2 and argv[1] == "--message-overhead":
        return check_message_overhead(argv)
    if len(argv) not in (3, 4, 5, 6):
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path, committed_path = argv[1], argv[2]
    growth_factor = float(argv[3]) if len(argv) >= 4 else 0.5
    pow_factor = float(argv[4]) if len(argv) >= 5 else 0.1
    exec_factor = float(argv[5]) if len(argv) == 6 else 0.2

    fresh = load(fresh_path)
    committed = load(committed_path)
    growth_ok = check(
        "chain growth (blocks/s)",
        min_growth_rate(fresh, fresh_path),
        min_growth_rate(committed, committed_path),
        growth_factor,
    )
    pow_ok = check(
        "pow (evals/s)",
        pow_rate(fresh, fresh_path),
        pow_rate(committed, committed_path),
        pow_factor,
    )
    exec_ok = check(
        "block execution (txs/s, best over threads)",
        best_exec_rate(fresh, fresh_path),
        best_exec_rate(committed, committed_path),
        exec_factor,
    )
    invariants = exec_invariants_ok(fresh)
    return 0 if growth_ok and pow_ok and exec_ok and invariants else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
