#!/usr/bin/env python3
"""Chain-growth perf floor for CI.

Compares a fresh bench_engine_hotpaths envelope (usually a --smoke run on
a CI runner) against the committed full-run envelope at the repo root:
the slowest fresh chain-growth segment must reach at least FACTOR times
the slowest committed segment's blocks/sec. The committed envelope is
the floor's source of truth — landing a faster full run automatically
tightens the floor — and FACTOR (default 0.5) absorbs the machine gap
between CI runners and the container the committed run came from.

Usage: check_bench_floor.py FRESH.json COMMITTED.json [FACTOR]
Exit status: 0 when the floor holds, 1 on regression or malformed input.
"""

import json
import sys


def min_growth_rate(path):
    with open(path) as fh:
        doc = json.load(fh)
    segments = doc["wall"]["chain_growth_segments"]
    if not segments:
        raise ValueError(f"{path}: no chain_growth_segments")
    return min(seg["blocks_per_sec"] for seg in segments)


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path, committed_path = argv[1], argv[2]
    factor = float(argv[3]) if len(argv) == 4 else 0.5

    fresh = min_growth_rate(fresh_path)
    committed = min_growth_rate(committed_path)
    floor = factor * committed
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"chain growth: fresh min {fresh:.0f} blocks/s vs floor "
        f"{floor:.0f} ({factor} x committed min {committed:.0f}) -> {verdict}"
    )
    return 0 if fresh >= floor else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
