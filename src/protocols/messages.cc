#include "src/protocols/messages.h"

#include <algorithm>
#include <array>

namespace ac3::proto {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPrepare:
      return "prepare";
    case MessageKind::kAck:
      return "ack";
    case MessageKind::kPreCommit:
      return "pre_commit";
    case MessageKind::kDecision:
      return "decision";
    case MessageKind::kStateReq:
      return "state_req";
    case MessageKind::kStateReply:
      return "state_reply";
    case MessageKind::kRedeemNotify:
      return "redeem_notify";
    case MessageKind::kTxSubmit:
      return "tx_submit";
  }
  return "?";
}

namespace {

struct PayloadEncoder {
  ByteWriter* w;
  void operator()(const PreparePayload& p) const { w->PutBytes(p.ms_encoded); }
  void operator()(const AckPayload& p) const {
    w->PutU32(p.vertex);
    w->PutU8(p.tag);
    w->PutU8(p.accepted ? 1 : 0);
  }
  void operator()(const PreCommitPayload& p) const {
    w->PutU32(p.vertex);
    w->PutU8(p.tag);
  }
  void operator()(const DecisionPayload& p) const {
    w->PutU32(p.vertex);
    w->PutU8(p.tag);
    w->PutBytes(p.signature_encoded);
  }
  void operator()(const StateReqPayload& p) const {
    w->PutU32(p.vertex);
    w->PutU32(p.coordinator);
  }
  void operator()(const StateReplyPayload& p) const {
    w->PutU32(p.vertex);
    w->PutU64(p.recorded_epoch);
    w->PutU8(p.phase);
    w->PutU8(p.tag);
    w->PutU8(p.knows_decision ? 1 : 0);
  }
  void operator()(const RedeemNotifyPayload& p) const { w->PutU8(p.tag); }
  void operator()(const TxSubmitPayload& p) const {
    w->PutU32(p.chain_id);
    w->PutU32(p.tx_bytes);
  }
};

Result<bool> ReadBool(ByteReader* r) {
  AC3_ASSIGN_OR_RETURN(uint8_t raw, r->GetU8());
  if (raw > 1) return Status::InvalidArgument("non-canonical bool byte");
  return raw == 1;
}

Result<Message::Payload> DecodePayload(MessageKind kind, ByteReader* r) {
  switch (kind) {
    case MessageKind::kPrepare: {
      PreparePayload p;
      AC3_ASSIGN_OR_RETURN(p.ms_encoded, r->GetBytes());
      return Message::Payload{p};
    }
    case MessageKind::kAck: {
      AckPayload p;
      AC3_ASSIGN_OR_RETURN(p.vertex, r->GetU32());
      AC3_ASSIGN_OR_RETURN(p.tag, r->GetU8());
      AC3_ASSIGN_OR_RETURN(p.accepted, ReadBool(r));
      return Message::Payload{p};
    }
    case MessageKind::kPreCommit: {
      PreCommitPayload p;
      AC3_ASSIGN_OR_RETURN(p.vertex, r->GetU32());
      AC3_ASSIGN_OR_RETURN(p.tag, r->GetU8());
      return Message::Payload{p};
    }
    case MessageKind::kDecision: {
      DecisionPayload p;
      AC3_ASSIGN_OR_RETURN(p.vertex, r->GetU32());
      AC3_ASSIGN_OR_RETURN(p.tag, r->GetU8());
      AC3_ASSIGN_OR_RETURN(p.signature_encoded, r->GetBytes());
      return Message::Payload{p};
    }
    case MessageKind::kStateReq: {
      StateReqPayload p;
      AC3_ASSIGN_OR_RETURN(p.vertex, r->GetU32());
      AC3_ASSIGN_OR_RETURN(p.coordinator, r->GetU32());
      return Message::Payload{p};
    }
    case MessageKind::kStateReply: {
      StateReplyPayload p;
      AC3_ASSIGN_OR_RETURN(p.vertex, r->GetU32());
      AC3_ASSIGN_OR_RETURN(p.recorded_epoch, r->GetU64());
      AC3_ASSIGN_OR_RETURN(p.phase, r->GetU8());
      AC3_ASSIGN_OR_RETURN(p.tag, r->GetU8());
      AC3_ASSIGN_OR_RETURN(p.knows_decision, ReadBool(r));
      return Message::Payload{p};
    }
    case MessageKind::kRedeemNotify: {
      RedeemNotifyPayload p;
      AC3_ASSIGN_OR_RETURN(p.tag, r->GetU8());
      return Message::Payload{p};
    }
    case MessageKind::kTxSubmit: {
      TxSubmitPayload p;
      AC3_ASSIGN_OR_RETURN(p.chain_id, r->GetU32());
      AC3_ASSIGN_OR_RETURN(p.tx_bytes, r->GetU32());
      return Message::Payload{p};
    }
  }
  return Status::InvalidArgument("unknown message kind");
}

}  // namespace

Bytes Message::Encode() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(kind()));
  w.PutRaw(swap_id.bytes(), crypto::Hash256::kSize);
  w.PutU64(epoch);
  w.PutU64(seq);
  w.PutU32(sender);
  w.PutU32(receiver);
  std::visit(PayloadEncoder{&w}, payload);
  return w.Take();
}

Result<Message> Message::Decode(const Bytes& data) {
  ByteReader r(data);
  AC3_ASSIGN_OR_RETURN(uint8_t kind_raw, r.GetU8());
  if (kind_raw < static_cast<uint8_t>(MessageKind::kPrepare) ||
      kind_raw > static_cast<uint8_t>(MessageKind::kTxSubmit)) {
    return Status::InvalidArgument("unknown message kind");
  }
  Message msg;
  AC3_ASSIGN_OR_RETURN(Bytes id_raw, r.GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> id_bytes;
  std::copy(id_raw.begin(), id_raw.end(), id_bytes.begin());
  msg.swap_id = crypto::Hash256(id_bytes);
  AC3_ASSIGN_OR_RETURN(msg.epoch, r.GetU64());
  AC3_ASSIGN_OR_RETURN(msg.seq, r.GetU64());
  AC3_ASSIGN_OR_RETURN(msg.sender, r.GetU32());
  AC3_ASSIGN_OR_RETURN(msg.receiver, r.GetU32());
  AC3_ASSIGN_OR_RETURN(
      msg.payload,
      DecodePayload(static_cast<MessageKind>(kind_raw), &r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message payload");
  }
  return msg;
}

}  // namespace ac3::proto
