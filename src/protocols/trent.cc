#include "src/protocols/trent.h"

#include "src/contracts/centralized_contract.h"

namespace ac3::protocols {

TrustedWitness::TrustedWitness(std::string name, uint64_t key_seed,
                               core::Environment* env, uint32_t confirm_depth)
    : name_(std::move(name)),
      key_(crypto::KeyPair::FromSeed(key_seed)),
      env_(env),
      node_(env->AddUserNode(name_)),
      confirm_depth_(confirm_depth) {}

bool TrustedWitness::IsUp() const { return env_->network()->IsUp(node_); }

Status TrustedWitness::HandleRegister(const crypto::Multisignature& ms) {
  const crypto::Hash256 ms_id = ms.Id();
  if (store_.count(ms_id) > 0) {
    return Status::AlreadyExists("ms(D) already registered");
  }
  // The registered message must be a well-formed graph multisigned by all
  // of its participants — Trent refuses to witness anything else.
  auto graph = graph::Ac2tGraph::Decode(ms.message());
  if (!graph.ok()) {
    return Status::InvalidArgument("registration does not carry a graph: " +
                                   graph.status().ToString());
  }
  AC3_RETURN_IF_ERROR(graph->Validate());
  if (!ms.VerifyAll(graph->participants())) {
    return Status::VerificationFailed(
        "ms(D) is not signed by all participants of D");
  }
  Entry entry;
  entry.ms = ms;
  entry.graph = std::move(*graph);
  store_.emplace(ms_id, std::move(entry));
  return Status::OK();
}

Status TrustedWitness::VerifyAllContractsDeployed(const Entry& entry) const {
  const crypto::Hash256 ms_id = entry.ms.Id();
  for (size_t i = 0; i < entry.graph.edges().size(); ++i) {
    const graph::Ac2tEdge& e = entry.graph.edges()[i];
    const std::string tag = "edge " + std::to_string(i) + ": ";
    const chain::Blockchain* chain = env_->blockchain(e.chain_id);
    if (chain == nullptr) {
      return Status::NotFound(tag + "unknown blockchain");
    }
    const crypto::PublicKey& sender = entry.graph.participants()[e.from];
    const crypto::PublicKey& recipient = entry.graph.participants()[e.to];

    // Scan the canonical head state for the matching CentralizedSC.
    bool found = false;
    for (const auto& [id, contract] : chain->StateAtHead().contracts) {
      const auto* sc =
          dynamic_cast<const contracts::CentralizedContract*>(contract.get());
      if (sc == nullptr) continue;
      if (sc->ms_id() != ms_id || sc->trent() != pk()) continue;
      if (sc->sender() != sender || sc->recipient() != recipient) continue;
      if (sc->locked_value() != e.amount) continue;
      if (sc->state() != contracts::SwapState::kPublished) continue;
      // "Deployed" means publicly recognized: buried at confirm depth.
      auto location = chain->FindTx(id);
      if (!location.has_value()) continue;
      auto confirmations = chain->ConfirmationsOf(location->entry->hash);
      if (!confirmations.has_value() || *confirmations < confirm_depth_) {
        continue;
      }
      found = true;
      break;
    }
    if (!found) {
      return Status::FailedPrecondition(
          tag + "no confirmed CentralizedSC bound to (ms(D), PK_T)");
    }
  }
  return Status::OK();
}

TrentDecision TrustedWitness::Decide(Entry* entry, crypto::CommitmentTag tag) {
  TrentDecision decision;
  decision.tag = tag;
  decision.signature =
      key_.Sign(crypto::SignatureCommitmentMessage(entry->ms.Id(), tag));
  entry->value = decision;
  return decision;
}

Result<TrentDecision> TrustedWitness::HandleRedeemRequest(
    const crypto::Hash256& ms_id) {
  auto it = store_.find(ms_id);
  if (it == store_.end()) {
    return Status::NotFound("ms(D) is not registered");
  }
  Entry& entry = it->second;
  // "Trent responds to redemption and refund requests of ms(D) with the
  //  value corresponding to ms(D)" — once decided, the decision is final.
  if (entry.value.has_value()) return *entry.value;
  AC3_RETURN_IF_ERROR(VerifyAllContractsDeployed(entry));
  return Decide(&entry, crypto::CommitmentTag::kRedeem);
}

Result<TrentDecision> TrustedWitness::HandleRefundRequest(
    const crypto::Hash256& ms_id) {
  auto it = store_.find(ms_id);
  if (it == store_.end()) {
    return Status::NotFound("ms(D) is not registered");
  }
  Entry& entry = it->second;
  if (entry.value.has_value()) return *entry.value;
  return Decide(&entry, crypto::CommitmentTag::kRefund);
}

std::optional<TrentDecision> TrustedWitness::Lookup(
    const crypto::Hash256& ms_id) const {
  auto it = store_.find(ms_id);
  if (it == store_.end()) return std::nullopt;
  return it->second.value;
}

}  // namespace ac3::protocols
