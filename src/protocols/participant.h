// Participants: the end-users of the application layer (Section 2.1).
//
// A participant owns an identity (key pair), a wallet per chain, and a
// network endpoint. All of its chain interactions go through the simulated
// network, and every action first consults liveness — a crashed participant
// does nothing, which is precisely the failure mode the paper's motivating
// example (Bob's crash) hinges on.

#ifndef AC3_PROTOCOLS_PARTICIPANT_H_
#define AC3_PROTOCOLS_PARTICIPANT_H_

#include <map>
#include <memory>
#include <string>

#include "src/chain/wallet.h"
#include "src/core/environment.h"
#include "src/crypto/schnorr.h"

namespace ac3::protocols {

/// Behaviour knobs for failure / maliciousness experiments.
struct ParticipantBehavior {
  /// Votes "no" by never publishing its smart contracts.
  bool decline_publish = false;
};

class Participant {
 public:
  Participant(std::string name, uint64_t key_seed, core::Environment* env);

  const std::string& name() const { return name_; }
  const crypto::KeyPair& key() const { return key_; }
  const crypto::PublicKey& pk() const { return key_.public_key(); }
  sim::NodeId node() const { return node_; }
  ParticipantBehavior& behavior() { return behavior_; }

  /// Liveness as seen by the failure injector.
  bool IsUp() const;

  /// Wallet for `id`, created on first use.
  chain::Wallet* WalletFor(chain::ChainId id);

  /// Spendable balance at the canonical head of `id`.
  chain::Amount BalanceOn(chain::ChainId id) const;

  // ---- build-and-submit helpers (all fail Unavailable when crashed) -----

  Result<crypto::Hash256> SubmitTransfer(chain::ChainId id,
                                         const crypto::PublicKey& to,
                                         chain::Amount amount,
                                         chain::Amount fee);
  Result<crypto::Hash256> SubmitDeploy(chain::ChainId id,
                                       const std::string& kind,
                                       const Bytes& payload,
                                       chain::Amount locked_value,
                                       chain::Amount fee);
  Result<crypto::Hash256> SubmitCall(chain::ChainId id,
                                     const crypto::Hash256& contract_id,
                                     const std::string& function,
                                     const Bytes& args, chain::Amount fee);

 private:
  uint64_t NextNonce() { return nonce_counter_++; }

  std::string name_;
  crypto::KeyPair key_;
  core::Environment* env_;
  sim::NodeId node_;
  ParticipantBehavior behavior_;
  std::map<chain::ChainId, std::unique_ptr<chain::Wallet>> wallets_;
  uint64_t nonce_counter_ = 1;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_PARTICIPANT_H_
