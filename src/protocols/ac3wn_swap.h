// AC3WN: the paper's contribution — atomic cross-chain commitment
// coordinated by a permissionless witness network (Section 4.2).
//
// The four phases of Figure 9:
//   1. SCw deployment: a participant registers ms(D) plus the agreed shape
//      of every asset contract in a WitnessSC on the witness chain.
//   2. Parallel deployment: every sender publishes its PermissionlessSC
//      (Algorithm 4) concurrently — redemption/refund conditioned on SCw's
//      state at depth >= d.
//   3. SCw state change: once all contracts are publicly recognized, any
//      participant submits AuthorizeRedeem with Section 4.3 evidence of
//      every deployment; the witness miners verify and record RDauth. (Or
//      AuthorizeRefund when someone declines / changes her mind.)
//   4. Parallel settlement: once the state-change receipt is buried under d
//      witness blocks, every recipient redeems (or every sender refunds)
//      with receipt evidence.
//
// The engine is a thin state machine over the reactive SwapEngineBase
// substrate: it advances on canonical-head movements of the asset and
// witness chains, connectivity changes, and retry/patience timers, so
// crash failures, network delays, and witness-chain forks shape what
// happens; the depth-d discipline (participants ignore unburied SCw
// states) is what Lemma 5.3's atomicity argument rests on.
//
// Commitment (the second protocol obligation): after a decision, the engine
// never gives up on a published contract — a participant that crashes and
// later recovers still settles, because the commitment-scheme secret is the
// witness chain itself, not a timelock.

#ifndef AC3_PROTOCOLS_AC3WN_SWAP_H_
#define AC3_PROTOCOLS_AC3WN_SWAP_H_

#include <optional>
#include <vector>

#include "src/contracts/permissionless_contract.h"
#include "src/contracts/witness_contract.h"
#include "src/core/environment.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/engine_base.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"

namespace ac3::protocols {

struct Ac3wnConfig {
  /// Δ of Section 6.1.
  Duration delta = Seconds(3);
  /// Confirmations for a deployment to count as publicly recognized.
  uint32_t confirm_depth = 1;
  /// d: burial depth required of the SCw state change before anyone acts on
  /// it (Section 4.2 / Section 6.3's d > Va*dh/Ch rule).
  uint32_t witness_depth_d = 2;
  Duration resubmit_interval = Seconds(2);
  /// Request AuthorizeRefund when contracts are still missing this long
  /// after SCw confirmed.
  Duration publish_patience = Seconds(30);
  /// A participant "changes her mind": request AuthorizeRefund immediately
  /// after SCw is published (abort path, protocol step 6).
  bool request_abort = false;
  /// Phase-precise crash schedule for the coordinating participant:
  /// kAtPrepare crashes the registrar the moment SCw confirms; kAtCommit
  /// crashes the requester as it is about to submit the SCw state change.
  /// AC3WN survives both — any live participant takes over the role (the
  /// `*_builder_` rebuild discipline) — which is exactly the contrast the
  /// quorum-commit study draws against the blocking baselines.
  CoordinatorCrashPlan coordinator_crash;
};

class Ac3wnSwapEngine : public SwapEngineBase {
 public:
  /// `witness_chain` selects which permissionless network coordinates this
  /// AC2T (Section 5.2: different AC2Ts may use different witnesses).
  Ac3wnSwapEngine(core::Environment* env, graph::Ac2tGraph graph,
                  std::vector<Participant*> participants,
                  chain::ChainId witness_chain, Ac3wnConfig config);

  chain::ChainId witness_chain() const { return witness_chain_; }
  const crypto::Hash256& scw_id() const { return scw_id_; }

  /// The SCw state this engine has *acted on* (buried >= d), if any.
  std::optional<contracts::WitnessState> decided_state() const {
    return decided_state_;
  }

 protected:
  Status OnStart() override;
  void Step() override;
  bool IsComplete() const override;
  size_t EdgeCount() const override { return edges_.size(); }
  EdgeState* Edge(size_t i) override { return &edges_[i]; }
  void FillVerdict(SwapReport* report) const override;
  chain::Amount ExtraFees() const override;

 private:
  struct EdgeRt : EdgeState {
    contracts::EdgeSpec spec;
    contracts::PermissionlessInit init;
  };

  /// Phase 1: build + deploy SCw from the first live participant.
  void TryDeployWitnessContract();
  void TrackWitnessDeployment();
  /// Phase 2: parallel PermissionlessSC deployments.
  void TryPublish(EdgeRt* rt);
  /// Phase 3: submit the SCw state-change request.
  void TryAuthorizeRedeem();
  void TryAuthorizeRefund();
  /// Detects the canonical, buried SCw state change (sets decided_state_).
  void TrackDecision();
  /// Phase 4: settle one edge with receipt evidence of the SCw change.
  void TrySettle(EdgeRt* rt);

  chain::ChainId witness_chain_;
  Ac3wnConfig config_;

  crypto::Multisignature ms_;

  // Phase-1 state.
  chain::Transaction scw_deploy_tx_;
  bool scw_deploy_built_ = false;
  TimePoint scw_last_submit_ = -1;
  crypto::Hash256 scw_id_;
  bool scw_confirmed_ = false;
  /// When SCw confirmed — the publish-patience clock starts here.
  TimePoint scw_confirmed_at_ = 0;

  // Phase-3 state. The state-change calls are built once (per builder) and
  // re-gossiped; `*_builder_` tracks who funded the cached transaction so a
  // crashed requester's call can be rebuilt by a live participant.
  chain::Transaction authorize_tx_;
  bool authorize_built_ = false;
  Participant* authorize_builder_ = nullptr;
  TimePoint authorize_last_submit_ = -1;
  bool abort_authorize_built_ = false;
  Participant* abort_builder_ = nullptr;
  chain::Transaction abort_authorize_tx_;
  TimePoint abort_last_submit_ = -1;

  /// The decision transaction once observed canonical + buried >= d.
  std::optional<contracts::WitnessState> decided_state_;
  crypto::Hash256 decision_tx_id_;

  std::vector<EdgeRt> edges_;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_AC3WN_SWAP_H_
