// QuorumCommit: a nonblocking, quorum-acknowledged commitment engine — the
// 3PC-style answer to the blocking failure the ROADMAP's separation study
// targets (Wang et al., arXiv:2001.01174; the mmts-longrange exemplar walks
// why plain 2PC blocks when the coordinator dies between prepare and
// commit).
//
// Protocol shape (epoch e's coordinator is vertex e mod n; quorum is a
// strict majority, n/2 + 1, coordinator included):
//
//   1. Prepare: every sender deploys its asset contract (a CentralizedSC
//      whose decision key is the swap's shared quorum key — see below), in
//      parallel. "Prepared" is publicly observable: the deploy is canonical
//      at confirm_depth.
//   2. Pre-commit: once every contract is publicly recognized (or patience
//      expires / a participant requests abort), the coordinator broadcasts
//      PRE-COMMIT(e, verdict). Members record (e, verdict) and acknowledge.
//   3. Commit: after a QUORUM of acknowledgements the coordinator signs the
//      decision secret with the quorum key and broadcasts it; any live
//      member that holds the secret can settle ANY edge (redeem pays the
//      recipient, refund the sender, whoever submits the call).
//
//   Recovery: when the epoch's coordinator is observed down for
//   takeover_timeout, the lowest live vertex advances to the next epoch it
//   coordinates and runs a state-collection round (STATE-REQ / STATE-REPLY)
//   over a quorum. Termination rule: a known decision is re-broadcast; else
//   the highest-epoch pre-committed verdict is resumed (quorum intersection
//   makes this consistent with any decision an old coordinator might have
//   signed); else the verdict is chosen fresh from chain observation. Epoch
//   fencing discards stale-epoch messages, so a late-recovering old
//   coordinator cannot drive a conflicting round.
//
// Why this is nonblocking where Herlihy/AC3TW are not: the pre-commit round
// replicates the tentative verdict across a majority BEFORE anyone can act
// on it, so any surviving majority can finish the protocol. With n = 2 a
// lone survivor is below quorum and correctly blocks — majority quorums
// need n >= 3 to tolerate a crash (tests pin this boundary).
//
// The shared quorum key stands in for a (t, n)-threshold signature: a real
// deployment would run DKG during swap setup so no single node could sign
// unilaterally. The simulation models the quorum rule itself (no decision
// secret exists before a majority acknowledged the verdict) in the engine's
// state machine, which is what the blocking-vs-nonblocking study measures.

#ifndef AC3_PROTOCOLS_QUORUM_COMMIT_H_
#define AC3_PROTOCOLS_QUORUM_COMMIT_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/core/environment.h"
#include "src/crypto/commitment.h"
#include "src/crypto/multisig.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/engine_base.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"

namespace ac3::protocols {

/// Knobs of the quorum-commit engine.
struct QuorumConfig {
  /// Δ of Section 6.1 — publish/recognize granularity.
  Duration delta = Seconds(3);
  /// Confirmations before a contract counts as publicly recognized.
  uint32_t confirm_depth = 1;
  /// Re-gossip an unconfirmed transaction / retransmit an unanswered
  /// protocol message after this long.
  Duration resubmit_interval = Seconds(2);
  /// Choose the abort verdict when contracts are still missing this long
  /// after the swap started.
  Duration publish_patience = Seconds(30);
  /// Survivors take over (advance the epoch) after observing the current
  /// coordinator down for this long.
  Duration takeover_timeout = Seconds(4);
  /// When true, the coordinator drives the abort verdict immediately (a
  /// participant "changes her mind").
  bool request_abort = false;
  /// Phase-precise crash schedule for the current coordinator.
  CoordinatorCrashPlan coordinator_crash;
};

/// The nonblocking quorum-commit (3PC-style) engine — see the file comment
/// for the protocol shape and the recovery/termination rule.
class QuorumCommitEngine : public SwapEngineBase {
 public:
  /// `participants[i]` plays graph vertex i.
  QuorumCommitEngine(core::Environment* env, graph::Ac2tGraph graph,
                     std::vector<Participant*> participants,
                     QuorumConfig config);

  /// ms(D): the multisigned swap-graph id the contracts commit to.
  const crypto::Hash256& ms_id() const { return ms_id_; }
  /// The current epoch (0 until a takeover happens).
  uint64_t epoch() const { return epoch_; }
  /// The acknowledgement quorum: strict majority, n/2 + 1.
  int quorum() const;
  /// The signed decision's verdict once one exists.
  std::optional<crypto::CommitmentTag> decision_tag() const;

 protected:
  Status OnStart() override;
  void Step() override;
  bool IsComplete() const override;
  size_t EdgeCount() const override { return edges_.size(); }
  EdgeState* Edge(size_t i) override { return &edges_[i]; }
  void FillVerdict(SwapReport* report) const override;
  /// The five typed exchanges of the commit round: kStateReq answered by
  /// kStateReply (recovery state collection), kPreCommit answered by kAck
  /// (the acknowledgement round), and kDecision (secret dissemination).
  void OnMessage(const proto::Message& msg) override;
  /// Epoch fencing at the envelope layer: deliveries stamped with an epoch
  /// below the current one belong to a superseded round — a late-recovering
  /// old coordinator cannot drive a conflicting round.
  uint64_t MessageEpochFloor() const override { return epoch_; }

 private:
  /// What a member has recorded about the protocol round, replicated via
  /// PRE-COMMIT / DECIDE messages (engine-mediated per-vertex state; a
  /// crashed member's state survives its crash, exactly like a write-ahead
  /// log would).
  enum class MemberPhase : uint8_t {
    kWaiting,       // No pre-commit received yet.
    kPreCommitted,  // Recorded (epoch, verdict); acknowledged.
    kDecided,       // Holds the signed decision secret.
  };
  struct MemberState {
    uint64_t epoch = 0;            // Highest epoch this member recorded.
    MemberPhase phase = MemberPhase::kWaiting;
    crypto::CommitmentTag tag = crypto::CommitmentTag::kRedeem;
    bool knows_decision = false;   // Holds the signed decision secret.
  };
  /// A member's STATE-REPLY, as received by the recovering coordinator.
  struct ReplyInfo {
    uint64_t epoch = 0;
    MemberPhase phase = MemberPhase::kWaiting;
    crypto::CommitmentTag tag = crypto::CommitmentTag::kRedeem;
    bool knows_decision = false;
  };
  struct Decision {
    crypto::CommitmentTag tag = crypto::CommitmentTag::kRedeem;
    crypto::Signature secret;  // quorum_key.Sign((ms(D), tag)).
  };
  struct EdgeRt : EdgeState {
    /// Vertex whose wallet funded settle_tx (-1 = not built). Rebuilt when
    /// the builder crashed and another knower takes over.
    int settle_builder = -1;
  };

  uint32_t VertexCount() const;
  uint32_t CoordinatorOf(uint64_t epoch) const;
  /// Lowest live vertex that holds the signed decision, if any.
  Participant* FirstLiveKnower(uint32_t* vertex_out) const;
  bool DecisionKnownToLiveMember() const;

  void TryPublish(EdgeRt* rt);
  /// Runs the coordinator side of the current epoch (recovery state
  /// collection, verdict choice, pre-commit round, decision broadcast) on
  /// behalf of CoordinatorOf(epoch_) when that vertex is up.
  void DriveCoordinator(TimePoint now);
  /// Advances the epoch to the lowest live successor after the takeover
  /// timeout expires with the coordinator down.
  void MaybeTakeOver(TimePoint now);
  void StartEpoch(uint64_t epoch, TimePoint now);
  /// Applies a PRE-COMMIT at member `v`; returns true when `v` supports
  /// (acknowledges) the verdict under epoch fencing.
  bool ApplyPreCommit(uint32_t v, uint64_t epoch, crypto::CommitmentTag tag);
  void SignDecision(uint32_t coordinator, TimePoint now);

  /// Paced broadcast primitives (one message stream is active at a time,
  /// so they share the retransmit pacer).
  bool PaceBroadcast(TimePoint now);
  void BroadcastStateReq(uint32_t coordinator, TimePoint now);
  void BroadcastPreCommit(uint32_t coordinator, TimePoint now);
  void BroadcastDecision(uint32_t sender, TimePoint now);

  void TrySettle(EdgeRt* rt, TimePoint now);

  QuorumConfig config_;
  crypto::Multisignature ms_;
  crypto::Hash256 ms_id_;
  /// Shared decision key, derived from ms(D) — see the file comment.
  std::optional<crypto::KeyPair> quorum_key_;

  std::vector<EdgeRt> edges_;
  std::vector<MemberState> members_;

  uint64_t epoch_ = 0;
  /// Recovery-epoch round state (meaningful on the current coordinator).
  std::map<uint32_t, ReplyInfo> state_replies_;
  bool recovery_resolved_ = false;  // Termination rule applied for epoch_.
  /// Verdict the recovery termination rule forces (resumed pre-commit).
  std::optional<crypto::CommitmentTag> forced_tag_;
  /// Pre-commit round state for epoch_.
  bool precommit_active_ = false;
  crypto::CommitmentTag round_tag_ = crypto::CommitmentTag::kRedeem;
  std::set<uint32_t> acks_;
  bool precommit_marked_ = false;

  std::optional<Decision> decision_;
  bool prepare_marked_ = false;
  TimePoint last_broadcast_ = -1;
  TimePoint coordinator_down_since_ = -1;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_QUORUM_COMMIT_H_
