#include "src/protocols/ac3tw_swap.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/centralized_contract.h"
#include "src/graph/multisig_graph.h"

namespace ac3::protocols {

Ac3twSwapEngine::Ac3twSwapEngine(core::Environment* env,
                                 graph::Ac2tGraph graph,
                                 std::vector<Participant*> participants,
                                 TrustedWitness* trent, Ac3twConfig config)
    : SwapEngineBase(
          env, std::move(graph), std::move(participants),
          WatchConfig{config.confirm_depth, config.resubmit_interval},
          "AC3TW"),
      trent_(trent),
      config_(config) {
  SetCoordinatorCrashPlan(config.coordinator_crash);
}

Status Ac3twSwapEngine::OnStart() {
  // Step 1: all participants multisign (D, t). Even a participant that will
  // later decline to publish signs here — agreeing on D is how the swap is
  // proposed; declining to fund it is the abort trigger.
  std::vector<crypto::KeyPair> keys;
  keys.reserve(participants().size());
  for (Participant* p : participants()) keys.push_back(p->key());
  AC3_ASSIGN_OR_RETURN(ms_, graph::SignGraph(graph(), keys));
  ms_id_ = ms_.Id();

  for (const graph::Ac2tEdge& e : graph().edges()) {
    EdgeRt rt;
    rt.edge = e;
    edges_.push_back(std::move(rt));
  }
  return Status::OK();
}

void Ac3twSwapEngine::TryRegister() {
  Participant* registrar = FirstLiveParticipant();
  if (registrar == nullptr) return;
  if (!PaceResend(&last_register_attempt_)) return;

  // Step 2: the registration envelope travels to Trent; his acknowledgement
  // travels back. Either leg can be lost to a crash (or, under the message
  // fault model, dropped outright) — PaceResend re-sends until the ack
  // lands.
  proto::Message msg;
  msg.swap_id = ms_id_;
  msg.sender = registrar->node();
  msg.receiver = trent_->node();
  msg.payload = proto::PreparePayload{ms_.Encode()};
  SendProtocolMessage(std::move(msg));
}

void Ac3twSwapEngine::TryPublish(EdgeRt* rt) {
  Participant* sender = participant(rt->edge.from);
  if (sender->behavior().decline_publish) return;
  if (!sender->IsUp()) return;
  const TimePoint now = env()->sim()->Now();

  if (!rt->deploy_built) {
    const chain::Blockchain* chain = env()->blockchain(rt->edge.chain_id);
    Bytes payload = contracts::CentralizedContract::MakeInitPayload(
        participant(rt->edge.to)->pk(), ms_id_, trent_->pk());
    auto tx = sender->WalletFor(rt->edge.chain_id)
                  ->BuildDeploy(chain->StateAtHead(), contracts::kCentralizedKind,
                                payload, rt->edge.amount,
                                chain->params().deploy_fee,
                                static_cast<uint64_t>(now) ^ rt->edge.to);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << sender->name()
                     << " cannot fund CentralizedSC: " << tx.status().ToString();
      return;
    }
    rt->deploy_tx = *tx;
    rt->contract_id = tx->Id();
    rt->deploy_built = true;
    rt->publish_submitted_at = now;
    rt->outcome = EdgeOutcome::kPublished;
  }
  GossipDeploy(rt, sender);
}

void Ac3twSwapEngine::RequestDecision(crypto::CommitmentTag tag) {
  Participant* requester = FirstLiveParticipant();
  if (requester == nullptr) return;
  if (!PaceResend(&last_request_attempt_)) return;

  // kAtCommit anchor: Trent dies just as the first decision request is
  // sent — the request (and every retry) is dropped at delivery, so
  // neither secret is ever signed. The retry pacing stays armed so a late
  // recovery can still answer.
  MaybeCrashCoordinator(CoordinatorCrashPhase::kAtCommit, trent_->node());

  // Step 5 / 6: the request travels to Trent, who consults (and possibly
  // updates) his key/value store, and the value travels back as a
  // kDecision envelope.
  proto::Message msg;
  msg.swap_id = ms_id_;
  msg.sender = requester->node();
  msg.receiver = trent_->node();
  msg.payload = proto::RedeemNotifyPayload{static_cast<uint8_t>(tag)};
  SendProtocolMessage(std::move(msg));
}

void Ac3twSwapEngine::OnMessage(const proto::Message& msg) {
  switch (msg.kind()) {
    case proto::MessageKind::kPrepare: {
      // Trent's side of step 2. The ack is sent unconditionally — gossip
      // is at-least-once and a duplicate registration still deserves its
      // (possibly lost) acknowledgement.
      Status status = trent_->HandleRegister(ms_);
      const bool accepted =
          status.ok() || status.code() == StatusCode::kAlreadyExists;
      proto::Message ack;
      ack.swap_id = ms_id_;
      ack.sender = trent_->node();
      ack.receiver = msg.sender;
      ack.payload = proto::AckPayload{0, 0, accepted};
      SendProtocolMessage(std::move(ack));
      return;
    }
    case proto::MessageKind::kAck: {
      const auto& ack = std::get<proto::AckPayload>(msg.payload);
      if (ack.accepted && !registered_) {
        registered_ = true;
        registered_at_ = env()->sim()->Now();
        mutable_report()->MarkPhase("registered_at_trent", registered_at_);
        // The patience clock starts now; guarantee a wake when it runs
        // out.
        RequestWakeAt(registered_at_ + config_.publish_patience);
        ScheduleStep();
        // kAtPrepare anchor: Trent dies the moment the swap is registered
        // — participants go on to lock funds into contracts whose only
        // decision point is gone.
        MaybeCrashCoordinator(CoordinatorCrashPhase::kAtPrepare,
                              trent_->node());
      }
      return;
    }
    case proto::MessageKind::kRedeemNotify: {
      // Trent's side of steps 5/6: consult (and possibly update) the
      // key/value store; reply only when a value exists.
      const auto& req = std::get<proto::RedeemNotifyPayload>(msg.payload);
      const auto tag = static_cast<crypto::CommitmentTag>(req.tag);
      Result<TrentDecision> result =
          tag == crypto::CommitmentTag::kRedeem
              ? trent_->HandleRedeemRequest(ms_id_)
              : trent_->HandleRefundRequest(ms_id_);
      if (!result.ok()) {
        AC3_LOG(kDebug) << "Trent declines: " << result.status().ToString();
        return;
      }
      proto::Message reply;
      reply.swap_id = ms_id_;
      reply.sender = trent_->node();
      reply.receiver = msg.sender;
      reply.payload = proto::DecisionPayload{
          0, static_cast<uint8_t>(result->tag), result->signature.Encode()};
      SendProtocolMessage(std::move(reply));
      return;
    }
    case proto::MessageKind::kDecision: {
      if (decision_.has_value()) return;
      const auto& d = std::get<proto::DecisionPayload>(msg.payload);
      ByteReader reader(d.signature_encoded);
      Result<crypto::Signature> sig = crypto::Signature::Decode(&reader);
      if (!sig.ok()) return;
      decision_ =
          TrentDecision{static_cast<crypto::CommitmentTag>(d.tag), *sig};
      mutable_report()->decision_time = env()->sim()->Now();
      mutable_report()->MarkPhase(
          decision_->tag == crypto::CommitmentTag::kRedeem
              ? "trent_signed_redeem"
              : "trent_signed_refund",
          env()->sim()->Now());
      ScheduleStep();
      return;
    }
    default:
      return;
  }
}

void Ac3twSwapEngine::TrySettle(EdgeRt* rt) {
  if (!decision_.has_value()) return;
  const TimePoint now = env()->sim()->Now();
  // A settle call may have been lost (crash mid-flight); re-gossip the
  // cached transaction after the resubmit interval.
  if (rt->settle_submitted && rt->last_settle_submit >= 0 &&
      now - rt->last_settle_submit < config_.resubmit_interval) {
    return;
  }
  const chain::Blockchain* chain = env()->blockchain(rt->edge.chain_id);
  const Bytes secret = decision_->signature.Encode();
  const bool redeem = decision_->tag == crypto::CommitmentTag::kRedeem;
  Participant* actor =
      redeem ? participant(rt->edge.to) : participant(rt->edge.from);
  if (!actor->IsUp()) return;

  // Build the call once and re-gossip the SAME transaction on retries;
  // rebuilding would re-reserve the actor's wallet funds.
  if (!rt->settle_built) {
    auto tx = actor->WalletFor(rt->edge.chain_id)
                  ->BuildCall(chain->StateAtHead(), rt->contract_id,
                              redeem ? contracts::kRedeemFunction
                                     : contracts::kRefundFunction,
                              secret, chain->params().call_fee,
                              static_cast<uint64_t>(now) ^ rt->edge.from);
    if (!tx.ok()) {
      AC3_LOG(kDebug) << "cannot build settle call: " << tx.status().ToString();
      return;
    }
    rt->settle_tx = *tx;
    rt->settle_built = true;
  }
  env()->SubmitTransaction(actor->node(), rt->edge.chain_id, rt->settle_tx);
  rt->settle_submitted = true;
  rt->last_settle_submit = now;
  RequestResubmitWake();
}

bool Ac3twSwapEngine::IsComplete() const {
  if (!decision_.has_value()) return false;
  for (const EdgeRt& rt : edges_) {
    if (!rt.deploy_built) continue;  // Never published: nothing to settle.
    // On the refund path, contracts whose deploy never confirmed on-chain
    // may still confirm later; wait for them too (they hold locked assets
    // the moment they land). Contracts that never reached a chain at all
    // cannot settle; give up on them once nothing is pending.
    const chain::Blockchain* chain = env()->blockchain(rt.edge.chain_id);
    const bool on_chain = chain->FindTx(rt.contract_id).has_value();
    if (!on_chain && decision_->tag == crypto::CommitmentTag::kRefund) {
      continue;
    }
    if (!rt.settled) return false;
  }
  return true;
}

void Ac3twSwapEngine::Step() {
  const TimePoint now = env()->sim()->Now();

  if (!registered_) {
    TryRegister();
    return;
  }
  for (EdgeRt& rt : edges_) {
    if (rt.settled) continue;
    if (!rt.publish_confirmed) {
      TryPublish(&rt);
      if (rt.deploy_built) TrackPublishConfirmation(&rt);
    }
  }
  if (!decision_.has_value()) {
    if (config_.request_abort) {
      RequestDecision(crypto::CommitmentTag::kRefund);
    } else if (AllPublished()) {
      RequestDecision(crypto::CommitmentTag::kRedeem);
    } else if (now - registered_at_ >= config_.publish_patience) {
      // Step 6: a participant declines (or stays crashed) — fall back to
      // the refund secret so everyone else recovers their assets.
      RequestDecision(crypto::CommitmentTag::kRefund);
    }
  } else {
    for (EdgeRt& rt : edges_) {
      if (rt.settled) continue;
      if (rt.publish_confirmed ||
          env()->blockchain(rt.edge.chain_id)->FindTx(rt.contract_id)) {
        TrySettle(&rt);
        TrackSettlement(&rt);
      }
    }
  }
}

void Ac3twSwapEngine::FillVerdict(SwapReport* report) const {
  report->committed =
      decision_.has_value() && decision_->tag == crypto::CommitmentTag::kRedeem;
  report->aborted =
      decision_.has_value() && decision_->tag == crypto::CommitmentTag::kRefund;
}

}  // namespace ac3::protocols
