#include "src/protocols/ac3tw_swap.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/centralized_contract.h"
#include "src/graph/multisig_graph.h"

namespace ac3::protocols {

Ac3twSwapEngine::Ac3twSwapEngine(core::Environment* env,
                                 graph::Ac2tGraph graph,
                                 std::vector<Participant*> participants,
                                 TrustedWitness* trent, Ac3twConfig config)
    : env_(env),
      graph_(std::move(graph)),
      participants_(std::move(participants)),
      trent_(trent),
      config_(config) {
  report_.protocol = "AC3TW";
}

Status Ac3twSwapEngine::Start() {
  AC3_RETURN_IF_ERROR(graph_.Validate());
  if (participants_.size() != graph_.participant_count()) {
    return Status::InvalidArgument("participant list does not match graph");
  }

  // Step 1: all participants multisign (D, t). Even a participant that will
  // later decline to publish signs here — agreeing on D is how the swap is
  // proposed; declining to fund it is the abort trigger.
  std::vector<crypto::KeyPair> keys;
  keys.reserve(participants_.size());
  for (Participant* p : participants_) keys.push_back(p->key());
  AC3_ASSIGN_OR_RETURN(ms_, graph::SignGraph(graph_, keys));
  ms_id_ = ms_.Id();

  start_time_ = env_->sim()->Now();
  report_.start_time = start_time_;

  for (const graph::Ac2tEdge& e : graph_.edges()) {
    EdgeRt rt;
    rt.edge = e;
    edges_.push_back(std::move(rt));
  }

  started_ = true;
  env_->sim()->After(config_.poll_interval, [this]() { Poll(); });
  return Status::OK();
}

Participant* Ac3twSwapEngine::FirstLiveParticipant() const {
  for (Participant* p : participants_) {
    if (p->IsUp()) return p;
  }
  return nullptr;
}

void Ac3twSwapEngine::TryRegister() {
  const TimePoint now = env_->sim()->Now();
  if (last_register_attempt_ >= 0 &&
      now - last_register_attempt_ < config_.resubmit_interval) {
    return;
  }
  Participant* registrar = FirstLiveParticipant();
  if (registrar == nullptr) return;
  last_register_attempt_ = now;

  // Step 2: the registration message travels to Trent; his acknowledgement
  // travels back. Either leg can be lost to a crash.
  env_->network()->Send(registrar->node(), trent_->node(), [this, registrar]() {
    Status status = trent_->HandleRegister(ms_);
    const bool accepted =
        status.ok() || status.code() == StatusCode::kAlreadyExists;
    env_->network()->Send(trent_->node(), registrar->node(),
                          [this, accepted]() {
                            if (accepted && !registered_) {
                              registered_ = true;
                              registered_at_ = env_->sim()->Now();
                              report_.MarkPhase("registered_at_trent",
                                                registered_at_);
                            }
                          });
  });
}

void Ac3twSwapEngine::TryPublish(EdgeRt* rt) {
  Participant* sender = participants_[rt->edge.from];
  if (sender->behavior().decline_publish) return;
  if (!sender->IsUp()) return;
  const TimePoint now = env_->sim()->Now();

  if (!rt->deploy_built) {
    const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
    Bytes payload = contracts::CentralizedContract::MakeInitPayload(
        participants_[rt->edge.to]->pk(), ms_id_, trent_->pk());
    auto tx = sender->WalletFor(rt->edge.chain_id)
                  ->BuildDeploy(chain->StateAtHead(), contracts::kCentralizedKind,
                                payload, rt->edge.amount,
                                chain->params().deploy_fee,
                                static_cast<uint64_t>(now) ^ rt->edge.to);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << sender->name()
                     << " cannot fund CentralizedSC: " << tx.status().ToString();
      return;
    }
    rt->deploy_tx = *tx;
    rt->contract_id = tx->Id();
    rt->deploy_built = true;
    rt->publish_submitted_at = now;
    rt->outcome = EdgeOutcome::kPublished;
  }
  if (rt->last_submit < 0 ||
      now - rt->last_submit >= config_.resubmit_interval) {
    env_->SubmitTransaction(sender->node(), rt->edge.chain_id, rt->deploy_tx);
    rt->last_submit = now;
  }
}

void Ac3twSwapEngine::TrackPublishConfirmation(EdgeRt* rt) {
  const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
  auto location = chain->FindTx(rt->contract_id);
  if (!location.has_value()) return;
  auto confirmations = chain->ConfirmationsOf(location->entry->hash);
  if (!confirmations.has_value() || *confirmations < config_.confirm_depth) {
    return;
  }
  rt->publish_confirmed = true;
  rt->published_at = env_->sim()->Now();
}

void Ac3twSwapEngine::RequestDecision(crypto::CommitmentTag tag) {
  const TimePoint now = env_->sim()->Now();
  if (last_request_attempt_ >= 0 &&
      now - last_request_attempt_ < config_.resubmit_interval) {
    return;
  }
  Participant* requester = FirstLiveParticipant();
  if (requester == nullptr) return;
  last_request_attempt_ = now;

  // Step 5 / 6: the request travels to Trent, who consults (and possibly
  // updates) his key/value store, and the value travels back.
  env_->network()->Send(requester->node(), trent_->node(), [this, tag,
                                                            requester]() {
    Result<TrentDecision> result =
        tag == crypto::CommitmentTag::kRedeem
            ? trent_->HandleRedeemRequest(ms_id_)
            : trent_->HandleRefundRequest(ms_id_);
    if (!result.ok()) {
      AC3_LOG(kDebug) << "Trent declines: " << result.status().ToString();
      return;
    }
    TrentDecision decision = *result;
    env_->network()->Send(trent_->node(), requester->node(),
                          [this, decision]() {
                            if (decision_.has_value()) return;
                            decision_ = decision;
                            report_.decision_time = env_->sim()->Now();
                            report_.MarkPhase(
                                decision.tag == crypto::CommitmentTag::kRedeem
                                    ? "trent_signed_redeem"
                                    : "trent_signed_refund",
                                env_->sim()->Now());
                          });
  });
}

void Ac3twSwapEngine::TrySettle(EdgeRt* rt) {
  if (!decision_.has_value() || rt->settle_submitted) return;
  const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
  const Bytes secret = decision_->signature.Encode();
  const bool redeem = decision_->tag == crypto::CommitmentTag::kRedeem;
  Participant* actor =
      redeem ? participants_[rt->edge.to] : participants_[rt->edge.from];
  if (!actor->IsUp()) return;

  // Build the call once and re-gossip the SAME transaction on retries;
  // rebuilding would re-reserve the actor's wallet funds.
  if (!rt->settle_built) {
    auto tx = actor->WalletFor(rt->edge.chain_id)
                  ->BuildCall(chain->StateAtHead(), rt->contract_id,
                              redeem ? contracts::kRedeemFunction
                                     : contracts::kRefundFunction,
                              secret, chain->params().call_fee,
                              static_cast<uint64_t>(env_->sim()->Now()) ^
                                  rt->edge.from);
    if (!tx.ok()) {
      AC3_LOG(kDebug) << "cannot build settle call: " << tx.status().ToString();
      return;
    }
    rt->settle_tx = *tx;
    rt->settle_built = true;
  }
  env_->SubmitTransaction(actor->node(), rt->edge.chain_id, rt->settle_tx);
  rt->settle_submitted = true;
  rt->last_settle_submit = env_->sim()->Now();
}

void Ac3twSwapEngine::TrackSettlement(EdgeRt* rt) {
  const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
  for (const char* function :
       {contracts::kRedeemFunction, contracts::kRefundFunction}) {
    auto call = chain->FindCall(rt->contract_id, function,
                                /*require_success=*/true);
    if (!call.has_value()) continue;
    auto confirmations = chain->ConfirmationsOf(call->entry->hash);
    if (!confirmations.has_value() || *confirmations < config_.confirm_depth) {
      continue;
    }
    rt->settled = true;
    rt->settled_at = env_->sim()->Now();
    rt->outcome = function == std::string(contracts::kRedeemFunction)
                      ? EdgeOutcome::kRedeemed
                      : EdgeOutcome::kRefunded;
    return;
  }
  // A settle call may have been lost (crash mid-flight); allow a retry of
  // the cached transaction after the resubmit interval.
  if (rt->settle_submitted && rt->last_settle_submit >= 0 &&
      env_->sim()->Now() - rt->last_settle_submit >=
          config_.resubmit_interval) {
    rt->settle_submitted = false;
  }
}

bool Ac3twSwapEngine::AllPublished() const {
  return std::all_of(edges_.begin(), edges_.end(),
                     [](const EdgeRt& rt) { return rt.publish_confirmed; });
}

void Ac3twSwapEngine::CheckDone() {
  if (!decision_.has_value()) return;
  for (const EdgeRt& rt : edges_) {
    if (!rt.deploy_built) continue;  // Never published: nothing to settle.
    // On the refund path, contracts whose deploy never confirmed on-chain
    // may still confirm later; wait for them too (they hold locked assets
    // the moment they land). Contracts that never reached a chain at all
    // cannot settle; give up on them once nothing is pending.
    const chain::Blockchain* chain = env_->blockchain(rt.edge.chain_id);
    const bool on_chain = chain->FindTx(rt.contract_id).has_value();
    if (!on_chain && decision_->tag == crypto::CommitmentTag::kRefund) {
      continue;
    }
    if (!rt.settled) return;
  }
  done_ = true;
}

void Ac3twSwapEngine::Poll() {
  if (done_) return;
  const TimePoint now = env_->sim()->Now();

  if (!registered_) {
    TryRegister();
  } else {
    for (EdgeRt& rt : edges_) {
      if (rt.settled) continue;
      if (!rt.publish_confirmed) {
        TryPublish(&rt);
        if (rt.deploy_built) TrackPublishConfirmation(&rt);
      }
    }
    if (!decision_.has_value()) {
      if (config_.request_abort) {
        RequestDecision(crypto::CommitmentTag::kRefund);
      } else if (AllPublished()) {
        RequestDecision(crypto::CommitmentTag::kRedeem);
      } else if (now - registered_at_ >= config_.publish_patience) {
        // Step 6: a participant declines (or stays crashed) — fall back to
        // the refund secret so everyone else recovers their assets.
        RequestDecision(crypto::CommitmentTag::kRefund);
      }
    } else {
      for (EdgeRt& rt : edges_) {
        if (rt.settled) continue;
        if (rt.publish_confirmed ||
            env_->blockchain(rt.edge.chain_id)->FindTx(rt.contract_id)) {
          TrySettle(&rt);
          TrackSettlement(&rt);
        }
      }
    }
  }

  CheckDone();
  if (!done_) {
    env_->sim()->After(config_.poll_interval, [this]() { Poll(); });
  }
}

void Ac3twSwapEngine::FinalizeReport() {
  report_.finished = done_;
  report_.edges.clear();
  TimePoint last_settle = -1;
  chain::Amount fees = 0;
  for (const EdgeRt& rt : edges_) {
    EdgeReport edge;
    edge.edge = rt.edge;
    edge.contract_id = rt.contract_id;
    edge.outcome = rt.outcome;
    edge.publish_submitted_at = rt.publish_submitted_at;
    edge.published_at = rt.published_at;
    edge.settled_at = rt.settled_at;
    report_.edges.push_back(edge);
    last_settle = std::max(last_settle, rt.settled_at);
    const chain::ChainParams& params =
        env_->blockchain(rt.edge.chain_id)->params();
    if (rt.publish_confirmed) fees += params.deploy_fee;
    if (rt.settled) fees += params.call_fee;
  }
  report_.total_fees = fees;
  report_.end_time = last_settle >= 0 ? last_settle : env_->sim()->Now();
  report_.committed =
      decision_.has_value() && decision_->tag == crypto::CommitmentTag::kRedeem;
  report_.aborted =
      decision_.has_value() && decision_->tag == crypto::CommitmentTag::kRefund;
}

Result<SwapReport> Ac3twSwapEngine::Run(TimePoint deadline) {
  if (!started_) {
    AC3_RETURN_IF_ERROR(Start());
  }
  (void)env_->sim()->RunUntilCondition([this]() { return done_; }, deadline);
  FinalizeReport();
  return report_;
}

}  // namespace ac3::protocols
