// AC3TW: the centralized-trusted-witness atomic cross-chain commitment
// protocol (Section 4.1) — the stepping stone between HTLC swaps and AC3WN.
//
// Protocol steps (paper, end of Section 4.1):
//   1. Participants construct D and multisign (D, t) -> ms(D).
//   2. A participant registers ms(D) at Trent.
//   3+4. All participants publish their CentralizedSC contracts
//        (Algorithm 2) concurrently — no sequential rounds.
//   5. After every contract is published, a participant requests the
//      redemption secret; Trent signs (ms(D), RD) iff all contracts are
//      deployed and the value for ms(D) is still ⊥.
//   6. If someone declines (or a participant changes its mind), any
//      participant requests the refund secret; Trent signs (ms(D), RF) iff
//      the value is still ⊥.
//
// Atomicity holds because Trent's store makes the two signatures mutually
// exclusive. The protocol's weakness — Trent is a trusted single point of
// failure — is directly observable here: crash Trent (failure injector) and
// every request is lost until he recovers.
//
// The engine is a thin state machine over the reactive SwapEngineBase
// substrate: it advances on canonical-head movements, connectivity
// changes, Trent's (possibly lost) replies, and retry timers — no
// fixed-interval polling.

#ifndef AC3_PROTOCOLS_AC3TW_SWAP_H_
#define AC3_PROTOCOLS_AC3TW_SWAP_H_

#include <optional>
#include <vector>

#include "src/core/environment.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/engine_base.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"
#include "src/protocols/trent.h"

namespace ac3::protocols {

struct Ac3twConfig {
  /// Δ of Section 6.1 — publish/recognize granularity used for patience.
  Duration delta = Seconds(3);
  /// Confirmations before a contract counts as publicly recognized.
  uint32_t confirm_depth = 1;
  /// Re-gossip an unconfirmed transaction / unanswered request.
  Duration resubmit_interval = Seconds(2);
  /// Give up waiting for missing contracts and ask Trent for the refund
  /// secret after this long (measured from registration).
  Duration publish_patience = Seconds(30);
  /// When true, a participant "changes her mind": request the refund secret
  /// immediately after registration (abort path, paper step 6).
  bool request_abort = false;
  /// Phase-precise crash schedule for Trent (the AC3TW coordinator):
  /// kAtPrepare fires the moment the swap registers (participants then
  /// lock funds into contracts whose only decision point is dead);
  /// kAtCommit fires as the first decision request is sent, before Trent
  /// can sign either secret. Without a recovery, no decision ever exists
  /// and every published contract strands — the blocking behavior the
  /// quorum-commit study measures.
  CoordinatorCrashPlan coordinator_crash;
};

class Ac3twSwapEngine : public SwapEngineBase {
 public:
  Ac3twSwapEngine(core::Environment* env, graph::Ac2tGraph graph,
                  std::vector<Participant*> participants,
                  TrustedWitness* trent, Ac3twConfig config);

  const crypto::Hash256& ms_id() const { return ms_id_; }

 protected:
  Status OnStart() override;
  void Step() override;
  bool IsComplete() const override;
  size_t EdgeCount() const override { return edges_.size(); }
  EdgeState* Edge(size_t i) override { return &edges_[i]; }
  void FillVerdict(SwapReport* report) const override;
  /// The four typed exchanges of steps 2 and 5/6: kPrepare (register at
  /// Trent) answered by kAck, and kRedeemNotify (secret request) answered
  /// by kDecision carrying Trent's signature.
  void OnMessage(const proto::Message& msg) override;

 private:
  using EdgeRt = EdgeState;

  void TryRegister();
  void TryPublish(EdgeRt* rt);
  /// Sends a redeem- or refund-secret request from the first live
  /// participant; the response arrives via the network (or is lost).
  void RequestDecision(crypto::CommitmentTag tag);
  void TrySettle(EdgeRt* rt);

  TrustedWitness* trent_;
  Ac3twConfig config_;

  crypto::Multisignature ms_;
  crypto::Hash256 ms_id_;
  bool registered_ = false;
  /// When registration completed — the publish-patience clock starts here.
  TimePoint registered_at_ = 0;
  TimePoint last_register_attempt_ = -1;
  TimePoint last_request_attempt_ = -1;
  /// Trent's answer once it reaches a live participant.
  std::optional<TrentDecision> decision_;
  std::vector<EdgeRt> edges_;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_AC3TW_SWAP_H_
