// AC3TW: the centralized-trusted-witness atomic cross-chain commitment
// protocol (Section 4.1) — the stepping stone between HTLC swaps and AC3WN.
//
// Protocol steps (paper, end of Section 4.1):
//   1. Participants construct D and multisign (D, t) -> ms(D).
//   2. A participant registers ms(D) at Trent.
//   3+4. All participants publish their CentralizedSC contracts
//        (Algorithm 2) concurrently — no sequential rounds.
//   5. After every contract is published, a participant requests the
//      redemption secret; Trent signs (ms(D), RD) iff all contracts are
//      deployed and the value for ms(D) is still ⊥.
//   6. If someone declines (or a participant changes its mind), any
//      participant requests the refund secret; Trent signs (ms(D), RF) iff
//      the value is still ⊥.
//
// Atomicity holds because Trent's store makes the two signatures mutually
// exclusive. The protocol's weakness — Trent is a trusted single point of
// failure — is directly observable here: crash Trent (failure injector) and
// every request is lost until he recovers.

#ifndef AC3_PROTOCOLS_AC3TW_SWAP_H_
#define AC3_PROTOCOLS_AC3TW_SWAP_H_

#include <optional>
#include <vector>

#include "src/core/environment.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"
#include "src/protocols/trent.h"

namespace ac3::protocols {

struct Ac3twConfig {
  /// Δ of Section 6.1 — publish/recognize granularity used for patience.
  Duration delta = Seconds(3);
  /// Confirmations before a contract counts as publicly recognized.
  uint32_t confirm_depth = 1;
  Duration poll_interval = Milliseconds(25);
  /// Re-gossip an unconfirmed transaction / unanswered request.
  Duration resubmit_interval = Seconds(2);
  /// Give up waiting for missing contracts and ask Trent for the refund
  /// secret after this long (measured from Start()).
  Duration publish_patience = Seconds(30);
  /// When true, a participant "changes her mind": request the refund secret
  /// immediately after registration (abort path, paper step 6).
  bool request_abort = false;
};

class Ac3twSwapEngine {
 public:
  Ac3twSwapEngine(core::Environment* env, graph::Ac2tGraph graph,
                  std::vector<Participant*> participants,
                  TrustedWitness* trent, Ac3twConfig config);

  /// Multisigns D, schedules registration at Trent and the polling loop;
  /// returns immediately.
  Status Start();

  bool Done() const { return done_; }
  const SwapReport& report() const { return report_; }
  const crypto::Hash256& ms_id() const { return ms_id_; }

  /// Start() + run the simulation until done or `deadline`; finalizes and
  /// returns the report.
  Result<SwapReport> Run(TimePoint deadline);

 private:
  struct EdgeRt {
    graph::Ac2tEdge edge;
    crypto::Hash256 contract_id;
    chain::Transaction deploy_tx;
    bool deploy_built = false;
    TimePoint last_submit = -1;
    bool publish_confirmed = false;
    /// Built once, re-gossiped on retries (avoids re-reserving funds).
    chain::Transaction settle_tx;
    bool settle_built = false;
    bool settle_submitted = false;
    TimePoint last_settle_submit = -1;
    bool settled = false;
    EdgeOutcome outcome = EdgeOutcome::kUnpublished;
    TimePoint publish_submitted_at = -1;
    TimePoint published_at = -1;
    TimePoint settled_at = -1;
  };

  void Poll();
  void TryRegister();
  void TryPublish(EdgeRt* rt);
  void TrackPublishConfirmation(EdgeRt* rt);
  /// Sends a redeem- or refund-secret request from the first live
  /// participant; the response arrives via the network (or is lost).
  void RequestDecision(crypto::CommitmentTag tag);
  void TrySettle(EdgeRt* rt);
  void TrackSettlement(EdgeRt* rt);
  bool AllPublished() const;
  /// First participant that is currently up, if any.
  Participant* FirstLiveParticipant() const;
  void CheckDone();
  void FinalizeReport();

  core::Environment* env_;
  graph::Ac2tGraph graph_;
  std::vector<Participant*> participants_;
  TrustedWitness* trent_;
  Ac3twConfig config_;

  crypto::Multisignature ms_;
  crypto::Hash256 ms_id_;
  bool registered_ = false;
  /// When registration completed — the publish-patience clock starts here.
  TimePoint registered_at_ = 0;
  TimePoint last_register_attempt_ = -1;
  TimePoint last_request_attempt_ = -1;
  /// Trent's answer once it reaches a live participant.
  std::optional<TrentDecision> decision_;
  std::vector<EdgeRt> edges_;
  TimePoint start_time_ = 0;
  bool started_ = false;
  bool done_ = false;
  SwapReport report_;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_AC3TW_SWAP_H_
