#include "src/protocols/herlihy_swap.h"

#include <algorithm>
#include <deque>

#include "src/common/logging.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/htlc_contract.h"

namespace ac3::protocols {

namespace {

/// BFS distances from `source` along directed edges; UINT32_MAX when
/// unreachable.
std::vector<uint32_t> DistancesFrom(const graph::Ac2tGraph& graph,
                                    uint32_t source) {
  std::vector<std::vector<uint32_t>> adj(graph.participant_count());
  for (const graph::Ac2tEdge& e : graph.edges()) adj[e.from].push_back(e.to);
  std::vector<uint32_t> dist(graph.participant_count(), UINT32_MAX);
  dist[source] = 0;
  std::deque<uint32_t> queue{source};
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t v : adj[u]) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

HerlihySwapEngine::HerlihySwapEngine(core::Environment* env,
                                     graph::Ac2tGraph graph,
                                     std::vector<Participant*> participants,
                                     HtlcConfig config)
    : env_(env),
      graph_(std::move(graph)),
      participants_(std::move(participants)),
      config_(config) {
  report_.protocol = graph_.participant_count() == 2 ? "Nolan-HTLC"
                                                     : "Herlihy-HTLC";
}

Status HerlihySwapEngine::Start() {
  AC3_RETURN_IF_ERROR(graph_.Validate());
  if (participants_.size() != graph_.participant_count()) {
    return Status::InvalidArgument("participant list does not match graph");
  }
  auto leader = graph_.FindSingleLeader();
  if (!leader.has_value()) {
    return Status::FailedPrecondition(
        "graph is not single-leader feasible (" + graph_.Describe() +
        "); Nolan/Herlihy cannot execute it — see Section 5.3");
  }
  leader_ = *leader;
  std::vector<uint32_t> dist = DistancesFrom(graph_, leader_);
  for (const graph::Ac2tEdge& e : graph_.edges()) {
    if (dist[e.from] == UINT32_MAX) {
      return Status::FailedPrecondition(
          "a sender is unreachable from the leader; sequential publishing "
          "cannot cover the graph");
    }
  }

  start_time_ = env_->sim()->Now();
  report_.start_time = start_time_;

  // The leader's secret and hashlock.
  secret_ = env_->sim()->rng()->NextBytes(32);
  hashlock_ = crypto::Hash256::Of(secret_);

  // Publish steps and timelocks: step(e) = dist(L -> sender). Contracts
  // published earlier carry LATER timelocks (t1 > t2), leaving later
  // redeemers room — exactly Nolan's two-party schedule at |V| = 2.
  uint32_t max_step = 0;
  for (const graph::Ac2tEdge& e : graph_.edges()) {
    max_step = std::max(max_step, dist[e.from]);
  }
  const uint32_t publish_rounds = max_step + 1;
  for (const graph::Ac2tEdge& e : graph_.edges()) {
    EdgeRt rt;
    rt.edge = e;
    rt.publish_step = dist[e.from];
    const uint32_t redeem_slack = max_step - rt.publish_step;
    rt.timelock = start_time_ +
                  config_.delta * (publish_rounds + redeem_slack + 2);
    max_timelock_ = std::max(max_timelock_, rt.timelock);
    edges_.push_back(std::move(rt));
  }
  knows_secret_.assign(graph_.participant_count(), false);
  knows_secret_[leader_] = true;

  started_ = true;
  env_->sim()->After(config_.poll_interval, [this]() { Poll(); });
  return Status::OK();
}

bool HerlihySwapEngine::MayPublish(uint32_t u) const {
  if (u == leader_) return true;
  // All incoming contracts of u must be publicly recognized first.
  for (const EdgeRt& rt : edges_) {
    if (rt.edge.to == u && !rt.publish_confirmed) return false;
  }
  return true;
}

void HerlihySwapEngine::TryPublish(EdgeRt* rt) {
  Participant* sender = participants_[rt->edge.from];
  if (sender->behavior().decline_publish) return;
  if (!sender->IsUp()) return;
  if (!MayPublish(rt->edge.from)) return;
  const TimePoint now = env_->sim()->Now();

  if (!rt->deploy_built) {
    const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
    Bytes payload = contracts::HtlcContract::MakeInitPayload(
        participants_[rt->edge.to]->pk(), hashlock_, rt->timelock);
    auto tx = sender->WalletFor(rt->edge.chain_id)
                  ->BuildDeploy(chain->StateAtHead(), contracts::kHtlcKind,
                                payload, rt->edge.amount,
                                chain->params().deploy_fee,
                                static_cast<uint64_t>(now) ^ rt->edge.to);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << sender->name()
                     << " cannot fund HTLC: " << tx.status().ToString();
      return;
    }
    rt->deploy_tx = *tx;
    rt->contract_id = tx->Id();
    rt->deploy_built = true;
    rt->publish_submitted_at = now;
    rt->outcome = EdgeOutcome::kPublished;
  }
  if (rt->last_submit < 0 || now - rt->last_submit >= config_.resubmit_interval) {
    env_->SubmitTransaction(sender->node(), rt->edge.chain_id, rt->deploy_tx);
    rt->last_submit = now;
  }
}

void HerlihySwapEngine::TrackPublishConfirmation(EdgeRt* rt) {
  const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
  auto location = chain->FindTx(rt->contract_id);
  if (!location.has_value()) return;
  auto confirmations = chain->ConfirmationsOf(location->entry->hash);
  if (!confirmations.has_value() || *confirmations < config_.confirm_depth) {
    return;
  }
  rt->publish_confirmed = true;
  rt->published_at = env_->sim()->Now();
}

void HerlihySwapEngine::TrySettle(EdgeRt* rt) {
  const TimePoint now = env_->sim()->Now();
  const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);

  // Redeem by the recipient while the timelock is live.
  Participant* recipient = participants_[rt->edge.to];
  const bool recipient_knows =
      rt->edge.to == leader_ ? AllPublished() : knows_secret_[rt->edge.to];
  if (!rt->redeem_submitted && recipient_knows && recipient->IsUp() &&
      now < rt->timelock) {
    auto call = recipient->SubmitCall(rt->edge.chain_id, rt->contract_id,
                                      contracts::kRedeemFunction, secret_,
                                      chain->params().call_fee);
    if (call.ok()) {
      rt->redeem_submitted = true;
      if (!reveal_marked_ && rt->edge.to == leader_) {
        reveal_marked_ = true;
        report_.MarkPhase("leader_reveals_secret", now);
      }
    }
  }

  // Refund by the sender after expiry, while the contract is still locked.
  Participant* sender = participants_[rt->edge.from];
  const TimePoint head_time = chain->head()->block.header.time;
  if (!rt->refund_submitted && sender->IsUp() && head_time >= rt->timelock) {
    auto contract = chain->ContractAtHead(rt->contract_id);
    if (contract.ok()) {
      auto swap = std::dynamic_pointer_cast<const contracts::AtomicSwapContract>(
          *contract);
      if (swap != nullptr &&
          swap->state() == contracts::SwapState::kPublished) {
        auto call = sender->SubmitCall(rt->edge.chain_id, rt->contract_id,
                                       contracts::kRefundFunction, {},
                                       chain->params().call_fee);
        if (call.ok()) rt->refund_submitted = true;
      }
    }
  }
}

void HerlihySwapEngine::TrackSettlement(EdgeRt* rt) {
  const chain::Blockchain* chain = env_->blockchain(rt->edge.chain_id);
  for (const char* function :
       {contracts::kRedeemFunction, contracts::kRefundFunction}) {
    auto call = chain->FindCall(rt->contract_id, function,
                                /*require_success=*/true);
    if (!call.has_value()) continue;
    auto confirmations = chain->ConfirmationsOf(call->entry->hash);
    if (!confirmations.has_value() || *confirmations < config_.confirm_depth) {
      continue;
    }
    rt->settled = true;
    rt->settled_at = env_->sim()->Now();
    rt->outcome = function == std::string(contracts::kRedeemFunction)
                      ? EdgeOutcome::kRedeemed
                      : EdgeOutcome::kRefunded;
    if (report_.decision_time < 0) {
      report_.decision_time = rt->settled_at;
    }
    return;
  }
}

void HerlihySwapEngine::ObserveSecrets() {
  // A participant learns s when one of its outgoing contracts is redeemed
  // (the redeem call's payload carries the preimage).
  for (const EdgeRt& rt : edges_) {
    if (!rt.deploy_built || knows_secret_[rt.edge.from]) continue;
    const chain::Blockchain* chain = env_->blockchain(rt.edge.chain_id);
    auto call = chain->FindCall(rt.contract_id, contracts::kRedeemFunction,
                                /*require_success=*/true);
    if (!call.has_value()) continue;
    const chain::Transaction& tx = call->entry->block.txs[call->index];
    if (crypto::Hash256::Of(tx.payload) == hashlock_) {
      // Only an up participant observes the chain.
      if (participants_[rt.edge.from]->IsUp()) {
        knows_secret_[rt.edge.from] = true;
      }
    }
  }
}

bool HerlihySwapEngine::AllPublished() const {
  return std::all_of(edges_.begin(), edges_.end(),
                     [](const EdgeRt& rt) { return rt.publish_confirmed; });
}

void HerlihySwapEngine::CheckDone() {
  const TimePoint now = env_->sim()->Now();
  for (const EdgeRt& rt : edges_) {
    if (rt.settled) continue;
    if (!rt.deploy_built && now > max_timelock_ + 2 * config_.delta) {
      continue;  // Never published and nobody is waiting any more.
    }
    return;  // Something can still move.
  }
  done_ = true;
}

void HerlihySwapEngine::Poll() {
  if (done_) return;
  ObserveSecrets();
  for (EdgeRt& rt : edges_) {
    if (rt.settled) continue;
    if (!rt.deploy_built || !rt.publish_confirmed) {
      TryPublish(&rt);
      if (rt.deploy_built) TrackPublishConfirmation(&rt);
      continue;
    }
    TrySettle(&rt);
    TrackSettlement(&rt);
  }
  CheckDone();
  if (!done_) {
    env_->sim()->After(config_.poll_interval, [this]() { Poll(); });
  }
}

void HerlihySwapEngine::FinalizeReport() {
  report_.finished = done_;
  report_.edges.clear();
  TimePoint last_settle = -1;
  chain::Amount fees = 0;
  for (const EdgeRt& rt : edges_) {
    EdgeReport edge;
    edge.edge = rt.edge;
    edge.contract_id = rt.contract_id;
    edge.outcome = rt.outcome;
    edge.publish_submitted_at = rt.publish_submitted_at;
    edge.published_at = rt.published_at;
    edge.settled_at = rt.settled_at;
    report_.edges.push_back(edge);
    last_settle = std::max(last_settle, rt.settled_at);
    const chain::ChainParams& params =
        env_->blockchain(rt.edge.chain_id)->params();
    if (rt.publish_confirmed) fees += params.deploy_fee;
    if (rt.settled) fees += params.call_fee;
  }
  report_.total_fees = fees;
  report_.end_time = last_settle >= 0 ? last_settle : env_->sim()->Now();
  report_.committed = report_.AllRedeemed();
  report_.aborted = !report_.committed && report_.AllRefunded();
}

Result<SwapReport> HerlihySwapEngine::Run(TimePoint deadline) {
  if (!started_) {
    AC3_RETURN_IF_ERROR(Start());
  }
  (void)env_->sim()->RunUntilCondition([this]() { return done_; }, deadline);
  FinalizeReport();
  return report_;
}

HerlihySwapEngine MakeNolanTwoPartySwap(core::Environment* env,
                                        const graph::Ac2tGraph& graph,
                                        Participant* alice, Participant* bob,
                                        HtlcConfig config) {
  return HerlihySwapEngine(env, graph, {alice, bob}, config);
}

}  // namespace ac3::protocols
