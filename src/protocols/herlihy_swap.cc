#include "src/protocols/herlihy_swap.h"

#include <algorithm>
#include <deque>

#include "src/common/logging.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/htlc_contract.h"

namespace ac3::protocols {

namespace {

/// BFS distances from `source` along directed edges; UINT32_MAX when
/// unreachable.
std::vector<uint32_t> DistancesFrom(const graph::Ac2tGraph& graph,
                                    uint32_t source) {
  std::vector<std::vector<uint32_t>> adj(graph.participant_count());
  for (const graph::Ac2tEdge& e : graph.edges()) adj[e.from].push_back(e.to);
  std::vector<uint32_t> dist(graph.participant_count(), UINT32_MAX);
  dist[source] = 0;
  std::deque<uint32_t> queue{source};
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t v : adj[u]) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

HerlihySwapEngine::HerlihySwapEngine(core::Environment* env,
                                     graph::Ac2tGraph graph,
                                     std::vector<Participant*> participants,
                                     HtlcConfig config)
    : SwapEngineBase(
          env, std::move(graph), std::move(participants),
          WatchConfig{config.confirm_depth, config.resubmit_interval},
          /*protocol_name=*/""),
      config_(config) {
  mutable_report()->protocol = this->graph().participant_count() == 2
                                   ? "Nolan-HTLC"
                                   : "Herlihy-HTLC";
  SetCoordinatorCrashPlan(config.coordinator_crash);
}

Status HerlihySwapEngine::OnStart() {
  auto leader = graph().FindSingleLeader();
  if (!leader.has_value()) {
    return Status::FailedPrecondition(
        "graph is not single-leader feasible (" + graph().Describe() +
        "); Nolan/Herlihy cannot execute it — see Section 5.3");
  }
  leader_ = *leader;
  std::vector<uint32_t> dist = DistancesFrom(graph(), leader_);
  for (const graph::Ac2tEdge& e : graph().edges()) {
    if (dist[e.from] == UINT32_MAX) {
      return Status::FailedPrecondition(
          "a sender is unreachable from the leader; sequential publishing "
          "cannot cover the graph");
    }
  }

  // The leader's secret and hashlock.
  secret_ = env()->sim()->rng()->NextBytes(32);
  hashlock_ = crypto::Hash256::Of(secret_);

  // Publish steps and timelocks: step(e) = dist(L -> sender). Contracts
  // published earlier carry LATER timelocks (t1 > t2), leaving later
  // redeemers room — exactly Nolan's two-party schedule at |V| = 2.
  uint32_t max_step = 0;
  for (const graph::Ac2tEdge& e : graph().edges()) {
    max_step = std::max(max_step, dist[e.from]);
  }
  const uint32_t publish_rounds = max_step + 1;
  for (const graph::Ac2tEdge& e : graph().edges()) {
    EdgeRt rt;
    rt.edge = e;
    rt.publish_step = dist[e.from];
    const uint32_t redeem_slack = max_step - rt.publish_step;
    rt.timelock = start_time() +
                  config_.delta * (publish_rounds + redeem_slack + 2);
    max_timelock_ = std::max(max_timelock_, rt.timelock);
    edges_.push_back(std::move(rt));
  }
  knows_secret_.assign(graph().participant_count(), false);
  knows_secret_[leader_] = true;

  // Past this point nobody waits for a never-published contract; the wake
  // guarantees the terminal check runs even if every chain has gone quiet.
  give_up_time_ = max_timelock_ + 2 * config_.delta;
  RequestWakeAt(give_up_time_ + 1);
  return Status::OK();
}

bool HerlihySwapEngine::MayPublish(uint32_t u) const {
  if (u == leader_) return true;
  // All incoming contracts of u must be publicly recognized first.
  for (const EdgeRt& rt : edges_) {
    if (rt.edge.to == u && !rt.publish_confirmed) return false;
  }
  return true;
}

void HerlihySwapEngine::TryPublish(EdgeRt* rt) {
  Participant* sender = participant(rt->edge.from);
  if (sender->behavior().decline_publish) return;
  if (!sender->IsUp()) return;
  if (!MayPublish(rt->edge.from)) return;
  const TimePoint now = env()->sim()->Now();

  if (!rt->deploy_built) {
    const chain::Blockchain* chain = env()->blockchain(rt->edge.chain_id);
    Bytes payload = contracts::HtlcContract::MakeInitPayload(
        participant(rt->edge.to)->pk(), hashlock_, rt->timelock);
    auto tx = sender->WalletFor(rt->edge.chain_id)
                  ->BuildDeploy(chain->StateAtHead(), contracts::kHtlcKind,
                                payload, rt->edge.amount,
                                chain->params().deploy_fee,
                                static_cast<uint64_t>(now) ^ rt->edge.to);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << sender->name()
                     << " cannot fund HTLC: " << tx.status().ToString();
      return;
    }
    rt->deploy_tx = *tx;
    rt->contract_id = tx->Id();
    rt->deploy_built = true;
    rt->publish_submitted_at = now;
    rt->outcome = EdgeOutcome::kPublished;
  }
  GossipDeploy(rt, sender);
}

void HerlihySwapEngine::TrySettle(EdgeRt* rt) {
  const TimePoint now = env()->sim()->Now();
  const chain::Blockchain* chain = env()->blockchain(rt->edge.chain_id);

  // Redeem by the recipient while the timelock is live.
  Participant* recipient = participant(rt->edge.to);
  const bool recipient_knows =
      rt->edge.to == leader_ ? AllPublished() : knows_secret_[rt->edge.to];
  // kAtCommit anchor: the leader is about to redeem its first incoming
  // contract — the reveal of s that commits the whole swap — and dies
  // instead. The secret never reaches a chain, so nobody else can redeem.
  if (!rt->redeem_submitted && recipient_knows && rt->edge.to == leader_ &&
      now < rt->timelock &&
      MaybeCrashCoordinator(CoordinatorCrashPhase::kAtCommit,
                            recipient->node())) {
    return;
  }
  if (!rt->redeem_submitted && recipient_knows && recipient->IsUp() &&
      now < rt->timelock) {
    auto call = recipient->SubmitCall(rt->edge.chain_id, rt->contract_id,
                                      contracts::kRedeemFunction, secret_,
                                      chain->params().call_fee);
    if (call.ok()) {
      rt->redeem_submitted = true;
      if (!reveal_marked_ && rt->edge.to == leader_) {
        reveal_marked_ = true;
        mutable_report()->MarkPhase("leader_reveals_secret", now);
      }
    }
  }

  // Refund by the sender after expiry, while the contract is still locked.
  Participant* sender = participant(rt->edge.from);
  const TimePoint head_time = chain->head()->block.header.time;
  if (!rt->refund_submitted && sender->IsUp() && head_time >= rt->timelock) {
    auto contract = chain->ContractAtHead(rt->contract_id);
    if (contract.ok()) {
      auto swap = std::dynamic_pointer_cast<const contracts::AtomicSwapContract>(
          *contract);
      if (swap != nullptr &&
          swap->state() == contracts::SwapState::kPublished) {
        auto call = sender->SubmitCall(rt->edge.chain_id, rt->contract_id,
                                       contracts::kRefundFunction, {},
                                       chain->params().call_fee);
        if (call.ok()) rt->refund_submitted = true;
      }
    }
  }
}

void HerlihySwapEngine::OnEdgeSettled(EdgeState* edge) {
  if (mutable_report()->decision_time < 0) {
    mutable_report()->decision_time = edge->settled_at;
  }
}

void HerlihySwapEngine::ObserveSecrets() {
  // A participant learns s when one of its outgoing contracts is redeemed
  // (the redeem call's payload carries the preimage).
  for (const EdgeRt& rt : edges_) {
    if (!rt.deploy_built || knows_secret_[rt.edge.from]) continue;
    const chain::Blockchain* chain = env()->blockchain(rt.edge.chain_id);
    auto call = chain->FindCall(rt.contract_id, contracts::kRedeemFunction,
                                /*require_success=*/true);
    if (!call.has_value()) continue;
    const chain::Transaction& tx = call->entry->block.txs[call->index];
    if (crypto::Hash256::Of(tx.payload) == hashlock_) {
      // Only an up participant observes the chain.
      if (participant(rt.edge.from)->IsUp()) {
        knows_secret_[rt.edge.from] = true;
      }
    }
  }
}

bool HerlihySwapEngine::IsComplete() const {
  const TimePoint now = env()->sim()->Now();
  for (const EdgeRt& rt : edges_) {
    if (rt.settled) continue;
    if (!rt.deploy_built && now > give_up_time_) {
      continue;  // Never published and nobody is waiting any more.
    }
    return false;  // Something can still move.
  }
  return true;
}

void HerlihySwapEngine::MaybeCrashLeader() {
  // kAtPrepare anchor: every outgoing contract of the leader has been
  // built and handed to the network — the leader's funds are committed —
  // and the leader dies before the swap can advance further. Its outgoing
  // contracts strand: refunds require the SENDER to submit the call.
  bool leader_prepared = true;
  for (const EdgeRt& rt : edges_) {
    if (rt.edge.from == leader_ && !rt.deploy_built) leader_prepared = false;
  }
  if (leader_prepared) {
    MaybeCrashCoordinator(CoordinatorCrashPhase::kAtPrepare,
                          participant(leader_)->node());
  }
}

void HerlihySwapEngine::Step() {
  MaybeCrashLeader();
  ObserveSecrets();
  for (EdgeRt& rt : edges_) {
    if (rt.settled) continue;
    if (!rt.deploy_built || !rt.publish_confirmed) {
      TryPublish(&rt);
      if (rt.deploy_built) TrackPublishConfirmation(&rt);
      // Fall through when the confirmation landed this very wake: the next
      // protocol action should not wait for another block arrival.
      if (!rt.publish_confirmed) continue;
    }
    TrySettle(&rt);
    TrackSettlement(&rt);
  }
}

void HerlihySwapEngine::FillVerdict(SwapReport* report) const {
  report->committed = report->AllRedeemed();
  report->aborted = !report->committed && report->AllRefunded();
}

HerlihySwapEngine MakeNolanTwoPartySwap(core::Environment* env,
                                        const graph::Ac2tGraph& graph,
                                        Participant* alice, Participant* bob,
                                        HtlcConfig config) {
  return HerlihySwapEngine(env, graph, {alice, bob}, config);
}

}  // namespace ac3::protocols
