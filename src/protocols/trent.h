// Trent: the centralized trusted witness of the AC3TW protocol
// (Section 4.1).
//
// "Trent maintains a key/value store of ms(D)'s as the key, and his digital
//  signature to either (ms(D), RD) or (ms(D), RF) as the value. ... Trent
//  uses the key/value store to ensure that either T(ms(D), RD) or
//  T(ms(D), RF) can be issued for an AC2T."
//
// Trent lives on the simulated network: requests reach him with latency and
// are lost while he is crashed or partitioned — the single-point-of-failure
// the paper criticizes ("the AC3WN protocol overcomes the vulnerability of
// the centralized trusted witness, which may fail or be subject to denial
// of service attacks"). Being trusted, Trent verifies contract deployments
// by consulting his own full-node view of every asset chain.

#ifndef AC3_PROTOCOLS_TRENT_H_
#define AC3_PROTOCOLS_TRENT_H_

#include <map>
#include <optional>
#include <string>

#include "src/core/environment.h"
#include "src/crypto/commitment.h"
#include "src/crypto/multisig.h"
#include "src/graph/ac2t_graph.h"

namespace ac3::protocols {

/// The value side of Trent's key/value store once decided: which action he
/// witnessed and the signature that serves as the commitment-scheme secret.
struct TrentDecision {
  crypto::CommitmentTag tag = crypto::CommitmentTag::kRedeem;
  crypto::Signature signature;
};

class TrustedWitness {
 public:
  /// `confirm_depth`: how deep a deployment must be buried in its chain
  /// before Trent counts it as "deployed".
  TrustedWitness(std::string name, uint64_t key_seed, core::Environment* env,
                 uint32_t confirm_depth = 1);

  const std::string& name() const { return name_; }
  const crypto::PublicKey& pk() const { return key_.public_key(); }
  sim::NodeId node() const { return node_; }

  /// Liveness as seen by the failure injector (crash = DoS on Trent).
  bool IsUp() const;

  // ---- witness-side request handlers ------------------------------------
  // Called at message-delivery time by the protocol engine's network sends.

  /// Registration: "Trent checks that ms(D) has not been registered before.
  /// If true, Trent inserts ms(D) ... and sets its corresponding value to
  /// ⊥." The multisignature must verify against the graph it signs.
  Status HandleRegister(const crypto::Multisignature& ms);

  /// Redemption request: verifies value is ⊥ and every smart contract in
  /// the AC2T is deployed and bound to (ms(D), PK_T); if so signs
  /// (ms(D), RD) and stores it. Returns the stored value either way, so a
  /// retry after a decision simply re-reads it.
  Result<TrentDecision> HandleRedeemRequest(const crypto::Hash256& ms_id);

  /// Refund request: requires value ⊥ (no deployment check — Algorithm in
  /// Section 4.1); signs (ms(D), RF) and stores it.
  Result<TrentDecision> HandleRefundRequest(const crypto::Hash256& ms_id);

  /// The stored value for `ms_id`: nullopt when unregistered or still ⊥.
  std::optional<TrentDecision> Lookup(const crypto::Hash256& ms_id) const;

  bool IsRegistered(const crypto::Hash256& ms_id) const {
    return store_.count(ms_id) > 0;
  }

 private:
  struct Entry {
    crypto::Multisignature ms;
    graph::Ac2tGraph graph;
    std::optional<TrentDecision> value;  ///< nullopt encodes ⊥.
  };

  /// "Trent verifies that all smart contracts in the AC2T are deployed and
  /// that the redemption and refund commitment scheme instances of every
  /// smart contract are set to (ms(D), PK_T)."
  Status VerifyAllContractsDeployed(const Entry& entry) const;

  TrentDecision Decide(Entry* entry, crypto::CommitmentTag tag);

  std::string name_;
  crypto::KeyPair key_;
  core::Environment* env_;
  sim::NodeId node_;
  uint32_t confirm_depth_;
  std::map<crypto::Hash256, Entry> store_;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_TRENT_H_
