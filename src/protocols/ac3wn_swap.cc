#include "src/protocols/ac3wn_swap.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/contracts/evidence_builder.h"
#include "src/graph/multisig_graph.h"

namespace ac3::protocols {

Ac3wnSwapEngine::Ac3wnSwapEngine(core::Environment* env,
                                 graph::Ac2tGraph graph,
                                 std::vector<Participant*> participants,
                                 chain::ChainId witness_chain,
                                 Ac3wnConfig config)
    : SwapEngineBase(
          env, std::move(graph), std::move(participants),
          WatchConfig{config.confirm_depth, config.resubmit_interval},
          "AC3WN"),
      witness_chain_(witness_chain),
      config_(config) {
  SetCoordinatorCrashPlan(config.coordinator_crash);
}

Status Ac3wnSwapEngine::OnStart() {
  if (env()->blockchain(witness_chain_) == nullptr) {
    return Status::InvalidArgument("unknown witness chain");
  }

  // Step 1: all participants multisign (D, t) -> ms(D).
  std::vector<crypto::KeyPair> keys;
  keys.reserve(participants().size());
  for (Participant* p : participants()) keys.push_back(p->key());
  AC3_ASSIGN_OR_RETURN(ms_, graph::SignGraph(graph(), keys));

  // The agreed shape of every asset contract, with a stable checkpoint of
  // its chain: this is what SCw's VerifyContracts later validates evidence
  // against (asset deployments happen strictly after this point, so the
  // checkpoint is an ancestor of every deployment block).
  for (const graph::Ac2tEdge& e : graph().edges()) {
    const chain::Blockchain* asset_chain = env()->blockchain(e.chain_id);
    if (asset_chain == nullptr) {
      return Status::InvalidArgument("edge references an unknown blockchain");
    }
    EdgeRt rt;
    rt.edge = e;
    rt.spec.chain_id = e.chain_id;
    rt.spec.sender = participant(e.from)->pk();
    rt.spec.recipient = participant(e.to)->pk();
    rt.spec.amount = e.amount;
    rt.spec.min_evidence_depth = config_.witness_depth_d;
    rt.spec.asset_checkpoint =
        asset_chain->StableBlock(asset_chain->params().stable_depth)
            ->block.header;
    rt.spec.asset_difficulty_bits = asset_chain->params().difficulty_bits;
    edges_.push_back(std::move(rt));
  }

  // The witness chain is a wake source too (SCw confirmation, the buried
  // state change); edge chains are watched by the base.
  WatchChain(witness_chain_);
  return Status::OK();
}

void Ac3wnSwapEngine::TryDeployWitnessContract() {
  Participant* registrar = FirstLiveParticipant();
  if (registrar == nullptr) return;
  const TimePoint now = env()->sim()->Now();

  if (!scw_deploy_built_) {
    contracts::WitnessInit init;
    for (Participant* p : participants()) init.participants.push_back(p->pk());
    init.ms_encoded = ms_.Encode();
    for (const EdgeRt& rt : edges_) init.edges.push_back(rt.spec);

    const chain::Blockchain* witness = env()->blockchain(witness_chain_);
    auto tx = registrar->WalletFor(witness_chain_)
                  ->BuildDeploy(witness->StateAtHead(), contracts::kWitnessKind,
                                init.Encode(), /*locked_value=*/0,
                                witness->params().deploy_fee,
                                static_cast<uint64_t>(now));
    if (!tx.ok()) {
      AC3_LOG(kWarn) << registrar->name()
                     << " cannot deploy SCw: " << tx.status().ToString();
      return;
    }
    scw_deploy_tx_ = *tx;
    scw_id_ = tx->Id();
    scw_deploy_built_ = true;
  }
  if (scw_last_submit_ < 0 ||
      now - scw_last_submit_ >= config_.resubmit_interval) {
    env()->SubmitTransaction(registrar->node(), witness_chain_,
                             scw_deploy_tx_);
    scw_last_submit_ = now;
    RequestResubmitWake();
  }
}

void Ac3wnSwapEngine::TrackWitnessDeployment() {
  const chain::Blockchain* witness = env()->blockchain(witness_chain_);
  if (!TxConfirmedAtDepth(witness, scw_id_, config_.confirm_depth)) return;
  scw_confirmed_ = true;
  scw_confirmed_at_ = env()->sim()->Now();
  mutable_report()->MarkPhase("scw_published", scw_confirmed_at_);
  // The patience clock starts now; guarantee a wake when it runs out.
  RequestWakeAt(scw_confirmed_at_ + config_.publish_patience);
  // kAtPrepare anchor: the registrar dies the moment SCw confirms. Unlike
  // Trent or the HTLC leader, it held no exclusive role — the remaining
  // participants publish, authorize, and settle without it.
  Participant* registrar = FirstLiveParticipant();
  if (registrar != nullptr) {
    MaybeCrashCoordinator(CoordinatorCrashPhase::kAtPrepare,
                          registrar->node());
  }
}

void Ac3wnSwapEngine::TryPublish(EdgeRt* rt) {
  Participant* sender = participant(rt->edge.from);
  if (sender->behavior().decline_publish) return;
  if (!sender->IsUp()) return;
  const TimePoint now = env()->sim()->Now();

  if (!rt->deploy_built) {
    // Algorithm 4 constructor arguments: conditioned on *this* SCw at depth
    // d, anchored at a stable witness-chain checkpoint (an ancestor of any
    // future state-change block).
    const chain::Blockchain* witness = env()->blockchain(witness_chain_);
    rt->init.recipient = participant(rt->edge.to)->pk();
    rt->init.witness_chain_id = witness_chain_;
    rt->init.scw_id = scw_id_;
    rt->init.depth = config_.witness_depth_d;
    rt->init.witness_checkpoint =
        witness->StableBlock(witness->params().stable_depth)->block.header;
    rt->init.witness_difficulty_bits = witness->params().difficulty_bits;

    const chain::Blockchain* asset_chain = env()->blockchain(rt->edge.chain_id);
    auto tx =
        sender->WalletFor(rt->edge.chain_id)
            ->BuildDeploy(asset_chain->StateAtHead(),
                          contracts::kPermissionlessKind, rt->init.Encode(),
                          rt->edge.amount, asset_chain->params().deploy_fee,
                          static_cast<uint64_t>(now) ^ rt->edge.to);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << sender->name() << " cannot fund PermissionlessSC: "
                     << tx.status().ToString();
      return;
    }
    rt->deploy_tx = *tx;
    rt->contract_id = tx->Id();
    rt->deploy_built = true;
    rt->publish_submitted_at = now;
    rt->outcome = EdgeOutcome::kPublished;
  }
  GossipDeploy(rt, sender);
}

void Ac3wnSwapEngine::TryAuthorizeRedeem() {
  Participant* requester = FirstLiveParticipant();
  if (requester == nullptr) return;
  const TimePoint now = env()->sim()->Now();
  if (authorize_last_submit_ >= 0 &&
      now - authorize_last_submit_ < config_.resubmit_interval) {
    return;
  }
  // kAtCommit anchor: the requester dies as it is about to move SCw. The
  // next Step picks a new FirstLiveParticipant, which rebuilds the call
  // with its own funds (the builder-tracking discipline below) — the
  // nonblocking takeover the study contrasts with Trent and the leader.
  if (MaybeCrashCoordinator(CoordinatorCrashPhase::kAtCommit,
                            requester->node())) {
    return;
  }

  // Build the call once and re-gossip the SAME transaction afterwards:
  // rebuilding on every resubmission would re-reserve wallet funds that
  // the in-flight transaction already holds. A rebuild is only needed when
  // the original requester crashed (another participant takes over with
  // its own funds).
  if (!authorize_built_ || authorize_builder_ != requester) {
    // Section 4.3 evidence for every edge: the headers from the registered
    // asset checkpoint through the deployment block, plus a Merkle
    // inclusion proof of the deploy transaction.
    std::vector<contracts::HeaderChainEvidence> evidence;
    evidence.reserve(edges_.size());
    for (const EdgeRt& rt : edges_) {
      const chain::Blockchain* asset_chain =
          env()->blockchain(rt.edge.chain_id);
      auto ev = contracts::BuildTxEvidence(
          *asset_chain, rt.spec.asset_checkpoint.Hash(), rt.contract_id);
      if (!ev.ok()) {
        AC3_LOG(kDebug) << "evidence not ready: " << ev.status().ToString();
        return;
      }
      evidence.push_back(std::move(*ev));
    }

    const chain::Blockchain* witness = env()->blockchain(witness_chain_);
    auto tx = requester->WalletFor(witness_chain_)
                  ->BuildCall(witness->StateAtHead(), scw_id_,
                              contracts::kAuthorizeRedeemFunction,
                              contracts::EncodeEdgeEvidence(evidence),
                              witness->params().call_fee,
                              static_cast<uint64_t>(now));
    if (!tx.ok()) {
      AC3_LOG(kWarn) << "cannot build AuthorizeRedeem: "
                     << tx.status().ToString();
      return;
    }
    authorize_tx_ = *tx;
    authorize_builder_ = requester;
    if (!authorize_built_) {
      authorize_built_ = true;
      mutable_report()->MarkPhase("authorize_redeem_submitted", now);
    }
  }
  env()->SubmitTransaction(requester->node(), witness_chain_, authorize_tx_);
  authorize_last_submit_ = now;
  RequestResubmitWake();
}

void Ac3wnSwapEngine::TryAuthorizeRefund() {
  Participant* requester = FirstLiveParticipant();
  if (requester == nullptr) return;
  const TimePoint now = env()->sim()->Now();
  if (abort_last_submit_ >= 0 &&
      now - abort_last_submit_ < config_.resubmit_interval) {
    return;
  }
  // kAtCommit anchor on the abort path — same takeover argument as the
  // redeem path above.
  if (MaybeCrashCoordinator(CoordinatorCrashPhase::kAtCommit,
                            requester->node())) {
    return;
  }

  if (!abort_authorize_built_ || abort_builder_ != requester) {
    const chain::Blockchain* witness = env()->blockchain(witness_chain_);
    auto tx = requester->WalletFor(witness_chain_)
                  ->BuildCall(witness->StateAtHead(), scw_id_,
                              contracts::kAuthorizeRefundFunction, Bytes{},
                              witness->params().call_fee,
                              static_cast<uint64_t>(now) + 1);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << "cannot build AuthorizeRefund: "
                     << tx.status().ToString();
      return;
    }
    abort_authorize_tx_ = *tx;
    abort_builder_ = requester;
    if (!abort_authorize_built_) {
      abort_authorize_built_ = true;
      mutable_report()->MarkPhase("authorize_refund_submitted", now);
    }
  }
  env()->SubmitTransaction(requester->node(), witness_chain_,
                           abort_authorize_tx_);
  abort_last_submit_ = now;
  RequestResubmitWake();
}

void Ac3wnSwapEngine::TrackDecision() {
  if (decided_state_.has_value()) return;
  const chain::Blockchain* witness = env()->blockchain(witness_chain_);

  struct Candidate {
    const char* function;
    contracts::WitnessState state;
  };
  // Both transitions are scanned: under a fork one branch may carry RDauth
  // and another RFauth (Lemma 5.3); FindCall only sees the canonical branch
  // and the depth-d requirement below keeps transient winners from being
  // acted on.
  for (const Candidate& c :
       {Candidate{contracts::kAuthorizeRedeemFunction,
                  contracts::WitnessState::kRedeemAuthorized},
        Candidate{contracts::kAuthorizeRefundFunction,
                  contracts::WitnessState::kRefundAuthorized}}) {
    auto call = witness->FindCall(scw_id_, c.function,
                                  /*require_success=*/true);
    if (!call.has_value()) continue;
    auto confirmations = witness->ConfirmationsOf(call->entry->hash);
    if (!confirmations.has_value() ||
        *confirmations < config_.witness_depth_d) {
      continue;
    }
    decided_state_ = c.state;
    decision_tx_id_ = call->entry->block.txs[call->index].Id();
    mutable_report()->decision_time = env()->sim()->Now();
    mutable_report()->MarkPhase(
        c.state == contracts::WitnessState::kRedeemAuthorized
            ? "commit_decided_buried_d"
            : "abort_decided_buried_d",
        env()->sim()->Now());
    return;
  }
}

void Ac3wnSwapEngine::TrySettle(EdgeRt* rt) {
  if (!decided_state_.has_value()) return;
  const TimePoint now = env()->sim()->Now();
  if (rt->settle_submitted && rt->last_settle_submit >= 0 &&
      now - rt->last_settle_submit < config_.resubmit_interval) {
    return;
  }

  const bool redeem =
      *decided_state_ == contracts::WitnessState::kRedeemAuthorized;
  Participant* actor =
      redeem ? participant(rt->edge.to) : participant(rt->edge.from);
  if (!actor->IsUp()) return;

  // Receipt evidence: the SCw state-change receipt, proven against the
  // witness checkpoint this very contract stores, buried >= d.
  const chain::Blockchain* witness = env()->blockchain(witness_chain_);
  auto evidence = contracts::BuildReceiptEvidence(
      *witness, rt->init.witness_checkpoint.Hash(), decision_tx_id_);
  if (!evidence.ok()) {
    AC3_LOG(kDebug) << "receipt evidence not ready: "
                    << evidence.status().ToString();
    return;
  }

  const chain::Blockchain* asset_chain = env()->blockchain(rt->edge.chain_id);
  if (!rt->settle_built) {
    auto tx = actor->WalletFor(rt->edge.chain_id)
                  ->BuildCall(asset_chain->StateAtHead(), rt->contract_id,
                              redeem ? contracts::kRedeemFunction
                                     : contracts::kRefundFunction,
                              evidence->Encode(),
                              asset_chain->params().call_fee,
                              static_cast<uint64_t>(now) ^ rt->edge.from);
    if (!tx.ok()) {
      AC3_LOG(kDebug) << "cannot build settle call: "
                      << tx.status().ToString();
      return;
    }
    rt->settle_tx = *tx;
    rt->settle_built = true;
  }
  env()->SubmitTransaction(actor->node(), rt->edge.chain_id, rt->settle_tx);
  rt->settle_submitted = true;
  rt->last_settle_submit = now;
  RequestResubmitWake();
}

bool Ac3wnSwapEngine::IsComplete() const {
  if (!decided_state_.has_value()) return false;
  for (const EdgeRt& rt : edges_) {
    if (!rt.deploy_built) continue;  // Never published: nothing locked.
    const chain::Blockchain* asset_chain = env()->blockchain(rt.edge.chain_id);
    const bool on_chain = asset_chain->FindTx(rt.contract_id).has_value();
    if (!on_chain &&
        *decided_state_ == contracts::WitnessState::kRefundAuthorized) {
      continue;  // Built but never landed; nothing to refund.
    }
    if (!rt.settled) return false;
  }
  return true;
}

void Ac3wnSwapEngine::Step() {
  const TimePoint now = env()->sim()->Now();

  if (!scw_confirmed_) {
    // Phase 1: SCw deployment.
    TryDeployWitnessContract();
    if (scw_deploy_built_) TrackWitnessDeployment();
    if (!scw_confirmed_) return;
  }
  if (!decided_state_.has_value()) {
    // Phase 2: parallel deployments.
    bool was_all_published = AllPublished();
    for (EdgeRt& rt : edges_) {
      if (!rt.publish_confirmed) {
        TryPublish(&rt);
        if (rt.deploy_built) TrackPublishConfirmation(&rt);
      }
    }
    if (!was_all_published && AllPublished()) {
      mutable_report()->MarkPhase("contracts_published", now);
    }
    // Phase 3: the state-change request.
    if (config_.request_abort) {
      TryAuthorizeRefund();
    } else if (AllPublished()) {
      TryAuthorizeRedeem();
    } else if (now - scw_confirmed_at_ >= config_.publish_patience) {
      // Step 6: a participant declines to publish — any participant moves
      // SCw to RFauth so the published contracts can be refunded.
      TryAuthorizeRefund();
    }
    TrackDecision();
    if (!decided_state_.has_value()) return;
  }
  // Phase 4: parallel settlement under the buried decision.
  for (EdgeRt& rt : edges_) {
    if (rt.settled) continue;
    const chain::Blockchain* asset_chain = env()->blockchain(rt.edge.chain_id);
    if (rt.deploy_built && asset_chain->FindTx(rt.contract_id)) {
      TrySettle(&rt);
      TrackSettlement(&rt);
    }
  }
}

chain::Amount Ac3wnSwapEngine::ExtraFees() const {
  // Section 6.2: AC3WN additionally pays for SCw's deployment and one state
  // change — the (N+1)/N overhead.
  const chain::ChainParams& witness_params =
      env()->blockchain(witness_chain_)->params();
  chain::Amount fees = 0;
  if (scw_confirmed_) fees += witness_params.deploy_fee;
  if (decided_state_.has_value()) fees += witness_params.call_fee;
  return fees;
}

void Ac3wnSwapEngine::FillVerdict(SwapReport* report) const {
  report->committed =
      decided_state_.has_value() &&
      *decided_state_ == contracts::WitnessState::kRedeemAuthorized;
  report->aborted =
      decided_state_.has_value() &&
      *decided_state_ == contracts::WitnessState::kRefundAuthorized;
}

}  // namespace ac3::protocols
