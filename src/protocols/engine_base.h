// The shared reactive protocol-engine substrate.
//
// Every atomic-commitment engine in this repo has the same operational
// skeleton: publish transactions on simulated chains, wait for them to be
// confirmed at depth k, re-gossip what has not landed, watch deadlines and
// patience windows, survive participant crashes, and assemble a SwapReport.
// The seed implemented that skeleton three times as fixed-interval polling
// loops (one `Poll()` rescheduled every ~25 ms per engine). This base class
// implements it once, *reactively*:
//
//   * the engine's `Step()` — its protocol state machine — runs only when
//     something it watches changes: a canonical head moves on a watched
//     chain (Blockchain::SubscribeHead), a participant's connectivity
//     changes (Network::SubscribeConnectivity), a requested timer fires
//     (resubmission intervals, patience windows, timelocks), or a network
//     message addressed to the engine arrives;
//   * wakes are coalesced: any number of triggers at one instant execute
//     `Step()` once, as an ordinary deterministic simulation event.
//
// Event counts per world drop from O(duration / poll_interval x engines)
// to O(blocks + messages + retries) — the block interval, not an arbitrary
// polling constant, is the natural granularity of chain observation.
//
// The ChainWatcher portion (confirmation tracking, deploy re-gossip,
// settlement detection, report assembly) operates on the `EdgeState`
// common prefix that every engine's per-edge runtime extends.

#ifndef AC3_PROTOCOLS_ENGINE_BASE_H_
#define AC3_PROTOCOLS_ENGINE_BASE_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/environment.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/messages.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"

/// The swap protocol engines (Herlihy HTLC, AC3TW, AC3WN) and their
/// shared reactive substrate.
namespace ac3::protocols {

/// Protocol phases at which a scheduled coordinator crash can fire (the
/// sweep grid's FailureMode::kCrashCoordinatorAt* schedules). Time-based
/// injection (sim::FailureInjector) cannot hit an exact protocol phase, so
/// engines fire these themselves through
/// SwapEngineBase::MaybeCrashCoordinator at their phase anchors.
enum class CoordinatorCrashPhase {
  kNone,       ///< No scheduled crash.
  kAtPrepare,  ///< As the coordinator finishes driving the prepare phase.
  kAtCommit,   ///< At the commit point, before the decision propagates.
};

/// Stable lowercase name ("at_prepare"), used in report phase labels.
const char* CoordinatorCrashPhaseName(CoordinatorCrashPhase phase);

/// A phase-precise crash schedule for a protocol's coordinating node (the
/// HTLC leader, Trent, AC3WN's registrar, the quorum-commit coordinator).
struct CoordinatorCrashPlan {
  /// Which phase anchor triggers the crash; kNone disables the plan.
  CoordinatorCrashPhase phase = CoordinatorCrashPhase::kNone;
  /// Recovery delay after the crash fires; negative = never recovers (the
  /// blocking-vs-nonblocking separation study's setting).
  Duration recover_after = -1;
};

/// Chain-observation knobs every engine shares.
struct WatchConfig {
  /// Confirmations before a transaction counts as publicly recognized.
  uint32_t confirm_depth = 1;
  /// Re-gossip an unconfirmed transaction / unanswered request after this
  /// long.
  Duration resubmit_interval = Seconds(2);
};

/// The reactive skeleton shared by every atomic-commitment engine:
/// confirmation tracking at depth k, deploy re-gossip, patience/timelock
/// timers, crash-aware actors, and SwapReport assembly, driving the
/// engine-specific Step() state machine on coalesced chain/connectivity/
/// timer wakes (see the file comment). Engines subclass, implement the
/// hooks, and never poll.
class SwapEngineBase {
 public:
  /// Engines hold subscriptions keyed to `this`: not copyable.
  SwapEngineBase(const SwapEngineBase&) = delete;
  /// Engines hold subscriptions keyed to `this`: not assignable.
  SwapEngineBase& operator=(const SwapEngineBase&) = delete;
  /// Cancels every chain/connectivity subscription the engine holds.
  virtual ~SwapEngineBase();

  /// Validates the graph, runs the engine-specific `OnStart()`, then wires
  /// the reactive wake sources (every edge chain's head, connectivity) and
  /// schedules the first step; returns immediately.
  Status Start();

  /// True once the engine reached its verdict and finalized the report.
  bool Done() const { return done_; }
  /// The (finalized when Done) swap report.
  const SwapReport& report() const { return report_; }

  /// Start() + run the simulation until done or `deadline`; finalizes and
  /// returns the report.
  Result<SwapReport> Run(TimePoint deadline);

 protected:
  /// Per-edge runtime state common to every protocol; engines extend it
  /// with protocol-specific fields and expose their vector via `Edge()`.
  struct EdgeState {
    graph::Ac2tEdge edge;          ///< The AC2T edge this state tracks.
    crypto::Hash256 contract_id;   ///< Deployed contract id on the edge chain.
    /// Built once, re-gossiped on retries (rebuilding would re-reserve the
    /// sender's wallet funds).
    chain::Transaction deploy_tx;
    bool deploy_built = false;      ///< deploy_tx holds a signed transaction.
    TimePoint last_submit = -1;     ///< Last deploy gossip (retry pacing).
    bool publish_confirmed = false; ///< Deploy canonical at confirm_depth.
    /// Settlement call, same build-once discipline.
    chain::Transaction settle_tx;
    bool settle_built = false;        ///< settle_tx holds a signed call.
    bool settle_submitted = false;    ///< Settlement gossiped at least once.
    TimePoint last_settle_submit = -1;///< Last settlement gossip.
    bool settled = false;             ///< A settle call is confirmed on-chain.
    EdgeOutcome outcome = EdgeOutcome::kUnpublished;  ///< Final edge verdict.
    TimePoint publish_submitted_at = -1;  ///< First deploy gossip instant.
    TimePoint published_at = -1;          ///< Deploy confirmation instant.
    TimePoint settled_at = -1;            ///< Settlement confirmation instant.
  };

  /// Wires the engine over `env`'s world: the swap `graph`, the
  /// participant actors (graph vertex order), the shared observation
  /// knobs, and the protocol name stamped into the report.
  SwapEngineBase(core::Environment* env, graph::Ac2tGraph graph,
                 std::vector<Participant*> participants, WatchConfig watch,
                 std::string protocol_name);

  // ---- engine-specific hooks --------------------------------------------

  /// Protocol setup after common validation (multisigning, edge runtime
  /// construction, extra chain watches, initial timers). `start_time()` is
  /// already set.
  virtual Status OnStart() = 0;
  /// The protocol state machine, run once per coalesced wake. Must be
  /// idempotent: it observes chain/network/timer state and advances
  /// whatever can advance.
  virtual void Step() = 0;
  /// Terminal condition, evaluated after every Step.
  virtual bool IsComplete() const = 0;
  /// The engine's per-edge runtimes, exposed through their common prefix.
  virtual size_t EdgeCount() const = 0;
  /// Mutable access to the i-th edge runtime (graph edge order).
  virtual EdgeState* Edge(size_t i) = 0;
  /// Const access to the i-th edge runtime.
  const EdgeState* Edge(size_t i) const {
    return const_cast<SwapEngineBase*>(this)->Edge(i);
  }
  /// Fills the report's committed/aborted verdict during finalize.
  virtual void FillVerdict(SwapReport* report) const = 0;
  /// Protocol fees beyond the per-edge deploy+settle (e.g. SCw's).
  virtual chain::Amount ExtraFees() const { return 0; }
  /// Called when an edge's settlement is first observed confirmed.
  virtual void OnEdgeSettled(EdgeState* edge) { (void)edge; }
  /// Typed protocol messages that survived HandleMessage's fencing,
  /// dispatched on kind/receiver. Engines that exchange off-chain messages
  /// (AC3TW, QuorumCommit) override; the purely on-chain engines keep the
  /// no-op default.
  virtual void OnMessage(const proto::Message& msg) { (void)msg; }
  /// Epoch fence floor: deliveries with msg.epoch below this are discarded
  /// before OnMessage. Default 0 (single-round protocols never fence); the
  /// quorum engine returns its current epoch so a takeover retires the old
  /// round's in-flight traffic.
  virtual uint64_t MessageEpochFloor() const { return 0; }

  // ---- wake plumbing -----------------------------------------------------

  /// Wakes the engine whenever `id`'s canonical head moves. Edge chains are
  /// watched automatically by Start(); engines add extra chains (e.g. the
  /// witness chain) from OnStart().
  void WatchChain(chain::ChainId id);
  /// Schedules a coalesced Step at the current instant.
  void ScheduleStep();
  /// Schedules a Step at absolute time `at` (deduplicated per instant);
  /// `at` in the past degrades to ScheduleStep().
  void RequestWakeAt(TimePoint at);
  /// RequestWakeAt(Now + resubmit_interval): the retry heartbeat after any
  /// submission or request attempt.
  void RequestResubmitWake();

  // ---- typed protocol messages ------------------------------------------

  /// Sends `msg` on the network's typed path. Stamps the envelope's
  /// per-engine sequence number (the duplicate fence's identity), routes
  /// delivery back through HandleMessage, and charges the report's
  /// per-swap message/byte counters. Loss recovery is the caller's pacing
  /// discipline: pace the send with PaceResend and Step() re-sends until
  /// the exchange is answered.
  void SendProtocolMessage(proto::Message msg);

  /// Delivery entry point for typed messages: fences exact duplicates of
  /// an already handled send (same seq — fault-injected re-deliveries) and
  /// stale epochs (msg.epoch < MessageEpochFloor()), then dispatches to
  /// OnMessage. Tests inject envelopes through a subclass.
  void HandleMessage(const proto::Message& msg);

  /// Resend-on-timeout helper — the shared pacing discipline of every
  /// unanswered exchange (registration, decision requests, broadcast
  /// rounds, settle gossip): true when `*last_attempt` is unset (< 0) or
  /// at least resubmit_interval old, in which case it is stamped to now
  /// and the retry heartbeat is armed so Step() runs again to re-send.
  bool PaceResend(TimePoint* last_attempt);

  // ---- ChainWatcher helpers ---------------------------------------------

  /// True when `tx_id` is canonical on `chain` and buried >= `depth`.
  bool TxConfirmedAtDepth(const chain::Blockchain* chain,
                          const crypto::Hash256& tx_id, uint32_t depth) const;

  /// Marks the edge publicly recognized once its deploy is canonical at
  /// confirm_depth.
  void TrackPublishConfirmation(EdgeState* edge);

  /// Detects a confirmed redeem/refund call on the edge's contract, sets
  /// settled/outcome/settled_at and fires OnEdgeSettled.
  void TrackSettlement(EdgeState* edge);

  /// Re-gossips the edge's built deploy transaction from `sender` when the
  /// resubmit interval has elapsed, and arms the retry heartbeat.
  void GossipDeploy(EdgeState* edge, Participant* sender);

  /// True when every edge's deploy is publicly recognized.
  bool AllPublished() const;

  /// First participant that is currently up, if any.
  Participant* FirstLiveParticipant() const;

  /// Arms the coordinator-crash schedule; engines call this from their
  /// constructor with their config's plan (default kNone = no-op).
  void SetCoordinatorCrashPlan(const CoordinatorCrashPlan& plan) {
    coordinator_crash_plan_ = plan;
  }
  /// The armed schedule (engines may consult recover_after).
  const CoordinatorCrashPlan& coordinator_crash_plan() const {
    return coordinator_crash_plan_;
  }
  /// Fires the armed crash schedule when `phase` matches and it has not
  /// fired yet: crashes `node` immediately, stamps a report phase, and
  /// schedules the optional recovery. Returns true when the crash fired on
  /// THIS call, so the caller can abandon the action the now-dead
  /// coordinator was about to take. Safe to call from inside Step():
  /// connectivity listeners triggered by the crash only schedule wakes.
  bool MaybeCrashCoordinator(CoordinatorCrashPhase phase, sim::NodeId node);

  /// Edge reports, fee accounting, end time, and the engine verdict.
  void FinalizeReport();

  // ---- shared state accessors -------------------------------------------

  core::Environment* env() const { return env_; }       ///< The world.
  const graph::Ac2tGraph& graph() const { return graph_; }  ///< Swap graph.
  /// All participant actors, in graph vertex order.
  const std::vector<Participant*>& participants() const {
    return participants_;
  }
  /// The actor at graph vertex `v`.
  Participant* participant(uint32_t v) const { return participants_[v]; }
  const WatchConfig& watch() const { return watch_; }  ///< Observation knobs.
  TimePoint start_time() const { return start_time_; } ///< Set by Start().
  bool started() const { return started_; }            ///< Start() ran OK.
  SwapReport* mutable_report() { return &report_; }    ///< Report being built.

 private:
  void RunStep();

  core::Environment* env_;
  graph::Ac2tGraph graph_;
  std::vector<Participant*> participants_;
  WatchConfig watch_;

  /// Subscriptions to cancel on destruction.
  std::vector<std::pair<chain::ChainId, chain::Blockchain::SubscriptionId>>
      head_subscriptions_;
  std::set<chain::ChainId> watched_chains_;
  sim::Network::SubscriptionId connectivity_subscription_ = 0;
  bool connectivity_subscribed_ = false;

  /// Coalescing state: at most one immediate step event and one timer per
  /// distinct wake instant are ever queued. A timer that fires routes
  /// through ScheduleStep(), so mixed timer+immediate wakes at one instant
  /// still execute Step() once. Fired timers erase their own map entry;
  /// the immediate-step handle slot is reused — outstanding handles stay
  /// bounded by pending wakes, not by wakes ever scheduled.
  bool step_pending_ = false;
  sim::EventHandle step_handle_;
  std::map<TimePoint, sim::EventHandle> pending_wakes_;

  /// Stamped into each sent envelope; the duplicate fence's identity.
  uint64_t next_message_seq_ = 1;
  /// Seqs already dispatched — a second delivery of the same send (a
  /// fault-injected duplicate) is fenced. Resends are distinct sends with
  /// fresh seqs, so they pass.
  std::set<uint64_t> seen_message_seqs_;

  TimePoint start_time_ = 0;
  bool started_ = false;
  bool done_ = false;
  CoordinatorCrashPlan coordinator_crash_plan_;
  bool coordinator_crash_fired_ = false;
  SwapReport report_;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_ENGINE_BASE_H_
