#include "src/protocols/participant.h"

namespace ac3::protocols {

Participant::Participant(std::string name, uint64_t key_seed,
                         core::Environment* env)
    : name_(std::move(name)),
      key_(crypto::KeyPair::FromSeed(key_seed)),
      env_(env),
      node_(env->AddUserNode(name_)) {}

bool Participant::IsUp() const { return env_->network()->IsUp(node_); }

chain::Wallet* Participant::WalletFor(chain::ChainId id) {
  auto it = wallets_.find(id);
  if (it == wallets_.end()) {
    it = wallets_.emplace(id, std::make_unique<chain::Wallet>(key_, id)).first;
  }
  return it->second.get();
}

chain::Amount Participant::BalanceOn(chain::ChainId id) const {
  return env_->blockchain(id)->StateAtHead().BalanceOf(pk());
}

Result<crypto::Hash256> Participant::SubmitTransfer(
    chain::ChainId id, const crypto::PublicKey& to, chain::Amount amount,
    chain::Amount fee) {
  if (!IsUp()) return Status::Unavailable(name_ + " is crashed");
  AC3_ASSIGN_OR_RETURN(
      chain::Transaction tx,
      WalletFor(id)->BuildTransfer(env_->blockchain(id)->StateAtHead(), to,
                                   amount, fee, NextNonce()));
  env_->SubmitTransaction(node_, id, tx);
  return tx.Id();
}

Result<crypto::Hash256> Participant::SubmitDeploy(
    chain::ChainId id, const std::string& kind, const Bytes& payload,
    chain::Amount locked_value, chain::Amount fee) {
  if (!IsUp()) return Status::Unavailable(name_ + " is crashed");
  AC3_ASSIGN_OR_RETURN(
      chain::Transaction tx,
      WalletFor(id)->BuildDeploy(env_->blockchain(id)->StateAtHead(), kind,
                                 payload, locked_value, fee, NextNonce()));
  env_->SubmitTransaction(node_, id, tx);
  return tx.Id();
}

Result<crypto::Hash256> Participant::SubmitCall(
    chain::ChainId id, const crypto::Hash256& contract_id,
    const std::string& function, const Bytes& args, chain::Amount fee) {
  if (!IsUp()) return Status::Unavailable(name_ + " is crashed");
  AC3_ASSIGN_OR_RETURN(
      chain::Transaction tx,
      WalletFor(id)->BuildCall(env_->blockchain(id)->StateAtHead(),
                               contract_id, function, args, fee, NextNonce()));
  env_->SubmitTransaction(node_, id, tx);
  return tx.Id();
}

}  // namespace ac3::protocols
