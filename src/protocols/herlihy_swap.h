// The HTLC baselines: Nolan's two-party atomic swap and Herlihy's
// single-leader generalization (Section 1; evaluated against AC3WN in
// Section 6).
//
// Protocol sketch (single leader L):
//   * L creates a secret s and hashlock h = H(s).
//   * Sequential publish phase: L publishes its outgoing HTLCs; every other
//     participant publishes its outgoing HTLCs only after all of its
//     incoming HTLCs are confirmed — Diam(D) sequential rounds (Figure 8).
//   * Sequential redeem phase: once every contract is confirmed, L redeems
//     its incoming contracts, revealing s on-chain. A participant that
//     observes s (a redeem call on one of its outgoing contracts) redeems
//     its own incoming contracts — another Diam(D) sequential rounds.
//   * Timelocks decrease along the publish order (t2 < t1 in the paper's
//     two-party walkthrough); a sender refunds after its timelock expires.
//
// The engine is event-driven over the simulated chains: it polls canonical
// chain state, so network delays, forks, and participant crashes shape what
// actually happens — including the paper's motivating atomicity violation
// (a crashed recipient misses its timelock and the sender refunds).
//
// Graphs that are not single-leader feasible (Figure 7) are rejected at
// Start() — the functional gap AC3WN closes (Section 5.3).

#ifndef AC3_PROTOCOLS_HERLIHY_SWAP_H_
#define AC3_PROTOCOLS_HERLIHY_SWAP_H_

#include <vector>

#include "src/core/environment.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"

namespace ac3::protocols {

struct HtlcConfig {
  /// Δ: "enough time for any participant to publish a smart contract ...
  /// and for this change to be publicly recognized" (Section 6.1).
  Duration delta = Seconds(3);
  /// Confirmations before a contract counts as publicly recognized.
  uint32_t confirm_depth = 1;
  Duration poll_interval = Milliseconds(25);
  /// Re-gossip an unconfirmed transaction after this long.
  Duration resubmit_interval = Seconds(2);
};

class HerlihySwapEngine {
 public:
  /// `participants[i]` plays graph vertex i.
  HerlihySwapEngine(core::Environment* env, graph::Ac2tGraph graph,
                    std::vector<Participant*> participants, HtlcConfig config);

  /// Validates feasibility (single leader, reachability) and schedules the
  /// protocol; returns immediately.
  Status Start();

  bool Done() const { return done_; }
  const SwapReport& report() const { return report_; }

  /// Start() + run the simulation until done or `deadline`; finalizes and
  /// returns the report.
  Result<SwapReport> Run(TimePoint deadline);

  uint32_t leader() const { return leader_; }
  const Bytes& secret() const { return secret_; }

 private:
  struct EdgeRt {
    graph::Ac2tEdge edge;
    uint32_t publish_step = 0;
    TimePoint timelock = 0;
    crypto::Hash256 contract_id;
    chain::Transaction deploy_tx;
    bool deploy_built = false;
    TimePoint last_submit = -1;
    bool publish_confirmed = false;
    bool redeem_submitted = false;
    bool refund_submitted = false;
    bool settled = false;
    EdgeOutcome outcome = EdgeOutcome::kUnpublished;
    TimePoint publish_submitted_at = -1;
    TimePoint published_at = -1;
    TimePoint settled_at = -1;
  };

  void Poll();
  /// True when vertex u may publish its outgoing contracts.
  bool MayPublish(uint32_t u) const;
  void TryPublish(EdgeRt* rt);
  void TrackPublishConfirmation(EdgeRt* rt);
  void TrySettle(EdgeRt* rt);
  void TrackSettlement(EdgeRt* rt);
  void ObserveSecrets();
  bool AllPublished() const;
  void CheckDone();
  void FinalizeReport();

  core::Environment* env_;
  graph::Ac2tGraph graph_;
  std::vector<Participant*> participants_;
  HtlcConfig config_;

  uint32_t leader_ = 0;
  Bytes secret_;
  crypto::Hash256 hashlock_;
  std::vector<EdgeRt> edges_;
  std::vector<bool> knows_secret_;
  TimePoint start_time_ = 0;
  TimePoint max_timelock_ = 0;
  bool started_ = false;
  bool done_ = false;
  bool reveal_marked_ = false;
  SwapReport report_;
};

/// Nolan's protocol is the two-party instance of the engine (the paper
/// presents them separately; the mechanics coincide for |V| = 2).
HerlihySwapEngine MakeNolanTwoPartySwap(core::Environment* env,
                                        const graph::Ac2tGraph& graph,
                                        Participant* alice, Participant* bob,
                                        HtlcConfig config);

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_HERLIHY_SWAP_H_
