// The HTLC baselines: Nolan's two-party atomic swap and Herlihy's
// single-leader generalization (Section 1; evaluated against AC3WN in
// Section 6).
//
// Protocol sketch (single leader L):
//   * L creates a secret s and hashlock h = H(s).
//   * Sequential publish phase: L publishes its outgoing HTLCs; every other
//     participant publishes its outgoing HTLCs only after all of its
//     incoming HTLCs are confirmed — Diam(D) sequential rounds (Figure 8).
//   * Sequential redeem phase: once every contract is confirmed, L redeems
//     its incoming contracts, revealing s on-chain. A participant that
//     observes s (a redeem call on one of its outgoing contracts) redeems
//     its own incoming contracts — another Diam(D) sequential rounds.
//   * Timelocks decrease along the publish order (t2 < t1 in the paper's
//     two-party walkthrough); a sender refunds after its timelock expires.
//
// The engine is a thin state machine over the reactive SwapEngineBase
// substrate: it advances when a watched chain's canonical head moves, a
// participant's connectivity changes, or a retry/timelock timer fires — so
// network delays, forks, and participant crashes shape what actually
// happens, including the paper's motivating atomicity violation (a crashed
// recipient misses its timelock and the sender refunds).
//
// Graphs that are not single-leader feasible (Figure 7) are rejected at
// Start() — the functional gap AC3WN closes (Section 5.3).

#ifndef AC3_PROTOCOLS_HERLIHY_SWAP_H_
#define AC3_PROTOCOLS_HERLIHY_SWAP_H_

#include <vector>

#include "src/core/environment.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/engine_base.h"
#include "src/protocols/participant.h"
#include "src/protocols/swap_report.h"

namespace ac3::protocols {

struct HtlcConfig {
  /// Δ: "enough time for any participant to publish a smart contract ...
  /// and for this change to be publicly recognized" (Section 6.1).
  Duration delta = Seconds(3);
  /// Confirmations before a contract counts as publicly recognized.
  uint32_t confirm_depth = 1;
  /// Re-gossip an unconfirmed transaction after this long.
  Duration resubmit_interval = Seconds(2);
  /// Phase-precise crash schedule for the leader (the HTLC coordinator):
  /// kAtPrepare fires once the leader's outgoing contracts are all handed
  /// to the network (its funds are committed); kAtCommit fires when every
  /// contract is publicly recognized, before the leader redeems (so the
  /// secret s is never revealed). Either strands the leader's outgoing
  /// contracts when it never recovers — the blocking behavior the
  /// quorum-commit study measures.
  CoordinatorCrashPlan coordinator_crash;
};

class HerlihySwapEngine : public SwapEngineBase {
 public:
  /// `participants[i]` plays graph vertex i.
  HerlihySwapEngine(core::Environment* env, graph::Ac2tGraph graph,
                    std::vector<Participant*> participants, HtlcConfig config);

  uint32_t leader() const { return leader_; }
  const Bytes& secret() const { return secret_; }

 protected:
  Status OnStart() override;
  void Step() override;
  bool IsComplete() const override;
  size_t EdgeCount() const override { return edges_.size(); }
  EdgeState* Edge(size_t i) override { return &edges_[i]; }
  void FillVerdict(SwapReport* report) const override;
  void OnEdgeSettled(EdgeState* edge) override;

 private:
  struct EdgeRt : EdgeState {
    uint32_t publish_step = 0;
    TimePoint timelock = 0;
    bool redeem_submitted = false;
    bool refund_submitted = false;
  };

  /// True when vertex u may publish its outgoing contracts.
  bool MayPublish(uint32_t u) const;
  void TryPublish(EdgeRt* rt);
  void TrySettle(EdgeRt* rt);
  void ObserveSecrets();
  /// Fires the configured coordinator-crash schedule at its phase anchor.
  void MaybeCrashLeader();

  HtlcConfig config_;
  uint32_t leader_ = 0;
  Bytes secret_;
  crypto::Hash256 hashlock_;
  std::vector<EdgeRt> edges_;
  std::vector<bool> knows_secret_;
  TimePoint max_timelock_ = 0;
  /// When even never-published edges stop being waited for (IsComplete).
  TimePoint give_up_time_ = 0;
  bool reveal_marked_ = false;
};

/// Nolan's protocol is the two-party instance of the engine (the paper
/// presents them separately; the mechanics coincide for |V| = 2).
HerlihySwapEngine MakeNolanTwoPartySwap(core::Environment* env,
                                        const graph::Ac2tGraph& graph,
                                        Participant* alice, Participant* bob,
                                        HtlcConfig config);

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_HERLIHY_SWAP_H_
