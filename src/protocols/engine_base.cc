#include "src/protocols/engine_base.h"

#include <algorithm>

#include "src/contracts/atomic_swap_contract.h"

namespace ac3::protocols {

const char* CoordinatorCrashPhaseName(CoordinatorCrashPhase phase) {
  switch (phase) {
    case CoordinatorCrashPhase::kNone:
      return "none";
    case CoordinatorCrashPhase::kAtPrepare:
      return "at_prepare";
    case CoordinatorCrashPhase::kAtCommit:
      return "at_commit";
  }
  return "?";
}

SwapEngineBase::SwapEngineBase(core::Environment* env, graph::Ac2tGraph graph,
                               std::vector<Participant*> participants,
                               WatchConfig watch, std::string protocol_name)
    : env_(env),
      graph_(std::move(graph)),
      participants_(std::move(participants)),
      watch_(watch) {
  report_.protocol = std::move(protocol_name);
}

SwapEngineBase::~SwapEngineBase() {
  for (const auto& [chain_id, subscription] : head_subscriptions_) {
    chain::Blockchain* chain = env_->blockchain(chain_id);
    if (chain != nullptr) chain->UnsubscribeHead(subscription);
  }
  if (connectivity_subscribed_) {
    env_->network()->UnsubscribeConnectivity(connectivity_subscription_);
  }
  // Cancel queued wakes so a destroyed engine is never called back (other
  // engines may keep running the same simulation afterwards).
  step_handle_.Cancel();
  for (auto& [at, handle] : pending_wakes_) handle.Cancel();
}

Status SwapEngineBase::Start() {
  AC3_RETURN_IF_ERROR(graph_.Validate());
  if (participants_.size() != graph_.participant_count()) {
    return Status::InvalidArgument("participant list does not match graph");
  }

  start_time_ = env_->sim()->Now();
  report_.start_time = start_time_;

  AC3_RETURN_IF_ERROR(OnStart());

  // Wake sources: every chain an edge lives on, plus connectivity changes
  // (a recovered participant must act on what it missed). Engines add
  // extra chains (e.g. the witness chain) from OnStart().
  for (const graph::Ac2tEdge& e : graph_.edges()) WatchChain(e.chain_id);
  connectivity_subscription_ = env_->network()->SubscribeConnectivity(
      [this](sim::NodeId) { ScheduleStep(); });
  connectivity_subscribed_ = true;

  started_ = true;
  ScheduleStep();
  return Status::OK();
}

void SwapEngineBase::WatchChain(chain::ChainId id) {
  if (watched_chains_.count(id) > 0) return;
  chain::Blockchain* chain = env_->blockchain(id);
  if (chain == nullptr) return;
  watched_chains_.insert(id);
  head_subscriptions_.emplace_back(
      id, chain->SubscribeHead(
              [this](const chain::BlockEntry&) { ScheduleStep(); }));
}

void SwapEngineBase::ScheduleStep() {
  if (done_ || step_pending_) return;
  step_pending_ = true;
  step_handle_ = env_->sim()->After(0, [this]() {
    step_pending_ = false;
    RunStep();
  });
}

void SwapEngineBase::RequestWakeAt(TimePoint at) {
  const TimePoint now = env_->sim()->Now();
  if (at <= now) {
    ScheduleStep();
    return;
  }
  if (done_ || pending_wakes_.count(at) > 0) return;
  pending_wakes_.emplace(at, env_->sim()->At(at, [this, at]() {
    pending_wakes_.erase(at);
    // Route through the coalescer: if an immediate step is already queued
    // at this instant, this timer must not run Step() a second time.
    ScheduleStep();
  }));
}

void SwapEngineBase::RequestResubmitWake() {
  RequestWakeAt(env_->sim()->Now() + watch_.resubmit_interval);
}

void SwapEngineBase::SendProtocolMessage(proto::Message msg) {
  msg.seq = next_message_seq_++;
  report_.messages_sent += 1;
  report_.message_bytes_sent += static_cast<int64_t>(msg.EncodedSize());
  env_->network()->SendMessage(
      msg, [this](const proto::Message& m) { HandleMessage(m); });
}

void SwapEngineBase::HandleMessage(const proto::Message& msg) {
  // A finished engine fences everything: its verdict is final and late
  // traffic must not mutate the report.
  if (done_) {
    report_.messages_fenced += 1;
    return;
  }
  // Duplicate fence: each *send* is dispatched at most once. A second copy
  // (fault-injected duplication shares the original's seq) is dropped; a
  // resend is a fresh send with a fresh seq, so it passes.
  if (!seen_message_seqs_.insert(msg.seq).second) {
    report_.messages_fenced += 1;
    return;
  }
  // Epoch fence: traffic from a retired round (e.g. pre-takeover quorum
  // broadcasts) is discarded before the engine sees it.
  if (msg.epoch < MessageEpochFloor()) {
    report_.messages_fenced += 1;
    return;
  }
  report_.messages_delivered += 1;
  OnMessage(msg);
}

bool SwapEngineBase::PaceResend(TimePoint* last_attempt) {
  const TimePoint now = env_->sim()->Now();
  if (*last_attempt >= 0 &&
      now - *last_attempt < watch_.resubmit_interval) {
    return false;
  }
  *last_attempt = now;
  RequestResubmitWake();
  return true;
}

void SwapEngineBase::RunStep() {
  if (done_ || !started_) return;
  Step();
  if (IsComplete()) done_ = true;
}

bool SwapEngineBase::TxConfirmedAtDepth(const chain::Blockchain* chain,
                                        const crypto::Hash256& tx_id,
                                        uint32_t depth) const {
  auto location = chain->FindTx(tx_id);
  if (!location.has_value()) return false;
  auto confirmations = chain->ConfirmationsOf(location->entry->hash);
  return confirmations.has_value() && *confirmations >= depth;
}

void SwapEngineBase::TrackPublishConfirmation(EdgeState* edge) {
  const chain::Blockchain* chain = env_->blockchain(edge->edge.chain_id);
  if (!TxConfirmedAtDepth(chain, edge->contract_id, watch_.confirm_depth)) {
    return;
  }
  edge->publish_confirmed = true;
  edge->published_at = env_->sim()->Now();
}

void SwapEngineBase::TrackSettlement(EdgeState* edge) {
  const chain::Blockchain* chain = env_->blockchain(edge->edge.chain_id);
  for (const char* function :
       {contracts::kRedeemFunction, contracts::kRefundFunction}) {
    auto call = chain->FindCall(edge->contract_id, function,
                                /*require_success=*/true);
    if (!call.has_value()) continue;
    auto confirmations = chain->ConfirmationsOf(call->entry->hash);
    if (!confirmations.has_value() ||
        *confirmations < watch_.confirm_depth) {
      continue;
    }
    edge->settled = true;
    edge->settled_at = env_->sim()->Now();
    edge->outcome = function == std::string(contracts::kRedeemFunction)
                        ? EdgeOutcome::kRedeemed
                        : EdgeOutcome::kRefunded;
    OnEdgeSettled(edge);
    return;
  }
}

void SwapEngineBase::GossipDeploy(EdgeState* edge, Participant* sender) {
  const TimePoint now = env_->sim()->Now();
  if (edge->last_submit >= 0 &&
      now - edge->last_submit < watch_.resubmit_interval) {
    return;
  }
  env_->SubmitTransaction(sender->node(), edge->edge.chain_id,
                          edge->deploy_tx);
  edge->last_submit = now;
  RequestResubmitWake();
}

bool SwapEngineBase::AllPublished() const {
  for (size_t i = 0; i < EdgeCount(); ++i) {
    if (!Edge(i)->publish_confirmed) return false;
  }
  return true;
}

Participant* SwapEngineBase::FirstLiveParticipant() const {
  for (Participant* p : participants_) {
    if (p->IsUp()) return p;
  }
  return nullptr;
}

bool SwapEngineBase::MaybeCrashCoordinator(CoordinatorCrashPhase phase,
                                           sim::NodeId node) {
  if (coordinator_crash_fired_ || phase == CoordinatorCrashPhase::kNone ||
      coordinator_crash_plan_.phase != phase) {
    return false;
  }
  coordinator_crash_fired_ = true;
  report_.MarkPhase(
      std::string("coordinator_crash_") + CoordinatorCrashPhaseName(phase),
      env_->sim()->Now());
  env_->network()->Crash(node);
  if (coordinator_crash_plan_.recover_after >= 0) {
    // The recovery event captures the world, not the engine — the engine
    // may be destroyed before a long recovery fires.
    core::Environment* env = env_;
    env_->sim()->After(coordinator_crash_plan_.recover_after,
                       [env, node]() { env->network()->Recover(node); });
  }
  return true;
}

void SwapEngineBase::FinalizeReport() {
  report_.finished = done_;
  report_.edges.clear();
  TimePoint last_settle = -1;
  chain::Amount fees = 0;
  for (size_t i = 0; i < EdgeCount(); ++i) {
    const EdgeState* rt = Edge(i);
    EdgeReport edge;
    edge.edge = rt->edge;
    edge.contract_id = rt->contract_id;
    edge.outcome = rt->outcome;
    edge.publish_submitted_at = rt->publish_submitted_at;
    edge.published_at = rt->published_at;
    edge.settled_at = rt->settled_at;
    report_.edges.push_back(edge);
    last_settle = std::max(last_settle, rt->settled_at);
    const chain::ChainParams& params =
        env_->blockchain(rt->edge.chain_id)->params();
    if (rt->publish_confirmed) fees += params.deploy_fee;
    if (rt->settled) fees += params.call_fee;
  }
  report_.total_fees = fees + ExtraFees();
  report_.end_time = last_settle >= 0 ? last_settle : env_->sim()->Now();
  FillVerdict(&report_);
}

Result<SwapReport> SwapEngineBase::Run(TimePoint deadline) {
  if (!started_) {
    AC3_RETURN_IF_ERROR(Start());
  }
  (void)env_->sim()->RunUntilCondition([this]() { return done_; }, deadline);
  FinalizeReport();
  return report_;
}

}  // namespace ac3::protocols
