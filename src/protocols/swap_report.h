// SwapReport: the per-run outcome record every experiment consumes.
//
// Captures what happened to each edge's contract, the phase timestamps the
// latency evaluation (Section 6.1) plots, the fees the cost evaluation
// (Section 6.2) sums, and — most importantly — the atomicity verdict: an
// AC2T is atomic iff it is NOT the case that some contract was redeemed
// while another was refunded (or stranded after a commit).

#ifndef AC3_PROTOCOLS_SWAP_REPORT_H_
#define AC3_PROTOCOLS_SWAP_REPORT_H_

#include <string>
#include <vector>

#include "src/chain/params.h"
#include "src/common/sim_time.h"
#include "src/crypto/hash256.h"
#include "src/graph/ac2t_graph.h"

namespace ac3::protocols {

enum class EdgeOutcome {
  kUnpublished,  ///< The sender never published the contract.
  kPublished,    ///< Locked but neither redeemed nor refunded (stranded).
  kRedeemed,
  kRefunded,
};

const char* EdgeOutcomeName(EdgeOutcome outcome);

struct EdgeReport {
  graph::Ac2tEdge edge;
  crypto::Hash256 contract_id;           ///< Zero if never published.
  EdgeOutcome outcome = EdgeOutcome::kUnpublished;
  TimePoint publish_submitted_at = -1;   ///< Deploy handed to the network.
  TimePoint published_at = -1;           ///< Deploy confirmed on chain.
  TimePoint settled_at = -1;             ///< Redeem/refund confirmed.
};

struct SwapReport {
  std::string protocol;
  /// The engine reached a terminal verdict before its deadline.
  bool finished = false;
  /// Commit decision reached (all-redeem path chosen).
  bool committed = false;
  /// Abort decision reached (all-refund path chosen).
  bool aborted = false;

  std::vector<EdgeReport> edges;

  TimePoint start_time = 0;
  /// When the commit/abort decision became effective (Trent's signature,
  /// SCw's buried state change, or the leader's secret release).
  TimePoint decision_time = -1;
  /// When the last contract settled.
  TimePoint end_time = -1;

  /// Total transaction fees paid by participants for this AC2T.
  chain::Amount total_fees = 0;

  /// Typed protocol messages the engine sent for this swap (registration,
  /// decision requests/replies, pre-commit rounds — NOT transaction
  /// gossip, which is charged to the network's per-node counters). The
  /// per-protocol message-overhead study checks these against closed-form
  /// counts at zero loss.
  int64_t messages_sent = 0;
  /// Sum of the sent envelopes' EncodedSize() — the swap's wire bytes.
  int64_t message_bytes_sent = 0;
  /// Messages that re-entered the engine and were dispatched to OnMessage.
  int64_t messages_delivered = 0;
  /// Deliveries fenced before dispatch: exact duplicates of an already
  /// handled send (fault-injected re-deliveries) or stale-epoch traffic.
  int64_t messages_fenced = 0;

  /// Named phase-completion timestamps, in order — the raw data behind the
  /// Figure 8 / Figure 9 timelines.
  std::vector<std::pair<std::string, TimePoint>> phases;

  void MarkPhase(const std::string& name, TimePoint at) {
    phases.emplace_back(name, at);
  }

  /// End-to-end latency (tc - ts in the paper's Section 6.1 terms).
  Duration Latency() const { return end_time - start_time; }

  int CountOutcome(EdgeOutcome outcome) const;
  bool AllRedeemed() const;
  bool AllRefunded() const;

  /// The all-or-nothing property: violated when the published contracts
  /// settled inconsistently — some participant's asset moved while
  /// another's was returned (or stayed locked forever after a decision).
  bool AtomicityViolated() const;

  /// One-line human summary for harness output.
  std::string Summary() const;
};

}  // namespace ac3::protocols

#endif  // AC3_PROTOCOLS_SWAP_REPORT_H_
