#include "src/protocols/quorum_commit.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/centralized_contract.h"
#include "src/graph/multisig_graph.h"

namespace ac3::protocols {

QuorumCommitEngine::QuorumCommitEngine(core::Environment* env,
                                       graph::Ac2tGraph graph,
                                       std::vector<Participant*> participants,
                                       QuorumConfig config)
    : SwapEngineBase(
          env, std::move(graph), std::move(participants),
          WatchConfig{config.confirm_depth, config.resubmit_interval},
          "QuorumCommit"),
      config_(config) {
  SetCoordinatorCrashPlan(config.coordinator_crash);
}

uint32_t QuorumCommitEngine::VertexCount() const {
  return graph().participant_count();
}

uint32_t QuorumCommitEngine::CoordinatorOf(uint64_t epoch) const {
  return static_cast<uint32_t>(epoch % VertexCount());
}

int QuorumCommitEngine::quorum() const {
  return static_cast<int>(VertexCount()) / 2 + 1;
}

std::optional<crypto::CommitmentTag> QuorumCommitEngine::decision_tag() const {
  if (!decision_.has_value()) return std::nullopt;
  return decision_->tag;
}

Status QuorumCommitEngine::OnStart() {
  // Every participant multisigns (D, t) — the swap proposal.
  std::vector<crypto::KeyPair> keys;
  keys.reserve(participants().size());
  for (Participant* p : participants()) keys.push_back(p->key());
  AC3_ASSIGN_OR_RETURN(ms_, graph::SignGraph(graph(), keys));
  ms_id_ = ms_.Id();

  // The shared quorum decision key, deterministically derived from ms(D)
  // so every participant reconstructs the same key at setup time (stands
  // in for a DKG-established threshold key — see the file comment).
  quorum_key_ = crypto::KeyPair::FromSeed(ms_id_.Prefix64() ^
                                          0x71756f72756d6b65ull);

  for (const graph::Ac2tEdge& e : graph().edges()) {
    EdgeRt rt;
    rt.edge = e;
    edges_.push_back(std::move(rt));
  }
  members_.assign(VertexCount(), MemberState{});

  // Guarantee a wake when the publish patience runs out, so the abort
  // verdict is driven even if every chain has gone quiet.
  RequestWakeAt(start_time() + config_.publish_patience);
  return Status::OK();
}

void QuorumCommitEngine::TryPublish(EdgeRt* rt) {
  Participant* sender = participant(rt->edge.from);
  if (sender->behavior().decline_publish) return;
  if (!sender->IsUp()) return;
  const TimePoint now = env()->sim()->Now();

  if (!rt->deploy_built) {
    // The contract's decision commitment is (ms(D), quorum pk): redeem and
    // refund secrets are quorum-key signatures over (ms(D), RD) / (ms(D),
    // RF), so ANY holder of the signed decision can settle the edge.
    const chain::Blockchain* chain = env()->blockchain(rt->edge.chain_id);
    Bytes payload = contracts::CentralizedContract::MakeInitPayload(
        participant(rt->edge.to)->pk(), ms_id_, quorum_key_->public_key());
    auto tx = sender->WalletFor(rt->edge.chain_id)
                  ->BuildDeploy(chain->StateAtHead(),
                                contracts::kCentralizedKind, payload,
                                rt->edge.amount, chain->params().deploy_fee,
                                static_cast<uint64_t>(now) ^ rt->edge.to);
    if (!tx.ok()) {
      AC3_LOG(kWarn) << sender->name() << " cannot fund quorum contract: "
                     << tx.status().ToString();
      return;
    }
    rt->deploy_tx = *tx;
    rt->contract_id = tx->Id();
    rt->deploy_built = true;
    rt->publish_submitted_at = now;
    rt->outcome = EdgeOutcome::kPublished;
  }
  GossipDeploy(rt, sender);
}

Participant* QuorumCommitEngine::FirstLiveKnower(uint32_t* vertex_out) const {
  for (uint32_t v = 0; v < VertexCount(); ++v) {
    if (members_[v].knows_decision && participant(v)->IsUp()) {
      if (vertex_out != nullptr) *vertex_out = v;
      return participant(v);
    }
  }
  return nullptr;
}

bool QuorumCommitEngine::DecisionKnownToLiveMember() const {
  return FirstLiveKnower(nullptr) != nullptr;
}

bool QuorumCommitEngine::PaceBroadcast(TimePoint now) {
  if (last_broadcast_ >= 0 &&
      now - last_broadcast_ < config_.resubmit_interval) {
    return false;
  }
  last_broadcast_ = now;
  RequestResubmitWake();
  return true;
}

bool QuorumCommitEngine::ApplyPreCommit(uint32_t v, uint64_t epoch,
                                        crypto::CommitmentTag tag) {
  MemberState& m = members_[v];
  if (epoch < m.epoch) return false;  // Stale epoch: fenced off.
  if (m.phase == MemberPhase::kDecided) {
    // Terminal; support the round only when it matches the decision.
    return m.tag == tag;
  }
  m.epoch = epoch;
  m.phase = MemberPhase::kPreCommitted;
  m.tag = tag;
  return true;
}

void QuorumCommitEngine::BroadcastStateReq(uint32_t coordinator,
                                           TimePoint now) {
  if (!PaceBroadcast(now)) return;
  for (uint32_t v = 0; v < VertexCount(); ++v) {
    if (v == coordinator || state_replies_.count(v) > 0) continue;
    proto::Message msg;
    msg.swap_id = ms_id_;
    msg.epoch = epoch_;
    msg.sender = participant(coordinator)->node();
    msg.receiver = participant(v)->node();
    msg.payload = proto::StateReqPayload{v, coordinator};
    SendProtocolMessage(std::move(msg));
  }
}

void QuorumCommitEngine::BroadcastPreCommit(uint32_t coordinator,
                                            TimePoint now) {
  if (!PaceBroadcast(now)) return;
  for (uint32_t v = 0; v < VertexCount(); ++v) {
    if (v == coordinator || acks_.count(v) > 0) continue;
    proto::Message msg;
    msg.swap_id = ms_id_;
    msg.epoch = epoch_;
    msg.sender = participant(coordinator)->node();
    msg.receiver = participant(v)->node();
    msg.payload =
        proto::PreCommitPayload{v, static_cast<uint8_t>(round_tag_)};
    SendProtocolMessage(std::move(msg));
  }
}

void QuorumCommitEngine::BroadcastDecision(uint32_t sender, TimePoint now) {
  if (!PaceBroadcast(now)) return;
  for (uint32_t v = 0; v < VertexCount(); ++v) {
    if (v == sender || members_[v].knows_decision) continue;
    proto::Message msg;
    msg.swap_id = ms_id_;
    msg.epoch = epoch_;
    msg.sender = participant(sender)->node();
    msg.receiver = participant(v)->node();
    msg.payload = proto::DecisionPayload{
        v, static_cast<uint8_t>(decision_->tag), decision_->secret.Encode()};
    SendProtocolMessage(std::move(msg));
  }
}

void QuorumCommitEngine::OnMessage(const proto::Message& msg) {
  switch (msg.kind()) {
    case proto::MessageKind::kStateReq: {
      // Delivered at member v (dropped if v is down): reply with v's
      // recorded round state, under the requesting round's epoch so the
      // reply is fenced if the takeover has moved on by the time it lands.
      const auto& req = std::get<proto::StateReqPayload>(msg.payload);
      const MemberState& m = members_[req.vertex];
      proto::Message reply;
      reply.swap_id = ms_id_;
      reply.epoch = msg.epoch;
      reply.sender = msg.receiver;
      reply.receiver = msg.sender;
      reply.payload = proto::StateReplyPayload{
          req.vertex, m.epoch, static_cast<uint8_t>(m.phase),
          static_cast<uint8_t>(m.tag), m.knows_decision};
      SendProtocolMessage(std::move(reply));
      return;
    }
    case proto::MessageKind::kStateReply: {
      if (msg.epoch != epoch_) return;  // Fenced: takeover moved on.
      const auto& rep = std::get<proto::StateReplyPayload>(msg.payload);
      ReplyInfo info;
      info.epoch = rep.recorded_epoch;
      info.phase = static_cast<MemberPhase>(rep.phase);
      info.tag = static_cast<crypto::CommitmentTag>(rep.tag);
      info.knows_decision = rep.knows_decision;
      state_replies_.emplace(rep.vertex, info);
      ScheduleStep();
      return;
    }
    case proto::MessageKind::kPreCommit: {
      const auto& pc = std::get<proto::PreCommitPayload>(msg.payload);
      if (!ApplyPreCommit(pc.vertex, msg.epoch,
                          static_cast<crypto::CommitmentTag>(pc.tag))) {
        return;
      }
      proto::Message ack;
      ack.swap_id = ms_id_;
      ack.epoch = msg.epoch;
      ack.sender = msg.receiver;
      ack.receiver = msg.sender;
      ack.payload = proto::AckPayload{pc.vertex, pc.tag, true};
      SendProtocolMessage(std::move(ack));
      return;
    }
    case proto::MessageKind::kAck: {
      const auto& ack = std::get<proto::AckPayload>(msg.payload);
      if (msg.epoch != epoch_ ||
          static_cast<crypto::CommitmentTag>(ack.tag) != round_tag_ ||
          !precommit_active_) {
        return;  // Stale acknowledgement.
      }
      acks_.insert(ack.vertex);
      ScheduleStep();
      return;
    }
    case proto::MessageKind::kDecision: {
      const auto& d = std::get<proto::DecisionPayload>(msg.payload);
      MemberState& m = members_[d.vertex];
      m.knows_decision = true;
      m.phase = MemberPhase::kDecided;
      m.tag = static_cast<crypto::CommitmentTag>(d.tag);
      ScheduleStep();
      return;
    }
    default:
      return;
  }
}

void QuorumCommitEngine::SignDecision(uint32_t coordinator, TimePoint now) {
  if (!decision_.has_value()) {
    Decision d;
    d.tag = round_tag_;
    d.secret = quorum_key_->Sign(
        crypto::SignatureCommitmentMessage(ms_id_, round_tag_));
    decision_ = d;
    mutable_report()->decision_time = now;
    mutable_report()->MarkPhase(
        round_tag_ == crypto::CommitmentTag::kRedeem
            ? "quorum_commit_decided"
            : "quorum_abort_decided",
        now);
  }
  MemberState& m = members_[coordinator];
  m.knows_decision = true;
  m.phase = MemberPhase::kDecided;
  m.tag = decision_->tag;
}

void QuorumCommitEngine::StartEpoch(uint64_t epoch, TimePoint now) {
  epoch_ = epoch;
  state_replies_.clear();
  acks_.clear();
  precommit_active_ = false;
  recovery_resolved_ = false;
  forced_tag_.reset();
  coordinator_down_since_ = -1;
  last_broadcast_ = -1;
  mutable_report()->MarkPhase("epoch_" + std::to_string(epoch) + "_takeover",
                              now);
  ScheduleStep();
}

void QuorumCommitEngine::DriveCoordinator(TimePoint now) {
  const uint32_t c = CoordinatorOf(epoch_);
  Participant* coordinator = participant(c);
  if (!coordinator->IsUp()) return;

  if (members_[c].knows_decision) {
    BroadcastDecision(c, now);
    return;
  }

  // Recovery epochs first collect a quorum of member states and apply the
  // termination rule; epoch 0 needs neither (everyone starts kWaiting).
  if (epoch_ > 0 && !recovery_resolved_) {
    ReplyInfo own;
    own.epoch = members_[c].epoch;
    own.phase = members_[c].phase;
    own.tag = members_[c].tag;
    own.knows_decision = members_[c].knows_decision;
    state_replies_.insert_or_assign(c, own);
    if (static_cast<int>(state_replies_.size()) < quorum()) {
      BroadcastStateReq(c, now);
      return;
    }
    // Termination rule over the collected quorum: a known decision wins;
    // else the highest-epoch pre-committed verdict is resumed (quorum
    // intersection keeps this consistent with any signed decision); else
    // the verdict is chosen fresh from chain observation below.
    uint64_t best_epoch = 0;
    for (const auto& [v, info] : state_replies_) {
      if (info.knows_decision) {
        // decision_ exists iff any member holds the secret (engine-global
        // by construction), so adopting it here is the re-broadcast path.
        SignDecision(c, now);
        BroadcastDecision(c, now);
        return;
      }
      if (info.phase == MemberPhase::kPreCommitted &&
          (!forced_tag_.has_value() || info.epoch >= best_epoch)) {
        best_epoch = info.epoch;
        forced_tag_ = info.tag;
      }
    }
    recovery_resolved_ = true;
    last_broadcast_ = -1;  // Fresh pacer for the pre-commit round.
  }

  if (!precommit_active_) {
    // Choose the verdict to drive: a resumed pre-commit first, else commit
    // when every contract is publicly recognized, else abort on request or
    // expired patience.
    if (forced_tag_.has_value()) {
      round_tag_ = *forced_tag_;
    } else if (config_.request_abort) {
      round_tag_ = crypto::CommitmentTag::kRefund;
    } else if (AllPublished()) {
      round_tag_ = crypto::CommitmentTag::kRedeem;
    } else if (now - start_time() >= config_.publish_patience) {
      round_tag_ = crypto::CommitmentTag::kRefund;
    } else {
      RequestWakeAt(start_time() + config_.publish_patience);
      return;
    }
    // kAtPrepare anchor: the coordinator dies the instant the prepare
    // outcome is determined, before any other member learns the verdict.
    if (MaybeCrashCoordinator(CoordinatorCrashPhase::kAtPrepare,
                              coordinator->node())) {
      return;
    }
    precommit_active_ = true;
    acks_.insert(c);
    (void)ApplyPreCommit(c, epoch_, round_tag_);
    if (!precommit_marked_) {
      precommit_marked_ = true;
      mutable_report()->MarkPhase("precommit_round_started", now);
    }
  }
  if (static_cast<int>(acks_.size()) < quorum()) {
    BroadcastPreCommit(c, now);
    return;
  }

  // Quorum acknowledged: the commit point. kAtCommit anchor: the
  // coordinator dies after collecting the quorum, before signing — the
  // survivors' pre-committed records carry the round to a verdict.
  if (MaybeCrashCoordinator(CoordinatorCrashPhase::kAtCommit,
                            coordinator->node())) {
    return;
  }
  SignDecision(c, now);
  BroadcastDecision(c, now);
}

void QuorumCommitEngine::MaybeTakeOver(TimePoint now) {
  const uint32_t c = CoordinatorOf(epoch_);
  if (participant(c)->IsUp()) {
    coordinator_down_since_ = -1;
    return;
  }
  if (coordinator_down_since_ < 0) {
    coordinator_down_since_ = now;
  }
  const TimePoint takeover_at =
      coordinator_down_since_ + config_.takeover_timeout;
  if (now < takeover_at) {
    RequestWakeAt(takeover_at);
    return;
  }
  uint32_t successor = VertexCount();
  for (uint32_t v = 0; v < VertexCount(); ++v) {
    if (v != c && participant(v)->IsUp()) {
      successor = v;
      break;
    }
  }
  if (successor == VertexCount()) return;  // Nobody alive to take over.
  uint64_t epoch = epoch_ + 1;
  while (CoordinatorOf(epoch) != successor) ++epoch;
  StartEpoch(epoch, now);
}

void QuorumCommitEngine::TrySettle(EdgeRt* rt, TimePoint now) {
  if (!decision_.has_value()) return;
  uint32_t actor_vertex = 0;
  Participant* actor = FirstLiveKnower(&actor_vertex);
  if (actor == nullptr) return;
  if (rt->settle_submitted && rt->last_settle_submit >= 0 &&
      now - rt->last_settle_submit < config_.resubmit_interval) {
    return;
  }

  const chain::Blockchain* chain = env()->blockchain(rt->edge.chain_id);
  const bool redeem = decision_->tag == crypto::CommitmentTag::kRedeem;
  // Build the call once and re-gossip the SAME transaction on retries;
  // rebuild only when the cached builder crashed and another knower takes
  // over with its own funds.
  if (rt->settle_builder != static_cast<int>(actor_vertex) &&
      (rt->settle_builder < 0 ||
       !participant(static_cast<uint32_t>(rt->settle_builder))->IsUp())) {
    auto tx = actor->WalletFor(rt->edge.chain_id)
                  ->BuildCall(chain->StateAtHead(), rt->contract_id,
                              redeem ? contracts::kRedeemFunction
                                     : contracts::kRefundFunction,
                              decision_->secret.Encode(),
                              chain->params().call_fee,
                              static_cast<uint64_t>(now) ^ rt->edge.from);
    if (!tx.ok()) {
      AC3_LOG(kDebug) << "cannot build quorum settle call: "
                      << tx.status().ToString();
      return;
    }
    rt->settle_tx = *tx;
    rt->settle_built = true;
    rt->settle_builder = static_cast<int>(actor_vertex);
  }
  if (!rt->settle_built) return;
  env()->SubmitTransaction(actor->node(), rt->edge.chain_id, rt->settle_tx);
  rt->settle_submitted = true;
  rt->last_settle_submit = now;
  RequestResubmitWake();
}

bool QuorumCommitEngine::IsComplete() const {
  if (!decision_.has_value()) return false;
  for (const EdgeRt& rt : edges_) {
    if (!rt.deploy_built) continue;  // Never published: nothing locked.
    // Refund-path contracts that never reached a chain cannot settle; give
    // up on them (mirrors the AC3TW terminal rule).
    const chain::Blockchain* chain = env()->blockchain(rt.edge.chain_id);
    const bool on_chain = chain->FindTx(rt.contract_id).has_value();
    if (!on_chain && decision_->tag == crypto::CommitmentTag::kRefund) {
      continue;
    }
    if (!rt.settled) return false;
  }
  return true;
}

void QuorumCommitEngine::Step() {
  const TimePoint now = env()->sim()->Now();

  // Prepare phase: parallel deployments, always driven (senders act on
  // their own behalf regardless of the commit round's state).
  bool was_all_published = AllPublished();
  for (EdgeRt& rt : edges_) {
    if (!rt.publish_confirmed) {
      TryPublish(&rt);
      if (rt.deploy_built) TrackPublishConfirmation(&rt);
    }
  }
  if (!was_all_published && AllPublished() && !prepare_marked_) {
    prepare_marked_ = true;
    mutable_report()->MarkPhase("contracts_published", now);
  }

  // The commit round: drive the current epoch's coordinator; survivors
  // watch for a dead coordinator and take over.
  if (!DecisionKnownToLiveMember()) {
    DriveCoordinator(now);
    MaybeTakeOver(now);
  } else {
    uint32_t knower = 0;
    (void)FirstLiveKnower(&knower);
    BroadcastDecision(knower, now);
  }

  // Settlement: any live holder of the signed decision settles every edge.
  if (decision_.has_value()) {
    for (EdgeRt& rt : edges_) {
      if (rt.settled) continue;
      const chain::Blockchain* chain = env()->blockchain(rt.edge.chain_id);
      if (rt.deploy_built && chain->FindTx(rt.contract_id)) {
        TrySettle(&rt, now);
        TrackSettlement(&rt);
      }
    }
  }
}

void QuorumCommitEngine::FillVerdict(SwapReport* report) const {
  report->committed = decision_.has_value() &&
                      decision_->tag == crypto::CommitmentTag::kRedeem;
  report->aborted = decision_.has_value() &&
                    decision_->tag == crypto::CommitmentTag::kRefund;
}

}  // namespace ac3::protocols
