#include "src/protocols/swap_report.h"

#include <sstream>

namespace ac3::protocols {

const char* EdgeOutcomeName(EdgeOutcome outcome) {
  switch (outcome) {
    case EdgeOutcome::kUnpublished:
      return "unpublished";
    case EdgeOutcome::kPublished:
      return "stranded";
    case EdgeOutcome::kRedeemed:
      return "redeemed";
    case EdgeOutcome::kRefunded:
      return "refunded";
  }
  return "?";
}

int SwapReport::CountOutcome(EdgeOutcome outcome) const {
  int count = 0;
  for (const EdgeReport& edge : edges) {
    if (edge.outcome == outcome) ++count;
  }
  return count;
}

bool SwapReport::AllRedeemed() const {
  return !edges.empty() &&
         CountOutcome(EdgeOutcome::kRedeemed) == static_cast<int>(edges.size());
}

bool SwapReport::AllRefunded() const {
  for (const EdgeReport& edge : edges) {
    if (edge.outcome != EdgeOutcome::kRefunded &&
        edge.outcome != EdgeOutcome::kUnpublished) {
      return false;
    }
  }
  return true;
}

bool SwapReport::AtomicityViolated() const {
  const int redeemed = CountOutcome(EdgeOutcome::kRedeemed);
  const int refunded = CountOutcome(EdgeOutcome::kRefunded);
  const int stranded = CountOutcome(EdgeOutcome::kPublished);
  const int unpublished = CountOutcome(EdgeOutcome::kUnpublished);
  // Mixed settlement is the canonical violation ("SCi redeemed and SCj
  // refunded", Lemma 5.1). Once the run has ended, a redemption alongside
  // a permanently stranded contract — or an edge that never executed at
  // all — equally breaks all-or-nothing: some transfers happened, not all.
  if (redeemed > 0 && refunded > 0) return true;
  if (finished && redeemed > 0 && (stranded > 0 || unpublished > 0)) {
    return true;
  }
  return false;
}

std::string SwapReport::Summary() const {
  std::ostringstream os;
  os << protocol << ": " << (finished ? "finished" : "timed-out") << ", "
     << (committed ? "committed" : (aborted ? "aborted" : "undecided"))
     << ", edges[";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) os << " ";
    os << EdgeOutcomeName(edges[i].outcome);
  }
  os << "], latency=" << Latency() << "ms, fees=" << total_fees
     << (AtomicityViolated() ? ", ATOMICITY VIOLATED" : ", atomic");
  return os.str();
}

}  // namespace ac3::protocols
