// Typed protocol-message envelopes — the wire format of every off-chain
// exchange the swap engines perform.
//
// Historically sim::Network::Send delivered opaque std::function closures,
// so a message had no kind, no size, and no identity: nothing could count
// per-protocol message overhead (the cost axis Robinson's "Performance
// Overhead of Atomic Crosschain Transactions" quantifies), and faults could
// only be injected per *node*, never per *message*. proto::Message gives
// every exchange an explicit envelope:
//
//   * kind        — which protocol exchange this is (prepare, ack, …);
//   * swap id     — ms(D) for commitment traffic, the tx id for gossip;
//   * epoch       — the quorum-commit round the message belongs to (0 for
//                   the single-round protocols), used for stale fencing;
//   * seq         — a per-engine send counter; fault-injected duplicate
//                   deliveries of one send share it, so receivers can
//                   fence exact re-deliveries (SwapEngineBase does);
//   * sender / receiver — network endpoints, driving per-node counters;
//   * payload     — one variant alternative per exchange, carrying the
//                   actual protocol data (verdict tags, signatures, member
//                   round state) rather than captured closure context.
//
// Encode()/Decode() are the deterministic canonical binary form (ByteWriter
// little-endian conventions, Status-returning truncation rejection);
// EncodedSize() is the wire size the network's byte counters charge. The
// in-process simulator still delivers the Message object itself — encoding
// exists for size accounting and for the round-trip contract the tests pin,
// exactly as for transactions and blocks.

#ifndef AC3_PROTOCOLS_MESSAGES_H_
#define AC3_PROTOCOLS_MESSAGES_H_

#include <cstdint>
#include <variant>

#include "src/chain/params.h"
#include "src/common/bytes.h"
#include "src/crypto/hash256.h"
#include "src/sim/network.h"

/// Typed protocol-message envelopes shared by the swap engines and the
/// simulated network's fault-injecting message path.
namespace ac3::proto {

/// Which protocol exchange a Message carries. Values are the wire tag and
/// must never be renumbered; kinds map 1:1 onto Message::Payload
/// alternatives (in order).
enum class MessageKind : uint8_t {
  /// AC3TW step 2: a participant registers ms(D) at the trusted witness.
  kPrepare = 1,
  /// Acknowledgement: the witness's registration ack, or a quorum member's
  /// pre-commit acknowledgement.
  kAck = 2,
  /// QuorumCommit: the coordinator's PRE-COMMIT(epoch, verdict).
  kPreCommit = 3,
  /// A signed decision: Trent's reply, or the quorum DECIDE broadcast.
  kDecision = 4,
  /// QuorumCommit recovery: the new coordinator's state collection request.
  kStateReq = 5,
  /// QuorumCommit recovery: a member's recorded round state.
  kStateReply = 6,
  /// AC3TW steps 5/6: a participant notifies the witness it wants the
  /// redeem (or refund) secret released.
  kRedeemNotify = 7,
  /// Transaction gossip to a chain gateway — the envelope every on-chain
  /// interaction (deploys, settles, witness votes) rides; how the purely
  /// on-chain engines (Herlihy, AC3WN) participate in the typed layer.
  kTxSubmit = 8,
};

/// Stable lowercase name ("pre_commit"), for logs and bench rows.
const char* MessageKindName(MessageKind kind);

/// Payload of MessageKind::kPrepare: the multisigned swap proposal.
struct PreparePayload {
  Bytes ms_encoded;  ///< crypto::Multisignature::Encode() of ms(D).
};

/// Payload of MessageKind::kAck (register ack / pre-commit ack).
struct AckPayload {
  uint32_t vertex = 0;   ///< Acknowledging graph vertex (0 for AC3TW).
  uint8_t tag = 0;       ///< CommitmentTag being acknowledged (0 = none).
  bool accepted = false; ///< Registration accepted / verdict supported.
};

/// Payload of MessageKind::kPreCommit.
struct PreCommitPayload {
  uint32_t vertex = 0;  ///< Target member's graph vertex.
  uint8_t tag = 0;      ///< CommitmentTag of the round's verdict.
};

/// Payload of MessageKind::kDecision: the decision secret itself.
struct DecisionPayload {
  uint32_t vertex = 0;      ///< Target member's vertex (0 for AC3TW).
  uint8_t tag = 0;          ///< CommitmentTag decided.
  Bytes signature_encoded;  ///< crypto::Signature::Encode() of the secret.
};

/// Payload of MessageKind::kStateReq.
struct StateReqPayload {
  uint32_t vertex = 0;       ///< Member being queried.
  uint32_t coordinator = 0;  ///< Vertex of the recovering coordinator.
};

/// Payload of MessageKind::kStateReply: the member's recorded round state
/// (the quorum engine's MemberState, serialized).
struct StateReplyPayload {
  uint32_t vertex = 0;          ///< Replying member.
  uint64_t recorded_epoch = 0;  ///< Highest epoch the member recorded.
  uint8_t phase = 0;            ///< MemberPhase as its wire value.
  uint8_t tag = 0;              ///< CommitmentTag of the recorded verdict.
  bool knows_decision = false;  ///< Member holds the signed decision.
};

/// Payload of MessageKind::kRedeemNotify.
struct RedeemNotifyPayload {
  uint8_t tag = 0;  ///< CommitmentTag the requester wants released.
};

/// Payload of MessageKind::kTxSubmit. The simulator hands the Transaction
/// object to the gateway in-process; the payload carries its identity and
/// wire size so message/byte accounting reflects the real cost.
struct TxSubmitPayload {
  chain::ChainId chain_id = 0;  ///< Destination chain.
  uint32_t tx_bytes = 0;        ///< Transaction::Encode().size().
};

/// A typed protocol message (see the file comment for the field contract).
struct Message {
  /// The payload alternatives, in MessageKind order (index + 1 == kind).
  using Payload =
      std::variant<PreparePayload, AckPayload, PreCommitPayload,
                   DecisionPayload, StateReqPayload, StateReplyPayload,
                   RedeemNotifyPayload, TxSubmitPayload>;

  crypto::Hash256 swap_id;   ///< ms(D) id; the tx id for kTxSubmit.
  uint64_t epoch = 0;        ///< Commit round (0 for single-round engines).
  uint64_t seq = 0;          ///< Per-engine send counter (duplicate fence).
  sim::NodeId sender = 0;    ///< Sending endpoint.
  sim::NodeId receiver = 0;  ///< Receiving endpoint.
  Payload payload;           ///< The exchange-specific data.

  /// The message kind, derived from the payload alternative — an envelope
  /// can never claim one kind while carrying another's payload.
  MessageKind kind() const {
    return static_cast<MessageKind>(payload.index() + 1);
  }

  /// Canonical binary encoding (ByteWriter conventions).
  Bytes Encode() const;
  /// Inverse of Encode(); rejects truncated buffers, unknown kinds, and
  /// trailing garbage with InvalidArgument.
  static Result<Message> Decode(const Bytes& data);

  /// Encode().size() without materializing the buffer — the wire size the
  /// network's byte counters charge. Kept inline so sim::Network can size
  /// messages without linking the protocols module.
  size_t EncodedSize() const {
    // Envelope: kind u8 + swap_id raw32 + epoch u64 + seq u64 +
    // sender/receiver u32 each.
    size_t size = 1 + crypto::Hash256::kSize + 8 + 8 + 4 + 4;
    struct Sizer {
      size_t operator()(const PreparePayload& p) const {
        return 4 + p.ms_encoded.size();  // u32 length prefix + bytes.
      }
      size_t operator()(const AckPayload&) const { return 4 + 1 + 1; }
      size_t operator()(const PreCommitPayload&) const { return 4 + 1; }
      size_t operator()(const DecisionPayload& p) const {
        return 4 + 1 + 4 + p.signature_encoded.size();
      }
      size_t operator()(const StateReqPayload&) const { return 4 + 4; }
      size_t operator()(const StateReplyPayload&) const {
        return 4 + 8 + 1 + 1 + 1;
      }
      size_t operator()(const RedeemNotifyPayload&) const { return 1; }
      size_t operator()(const TxSubmitPayload&) const { return 4 + 4; }
    };
    return size + std::visit(Sizer{}, payload);
  }
};

}  // namespace ac3::proto

#endif  // AC3_PROTOCOLS_MESSAGES_H_
