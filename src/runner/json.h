// A minimal JSON document model for the experiment pipeline: the sweep
// runner serializes aggregated results as BENCH_*.json, and tests parse
// them back to assert well-formedness and bit-for-bit determinism.
//
// Design constraints that rule out an off-the-shelf library: object keys
// must keep insertion order (so two runs of the same grid produce
// byte-identical files), integers must print without a decimal point (so
// counts diff cleanly), and doubles must round-trip exactly (shortest
// representation via std::to_chars).

#ifndef AC3_RUNNER_JSON_H_
#define AC3_RUNNER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ac3::runner {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}         // NOLINT
  /// Any non-bool integral type (counts, seeds, TimePoints).
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Json(T value)                                                  // NOLINT
      : type_(Type::kInt), int_(static_cast<int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}   // NOLINT
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value)                                        // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  // Typed accessors; the caller is expected to have checked type().
  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // ---- array interface ----------------------------------------------------
  size_t size() const {
    return type_ == Type::kObject ? members_.size() : items_.size();
  }
  void Push(Json value) { items_.push_back(std::move(value)); }
  const Json& at(size_t i) const { return items_.at(i); }
  const std::vector<Json>& items() const { return items_; }

  // ---- object interface (insertion-ordered) -------------------------------
  /// Inserts or overwrites `key`.
  void Set(std::string_view key, Json value);
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  /// Null pointer when absent.
  const Json* Find(std::string_view key) const;
  /// Crashing accessor for keys known to exist.
  const Json& at(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Deep structural equality (object key order is significant, matching
  /// the determinism contract of the sweep pipeline).
  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Pretty-prints with 2-space indentation and a trailing newline at the
  /// top level — stable output for golden diffs.
  std::string Serialize() const;

  static Result<Json> Parse(std::string_view text);

 private:
  void SerializeTo(std::string* out, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `s` as a JSON string literal body (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace ac3::runner

#endif  // AC3_RUNNER_JSON_H_
