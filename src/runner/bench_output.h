// Machine-readable bench output: every experiment harness writes its
// structured results as BENCH_<name>.json through one envelope, so the
// perf trajectory across commits is diffable.
//
// The uniform bench CLI that fills a BenchContext lives one layer up, in
// bench/bench_util.h (bench::Options::Parse) — this header owns only the
// context the envelope writer consumes and the writer itself.

#ifndef AC3_RUNNER_BENCH_OUTPUT_H_
#define AC3_RUNNER_BENCH_OUTPUT_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/runner/json.h"
#include "src/runner/sweep_runner.h"

namespace ac3::runner {

struct BenchContext {
  bool smoke = false;
  std::string out_dir = ".";
  int threads = 0;  ///< 0 = hardware concurrency.
  /// Sweep-axis overrides; empty = keep the bench's default axis.
  std::vector<Protocol> protocols;
  std::vector<Topology> topologies;
  std::vector<FailureMode> failures;
  /// Set when --help was requested or an unknown flag was seen; main()
  /// should exit (status 0 for help, 1 otherwise) without running.
  bool exit_early = false;
  int exit_code = 0;
  /// Process start, for the envelope's wall_ms_total. Default-initialized
  /// at construction so hand-built contexts (tests) also carry a clock.
  std::chrono::steady_clock::time_point start_time =
      std::chrono::steady_clock::now();
};

/// Wraps `results` in the standard envelope and writes
/// `<out_dir>/BENCH_<name>.json`:
///   {"schema_version": 2, "bench": name, "smoke": ...,
///    "results": ..., "wall": {"wall_ms_total": ..., ...wall_extra...}}
/// `results` is the deterministic section (bit-for-bit stable across runs
/// and thread counts); wall-clock measurements are machine-dependent and
/// belong in `wall_extra` (an object whose members are merged into "wall").
/// Returns the path written.
Result<std::string> WriteBenchJson(const BenchContext& context,
                                   const std::string& name, Json results,
                                   Json wall_extra = Json());

/// The envelope alone (what WriteBenchJson serializes) — exposed so tests
/// can assert on it without touching the filesystem.
Json BenchEnvelope(const BenchContext& context, const std::string& name,
                   Json results, Json wall_extra = Json());

}  // namespace ac3::runner

#endif  // AC3_RUNNER_BENCH_OUTPUT_H_
