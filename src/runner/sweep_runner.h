// SweepRunner: the parallel experiment substrate.
//
// The discrete-event kernel (src/sim/simulation.h) is deterministic and
// single-threaded, so the road to multi-core throughput is running *many
// independent seeded worlds at once*: a sweep is a protocol × topology ×
// failure-mode × seed grid where every point builds its own ScenarioWorld,
// runs one swap engine to a verdict, and reduces the SwapReport to a
// RunOutcome. A worker pool executes points in parallel; results are
// stored by point index, so the output is bit-for-bit identical whatever
// the thread count — the determinism contract tests/runner_test.cc pins.
//
// Aggregation turns a bag of outcomes into the numbers the paper's
// evaluation (Section 6) reports: commit/abort/atomicity-violation counts,
// mean/p50/p99 latency both in milliseconds and in Δs (normalized by a
// measured Δ), fees, and throughput.

#ifndef AC3_RUNNER_SWEEP_RUNNER_H_
#define AC3_RUNNER_SWEEP_RUNNER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/worker_pool.h"
#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/swap_report.h"
#include "src/runner/json.h"

/// The parallel sweep substrate: grid axes, per-world outcomes,
/// aggregation, and the worker-pool runner.
namespace ac3::runner {

/// Executes fn(0..n-1) on a one-shot common::WorkerPool round (workers
/// claim indices from a shared counter; `threads <= 0` resolves through
/// WorkerPool::ResolveThreads; `threads == 1` or `n == 1` runs inline).
/// `fn` must be safe to call concurrently for distinct indices. If an
/// invocation throws, the first exception is rethrown here on the caller
/// instead of terminating a worker thread.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

/// Deterministic parallel map: out[i] = fn(i), independent of `threads`.
template <typename T>
std::vector<T> ParallelMap(int n, int threads,
                           const std::function<T(int)>& fn) {
  std::vector<T> out(static_cast<size_t>(n));
  ParallelFor(n, threads, [&](int i) { out[static_cast<size_t>(i)] = fn(i); });
  return out;
}

// ---- the sweep grid -------------------------------------------------------

/// The swap protocols under evaluation.
enum class Protocol {
  kHerlihy,  ///< Nolan/Herlihy HTLC baseline (single-leader spanning order).
  kAc3tw,    ///< AC3 with a centralized trusted witness (Trent).
  kAc3wn,    ///< AC3 with a permissionless witness network.
  kQuorum,   ///< Nonblocking quorum-commit (3PC-style) engine.
};
/// Stable lowercase name (the JSON/CLI spelling), e.g. "ac3wn".
const char* ProtocolName(Protocol protocol);
/// Round-trip of ProtocolName (same table); InvalidArgument on unknown
/// names.
Result<Protocol> ParseProtocol(const std::string& name);

/// Failure schedules a sweep cell may inject into its world.
enum class FailureMode {
  kNone,  ///< Fault-free run.
  /// Participant 1 crashes shortly after the swap starts and recovers
  /// later — the paper's motivating "Bob crashes" scenario.
  kCrashParticipant,
  /// Participant 1 is partitioned from every chain for the same window.
  kPartitionParticipant,
  /// The protocol's coordinator (leader / Trent / requester / quorum
  /// coordinator) crashes at its prepare anchor — after contracts are
  /// set up but before any decision round starts. Engine-driven (see
  /// protocols::CoordinatorCrashPlan); recovery is governed by
  /// SweepGridConfig::coordinator_recovery_deltas.
  kCrashCoordinatorAtPrepare,
  /// The coordinator crashes at its commit anchor — the instant it would
  /// sign/request/submit the decision, the worst window for 2PC-style
  /// blocking.
  kCrashCoordinatorAtCommit,
  /// Every typed message (protocol exchanges AND transaction gossip) is
  /// independently lost with SweepGridConfig::message_drop_prob — the
  /// lossy-network axis of the message-overhead study. Engines recover by
  /// resending on their resubmit heartbeats.
  kDropMessages,
  /// Every typed message is independently delivered twice with
  /// SweepGridConfig::message_duplicate_prob; receivers must fence the
  /// second copy (seq fencing in SwapEngineBase, tx-id dedup in mempools).
  kDuplicateMessages,
};
/// Stable lowercase name (the JSON/CLI spelling), e.g. "crash_participant".
const char* FailureModeName(FailureMode mode);
/// Round-trip of FailureModeName; InvalidArgument on unknown names.
Result<FailureMode> ParseFailureMode(const std::string& name);

/// The swap-graph families of the evaluation (Sections 5.3 / 6): the
/// single-leader-feasible shapes the HTLC baselines can run, plus the
/// shapes only AC3WN can commit (complete digraphs and the Figure 7
/// family reject every single leader).
enum class Topology {
  kRing,            ///< 0 -> 1 -> ... -> n-1 -> 0 (diameter = size).
  kPath,            ///< 0 -> 1 -> ... -> n-1.
  kStar,            ///< hub 0 <-> each leaf.
  kComplete,        ///< every ordered pair; infeasible for size >= 3.
  kRandomFeasible,  ///< ring + seeded forward chords; always feasible.
  kFig7aCyclic,     ///< Figure 7(a): bidirectional ring, infeasible.
  kFig7bDisconnected,  ///< Figure 7(b): disjoint 2-swaps, infeasible.
};
/// Stable lowercase name (the JSON/CLI spelling), e.g. "fig7a_cyclic".
const char* TopologyName(Topology topology);
/// Round-trip of TopologyName; InvalidArgument on unknown names.
Result<Topology> ParseTopology(const std::string& name);
/// True when the Herlihy/Nolan baselines can execute the family at `size`
/// participants (the Section 5.3 feasibility boundary).
bool TopologySingleLeaderFeasible(Topology topology, int size);

/// One cell of the grid: which engine, on which graph family over how many
/// participants, under which failure, with which world seed.
struct SweepPoint {
  Protocol protocol = Protocol::kAc3wn;   ///< Engine under test.
  Topology topology = Topology::kRing;    ///< Swap-graph family.
  int size = 2;  ///< Participants in the swap graph.
  FailureMode failure = FailureMode::kNone;  ///< Injected failure schedule.
  uint64_t seed = 1;  ///< World seed (all randomness derives from it).
};

/// The cross-product axes plus the shared world/engine parameters.
struct SweepGridConfig {
  std::vector<Protocol> protocols = {Protocol::kHerlihy, Protocol::kAc3wn};
      ///< Protocol axis.
  std::vector<Topology> topologies = {Topology::kRing};  ///< Topology axis.
  std::vector<int> sizes = {2};                          ///< Graph sizes.
  std::vector<FailureMode> failures = {FailureMode::kNone};  ///< Failure axis.
  std::vector<uint64_t> seeds = {1};                     ///< Seed axis.

  /// Asset chains in each world: min(size, max_asset_chains).
  int max_asset_chains = 4;
  chain::Amount funding = 5000;      ///< Initial funding per participant.
  chain::Amount edge_amount = 100;   ///< Value swapped along each edge.

  /// Extra-chord probability for Topology::kRandomFeasible.
  double random_chord_prob = 0.3;

  /// Engine knobs shared by all protocols (the bench "fast" profile).
  Duration delta = Seconds(2);
  uint32_t confirm_depth = 1;     ///< Confirmations for "publicly recognized".
  uint32_t witness_depth_d = 2;   ///< AC3WN evidence depth d.
  Duration resubmit_interval = Milliseconds(800);  ///< Re-gossip heartbeat.
  Duration publish_patience = Seconds(20);  ///< Publish-phase patience window.
  Duration deadline = Minutes(60);          ///< Hard per-world deadline.

  /// Crash/partition onset and length for the failure modes, in Δs.
  double failure_onset_deltas = 1.0;
  double failure_length_deltas = 6.0;

  /// Recovery delay (in Δs) for the coordinator-crash failure modes:
  /// < 0 means the coordinator never recovers — the schedule the
  /// commit study uses to expose 2PC-style blocking.
  double coordinator_recovery_deltas = -1.0;

  /// P(any typed message is lost) under FailureMode::kDropMessages.
  double message_drop_prob = 0.10;
  /// P(any typed message is delivered twice) under
  /// FailureMode::kDuplicateMessages.
  double message_duplicate_prob = 0.25;
};

/// The grid flattened in deterministic order:
/// protocols × topologies × sizes × failures × seeds (seed innermost).
std::vector<SweepPoint> GridPoints(const SweepGridConfig& config);

/// Builds the `topology` family over the world's first `size` participants,
/// cycling through the available asset chains. `seed` only matters for
/// Topology::kRandomFeasible (a private Rng stream, so the world's own
/// randomness is untouched).
graph::Ac2tGraph TopologyOverWorld(core::ScenarioWorld* world,
                                   Topology topology, int size,
                                   chain::Amount amount, uint64_t seed,
                                   double chord_prob = 0.3);

/// A directed ring over the world's first `n` participants (diameter = n) —
/// the shape every ring sweep and timeline bench shares.
graph::Ac2tGraph RingOverWorld(core::ScenarioWorld* world, int n,
                               chain::Amount amount = 100);

// ---- per-run results ------------------------------------------------------

/// A SwapReport reduced to the numbers sweeps aggregate.
struct RunOutcome {
  SweepPoint point;  ///< The grid cell this outcome belongs to.
  /// Engine constructed and ran to its verdict (or deadline).
  bool ok = false;
  std::string error;  ///< Set when !ok.
  /// The engine refused the graph at Start() (single-leader infeasible) —
  /// the paper's Section 5.3 functional gap, distinct from a world error.
  bool infeasible = false;

  bool finished = false;   ///< Engine reached a verdict before the deadline.
  bool committed = false;  ///< Verdict was commit (all edges redeemed).
  bool aborted = false;    ///< Verdict was abort (all edges refunded).
  bool atomicity_violated = false;  ///< Mixed redeem/refund: the §3 violation.

  double latency_ms = -1;   ///< end_time - start_time when finished.
  double decision_ms = -1;  ///< decision_time - start_time when decided.
  int64_t total_fees = 0;      ///< Fees paid across every edge (and SCw).
  int edges_redeemed = 0;      ///< Edges whose asset moved to the recipient.
  int edges_refunded = 0;      ///< Edges returned to the sender.
  int edges_stranded = 0;      ///< Edges locked past the deadline.
  int edges_unpublished = 0;   ///< Edges whose deploy never confirmed.

  /// Simulation events executed by this cell's world — deterministic, and
  /// the direct measure of the reactive-substrate win (the fixed-poll
  /// engines executed O(duration / poll_interval) events per run).
  int64_t sim_events = 0;

  /// Typed protocol messages the engine sent (SwapReport::messages_sent);
  /// deterministic, but deliberately excluded from OutcomeToJson so the
  /// pinned sweep fingerprints certify the message-layer migration — the
  /// message-overhead bench publishes these through its own rows.
  int64_t messages_sent = 0;
  /// Wire bytes of those messages (SwapReport::message_bytes_sent); same
  /// exclusion rule as messages_sent.
  int64_t message_bytes_sent = 0;

  /// Wall-clock cost of this cell's world (machine-dependent; excluded
  /// from OutcomeToJson so the determinism contract stays intact — see
  /// GridWallJson for publishing it).
  double wall_ms = 0;
};

/// Reduces an engine's SwapReport (already run) to a RunOutcome.
RunOutcome ReduceReport(const SweepPoint& point,
                        const protocols::SwapReport& report);

/// Builds a fresh seeded world for `point` and runs one swap to a verdict,
/// returning the engine's full SwapReport (phase markers included) rather
/// than the reduced RunOutcome — the hook property/unit tests use to
/// assert on phase-level behavior. `sim_events_out`, when non-null,
/// receives the world's executed-event count. Thread-safe for distinct
/// points (each call owns its world).
Result<protocols::SwapReport> RunSwapReport(const SweepGridConfig& config,
                                            const SweepPoint& point,
                                            int64_t* sim_events_out = nullptr);

/// Builds a fresh seeded world for `point` and runs one swap to a verdict.
/// Thread-safe for distinct points (each call owns its world).
RunOutcome RunSwapPoint(const SweepGridConfig& config, const SweepPoint& point);

// ---- aggregation ----------------------------------------------------------

/// Order statistics over a latency sample (nearest-rank percentiles).
struct LatencyStats {
  int samples = 0;     ///< Sample count the statistics are over.
  double mean_ms = 0;  ///< Arithmetic mean.
  double p50_ms = 0;   ///< Median (nearest rank).
  double p99_ms = 0;   ///< 99th percentile (nearest rank).
};
/// Reduces a latency sample to its order statistics.
LatencyStats ComputeLatencyStats(std::vector<double> samples_ms);

/// A bag of RunOutcomes reduced to the paper's evaluation numbers.
struct SweepAggregate {
  int runs = 0;    ///< Total grid cells aggregated.
  int errors = 0;  ///< Worlds that failed to run (infrastructure errors).
  /// Graphs the protocol refused at Start() (subset of neither errors nor
  /// finished: the engine never ran).
  int infeasible = 0;
  int finished = 0;             ///< Engines that reached a verdict.
  int committed = 0;            ///< Commit verdicts.
  int aborted = 0;              ///< Abort verdicts.
  int atomicity_violations = 0; ///< Runs with mixed edge outcomes.

  /// Latency over committed runs only (the paper's Section 6.1 metric).
  LatencyStats commit_latency;
  /// The measured Δ used to normalize, and the normalized statistics.
  double delta_ms = 0;
  double mean_latency_deltas = 0;  ///< commit_latency.mean_ms / delta_ms.
  double p50_latency_deltas = 0;   ///< commit_latency.p50_ms / delta_ms.
  double p99_latency_deltas = 0;   ///< commit_latency.p99_ms / delta_ms.

  double mean_fees = 0;  ///< Mean total fees over finished runs.
  /// Committed swaps per simulated second of end-to-end latency: the
  /// steady-state rate one sequential coordinator would sustain.
  double throughput_swaps_per_sec = 0;
};

/// `delta_ms <= 0` leaves the Δ-normalized fields at zero.
SweepAggregate Aggregate(const std::vector<RunOutcome>& outcomes,
                         double delta_ms);

/// Deterministic JSON for one outcome (wall_ms deliberately excluded).
Json OutcomeToJson(const RunOutcome& outcome);
/// Deterministic JSON for an aggregate.
Json AggregateToJson(const SweepAggregate& aggregate);

/// Wall-clock stats of one RunGrid invocation.
struct GridWallStats {
  /// Elapsed wall time of the whole grid (across all workers).
  double wall_ms = 0;
  /// Grid cells completed per wall-clock second (the sweep substrate's
  /// own throughput metric — worlds, not swaps).
  double worlds_per_sec = 0;
};

/// The envelope "wall" payload for a grid run: wall_ms_grid,
/// worlds_per_sec, and one {point, wall_ms} record per cell. Everything
/// here is machine-dependent by design; deterministic values belong in
/// OutcomeToJson / AggregateToJson.
Json GridWallJson(const GridWallStats& stats,
                  const std::vector<RunOutcome>& outcomes);

/// Measures Δ empirically: the time for one participant to publish a
/// transaction and have it publicly recognized (confirm_depth blocks deep)
/// on asset chain 0 of a fresh world built from `options`. Grounds the
/// "latency in Δs" columns. Returns 0 on failure.
double MeasureDeltaMs(const core::ScenarioOptions& options,
                      uint32_t confirm_depth);

// ---- the runner -----------------------------------------------------------

/// The worker-pool executor for sweep grids (see the file comment): runs
/// every grid point on `threads` workers with outcomes stored by grid
/// index, so results are bit-for-bit identical whatever the thread count.
///
/// One runner owns one persistent common::WorkerPool, so a single
/// SweepRunner instance must not execute RunGrid/RunGridTimed/Map from
/// two threads at once (const-ness notwithstanding — the pool runs one
/// round at a time). Callers that want concurrent grids should use one
/// runner per driving thread.
class SweepRunner {
 public:
  /// `threads <= 0` resolves through common::WorkerPool::ResolveThreads
  /// (hardware_concurrency clamped to >= 1). The pool is persistent: one
  /// runner reuses its spawned workers across RunGrid / Map calls.
  explicit SweepRunner(int threads = 0);
  /// Joins the pool's workers (out-of-line for the unique_ptr member).
  ~SweepRunner();

  /// The resolved worker count (>= 1).
  int threads() const;

  /// Runs every grid point; outcomes are in GridPoints() order regardless
  /// of the thread count.
  std::vector<RunOutcome> RunGrid(const SweepGridConfig& config) const;

  /// RunGrid plus wall-clock accounting (per-cell wall_ms is always
  /// filled in; `stats` receives the grid totals when non-null).
  std::vector<RunOutcome> RunGridTimed(const SweepGridConfig& config,
                                       GridWallStats* stats) const;

  /// Generic escape hatch for sweeps that are not single-swap grids (e.g.
  /// chain-saturation throughput runs): a deterministic parallel map over
  /// `n` independent simulations, on the runner's persistent pool.
  template <typename T>
  std::vector<T> Map(int n, const std::function<T(int)>& fn) const {
    std::vector<T> out(static_cast<size_t>(std::max(n, 0)));
    PoolFor(n, [&](size_t i) { out[i] = fn(static_cast<int>(i)); });
    return out;
  }

 private:
  /// Runs one ParallelFor round on the persistent pool (out-of-line so
  /// the template above stays header-only without touching pool state).
  void PoolFor(int n, const std::function<void(size_t)>& fn) const;

  /// The shared fan-out primitive; unique_ptr so const methods can run
  /// rounds. Mutable round state lives here, which is why one runner
  /// must not execute grids from two threads at once (see class doc).
  std::unique_ptr<common::WorkerPool> pool_;
};

}  // namespace ac3::runner

#endif  // AC3_RUNNER_SWEEP_RUNNER_H_
