// SweepRunner: the parallel experiment substrate.
//
// The discrete-event kernel (src/sim/simulation.h) is deterministic and
// single-threaded, so the road to multi-core throughput is running *many
// independent seeded worlds at once*: a sweep is a protocol × topology ×
// failure-mode × seed grid where every point builds its own ScenarioWorld,
// runs one swap engine to a verdict, and reduces the SwapReport to a
// RunOutcome. A worker pool executes points in parallel; results are
// stored by point index, so the output is bit-for-bit identical whatever
// the thread count — the determinism contract tests/runner_test.cc pins.
//
// Aggregation turns a bag of outcomes into the numbers the paper's
// evaluation (Section 6) reports: commit/abort/atomicity-violation counts,
// mean/p50/p99 latency both in milliseconds and in Δs (normalized by a
// measured Δ), fees, and throughput.

#ifndef AC3_RUNNER_SWEEP_RUNNER_H_
#define AC3_RUNNER_SWEEP_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/swap_report.h"
#include "src/runner/json.h"

namespace ac3::runner {

/// Executes fn(0..n-1) on a pool of `threads` workers (claiming indices
/// from a shared counter) and joins. `threads <= 1` runs inline. `fn` must
/// be safe to call concurrently for distinct indices.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

/// Deterministic parallel map: out[i] = fn(i), independent of `threads`.
template <typename T>
std::vector<T> ParallelMap(int n, int threads,
                           const std::function<T(int)>& fn) {
  std::vector<T> out(static_cast<size_t>(n));
  ParallelFor(n, threads, [&](int i) { out[static_cast<size_t>(i)] = fn(i); });
  return out;
}

// ---- the sweep grid -------------------------------------------------------

enum class Protocol { kHerlihy, kAc3tw, kAc3wn };
const char* ProtocolName(Protocol protocol);
/// Round-trip of ProtocolName (same table); InvalidArgument on unknown
/// names.
Result<Protocol> ParseProtocol(const std::string& name);

enum class FailureMode {
  kNone,
  /// Participant 1 crashes shortly after the swap starts and recovers
  /// later — the paper's motivating "Bob crashes" scenario.
  kCrashParticipant,
  /// Participant 1 is partitioned from every chain for the same window.
  kPartitionParticipant,
};
const char* FailureModeName(FailureMode mode);
Result<FailureMode> ParseFailureMode(const std::string& name);

/// The swap-graph families of the evaluation (Sections 5.3 / 6): the
/// single-leader-feasible shapes the HTLC baselines can run, plus the
/// shapes only AC3WN can commit (complete digraphs and the Figure 7
/// family reject every single leader).
enum class Topology {
  kRing,            ///< 0 -> 1 -> ... -> n-1 -> 0 (diameter = size).
  kPath,            ///< 0 -> 1 -> ... -> n-1.
  kStar,            ///< hub 0 <-> each leaf.
  kComplete,        ///< every ordered pair; infeasible for size >= 3.
  kRandomFeasible,  ///< ring + seeded forward chords; always feasible.
  kFig7aCyclic,     ///< Figure 7(a): bidirectional ring, infeasible.
  kFig7bDisconnected,  ///< Figure 7(b): disjoint 2-swaps, infeasible.
};
const char* TopologyName(Topology topology);
Result<Topology> ParseTopology(const std::string& name);
/// True when the Herlihy/Nolan baselines can execute the family at `size`
/// participants (the Section 5.3 feasibility boundary).
bool TopologySingleLeaderFeasible(Topology topology, int size);

/// One cell of the grid: which engine, on which graph family over how many
/// participants, under which failure, with which world seed.
struct SweepPoint {
  Protocol protocol = Protocol::kAc3wn;
  Topology topology = Topology::kRing;
  int size = 2;  ///< Participants in the swap graph.
  FailureMode failure = FailureMode::kNone;
  uint64_t seed = 1;
};

/// The cross-product axes plus the shared world/engine parameters.
struct SweepGridConfig {
  std::vector<Protocol> protocols = {Protocol::kHerlihy, Protocol::kAc3wn};
  std::vector<Topology> topologies = {Topology::kRing};
  std::vector<int> sizes = {2};
  std::vector<FailureMode> failures = {FailureMode::kNone};
  std::vector<uint64_t> seeds = {1};

  /// Asset chains in each world: min(size, max_asset_chains).
  int max_asset_chains = 4;
  chain::Amount funding = 5000;
  chain::Amount edge_amount = 100;

  /// Extra-chord probability for Topology::kRandomFeasible.
  double random_chord_prob = 0.3;

  /// Engine knobs shared by all protocols (the bench "fast" profile).
  Duration delta = Seconds(2);
  uint32_t confirm_depth = 1;
  uint32_t witness_depth_d = 2;
  Duration resubmit_interval = Milliseconds(800);
  Duration publish_patience = Seconds(20);
  Duration deadline = Minutes(60);

  /// Crash/partition onset and length for the failure modes, in Δs.
  double failure_onset_deltas = 1.0;
  double failure_length_deltas = 6.0;
};

/// The grid flattened in deterministic order:
/// protocols × topologies × sizes × failures × seeds (seed innermost).
std::vector<SweepPoint> GridPoints(const SweepGridConfig& config);

/// Builds the `topology` family over the world's first `size` participants,
/// cycling through the available asset chains. `seed` only matters for
/// Topology::kRandomFeasible (a private Rng stream, so the world's own
/// randomness is untouched).
graph::Ac2tGraph TopologyOverWorld(core::ScenarioWorld* world,
                                   Topology topology, int size,
                                   chain::Amount amount, uint64_t seed,
                                   double chord_prob = 0.3);

/// A directed ring over the world's first `n` participants (diameter = n) —
/// the shape every ring sweep and timeline bench shares.
graph::Ac2tGraph RingOverWorld(core::ScenarioWorld* world, int n,
                               chain::Amount amount = 100);

// ---- per-run results ------------------------------------------------------

/// A SwapReport reduced to the numbers sweeps aggregate.
struct RunOutcome {
  SweepPoint point;
  /// Engine constructed and ran to its verdict (or deadline).
  bool ok = false;
  std::string error;  ///< Set when !ok.
  /// The engine refused the graph at Start() (single-leader infeasible) —
  /// the paper's Section 5.3 functional gap, distinct from a world error.
  bool infeasible = false;

  bool finished = false;
  bool committed = false;
  bool aborted = false;
  bool atomicity_violated = false;

  double latency_ms = -1;   ///< end_time - start_time when finished.
  double decision_ms = -1;  ///< decision_time - start_time when decided.
  int64_t total_fees = 0;
  int edges_redeemed = 0;
  int edges_refunded = 0;
  int edges_stranded = 0;
  int edges_unpublished = 0;

  /// Simulation events executed by this cell's world — deterministic, and
  /// the direct measure of the reactive-substrate win (the fixed-poll
  /// engines executed O(duration / poll_interval) events per run).
  int64_t sim_events = 0;

  /// Wall-clock cost of this cell's world (machine-dependent; excluded
  /// from OutcomeToJson so the determinism contract stays intact — see
  /// GridWallJson for publishing it).
  double wall_ms = 0;
};

/// Reduces an engine's SwapReport (already run) to a RunOutcome.
RunOutcome ReduceReport(const SweepPoint& point,
                        const protocols::SwapReport& report);

/// Builds a fresh seeded world for `point` and runs one swap to a verdict.
/// Thread-safe for distinct points (each call owns its world).
RunOutcome RunSwapPoint(const SweepGridConfig& config, const SweepPoint& point);

// ---- aggregation ----------------------------------------------------------

/// Order statistics over a latency sample (nearest-rank percentiles).
struct LatencyStats {
  int samples = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};
LatencyStats ComputeLatencyStats(std::vector<double> samples_ms);

struct SweepAggregate {
  int runs = 0;
  int errors = 0;
  /// Graphs the protocol refused at Start() (subset of neither errors nor
  /// finished: the engine never ran).
  int infeasible = 0;
  int finished = 0;
  int committed = 0;
  int aborted = 0;
  int atomicity_violations = 0;

  /// Latency over committed runs only (the paper's Section 6.1 metric).
  LatencyStats commit_latency;
  /// The measured Δ used to normalize, and the normalized statistics.
  double delta_ms = 0;
  double mean_latency_deltas = 0;
  double p50_latency_deltas = 0;
  double p99_latency_deltas = 0;

  double mean_fees = 0;
  /// Committed swaps per simulated second of end-to-end latency: the
  /// steady-state rate one sequential coordinator would sustain.
  double throughput_swaps_per_sec = 0;
};

/// `delta_ms <= 0` leaves the Δ-normalized fields at zero.
SweepAggregate Aggregate(const std::vector<RunOutcome>& outcomes,
                         double delta_ms);

Json OutcomeToJson(const RunOutcome& outcome);
Json AggregateToJson(const SweepAggregate& aggregate);

/// Wall-clock stats of one RunGrid invocation.
struct GridWallStats {
  /// Elapsed wall time of the whole grid (across all workers).
  double wall_ms = 0;
  /// Grid cells completed per wall-clock second (the sweep substrate's
  /// own throughput metric — worlds, not swaps).
  double worlds_per_sec = 0;
};

/// The envelope "wall" payload for a grid run: wall_ms_grid,
/// worlds_per_sec, and one {point, wall_ms} record per cell. Everything
/// here is machine-dependent by design; deterministic values belong in
/// OutcomeToJson / AggregateToJson.
Json GridWallJson(const GridWallStats& stats,
                  const std::vector<RunOutcome>& outcomes);

/// Measures Δ empirically: the time for one participant to publish a
/// transaction and have it publicly recognized (confirm_depth blocks deep)
/// on asset chain 0 of a fresh world built from `options`. Grounds the
/// "latency in Δs" columns. Returns 0 on failure.
double MeasureDeltaMs(const core::ScenarioOptions& options,
                      uint32_t confirm_depth);

// ---- the runner -----------------------------------------------------------

class SweepRunner {
 public:
  /// `threads <= 0` selects std::thread::hardware_concurrency().
  explicit SweepRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Runs every grid point; outcomes are in GridPoints() order regardless
  /// of the thread count.
  std::vector<RunOutcome> RunGrid(const SweepGridConfig& config) const;

  /// RunGrid plus wall-clock accounting (per-cell wall_ms is always
  /// filled in; `stats` receives the grid totals when non-null).
  std::vector<RunOutcome> RunGridTimed(const SweepGridConfig& config,
                                       GridWallStats* stats) const;

  /// Generic escape hatch for sweeps that are not single-swap grids (e.g.
  /// chain-saturation throughput runs): a deterministic parallel map over
  /// `n` independent simulations.
  template <typename T>
  std::vector<T> Map(int n, const std::function<T(int)>& fn) const {
    return ParallelMap<T>(n, threads_, fn);
  }

 private:
  int threads_;
};

}  // namespace ac3::runner

#endif  // AC3_RUNNER_SWEEP_RUNNER_H_
