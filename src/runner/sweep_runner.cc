#include "src/runner/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "src/common/worker_pool.h"
#include "src/contracts/contract.h"
#include "src/graph/ac2t_graph.h"
#include "src/protocols/ac3tw_swap.h"
#include "src/protocols/ac3wn_swap.h"
#include "src/protocols/herlihy_swap.h"
#include "src/protocols/quorum_commit.h"
#include "src/protocols/trent.h"

namespace ac3::runner {

void ParallelFor(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // One-shot round on the shared pool primitive (callers that issue many
  // rounds should hold a common::WorkerPool — SweepRunner does).
  common::WorkerPool pool(threads);
  pool.ParallelFor(static_cast<size_t>(n),
                   [&fn](size_t i) { fn(static_cast<int>(i)); });
}

namespace {

/// One shared name table per enum: the printers and the Parse* round-trips
/// read the same rows, so they cannot drift apart (and the bench CLI
/// resolves the same spellings the JSON files carry).
template <typename E>
struct NameRow {
  E value;
  const char* name;
};

constexpr NameRow<Protocol> kProtocolNames[] = {
    {Protocol::kHerlihy, "herlihy"},
    {Protocol::kAc3tw, "ac3tw"},
    {Protocol::kAc3wn, "ac3wn"},
    {Protocol::kQuorum, "quorum"},
};

constexpr NameRow<FailureMode> kFailureModeNames[] = {
    {FailureMode::kNone, "none"},
    {FailureMode::kCrashParticipant, "crash_participant"},
    {FailureMode::kPartitionParticipant, "partition_participant"},
    {FailureMode::kCrashCoordinatorAtPrepare, "crash_coordinator_at_prepare"},
    {FailureMode::kCrashCoordinatorAtCommit, "crash_coordinator_at_commit"},
    {FailureMode::kDropMessages, "drop_messages"},
    {FailureMode::kDuplicateMessages, "duplicate_messages"},
};

constexpr NameRow<Topology> kTopologyNames[] = {
    {Topology::kRing, "ring"},
    {Topology::kPath, "path"},
    {Topology::kStar, "star"},
    {Topology::kComplete, "complete"},
    {Topology::kRandomFeasible, "random_feasible"},
    {Topology::kFig7aCyclic, "fig7a_cyclic"},
    {Topology::kFig7bDisconnected, "fig7b_disconnected"},
};

template <typename E, size_t N>
const char* NameOf(const NameRow<E> (&table)[N], E value) {
  for (const NameRow<E>& row : table) {
    if (row.value == value) return row.name;
  }
  return "?";
}

template <typename E, size_t N>
Result<E> ParseOf(const NameRow<E> (&table)[N], const std::string& name,
                  const char* what) {
  for (const NameRow<E>& row : table) {
    if (name == row.name) return row.value;
  }
  std::string known;
  for (const NameRow<E>& row : table) {
    if (!known.empty()) known += ", ";
    known += row.name;
  }
  return Status::InvalidArgument("unknown " + std::string(what) + " '" +
                                 name + "' (known: " + known + ")");
}

}  // namespace

const char* ProtocolName(Protocol protocol) {
  return NameOf(kProtocolNames, protocol);
}

Result<Protocol> ParseProtocol(const std::string& name) {
  return ParseOf(kProtocolNames, name, "protocol");
}

const char* FailureModeName(FailureMode mode) {
  return NameOf(kFailureModeNames, mode);
}

Result<FailureMode> ParseFailureMode(const std::string& name) {
  return ParseOf(kFailureModeNames, name, "failure mode");
}

const char* TopologyName(Topology topology) {
  return NameOf(kTopologyNames, topology);
}

Result<Topology> ParseTopology(const std::string& name) {
  return ParseOf(kTopologyNames, name, "topology");
}

bool TopologySingleLeaderFeasible(Topology topology, int size) {
  switch (topology) {
    case Topology::kRing:
    case Topology::kPath:
    case Topology::kStar:
    case Topology::kRandomFeasible:
      return true;
    case Topology::kComplete:
      return size <= 2;  // n = 2 is the plain two-party swap.
    case Topology::kFig7aCyclic:
      return size <= 2;  // Two parties make one bidirectional pair.
    case Topology::kFig7bDisconnected:
      return size <= 3;  // A single pair (plus an isolated vertex) is fine.
  }
  return false;
}

std::vector<SweepPoint> GridPoints(const SweepGridConfig& config) {
  std::vector<SweepPoint> points;
  points.reserve(config.protocols.size() * config.topologies.size() *
                 config.sizes.size() * config.failures.size() *
                 config.seeds.size());
  for (Protocol protocol : config.protocols) {
    for (Topology topology : config.topologies) {
      for (int size : config.sizes) {
        for (FailureMode failure : config.failures) {
          for (uint64_t seed : config.seeds) {
            points.push_back(
                SweepPoint{protocol, topology, size, failure, seed});
          }
        }
      }
    }
  }
  return points;
}

graph::Ac2tGraph TopologyOverWorld(core::ScenarioWorld* world,
                                   Topology topology, int size,
                                   chain::Amount amount, uint64_t seed,
                                   double chord_prob) {
  std::vector<crypto::PublicKey> pks;
  std::vector<chain::ChainId> chains;
  pks.reserve(static_cast<size_t>(size));
  chains.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    pks.push_back(world->participant(i)->pk());
    chains.push_back(world->asset_chain(
        i % static_cast<int>(world->asset_chains().size())));
  }
  const TimePoint now = world->env()->sim()->Now();
  switch (topology) {
    case Topology::kRing:
      return graph::MakeRing(pks, chains, amount, now);
    case Topology::kPath:
      return graph::MakePath(pks, chains, amount, now);
    case Topology::kStar:
      return graph::MakeStar(pks, chains, amount, now);
    case Topology::kComplete:
      return graph::MakeCompleteDigraph(pks, chains, amount, now);
    case Topology::kRandomFeasible: {
      // A private stream keyed on the cell seed: the graph shape is a pure
      // function of (seed, size), and the world's RNG is untouched.
      Rng rng(seed ^ 0x70706f6cull);
      return graph::MakeRandomFeasibleGraph(pks, chains, amount, chord_prob,
                                            &rng, now);
    }
    case Topology::kFig7aCyclic:
      return graph::MakeFigure7aCyclic(pks, chains, amount, now);
    case Topology::kFig7bDisconnected:
      return graph::MakeFigure7bDisconnected(pks, chains, amount, now);
  }
  return graph::MakeRing(pks, chains, amount, now);
}

graph::Ac2tGraph RingOverWorld(core::ScenarioWorld* world, int n,
                               chain::Amount amount) {
  return TopologyOverWorld(world, Topology::kRing, n, amount, /*seed=*/0);
}

RunOutcome ReduceReport(const SweepPoint& point,
                        const protocols::SwapReport& report) {
  RunOutcome outcome;
  outcome.point = point;
  outcome.ok = true;
  outcome.finished = report.finished;
  outcome.committed = report.committed;
  outcome.aborted = report.aborted;
  outcome.atomicity_violated = report.AtomicityViolated();
  if (report.end_time >= report.start_time) {
    outcome.latency_ms = static_cast<double>(report.Latency());
  }
  if (report.decision_time >= report.start_time) {
    outcome.decision_ms =
        static_cast<double>(report.decision_time - report.start_time);
  }
  outcome.total_fees = static_cast<int64_t>(report.total_fees);
  outcome.edges_redeemed =
      report.CountOutcome(protocols::EdgeOutcome::kRedeemed);
  outcome.edges_refunded =
      report.CountOutcome(protocols::EdgeOutcome::kRefunded);
  outcome.edges_stranded =
      report.CountOutcome(protocols::EdgeOutcome::kPublished);
  outcome.edges_unpublished =
      report.CountOutcome(protocols::EdgeOutcome::kUnpublished);
  outcome.messages_sent = report.messages_sent;
  outcome.message_bytes_sent = report.message_bytes_sent;
  return outcome;
}

namespace {

core::ScenarioOptions WorldOptionsFor(const SweepGridConfig& config,
                                      const SweepPoint& point) {
  core::ScenarioOptions options;
  options.participants = point.size;
  options.asset_chains = std::min(point.size, config.max_asset_chains);
  options.funding = config.funding;
  options.seed = point.seed;
  options.witness_chain = point.protocol == Protocol::kAc3wn;
  return options;
}

/// Translates the coordinator-crash failure modes into the engine-driven
/// CoordinatorCrashPlan (the crash is phase-precise, so it cannot be
/// injected by wall-clock schedule the way kCrashParticipant is).
protocols::CoordinatorCrashPlan CoordinatorPlanFor(
    const SweepGridConfig& config, const SweepPoint& point) {
  protocols::CoordinatorCrashPlan plan;
  switch (point.failure) {
    case FailureMode::kCrashCoordinatorAtPrepare:
      plan.phase = protocols::CoordinatorCrashPhase::kAtPrepare;
      break;
    case FailureMode::kCrashCoordinatorAtCommit:
      plan.phase = protocols::CoordinatorCrashPhase::kAtCommit;
      break;
    default:
      return plan;
  }
  if (config.coordinator_recovery_deltas >= 0) {
    plan.recover_after = static_cast<Duration>(
        config.coordinator_recovery_deltas *
        static_cast<double>(config.delta));
  }
  return plan;
}

void InjectFailure(const SweepGridConfig& config, const SweepPoint& point,
                   core::ScenarioWorld* world) {
  if (point.failure == FailureMode::kNone || point.size < 2) return;
  const sim::NodeId victim = world->participant(1)->node();
  const auto onset = static_cast<TimePoint>(
      config.failure_onset_deltas * static_cast<double>(config.delta));
  const auto length = static_cast<Duration>(
      config.failure_length_deltas * static_cast<double>(config.delta));
  switch (point.failure) {
    case FailureMode::kCrashParticipant:
      world->env()->failures()->CrashFor(victim, onset, length);
      break;
    case FailureMode::kPartitionParticipant:
      world->env()->failures()->SchedulePartition(
          sim::PartitionWindow{victim, onset, onset + length});
      break;
    case FailureMode::kCrashCoordinatorAtPrepare:
    case FailureMode::kCrashCoordinatorAtCommit:
      // Engine-driven (phase-precise): see CoordinatorPlanFor.
      break;
    case FailureMode::kDropMessages: {
      sim::MessageFaults faults;
      faults.drop_prob = config.message_drop_prob;
      world->env()->network()->set_message_faults(faults);
      break;
    }
    case FailureMode::kDuplicateMessages: {
      sim::MessageFaults faults;
      faults.duplicate_prob = config.message_duplicate_prob;
      world->env()->network()->set_message_faults(faults);
      break;
    }
    case FailureMode::kNone:
      break;
  }
}

RunOutcome ErrorOutcome(const SweepPoint& point, const Status& status) {
  RunOutcome outcome;
  outcome.point = point;
  outcome.ok = false;
  outcome.error = status.ToString();
  // Start() refuses single-leader-infeasible graphs with FailedPrecondition
  // — the Section 5.3 boundary, reported distinctly from world errors.
  outcome.infeasible = status.code() == StatusCode::kFailedPrecondition;
  return outcome;
}

}  // namespace

namespace {

/// Wraps RunSwapPoint with per-cell wall-clock accounting.
RunOutcome TimedSwapPoint(const SweepGridConfig& config,
                          const SweepPoint& point) {
  const auto start = std::chrono::steady_clock::now();
  RunOutcome outcome = RunSwapPoint(config, point);
  outcome.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return outcome;
}

}  // namespace

Result<protocols::SwapReport> RunSwapReport(const SweepGridConfig& config,
                                            const SweepPoint& point,
                                            int64_t* sim_events_out) {
  core::ScenarioWorld world(WorldOptionsFor(config, point));
  InjectFailure(config, point, &world);
  world.StartMining();
  graph::Ac2tGraph graph =
      TopologyOverWorld(&world, point.topology, point.size,
                        config.edge_amount, point.seed,
                        config.random_chord_prob);
  const TimePoint deadline = world.env()->sim()->Now() + config.deadline;

  auto finish = [&](Result<protocols::SwapReport> report) {
    if (sim_events_out != nullptr) {
      *sim_events_out =
          static_cast<int64_t>(world.env()->sim()->events_executed());
    }
    return report;
  };

  switch (point.protocol) {
    case Protocol::kHerlihy: {
      protocols::HtlcConfig htlc;
      htlc.delta = config.delta;
      htlc.confirm_depth = config.confirm_depth;
      htlc.resubmit_interval = config.resubmit_interval;
      htlc.coordinator_crash = CoordinatorPlanFor(config, point);
      protocols::HerlihySwapEngine engine(world.env(), graph,
                                          world.all_participants(), htlc);
      return finish(engine.Run(deadline));
    }
    case Protocol::kAc3tw: {
      protocols::Ac3twConfig cfg;
      cfg.delta = config.delta;
      cfg.confirm_depth = config.confirm_depth;
      cfg.resubmit_interval = config.resubmit_interval;
      cfg.publish_patience = config.publish_patience;
      cfg.coordinator_crash = CoordinatorPlanFor(config, point);
      protocols::TrustedWitness trent("Trent", 0x7e27 + point.seed,
                                      world.env(), config.confirm_depth);
      protocols::Ac3twSwapEngine engine(world.env(), graph,
                                        world.all_participants(), &trent, cfg);
      return finish(engine.Run(deadline));
    }
    case Protocol::kAc3wn: {
      protocols::Ac3wnConfig cfg;
      cfg.delta = config.delta;
      cfg.confirm_depth = config.confirm_depth;
      cfg.witness_depth_d = config.witness_depth_d;
      cfg.resubmit_interval = config.resubmit_interval;
      cfg.publish_patience = config.publish_patience;
      cfg.coordinator_crash = CoordinatorPlanFor(config, point);
      protocols::Ac3wnSwapEngine engine(world.env(), graph,
                                        world.all_participants(),
                                        world.witness_chain(), cfg);
      return finish(engine.Run(deadline));
    }
    case Protocol::kQuorum: {
      protocols::QuorumConfig cfg;
      cfg.delta = config.delta;
      cfg.confirm_depth = config.confirm_depth;
      cfg.resubmit_interval = config.resubmit_interval;
      cfg.publish_patience = config.publish_patience;
      // Takeover fires after two message-latency bounds of coordinator
      // silence — long enough to rule out transient drops, short enough
      // that recovery dominates neither patience nor the deadline.
      cfg.takeover_timeout = 2 * config.delta;
      cfg.coordinator_crash = CoordinatorPlanFor(config, point);
      protocols::QuorumCommitEngine engine(world.env(), graph,
                                           world.all_participants(), cfg);
      return finish(engine.Run(deadline));
    }
  }
  return finish(Status::Internal("unknown protocol"));
}

RunOutcome RunSwapPoint(const SweepGridConfig& config,
                        const SweepPoint& point) {
  int64_t sim_events = 0;
  Result<protocols::SwapReport> report =
      RunSwapReport(config, point, &sim_events);
  if (!report.ok()) return ErrorOutcome(point, report.status());
  RunOutcome outcome = ReduceReport(point, *report);
  outcome.sim_events = sim_events;
  return outcome;
}

LatencyStats ComputeLatencyStats(std::vector<double> samples_ms) {
  LatencyStats stats;
  if (samples_ms.empty()) return stats;
  std::sort(samples_ms.begin(), samples_ms.end());
  stats.samples = static_cast<int>(samples_ms.size());
  double sum = 0;
  for (double v : samples_ms) sum += v;
  stats.mean_ms = sum / static_cast<double>(samples_ms.size());
  auto nearest_rank = [&](double q) {
    const auto n = static_cast<double>(samples_ms.size());
    auto rank = static_cast<size_t>(std::ceil(q * n));
    if (rank == 0) rank = 1;
    return samples_ms[rank - 1];
  };
  stats.p50_ms = nearest_rank(0.50);
  stats.p99_ms = nearest_rank(0.99);
  return stats;
}

SweepAggregate Aggregate(const std::vector<RunOutcome>& outcomes,
                         double delta_ms) {
  SweepAggregate agg;
  agg.delta_ms = delta_ms;
  std::vector<double> commit_latencies;
  double fee_sum = 0;
  int fee_samples = 0;
  for (const RunOutcome& outcome : outcomes) {
    ++agg.runs;
    if (!outcome.ok) {
      if (outcome.infeasible) {
        ++agg.infeasible;
      } else {
        ++agg.errors;
      }
      continue;
    }
    if (outcome.finished) ++agg.finished;
    if (outcome.committed) ++agg.committed;
    if (outcome.aborted) ++agg.aborted;
    if (outcome.atomicity_violated) ++agg.atomicity_violations;
    if (outcome.committed && outcome.latency_ms >= 0) {
      commit_latencies.push_back(outcome.latency_ms);
    }
    fee_sum += static_cast<double>(outcome.total_fees);
    ++fee_samples;
  }
  agg.commit_latency = ComputeLatencyStats(std::move(commit_latencies));
  if (delta_ms > 0 && agg.commit_latency.samples > 0) {
    agg.mean_latency_deltas = agg.commit_latency.mean_ms / delta_ms;
    agg.p50_latency_deltas = agg.commit_latency.p50_ms / delta_ms;
    agg.p99_latency_deltas = agg.commit_latency.p99_ms / delta_ms;
  }
  if (fee_samples > 0) agg.mean_fees = fee_sum / fee_samples;
  if (agg.commit_latency.samples > 0 && agg.commit_latency.mean_ms > 0) {
    agg.throughput_swaps_per_sec = 1000.0 / agg.commit_latency.mean_ms;
  }
  return agg;
}

Json OutcomeToJson(const RunOutcome& outcome) {
  Json j = Json::Object();
  j.Set("protocol", ProtocolName(outcome.point.protocol));
  j.Set("topology", TopologyName(outcome.point.topology));
  j.Set("size", outcome.point.size);
  j.Set("failure", FailureModeName(outcome.point.failure));
  j.Set("seed", outcome.point.seed);
  j.Set("ok", outcome.ok);
  if (!outcome.ok) {
    j.Set("error", outcome.error);
    j.Set("infeasible", outcome.infeasible);
    return j;
  }
  j.Set("sim_events", outcome.sim_events);
  j.Set("finished", outcome.finished);
  j.Set("committed", outcome.committed);
  j.Set("aborted", outcome.aborted);
  j.Set("atomicity_violated", outcome.atomicity_violated);
  j.Set("latency_ms", outcome.latency_ms);
  j.Set("decision_ms", outcome.decision_ms);
  j.Set("total_fees", outcome.total_fees);
  Json edges = Json::Object();
  edges.Set("redeemed", outcome.edges_redeemed);
  edges.Set("refunded", outcome.edges_refunded);
  edges.Set("stranded", outcome.edges_stranded);
  edges.Set("unpublished", outcome.edges_unpublished);
  j.Set("edges", std::move(edges));
  return j;
}

Json AggregateToJson(const SweepAggregate& aggregate) {
  Json j = Json::Object();
  j.Set("runs", aggregate.runs);
  j.Set("errors", aggregate.errors);
  j.Set("infeasible", aggregate.infeasible);
  j.Set("finished", aggregate.finished);
  j.Set("committed", aggregate.committed);
  j.Set("aborted", aggregate.aborted);
  j.Set("atomicity_violations", aggregate.atomicity_violations);
  Json latency = Json::Object();
  latency.Set("samples", aggregate.commit_latency.samples);
  latency.Set("mean_ms", aggregate.commit_latency.mean_ms);
  latency.Set("p50_ms", aggregate.commit_latency.p50_ms);
  latency.Set("p99_ms", aggregate.commit_latency.p99_ms);
  latency.Set("delta_ms", aggregate.delta_ms);
  latency.Set("mean_deltas", aggregate.mean_latency_deltas);
  latency.Set("p50_deltas", aggregate.p50_latency_deltas);
  latency.Set("p99_deltas", aggregate.p99_latency_deltas);
  j.Set("latency", std::move(latency));
  j.Set("mean_fees", aggregate.mean_fees);
  j.Set("throughput_swaps_per_sec", aggregate.throughput_swaps_per_sec);
  return j;
}

double MeasureDeltaMs(const core::ScenarioOptions& options,
                      uint32_t confirm_depth) {
  core::ScenarioWorld world(options);
  world.StartMining();
  protocols::Participant* alice = world.participant(0);
  const TimePoint start = world.env()->sim()->Now();
  auto tx_id = alice->SubmitTransfer(world.asset_chain(0),
                                     world.participant(1)->pk(), 1, 1);
  if (!tx_id.ok()) return 0.0;
  const chain::Blockchain* chain =
      world.env()->blockchain(world.asset_chain(0));
  Status confirmed = world.env()->sim()->RunUntilCondition(
      [&]() {
        auto location = chain->FindTx(*tx_id);
        if (!location.has_value()) return false;
        auto depth = chain->ConfirmationsOf(location->entry->hash);
        return depth.has_value() && *depth >= confirm_depth;
      },
      Minutes(5));
  if (!confirmed.ok()) return 0.0;
  return static_cast<double>(world.env()->sim()->Now() - start);
}

SweepRunner::SweepRunner(int threads)
    : pool_(std::make_unique<common::WorkerPool>(threads)) {
  // Warm the contract factory on this thread so worker threads only ever
  // read the registration map.
  contracts::RegisterBuiltinContracts();
}

SweepRunner::~SweepRunner() = default;

int SweepRunner::threads() const { return pool_->threads(); }

void SweepRunner::PoolFor(int n,
                          const std::function<void(size_t)>& fn) const {
  pool_->ParallelFor(static_cast<size_t>(std::max(n, 0)), fn);
}

std::vector<RunOutcome> SweepRunner::RunGrid(
    const SweepGridConfig& config) const {
  return RunGridTimed(config, nullptr);
}

std::vector<RunOutcome> SweepRunner::RunGridTimed(const SweepGridConfig& config,
                                                  GridWallStats* stats) const {
  const std::vector<SweepPoint> points = GridPoints(config);
  const auto start = std::chrono::steady_clock::now();
  std::vector<RunOutcome> outcomes = Map<RunOutcome>(
      static_cast<int>(points.size()), [&](int i) {
        return TimedSwapPoint(config, points[static_cast<size_t>(i)]);
      });
  if (stats != nullptr) {
    stats->wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    stats->worlds_per_sec =
        stats->wall_ms > 0
            ? static_cast<double>(outcomes.size()) / (stats->wall_ms / 1000.0)
            : 0;
  }
  return outcomes;
}

Json GridWallJson(const GridWallStats& stats,
                  const std::vector<RunOutcome>& outcomes) {
  Json wall = Json::Object();
  wall.Set("wall_ms_grid", stats.wall_ms);
  wall.Set("worlds_per_sec", stats.worlds_per_sec);
  Json cells = Json::Array();
  for (const RunOutcome& outcome : outcomes) {
    Json cell = Json::Object();
    cell.Set("protocol", ProtocolName(outcome.point.protocol));
    cell.Set("topology", TopologyName(outcome.point.topology));
    cell.Set("size", outcome.point.size);
    cell.Set("failure", FailureModeName(outcome.point.failure));
    cell.Set("seed", outcome.point.seed);
    cell.Set("wall_ms", outcome.wall_ms);
    cells.Push(std::move(cell));
  }
  wall.Set("cells", std::move(cells));
  return wall;
}

}  // namespace ac3::runner
