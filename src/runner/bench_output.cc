#include "src/runner/bench_output.h"

#include <cstdio>
#include <fstream>

namespace ac3::runner {

Json BenchEnvelope(const BenchContext& context, const std::string& name,
                   Json results, Json wall_extra) {
  Json envelope = Json::Object();
  envelope.Set("schema_version", 2);
  envelope.Set("bench", name);
  envelope.Set("smoke", context.smoke);
  envelope.Set("results", std::move(results));
  // Wall-clock section: machine-dependent, so deliberately separate from
  // the deterministic "results" the golden tests fingerprint.
  Json wall = Json::Object();
  wall.Set("wall_ms_total",
           std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - context.start_time)
               .count());
  if (wall_extra.type() == Json::Type::kObject) {
    for (const auto& [key, value] : wall_extra.members()) {
      wall.Set(key, value);
    }
  }
  envelope.Set("wall", std::move(wall));
  return envelope;
}

Result<std::string> WriteBenchJson(const BenchContext& context,
                                   const std::string& name, Json results,
                                   Json wall_extra) {
  const std::string path = context.out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  out << BenchEnvelope(context, name, std::move(results),
                       std::move(wall_extra))
             .Serialize();
  out.close();
  if (!out) return Status::Unavailable("short write to " + path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return path;
}

}  // namespace ac3::runner
