#include "src/runner/bench_output.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace ac3::runner {

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--smoke] [--out DIR] [--threads N]\n"
      "          [--protocols LIST] [--topologies LIST] [--failures LIST]\n"
      "          [--help]\n"
      "  --smoke            tiny grid (<10s), for CI bit-rot checks\n"
      "  --out DIR          directory for BENCH_*.json (default: .)\n"
      "  --threads N        sweep worker threads (default: all cores)\n"
      "  --protocols LIST   e.g. herlihy,ac3tw,ac3wn (sweep benches)\n"
      "  --topologies LIST  e.g. ring,path,star,complete,random_feasible\n"
      "  --failures LIST    e.g. none,crash_participant\n",
      argv0);
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

/// Parses a comma list through `parse`; on failure prints the status and
/// flags the context for a non-zero exit.
template <typename E, typename ParseFn>
void ParseAxisList(const char* flag, const std::string& list, ParseFn parse,
                   std::vector<E>* out, BenchContext* context,
                   const char* argv0) {
  for (const std::string& token : SplitCommaList(list)) {
    auto parsed = parse(token);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", flag,
                   parsed.status().ToString().c_str());
      PrintUsage(argv0);
      context->exit_early = true;
      context->exit_code = 1;
      return;
    }
    out->push_back(*parsed);
  }
}

}  // namespace

void ApplyAxisOverrides(const BenchContext& context, SweepGridConfig* grid) {
  if (!context.protocols.empty()) grid->protocols = context.protocols;
  if (!context.topologies.empty()) grid->topologies = context.topologies;
  if (!context.failures.empty()) grid->failures = context.failures;
}

BenchContext ParseBenchArgs(int argc, char** argv) {
  BenchContext context;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      context.smoke = true;
    } else if (std::strcmp(arg, "--out") == 0 ||
               std::strcmp(arg, "--threads") == 0 ||
               std::strcmp(arg, "--protocols") == 0 ||
               std::strcmp(arg, "--topologies") == 0 ||
               std::strcmp(arg, "--failures") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg);
        PrintUsage(argv[0]);
        context.exit_early = true;
        context.exit_code = 1;
        return context;
      }
      const std::string value = argv[++i];
      if (std::strcmp(arg, "--out") == 0) {
        context.out_dir = value;
      } else if (std::strcmp(arg, "--threads") == 0) {
        context.threads = std::atoi(value.c_str());
      } else if (std::strcmp(arg, "--protocols") == 0) {
        ParseAxisList("--protocols", value, ParseProtocol,
                      &context.protocols, &context, argv[0]);
      } else if (std::strcmp(arg, "--topologies") == 0) {
        ParseAxisList("--topologies", value, ParseTopology,
                      &context.topologies, &context, argv[0]);
      } else {
        ParseAxisList("--failures", value, ParseFailureMode,
                      &context.failures, &context, argv[0]);
      }
      if (context.exit_early) return context;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      PrintUsage(argv[0]);
      context.exit_early = true;
      return context;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      PrintUsage(argv[0]);
      context.exit_early = true;
      context.exit_code = 1;
      return context;
    }
  }
  return context;
}

Json BenchEnvelope(const BenchContext& context, const std::string& name,
                   Json results, Json wall_extra) {
  Json envelope = Json::Object();
  envelope.Set("schema_version", 2);
  envelope.Set("bench", name);
  envelope.Set("smoke", context.smoke);
  envelope.Set("results", std::move(results));
  // Wall-clock section: machine-dependent, so deliberately separate from
  // the deterministic "results" the golden tests fingerprint.
  Json wall = Json::Object();
  wall.Set("wall_ms_total",
           std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - context.start_time)
               .count());
  if (wall_extra.type() == Json::Type::kObject) {
    for (const auto& [key, value] : wall_extra.members()) {
      wall.Set(key, value);
    }
  }
  envelope.Set("wall", std::move(wall));
  return envelope;
}

Result<std::string> WriteBenchJson(const BenchContext& context,
                                   const std::string& name, Json results,
                                   Json wall_extra) {
  const std::string path = context.out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  out << BenchEnvelope(context, name, std::move(results),
                       std::move(wall_extra))
             .Serialize();
  out.close();
  if (!out) return Status::Unavailable("short write to " + path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return path;
}

}  // namespace ac3::runner
