#include "src/runner/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ac3::runner {

namespace {

/// Shortest round-trip representation; integral-valued doubles keep a
/// ".0" so the type survives a parse.
void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out->append("null");
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // 32 bytes always suffice for shortest-form doubles.
  std::string_view sv(buf, static_cast<size_t>(ptr - buf));
  out->append(sv);
  if (sv.find_first_of(".eE") == std::string_view::npos) out->append(".0");
}

void AppendIndent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    Json value;
    Status s = ParseValue(&value);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) return Err("trailing characters");
    return value;
  }

 private:
  Status Err(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json(true);
          return Status::OK();
        }
        return Err("expected 'true'");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json(false);
          return Status::OK();
        }
        return Err("expected 'false'");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json();
          return Status::OK();
        }
        return Err("expected 'null'");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      Json value;
      st = ParseValue(&value);
      if (!st.ok()) return st;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json value;
      Status st = ParseValue(&value);
      if (!st.ok()) return st;
      out->Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<uint32_t>(h - 'A' + 10);
            else
              return Err("bad \\u escape digit");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as-is; the writer only emits \u for control chars).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string_view body = text_.substr(start, pos_ - start);
    if (body.empty() || body == "-") return Err("expected a value");
    if (body.find_first_of(".eE") == std::string_view::npos) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(body.data(), body.data() + body.size(), value);
      if (ec == std::errc() && ptr == body.data() + body.size()) {
        *out = Json(value);
        return Status::OK();
      }
    }
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(body.data(), body.data() + body.size(), value);
    if (ec != std::errc() || ptr != body.data() + body.size()) {
      return Err("malformed number");
    }
    *out = Json(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::Set(std::string_view key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = Find(key);
  if (found == nullptr) {
    std::fprintf(stderr, "Json::at: missing key '%.*s'\n",
                 static_cast<int>(key.size()), key.data());
    std::abort();
  }
  return *found;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return items_ == other.items_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

void Json::SerializeTo(std::string* out, int depth) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt:
      out->append(std::to_string(int_));
      break;
    case Type::kDouble:
      AppendDouble(out, double_);
      break;
    case Type::kString:
      out->push_back('"');
      out->append(JsonEscape(string_));
      out->push_back('"');
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out->append("[]");
        break;
      }
      out->append("[\n");
      for (size_t i = 0; i < items_.size(); ++i) {
        AppendIndent(out, depth + 1);
        items_[i].SerializeTo(out, depth + 1);
        if (i + 1 < items_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(out, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out->append("{}");
        break;
      }
      out->append("{\n");
      for (size_t i = 0; i < members_.size(); ++i) {
        AppendIndent(out, depth + 1);
        out->push_back('"');
        out->append(JsonEscape(members_[i].first));
        out->append("\": ");
        members_[i].second.SerializeTo(out, depth + 1);
        if (i + 1 < members_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(out, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(&out, 0);
  out.push_back('\n');
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace ac3::runner
