// Schnorr signatures over the DefaultGroup() prime-order subgroup.
//
// These are the "digital signatures [26]" of the paper (Section 2.3): every
// end-user identity is a public key, every transaction is a signature over
// its canonical encoding, ms(D) is a vector of signatures, and Trent's
// commitment-scheme secrets in AC3TW are signatures by Trent's key.
//
// The scheme is textbook Schnorr with deterministic (RFC-6979-style) nonces:
//   sk: x in [1, q)            pk: y = g^x mod p
//   sign(m):  k = H(x || m) mod (q-1) + 1,  r = g^k mod p,
//             e = H(r || y || m) mod q,     s = (k + e*x) mod q
//   verify:   r' = g^s * y^(q - e) mod p,   accept iff H(r' || y || m) ≡ e
//
// Parameter sizes are toy (see primes.h); the code paths are real.

#ifndef AC3_CRYPTO_SCHNORR_H_
#define AC3_CRYPTO_SCHNORR_H_

#include <compare>
#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/crypto/hash256.h"

namespace ac3::crypto {

/// A public key; doubles as the on-chain identity ("address") of an
/// end-user, exactly as in the paper's data model (Section 2.2).
class PublicKey {
 public:
  PublicKey() : y_(0) {}
  explicit PublicKey(uint64_t y) : y_(y) {}

  uint64_t y() const { return y_; }
  bool IsValid() const { return y_ != 0; }

  /// Canonical encoding (8 bytes LE), the input to addresses and hashes.
  Bytes Encode() const;
  static Result<PublicKey> Decode(ByteReader* reader);

  /// Address = SHA-256 of the encoded key. Used in logs and asset ownership.
  Hash256 ToAddress() const;
  std::string ToHexShort() const;

  auto operator<=>(const PublicKey&) const = default;

 private:
  uint64_t y_;
};

/// A Schnorr signature (e, s).
struct Signature {
  uint64_t e = 0;
  uint64_t s = 0;

  bool IsValid() const { return e != 0 || s != 0; }
  Bytes Encode() const;
  static Result<Signature> Decode(ByteReader* reader);
  auto operator<=>(const Signature&) const = default;
};

/// A private/public key pair.
class KeyPair {
 public:
  /// Derives a key pair from a 64-bit seed (deterministic; used by tests and
  /// the simulator's identity factory).
  static KeyPair FromSeed(uint64_t seed);
  /// Draws a fresh key pair from `rng`.
  static KeyPair Generate(Rng* rng);

  const PublicKey& public_key() const { return public_key_; }

  /// Signs the canonical byte encoding `message`.
  Signature Sign(const Bytes& message) const;
  /// Convenience: signs a UTF-8 string.
  Signature SignString(const std::string& message) const;

 private:
  KeyPair(uint64_t secret, PublicKey pk)
      : secret_(secret), public_key_(pk) {}

  uint64_t secret_;
  PublicKey public_key_;
};

/// Verifies `sig` over `message` under `pk`. Stateless and deterministic —
/// this is what miners run when validating transactions and what smart
/// contracts run inside IsRedeemable/IsRefundable (Algorithm 2).
bool Verify(const PublicKey& pk, const Bytes& message, const Signature& sig);

/// String-message convenience overload.
bool VerifyString(const PublicKey& pk, const std::string& message,
                  const Signature& sig);

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_SCHNORR_H_
