#include "src/crypto/sha256.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/crypto/sha256_simd.h"

namespace ac3::crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (~x & z);
}
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}
inline uint32_t BigSigma0(uint32_t x) {
  return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22);
}
inline uint32_t BigSigma1(uint32_t x) {
  return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25);
}
inline uint32_t SmallSigma0(uint32_t x) {
  return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3);
}
inline uint32_t SmallSigma1(uint32_t x) {
  return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10);
}

/// The portable reference compression — the bottom rung of the dispatch
/// ladder and the oracle every hardware kernel is tested against.
void CompressScalar(uint32_t* state, const uint8_t* block) {
  uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = static_cast<uint32_t>(block[t * 4]) << 24 |
           static_cast<uint32_t>(block[t * 4 + 1]) << 16 |
           static_cast<uint32_t>(block[t * 4 + 2]) << 8 |
           static_cast<uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    w[t] = SmallSigma1(w[t - 2]) + w[t - 7] + SmallSigma0(w[t - 15]) + w[t - 16];
  }

  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int t = 0; t < 64; ++t) {
    uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kK[t] + w[t];
    uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

/// The portable two-lane round-interleaved compression (scalar rung).
void Compress2Scalar(uint32_t* state_a, const uint8_t* block_a,
                     uint32_t* state_b, const uint8_t* block_b) {
  // Identical math to Compress(), with lane A and lane B statements
  // interleaved so the two (mutually independent) round dependency chains
  // overlap in the pipeline. Keep the two lanes textually in lockstep when
  // editing: the per-lane results must equal Compress() exactly.
  uint32_t wa[64];
  uint32_t wb[64];
  for (int t = 0; t < 16; ++t) {
    wa[t] = static_cast<uint32_t>(block_a[t * 4]) << 24 |
            static_cast<uint32_t>(block_a[t * 4 + 1]) << 16 |
            static_cast<uint32_t>(block_a[t * 4 + 2]) << 8 |
            static_cast<uint32_t>(block_a[t * 4 + 3]);
    wb[t] = static_cast<uint32_t>(block_b[t * 4]) << 24 |
            static_cast<uint32_t>(block_b[t * 4 + 1]) << 16 |
            static_cast<uint32_t>(block_b[t * 4 + 2]) << 8 |
            static_cast<uint32_t>(block_b[t * 4 + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    wa[t] =
        SmallSigma1(wa[t - 2]) + wa[t - 7] + SmallSigma0(wa[t - 15]) + wa[t - 16];
    wb[t] =
        SmallSigma1(wb[t - 2]) + wb[t - 7] + SmallSigma0(wb[t - 15]) + wb[t - 16];
  }

  uint32_t aa = state_a[0], ba = state_a[1], ca = state_a[2], da = state_a[3];
  uint32_t ea = state_a[4], fa = state_a[5], ga = state_a[6], ha = state_a[7];
  uint32_t ab = state_b[0], bb = state_b[1], cb = state_b[2], db = state_b[3];
  uint32_t eb = state_b[4], fb = state_b[5], gb = state_b[6], hb = state_b[7];

  for (int t = 0; t < 64; ++t) {
    const uint32_t t1a = ha + BigSigma1(ea) + Ch(ea, fa, ga) + kK[t] + wa[t];
    const uint32_t t1b = hb + BigSigma1(eb) + Ch(eb, fb, gb) + kK[t] + wb[t];
    const uint32_t t2a = BigSigma0(aa) + Maj(aa, ba, ca);
    const uint32_t t2b = BigSigma0(ab) + Maj(ab, bb, cb);
    ha = ga;
    hb = gb;
    ga = fa;
    gb = fb;
    fa = ea;
    fb = eb;
    ea = da + t1a;
    eb = db + t1b;
    da = ca;
    db = cb;
    ca = ba;
    cb = bb;
    ba = aa;
    bb = ab;
    aa = t1a + t2a;
    ab = t1b + t2b;
  }

  state_a[0] += aa;
  state_a[1] += ba;
  state_a[2] += ca;
  state_a[3] += da;
  state_a[4] += ea;
  state_a[5] += fa;
  state_a[6] += ga;
  state_a[7] += ha;
  state_b[0] += ab;
  state_b[1] += bb;
  state_b[2] += cb;
  state_b[3] += db;
  state_b[4] += eb;
  state_b[5] += fb;
  state_b[6] += gb;
  state_b[7] += hb;
}

// ---- runtime dispatch -----------------------------------------------------

/// The kernel set of one dispatch level. `compress8` is null on levels
/// without a message-parallel kernel (CompressBatch then runs pairs).
struct DispatchTable {
  Sha256::Dispatch level;
  void (*compress)(uint32_t*, const uint8_t*);
  void (*compress2)(uint32_t*, const uint8_t*, uint32_t*, const uint8_t*);
  void (*compress8)(uint32_t* const*, const uint8_t* const*);
  size_t mining_lanes;
};

constexpr DispatchTable kScalarTable{Sha256::Dispatch::kScalar,
                                     &CompressScalar, &Compress2Scalar,
                                     nullptr, 2};

#if defined(__x86_64__) || defined(__i386__)
constexpr DispatchTable kShaNiTable{Sha256::Dispatch::kShaNi,
                                    &simd::CompressShaNi,
                                    &simd::Compress2ShaNi, nullptr, 2};
// The AVX2 level only has a batch kernel; single/pair compressions stay
// scalar, which keeps each level's behavior attributable to one kernel.
constexpr DispatchTable kAvx2Table{Sha256::Dispatch::kAvx2, &CompressScalar,
                                   &Compress2Scalar, &simd::Compress8Avx2, 8};
#endif

const DispatchTable* TableFor(Sha256::Dispatch level) {
  switch (level) {
    case Sha256::Dispatch::kScalar:
      return &kScalarTable;
#if defined(__x86_64__) || defined(__i386__)
    case Sha256::Dispatch::kShaNi:
      return simd::CpuHasShaNi() ? &kShaNiTable : nullptr;
    case Sha256::Dispatch::kAvx2:
      return simd::CpuHasAvx2() ? &kAvx2Table : nullptr;
#else
    case Sha256::Dispatch::kShaNi:
    case Sha256::Dispatch::kAvx2:
      return nullptr;
#endif
  }
  return nullptr;
}

/// Parses an AC3_SHA256_DISPATCH value; null for unknown/absent names.
const DispatchTable* PinnedTable() {
  const char* pin = std::getenv("AC3_SHA256_DISPATCH");
  if (pin == nullptr) return nullptr;
  for (Sha256::Dispatch level :
       {Sha256::Dispatch::kScalar, Sha256::Dispatch::kShaNi,
        Sha256::Dispatch::kAvx2}) {
    if (std::strcmp(pin, Sha256::DispatchName(level)) == 0) {
      return TableFor(level);  // Null when pinned level is unavailable.
    }
  }
  return nullptr;
}

/// One-time probe: the env pin when valid, else the widest rung of the
/// ladder (SHA-NI beats AVX2 8-way for double-SHA-256 on every CPU that
/// has both, and also wins on single-message hashing). A set-but-unusable
/// pin (typo, or a level this CPU lacks) is loudly ignored — a silent
/// fallback would let a forced-scalar sanitizer shard quietly cover the
/// hardware path instead.
const DispatchTable* ProbeInitialTable() {
  if (const char* pin = std::getenv("AC3_SHA256_DISPATCH")) {
    if (const DispatchTable* pinned = PinnedTable()) return pinned;
    std::fprintf(stderr,
                 "AC3_SHA256_DISPATCH='%s' is not an available level "
                 "(want scalar, shani, or avx2); using the default "
                 "dispatch ladder\n",
                 pin);
  }
  for (Sha256::Dispatch level :
       {Sha256::Dispatch::kShaNi, Sha256::Dispatch::kAvx2}) {
    if (const DispatchTable* table = TableFor(level)) return table;
  }
  return &kScalarTable;
}

/// Remembers whether an env pin restricted availability (made once,
/// alongside the first active-table read).
bool EnvPinActive() {
  static const bool pinned = PinnedTable() != nullptr;
  return pinned;
}

std::atomic<const DispatchTable*> g_active_table{nullptr};

const DispatchTable* ActiveTable() {
  const DispatchTable* table = g_active_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: every loser computes the same deterministic answer.
    table = ProbeInitialTable();
    g_active_table.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

bool Sha256::DispatchAvailable(Dispatch dispatch) {
  ActiveTable();  // Force the one-time probe so EnvPinActive is settled.
  if (EnvPinActive()) return TableFor(dispatch) == PinnedTable();
  return TableFor(dispatch) != nullptr;
}

Sha256::Dispatch Sha256::ActiveDispatch() { return ActiveTable()->level; }

const char* Sha256::DispatchName(Dispatch dispatch) {
  switch (dispatch) {
    case Dispatch::kScalar:
      return "scalar";
    case Dispatch::kShaNi:
      return "shani";
    case Dispatch::kAvx2:
      return "avx2";
  }
  return "?";
}

bool Sha256::SetDispatch(Dispatch dispatch) {
  if (!DispatchAvailable(dispatch)) return false;
  g_active_table.store(TableFor(dispatch), std::memory_order_release);
  return true;
}

size_t Sha256::PreferredMiningLanes() { return ActiveTable()->mining_lanes; }

Sha256::Sha256() {
  // Single source of truth for H(0): the same constant the raw
  // compression path (HeaderHasher) starts from.
  for (int i = 0; i < 8; ++i) state_[i] = kInitialState[static_cast<size_t>(i)];
}

void Sha256::Compress(uint32_t* state, const uint8_t* block) {
  ActiveTable()->compress(state, block);
}

void Sha256::Compress2(uint32_t* state_a, const uint8_t* block_a,
                       uint32_t* state_b, const uint8_t* block_b) {
  ActiveTable()->compress2(state_a, block_a, state_b, block_b);
}

void Sha256::CompressBatch(uint32_t* const* states,
                           const uint8_t* const* blocks, size_t n) {
  const DispatchTable* table = ActiveTable();
  size_t i = 0;
  if (table->compress8 != nullptr) {
    for (; i + 8 <= n; i += 8) table->compress8(states + i, blocks + i);
  }
  for (; i + 2 <= n; i += 2) {
    table->compress2(states[i], blocks[i], states[i + 1], blocks[i + 1]);
  }
  if (i < n) table->compress(states[i], blocks[i]);
}

void Sha256::ProcessBlock(const uint8_t* block) { Compress(state_, block); }

void Sha256::Update(const uint8_t* data, size_t len) {
  bit_count_ += static_cast<uint64_t>(len) * 8;
  while (len > 0) {
    if (buffer_len_ == 0 && len >= kBlockSize) {
      // Fast path: hash directly from the input.
      ProcessBlock(data);
      data += kBlockSize;
      len -= kBlockSize;
      continue;
    }
    size_t take = kBlockSize - buffer_len_;
    if (take > len) take = len;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit big-endian
  // message bit length.
  const uint64_t bit_count = bit_count_;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  bit_count_ -= 8;  // Padding is not message content.
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
    bit_count_ -= 8;
  }
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_count >> (56 - 8 * i));
  }
  Update(len_be, 8);

  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Digest(
    std::span<const uint8_t> data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace ac3::crypto
