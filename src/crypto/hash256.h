// Hash256: the 32-byte digest value type used for every identifier.
//
// Transaction ids, block hashes, contract ids, addresses, hashlock values
// and Merkle nodes are all Hash256. The type is ordered and hashable so it
// can key std::map / std::unordered_map.

#ifndef AC3_CRYPTO_HASH256_H_
#define AC3_CRYPTO_HASH256_H_

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>

#include "src/common/bytes.h"

namespace ac3::crypto {

/// 32-byte value with lexicographic ordering.
class Hash256 {
 public:
  static constexpr size_t kSize = 32;

  /// Zero-initialized ("null") hash.
  Hash256() { data_.fill(0); }
  explicit Hash256(const std::array<uint8_t, kSize>& data) : data_(data) {}

  /// SHA-256 of `input` (Bytes, arrays, and stack buffers all bind here
  /// without an owning temporary).
  static Hash256 Of(std::span<const uint8_t> input);
  /// SHA-256 of the UTF-8 bytes of `input`.
  static Hash256 OfString(const std::string& input);
  /// Double SHA-256 (Bitcoin-style), used for proof-of-work header hashes.
  static Hash256 DoubleOf(std::span<const uint8_t> input);
  /// SHA-256 of the concatenation of two hashes (Merkle interior nodes).
  static Hash256 OfPair(const Hash256& left, const Hash256& right);
  /// Parses a 64-char hex string.
  static Result<Hash256> FromHex(const std::string& hex);

  const std::array<uint8_t, kSize>& data() const { return data_; }
  const uint8_t* bytes() const { return data_.data(); }

  /// True when every byte is zero.
  bool IsZero() const;

  /// Interprets the first 8 bytes as a big-endian integer — a cheap,
  /// monotone proxy for "numeric value" used by proof-of-work comparisons.
  uint64_t Prefix64() const;

  /// Full lowercase hex.
  std::string ToHex() const;
  /// First 8 hex chars, for logs.
  std::string ShortHex() const;

  /// Copies into a Bytes buffer.
  Bytes ToBytes() const;

  auto operator<=>(const Hash256& other) const = default;

 private:
  std::array<uint8_t, kSize> data_;
};

}  // namespace ac3::crypto

namespace std {
template <>
struct hash<ac3::crypto::Hash256> {
  size_t operator()(const ac3::crypto::Hash256& h) const noexcept {
    // The value is already uniform; fold the first bytes.
    size_t out;
    std::memcpy(&out, h.bytes(), sizeof(out));
    return out;
  }
};
}  // namespace std

#endif  // AC3_CRYPTO_HASH256_H_
