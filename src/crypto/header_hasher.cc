#include "src/crypto/header_hasher.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace ac3::crypto {

namespace {

/// Serializes an 8-word chaining value as the big-endian 32-byte digest.
void StateToDigest(const uint32_t* state, uint8_t* out) {
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
}

}  // namespace

HeaderHasher::HeaderHasher(std::span<const uint8_t> preimage) {
  if (preimage.size() < 8) {
    // Defined failure in release builds too: a shorter preimage has no
    // trailing nonce field and the prefix arithmetic below would wrap.
    throw std::invalid_argument("HeaderHasher preimage shorter than a nonce");
  }
  // Absorb whole 64-byte blocks that end strictly before the nonce field;
  // everything after them (at most 63 + 8 bytes) stays in the tail, so the
  // midstate never has to be recomputed.
  const size_t prefix =
      ((preimage.size() - 8) / Sha256::kBlockSize) * Sha256::kBlockSize;
  midstate_ = Sha256::kInitialState;
  for (size_t offset = 0; offset < prefix; offset += Sha256::kBlockSize) {
    Sha256::Compress(midstate_.data(), preimage.data() + offset);
  }

  // Pre-pad the tail: message bytes, 0x80, zeros, and the 64-bit
  // big-endian TOTAL message bit length (prefix included). None of this
  // depends on the nonce, so it is done exactly once.
  tail_len_ = preimage.size() - prefix;
  const size_t padded =
      ((tail_len_ + 1 + 8 + Sha256::kBlockSize - 1) / Sha256::kBlockSize) *
      Sha256::kBlockSize;
  tail_blocks_ = padded / Sha256::kBlockSize;
  assert(padded <= kMaxTail);
  std::memset(tail_a_, 0, padded);
  std::memcpy(tail_a_, preimage.data() + prefix, tail_len_);
  tail_a_[tail_len_] = 0x80;
  const uint64_t bit_count = static_cast<uint64_t>(preimage.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail_a_[padded - 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(bit_count >> (56 - 8 * i));
  }
  std::memcpy(tail_b_, tail_a_, padded);

  // Pre-pad the second-hash block: a 32-byte digest pads to exactly one
  // block with bit length 256 (0x100) in the trailing length field.
  std::memset(second_a_, 0, Sha256::kBlockSize);
  second_a_[32] = 0x80;
  second_a_[62] = 0x01;
  std::memcpy(second_b_, second_a_, Sha256::kBlockSize);
}

void HeaderHasher::PatchNonce(uint8_t* tail, uint64_t nonce) const {
  uint8_t* hole = tail + (tail_len_ - 8);
  for (int i = 0; i < 8; ++i) {
    hole[i] = static_cast<uint8_t>(nonce >> (8 * i));  // Little-endian.
  }
}

Hash256 HeaderHasher::HashWithNonce(uint64_t nonce) {
  PatchNonce(tail_a_, nonce);
  std::array<uint32_t, 8> state = midstate_;
  for (size_t b = 0; b < tail_blocks_; ++b) {
    Sha256::Compress(state.data(), tail_a_ + b * Sha256::kBlockSize);
  }
  StateToDigest(state.data(), second_a_);
  std::array<uint32_t, 8> outer = Sha256::kInitialState;
  Sha256::Compress(outer.data(), second_a_);
  std::array<uint8_t, Sha256::kDigestSize> digest;
  StateToDigest(outer.data(), digest.data());
  return Hash256(digest);
}

void HeaderHasher::HashPairWithNonces(uint64_t nonce_a, uint64_t nonce_b,
                                      Hash256* out_a, Hash256* out_b) {
  PatchNonce(tail_a_, nonce_a);
  PatchNonce(tail_b_, nonce_b);
  std::array<uint32_t, 8> state_a = midstate_;
  std::array<uint32_t, 8> state_b = midstate_;
  for (size_t b = 0; b < tail_blocks_; ++b) {
    Sha256::Compress2(state_a.data(), tail_a_ + b * Sha256::kBlockSize,
                      state_b.data(), tail_b_ + b * Sha256::kBlockSize);
  }
  StateToDigest(state_a.data(), second_a_);
  StateToDigest(state_b.data(), second_b_);
  std::array<uint32_t, 8> outer_a = Sha256::kInitialState;
  std::array<uint32_t, 8> outer_b = Sha256::kInitialState;
  Sha256::Compress2(outer_a.data(), second_a_, outer_b.data(), second_b_);
  std::array<uint8_t, Sha256::kDigestSize> digest;
  StateToDigest(outer_a.data(), digest.data());
  *out_a = Hash256(digest);
  StateToDigest(outer_b.data(), digest.data());
  *out_b = Hash256(digest);
}

}  // namespace ac3::crypto
