#include "src/crypto/header_hasher.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace ac3::crypto {

namespace {

/// Serializes an 8-word chaining value as the big-endian 32-byte digest.
void StateToDigest(const uint32_t* state, uint8_t* out) {
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
}

}  // namespace

HeaderHasher::HeaderHasher(std::span<const uint8_t> preimage) {
  if (preimage.size() < 8) {
    // Defined failure in release builds too: a shorter preimage has no
    // trailing nonce field and the prefix arithmetic below would wrap.
    throw std::invalid_argument("HeaderHasher preimage shorter than a nonce");
  }
  // Absorb whole 64-byte blocks that end strictly before the nonce field;
  // everything after them (at most 63 + 8 bytes) stays in the tail, so the
  // midstate never has to be recomputed.
  const size_t prefix =
      ((preimage.size() - 8) / Sha256::kBlockSize) * Sha256::kBlockSize;
  midstate_ = Sha256::kInitialState;
  for (size_t offset = 0; offset < prefix; offset += Sha256::kBlockSize) {
    Sha256::Compress(midstate_.data(), preimage.data() + offset);
  }

  // Pre-pad the tail: message bytes, 0x80, zeros, and the 64-bit
  // big-endian TOTAL message bit length (prefix included). None of this
  // depends on the nonce, so it is done exactly once.
  tail_len_ = preimage.size() - prefix;
  const size_t padded =
      ((tail_len_ + 1 + 8 + Sha256::kBlockSize - 1) / Sha256::kBlockSize) *
      Sha256::kBlockSize;
  tail_blocks_ = padded / Sha256::kBlockSize;
  assert(padded <= kMaxTail);
  std::memset(tails_[0], 0, padded);
  std::memcpy(tails_[0], preimage.data() + prefix, tail_len_);
  tails_[0][tail_len_] = 0x80;
  const uint64_t bit_count = static_cast<uint64_t>(preimage.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tails_[0][padded - 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(bit_count >> (56 - 8 * i));
  }

  // Pre-pad the second-hash block: a 32-byte digest pads to exactly one
  // block with bit length 256 (0x100) in the trailing length field.
  std::memset(seconds_[0], 0, Sha256::kBlockSize);
  seconds_[0][32] = 0x80;
  seconds_[0][62] = 0x01;

  // Every lane starts from the same images; only nonce holes and inner
  // digests diverge per attempt.
  for (size_t lane = 1; lane < Sha256::kMaxLanes; ++lane) {
    std::memcpy(tails_[lane], tails_[0], padded);
    std::memcpy(seconds_[lane], seconds_[0], Sha256::kBlockSize);
  }
}

void HeaderHasher::PatchNonce(uint8_t* tail, uint64_t nonce) const {
  uint8_t* hole = tail + (tail_len_ - 8);
  for (int i = 0; i < 8; ++i) {
    hole[i] = static_cast<uint8_t>(nonce >> (8 * i));  // Little-endian.
  }
}

Hash256 HeaderHasher::HashWithNonce(uint64_t nonce) {
  PatchNonce(tails_[0], nonce);
  std::array<uint32_t, 8> state = midstate_;
  for (size_t b = 0; b < tail_blocks_; ++b) {
    Sha256::Compress(state.data(), tails_[0] + b * Sha256::kBlockSize);
  }
  StateToDigest(state.data(), seconds_[0]);
  std::array<uint32_t, 8> outer = Sha256::kInitialState;
  Sha256::Compress(outer.data(), seconds_[0]);
  std::array<uint8_t, Sha256::kDigestSize> digest;
  StateToDigest(outer.data(), digest.data());
  return Hash256(digest);
}

void HeaderHasher::HashPairWithNonces(uint64_t nonce_a, uint64_t nonce_b,
                                      Hash256* out_a, Hash256* out_b) {
  PatchNonce(tails_[0], nonce_a);
  PatchNonce(tails_[1], nonce_b);
  std::array<uint32_t, 8> state_a = midstate_;
  std::array<uint32_t, 8> state_b = midstate_;
  for (size_t b = 0; b < tail_blocks_; ++b) {
    Sha256::Compress2(state_a.data(), tails_[0] + b * Sha256::kBlockSize,
                      state_b.data(), tails_[1] + b * Sha256::kBlockSize);
  }
  StateToDigest(state_a.data(), seconds_[0]);
  StateToDigest(state_b.data(), seconds_[1]);
  std::array<uint32_t, 8> outer_a = Sha256::kInitialState;
  std::array<uint32_t, 8> outer_b = Sha256::kInitialState;
  Sha256::Compress2(outer_a.data(), seconds_[0], outer_b.data(), seconds_[1]);
  std::array<uint8_t, Sha256::kDigestSize> digest;
  StateToDigest(outer_a.data(), digest.data());
  *out_a = Hash256(digest);
  StateToDigest(outer_b.data(), digest.data());
  *out_b = Hash256(digest);
}

void HeaderHasher::HashBatchWithNonces(const uint64_t* nonces, size_t n,
                                       Hash256* out) {
  assert(n <= Sha256::kMaxLanes);
  std::array<uint32_t, 8> states[Sha256::kMaxLanes];
  uint32_t* state_ptrs[Sha256::kMaxLanes] = {};
  const uint8_t* block_ptrs[Sha256::kMaxLanes] = {};
  for (size_t lane = 0; lane < n; ++lane) {
    PatchNonce(tails_[lane], nonces[lane]);
    states[lane] = midstate_;
    state_ptrs[lane] = states[lane].data();
  }
  for (size_t b = 0; b < tail_blocks_; ++b) {
    for (size_t lane = 0; lane < n; ++lane) {
      block_ptrs[lane] = tails_[lane] + b * Sha256::kBlockSize;
    }
    Sha256::CompressBatch(state_ptrs, block_ptrs, n);
  }
  for (size_t lane = 0; lane < n; ++lane) {
    StateToDigest(states[lane].data(), seconds_[lane]);
    states[lane] = Sha256::kInitialState;
    block_ptrs[lane] = seconds_[lane];
  }
  Sha256::CompressBatch(state_ptrs, block_ptrs, n);
  std::array<uint8_t, Sha256::kDigestSize> digest;
  for (size_t lane = 0; lane < n; ++lane) {
    StateToDigest(states[lane].data(), digest.data());
    out[lane] = Hash256(digest);
  }
}

void HeaderHasher::HashLanesWithNonces(const Lane* lanes, size_t n,
                                       Hash256* out) {
  assert(n <= Sha256::kMaxLanes);
  std::array<uint32_t, 8> states[Sha256::kMaxLanes];
  uint32_t* state_ptrs[Sha256::kMaxLanes] = {};
  const uint8_t* block_ptrs[Sha256::kMaxLanes] = {};
  // Each lane patches ITS OWN hasher's lane-`i` tail image, so one hasher
  // occupying several lanes (consecutive nonces of one miner) never
  // clobbers itself: distinct lanes are distinct buffers.
  const size_t tail_blocks = n > 0 ? lanes[0].hasher->tail_blocks_ : 0;
  for (size_t i = 0; i < n; ++i) {
    HeaderHasher* hasher = lanes[i].hasher;
    assert(hasher->tail_blocks_ == tail_blocks);
    hasher->PatchNonce(hasher->tails_[i], lanes[i].nonce);
    states[i] = hasher->midstate_;
    state_ptrs[i] = states[i].data();
  }
  for (size_t b = 0; b < tail_blocks; ++b) {
    for (size_t i = 0; i < n; ++i) {
      block_ptrs[i] = lanes[i].hasher->tails_[i] + b * Sha256::kBlockSize;
    }
    Sha256::CompressBatch(state_ptrs, block_ptrs, n);
  }
  for (size_t i = 0; i < n; ++i) {
    StateToDigest(states[i].data(), lanes[i].hasher->seconds_[i]);
    states[i] = Sha256::kInitialState;
    block_ptrs[i] = lanes[i].hasher->seconds_[i];
  }
  Sha256::CompressBatch(state_ptrs, block_ptrs, n);
  std::array<uint8_t, Sha256::kDigestSize> digest;
  for (size_t i = 0; i < n; ++i) {
    StateToDigest(states[i].data(), digest.data());
    out[i] = Hash256(digest);
  }
}

}  // namespace ac3::crypto
