#include "src/crypto/header_hasher.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace ac3::crypto {

HeaderHasher::HeaderHasher(std::span<const uint8_t> preimage) {
  if (preimage.size() < 8) {
    // Defined failure in release builds too: a shorter preimage has no
    // trailing nonce field and the prefix arithmetic below would wrap.
    throw std::invalid_argument("HeaderHasher preimage shorter than a nonce");
  }
  // Absorb whole 64-byte blocks that end strictly before the nonce field;
  // everything after them (at most 63 + 8 bytes) stays in the tail, so the
  // midstate never has to be recomputed.
  const size_t prefix =
      ((preimage.size() - 8) / Sha256::kBlockSize) * Sha256::kBlockSize;
  tail_len_ = preimage.size() - prefix;
  assert(tail_len_ <= kMaxTail);
  midstate_.Update(preimage.data(), prefix);
  std::memcpy(tail_, preimage.data() + prefix, tail_len_);
}

Hash256 HeaderHasher::HashWithNonce(uint64_t nonce) {
  uint8_t* hole = tail_ + (tail_len_ - 8);
  for (int i = 0; i < 8; ++i) {
    hole[i] = static_cast<uint8_t>(nonce >> (8 * i));  // Little-endian.
  }
  Sha256 first = midstate_;  // Copying restores the cached prefix state.
  first.Update(tail_, tail_len_);
  const auto inner = first.Finish();
  Sha256 second;
  second.Update(inner.data(), inner.size());
  return Hash256(second.Finish());
}

}  // namespace ac3::crypto
