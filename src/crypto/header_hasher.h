// HeaderHasher: zero-allocation double-SHA-256 for proof-of-work nonce
// search.
//
// A PoW header preimage is a fixed-length encoding whose final 8 bytes are
// the little-endian nonce. The naive loop re-encodes the header into a
// heap buffer and hashes it from scratch on every attempt. HeaderHasher
// instead does all invariant work ONCE at construction:
//
//   * absorbs the largest 64-byte-aligned prefix that cannot overlap the
//     nonce, caching the SHA-256 compression midstate;
//   * pre-pads the remaining tail (FIPS 180-4 padding is a pure function
//     of the total length, which never changes across nonce attempts);
//   * pre-pads the fixed-shape second-hash block (32-byte digest + pad).
//
// A nonce attempt is then: patch 8 tail bytes, run the tail compressions
// from the cached midstate, and one more compression for the outer hash —
// 3 compression calls and zero allocations for the 128-byte block header
// (the naive path is 4 compressions plus a heap re-encode).
//
// HashPairWithNonces additionally evaluates TWO nonces per call through
// Sha256::Compress2, which interleaves the rounds of two independent
// compressions so their serial dependency chains overlap in the pipeline —
// the 2-way nonce search chain::MineHeader runs on the scalar and SHA-NI
// dispatch levels. HashBatchWithNonces generalizes to up to
// Sha256::kMaxLanes nonces per call through Sha256::CompressBatch, which
// the AVX2 8-way level turns into one message-parallel compression — the
// 8-way nonce search. Per-nonce digests are bit-identical to
// HashWithNonce on every dispatch level (pinned by tests/hotpath_test.cc
// and tests/crypto_test.cc).

#ifndef AC3_CRYPTO_HEADER_HASHER_H_
#define AC3_CRYPTO_HEADER_HASHER_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/crypto/hash256.h"
#include "src/crypto/sha256.h"

namespace ac3::crypto {

class HeaderHasher {
 public:
  /// Longest supported padded tail, kept on the stack. The unpadded tail
  /// is at most 63 + 8 bytes, which pads to at most two blocks.
  static constexpr size_t kMaxTail = 2 * Sha256::kBlockSize;

  /// `preimage` is the full encoded header, including placeholder bytes
  /// for the trailing little-endian u64 nonce. Must be at least 8 bytes.
  explicit HeaderHasher(std::span<const uint8_t> preimage);

  /// Double SHA-256 of the preimage with its trailing 8 bytes replaced by
  /// `nonce` (little-endian). Allocation-free.
  Hash256 HashWithNonce(uint64_t nonce);

  /// HashWithNonce for two nonces in one round-interleaved pass
  /// (Sha256::Compress2): `*out_a` receives the digest for `nonce_a`,
  /// `*out_b` for `nonce_b`. Identical per-nonce results to the scalar
  /// path, roughly 1.5 compressions' latency per nonce instead of 3.
  void HashPairWithNonces(uint64_t nonce_a, uint64_t nonce_b, Hash256* out_a,
                          Hash256* out_b);

  /// HashWithNonce for `n <= Sha256::kMaxLanes` nonces in one
  /// message-parallel pass (Sha256::CompressBatch): out[i] receives the
  /// digest for nonces[i]. On the AVX2 dispatch level a full batch of 8
  /// runs as one 8-way compression per block; narrower batches (and
  /// non-AVX2 levels) fall back to pair/scalar compressions with the
  /// identical per-nonce results.
  void HashBatchWithNonces(const uint64_t* nonces, size_t n, Hash256* out);

  /// One lane of a cross-hasher batch: a nonce attempt against a specific
  /// hasher's preimage. The same hasher may occupy several lanes (with
  /// distinct nonces); each lane uses its own per-lane tail image.
  struct Lane {
    HeaderHasher* hasher = nullptr;
    uint64_t nonce = 0;
  };

  /// HashWithNonce across DIFFERENT hashers in one message-parallel pass:
  /// out[i] receives lanes[i].hasher's digest for lanes[i].nonce.
  /// CompressBatch takes fully general per-lane chaining values, so each
  /// lane runs from its own hasher's midstate — this is what lets a
  /// multi-miner nonce search (chain::MineHeaderBatch) fill all 8 AVX2
  /// lanes even when every miner searches a distinct header. Requires
  /// `n <= Sha256::kMaxLanes` and every hasher to have the same padded
  /// tail block count (always true for fixed-size block headers).
  /// Per-lane digests are bit-identical to HashWithNonce on every
  /// dispatch level.
  static void HashLanesWithNonces(const Lane* lanes, size_t n, Hash256* out);

 private:
  /// Writes `nonce` little-endian into `tail`'s nonce hole.
  void PatchNonce(uint8_t* tail, uint64_t nonce) const;

  /// Chaining value after the fixed 64-byte-aligned prefix.
  std::array<uint32_t, 8> midstate_;
  size_t tail_len_ = 0;     ///< Unpadded tail bytes (nonce hole at the end).
  size_t tail_blocks_ = 0;  ///< Padded tail length in 64-byte blocks.
  /// Per-lane pre-padded tail images; only the 8 nonce bytes change
  /// between attempts (lane 0 serves the scalar path, lanes 0..1 the
  /// pair path, lanes 0..n-1 a batch).
  uint8_t tails_[Sha256::kMaxLanes][kMaxTail];
  /// Per-lane pre-padded second-hash blocks; the leading 32 bytes are
  /// overwritten with the inner digest per attempt.
  uint8_t seconds_[Sha256::kMaxLanes][Sha256::kBlockSize];
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_HEADER_HASHER_H_
