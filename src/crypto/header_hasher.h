// HeaderHasher: zero-allocation double-SHA-256 for proof-of-work nonce
// search.
//
// A PoW header preimage is a fixed-length encoding whose final 8 bytes are
// the little-endian nonce. The naive loop re-encodes the header into a
// heap buffer and hashes it from scratch on every attempt. HeaderHasher
// instead absorbs the largest 64-byte-aligned prefix that cannot overlap
// the nonce ONCE, caching the SHA-256 compression midstate, and per
// attempt only (a) patches the nonce into a stack-resident tail, (b) runs
// the remaining compressions from the midstate, and (c) second-hashes the
// 32-byte digest. For the 128-byte block header that cuts the per-nonce
// cost from 4 compression calls plus a heap allocation to 3 compression
// calls and zero allocations.

#ifndef AC3_CRYPTO_HEADER_HASHER_H_
#define AC3_CRYPTO_HEADER_HASHER_H_

#include <cstdint>
#include <span>

#include "src/crypto/hash256.h"
#include "src/crypto/sha256.h"

namespace ac3::crypto {

class HeaderHasher {
 public:
  /// Longest supported preimage tail kept on the stack; the preimage
  /// itself may be any length >= 8 (the nonce field).
  static constexpr size_t kMaxTail = 2 * Sha256::kBlockSize;

  /// `preimage` is the full encoded header, including placeholder bytes
  /// for the trailing little-endian u64 nonce.
  explicit HeaderHasher(std::span<const uint8_t> preimage);

  /// Double SHA-256 of the preimage with its trailing 8 bytes replaced by
  /// `nonce` (little-endian). Allocation-free.
  Hash256 HashWithNonce(uint64_t nonce);

 private:
  Sha256 midstate_;          ///< Context after the fixed 64-byte-aligned prefix.
  uint8_t tail_[kMaxTail];   ///< Remaining bytes; nonce hole at the end.
  size_t tail_len_ = 0;
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_HEADER_HASHER_H_
