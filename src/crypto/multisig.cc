#include "src/crypto/multisig.h"

namespace ac3::crypto {

Status Multisignature::AddSignature(const KeyPair& key) {
  MultisigPart part;
  part.signer = key.public_key();
  part.signature = key.Sign(message_);
  return AddPart(std::move(part));
}

Status Multisignature::AddPart(MultisigPart part) {
  for (const MultisigPart& existing : parts_) {
    if (existing.signer == part.signer) {
      return Status::AlreadyExists("participant already signed ms(D)");
    }
  }
  if (!Verify(part.signer, message_, part.signature)) {
    return Status::VerificationFailed("invalid signature part for ms(D)");
  }
  parts_.push_back(std::move(part));
  return Status::OK();
}

bool Multisignature::VerifyAll(
    const std::vector<PublicKey>& required_signers) const {
  for (const PublicKey& signer : required_signers) {
    if (!HasValidSignature(signer)) return false;
  }
  return true;
}

bool Multisignature::HasValidSignature(const PublicKey& signer) const {
  for (const MultisigPart& part : parts_) {
    if (part.signer == signer) {
      return Verify(signer, message_, part.signature);
    }
  }
  return false;
}

Hash256 Multisignature::Id() const { return Hash256::Of(Encode()); }

Bytes Multisignature::Encode() const {
  ByteWriter w;
  w.PutBytes(message_);
  w.PutU32(static_cast<uint32_t>(parts_.size()));
  for (const MultisigPart& part : parts_) {
    w.PutRaw(part.signer.Encode());
    w.PutRaw(part.signature.Encode());
  }
  return w.Take();
}

Result<Multisignature> Multisignature::Decode(const Bytes& encoded) {
  ByteReader reader(encoded);
  AC3_ASSIGN_OR_RETURN(Bytes message, reader.GetBytes());
  Multisignature ms(std::move(message));
  AC3_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    MultisigPart part;
    AC3_ASSIGN_OR_RETURN(part.signer, PublicKey::Decode(&reader));
    AC3_ASSIGN_OR_RETURN(part.signature, Signature::Decode(&reader));
    AC3_RETURN_IF_ERROR(ms.AddPart(std::move(part)));
  }
  return ms;
}

}  // namespace ac3::crypto
