// Commitment schemes — the paper's Section 3 cryptographic primitive.
//
// "A commitment scheme allows a user to commit to some chosen value without
// revealing this value. Once this hidden value is revealed, other users can
// verify that the revealed value is indeed the one used in the commitment."
//
// Three instantiations appear across the protocols:
//   * HashlockCommitment    — h = H(s); secret is the preimage s
//                             (Nolan/Herlihy HTLCs).
//   * SignatureCommitment   — (ms(D), PK_T, tag); secret is Trent's
//                             signature over (ms(D), tag) (AC3TW, Alg. 2).
//   * witness-state commitment — (SCw, d); the "secret" is on-chain
//                             evidence that SCw reached RDauth/RFauth at
//                             depth >= d. That one needs chain access, so it
//                             lives in src/contracts (Alg. 4).

#ifndef AC3_CRYPTO_COMMITMENT_H_
#define AC3_CRYPTO_COMMITMENT_H_

#include <string>

#include "src/common/bytes.h"
#include "src/crypto/hash256.h"
#include "src/crypto/schnorr.h"

namespace ac3::crypto {

/// A hashlock: commit = H(secret). Used by the HTLC baselines.
class HashlockCommitment {
 public:
  HashlockCommitment() = default;
  explicit HashlockCommitment(Hash256 lock) : lock_(lock) {}

  /// Builds the commitment for a chosen secret (run by the swap leader).
  static HashlockCommitment FromSecret(const Bytes& secret);

  const Hash256& lock() const { return lock_; }

  /// True iff `secret` hashes to the lock. This is what a smart contract's
  /// IsRedeemable runs when a participant reveals s.
  bool VerifySecret(const Bytes& secret) const;

 private:
  Hash256 lock_;
};

/// Tags distinguishing the two mutually exclusive commitment-scheme
/// instances of an AC2T (Section 3): redemption vs refund.
enum class CommitmentTag : uint8_t {
  kRedeem = 1,
  kRefund = 2,
};

const char* CommitmentTagName(CommitmentTag tag);

/// Canonical message Trent signs for (ms_id, tag): the paper's
/// (ms(D), RD) / (ms(D), RF) pairs.
Bytes SignatureCommitmentMessage(const Hash256& ms_id, CommitmentTag tag);

/// A signature-based commitment: committed to (ms(D), PK_T, tag); the
/// secret is Trent's signature over SignatureCommitmentMessage.
class SignatureCommitment {
 public:
  SignatureCommitment() = default;
  SignatureCommitment(Hash256 ms_id, PublicKey trent, CommitmentTag tag)
      : ms_id_(ms_id), trent_(trent), tag_(tag) {}

  const Hash256& ms_id() const { return ms_id_; }
  const PublicKey& trent() const { return trent_; }
  CommitmentTag tag() const { return tag_; }

  /// SigVerify((ms(D), tag), PK_T, secret) — Algorithm 2 lines 6 and 9.
  bool VerifySecret(const Signature& secret) const;

 private:
  Hash256 ms_id_;
  PublicKey trent_;
  CommitmentTag tag_ = CommitmentTag::kRedeem;
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_COMMITMENT_H_
