// Modular arithmetic and discrete-log group parameter generation.
//
// The paper's protocols rely on digital signatures (end-user transactions,
// the multisigned graph ms(D), Trent's commitment-scheme secrets in AC3TW).
// We implement real Schnorr signatures, which need a prime-order subgroup of
// Z_p*. This file provides:
//   * 64-bit modular mul/pow via unsigned __int128,
//   * a deterministic Miller–Rabin primality test (exact for 64-bit inputs),
//   * generation of (p, q, g): q a kSubgroupBits-bit prime, p = k*q + 1 a
//     ~kModulusBits-bit prime, and g a generator of the order-q subgroup.
//
// SECURITY NOTE: the parameter sizes are deliberately tiny (a laptop could
// break them); they substitute for secp256k1 so that every sign/verify code
// path in the protocols is real while experiments stay fast. See DESIGN.md.

#ifndef AC3_CRYPTO_PRIMES_H_
#define AC3_CRYPTO_PRIMES_H_

#include <cstdint>

namespace ac3::crypto {

/// (a * b) mod m without overflow, for m < 2^63.
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);

/// (base ^ exp) mod m by square-and-multiply.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

/// Deterministic Miller–Rabin: exact for all n < 2^64 using the standard
/// 12-witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}.
bool IsPrime(uint64_t n);

/// Smallest prime >= n (n >= 2).
uint64_t NextPrime(uint64_t n);

/// Schnorr group description: g generates the order-q subgroup of Z_p*.
struct GroupParams {
  uint64_t p;  ///< Modulus, prime, ~61 bits.
  uint64_t q;  ///< Subgroup order, prime, ~31 bits, q | p - 1.
  uint64_t g;  ///< Generator of the order-q subgroup.
};

/// Deterministically derives group parameters from a fixed seed. The result
/// is computed once and cached; all keys in the system share one group
/// (mirroring how all of Bitcoin shares secp256k1).
const GroupParams& DefaultGroup();

/// Generates parameters from an arbitrary seed (exposed for tests).
GroupParams GenerateGroup(uint64_t seed);

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_PRIMES_H_
