#include "src/crypto/merkle.h"

namespace ac3::crypto {

namespace {

/// One place owns the pairing rule: with an odd node count the last node
/// is paired with itself (Bitcoin convention). Used by both the full tree
/// build and the root-only fold so they can never disagree.
std::vector<Hash256> NextLevel(const std::vector<Hash256>& prev) {
  std::vector<Hash256> next;
  next.reserve((prev.size() + 1) / 2);
  for (size_t i = 0; i < prev.size(); i += 2) {
    const Hash256& left = prev[i];
    const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
    next.push_back(Hash256::OfPair(left, right));
  }
  return next;
}

}  // namespace

Bytes MerkleStep::Encode() const {
  ByteWriter w;
  w.PutRaw(sibling.bytes(), Hash256::kSize);
  w.PutU8(sibling_on_left ? 1 : 0);
  return w.Take();
}

Result<MerkleStep> MerkleStep::Decode(ByteReader* reader) {
  MerkleStep step;
  AC3_ASSIGN_OR_RETURN(Bytes raw, reader->GetRaw(Hash256::kSize));
  std::array<uint8_t, Hash256::kSize> arr{};
  std::copy(raw.begin(), raw.end(), arr.begin());
  step.sibling = Hash256(arr);
  AC3_ASSIGN_OR_RETURN(uint8_t side, reader->GetU8());
  step.sibling_on_left = side != 0;
  return step;
}

Bytes MerkleProof::Encode() const {
  ByteWriter w;
  w.PutU32(leaf_index);
  w.PutU32(static_cast<uint32_t>(path.size()));
  for (const MerkleStep& step : path) w.PutRaw(step.Encode());
  return w.Take();
}

Result<MerkleProof> MerkleProof::Decode(const Bytes& encoded) {
  ByteReader reader(encoded);
  MerkleProof proof;
  AC3_ASSIGN_OR_RETURN(proof.leaf_index, reader.GetU32());
  AC3_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    AC3_ASSIGN_OR_RETURN(MerkleStep step, MerkleStep::Decode(&reader));
    proof.path.push_back(step);
  }
  return proof;
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves) {
  if (leaves.empty()) {
    root_ = Hash256();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    levels_.push_back(NextLevel(levels_.back()));
  }
  root_ = levels_.back()[0];
}

Result<MerkleProof> MerkleTree::Prove(size_t index) const {
  if (levels_.empty() || index >= levels_[0].size()) {
    return Status::OutOfRange("merkle leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = static_cast<uint32_t>(index);
  size_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash256>& nodes = levels_[level];
    MerkleStep step;
    if (pos % 2 == 0) {
      // Sibling on the right (or self-pair when last odd node).
      step.sibling = (pos + 1 < nodes.size()) ? nodes[pos + 1] : nodes[pos];
      step.sibling_on_left = false;
    } else {
      step.sibling = nodes[pos - 1];
      step.sibling_on_left = true;
    }
    proof.path.push_back(step);
    pos /= 2;
  }
  return proof;
}

Hash256 MerkleTree::RootOf(const std::vector<Hash256>& leaves) {
  // Root-only fold: keep just the current level instead of storing every
  // level of the tree.
  if (leaves.empty()) return Hash256();
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) level = NextLevel(level);
  return level[0];
}

bool VerifyMerkleProof(const Hash256& leaf, const MerkleProof& proof,
                       const Hash256& expected_root) {
  Hash256 acc = leaf;
  for (const MerkleStep& step : proof.path) {
    acc = step.sibling_on_left ? Hash256::OfPair(step.sibling, acc)
                               : Hash256::OfPair(acc, step.sibling);
  }
  return acc == expected_root;
}

}  // namespace ac3::crypto
