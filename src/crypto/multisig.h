// Multisignatures over the AC2T graph — the paper's ms(D) (Equation 1).
//
// All participants of an AC2T sign the canonical encoding of (D, t). The
// paper notes "the order of participant signatures in ms(D) is not
// important: any signature order indicates that all participants agree on
// the graph D at timestamp t". We therefore model ms(D) as the *set* of
// per-participant signatures over the same message; verification requires a
// valid signature from every expected participant (a behaviour-preserving
// flattening of the paper's nested sig(...sig((D,t),p1)...,pn) notation).

#ifndef AC3_CRYPTO_MULTISIG_H_
#define AC3_CRYPTO_MULTISIG_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/hash256.h"
#include "src/crypto/schnorr.h"

namespace ac3::crypto {

/// One participant's contribution to a multisignature.
struct MultisigPart {
  PublicKey signer;
  Signature signature;
};

/// A multisignature over one canonical message.
class Multisignature {
 public:
  Multisignature() = default;
  explicit Multisignature(Bytes message) : message_(std::move(message)) {}

  const Bytes& message() const { return message_; }
  const std::vector<MultisigPart>& parts() const { return parts_; }

  /// Adds `key`'s signature over the message. Duplicate signers are
  /// rejected (each participant signs exactly once).
  Status AddSignature(const KeyPair& key);

  /// Attaches an externally produced part (e.g. received over the network).
  Status AddPart(MultisigPart part);

  /// True iff every key in `required_signers` contributed a valid signature
  /// over the message. Extra signatures are ignored; missing or invalid
  /// ones fail.
  bool VerifyAll(const std::vector<PublicKey>& required_signers) const;

  /// True when `signer` has a valid signature attached.
  bool HasValidSignature(const PublicKey& signer) const;

  /// Content id of the multisignature — used as the registration key in
  /// Trent's key/value store (AC3TW) and in the witness contract (AC3WN).
  Hash256 Id() const;

  /// Canonical wire encoding (message + all parts).
  Bytes Encode() const;
  static Result<Multisignature> Decode(const Bytes& encoded);

 private:
  Bytes message_;
  std::vector<MultisigPart> parts_;
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_MULTISIG_H_
