#include "src/crypto/sha256_simd.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#define AC3_SHA256_X86 1
#endif

namespace ac3::crypto::simd {

#ifndef AC3_SHA256_X86

bool CpuHasShaNi() { return false; }
bool CpuHasAvx2() { return false; }

#else  // AC3_SHA256_X86

namespace {

/// FIPS 180-4 round constants (a local copy: the kernels need them in
/// SIMD-loadable form, and they are spec constants, not tunables).
alignas(64) constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint64_t ReadXcr0() {
  uint32_t eax;
  uint32_t edx;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

#define AC3_TARGET_SHANI __attribute__((target("sha,sse4.1")))
#define AC3_TARGET_AVX2 __attribute__((target("avx2")))

// ---- SHA-NI ---------------------------------------------------------------
//
// `lanes` (1 or 2) independent compressions. The message schedule uses
// the standard sha256msg1/msg2 identity
//   m[g] = msg2(msg1(m[g-4], m[g-3]) + alignr(m[g-1], m[g-2], 4), m[g-1])
// (m[g] = big-endian words W[4g..4g+3]), and the 16 four-round groups run
// with the lanes interleaved so the two sha256rnds2 dependency chains
// overlap in the pipeline. State register juggling (ABEF/CDGH packing)
// follows the canonical SHA-NI layout.

AC3_TARGET_SHANI inline void ShaNiCompressLanes(
    uint32_t* const* states, const uint8_t* const* blocks, int lanes) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  __m128i abef[2];
  __m128i cdgh[2];
  __m128i save_abef[2];
  __m128i save_cdgh[2];
  __m128i m[2][16];

  for (int l = 0; l < lanes; ++l) {
    __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[l]));  // DCBA
    __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(states[l] + 4));  // HGFE
    lo = _mm_shuffle_epi32(lo, 0xB1);                      // CDAB
    hi = _mm_shuffle_epi32(hi, 0x1B);                      // EFGH
    abef[l] = _mm_alignr_epi8(lo, hi, 8);                  // ABEF
    cdgh[l] = _mm_blend_epi16(hi, lo, 0xF0);               // CDGH
    save_abef[l] = abef[l];
    save_cdgh[l] = cdgh[l];
    for (int g = 0; g < 4; ++g) {
      m[l][g] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(blocks[l] + g * 16)),
          kShuffle);
    }
  }

  for (int g = 4; g < 16; ++g) {
    for (int l = 0; l < lanes; ++l) {
      m[l][g] = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(m[l][g - 4], m[l][g - 3]),
                        _mm_alignr_epi8(m[l][g - 1], m[l][g - 2], 4)),
          m[l][g - 1]);
    }
  }

  for (int g = 0; g < 16; ++g) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + g * 4));
    __m128i wk[2];
    for (int l = 0; l < lanes; ++l) {
      wk[l] = _mm_add_epi32(m[l][g], k);
      cdgh[l] = _mm_sha256rnds2_epu32(cdgh[l], abef[l], wk[l]);
    }
    for (int l = 0; l < lanes; ++l) {
      wk[l] = _mm_shuffle_epi32(wk[l], 0x0E);
      abef[l] = _mm_sha256rnds2_epu32(abef[l], cdgh[l], wk[l]);
    }
  }

  for (int l = 0; l < lanes; ++l) {
    abef[l] = _mm_add_epi32(abef[l], save_abef[l]);
    cdgh[l] = _mm_add_epi32(cdgh[l], save_cdgh[l]);
    const __m128i feba = _mm_shuffle_epi32(abef[l], 0x1B);
    const __m128i dchg = _mm_shuffle_epi32(cdgh[l], 0xB1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(states[l]),
                     _mm_blend_epi16(feba, dchg, 0xF0));  // DCBA
    _mm_storeu_si128(reinterpret_cast<__m128i*>(states[l] + 4),
                     _mm_alignr_epi8(dchg, feba, 8));  // HGFE
  }
}

// ---- AVX2 8-way -----------------------------------------------------------
//
// A direct vectorization of the scalar rounds: vector lane i carries
// compression i, so eight independent (state, block) pairs advance in
// lockstep. The only scalar work is the big-endian word gather on entry
// and the state scatter on exit.

template <int N>
AC3_TARGET_AVX2 inline __m256i Rotr(__m256i x) {
  return _mm256_or_si256(_mm256_srli_epi32(x, N), _mm256_slli_epi32(x, 32 - N));
}

AC3_TARGET_AVX2 inline __m256i Ch(__m256i x, __m256i y, __m256i z) {
  return _mm256_xor_si256(_mm256_and_si256(x, y), _mm256_andnot_si256(x, z));
}

AC3_TARGET_AVX2 inline __m256i Maj(__m256i x, __m256i y, __m256i z) {
  return _mm256_xor_si256(
      _mm256_xor_si256(_mm256_and_si256(x, y), _mm256_and_si256(x, z)),
      _mm256_and_si256(y, z));
}

AC3_TARGET_AVX2 inline __m256i BigSigma0(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Rotr<2>(x), Rotr<13>(x)),
                          Rotr<22>(x));
}

AC3_TARGET_AVX2 inline __m256i BigSigma1(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Rotr<6>(x), Rotr<11>(x)),
                          Rotr<25>(x));
}

AC3_TARGET_AVX2 inline __m256i SmallSigma0(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Rotr<7>(x), Rotr<18>(x)),
                          _mm256_srli_epi32(x, 3));
}

AC3_TARGET_AVX2 inline __m256i SmallSigma1(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Rotr<17>(x), Rotr<19>(x)),
                          _mm256_srli_epi32(x, 10));
}

AC3_TARGET_AVX2 void Compress8Avx2Impl(uint32_t* const* states,
                                       const uint8_t* const* blocks) {
  alignas(32) uint32_t lane_words[8];
  __m256i w[64];
  for (int t = 0; t < 16; ++t) {
    for (int l = 0; l < 8; ++l) {
      uint32_t word;
      std::memcpy(&word, blocks[l] + t * 4, 4);
      lane_words[l] = __builtin_bswap32(word);
    }
    w[t] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_words));
  }
  for (int t = 16; t < 64; ++t) {
    w[t] = _mm256_add_epi32(
        _mm256_add_epi32(SmallSigma1(w[t - 2]), w[t - 7]),
        _mm256_add_epi32(SmallSigma0(w[t - 15]), w[t - 16]));
  }

  __m256i v[8];
  for (int j = 0; j < 8; ++j) {
    for (int l = 0; l < 8; ++l) lane_words[l] = states[l][j];
    v[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_words));
  }
  __m256i a = v[0], b = v[1], c = v[2], d = v[3];
  __m256i e = v[4], f = v[5], g = v[6], h = v[7];

  for (int t = 0; t < 64; ++t) {
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(h, BigSigma1(e)),
        _mm256_add_epi32(
            Ch(e, f, g),
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(kK[t])),
                             w[t])));
    const __m256i t2 = _mm256_add_epi32(BigSigma0(a), Maj(a, b, c));
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  v[0] = _mm256_add_epi32(v[0], a);
  v[1] = _mm256_add_epi32(v[1], b);
  v[2] = _mm256_add_epi32(v[2], c);
  v[3] = _mm256_add_epi32(v[3], d);
  v[4] = _mm256_add_epi32(v[4], e);
  v[5] = _mm256_add_epi32(v[5], f);
  v[6] = _mm256_add_epi32(v[6], g);
  v[7] = _mm256_add_epi32(v[7], h);
  for (int j = 0; j < 8; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_words), v[j]);
    for (int l = 0; l < 8; ++l) states[l][j] = lane_words[l];
  }
}

}  // namespace

bool CpuHasShaNi() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
  if (!(c & bit_SSE4_1) || !(c & bit_SSSE3)) return false;
  if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
  return (b & bit_SHA) != 0;
}

bool CpuHasAvx2() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
  // The OS must have enabled XMM+YMM state saving for AVX2 to be usable.
  if (!(c & bit_OSXSAVE) || !(c & bit_AVX)) return false;
  if ((ReadXcr0() & 0x6) != 0x6) return false;
  if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
  return (b & bit_AVX2) != 0;
}

AC3_TARGET_SHANI void CompressShaNi(uint32_t* state, const uint8_t* block) {
  uint32_t* const states[1] = {state};
  const uint8_t* const blocks[1] = {block};
  ShaNiCompressLanes(states, blocks, 1);
}

AC3_TARGET_SHANI void Compress2ShaNi(uint32_t* state_a,
                                     const uint8_t* block_a,
                                     uint32_t* state_b,
                                     const uint8_t* block_b) {
  uint32_t* const states[2] = {state_a, state_b};
  const uint8_t* const blocks[2] = {block_a, block_b};
  ShaNiCompressLanes(states, blocks, 2);
}

AC3_TARGET_AVX2 void Compress8Avx2(uint32_t* const* states,
                                   const uint8_t* const* blocks) {
  Compress8Avx2Impl(states, blocks);
}

#endif  // AC3_SHA256_X86

}  // namespace ac3::crypto::simd
