#include "src/crypto/hash256.h"

#include "src/crypto/sha256.h"

namespace ac3::crypto {

Hash256 Hash256::Of(std::span<const uint8_t> input) {
  return Hash256(Sha256::Digest(input));
}

Hash256 Hash256::OfString(const std::string& input) {
  return Of(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(input.data()), input.size()));
}

Hash256 Hash256::DoubleOf(std::span<const uint8_t> input) {
  auto first = Sha256::Digest(input);
  Sha256 h;
  h.Update(first.data(), first.size());
  return Hash256(h.Finish());
}

Hash256 Hash256::OfPair(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.Update(left.bytes(), kSize);
  h.Update(right.bytes(), kSize);
  return Hash256(h.Finish());
}

Result<Hash256> Hash256::FromHex(const std::string& hex) {
  AC3_ASSIGN_OR_RETURN(Bytes raw, ::ac3::FromHex(hex));
  if (raw.size() != kSize) {
    return Status::InvalidArgument("Hash256 hex must be 64 characters");
  }
  std::array<uint8_t, kSize> data;
  std::memcpy(data.data(), raw.data(), kSize);
  return Hash256(data);
}

bool Hash256::IsZero() const {
  for (uint8_t b : data_) {
    if (b != 0) return false;
  }
  return true;
}

uint64_t Hash256::Prefix64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[i];
  return v;
}

std::string Hash256::ToHex() const { return ::ac3::ToHex(data_.data(), kSize); }

std::string Hash256::ShortHex() const { return ToHex().substr(0, 8); }

Bytes Hash256::ToBytes() const { return Bytes(data_.begin(), data_.end()); }

}  // namespace ac3::crypto
