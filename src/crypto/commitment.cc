#include "src/crypto/commitment.h"

namespace ac3::crypto {

HashlockCommitment HashlockCommitment::FromSecret(const Bytes& secret) {
  return HashlockCommitment(Hash256::Of(secret));
}

bool HashlockCommitment::VerifySecret(const Bytes& secret) const {
  return Hash256::Of(secret) == lock_;
}

const char* CommitmentTagName(CommitmentTag tag) {
  switch (tag) {
    case CommitmentTag::kRedeem:
      return "RD";
    case CommitmentTag::kRefund:
      return "RF";
  }
  return "?";
}

Bytes SignatureCommitmentMessage(const Hash256& ms_id, CommitmentTag tag) {
  ByteWriter w;
  w.PutString("ac3tw/commitment");
  w.PutRaw(ms_id.bytes(), Hash256::kSize);
  w.PutU8(static_cast<uint8_t>(tag));
  return w.Take();
}

bool SignatureCommitment::VerifySecret(const Signature& secret) const {
  return Verify(trent_, SignatureCommitmentMessage(ms_id_, tag_), secret);
}

}  // namespace ac3::crypto
