// Merkle trees and inclusion proofs (Bitcoin layout).
//
// Each block commits to its transactions via a Merkle root in the header.
// Inclusion proofs are the heart of the paper's Section 4.3: a relay
// contract on the validator chain verifies that a transaction (a smart
// contract deployment or state change) is included in a validated chain's
// block by checking a Merkle path against a header whose proof-of-work it
// has already verified — i.e. SPV light-client validation.

#ifndef AC3_CRYPTO_MERKLE_H_
#define AC3_CRYPTO_MERKLE_H_

#include <vector>

#include "src/common/status.h"
#include "src/crypto/hash256.h"

namespace ac3::crypto {

/// One step of a Merkle path: the sibling digest and which side it is on.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_left = false;

  Bytes Encode() const;
  static Result<MerkleStep> Decode(ByteReader* reader);
};

/// An inclusion proof for one leaf.
struct MerkleProof {
  uint32_t leaf_index = 0;
  std::vector<MerkleStep> path;

  Bytes Encode() const;
  static Result<MerkleProof> Decode(const Bytes& encoded);
};

/// Merkle tree over a list of leaf digests. An empty leaf list yields the
/// zero hash (matching an empty block). With an odd node count at any level
/// the last node is paired with itself (Bitcoin convention).
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return root_; }
  size_t leaf_count() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Builds the inclusion proof for leaf `index`.
  Result<MerkleProof> Prove(size_t index) const;

  /// Convenience: root of `leaves` without keeping the tree.
  static Hash256 RootOf(const std::vector<Hash256>& leaves);

 private:
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaves.
  Hash256 root_;
};

/// Recomputes the root implied by `proof` for `leaf` and compares with
/// `expected_root`. This is the verification a relay contract executes.
bool VerifyMerkleProof(const Hash256& leaf, const MerkleProof& proof,
                       const Hash256& expected_root);

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_MERKLE_H_
