#include "src/crypto/primes.h"

#include <cassert>

#include "src/common/random.h"

namespace ac3::crypto {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  assert(m > 0);
  if (m == 1) return 0;
  uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {

/// One Miller–Rabin round with witness a; n - 1 = d * 2^r, d odd.
bool MillerRabinWitness(uint64_t n, uint64_t a, uint64_t d, int r) {
  uint64_t x = PowMod(a % n, d, n);
  if (x == 1 || x == n - 1) return true;  // Probably prime for this witness.
  for (int i = 1; i < r; ++i) {
    x = MulMod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;  // Composite.
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic-exact for all n < 2^64
  // (Sorenson & Webster, 2015).
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!MillerRabinWitness(n, a, d, r)) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t n) {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!IsPrime(n)) n += 2;
  return n;
}

GroupParams GenerateGroup(uint64_t seed) {
  Rng rng(seed);

  // 1. Pick a ~31-bit prime q.
  uint64_t q = NextPrime((1ULL << 30) | rng.NextBelow(1ULL << 30));

  // 2. Find p = k * q + 1 prime with p around 2^61. Scanning k upward from a
  //    random start converges in a handful of steps by the prime density.
  uint64_t k = (1ULL << 30) | rng.NextBelow(1ULL << 29);
  if (k % 2 == 1) ++k;  // Keep p = k*q + 1 odd-friendly: k even => p odd.
  uint64_t p;
  for (;;) {
    p = k * q + 1;
    if (IsPrime(p)) break;
    k += 2;
  }

  // 3. Find a generator of the order-q subgroup: g = h^((p-1)/q) != 1.
  const uint64_t cofactor = (p - 1) / q;
  uint64_t g = 1;
  for (uint64_t h = 2; h < p; ++h) {
    g = PowMod(h, cofactor, p);
    if (g != 1) break;
  }
  assert(g != 1);
  assert(PowMod(g, q, p) == 1);
  return GroupParams{p, q, g};
}

const GroupParams& DefaultGroup() {
  // Any fixed seed works; this one is the project name in ASCII-ish.
  static const GroupParams params = GenerateGroup(0xAC3'AC3'AC3ULL);
  return params;
}

}  // namespace ac3::crypto
