#include "src/crypto/schnorr.h"

#include "src/crypto/primes.h"
#include "src/crypto/sha256.h"

namespace ac3::crypto {

namespace {

/// Hash arbitrary byte fields into a uint64 (first 8 digest bytes, BE).
uint64_t HashToU64(const Bytes& data) {
  return Hash256::Of(data).Prefix64();
}

uint64_t ChallengeE(uint64_t r, const PublicKey& pk, const Bytes& message) {
  const GroupParams& grp = DefaultGroup();
  ByteWriter w;
  w.PutU64(r);
  w.PutU64(pk.y());
  w.PutBytes(message);
  return HashToU64(w.bytes()) % grp.q;
}

}  // namespace

Bytes PublicKey::Encode() const {
  ByteWriter w;
  w.PutU64(y_);
  return w.Take();
}

Result<PublicKey> PublicKey::Decode(ByteReader* reader) {
  AC3_ASSIGN_OR_RETURN(uint64_t y, reader->GetU64());
  return PublicKey(y);
}

Hash256 PublicKey::ToAddress() const { return Hash256::Of(Encode()); }

std::string PublicKey::ToHexShort() const { return ToAddress().ShortHex(); }

Bytes Signature::Encode() const {
  ByteWriter w;
  w.PutU64(e);
  w.PutU64(s);
  return w.Take();
}

Result<Signature> Signature::Decode(ByteReader* reader) {
  Signature sig;
  AC3_ASSIGN_OR_RETURN(sig.e, reader->GetU64());
  AC3_ASSIGN_OR_RETURN(sig.s, reader->GetU64());
  return sig;
}

KeyPair KeyPair::FromSeed(uint64_t seed) {
  const GroupParams& grp = DefaultGroup();
  // Map the seed through SHA-256 so nearby seeds give unrelated keys.
  ByteWriter w;
  w.PutString("ac3wn/keygen");
  w.PutU64(seed);
  uint64_t x = HashToU64(w.bytes()) % (grp.q - 1) + 1;  // x in [1, q).
  PublicKey pk(PowMod(grp.g, x, grp.p));
  return KeyPair(x, pk);
}

KeyPair KeyPair::Generate(Rng* rng) { return FromSeed(rng->NextU64()); }

Signature KeyPair::Sign(const Bytes& message) const {
  const GroupParams& grp = DefaultGroup();
  // Deterministic nonce: k = H(x || m), nonzero mod q.
  ByteWriter nonce_input;
  nonce_input.PutString("ac3wn/nonce");
  nonce_input.PutU64(secret_);
  nonce_input.PutBytes(message);
  uint64_t k = HashToU64(nonce_input.bytes()) % (grp.q - 1) + 1;

  uint64_t r = PowMod(grp.g, k, grp.p);
  uint64_t e = ChallengeE(r, public_key_, message);
  uint64_t s = (k + MulMod(e, secret_, grp.q)) % grp.q;
  return Signature{e, s};
}

Signature KeyPair::SignString(const std::string& message) const {
  return Sign(Bytes(message.begin(), message.end()));
}

bool Verify(const PublicKey& pk, const Bytes& message, const Signature& sig) {
  const GroupParams& grp = DefaultGroup();
  if (!pk.IsValid()) return false;
  if (sig.e >= grp.q || sig.s >= grp.q) return false;
  // y must lie in the order-q subgroup; otherwise y^(q-e) is not y^{-e}.
  if (PowMod(pk.y(), grp.q, grp.p) != 1) return false;
  // r' = g^s * y^{-e} = g^s * y^{q-e} (y has order q).
  uint64_t gs = PowMod(grp.g, sig.s, grp.p);
  uint64_t ye = PowMod(pk.y(), (grp.q - sig.e) % grp.q, grp.p);
  uint64_t r_prime = MulMod(gs, ye, grp.p);
  return ChallengeE(r_prime, pk, message) == sig.e;
}

bool VerifyString(const PublicKey& pk, const std::string& message,
                  const Signature& sig) {
  return Verify(pk, Bytes(message.begin(), message.end()), sig);
}

}  // namespace ac3::crypto
