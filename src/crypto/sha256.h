// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the system's only hash function: it backs transaction / block /
// graph identifiers, Merkle trees, hashlocks (the paper's commitment-scheme
// example), proof-of-work, and deterministic Schnorr nonces.

#ifndef AC3_CRYPTO_SHA256_H_
#define AC3_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace ac3::crypto {

/// Incremental SHA-256 context. Typical use:
///   Sha256 h; h.Update(a); h.Update(b); auto digest = h.Finish();
///
/// Contexts are plain copyable values: copying one after absorbing a
/// prefix captures the compression-function midstate, which is how the
/// proof-of-work HeaderHasher avoids re-hashing the fixed header prefix on
/// every nonce attempt.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(std::span<const uint8_t> data) {
    Update(data.data(), data.size());
  }

  /// Pads, finalizes, and returns the 32-byte digest. The context must not
  /// be reused afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience (accepts Bytes, arrays, and spans alike).
  static std::array<uint8_t, kDigestSize> Digest(
      std::span<const uint8_t> data);

  // ---- raw compression-function access (proof-of-work hot path) ----------
  //
  // The nonce-search loop in crypto::HeaderHasher drives the compression
  // function directly — it does its own padding once, up front, and then
  // re-compresses only the nonce-bearing blocks per attempt. These hooks
  // exist for that path; everything else should use Update()/Finish().
  //
  // All of them are runtime-dispatched: a one-time cpuid probe installs
  // the widest available hardware kernel (the "dispatch ladder":
  // SHA-NI > AVX2 8-way > portable scalar), and every level computes
  // bit-identical digests — the scalar code is the permanent oracle the
  // dispatch-equivalence tests hold the hardware paths against.

  /// The initial chaining value H(0) (FIPS 180-4, section 5.3.3).
  static constexpr std::array<uint32_t, 8> kInitialState = {
      0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
      0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  /// One compression-function application: folds the 64-byte `block` into
  /// the 8-word chaining value `state` in place.
  static void Compress(uint32_t* state, const uint8_t* block);

  /// Two independent compressions with their rounds interleaved in one
  /// loop. SHA-256's 64 rounds form a serial dependency chain, so a single
  /// compression leaves superscalar execution units idle; interleaving two
  /// unrelated lanes gives the scheduler a second independent chain to
  /// fill them with (on the SHA-NI level the two lanes interleave
  /// hardware round instructions instead). This is what makes the wide
  /// PoW nonce search faster than sequential Compress() calls.
  static void Compress2(uint32_t* state_a, const uint8_t* block_a,
                        uint32_t* state_b, const uint8_t* block_b);

  /// Widest batch CompressBatch accelerates in one step.
  static constexpr size_t kMaxLanes = 8;

  /// `n` independent compressions: folds blocks[i] into states[i] for
  /// i in [0, n). Runs 8-at-a-time on the AVX2 level, then pairs through
  /// Compress2, then a scalar remainder — so any `n` is valid on any
  /// level and the per-lane results always equal Compress().
  static void CompressBatch(uint32_t* const* states,
                            const uint8_t* const* blocks, size_t n);

  // ---- runtime dispatch ---------------------------------------------------

  /// The hardware levels of the compression-function dispatch ladder.
  enum class Dispatch {
    kScalar,  ///< Portable C++ — always available; the equivalence oracle.
    kShaNi,   ///< x86 SHA-NI two-block kernels (preferred when present).
    kAvx2,    ///< AVX2 8-way message-parallel kernel.
  };

  /// True when `dispatch` can run here. Scalar is always available; the
  /// hardware levels require cpuid support AND survive the
  /// AC3_SHA256_DISPATCH pin (a pinned process reports only the pinned
  /// level as available, so forced-fallback CI shards stay airtight).
  static bool DispatchAvailable(Dispatch dispatch);

  /// The active level. Defaults to the widest available rung of the
  /// ladder (SHA-NI > AVX2 > scalar); the AC3_SHA256_DISPATCH environment
  /// variable ("scalar", "shani", "avx2") pins it for the whole process
  /// (ignored when it names an unavailable level).
  static Dispatch ActiveDispatch();

  /// Stable lowercase name of a level: "scalar", "shani", "avx2".
  static const char* DispatchName(Dispatch dispatch);

  /// Forces the active level (for tests and the dispatch bench); returns
  /// false — leaving the active level unchanged — when `dispatch` is
  /// unavailable. Not thread-safe against concurrent hashing.
  static bool SetDispatch(Dispatch dispatch);

  /// Independent nonce lanes the active level wants per mining loop
  /// iteration: 8 on the AVX2 level, otherwise 2 (one Compress2 pair).
  static size_t PreferredMiningLanes();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_SHA256_H_
