// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the system's only hash function: it backs transaction / block /
// graph identifiers, Merkle trees, hashlocks (the paper's commitment-scheme
// example), proof-of-work, and deterministic Schnorr nonces.

#ifndef AC3_CRYPTO_SHA256_H_
#define AC3_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace ac3::crypto {

/// Incremental SHA-256 context. Typical use:
///   Sha256 h; h.Update(a); h.Update(b); auto digest = h.Finish();
///
/// Contexts are plain copyable values: copying one after absorbing a
/// prefix captures the compression-function midstate, which is how the
/// proof-of-work HeaderHasher avoids re-hashing the fixed header prefix on
/// every nonce attempt.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(std::span<const uint8_t> data) {
    Update(data.data(), data.size());
  }

  /// Pads, finalizes, and returns the 32-byte digest. The context must not
  /// be reused afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience (accepts Bytes, arrays, and spans alike).
  static std::array<uint8_t, kDigestSize> Digest(
      std::span<const uint8_t> data);

  // ---- raw compression-function access (proof-of-work hot path) ----------
  //
  // The nonce-search loop in crypto::HeaderHasher drives the compression
  // function directly — it does its own padding once, up front, and then
  // re-compresses only the nonce-bearing blocks per attempt. These hooks
  // exist for that path; everything else should use Update()/Finish().

  /// The initial chaining value H(0) (FIPS 180-4, section 5.3.3).
  static constexpr std::array<uint32_t, 8> kInitialState = {
      0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
      0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  /// One compression-function application: folds the 64-byte `block` into
  /// the 8-word chaining value `state` in place.
  static void Compress(uint32_t* state, const uint8_t* block);

  /// Two independent compressions with their rounds interleaved in one
  /// loop. SHA-256's 64 rounds form a serial dependency chain, so a single
  /// compression leaves superscalar execution units idle; interleaving two
  /// unrelated lanes gives the scheduler a second independent chain to
  /// fill them with. This is what makes the 2-way PoW nonce search faster
  /// than two sequential Compress() calls on the same core.
  static void Compress2(uint32_t* state_a, const uint8_t* block_a,
                        uint32_t* state_b, const uint8_t* block_b);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_SHA256_H_
