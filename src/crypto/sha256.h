// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the system's only hash function: it backs transaction / block /
// graph identifiers, Merkle trees, hashlocks (the paper's commitment-scheme
// example), proof-of-work, and deterministic Schnorr nonces.

#ifndef AC3_CRYPTO_SHA256_H_
#define AC3_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace ac3::crypto {

/// Incremental SHA-256 context. Typical use:
///   Sha256 h; h.Update(a); h.Update(b); auto digest = h.Finish();
///
/// Contexts are plain copyable values: copying one after absorbing a
/// prefix captures the compression-function midstate, which is how the
/// proof-of-work HeaderHasher avoids re-hashing the fixed header prefix on
/// every nonce attempt.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(std::span<const uint8_t> data) {
    Update(data.data(), data.size());
  }

  /// Pads, finalizes, and returns the 32-byte digest. The context must not
  /// be reused afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience (accepts Bytes, arrays, and spans alike).
  static std::array<uint8_t, kDigestSize> Digest(
      std::span<const uint8_t> data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace ac3::crypto

#endif  // AC3_CRYPTO_SHA256_H_
