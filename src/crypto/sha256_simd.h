// Internal: hardware SHA-256 compression kernels behind Sha256's runtime
// dispatch (see sha256.h). Nothing here is part of the public API — the
// only consumer is sha256.cc, which probes the CPU once and installs the
// widest available kernel set. Two x86 families are implemented:
//
//   * SHA-NI (sha extensions + SSE4.1): hardware round/schedule
//     instructions. The two-block variant runs two independent
//     compressions with their 4-round groups interleaved so the
//     sha256rnds2 dependency chains of the two lanes overlap.
//   * AVX2 8-way: message-parallel — eight independent compressions, one
//     32-bit lane each, a direct vectorization of the scalar rounds.
//
// Every kernel computes bit-identical results to Sha256's scalar
// compression (the dispatch-equivalence tests in tests/crypto_test.cc and
// the mining goldens in tests/hotpath_test.cc hold each one against the
// scalar oracle).

#ifndef AC3_CRYPTO_SHA256_SIMD_H_
#define AC3_CRYPTO_SHA256_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ac3::crypto::simd {

/// True when the CPU supports the SHA extensions (plus the SSE4.1 the
/// kernels' shuffles need). False on non-x86 builds.
bool CpuHasShaNi();

/// True when the CPU and OS support AVX2 (OSXSAVE with YMM state
/// enabled). False on non-x86 builds.
bool CpuHasAvx2();

#if defined(__x86_64__) || defined(__i386__)

/// One SHA-NI compression: folds the 64-byte `block` into `state`.
void CompressShaNi(uint32_t* state, const uint8_t* block);

/// Two independent SHA-NI compressions with interleaved round groups.
void Compress2ShaNi(uint32_t* state_a, const uint8_t* block_a,
                    uint32_t* state_b, const uint8_t* block_b);

/// Eight independent AVX2 compressions: folds blocks[i] into states[i]
/// for i in [0, 8), one 32-bit SIMD lane per compression.
void Compress8Avx2(uint32_t* const* states, const uint8_t* const* blocks);

#endif  // x86

}  // namespace ac3::crypto::simd

#endif  // AC3_CRYPTO_SHA256_SIMD_H_
