// Wallet: builds signed transactions from a key pair and a ledger view.
//
// This is the paper's "client library" (Section 2.1): end-users inspect
// their unspent outputs on the chain they follow and produce signed
// transfer / deploy / call transactions. Inputs are selected greedily and
// change returns to the owner. Outputs selected for an in-flight
// transaction are reserved so a participant does not double-spend its own
// pending change.

#ifndef AC3_CHAIN_WALLET_H_
#define AC3_CHAIN_WALLET_H_

#include <set>
#include <utility>
#include <vector>

#include "src/chain/ledger.h"
#include "src/chain/transaction.h"
#include "src/crypto/schnorr.h"

namespace ac3::chain {

class Wallet {
 public:
  Wallet(crypto::KeyPair key, ChainId chain_id)
      : key_(std::move(key)), chain_id_(chain_id) {}

  const crypto::PublicKey& public_key() const { return key_.public_key(); }
  const crypto::KeyPair& key() const { return key_; }
  ChainId chain_id() const { return chain_id_; }

  /// Spendable balance in `state` (excluding reserved outpoints).
  Amount SpendableBalance(const LedgerState& state) const;

  /// Plain transfer of `amount` to `recipient` (merge/split semantics).
  Result<Transaction> BuildTransfer(const LedgerState& state,
                                    const crypto::PublicKey& recipient,
                                    Amount amount, Amount fee, uint64_t nonce);

  /// Contract deployment locking `locked_value` (msg.value).
  Result<Transaction> BuildDeploy(const LedgerState& state,
                                  const std::string& kind, const Bytes& payload,
                                  Amount locked_value, Amount fee,
                                  uint64_t nonce);

  /// Contract function call (pays only the fee).
  Result<Transaction> BuildCall(const LedgerState& state,
                                const crypto::Hash256& contract_id,
                                const std::string& function, const Bytes& args,
                                Amount fee, uint64_t nonce);

  /// Forgets reservations (e.g. after a transaction is known included or
  /// abandoned).
  void ClearReservations() { reserved_.clear(); }

 private:
  /// Greedy input selection covering `needed`; returns (inputs, total).
  Result<std::pair<std::vector<OutPoint>, Amount>> SelectInputs(
      const LedgerState& state, Amount needed);

  /// Fills inputs/outputs (with change) and signs.
  Result<Transaction> Finalize(Transaction tx, const LedgerState& state,
                               Amount spend_total);

  crypto::KeyPair key_;
  ChainId chain_id_;
  std::set<OutPoint> reserved_;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_WALLET_H_
