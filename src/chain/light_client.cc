#include "src/chain/light_client.h"

#include "src/chain/pow.h"

namespace ac3::chain {

LightClient::LightClient(BlockHeader genesis, uint32_t difficulty_bits)
    : difficulty_bits_(difficulty_bits) {
  Entry entry;
  entry.header = genesis;
  entry.total_work = 0;  // Genesis carries no PoW by convention.
  entry.arrival_seq = next_arrival_seq_++;
  genesis_hash_ = genesis.Hash();
  head_hash_ = genesis_hash_;
  headers_.emplace(genesis_hash_, std::move(entry));
}

Status LightClient::AcceptHeader(const BlockHeader& header) {
  const crypto::Hash256 hash = header.Hash();
  if (headers_.count(hash) > 0) return Status::OK();  // Idempotent.

  auto parent_it = headers_.find(header.prev_hash);
  if (parent_it == headers_.end()) {
    return Status::NotFound("orphan header: unknown parent " +
                            header.prev_hash.ShortHex());
  }
  const Entry& parent = parent_it->second;
  if (header.chain_id != parent.header.chain_id) {
    return Status::VerificationFailed("header belongs to another chain");
  }
  if (header.height != parent.header.height + 1) {
    return Status::VerificationFailed("non-consecutive header height");
  }
  if (header.difficulty_bits != difficulty_bits_) {
    return Status::VerificationFailed("header declares wrong difficulty");
  }
  if (!CheckProofOfWork(header)) {
    return Status::VerificationFailed("header fails proof of work");
  }

  Entry entry;
  entry.header = header;
  entry.total_work = parent.total_work + WorkForDifficulty(difficulty_bits_);
  entry.arrival_seq = next_arrival_seq_++;
  const Entry& head = headers_.at(head_hash_);
  const bool heavier = entry.total_work > head.total_work;
  headers_.emplace(hash, std::move(entry));
  if (heavier) head_hash_ = hash;
  return Status::OK();
}

Status LightClient::AcceptHeaders(const std::vector<BlockHeader>& headers) {
  for (const BlockHeader& header : headers) {
    AC3_RETURN_IF_ERROR(AcceptHeader(header));
  }
  return Status::OK();
}

Status LightClient::SyncFrom(const Blockchain& full_node) {
  AC3_ASSIGN_OR_RETURN(std::vector<BlockHeader> headers,
                       full_node.HeadersAfter(genesis_hash_));
  return AcceptHeaders(headers);
}

const BlockHeader& LightClient::head() const {
  return headers_.at(head_hash_).header;
}

bool LightClient::IsCanonical(const crypto::Hash256& hash) const {
  auto it = headers_.find(hash);
  if (it == headers_.end()) return false;
  // Walk back from the head to the queried height.
  crypto::Hash256 cursor = head_hash_;
  while (true) {
    const Entry& entry = headers_.at(cursor);
    if (entry.header.height < it->second.header.height) return false;
    if (cursor == hash) return true;
    if (cursor == genesis_hash_) return false;
    cursor = entry.header.prev_hash;
  }
}

std::optional<uint64_t> LightClient::ConfirmationsOf(
    const crypto::Hash256& hash) const {
  if (!IsCanonical(hash)) return std::nullopt;
  return head().height - headers_.at(hash).header.height;
}

Status LightClient::VerifyAgainstRoot(const crypto::Hash256& block_hash,
                                      const crypto::Hash256& leaf,
                                      const crypto::MerkleProof& proof,
                                      uint64_t min_confirmations,
                                      bool receipt) const {
  auto confirmations = ConfirmationsOf(block_hash);
  if (!confirmations.has_value()) {
    return Status::NotFound("block is not on the canonical header chain");
  }
  if (*confirmations < min_confirmations) {
    return Status::VerificationFailed(
        "block not buried deep enough: " + std::to_string(*confirmations) +
        " < " + std::to_string(min_confirmations));
  }
  const BlockHeader& header = headers_.at(block_hash).header;
  const crypto::Hash256& root =
      receipt ? header.receipt_root : header.tx_root;
  if (!crypto::VerifyMerkleProof(leaf, proof, root)) {
    return Status::VerificationFailed("Merkle proof does not bind the leaf");
  }
  return Status::OK();
}

Status LightClient::VerifyInclusion(const crypto::Hash256& block_hash,
                                    const crypto::Hash256& tx_root_leaf,
                                    const crypto::MerkleProof& proof,
                                    uint64_t min_confirmations) const {
  return VerifyAgainstRoot(block_hash, tx_root_leaf, proof, min_confirmations,
                           /*receipt=*/false);
}

Status LightClient::VerifyReceiptInclusion(
    const crypto::Hash256& block_hash, const crypto::Hash256& receipt_leaf,
    const crypto::MerkleProof& proof, uint64_t min_confirmations) const {
  return VerifyAgainstRoot(block_hash, receipt_leaf, proof, min_confirmations,
                           /*receipt=*/true);
}

}  // namespace ac3::chain
