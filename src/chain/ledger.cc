#include "src/chain/ledger.h"

#include <cassert>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "src/chain/tx_conflict.h"
#include "src/common/worker_pool.h"

namespace ac3::chain {

Amount LedgerState::LiquidValueScan() const {
  Amount total = 0;
  for (const auto& [outpoint, output] : utxos) total += output.value;
  return total;
}

Amount LedgerState::LockedValue() const {
  Amount total = 0;
  for (const auto& [id, contract] : contracts) total += contract->locked_value();
  return total;
}

Amount LedgerState::BalanceOf(const crypto::PublicKey& owner) const {
  const Amount* balance = balances.Find(owner);
  return balance != nullptr ? *balance : 0;
}

Amount LedgerState::BalanceOfScan(const crypto::PublicKey& owner) const {
  Amount total = 0;
  for (const auto& [outpoint, output] : utxos) {
    if (output.owner == owner) total += output.value;
  }
  return total;
}

void LedgerState::AddUtxo(const OutPoint& outpoint, const TxOutput& output) {
  utxos.Put(outpoint, output);
  liquid_total += output.value;
  balances.Put(output.owner, BalanceOf(output.owner) + output.value);
}

void LedgerState::SpendUtxo(const OutPoint& outpoint) {
  const TxOutput* output = utxos.Find(outpoint);
  assert(output != nullptr && "SpendUtxo: outpoint not in UTXO set");
  liquid_total -= output->value;
  const Amount remaining = BalanceOf(output->owner) - output->value;
  if (remaining == 0) {
    balances.Erase(output->owner);
  } else {
    balances.Put(output->owner, remaining);
  }
  utxos.Erase(outpoint);
}

Result<contracts::ContractPtr> LedgerState::GetContract(
    const crypto::Hash256& id) const {
  const contracts::ContractPtr* contract = contracts.Find(id);
  if (contract == nullptr) {
    return Status::NotFound("no contract " + id.ShortHex());
  }
  return *contract;
}

namespace {

/// One-time builtin-contract registration, hoisted out of the per-tx
/// execution path: the factory map mutation now happens exactly once per
/// process (first ledger use), never inside concurrently-executing
/// transactions.
std::once_flag builtin_contracts_once;
void EnsureBuiltinContracts() {
  std::call_once(builtin_contracts_once, contracts::RegisterBuiltinContracts);
}

/// Checks input ownership and computes the total input value.
Result<Amount> ConsumeInputs(LedgerState* state, const Transaction& tx,
                             TxWrites* writes) {
  if (tx.inputs.empty()) {
    return Status::InvalidArgument("non-coinbase transaction needs inputs");
  }
  Amount total = 0;
  // Validate first (no partial mutation on failure).
  for (size_t i = 0; i < tx.inputs.size(); ++i) {
    const OutPoint& in = tx.inputs[i];
    // A repeated outpoint would be summed twice but erased once — minting
    // value. Input lists are tiny, so the quadratic scan is free.
    for (size_t j = 0; j < i; ++j) {
      if (tx.inputs[j] == in) {
        return Status::InvalidArgument("duplicate input outpoint");
      }
    }
    const TxOutput* output = state->utxos.Find(in);
    if (output == nullptr) {
      return Status::InvalidArgument("input not in UTXO set (double spend?)");
    }
    if (output->owner != tx.signer) {
      return Status::VerificationFailed(
          "input not owned by transaction signer");
    }
    total += output->value;
  }
  for (const OutPoint& in : tx.inputs) {
    state->SpendUtxo(in);
    if (writes != nullptr) writes->spent.push_back(in);
  }
  return total;
}

void CreateOutputs(LedgerState* state, const crypto::Hash256& tx_id,
                   const std::vector<TxOutput>& outputs,
                   uint32_t first_index = 0, TxWrites* writes = nullptr) {
  for (uint32_t i = 0; i < outputs.size(); ++i) {
    const OutPoint outpoint{tx_id, first_index + i};
    state->AddUtxo(outpoint, outputs[i]);
    if (writes != nullptr) writes->created.emplace_back(outpoint, outputs[i]);
  }
}

/// True when a contract-call failure should be recorded as a reverted
/// receipt (included in the block) rather than invalidating the block.
bool IsRevert(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition ||
         status.code() == StatusCode::kVerificationFailed ||
         status.code() == StatusCode::kInvalidArgument;
}

/// The one execution path behind both ApplyTransaction and the wave
/// executor. `verify_sig` lets the parallel path skip re-verifying a
/// signature it already batch-verified; `writes` (optional) records every
/// state mutation for the wave merger.
Result<Receipt> ApplyTransactionImpl(LedgerState* state, const Transaction& tx,
                                     const BlockEnv& env, bool verify_sig,
                                     TxWrites* writes) {
  EnsureBuiltinContracts();
  if (tx.chain_id != env.chain_id) {
    return Status::InvalidArgument("transaction targets another chain");
  }
  if (verify_sig && !tx.VerifySignature()) {
    return Status::VerificationFailed("bad transaction signature");
  }

  const crypto::Hash256 tx_id = tx.Id();
  Receipt receipt;
  receipt.tx_id = tx_id;

  switch (tx.type) {
    case TxType::kCoinbase:
      return Status::InvalidArgument("coinbase outside block head position");

    case TxType::kTransfer: {
      AC3_ASSIGN_OR_RETURN(Amount in_total, ConsumeInputs(state, tx, writes));
      if (in_total != tx.TotalOutput() + tx.fee) {
        return Status::InvalidArgument("transfer value not conserved");
      }
      CreateOutputs(state, tx_id, tx.outputs, 0, writes);
      receipt.note = "transfer";
      return receipt;
    }

    case TxType::kDeploy: {
      AC3_ASSIGN_OR_RETURN(Amount in_total, ConsumeInputs(state, tx, writes));
      if (in_total != tx.TotalOutput() + tx.fee + tx.contract_value) {
        return Status::InvalidArgument("deploy value not conserved");
      }
      contracts::DeployContext ctx;
      ctx.chain_id = env.chain_id;
      ctx.tx_id = tx_id;
      ctx.sender = tx.signer;
      ctx.value = tx.contract_value;
      ctx.block_time = env.time;
      ctx.block_height = env.height;
      auto deployed = contracts::ContractFactory::Instance().Deploy(
          tx.contract_kind, tx.payload, ctx);
      if (!deployed.ok()) {
        // Malformed deployments never make it into a block.
        return deployed.status();
      }
      CreateOutputs(state, tx_id, tx.outputs, 0, writes);
      state->contracts.Put(tx_id, *deployed);
      if (writes != nullptr) writes->contract_puts.emplace_back(tx_id, *deployed);
      receipt.contract_id = tx_id;
      receipt.state_digest = (*deployed)->StateDigest();
      receipt.note = "deployed " + tx.contract_kind;
      return receipt;
    }

    case TxType::kCall: {
      AC3_ASSIGN_OR_RETURN(contracts::ContractPtr contract,
                           state->GetContract(tx.contract_id));
      AC3_ASSIGN_OR_RETURN(Amount in_total, ConsumeInputs(state, tx, writes));
      if (in_total != tx.TotalOutput() + tx.fee) {
        return Status::InvalidArgument("call value not conserved");
      }
      CreateOutputs(state, tx_id, tx.outputs, 0, writes);

      std::vector<contracts::Payout> payouts;
      contracts::CallContext ctx;
      ctx.chain_id = env.chain_id;
      ctx.tx_id = tx_id;
      ctx.sender = tx.signer;
      ctx.block_time = env.time;
      ctx.block_height = env.height;
      ctx.payouts = &payouts;

      receipt.contract_id = tx.contract_id;
      auto outcome = contract->Call(tx.function, tx.payload, ctx);
      if (!outcome.ok()) {
        if (!IsRevert(outcome.status())) return outcome.status();
        // Reverted: fee consumed, contract unchanged.
        receipt.success = false;
        receipt.state_digest = contract->StateDigest();
        receipt.note = outcome.status().ToString();
        return receipt;
      }

      // Conservation across the contract boundary: value paid out plus
      // value still locked must equal the value locked before the call.
      Amount paid = 0;
      for (const contracts::Payout& payout : payouts) paid += payout.value;
      if (paid + outcome->next->locked_value() != contract->locked_value()) {
        return Status::Internal("contract violated value conservation");
      }
      std::vector<TxOutput> payout_outputs;
      payout_outputs.reserve(payouts.size());
      for (const contracts::Payout& payout : payouts) {
        payout_outputs.push_back(TxOutput{payout.value, payout.recipient});
      }
      CreateOutputs(state, tx_id, payout_outputs,
                    static_cast<uint32_t>(tx.outputs.size()), writes);
      state->contracts.Put(tx.contract_id, outcome->next);
      if (writes != nullptr) {
        writes->contract_puts.emplace_back(tx.contract_id, outcome->next);
      }
      receipt.state_digest = outcome->next->StateDigest();
      receipt.note = outcome->note;
      return receipt;
    }
  }
  return Status::Internal("unreachable transaction type");
}

/// Fan-out is only worth the scratch-copy + merge overhead on bodies with
/// enough transactions to spread; below this the serial loop wins.
constexpr size_t kMinParallelBodyTxs = 4;

}  // namespace

bool BlockExecutionPinnedSerial() {
  static const bool pinned = [] {
    const char* pin = std::getenv("AC3_EXEC_SERIAL");
    return pin != nullptr && pin[0] != '\0' &&
           !(pin[0] == '0' && pin[1] == '\0');
  }();
  return pinned;
}

Result<Receipt> ApplyTransaction(LedgerState* state, const Transaction& tx,
                                 const BlockEnv& env) {
  return ApplyTransactionImpl(state, tx, env, /*verify_sig=*/true,
                              /*writes=*/nullptr);
}

Result<Receipt> ApplyTransactionRecorded(LedgerState* state,
                                         const Transaction& tx,
                                         const BlockEnv& env,
                                         TxWrites* writes) {
  return ApplyTransactionImpl(state, tx, env, /*verify_sig=*/true, writes);
}

Result<std::vector<Receipt>> ApplyBlockBody(LedgerState* state,
                                            const Block& block,
                                            const ChainParams& params) {
  if (block.txs.empty()) {
    return Status::InvalidArgument("block has no coinbase");
  }
  const Transaction& coinbase = block.txs[0];
  if (coinbase.type != TxType::kCoinbase || !coinbase.inputs.empty()) {
    return Status::InvalidArgument("first transaction must be a coinbase");
  }

  BlockEnv env{block.header.chain_id, block.header.height, block.header.time};
  std::vector<Receipt> receipts;
  receipts.reserve(block.txs.size());

  // Coinbase receipt placeholder; value rule checked after fee total known.
  Receipt coinbase_receipt;
  coinbase_receipt.tx_id = coinbase.Id();
  coinbase_receipt.note = "coinbase";
  receipts.push_back(coinbase_receipt);

  Amount total_fees = 0;
  for (size_t i = 1; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];
    if (tx.type == TxType::kCoinbase) {
      return Status::InvalidArgument("duplicate coinbase");
    }
    AC3_ASSIGN_OR_RETURN(Receipt receipt, ApplyTransaction(state, tx, env));
    total_fees += tx.fee;
    receipts.push_back(std::move(receipt));
  }

  if (coinbase.TotalOutput() > params.block_reward + total_fees) {
    return Status::InvalidArgument("coinbase exceeds reward plus fees");
  }
  CreateOutputs(state, coinbase.Id(), coinbase.outputs);
  return receipts;
}

Result<std::vector<Receipt>> ApplyBlockBodyParallel(LedgerState* state,
                                                    const Block& block,
                                                    const ChainParams& params,
                                                    common::WorkerPool* pool) {
  const size_t n = block.txs.size();
  if (pool == nullptr || pool->threads() <= 1 || BlockExecutionPinnedSerial() ||
      n < kMinParallelBodyTxs + 1) {
    return ApplyBlockBody(state, block, params);
  }
  const Transaction& coinbase = block.txs[0];
  if (coinbase.type != TxType::kCoinbase || !coinbase.inputs.empty()) {
    return Status::InvalidArgument("first transaction must be a coinbase");
  }
  // A duplicate coinbase aborts the serial loop mid-block at its position;
  // hand that (rare, invalid) shape to the oracle for the exact status.
  for (size_t i = 1; i < n; ++i) {
    if (block.txs[i].type == TxType::kCoinbase) {
      return ApplyBlockBody(state, block, params);
    }
  }

  // Signature verification is pure per-transaction work: fan it out
  // unconditionally. Any failure aborts the serial loop mid-block, so —
  // like every structural failure below — it routes to the oracle.
  std::vector<char> sig_ok(n, 1);
  pool->ParallelFor(n - 1, [&](size_t r) {
    sig_ok[r + 1] = block.txs[r + 1].VerifySignature() ? 1 : 0;
  });
  for (size_t i = 1; i < n; ++i) {
    if (!sig_ok[i]) return ApplyBlockBody(state, block, params);
  }

  BlockEnv env{block.header.chain_id, block.header.height, block.header.time};
  const std::vector<std::vector<size_t>> waves =
      BuildExecutionWaves(block.txs);

  // `working` evolves wave by wave; *state stays untouched until the whole
  // body succeeded, so the oracle fallback always re-runs from the
  // caller's original state (reproducing serial partial-mutation behavior
  // on its own).
  LedgerState working = *state;
  std::vector<Receipt> receipts(n);
  receipts[0].tx_id = coinbase.Id();
  receipts[0].note = "coinbase";

  struct Slot {
    Status status = Status::OK();
    Receipt receipt;
    TxWrites writes;
  };
  std::vector<Slot> slots;
  for (const std::vector<size_t>& wave : waves) {
    if (wave.size() == 1) {
      // Singleton wave: apply directly, no snapshot or merge needed.
      auto receipt = ApplyTransactionImpl(&working, block.txs[wave[0]], env,
                                          /*verify_sig=*/false,
                                          /*writes=*/nullptr);
      if (!receipt.ok()) return ApplyBlockBody(state, block, params);
      receipts[wave[0]] = std::move(*receipt);
      continue;
    }
    slots.assign(wave.size(), Slot{});
    pool->ParallelFor(wave.size(), [&](size_t k) {
      // O(1) snapshot; conflict-freedom within the wave means the keys
      // this transaction observes are exactly what the serial loop would
      // show it at its block position.
      LedgerState scratch = working;
      auto receipt =
          ApplyTransactionImpl(&scratch, block.txs[wave[k]], env,
                               /*verify_sig=*/false, &slots[k].writes);
      if (receipt.ok()) {
        slots[k].receipt = std::move(*receipt);
      } else {
        slots[k].status = receipt.status();
      }
    });
    for (const Slot& slot : slots) {
      if (!slot.status.ok()) return ApplyBlockBody(state, block, params);
    }
    // Serial merge in transaction order (wave indices are ascending):
    // write sets are pairwise disjoint, so the merged content equals the
    // serial loop's.
    for (size_t k = 0; k < wave.size(); ++k) {
      for (const OutPoint& outpoint : slots[k].writes.spent) {
        working.SpendUtxo(outpoint);
      }
      for (const auto& [outpoint, output] : slots[k].writes.created) {
        working.AddUtxo(outpoint, output);
      }
      for (const auto& [id, contract] : slots[k].writes.contract_puts) {
        working.contracts.Put(id, contract);
      }
      receipts[wave[k]] = std::move(slots[k].receipt);
    }
  }

  Amount total_fees = 0;
  for (size_t i = 1; i < n; ++i) total_fees += block.txs[i].fee;
  if (coinbase.TotalOutput() > params.block_reward + total_fees) {
    return Status::InvalidArgument("coinbase exceeds reward plus fees");
  }
  CreateOutputs(&working, coinbase.Id(), coinbase.outputs);
  *state = std::move(working);
  return receipts;
}

LedgerState GenesisState(const Transaction& genesis_tx) {
  LedgerState state;
  const crypto::Hash256 id = genesis_tx.Id();
  for (uint32_t i = 0; i < genesis_tx.outputs.size(); ++i) {
    state.AddUtxo(OutPoint{id, i}, genesis_tx.outputs[i]);
  }
  return state;
}

}  // namespace ac3::chain
